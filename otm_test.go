package otm_test

// End-to-end tests through the public facade only — what a downstream
// user of the library sees.

import (
	"errors"
	"sync"
	"testing"

	"otm"
)

func TestFacadeHistoryAndCheck(t *testing.T) {
	h := otm.NewHistory().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 1).Commits(2).
		MustHistory()
	res, err := otm.CheckOpacity(h, otm.CheckConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Fatal("trivial reads-from history must be opaque")
	}
	if len(res.Witness.Order) != 2 {
		t.Errorf("witness %v", res.Witness.Order)
	}
}

func TestFacadeParseAndCriteria(t *testing.T) {
	h, err := otm.ParseHistory(
		"w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := otm.EvaluateCriteria(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Opaque || !rep.GloballyAtomic || !rep.StrictlyRecoverable {
		t.Errorf("Figure 1 verdicts wrong: %+v", rep)
	}
}

func TestFacadeTheorem2(t *testing.T) {
	h := otm.NewHistory().
		Write(0, "x", 0).Commits(0). // initializing transaction
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 1).Commits(2).
		MustHistory()
	res, err := otm.CheckTheorem2(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque || !res.Consistent {
		t.Errorf("theorem 2 verdict: %+v", res)
	}
}

func TestFacadeObjectSpecs(t *testing.T) {
	h := otm.NewHistory().
		Op(1, "c", "inc", nil, "ok").Commits(1).
		Op(2, "c", "get", nil, 1).Commits(2).
		MustHistory()
	res, err := otm.CheckOpacity(h, otm.CheckConfig{
		Objects: otm.ObjectSpecs{"c": otm.NewCounter(0)},
	})
	if err != nil || !res.Opaque {
		t.Fatalf("counter history: %v %v", res, err)
	}
}

func TestFacadeEnginesEndToEnd(t *testing.T) {
	engines := map[string]otm.TM{
		"dstm":  otm.NewDSTM(8, otm.Aggressive),
		"tl2":   otm.NewTL2(8),
		"vstm":  otm.NewVSTM(8, otm.Polite),
		"mvstm": otm.NewMVSTM(8),
		"gatm":  otm.NewGATM(8),
	}
	for name, tm := range engines {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					err := otm.Atomically(tm, func(tx otm.Tx) error {
						v, err := tx.Read(g)
						if err != nil {
							return err
						}
						return tx.Write(g, v+1)
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		for g := 0; g < 4; g++ {
			v, err := otm.DirectRead(tm, g)
			if err != nil || v != 25 {
				t.Errorf("%s: slot %d = %d, %v; want 25", name, g, v, err)
			}
		}
	}
}

func TestFacadeRecorderAudit(t *testing.T) {
	rec := otm.NewRecorder(otm.NewDSTM(2, otm.Greedy))
	if err := otm.DirectWrite(rec, 0, 5); err != nil {
		t.Fatal(err)
	}
	err := otm.Atomically(rec, func(tx otm.Tx) error {
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		child := otm.Nest(tx)
		if err := child.Write(1, v*2); err != nil {
			return err
		}
		return child.Commit()
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := otm.CheckOpacity(rec.History(), otm.CheckConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Fatalf("recorded facade run must be opaque:\n%s", rec.History().Format())
	}
	if v, _ := otm.DirectRead(rec, 1); v != 10 {
		t.Errorf("nested write result = %d, want 10", v)
	}
}

func TestFacadeDiagnoseAndStrong(t *testing.T) {
	h, err := otm.ParseHistory(
		"w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2")
	if err != nil {
		t.Fatal(err)
	}
	d, err := otm.DiagnoseOpacity(h, otm.CheckConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Opaque || len(d.Implicated) == 0 {
		t.Errorf("diagnosis = %+v", d)
	}
	// Strong opacity rejects even the opaque H4.
	h4 := otm.NewHistory().
		Read(1, "x", 0).
		Write(2, "x", 5).Write(2, "y", 5).TryC(2).
		Read(3, "y", 5).
		Read(1, "y", 0).
		MustHistory()
	res, err := otm.CheckStrongOpacity(h4, otm.CheckConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque {
		t.Error("H4 must fail strong opacity through the facade too")
	}
}

func TestFacadeNewEngines(t *testing.T) {
	for name, tm := range map[string]otm.TM{
		"tl2x":     otm.NewTL2Extending(4),
		"sistm":    otm.NewSISTM(4),
		"mvstm-gc": otm.NewMVSTMWithGC(4),
	} {
		if err := otm.DirectWrite(tm, 0, 5); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v, err := otm.DirectRead(tm, 0); err != nil || v != 5 {
			t.Fatalf("%s: read = %d, %v", name, v, err)
		}
	}
}

func TestFacadeErrAborted(t *testing.T) {
	tm := otm.NewTL2(1)
	t1 := tm.Begin()
	if err := otm.DirectWrite(tm, 0, 1); err != nil {
		t.Fatal(err)
	}
	_, err := t1.Read(0)
	if !errors.Is(err, otm.ErrAborted) {
		t.Errorf("expected ErrAborted through the facade, got %v", err)
	}
}
