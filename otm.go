// Package otm is an executable reproduction of Guerraoui & Kapałka,
// "On the Correctness of Transactional Memory" (PPoPP 2008): the formal
// model of TM histories, the opacity correctness criterion (Definition
// 1), its graph characterization (Theorem 2), the weaker criteria the
// paper compares against (§3), seven STM engines covering the strategy
// space of the Ω(k) lower bound (Theorem 3), and the instrumentation to
// measure that bound.
//
// This file is the public facade: it re-exports the pieces a user
// composes — build or record histories, check them against opacity and
// the weaker criteria, and run the STM engines. The implementation lives
// in internal/ packages:
//
//	internal/history   events, histories, ≺H, Complete(H)      (§4)
//	internal/spec      sequential specifications of objects     (§4)
//	internal/core      opacity: legality, Definition 1 checker  (§5)
//	internal/opg       opacity graphs and Theorem 2             (§5.4)
//	internal/criteria  serializability, recoverability, ...     (§3)
//	internal/base      step-counted base shared objects         (§6.1)
//	internal/stm       TM interface, recorder, retry loop
//	internal/stm/dstm  progressive single-version invisible-read engine (Θ(k))
//	internal/stm/tl2   global-clock engine (O(1), not progressive) and
//	                   its LSA-style snapshot-extension variant (tl2x)
//	internal/stm/vstm  visible-read engine (O(1), progressive)
//	internal/stm/mvstm multi-version engine (independent of k; optional GC)
//	internal/stm/gatm  global-atomicity-only engine (O(1), NOT opaque)
//	internal/stm/sistm snapshot-isolation engine (write skew, NOT opaque)
//	internal/cm        contention managers
//	internal/interleave deterministic schedule replay
//	internal/gen       random history & workload generators
//	internal/monitor   online opacity monitoring of live executions
//	internal/controlplane fleet aggregation, telemetry, violation capture
//	internal/telemetry stdlib metrics registry (Prometheus text + JSON)
package otm

import (
	"io"

	"otm/internal/cm"
	"otm/internal/controlplane"
	"otm/internal/core"
	"otm/internal/criteria"
	"otm/internal/history"
	"otm/internal/monitor"
	"otm/internal/opg"
	"otm/internal/spec"
	"otm/internal/stm"
	"otm/internal/stm/dstm"
	"otm/internal/stm/gatm"
	"otm/internal/stm/mvstm"
	"otm/internal/stm/sistm"
	"otm/internal/stm/tl2"
	"otm/internal/stm/vstm"
)

// Core history vocabulary (see internal/history).
type (
	// History is a totally ordered sequence of transactional events.
	History = history.History
	// Event is a single transactional event.
	Event = history.Event
	// TxID identifies a transaction.
	TxID = history.TxID
	// ObjID identifies a shared object.
	ObjID = history.ObjID
	// HistoryBuilder constructs histories fluently.
	HistoryBuilder = history.Builder
)

// NewHistory returns a fluent history builder.
func NewHistory() *HistoryBuilder { return history.NewBuilder() }

// ParseHistory parses the textual history notation (see
// internal/history.Parse for the grammar).
func ParseHistory(s string) (History, error) { return history.Parse(s) }

// Opacity checking (see internal/core).
type (
	// CheckConfig tunes the opacity decision procedure.
	CheckConfig = core.Config
	// CheckResult is an opacity verdict with its witness.
	CheckResult = core.Result
)

// CheckOpacity decides Definition 1 for h (registers initialized to 0 by
// default; supply object specifications via CheckConfig.Objects).
func CheckOpacity(h History, cfg CheckConfig) (CheckResult, error) {
	return core.Check(h, cfg)
}

// Diagnosis explains an opacity violation (first observable event,
// implicated transactions).
type Diagnosis = core.Diagnosis

// DiagnoseOpacity locates the first non-opaque prefix of h and the
// transactions implicated in the violation.
func DiagnoseOpacity(h History, cfg CheckConfig) (Diagnosis, error) {
	return core.Diagnose(h, cfg)
}

// CheckStrongOpacity decides the §5.2 strengthening of opacity that
// additionally preserves the real-time order of operation executions —
// provided to demonstrate why the paper rejects it (see
// internal/core.CheckStrong).
func CheckStrongOpacity(h History, cfg CheckConfig) (CheckResult, error) {
	return core.CheckStrong(h, cfg)
}

// Incremental opacity checking (see internal/core.Incremental).
type (
	// IncrementalCheck decides opacity for successive prefixes of one
	// growing history, reusing search state across appends.
	IncrementalCheck = core.Incremental
	// IncrementalCheckResult is its running verdict.
	IncrementalCheckResult = core.IncrementalResult
)

// NewIncrementalCheck returns an append-driven opacity checker.
func NewIncrementalCheck(cfg CheckConfig) *IncrementalCheck {
	return core.NewIncremental(cfg)
}

// Online monitoring of live executions (see internal/monitor).
type (
	// MonitorSession is one online opacity-monitoring session.
	MonitorSession = monitor.Session
	// MonitorOptions configures a monitoring session.
	MonitorOptions = monitor.Options
	// MonitorVerdict is a session verdict snapshot.
	MonitorVerdict = monitor.Verdict
	// MonitorViolation describes the first observed opacity violation.
	MonitorViolation = monitor.Violation
)

// Monitoring modes and buffer-full policies.
const (
	MonitorSync        = monitor.Sync
	MonitorAsync       = monitor.Async
	MonitorBlock       = monitor.Block
	MonitorDrop        = monitor.Drop
	MonitorStatusOK    = monitor.StatusOpaque
	MonitorStatusBad   = monitor.StatusViolated
	MonitorStatusLossy = monitor.StatusLossy
	MonitorStatusError = monitor.StatusError
)

// NewMonitor starts a monitoring session fed via Append.
func NewMonitor(opts MonitorOptions) *MonitorSession { return monitor.New(opts) }

// AttachMonitor starts a session fed by every event rec records; a
// correct engine keeps it opaque, a broken one is flagged at the exact
// violating event.
func AttachMonitor(rec *Recorder, opts MonitorOptions) *MonitorSession {
	return monitor.Attach(rec, opts)
}

// Monitoring control plane (see internal/controlplane): fleets of
// monitoring sessions with aggregated status, exported telemetry
// (Prometheus text or JSON over HTTP) and replayable violation capture.
type (
	// MonitorStats is a session's lock-free counter snapshot, readable
	// mid-run without perturbing the append path.
	MonitorStats = monitor.Stats
	// Fleet owns and aggregates a set of monitoring sessions.
	Fleet = controlplane.Fleet
	// FleetOptions configures a fleet.
	FleetOptions = controlplane.Options
	// FleetMember is one session of a fleet.
	FleetMember = controlplane.Member
	// FleetStatus is the aggregated fleet verdict and rate snapshot.
	FleetStatus = controlplane.Status
	// FleetViolation is a captured fleet violation record.
	FleetViolation = controlplane.ViolationRecord
	// ViolationArtifact is a replayable violation capture.
	ViolationArtifact = controlplane.Artifact
)

// Fleet-wide violation policies.
const (
	FleetStopOne = controlplane.StopOne
	FleetStopAll = controlplane.StopAll
)

// NewFleet creates an empty monitoring fleet; add members with Add or
// Attach and serve telemetry via its Handler.
func NewFleet(opts FleetOptions) (*Fleet, error) { return controlplane.New(opts) }

// ParseViolationArtifact decodes a violation artifact captured by a
// fleet; Replay re-derives its verdict offline.
func ParseViolationArtifact(r io.Reader) (*ViolationArtifact, error) {
	return controlplane.ParseArtifact(r)
}

// Criteria reports (see internal/criteria).
type CriteriaReport = criteria.Report

// EvaluateCriteria runs opacity plus every §3 criterion on h.
func EvaluateCriteria(h History, objs spec.Objects) (CriteriaReport, error) {
	return criteria.Evaluate(h, objs)
}

// Theorem2Result is a graph-characterization verdict (see internal/opg).
type Theorem2Result = opg.Theorem2Result

// CheckTheorem2 decides opacity via the opacity-graph characterization.
func CheckTheorem2(h History) (Theorem2Result, error) {
	return opg.CheckTheorem2(h)
}

// Object specifications (see internal/spec).
type (
	// ObjectSpecs maps objects to initial specification states.
	ObjectSpecs = spec.Objects
	// ObjectState is one state of a sequential specification.
	ObjectState = spec.State
)

// Object specification constructors.
var (
	NewRegister    = spec.NewRegister
	NewCounter     = spec.NewCounter
	NewCASRegister = spec.NewCASRegister
	NewSet         = spec.NewSet
	NewQueue       = spec.NewQueue
	NewStack       = spec.NewStack
)

// STM programming interface (see internal/stm).
type (
	// TM is a transactional memory over integer registers.
	TM = stm.TM
	// Tx is a live transaction.
	Tx = stm.Tx
	// Recorder wraps a TM and records the history of a run.
	Recorder = stm.Recorder
	// ContentionManager arbitrates conflicts in progressive engines.
	ContentionManager = cm.Manager
)

// ErrAborted is the forceful-abort error of the STM engines.
var ErrAborted = stm.ErrAborted

// Atomically retries fn in fresh transactions until one commits.
func Atomically(tm TM, fn func(Tx) error) error { return stm.Atomically(tm, fn) }

// Nest starts a closed-nested child transaction (§7 of the paper):
// committed children flatten into the parent, aborted children roll back
// alone.
func Nest(parent Tx) Tx { return stm.Nest(parent) }

// DirectRead performs a non-transactional read with single-transaction
// semantics (§7's encapsulation of non-transactional operations).
func DirectRead(tm TM, i int) (int, error) { return stm.DirectRead(tm, i) }

// DirectWrite performs a non-transactional write with single-transaction
// semantics.
func DirectWrite(tm TM, i, v int) error { return stm.DirectWrite(tm, i, v) }

// NewRecorder wraps tm so every transactional event is recorded.
func NewRecorder(tm TM) *Recorder { return stm.NewRecorder(tm) }

// Engine constructors. Each returns a TM over n integer registers
// initialized to 0.
func NewDSTM(n int, mgr ContentionManager) TM { return dstm.New(n, mgr) }

// NewTL2 returns the TL2-style engine (invisible reads, O(1) operations,
// not progressive).
func NewTL2(n int) TM { return tl2.New(n) }

// NewTL2Extending returns the TL2 variant with LSA-style snapshot
// extension: O(1) conflict-free reads, Θ(read-set) revalidation instead
// of an abort when the snapshot is invalidated.
func NewTL2Extending(n int) TM { return tl2.NewExtending(n) }

// NewVSTM returns the visible-read engine (O(1) operations, progressive).
func NewVSTM(n int, mgr ContentionManager) TM { return vstm.New(n, mgr) }

// NewMVSTM returns the multi-version engine (read-only transactions never
// abort; per-operation cost independent of the number of objects).
// Version chains grow with the commit history; use NewMVSTMWithGC for
// bounded chains.
func NewMVSTM(n int) TM { return mvstm.New(n) }

// NewMVSTMWithGC returns the multi-version engine with version garbage
// collection: chains are truncated below the oldest active snapshot.
func NewMVSTMWithGC(n int) TM { return mvstm.NewWithGC(n) }

// NewGATM returns the global-atomicity-only engine — the §6
// counterexample that is NOT opaque. Use it to observe zombies.
func NewGATM(n int) TM { return gatm.New(n) }

// NewSISTM returns the snapshot-isolation engine (the paper's other
// named safety-for-performance trade, §1): reads are always consistent
// snapshots, but write skew makes committed histories non-serializable —
// NOT opaque.
func NewSISTM(n int) TM { return sistm.New(n) }

// Contention manager policies.
var (
	Aggressive ContentionManager = cm.Aggressive{}
	Polite     ContentionManager = cm.Polite{}
	Karma      ContentionManager = cm.Karma{}
	Greedy     ContentionManager = cm.Greedy{}
)
