// The monitoring control plane, end to end.
//
// A Fleet owns a set of online opacity-monitoring sessions and turns
// them into an operable service: one aggregated verdict across every
// session (latching the FIRST violation fleet-wide), live telemetry
// over HTTP (Prometheus text on /metrics, JSON on /status), and — when
// a session flags a violation — a replayable artifact written to
// storage so the verdict can be re-derived offline, on another machine,
// with no access to the original execution.
//
// This program runs a three-member fleet:
//
//	shard-0, shard-1 — tl2, opaque: concurrent increment workloads that
//	                   the monitor certifies clean;
//	zombie           — gatm, NOT opaque: the paper's §2 schedule, where
//	                   a reader observes x from before and y from after
//	                   a concurrent commit.
//
// It scrapes /metrics and /status from the live fleet, lets the zombie
// session trip the first-violation latch, then parses the captured
// artifact back from disk and replays it through the offline checker,
// confirming the same verdict at the same event with the same culprits.
//
// Run with: go run ./examples/fleet
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"otm"
)

const (
	objX = 0
	objY = 1
)

// healthyWorkload runs committed increment transactions over x and y.
func healthyWorkload(rec *otm.Recorder, goroutines, txPerG int) {
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txPerG; i++ {
				otm.Atomically(rec, func(tx otm.Tx) error {
					x, err := tx.Read(objX)
					if err != nil {
						return err
					}
					return tx.Write(objY, x+1)
				})
			}
		}()
	}
	wg.Wait()
}

// zombieSchedule replays §2 on a recorder over gatm: the reader sees
// x=0 from before the updater's commit and y=1 from after it.
func zombieSchedule(rec *otm.Recorder) {
	reader := rec.Begin()
	reader.Read(objX)
	otm.Atomically(rec, func(tx otm.Tx) error {
		if err := tx.Write(objX, 1); err != nil {
			return err
		}
		return tx.Write(objY, 1)
	})
	reader.Read(objY)
	reader.Abort()
}

// scrape fetches one path from the fleet's HTTP endpoint.
func scrape(base, path string) string {
	resp, err := http.Get(base + path)
	if err != nil {
		return "scrape failed: " + err.Error()
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func main() {
	dir, err := os.MkdirTemp("", "otm-fleet-example")
	if err != nil {
		fmt.Println("tempdir:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)

	fleet, err := otm.NewFleet(otm.FleetOptions{
		Monitor:      otm.MonitorOptions{Mode: otm.MonitorSync},
		Stop:         otm.FleetStopOne,
		ArtifactsURI: dir,
		OnViolation: func(session string, v otm.FleetViolation) {
			fmt.Printf("fleet: VIOLATION in %q at event %d (%s), culprits %v\n",
				session, v.PrefixLen-1, v.Event, v.Culprits)
		},
	})
	if err != nil {
		fmt.Println("fleet:", err)
		os.Exit(1)
	}

	// Serve the fleet's telemetry on a loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("listen:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: fleet.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Two healthy tl2 shards, each a fleet member fed by a recorder tap.
	for _, name := range []string{"shard-0", "shard-1"} {
		rec := otm.NewRecorder(otm.NewTL2(2))
		if _, err := fleet.Attach(name, rec); err != nil {
			fmt.Println("attach:", err)
			os.Exit(1)
		}
		healthyWorkload(rec, 4, 50)
	}

	// Scrape the live fleet before anything goes wrong.
	fmt.Println("-- /metrics while the fleet is clean (excerpt) --")
	for _, line := range strings.Split(scrape(base, "/metrics"), "\n") {
		if strings.HasPrefix(line, "otm_fleet_") {
			fmt.Println(line)
		}
	}

	// A gatm member runs the §2 schedule; the monitor flags the second
	// read, and the fleet captures a replayable artifact.
	rec := otm.NewRecorder(otm.NewGATM(2))
	if _, err := fleet.Attach("zombie", rec); err != nil {
		fmt.Println("attach:", err)
		os.Exit(1)
	}
	zombieSchedule(rec)

	st := fleet.Close()
	fmt.Printf("\nfleet verdict: %s (%d sessions, %d events, %d violations)\n",
		st.FleetStatus, st.Sessions, st.Events, st.Violations)
	if st.First == nil {
		fmt.Println("no violation captured — unexpected for gatm")
		os.Exit(1)
	}
	fmt.Printf("captured artifact: %s\n", st.First.Artifact)

	// Offline replay: parse the artifact back from disk and re-derive
	// the verdict with the batch checker. Nothing from the live run is
	// needed — the artifact is self-contained.
	f, err := os.Open(filepath.Join(dir, st.First.Artifact))
	if err != nil {
		fmt.Println("open artifact:", err)
		os.Exit(1)
	}
	a, err := otm.ParseViolationArtifact(f)
	f.Close()
	if err != nil {
		fmt.Println("parse artifact:", err)
		os.Exit(1)
	}
	out, err := a.Replay(otm.CheckConfig{})
	if err != nil {
		fmt.Println("replay:", err)
		os.Exit(1)
	}
	fmt.Printf("offline replay: verdict match=%v culprits match=%v -> confirmed=%v\n",
		out.VerdictMatches, out.CulpritsMatch, out.Confirmed())
}
