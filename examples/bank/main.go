// Bank: concurrent money transfers over every opaque engine, with a
// recorded audit. Each engine runs the same workload; the total balance
// must be conserved in every committed snapshot, and a recorded small run
// must pass the opacity checker.
//
// Run with: go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"otm"
)

const (
	accounts  = 16
	initial   = 1000
	workers   = 4
	transfers = 200
)

func engines() map[string]func() otm.TM {
	return map[string]func() otm.TM{
		"dstm":  func() otm.TM { return otm.NewDSTM(accounts, otm.Greedy) },
		"tl2":   func() otm.TM { return otm.NewTL2(accounts) },
		"vstm":  func() otm.TM { return otm.NewVSTM(accounts, otm.Karma) },
		"mvstm": func() otm.TM { return otm.NewMVSTM(accounts) },
	}
}

func seedAccounts(tm otm.TM) error {
	return otm.Atomically(tm, func(tx otm.Tx) error {
		for i := 0; i < accounts; i++ {
			if err := tx.Write(i, initial); err != nil {
				return err
			}
		}
		return nil
	})
}

func transfer(tm otm.TM, from, to, amount int) error {
	return otm.Atomically(tm, func(tx otm.Tx) error {
		f, err := tx.Read(from)
		if err != nil {
			return err
		}
		if f < amount {
			return nil // insufficient funds; commit a no-op
		}
		t, err := tx.Read(to)
		if err != nil {
			return err
		}
		if err := tx.Write(from, f-amount); err != nil {
			return err
		}
		return tx.Write(to, t+amount)
	})
}

func total(tm otm.TM) (int, error) {
	var sum int
	err := otm.Atomically(tm, func(tx otm.Tx) error {
		sum = 0
		for i := 0; i < accounts; i++ {
			v, err := tx.Read(i)
			if err != nil {
				return err
			}
			sum += v
		}
		return nil
	})
	return sum, err
}

func runWorkload(name string, mk func() otm.TM) {
	tm := mk()
	if err := seedAccounts(tm); err != nil {
		log.Fatalf("%s: seed: %v", name, err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				if err := transfer(tm, from, to, rng.Intn(50)+1); err != nil {
					log.Fatalf("%s: transfer: %v", name, err)
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	sum, err := total(tm)
	if err != nil {
		log.Fatalf("%s: total: %v", name, err)
	}
	status := "OK"
	if sum != accounts*initial {
		status = "VIOLATED"
	}
	fmt.Printf("%-6s total=%d (want %d) %s\n", name, sum, accounts*initial, status)
}

// auditedRun records a 2-worker, 3-account run on the engine and checks
// opacity of the produced history.
func auditedRun(name string, mk func() otm.TM) {
	rec := otm.NewRecorder(mk())
	if err := otm.Atomically(rec, func(tx otm.Tx) error {
		for i := 0; i < 3; i++ {
			if err := tx.Write(i, 10); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5; i++ {
				from, to := rng.Intn(3), rng.Intn(3)
				if from == to {
					continue
				}
				_ = otm.Atomically(rec, func(tx otm.Tx) error {
					f, err := tx.Read(from)
					if err != nil {
						return err
					}
					t, err := tx.Read(to)
					if err != nil {
						return err
					}
					if err := tx.Write(from, f-1); err != nil {
						return err
					}
					return tx.Write(to, t+1)
				})
			}
		}(int64(w) + 7)
	}
	wg.Wait()
	res, err := otm.CheckOpacity(rec.History(), otm.CheckConfig{})
	if err != nil {
		log.Fatalf("%s: audit: %v", name, err)
	}
	if !res.Opaque {
		log.Fatalf("%s: recorded run NOT opaque:\n%s", name, rec.History().Format())
	}
	fmt.Printf("%-6s audited run: opaque (witness %v)\n", name, res.Witness.Order)
}

func main() {
	fmt.Printf("bank: %d accounts × %d, %d workers × %d transfers\n\n",
		accounts, initial, workers, transfers)
	names := []string{"dstm", "tl2", "vstm", "mvstm"}
	es := engines()
	for _, name := range names {
		runWorkload(name, es[name])
	}
	fmt.Println()
	for _, name := range names {
		auditedRun(name, es[name])
	}
}
