// The paper's §2 motivating example, made executable.
//
// Two shared objects with the application invariant y == x² (and x ≥ 2).
// Every transaction preserves the invariant. A concurrent updater changes
// (x=4, y=16) to (x=2, y=4). A reader that sees the OLD x and the NEW y
// observes x=4, y=4 — and computing 1/(y−x) divides by zero inside the
// transaction, before any abort can save it. The paper's point: in a TM
// (unlike a sandboxed database) the zombie's computation already
// happened; opacity exists to make such states unobservable.
//
// This program replays the schedule against:
//
//	gatm — global atomicity only: the division by zero HAPPENS (caught
//	       here with recover, which a real application may not have);
//	dstm — opaque: the reader is forcefully aborted at the second read
//	       and the division is never reached.
//
// Both engines then run the same schedule again under a live opacity
// monitor (a recorder tap feeding the incremental checker): for gatm the
// monitor flags the violation at the exact read that observed the
// inconsistent snapshot — while the zombie transaction is still running
// — and the diagnosis names the culpable transaction; for dstm the
// session certifies the run opaque.
//
// Run with: go run ./examples/invariant
package main

import (
	"errors"
	"fmt"

	"otm"
)

const (
	objX = 0
	objY = 1
)

// setUp establishes x=4, y=16 (the invariant y == x²).
func setUp(tm otm.TM) error {
	return otm.Atomically(tm, func(tx otm.Tx) error {
		if err := tx.Write(objX, 4); err != nil {
			return err
		}
		return tx.Write(objY, 16)
	})
}

// schedule interleaves the reader and the updater exactly as in §2:
// the reader reads x, the updater commits (x=2, y=4), the reader reads y
// and computes 1/(y-x). It reports what happened to the reader.
func schedule(tm otm.TM) (outcome string) {
	reader := tm.Begin()
	x, err := reader.Read(objX)
	if err != nil {
		return "reader aborted at first read"
	}

	// The updater runs to completion between the reader's two reads.
	if err := otm.Atomically(tm, func(tx otm.Tx) error {
		if err := tx.Write(objX, 2); err != nil {
			return err
		}
		return tx.Write(objY, 4)
	}); err != nil {
		return "updater failed"
	}

	y, err := reader.Read(objY)
	if err != nil {
		if errors.Is(err, otm.ErrAborted) {
			return "reader forcefully aborted before observing the inconsistency (opacity at work)"
		}
		return "reader failed: " + err.Error()
	}

	// The zombie computation of §2.
	defer func() {
		if r := recover(); r != nil {
			outcome = fmt.Sprintf("reader read x=%d y=%d and PANICKED computing 1/(y-x): %v", x, y, r)
		}
	}()
	q := 1 / (y - x)
	reader.Abort()
	return fmt.Sprintf("reader read x=%d y=%d, computed 1/(y-x)=%d", x, y, q)
}

func main() {
	fmt.Println("invariant: y == x², updater changes (4,16) -> (2,4)")
	for _, tc := range []struct {
		name string
		tm   otm.TM
	}{
		{"gatm (not opaque)", otm.NewGATM(2)},
		{"dstm (opaque)    ", otm.NewDSTM(2, otm.Aggressive)},
	} {
		if err := setUp(tc.tm); err != nil {
			fmt.Printf("%s: setup failed: %v\n", tc.name, err)
			continue
		}
		fmt.Printf("%s: %s\n", tc.name, schedule(tc.tm))
	}

	fmt.Println("\n-- the same schedules under a live opacity monitor --")
	for _, tc := range []struct {
		name string
		tm   otm.TM
	}{
		{"gatm", otm.NewGATM(2)},
		{"dstm", otm.NewDSTM(2, otm.Aggressive)},
	} {
		rec := otm.NewRecorder(tc.tm)
		session := otm.AttachMonitor(rec, otm.MonitorOptions{
			OnViolation: func(v otm.MonitorViolation) {
				// Fired synchronously, from inside the violating read:
				// the zombie has not even returned to the application yet.
				fmt.Printf("%s: VIOLATION at event %d (%s)\n", tc.name, v.PrefixLen-1, v.Event)
			},
		})
		if err := setUp(rec); err != nil {
			fmt.Printf("%s: setup failed: %v\n", tc.name, err)
			continue
		}
		outcome := schedule(rec)
		verdict := session.Close()
		fmt.Printf("%s: %s\n", tc.name, outcome)
		fmt.Printf("%s: monitor verdict: %s (%d events, %d checked, %d search nodes, %d fast-path)\n",
			tc.name, verdict.Status, verdict.Events, verdict.Checked, verdict.Nodes, verdict.FastPath)
		if viol := session.Violation(); viol != nil && viol.Diagnosed {
			fmt.Printf("%s: diagnosis: %s\n", tc.name, viol.Diagnosis)
		}
	}
}
