// Quickstart: the three things this library does.
//
//  1. Build a transactional history and check it against opacity
//     (Definition 1) and the weaker criteria of the paper's §3.
//  2. Run a real STM engine through the transactional API.
//  3. Record a live concurrent run and audit it with the checker.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"otm"
)

func main() {
	checkPaperFigure()
	useAnEngine()
	auditARecordedRun()
}

// checkPaperFigure rebuilds the paper's Figure 1 history — the example
// that is globally atomic and recoverable yet not opaque, because the
// aborted T2 observed the impossible snapshot x=1, y=2.
func checkPaperFigure() {
	h := otm.NewHistory().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 1).
		Write(3, "x", 2).Write(3, "y", 2).Commits(3).
		Read(2, "y", 2).Aborts(2).
		MustHistory()

	rep, err := otm.EvaluateCriteria(h, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- Figure 1 of the paper ---")
	fmt.Print(rep)
	fmt.Println()
}

// useAnEngine runs a transaction against the DSTM-style engine.
func useAnEngine() {
	tm := otm.NewDSTM(4, otm.Aggressive)
	err := otm.Atomically(tm, func(tx otm.Tx) error {
		for i := 0; i < 4; i++ {
			if err := tx.Write(i, (i+1)*10); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	var sum int
	err = otm.Atomically(tm, func(tx otm.Tx) error {
		sum = 0
		for i := 0; i < 4; i++ {
			v, err := tx.Read(i)
			if err != nil {
				return err
			}
			sum += v
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- STM engine ---")
	fmt.Printf("sum of committed writes: %d (want 100)\n\n", sum)
}

// auditARecordedRun records a small concurrent run on the TL2-style
// engine and feeds the history to the opacity checker.
func auditARecordedRun() {
	rec := otm.NewRecorder(otm.NewTL2(3))
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_ = otm.Atomically(rec, func(tx otm.Tx) error {
				v, err := tx.Read(id)
				if err != nil {
					return err
				}
				return tx.Write((id+1)%3, v+id+1)
			})
		}(g)
	}
	wg.Wait()

	h := rec.History()
	res, err := otm.CheckOpacity(h, otm.CheckConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- recorded concurrent run (tl2) ---")
	fmt.Print(h.Format())
	if res.Opaque {
		fmt.Printf("opacity: yes, witness %v\n", res.Witness.Order)
	} else {
		fmt.Println("opacity: VIOLATED — this would be an engine bug")
	}
}
