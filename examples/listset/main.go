// Listset: a sorted linked-list set built on the transactional API — the
// dynamic-sized data structure that motivated DSTM (the paper's [14]).
// Nodes live in TM registers; traversal, insertion and removal each run
// as one transaction, so the list is always observed in a consistent
// state regardless of concurrency.
//
// Register layout (integer registers only):
//
//	reg 0            head: index of the first node + 1, or 0 for empty
//	reg 1            bump allocator: next free node slot
//	reg 2+2j, 3+2j   node j: value, next (same encoding as head)
//
// Run with: go run ./examples/listset
package main

import (
	"fmt"
	"log"
	"sync"

	"otm"
)

const (
	regHead  = 0
	regAlloc = 1
	nodeBase = 2
	maxNodes = 4096
)

// List is a sorted int set stored inside a TM.
type List struct {
	tm otm.TM
}

// NewList allocates the backing TM and initializes the allocator.
func NewList(tm otm.TM) (*List, error) {
	l := &List{tm: tm}
	err := otm.Atomically(tm, func(tx otm.Tx) error {
		if err := tx.Write(regHead, 0); err != nil {
			return err
		}
		return tx.Write(regAlloc, 0)
	})
	return l, err
}

func valueReg(node int) int { return nodeBase + 2*node }
func nextReg(node int) int  { return nodeBase + 2*node + 1 }

// Insert adds v; it returns false if v was already present.
func (l *List) Insert(v int) (added bool, err error) {
	err = otm.Atomically(l.tm, func(tx otm.Tx) error {
		added = false
		prevNext := regHead
		cur, err := tx.Read(regHead)
		if err != nil {
			return err
		}
		for cur != 0 {
			node := cur - 1
			val, err := tx.Read(valueReg(node))
			if err != nil {
				return err
			}
			if val == v {
				return nil // already present
			}
			if val > v {
				break
			}
			prevNext = nextReg(node)
			if cur, err = tx.Read(prevNext); err != nil {
				return err
			}
		}
		// Allocate a node and splice it in before cur.
		slot, err := tx.Read(regAlloc)
		if err != nil {
			return err
		}
		if slot >= maxNodes {
			return fmt.Errorf("listset: out of nodes")
		}
		if err := tx.Write(regAlloc, slot+1); err != nil {
			return err
		}
		if err := tx.Write(valueReg(slot), v); err != nil {
			return err
		}
		if err := tx.Write(nextReg(slot), cur); err != nil {
			return err
		}
		if err := tx.Write(prevNext, slot+1); err != nil {
			return err
		}
		added = true
		return nil
	})
	return added, err
}

// Remove deletes v; it returns false if v was absent.
func (l *List) Remove(v int) (removed bool, err error) {
	err = otm.Atomically(l.tm, func(tx otm.Tx) error {
		removed = false
		prevNext := regHead
		cur, err := tx.Read(regHead)
		if err != nil {
			return err
		}
		for cur != 0 {
			node := cur - 1
			val, err := tx.Read(valueReg(node))
			if err != nil {
				return err
			}
			if val == v {
				next, err := tx.Read(nextReg(node))
				if err != nil {
					return err
				}
				if err := tx.Write(prevNext, next); err != nil {
					return err
				}
				removed = true
				return nil
			}
			if val > v {
				return nil
			}
			prevNext = nextReg(node)
			if cur, err = tx.Read(prevNext); err != nil {
				return err
			}
		}
		return nil
	})
	return removed, err
}

// Contains reports membership.
func (l *List) Contains(v int) (found bool, err error) {
	err = otm.Atomically(l.tm, func(tx otm.Tx) error {
		found = false
		cur, err := tx.Read(regHead)
		if err != nil {
			return err
		}
		for cur != 0 {
			node := cur - 1
			val, err := tx.Read(valueReg(node))
			if err != nil {
				return err
			}
			if val == v {
				found = true
				return nil
			}
			if val > v {
				return nil
			}
			if cur, err = tx.Read(nextReg(node)); err != nil {
				return err
			}
		}
		return nil
	})
	return found, err
}

// Snapshot returns the contents, in order, in one transaction.
func (l *List) Snapshot() (out []int, err error) {
	err = otm.Atomically(l.tm, func(tx otm.Tx) error {
		out = out[:0]
		cur, err := tx.Read(regHead)
		if err != nil {
			return err
		}
		for cur != 0 {
			node := cur - 1
			val, err := tx.Read(valueReg(node))
			if err != nil {
				return err
			}
			out = append(out, val)
			if cur, err = tx.Read(nextReg(node)); err != nil {
				return err
			}
		}
		return nil
	})
	return out, err
}

func main() {
	const regs = nodeBase + 2*maxNodes
	for _, tc := range []struct {
		name string
		tm   otm.TM
	}{
		{"dstm", otm.NewDSTM(regs, otm.Greedy)},
		{"tl2", otm.NewTL2(regs)},
		{"mvstm", otm.NewMVSTM(regs)},
	} {
		l, err := NewList(tc.tm)
		if err != nil {
			log.Fatal(err)
		}
		// 4 goroutines insert disjoint strided values, concurrently with
		// membership queries.
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					v := i*4 + w
					if _, err := l.Insert(v); err != nil {
						log.Fatal(err)
					}
					if ok, err := l.Contains(v); err != nil || !ok {
						log.Fatalf("%s: inserted %d not found (err=%v)", tc.name, v, err)
					}
				}
			}(w)
		}
		wg.Wait()
		// Remove the odd values.
		for v := 1; v < 200; v += 2 {
			if _, err := l.Remove(v); err != nil {
				log.Fatal(err)
			}
		}
		snap, err := l.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		sorted := true
		for i := 1; i < len(snap); i++ {
			if snap[i-1] >= snap[i] {
				sorted = false
			}
		}
		fmt.Printf("%-6s %d elements after removals, sorted=%v, first=%v\n",
			tc.name, len(snap), sorted, snap[:min(6, len(snap))])
		if len(snap) != 100 || !sorted {
			log.Fatalf("%s: expected 100 sorted even values", tc.name)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
