// Objects: opacity over arbitrary shared objects (§3.4 of the paper).
//
// The TM correctness criterion takes the objects' sequential
// specifications as an input parameter. This example builds three
// histories over a queue, a counter and registers, and shows how the
// verdicts change with the semantics:
//
//  1. k transactions concurrently increment a counter — opaque and
//     globally atomic under counter semantics, yet rejected by strict
//     recoverability (the paper's argument that recoverability is too
//     strong for arbitrary objects);
//  2. a producer/consumer pipeline over a queue — opaque, with the
//     dequeue return values pinning the serialization order;
//  3. the same pipeline with an element dequeued twice — caught.
//
// Run with: go run ./examples/objects
package main

import (
	"fmt"
	"log"

	"otm"
)

func check(name string, h otm.History, objs otm.ObjectSpecs) {
	rep, err := otm.EvaluateCriteria(h, objs)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("--- %s ---\n%s\n", name, rep)
}

func main() {
	// 1. Concurrent increments (all invocations overlap).
	b := otm.NewHistory()
	for tx := otm.TxID(1); tx <= 3; tx++ {
		b.Inv(tx, "c", "inc", nil)
	}
	for tx := otm.TxID(1); tx <= 3; tx++ {
		b.Ret(tx, "c", "inc", "ok")
	}
	for tx := otm.TxID(1); tx <= 3; tx++ {
		b.Commits(tx)
	}
	b.Op(4, "c", "get", nil, 3).Commits(4)
	check("three concurrent counter increments + reader",
		b.MustHistory(), otm.ObjectSpecs{"c": otm.NewCounter(0)})

	// 2. Producer/consumer over a queue.
	pipeline := otm.NewHistory().
		Op(1, "q", "enq", "job-a", "ok").Commits(1).
		Op(2, "q", "enq", "job-b", "ok").Commits(2).
		Op(3, "q", "deq", nil, "job-a").Op(3, "q", "deq", nil, "job-b").Commits(3).
		MustHistory()
	check("producer/consumer pipeline", pipeline, otm.ObjectSpecs{"q": otm.NewQueue()})

	// 3. A duplicated dequeue.
	dup := otm.NewHistory().
		Op(1, "q", "enq", "job-a", "ok").Commits(1).
		Op(2, "q", "deq", nil, "job-a").Commits(2).
		Op(3, "q", "deq", nil, "job-a").Commits(3).
		MustHistory()
	check("duplicated dequeue (must fail)", dup, otm.ObjectSpecs{"q": otm.NewQueue()})
}
