// Package base provides the base shared objects on which the STM engines
// of this repository are built, instrumented with the step-counting cost
// model of the paper's §6.1: "in a single step, a process issues a single
// instruction on a single base shared object".
//
// Every load, store, CAS or fetch-and-add on a base object increments the
// StepCounter passed to it, making the Ω(k) lower bound of Theorem 3 and
// the Θ(k)/O(1) upper bounds of the engine archetypes directly
// measurable. Purely transaction-local work (read-set and write-set
// bookkeeping in the transaction descriptor) deliberately does not count:
// the paper's complexity metric counts instructions on base *shared*
// objects.
//
// A nil *StepCounter is valid everywhere and counts nothing, so the same
// engine code serves both instrumented benchmarks and uninstrumented
// throughput runs.
package base

import "sync/atomic"

// StepCounter accumulates the number of base-object steps executed on
// behalf of one transaction. It is owned by a single goroutine (the
// process executing the transaction) and is not safe for concurrent use;
// a nil counter discards counts.
type StepCounter struct {
	n int64
}

// Step records one base-object instruction.
func (c *StepCounter) Step() {
	if c != nil {
		c.n++
	}
}

// Count returns the number of steps recorded so far.
func (c *StepCounter) Count() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Reset zeroes the counter.
func (c *StepCounter) Reset() {
	if c != nil {
		c.n = 0
	}
}

// Word is a base shared object holding a pointer to a value of type T,
// supporting atomic load, store and compare-and-swap. STM engines use
// Words for object metadata (locators, version records) and object
// values.
type Word[T any] struct {
	p atomic.Pointer[T]
}

// Load atomically reads the word (one step).
func (w *Word[T]) Load(c *StepCounter) *T {
	c.Step()
	return w.p.Load()
}

// Store atomically writes the word (one step).
func (w *Word[T]) Store(c *StepCounter, v *T) {
	c.Step()
	w.p.Store(v)
}

// CAS atomically replaces old with new if the word still holds old
// (pointer identity); one step regardless of outcome.
func (w *Word[T]) CAS(c *StepCounter, old, new *T) bool {
	c.Step()
	return w.p.CompareAndSwap(old, new)
}

// U64 is a base shared object holding a 64-bit unsigned integer — the
// shape of global version clocks and versioned lock words.
type U64 struct {
	v atomic.Uint64
}

// Load atomically reads the value (one step).
func (u *U64) Load(c *StepCounter) uint64 {
	c.Step()
	return u.v.Load()
}

// Store atomically writes the value (one step).
func (u *U64) Store(c *StepCounter, x uint64) {
	c.Step()
	u.v.Store(x)
}

// Add atomically adds delta and returns the new value (one step).
func (u *U64) Add(c *StepCounter, delta uint64) uint64 {
	c.Step()
	return u.v.Add(delta)
}

// CAS atomically replaces old with new if the value is still old; one
// step regardless of outcome.
func (u *U64) CAS(c *StepCounter, old, new uint64) bool {
	c.Step()
	return u.v.CompareAndSwap(old, new)
}

// I64 is a base shared object holding a 64-bit signed integer — used for
// register values in value-logging engines.
type I64 struct {
	v atomic.Int64
}

// Load atomically reads the value (one step).
func (i *I64) Load(c *StepCounter) int64 {
	c.Step()
	return i.v.Load()
}

// Store atomically writes the value (one step).
func (i *I64) Store(c *StepCounter, x int64) {
	c.Step()
	i.v.Store(x)
}

// CAS atomically replaces old with new if the value is still old; one
// step regardless of outcome.
func (i *I64) CAS(c *StepCounter, old, new int64) bool {
	c.Step()
	return i.v.CompareAndSwap(old, new)
}

// I32 is a base shared object holding a 32-bit signed integer — the shape
// of transaction status words.
type I32 struct {
	v atomic.Int32
}

// Load atomically reads the value (one step).
func (i *I32) Load(c *StepCounter) int32 {
	c.Step()
	return i.v.Load()
}

// Store atomically writes the value (one step).
func (i *I32) Store(c *StepCounter, x int32) {
	c.Step()
	i.v.Store(x)
}

// CAS atomically replaces old with new if the value is still old; one
// step regardless of outcome.
func (i *I32) CAS(c *StepCounter, old, new int32) bool {
	c.Step()
	return i.v.CompareAndSwap(old, new)
}
