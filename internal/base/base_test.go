package base

import (
	"sync"
	"testing"
)

func TestStepCounter(t *testing.T) {
	var c StepCounter
	if c.Count() != 0 {
		t.Error("fresh counter must be zero")
	}
	c.Step()
	c.Step()
	if c.Count() != 2 {
		t.Errorf("Count = %d, want 2", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Error("Reset must zero the counter")
	}
}

func TestNilStepCounter(t *testing.T) {
	var c *StepCounter
	c.Step() // must not panic
	c.Reset()
	if c.Count() != 0 {
		t.Error("nil counter counts nothing")
	}
	var w Word[int]
	v := 7
	w.Store(nil, &v)
	if *w.Load(nil) != 7 {
		t.Error("nil counter must not affect the operation")
	}
}

func TestWordCAS(t *testing.T) {
	var c StepCounter
	var w Word[string]
	a, b := "a", "b"
	w.Store(&c, &a)
	if !w.CAS(&c, &a, &b) {
		t.Error("CAS from current pointer must succeed")
	}
	if w.CAS(&c, &a, &b) {
		t.Error("CAS from stale pointer must fail")
	}
	if *w.Load(&c) != "b" {
		t.Error("CAS must install the new pointer")
	}
	if c.Count() != 4 {
		t.Errorf("store+2cas+load = 4 steps, got %d", c.Count())
	}
}

func TestU64(t *testing.T) {
	var c StepCounter
	var u U64
	u.Store(&c, 5)
	if u.Add(&c, 3) != 8 {
		t.Error("Add must return the new value")
	}
	if !u.CAS(&c, 8, 9) || u.CAS(&c, 8, 10) {
		t.Error("CAS semantics wrong")
	}
	if u.Load(&c) != 9 {
		t.Error("Load after CAS")
	}
	if c.Count() != 5 {
		t.Errorf("5 operations = 5 steps, got %d", c.Count())
	}
}

func TestI64I32(t *testing.T) {
	var c StepCounter
	var i I64
	i.Store(&c, -3)
	if i.Load(&c) != -3 {
		t.Error("I64 round trip")
	}
	if !i.CAS(&c, -3, 4) {
		t.Error("I64 CAS")
	}
	var s I32
	s.Store(&c, 1)
	if !s.CAS(&c, 1, 2) || s.CAS(&c, 1, 3) {
		t.Error("I32 CAS semantics")
	}
	if s.Load(&c) != 2 {
		t.Error("I32 value")
	}
}

func TestWordConcurrentCAS(t *testing.T) {
	// Many goroutines CAS-increment a shared counter through a Word;
	// exactly one per round may win.
	var w Word[int]
	zero := 0
	w.Store(nil, &zero)
	const goroutines, rounds = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					cur := w.Load(nil)
					next := *cur + 1
					if w.CAS(nil, cur, &next) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := *w.Load(nil); got != goroutines*rounds {
		t.Errorf("lost updates: %d, want %d", got, goroutines*rounds)
	}
}

func TestU64ConcurrentAdd(t *testing.T) {
	var u U64
	const goroutines, rounds = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				u.Add(nil, 1)
			}
		}()
	}
	wg.Wait()
	if u.Load(nil) != goroutines*rounds {
		t.Errorf("Add lost updates: %d", u.Load(nil))
	}
}
