package gen

// Differential and property tests tying the whole formal stack together
// on randomly generated histories:
//
//   - experiment E8: the graph characterization (Theorem 2, internal/opg)
//     must agree with the definitional checker (Definition 1,
//     internal/core) on every history;
//   - opacity must imply strict serializability of the committed
//     projection (the "opacity extends global atomicity" direction);
//   - opacity witnesses must satisfy all three clauses of Definition 1;
//   - Complete(H) members must be complete, well-formed extensions.

import (
	"testing"

	"otm/internal/core"
	"otm/internal/criteria"
	"otm/internal/history"
	"otm/internal/opg"
)

// smallCfg keeps histories inside Theorem 2's factorial search budget.
var smallCfg = Config{Txs: 3, Objs: 2, MaxOps: 2, WithInit: true, PStaleRead: 0.35}

func TestDifferentialTheorem2(t *testing.T) {
	seeds := int64(400)
	if !testing.Short() {
		seeds = 1500
	}
	opaqueCount, notCount := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		h := History(smallCfg, seed)
		defRes, err := core.Opaque(h)
		if err != nil {
			t.Fatalf("seed %d: core: %v\n%s", seed, err, h.Format())
		}
		gRes, err := opg.CheckTheorem2(h)
		if err != nil {
			t.Fatalf("seed %d: opg: %v\n%s", seed, err, h.Format())
		}
		if defRes.Opaque != gRes.Opaque {
			t.Fatalf("seed %d: Definition 1 says opaque=%v but Theorem 2 says %v\nhistory:\n%s\nconsistent=%v reason=%v",
				seed, defRes.Opaque, gRes.Opaque, h.Format(), gRes.Consistent, gRes.Reason)
		}
		if defRes.Opaque {
			opaqueCount++
		} else {
			notCount++
		}
	}
	// The corpus must genuinely exercise both verdicts.
	if opaqueCount < 20 || notCount < 20 {
		t.Errorf("unbalanced corpus: %d opaque, %d not", opaqueCount, notCount)
	}
}

func TestOpacityImpliesStrictSerializability(t *testing.T) {
	// The implication holds for the *completion* chosen by the witness:
	// a committed transaction may legitimately read from a commit-pending
	// one (the paper's dual-semantics subtlety, §5.2), in which case the
	// committed projection of h itself — which drops the commit-pending
	// writer — is not serializable, while the projection of the witness
	// completion (where that writer IS committed) always is. When h has
	// no commit-pending transactions the two statements coincide.
	cfg := Config{Txs: 4, Objs: 3, MaxOps: 3, PStaleRead: 0.3}
	for seed := int64(0); seed < 300; seed++ {
		h := History(cfg, seed)
		res, err := core.Opaque(h)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Opaque {
			continue
		}
		ok, err := criteria.StrictlySerializable(res.Witness.Completion, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: witness completion not strictly serializable:\n%s",
				seed, res.Witness.Completion.Format())
		}
		if len(h.CommitPendingTxs()) == 0 {
			ok, err := criteria.StrictlySerializable(h, nil)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !ok {
				t.Fatalf("seed %d: opaque history without commit-pending txs must be strictly serializable:\n%s",
					seed, h.Format())
			}
		}
	}
}

func TestOpacityWitnessSatisfiesDefinition(t *testing.T) {
	cfg := Config{Txs: 4, Objs: 2, MaxOps: 3, PStaleRead: 0.3}
	for seed := int64(0); seed < 200; seed++ {
		h := History(cfg, seed)
		res, err := core.Opaque(h)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Opaque {
			continue
		}
		w := res.Witness
		s := w.Sequential
		if !s.Sequential() {
			t.Fatalf("seed %d: witness S not sequential", seed)
		}
		if !s.Complete() {
			t.Fatalf("seed %d: witness S not complete", seed)
		}
		if !history.Equivalent(s, w.Completion) {
			t.Fatalf("seed %d: witness S not equivalent to the completion", seed)
		}
		if !history.PreservesRealTimeOrder(h, s) {
			t.Fatalf("seed %d: witness S breaks ≺H", seed)
		}
		if tx, ok := core.AllLegal(s, nil); !ok {
			t.Fatalf("seed %d: T%d illegal in witness S:\n%s", seed, int(tx), s.Format())
		}
	}
}

func TestCompletionsAreCompleteWellFormedExtensions(t *testing.T) {
	cfg := Config{Txs: 4, Objs: 2, MaxOps: 2, PLeaveLive: 0.5}
	for seed := int64(0); seed < 200; seed++ {
		h := History(cfg, seed)
		n := 0
		h.EachCompletion(func(c history.History) bool {
			n++
			if err := c.WellFormed(); err != nil {
				t.Fatalf("seed %d: completion malformed: %v", seed, err)
			}
			if !c.Complete() {
				t.Fatalf("seed %d: completion has live transactions", seed)
			}
			for i := range h {
				if c[i] != h[i] {
					t.Fatalf("seed %d: completion rewrites the original events", seed)
				}
			}
			for _, tx := range h.Transactions() {
				switch h.Status(tx) {
				case history.StatusCommitted:
					if !c.Committed(tx) {
						t.Fatalf("seed %d: completed status changed", seed)
					}
				case history.StatusAborted:
					if !c.Aborted(tx) {
						t.Fatalf("seed %d: completed status changed", seed)
					}
				case history.StatusLive:
					if !c.Aborted(tx) {
						t.Fatalf("seed %d: live non-commit-pending T%d not aborted", seed, int(tx))
					}
				}
			}
			return true
		})
		want := 1 << len(h.CommitPendingTxs())
		if n != want {
			t.Fatalf("seed %d: %d completions, want %d", seed, n, want)
		}
	}
}

func TestEquivalenceUnderReinterleaving(t *testing.T) {
	// Concatenating the per-transaction projections in any order yields
	// an equivalent history.
	cfg := Config{Txs: 4, Objs: 2, MaxOps: 3}
	for seed := int64(0); seed < 100; seed++ {
		h := History(cfg, seed)
		var s history.History
		txs := h.Transactions()
		for i := len(txs) - 1; i >= 0; i-- { // reversed order
			s = append(s, h.Sub(txs[i])...)
		}
		if !history.Equivalent(h, s) {
			t.Fatalf("seed %d: reinterleaving broke equivalence", seed)
		}
		if !history.Equivalent(s, h) {
			t.Fatalf("seed %d: equivalence not symmetric", seed)
		}
	}
}

func TestOnlineCheckerConsistentWithOffline(t *testing.T) {
	// FirstNonOpaquePrefix == -1 implies the full history is opaque (the
	// full history is one of the checked prefixes). The converse is NOT
	// asserted — opacity is not prefix-closed (§5.2).
	cfg := Config{Txs: 3, Objs: 2, MaxOps: 2, PStaleRead: 0.3}
	for seed := int64(0); seed < 100; seed++ {
		h := History(cfg, seed)
		n, err := core.FirstNonOpaquePrefix(h, core.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := core.Opaque(h)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n == -1 && !res.Opaque {
			t.Fatalf("seed %d: all prefixes opaque but the whole history is not?", seed)
		}
		if n != -1 && n > len(h) {
			t.Fatalf("seed %d: prefix index %d out of range", seed, n)
		}
	}
}

// TestCommittedOnlyOpacityEqualsStrictSerializability: on histories
// where every transaction commits, opacity and strict serializability
// coincide — the aborted/live-transaction clause is exactly what
// separates them.
func TestCommittedOnlyOpacityEqualsStrictSerializability(t *testing.T) {
	cfg := Config{Txs: 4, Objs: 2, MaxOps: 3, PCommit: 1.0, PLeaveLive: -1, PStaleRead: 0.3}
	for seed := int64(0); seed < 200; seed++ {
		h := History(cfg, seed)
		allCommitted := true
		for _, tx := range h.Transactions() {
			if !h.Committed(tx) {
				allCommitted = false
			}
		}
		if !allCommitted {
			continue
		}
		o, err := core.Opaque(h)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s, err := criteria.StrictlySerializable(h, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if o.Opaque != s {
			t.Fatalf("seed %d: opaque=%v strict-ser=%v on an all-committed history:\n%s",
				seed, o.Opaque, s, h.Format())
		}
	}
}

// TestRigorousImpliesRecoverable: rigorous scheduling forbids every
// access to an object updated by a live transaction, which is a superset
// of strict recoverability's prohibition.
func TestRigorousImpliesRecoverable(t *testing.T) {
	cfg := Config{Txs: 5, Objs: 2, MaxOps: 3}
	rigorousSeen := 0
	for seed := int64(0); seed < 300; seed++ {
		h := History(cfg, seed)
		rig, _ := criteria.RigorouslyScheduled(h, nil)
		if !rig {
			continue
		}
		rigorousSeen++
		rec, v := criteria.StrictlyRecoverable(h, nil)
		if !rec {
			t.Fatalf("seed %d: rigorous but not recoverable (%v):\n%s", seed, v, h.Format())
		}
	}
	if rigorousSeen == 0 {
		t.Error("corpus contained no rigorous histories; weaken the generator")
	}
}

func TestConsistencyPrecondition(t *testing.T) {
	// Whenever Theorem 2 reports "inconsistent", Definition 1 must agree
	// the history is not opaque (consistency is necessary for opacity).
	for seed := int64(0); seed < 300; seed++ {
		h := History(smallCfg, seed)
		gRes, err := opg.CheckTheorem2(h)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if gRes.Consistent {
			continue
		}
		defRes, err := core.Opaque(h)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if defRes.Opaque {
			t.Fatalf("seed %d: inconsistent per Theorem 2 yet opaque per Definition 1:\n%s\nreason: %v",
				seed, h.Format(), gRes.Reason)
		}
	}
}
