// Package gen generates random well-formed histories and random STM
// workloads for property-based and differential testing. Everything is
// seeded and deterministic: the same Config and seed always produce the
// same history, so failures reported by fuzz-style tests are
// reproducible.
//
// The history generator simulates an interleaved execution of register
// transactions. Read return values are drawn adversarially — sometimes
// the "currently correct" committed value, sometimes a stale or foreign
// one — so that the produced corpus contains both opaque and non-opaque
// histories in useful proportions. Writes use globally unique values,
// satisfying the standing assumption of the graph characterization
// (internal/opg), and histories can be prefixed with the initializing
// transaction T0 that it also requires.
package gen

import (
	"fmt"
	"math/rand"

	"otm/internal/history"
)

// Config tunes the random history generator.
type Config struct {
	// Txs is the number of transactions (default 4). T0 is extra.
	Txs int
	// Objs is the number of registers, named "x0".."x<n-1>" (default 2).
	Objs int
	// MaxOps is the maximum operation executions per transaction
	// (default 3; at least 1).
	MaxOps int
	// PCommit is the probability that a transaction that survives to its
	// end requests commit and commits, in [0,1] (default 0.7). Otherwise
	// it aborts (half voluntarily, half forcefully after tryC).
	PCommit float64
	// PStaleRead is the probability that a read returns an adversarially
	// chosen value (initial value or any value written so far by anyone)
	// instead of the tracked committed value (default 0.25).
	PStaleRead float64
	// PLeaveLive is the probability that a transaction is left live
	// (possibly commit-pending) at the end of the history (default 0.15).
	PLeaveLive float64
	// WithInit prepends the committed initializing transaction T0
	// writing the initial value 0 to every register.
	WithInit bool
	// Clones switches to the symmetric-workload generator: each of the
	// Txs transaction templates is emitted Clones times (default 1 — the
	// plain generator). The clones of one template are fully
	// interchangeable: identical operation sequences — objects, argument
	// and return values included — identical fates, and pairwise
	// concurrent spans (every instance's events are round-robin
	// interleaved before any instance completes, so the real-time order
	// constrains nothing). Such corpora exercise the search engine's
	// symmetry classes maximally. Note that clones of a writing template
	// deliberately repeat each other's written values, so unlike the
	// plain generator's output these histories violate the unique-writes
	// assumption of the graph characterization (internal/opg); they are
	// inputs for the Definition 1 engines only.
	Clones int
}

func (c Config) withDefaults() Config {
	if c.Txs == 0 {
		c.Txs = 4
	}
	if c.Objs == 0 {
		c.Objs = 2
	}
	if c.MaxOps == 0 {
		c.MaxOps = 3
	}
	if c.PCommit == 0 {
		c.PCommit = 0.7
	}
	if c.PStaleRead == 0 {
		c.PStaleRead = 0.25
	}
	if c.PLeaveLive == 0 {
		c.PLeaveLive = 0.15
	}
	if c.Clones == 0 {
		c.Clones = 1
	}
	return c
}

func objName(i int) history.ObjID {
	return history.ObjID("x" + string(rune('0'+i%10)) + suffix(i/10))
}

func suffix(i int) string {
	if i == 0 {
		return ""
	}
	return string(rune('0' + i%10))
}

// History generates one random well-formed register history from cfg and
// seed.
func History(cfg Config, seed int64) history.History {
	cfg = cfg.withDefaults()
	if cfg.Clones > 1 {
		return cloneHistory(cfg, seed)
	}
	rng := rand.New(rand.NewSource(seed))

	type txState struct {
		id      history.TxID
		opsLeft int
		phase   int // 0 running, 1 commit-pending, 2 done
	}

	var h history.History
	// committed[ob] tracks a plausible "current committed value" — the
	// generator's approximation used for non-stale reads.
	committed := make(map[history.ObjID]history.Value)
	var writtenValues []int // all values written so far, for stale reads
	nextVal := 1            // unique write values

	var txs []*txState
	for i := 0; i < cfg.Txs; i++ {
		txs = append(txs, &txState{
			id:      history.TxID(i + 1),
			opsLeft: 1 + rng.Intn(cfg.MaxOps),
		})
	}

	running := len(txs)
	for running > 0 {
		t := txs[rng.Intn(len(txs))]
		if t.phase != 0 {
			continue
		}
		if t.opsLeft == 0 {
			// Terminate the transaction.
			switch {
			case rng.Float64() < cfg.PLeaveLive:
				if rng.Intn(2) == 0 {
					h = append(h, history.TryC(t.id)) // left commit-pending
				}
				// else: left live and idle.
				t.phase = 2
			case rng.Float64() < cfg.PCommit:
				h = append(h, history.TryC(t.id), history.Commit(t.id))
				t.phase = 2
			default:
				if rng.Intn(2) == 0 {
					h = append(h, history.TryA(t.id), history.Abort(t.id))
				} else {
					h = append(h, history.TryC(t.id), history.Abort(t.id))
				}
				t.phase = 2
			}
			if t.phase == 2 {
				running--
			}
			continue
		}
		t.opsLeft--
		ob := objName(rng.Intn(cfg.Objs))
		if rng.Intn(2) == 0 {
			// Write a globally unique value.
			v := nextVal
			nextVal++
			h = append(h,
				history.Inv(t.id, ob, "write", v),
				history.Ret(t.id, ob, "write", history.OK))
			writtenValues = append(writtenValues, v)
			// Approximate visibility: the value becomes the "committed"
			// candidate half the time (models the writer committing
			// before the next reader).
			if rng.Intn(2) == 0 {
				committed[ob] = v
			}
		} else {
			var v history.Value
			if rng.Float64() < cfg.PStaleRead || committed[ob] == nil {
				// Adversarial value: initial 0 or any written value.
				if len(writtenValues) == 0 || rng.Intn(3) == 0 {
					v = 0
				} else {
					v = writtenValues[rng.Intn(len(writtenValues))]
				}
			} else {
				v = committed[ob]
			}
			h = append(h,
				history.Inv(t.id, ob, "read", nil),
				history.Ret(t.id, ob, "read", v))
		}
	}

	if cfg.WithInit {
		// Prepend T0 writing 0 to every register (including unused ones,
		// so the read value 0 is always attributable).
		var init history.History
		for i := 0; i < cfg.Objs; i++ {
			init = append(init,
				history.Inv(0, objName(i), "write", 0),
				history.Ret(0, objName(i), "write", history.OK))
		}
		init = append(init, history.TryC(0), history.Commit(0))
		h = init.Concat(h)
	}
	return h
}

// Corpus generates n histories from cfg with consecutive seeds starting
// at base. It is the standard input of the differential suite and the
// batch-checking benchmarks: the same (cfg, n, base) triple always
// yields the same corpus.
func Corpus(cfg Config, n int, base int64) []history.History {
	hs := make([]history.History, n)
	for i := range hs {
		hs[i] = History(cfg, base+int64(i))
	}
	return hs
}

// ShardRange partitions the n histories of a corpus into k contiguous,
// disjoint shards and returns the half-open global-index range [lo, hi)
// of shard i (0 ≤ i < k). Shard sizes differ by at most one and the
// union of all shards is exactly [0, n), so a distributed run where
// worker i regenerates History(cfg, base+j) for j in its range covers
// the same corpus as Corpus(cfg, n, base) — without shipping it.
func ShardRange(n, i, k int) (lo, hi int) {
	if k < 1 || i < 0 || i >= k || n < 0 {
		panic(fmt.Sprintf("gen.ShardRange(%d, %d, %d): need 0 ≤ i < k and n ≥ 0", n, i, k))
	}
	return i * n / k, (i + 1) * n / k
}

// Op is one step of a generated STM workload.
type Op struct {
	// Read is true for a read, false for a write.
	Read bool
	// Obj is the object index.
	Obj int
	// Val is the value written (unique per workload when distinct
	// values are requested).
	Val int
}

// Workload is a sequence of transactions for one goroutine, each a
// sequence of ops.
type Workload [][]Op

// MakeWorkload builds a reproducible workload: txs transactions of up to
// maxOps operations over k objects, with readFrac (0..1) of operations
// being reads. Written values are unique across the workload, derived
// from seed.
func MakeWorkload(seed int64, txs, maxOps, k int, readFrac float64) Workload {
	rng := rand.New(rand.NewSource(seed))
	val := int(seed%1000)*100_000 + 1
	var w Workload
	for t := 0; t < txs; t++ {
		n := 1 + rng.Intn(maxOps)
		ops := make([]Op, 0, n)
		for o := 0; o < n; o++ {
			if rng.Float64() < readFrac {
				ops = append(ops, Op{Read: true, Obj: rng.Intn(k)})
			} else {
				ops = append(ops, Op{Obj: rng.Intn(k), Val: val})
				val++
			}
		}
		w = append(w, ops)
	}
	return w
}
