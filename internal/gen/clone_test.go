package gen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"otm/internal/history"
)

// TestCloneHistoryShape pins the contract of the symmetric-workload
// generator: deterministic, well-formed output holding Txs×Clones
// transactions with dense ids 1+t*Clones+c, where the clones of one
// template are behaviorally identical (equal history.OpSignature) and
// every pair of instances is concurrent (the real-time order constrains
// nothing).
func TestCloneHistoryShape(t *testing.T) {
	cfg := Config{Txs: 3, Objs: 2, MaxOps: 3, Clones: 3, PStaleRead: 0.3, PLeaveLive: 0.4}
	for seed := int64(0); seed < 30; seed++ {
		h := History(cfg, seed)
		if !reflect.DeepEqual(h, History(cfg, seed)) {
			t.Fatalf("seed %d: not deterministic", seed)
		}
		if err := h.WellFormed(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, h.Format())
		}
		txs := h.Transactions()
		if len(txs) != cfg.Txs*cfg.Clones {
			t.Fatalf("seed %d: %d transactions, want %d", seed, len(txs), cfg.Txs*cfg.Clones)
		}
		execs := h.OpExecsFor(txs)
		for tpl := 0; tpl < cfg.Txs; tpl++ {
			canonical := history.TxID(1 + tpl*cfg.Clones)
			for c := 1; c < cfg.Clones; c++ {
				clone := canonical + history.TxID(c)
				i, j := indexOfTx(txs, canonical), indexOfTx(txs, clone)
				if i < 0 || j < 0 {
					t.Fatalf("seed %d: ids %d/%d missing from %v", seed, canonical, clone, txs)
				}
				if history.OpSignature(execs[i]) != history.OpSignature(execs[j]) {
					t.Fatalf("seed %d: T%d and T%d are clones but differ behaviorally:\n%s",
						seed, canonical, clone, h.Format())
				}
				if h.Status(canonical) != h.Status(clone) {
					t.Fatalf("seed %d: T%d and T%d disagree on fate", seed, canonical, clone)
				}
			}
		}
		if rt := h.RealTimeOrder(); len(rt) != 0 {
			t.Fatalf("seed %d: instances must be pairwise concurrent, got real-time pairs %v", seed, rt)
		}
	}
}

// TestCloneHistoryWithInit: the initializing transaction prefixes the
// symmetric workload exactly as it does the plain one — committed T0
// writing 0 to every register, really-preceding every instance.
func TestCloneHistoryWithInit(t *testing.T) {
	cfg := Config{Txs: 2, Objs: 2, MaxOps: 2, Clones: 2, WithInit: true}
	h := History(cfg, 1)
	if err := h.WellFormed(); err != nil {
		t.Fatal(err)
	}
	if len(h.Transactions()) != cfg.Txs*cfg.Clones+1 {
		t.Fatalf("%d transactions, want txs*clones+1", len(h.Transactions()))
	}
	if got := len(h.RealTimeOrder()); got != cfg.Txs*cfg.Clones {
		t.Errorf("T0 must really-precede every instance: %d pairs, want %d", got, cfg.Txs*cfg.Clones)
	}
}

// TestLoadSpec covers the corpus-spec loader: a round-trip through the
// JSON shape of testdata/corpora/*.json, and the rejection paths.
func TestLoadSpec(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	want := Spec{Txs: 3, Objs: 2, MaxOps: 3, PStaleRead: 0.3, PLeaveLive: 0.4, Clones: 3, N: 12, Base: 1}
	buf, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpec(write("ok.json", string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	if s != want {
		t.Fatalf("round-trip: got %+v, want %+v", s, want)
	}
	cfg := s.Config()
	if cfg.Txs != want.Txs || cfg.Clones != want.Clones || cfg.PLeaveLive != want.PLeaveLive {
		t.Errorf("Config() dropped fields: %+v", cfg)
	}
	hs := s.Corpus()
	if len(hs) != want.N {
		t.Fatalf("Corpus() produced %d histories, want %d", len(hs), want.N)
	}
	if !reflect.DeepEqual(hs, Corpus(cfg, want.N, want.Base)) {
		t.Error("Corpus() must equal Corpus(spec.Config(), n, base)")
	}

	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := LoadSpec(write("bad.json", "{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := LoadSpec(write("zero.json", `{"txs":2,"n":0}`)); err == nil {
		t.Error("n=0 accepted")
	}
}

// indexOfTx is a test helper: the position of tx in txs, or -1.
func indexOfTx(txs []history.TxID, tx history.TxID) int {
	for i, t := range txs {
		if t == tx {
			return i
		}
	}
	return -1
}
