package gen

import (
	"math/rand"

	"otm/internal/history"
)

// cloneHistory implements the symmetric-workload generator (Config.Clones
// > 1): cfg.Txs random transaction templates, each instantiated
// cfg.Clones times. One template's operation sequence — including its
// write values and its adversarially chosen read return values — and its
// fate are drawn once and shared by every instance, and all instances of
// all templates run concurrently: the per-operation events are emitted
// round-robin across the whole instance set before any termination event,
// so no instance really-precedes any other. Instance TxIDs are dense:
// template t (0-based), clone c → TxID 1 + t*Clones + c, which is what
// lets tests permute the members of one class by id arithmetic.
func cloneHistory(cfg Config, seed int64) history.History {
	rng := rand.New(rand.NewSource(seed))

	type op struct {
		read bool
		obj  history.ObjID
		val  history.Value // written value, or expected read return
	}
	type template struct {
		ops  []op
		fate int // 0 commit, 1 abort-after-tryC, 2 abort-after-tryA, 3 commit-pending, 4 live
	}

	var written []int // write values of all templates so far, for stale reads
	nextVal := 1
	templates := make([]template, cfg.Txs)
	maxLen := 0
	for t := range templates {
		n := 1 + rng.Intn(cfg.MaxOps)
		tpl := template{ops: make([]op, 0, n)}
		for o := 0; o < n; o++ {
			ob := objName(rng.Intn(cfg.Objs))
			if rng.Intn(2) == 0 {
				v := nextVal
				nextVal++
				written = append(written, v)
				tpl.ops = append(tpl.ops, op{obj: ob, val: v})
			} else {
				// Adversarial read values, as in the plain generator: the
				// initial 0 or any value some template writes — so the
				// corpus mixes opaque and non-opaque verdicts.
				var v history.Value = 0
				if len(written) > 0 && rng.Intn(3) != 0 {
					v = written[rng.Intn(len(written))]
				}
				tpl.ops = append(tpl.ops, op{read: true, obj: ob, val: v})
			}
		}
		switch {
		case rng.Float64() < cfg.PLeaveLive:
			if rng.Intn(2) == 0 {
				tpl.fate = 3 // commit-pending
			} else {
				tpl.fate = 4 // live and idle
			}
		case rng.Float64() < cfg.PCommit:
			tpl.fate = 0
		case rng.Intn(2) == 0:
			tpl.fate = 2
		default:
			tpl.fate = 1
		}
		if len(tpl.ops) > maxLen {
			maxLen = len(tpl.ops)
		}
		templates[t] = tpl
	}

	txID := func(t, c int) history.TxID {
		return history.TxID(1 + t*cfg.Clones + c)
	}

	var h history.History
	for o := 0; o < maxLen; o++ {
		for t, tpl := range templates {
			if o >= len(tpl.ops) {
				continue
			}
			for c := 0; c < cfg.Clones; c++ {
				id := txID(t, c)
				if tpl.ops[o].read {
					h = append(h,
						history.Inv(id, tpl.ops[o].obj, "read", nil),
						history.Ret(id, tpl.ops[o].obj, "read", tpl.ops[o].val))
				} else {
					h = append(h,
						history.Inv(id, tpl.ops[o].obj, "write", tpl.ops[o].val),
						history.Ret(id, tpl.ops[o].obj, "write", history.OK))
				}
			}
		}
	}
	for t, tpl := range templates {
		for c := 0; c < cfg.Clones; c++ {
			id := txID(t, c)
			switch tpl.fate {
			case 0:
				h = append(h, history.TryC(id), history.Commit(id))
			case 1:
				h = append(h, history.TryC(id), history.Abort(id))
			case 2:
				h = append(h, history.TryA(id), history.Abort(id))
			case 3:
				h = append(h, history.TryC(id))
			}
		}
	}

	if cfg.WithInit {
		var init history.History
		for i := 0; i < cfg.Objs; i++ {
			init = append(init,
				history.Inv(0, objName(i), "write", 0),
				history.Ret(0, objName(i), "write", history.OK))
		}
		init = append(init, history.TryC(0), history.Commit(0))
		h = init.Concat(h)
	}
	return h
}
