package gen

import (
	"testing"

	"otm/internal/history"
)

func TestHistoryDeterministic(t *testing.T) {
	cfg := Config{Txs: 5, Objs: 3, MaxOps: 4}
	a := History(cfg, 42)
	b := History(cfg, 42)
	if len(a) != len(b) {
		t.Fatal("same seed must give same history")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := History(cfg, 43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should (virtually always) differ")
	}
}

func TestHistoryWellFormed(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		h := History(Config{Txs: 5, Objs: 3, MaxOps: 4, WithInit: seed%2 == 0}, seed)
		if err := h.WellFormed(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, h.Format())
		}
	}
}

func TestHistoryHasRequestedShape(t *testing.T) {
	h := History(Config{Txs: 6, Objs: 2, MaxOps: 3}, 7)
	txs := h.Transactions()
	if len(txs) != 6 {
		t.Errorf("%d transactions, want 6", len(txs))
	}
	for _, tx := range txs {
		if n := len(h.OpExecs(tx)); n < 1 || n > 3 {
			t.Errorf("T%d has %d ops, want 1..3", int(tx), n)
		}
	}
	for _, ob := range h.Objects() {
		if ob != "x0" && ob != "x1" {
			t.Errorf("unexpected object %s", ob)
		}
	}
}

func TestHistoryWithInit(t *testing.T) {
	h := History(Config{Txs: 3, Objs: 2, WithInit: true}, 9)
	if !h.Contains(0) || !h.Committed(0) {
		t.Fatal("T0 must exist and be committed")
	}
	if !h.Precedes(0, 1) {
		t.Error("T0 must precede the generated transactions")
	}
	// T0 writes every register.
	if got := len(h.OpExecs(0)); got != 2 {
		t.Errorf("T0 writes %d registers, want 2", got)
	}
}

func TestHistoryUniqueWrites(t *testing.T) {
	type wk struct {
		ob history.ObjID
		v  history.Value
	}
	for seed := int64(0); seed < 100; seed++ {
		h := History(Config{Txs: 6, Objs: 3, MaxOps: 5}, seed)
		seen := map[wk]bool{}
		for _, e := range h {
			if e.Kind == history.KindInv && e.Op == "write" {
				k := wk{e.Obj, e.Arg}
				if seen[k] {
					t.Fatalf("seed %d: duplicate write %v to %s", seed, e.Arg, e.Obj)
				}
				seen[k] = true
			}
		}
	}
}

func TestHistoryMixesVerdicts(t *testing.T) {
	// The corpus must contain both opaque-looking and broken histories;
	// we proxy via the presence of stale reads versus faithful ones. A
	// full verdict mix check lives in the differential test.
	statuses := map[history.Status]int{}
	for seed := int64(0); seed < 100; seed++ {
		h := History(Config{Txs: 4, Objs: 2}, seed)
		for _, tx := range h.Transactions() {
			statuses[h.Status(tx)]++
		}
	}
	for _, st := range []history.Status{
		history.StatusCommitted, history.StatusAborted,
		history.StatusCommitPending, history.StatusLive,
	} {
		if statuses[st] == 0 {
			t.Errorf("corpus contains no %v transactions", st)
		}
	}
}

func TestMakeWorkload(t *testing.T) {
	w := MakeWorkload(3, 10, 5, 8, 0.5)
	if len(w) != 10 {
		t.Fatalf("%d transactions, want 10", len(w))
	}
	reads, writes := 0, 0
	vals := map[int]bool{}
	for _, ops := range w {
		if len(ops) < 1 || len(ops) > 5 {
			t.Errorf("transaction with %d ops", len(ops))
		}
		for _, op := range ops {
			if op.Obj < 0 || op.Obj >= 8 {
				t.Errorf("object %d out of range", op.Obj)
			}
			if op.Read {
				reads++
			} else {
				writes++
				if vals[op.Val] {
					t.Errorf("duplicate written value %d", op.Val)
				}
				vals[op.Val] = true
			}
		}
	}
	if reads == 0 || writes == 0 {
		t.Error("workload should mix reads and writes")
	}
	// Determinism.
	w2 := MakeWorkload(3, 10, 5, 8, 0.5)
	for i := range w {
		if len(w[i]) != len(w2[i]) {
			t.Fatal("workload not deterministic")
		}
	}
}

// TestShardRange: shards are contiguous, disjoint, balanced (sizes
// differ by at most one) and cover exactly [0, n) — the property that
// makes `histgen -shard i/k` regenerate precisely its slice.
func TestShardRange(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 1}, {1, 1}, {5, 2}, {7, 3}, {2000, 8}, {10, 16}, {3, 7},
	} {
		covered := 0
		prevHi := 0
		minSize, maxSize := tc.n+1, -1
		for i := 0; i < tc.k; i++ {
			lo, hi := ShardRange(tc.n, i, tc.k)
			if lo != prevHi {
				t.Fatalf("n=%d k=%d: shard %d starts at %d, want %d (contiguous)", tc.n, tc.k, i, lo, prevHi)
			}
			if hi < lo {
				t.Fatalf("n=%d k=%d: shard %d is [%d, %d)", tc.n, tc.k, i, lo, hi)
			}
			if size := hi - lo; size < minSize {
				minSize = size
			} else if size > maxSize {
				maxSize = size
			}
			if maxSize < minSize {
				maxSize = minSize
			}
			covered += hi - lo
			prevHi = hi
		}
		if prevHi != tc.n || covered != tc.n {
			t.Errorf("n=%d k=%d: shards cover [0, %d) with %d indices, want exactly [0, %d)", tc.n, tc.k, prevHi, covered, tc.n)
		}
		if maxSize-minSize > 1 {
			t.Errorf("n=%d k=%d: shard sizes range %d..%d, want balanced within 1", tc.n, tc.k, minSize, maxSize)
		}
	}
	for _, bad := range []struct{ n, i, k int }{{10, -1, 2}, {10, 2, 2}, {10, 0, 0}, {-1, 0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShardRange(%d, %d, %d) did not panic", bad.n, bad.i, bad.k)
				}
			}()
			ShardRange(bad.n, bad.i, bad.k)
		}()
	}
}
