package gen

import (
	"encoding/json"
	"fmt"
	"os"

	"otm/internal/history"
)

// Spec is a checked-in corpus specification: the generator Config plus
// the corpus extent, in the JSON shape of testdata/corpora/*.json. A
// spec pins a benchmark corpus in the repository so benches, CI
// assertions and command-line reproduction (histgen's flags map onto the
// same fields) all derive the identical deterministic corpus.
type Spec struct {
	Txs        int     `json:"txs"`
	Objs       int     `json:"objs"`
	MaxOps     int     `json:"maxOps"`
	PCommit    float64 `json:"pCommit,omitempty"`
	PStaleRead float64 `json:"pStaleRead"`
	PLeaveLive float64 `json:"pLeaveLive,omitempty"`
	WithInit   bool    `json:"withInit,omitempty"`
	Clones     int     `json:"clones,omitempty"`
	N          int     `json:"n"`
	Base       int64   `json:"base"`
}

// LoadSpec reads and validates one corpus spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("gen: corpus spec %s: %w", path, err)
	}
	if s.N <= 0 {
		return Spec{}, fmt.Errorf("gen: corpus spec %s: n must be positive", path)
	}
	return s, nil
}

// Config returns the generator configuration of the spec.
func (s Spec) Config() Config {
	return Config{
		Txs:        s.Txs,
		Objs:       s.Objs,
		MaxOps:     s.MaxOps,
		PCommit:    s.PCommit,
		PStaleRead: s.PStaleRead,
		PLeaveLive: s.PLeaveLive,
		WithInit:   s.WithInit,
		Clones:     s.Clones,
	}
}

// Corpus materializes the spec's corpus.
func (s Spec) Corpus() []history.History {
	return Corpus(s.Config(), s.N, s.Base)
}
