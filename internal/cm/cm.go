// Package cm implements contention managers for the progressive STM
// engines (dstm, vstm). A contention manager decides, when transaction
// "self" finds object ownership held by live transaction "other", whether
// to abort the other transaction, abort itself, or back off and retry.
//
// The paper's lower bound (§6) requires progressiveness: a transaction is
// forcefully aborted only upon a conflict with a concurrent live
// transaction. Every decision a Manager can return preserves that — the
// victim (self or other) is always one of the two live conflicting
// transactions. The managers here are the classic policies from the
// DSTM/SXM line of work the paper cites: Aggressive, Polite, Karma and
// Greedy (timestamp).
package cm

import "sync/atomic"

// Decision is a contention-resolution verdict.
type Decision int

const (
	// AbortOther: kill the conflicting transaction and take the object.
	AbortOther Decision = iota
	// AbortSelf: abort the requesting transaction.
	AbortSelf
	// Wait: back off and re-evaluate; the engine re-invokes the manager
	// with an incremented attempt count, so Wait-ing managers must
	// eventually pick a victim.
	Wait
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case AbortOther:
		return "abort-other"
	case AbortSelf:
		return "abort-self"
	case Wait:
		return "wait"
	default:
		return "unknown"
	}
}

// Info is the per-transaction state a manager consults. Engines create
// one Info per transaction attempt via NewInfo.
type Info struct {
	// ID is unique per transaction attempt.
	ID uint64
	// Birth is a logical begin timestamp (global order of Begin calls).
	Birth uint64
	// Opens counts objects opened (read or written) by the transaction —
	// the "investment" used by Karma.
	Opens int64
	// Attempts counts how many consecutive times the engine has asked
	// about the same conflict; managers use it to bound waiting.
	Attempts int
}

var infoSeq atomic.Uint64

// NewInfo allocates an Info with a fresh ID and Birth timestamp.
func NewInfo() *Info {
	n := infoSeq.Add(1)
	return &Info{ID: n, Birth: n}
}

// Opened records that the transaction opened one more object.
func (i *Info) Opened() { atomic.AddInt64(&i.Opens, 1) }

// Investment returns the accumulated opens (Karma priority).
func (i *Info) Investment() int64 { return atomic.LoadInt64(&i.Opens) }

// Manager decides conflicts between live transactions.
type Manager interface {
	// Name identifies the policy.
	Name() string
	// Resolve decides a conflict in which self wants an object owned by
	// other. Engines call it repeatedly (with self.Attempts incremented)
	// while it returns Wait.
	Resolve(self, other *Info) Decision
}

// Aggressive always aborts the other transaction. Simple, deterministic,
// obstruction-free; the default for tests that script interleavings.
type Aggressive struct{}

// Name implements Manager.
func (Aggressive) Name() string { return "aggressive" }

// Resolve implements Manager: the attacker always wins.
func (Aggressive) Resolve(self, other *Info) Decision { return AbortOther }

// Suicidal always aborts the requesting transaction — the dual of
// Aggressive, useful in tests that need the attacker to lose.
type Suicidal struct{}

// Name implements Manager.
func (Suicidal) Name() string { return "suicidal" }

// Resolve implements Manager: the attacker always yields.
func (Suicidal) Resolve(self, other *Info) Decision { return AbortSelf }

// Polite backs off a bounded number of times, giving the owner a chance
// to finish, then aborts it.
type Polite struct {
	// MaxSpins bounds the Wait decisions before escalating; 0 means the
	// default of 4.
	MaxSpins int
}

// Name implements Manager.
func (p Polite) Name() string { return "polite" }

// Resolve implements Manager: wait a bounded number of attempts, then
// abort the owner.
func (p Polite) Resolve(self, other *Info) Decision {
	max := p.MaxSpins
	if max == 0 {
		max = 4
	}
	if self.Attempts < max {
		return Wait
	}
	return AbortOther
}

// Karma compares investments (objects opened): the richer transaction
// wins; ties favour the attacker after patience runs out.
type Karma struct {
	// MaxSpins bounds waiting when the owner is richer; 0 means 3.
	MaxSpins int
}

// Name implements Manager.
func (k Karma) Name() string { return "karma" }

// Resolve implements Manager.
func (k Karma) Resolve(self, other *Info) Decision {
	max := k.MaxSpins
	if max == 0 {
		max = 3
	}
	if self.Investment() >= other.Investment() {
		return AbortOther
	}
	if self.Attempts < max {
		return Wait
	}
	// Persistently poorer: yield, keeping the system progressive.
	return AbortSelf
}

// Greedy implements the timestamp policy: the older transaction (smaller
// Birth) wins; the younger one aborts itself. Guarantees that the oldest
// live transaction is never the victim, hence freedom from livelock.
type Greedy struct{}

// Name implements Manager.
func (Greedy) Name() string { return "greedy" }

// Resolve implements Manager.
func (Greedy) Resolve(self, other *Info) Decision {
	if self.Birth < other.Birth {
		return AbortOther
	}
	return AbortSelf
}

// ByName returns the manager registered under name, defaulting to
// Aggressive for unknown names.
func ByName(name string) Manager {
	switch name {
	case "polite":
		return Polite{}
	case "karma":
		return Karma{}
	case "greedy":
		return Greedy{}
	case "suicidal":
		return Suicidal{}
	default:
		return Aggressive{}
	}
}
