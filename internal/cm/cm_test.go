package cm

import "testing"

func TestAggressive(t *testing.T) {
	m := Aggressive{}
	if m.Resolve(NewInfo(), NewInfo()) != AbortOther {
		t.Error("aggressive must always abort the other")
	}
	if m.Name() != "aggressive" {
		t.Error("name")
	}
}

func TestSuicidal(t *testing.T) {
	if (Suicidal{}).Resolve(NewInfo(), NewInfo()) != AbortSelf {
		t.Error("suicidal must always abort self")
	}
}

func TestPoliteEscalates(t *testing.T) {
	m := Polite{MaxSpins: 3}
	self, other := NewInfo(), NewInfo()
	for i := 0; i < 3; i++ {
		self.Attempts = i
		if d := m.Resolve(self, other); d != Wait {
			t.Fatalf("attempt %d: got %v, want wait", i, d)
		}
	}
	self.Attempts = 3
	if d := m.Resolve(self, other); d != AbortOther {
		t.Errorf("after patience: got %v, want abort-other", d)
	}
	// Default spins.
	d := Polite{}
	self.Attempts = 0
	if d.Resolve(self, other) != Wait {
		t.Error("default polite must wait at first")
	}
	self.Attempts = 100
	if d.Resolve(self, other) != AbortOther {
		t.Error("default polite must eventually escalate")
	}
}

func TestKarmaInvestment(t *testing.T) {
	m := Karma{MaxSpins: 2}
	rich, poor := NewInfo(), NewInfo()
	for i := 0; i < 5; i++ {
		rich.Opened()
	}
	poor.Opened()
	if m.Resolve(rich, poor) != AbortOther {
		t.Error("richer attacker must win")
	}
	poor.Attempts = 0
	if m.Resolve(poor, rich) != Wait {
		t.Error("poorer attacker must wait first")
	}
	poor.Attempts = 2
	if m.Resolve(poor, rich) != AbortSelf {
		t.Error("persistently poorer attacker must yield")
	}
	if rich.Investment() != 5 {
		t.Errorf("investment = %d", rich.Investment())
	}
}

func TestGreedySeniority(t *testing.T) {
	older := NewInfo()
	younger := NewInfo()
	if older.Birth >= younger.Birth {
		t.Fatal("NewInfo must hand out increasing birth timestamps")
	}
	m := Greedy{}
	if m.Resolve(older, younger) != AbortOther {
		t.Error("older attacker wins")
	}
	if m.Resolve(younger, older) != AbortSelf {
		t.Error("younger attacker yields")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"aggressive", "polite", "karma", "greedy", "suicidal"} {
		if got := ByName(name).Name(); got != name {
			t.Errorf("ByName(%q).Name() = %q", name, got)
		}
	}
	if ByName("bogus").Name() != "aggressive" {
		t.Error("unknown names default to aggressive")
	}
}

func TestDecisionString(t *testing.T) {
	if AbortOther.String() != "abort-other" || AbortSelf.String() != "abort-self" || Wait.String() != "wait" {
		t.Error("decision names")
	}
	if Decision(99).String() != "unknown" {
		t.Error("unknown decision")
	}
}

func TestInfoIDsUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id := NewInfo().ID
		if seen[id] {
			t.Fatal("duplicate info id")
		}
		seen[id] = true
	}
}
