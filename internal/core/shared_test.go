package core

import (
	"errors"
	"sync"
	"testing"

	"otm/internal/gen"
	"otm/internal/history"
	"otm/internal/spec"
)

// sharedCorpus is the mixed corpus the shared-table tests run on: small
// histories with stale reads and live transactions, diverse enough that
// verdicts split and the memo, transition and state tables all fill.
func sharedCorpus(n int, seed int64) []history.History {
	return gen.Corpus(gen.Config{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.3, PLeaveLive: 0.3}, n, seed)
}

// TestSharedTablesDifferential is the concurrency differential: several
// goroutines, each with its own context derived from one SharedTables,
// all check the full corpus — so every table entry one worker inserts is
// probed by the others — and every verdict must match the DisableMemo
// reference engine. Run with -race in CI.
func TestSharedTablesDifferential(t *testing.T) {
	n := 150
	if !testing.Short() {
		n = 400
	}
	hs := sharedCorpus(n, 31)
	want := make([]bool, len(hs))
	for i, h := range hs {
		r, err := Check(h, Config{DisableMemo: true})
		if err != nil {
			t.Fatalf("history %d: reference: %v", i, err)
		}
		want[i] = r.Opaque
	}

	const goroutines = 8
	tables := NewSharedTables()
	got := make([][]bool, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := tables.NewContext()
			cfg := Config{Context: ctx}
			out := make([]bool, len(hs))
			for i := range hs {
				// Rotate the order so goroutines race on different
				// histories at any instant.
				j := (i + g*len(hs)/goroutines) % len(hs)
				r, err := Check(hs[j], cfg)
				if err != nil {
					errs[g] = err
					return
				}
				out[j] = r.Opaque
			}
			got[g] = out
		}(g)
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		for i := range hs {
			if got[g][i] != want[i] {
				t.Fatalf("goroutine %d, history %d: shared tables say opaque=%v, reference says %v:\n%s",
					g, i, got[g][i], want[i], hs[i].Format())
			}
		}
	}

	s := tables.Stats()
	if s.States == 0 || s.Atoms == 0 || s.TxSigs == 0 || s.Problems == 0 {
		t.Errorf("pool-wide stats not populated: %+v", s)
	}
}

// TestSharedTablesStatesDedupAcrossContexts pins the point of sharing: a
// second context re-checking a corpus the tables already absorbed interns
// nothing new — it rides entirely on the first context's entries — and
// its private counters show the hits.
func TestSharedTablesStatesDedupAcrossContexts(t *testing.T) {
	hs := sharedCorpus(200, 43)
	tables := NewSharedTables()

	ctx1 := tables.NewContext()
	for i, h := range hs {
		if _, err := Check(h, Config{Context: ctx1}); err != nil {
			t.Fatalf("history %d: first pass: %v", i, err)
		}
	}
	first := tables.Stats()

	ctx2 := tables.NewContext()
	for i, h := range hs {
		if _, err := Check(h, Config{Context: ctx2}); err != nil {
			t.Fatalf("history %d: second pass: %v", i, err)
		}
	}
	second := tables.Stats()

	if second.States != first.States {
		t.Errorf("second context interned %d new states re-checking the same corpus, want 0",
			second.States-first.States)
	}
	if second.TxSigs != first.TxSigs || second.Problems != first.Problems {
		t.Errorf("second pass grew signature/problem tables: first %+v, second %+v", first, second)
	}
	if s := ctx2.Stats(); s.TransHits == 0 {
		t.Errorf("second context never hit the shared transition cache: %+v", s)
	}

	// And the shared layer never interns more states than a private
	// context checking the same corpus (canonical trimming can only
	// merge vectors, never split them).
	local := NewSearchContext()
	for _, h := range hs {
		if _, err := Check(h, Config{Context: local}); err != nil {
			t.Fatal(err)
		}
	}
	if localStates := local.Stats().States; second.States > localStates {
		t.Errorf("shared tables interned %d states, private context %d; trimming must not add states",
			second.States, localStates)
	}
}

// TestSharedTablesGenerationSwap forces the size bound: with a tiny
// maxEntries every few calls rotate the generation, and verdicts must
// stay correct across swaps (stateIDs never leak between generations).
func TestSharedTablesGenerationSwap(t *testing.T) {
	hs := sharedCorpus(200, 57)
	tables := NewSharedTables()
	tables.maxEntries = 64
	ctx := tables.NewContext()
	for i, h := range hs {
		got, err := Check(h, Config{Context: ctx})
		if err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		want, err := Check(h, Config{DisableMemo: true})
		if err != nil {
			t.Fatalf("history %d: reference: %v", i, err)
		}
		if got.Opaque != want.Opaque {
			t.Fatalf("history %d: across generation swaps opaque=%v, reference says %v:\n%s",
				i, got.Opaque, want.Opaque, hs[i].Format())
		}
	}
	s := tables.Stats()
	if s.Flushes == 0 {
		t.Fatalf("maxEntries=64 over %d histories never swapped a generation: %+v", len(hs), s)
	}
	// Cumulative counters must cover retired generations too.
	if s.States == 0 || s.Atoms == 0 {
		t.Errorf("cumulative stats lost across swaps: %+v", s)
	}
}

// TestSharedTablesTruncationNotMemoized is the cross-worker soundness
// test for budget truncation: a context that exhausts its node budget
// must not have published truncated subtrees as failures, or a sibling
// context with budget to spare would replay the wrong verdict.
func TestSharedTablesTruncationNotMemoized(t *testing.T) {
	hs := gen.Corpus(gen.Config{Txs: 6, Objs: 3, MaxOps: 4, PStaleRead: 0.3, PLeaveLive: 0.5}, 200, 11)
	starved := 0
	for i, h := range hs {
		want, err := Check(h, Config{})
		if err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		if want.Nodes < 2 {
			continue
		}
		tables := NewSharedTables()
		starvedCtx := tables.NewContext()
		_, err = Check(h, Config{Context: starvedCtx, MaxNodes: want.Nodes - 1})
		if !errors.Is(err, ErrSearchLimit) {
			t.Fatalf("history %d: err=%v under a %d-node budget, want ErrSearchLimit", i, err, want.Nodes-1)
		}
		starved++
		got, err := Check(h, Config{Context: tables.NewContext()})
		if err != nil {
			t.Fatalf("history %d: sibling context after starvation: %v", i, err)
		}
		if got.Opaque != want.Opaque {
			t.Fatalf("history %d: sibling context on starved tables says opaque=%v, fresh verdict is %v:\n%s",
				i, got.Opaque, want.Opaque, h.Format())
		}
	}
	if starved < 50 {
		t.Errorf("only %d starved cases exercised; corpus too easy", starved)
	}
}

// TestSharedTablesRegistryGrowthNoFlush: histories introducing new
// objects extend the shared registry without a flush — canonical
// trimming keeps earlier vectors valid — and the same logical state
// keeps one id across the growth.
func TestSharedTablesRegistryGrowthNoFlush(t *testing.T) {
	tables := NewSharedTables()
	ctx := tables.NewContext()
	cfg := Config{Context: ctx}
	h1 := history.MustParse("w1(x,1) tryC1 C1 r2(x)->1 tryC2 C2")
	h2 := history.MustParse("w1(x,1) w1(y,2) tryC1 C1 r2(y)->2 tryC2 C2")

	r1, err := Check(h1, cfg)
	if err != nil || !r1.Opaque {
		t.Fatalf("h1: opaque=%v err=%v", r1.Opaque, err)
	}
	ctx.registerObjects([]history.ObjID{"x", "y"})
	before := ctx.initialState(nil)
	states := tables.Stats().States

	r2, err := Check(h2, cfg)
	if err != nil || !r2.Opaque {
		t.Fatalf("h2: opaque=%v err=%v", r2.Opaque, err)
	}
	if f := tables.Stats().Flushes; f != 0 {
		t.Errorf("registry growth swapped a generation (%d flushes); shared tables must not flush on new objects", f)
	}
	if after := ctx.initialState(nil); after != before {
		t.Errorf("empty initial state changed id across registry growth: %d -> %d (trimming broken)", before, after)
	}
	// A sibling registering the objects in another order still agrees on
	// every vector id: indices come from the shared registry.
	sib := tables.NewContext()
	if _, err := Check(h2, Config{Context: sib}); err != nil {
		t.Fatal(err)
	}
	sib.registerObjects([]history.ObjID{"y", "x"})
	if got := sib.initialState(nil); got != before {
		t.Errorf("sibling context interned the empty initial state as %d, first context as %d", got, before)
	}
	_ = states
}

// TestSharedTablesIncrementalTruncate: shared tables also back the
// online checkers — an Incremental session with checkpointed truncation
// on a shared-backed context must match the DisableMemo reference
// event for event.
func TestSharedTablesIncrementalTruncate(t *testing.T) {
	h := history.MustParse(
		"w1(x,1) tryC1 C1 r2(x)->1 w2(y,2) tryC2 C2 " +
			"r3(y)->2 w3(x,3) tryC3 C3 r4(x)->3 tryC4 C4")
	tables := NewSharedTables()
	inc := NewIncremental(Config{Context: tables.NewContext()})
	ref := NewIncremental(Config{DisableMemo: true})
	for i, ev := range h {
		got, err := inc.Append(ev)
		if err != nil {
			t.Fatalf("event %d: shared: %v", i, err)
		}
		want, err := ref.Append(ev)
		if err != nil {
			t.Fatalf("event %d: reference: %v", i, err)
		}
		if got.Opaque != want.Opaque {
			t.Fatalf("event %d: shared says opaque=%v, reference %v", i, got.Opaque, want.Opaque)
		}
		// Truncate at every stable point to exercise the shared
		// enumeration path (pool-unique enum epochs).
		if inc.Stable() && inc.LiveLen() > 0 {
			if _, err := inc.TryTruncate(0); err != nil {
				t.Fatalf("event %d: TryTruncate: %v", i, err)
			}
		}
	}
	if inc.Result().Checkpoints == 0 {
		t.Error("session never truncated; enumeration path not exercised")
	}
}

// TestSharedTablesEnumEpochsUnique: two enumerations of the same stable
// prefix on sibling contexts must each see the full Reach set — a shared
// epoch would let the first walk's "visited" entries swallow the
// second's finals.
func TestSharedTablesEnumEpochsUnique(t *testing.T) {
	h := history.MustParse("w1(x,1) tryC1 C1 w2(x,2) tryC2 C2")
	tables := NewSharedTables()
	var roots [2][]spec.Objects
	for k := 0; k < 2; k++ {
		inc := NewIncremental(Config{Context: tables.NewContext()})
		if _, err := inc.Append(h...); err != nil {
			t.Fatal(err)
		}
		ok, err := inc.TryTruncate(0)
		if err != nil || !ok {
			t.Fatalf("run %d: TryTruncate ok=%v err=%v", k, ok, err)
		}
		roots[k] = inc.Roots()
	}
	if len(roots[0]) == 0 || len(roots[0]) != len(roots[1]) {
		t.Fatalf("sibling enumerations saw %d and %d reachable states; epochs must isolate walks",
			len(roots[0]), len(roots[1]))
	}
}
