package core

import (
	"fmt"

	"otm/internal/history"
	"otm/internal/spec"
)

// IncrementalResult is the running verdict of an Incremental checker: it
// covers every event appended so far (including trailing invocation
// events — an invocation alone can never introduce a violation its
// response would not, see the skip-rule notes on Incremental).
type IncrementalResult struct {
	// Opaque reports whether every prefix observed so far is opaque.
	// Once false it stays false: the monitor semantics of
	// FirstNonOpaquePrefix, which flag the first prefix a correct TM
	// could never have emitted (Definition 1 itself is not
	// prefix-closed; see TestOpacityNotPrefixClosed).
	Opaque bool
	// PrefixLen is the length of the shortest non-opaque prefix, or -1
	// while Opaque.
	PrefixLen int
	// Events is the number of events appended.
	Events int
	// Nodes is the total number of search nodes explored across all
	// appends (witness revalidations explore none).
	Nodes int
	// FastPath counts the checks resolved by revalidating the previous
	// prefix's witness against the extended history — no search at all.
	FastPath int
	// Searches counts the checks that ran the full serialization search.
	Searches int
	// Skipped counts the response events proven verdict-preserving
	// without even a revalidation: an abort of a transaction that was
	// not commit-pending leaves the induced search problem — statuses,
	// replay signatures, ordering constraints — bit-for-bit identical.
	Skipped int
	// Checkpoints counts successful truncations (TryTruncate), and
	// TruncatedEvents the events collapsed behind the latest checkpoint
	// in total; Events - TruncatedEvents is the live-suffix length.
	Checkpoints     int
	TruncatedEvents int
	// Roots is the number of reachable final states the current
	// checkpoint carries (0 while no checkpoint exists: the single
	// implicit root is the configured initial state). Every prefix check
	// must fail from all roots before a violation is declared.
	Roots int
	// TruncNodes is the total number of enumeration nodes explored by
	// truncation attempts, successful or not — the amortized price of
	// keeping the session O(live-suffix). Kept separate from Nodes so
	// checking cost and checkpointing cost stay individually visible.
	TruncNodes int
}

// Incremental decides opacity for successive prefixes of one growing
// history: Append feeds events as they occur and returns the verdict for
// the extended prefix. It generalizes FirstNonOpaquePrefix — which scans
// the prefixes of a history fixed up front — into the append-driven form
// an online monitor needs, and it is what FirstNonOpaquePrefix itself
// now runs on.
//
// Successive checks reuse one SearchContext (cfg.Context if supplied),
// so object states interned and transitions cached while checking one
// prefix serve every longer prefix. On top of that, each check first
// revalidates the previous prefix's witness serialization (extended with
// any new transactions) via SerializeOptions.Hint: for histories a
// correct TM emits, the witness almost always extends, making the
// per-event cost a linear replay over cached transitions instead of a
// search. Two event classes skip checking entirely: invocation events
// (pending operations are invisible to replay, a commit-try only widens
// the completion choice, and a fresh transaction serializes last as an
// empty abort) and abort events of transactions that were not
// commit-pending (the statuses, signatures and ordering constraints of
// the induced problem are unchanged). The differential suite pins both
// rules against one-shot Check on every prefix.
//
// Once a violation is observed the verdict latches and later appends
// only extend the recorded history — opacity monitoring stops at the
// first event a correct TM could not have produced. Errors latch too:
// an ill-formed event (rejected by history.Appender, leaving the valid
// prefix intact) or an exhausted per-check node budget poisons the
// checker, and every later Append returns the same error.
//
// An Incremental is single-goroutine, like the SearchContext it runs
// on. cfg.DisableMemo selects the reference path: a fresh one-shot
// Check per checked prefix, retained for differential testing.
type Incremental struct {
	cfg Config
	ctx *SearchContext
	app *history.Appender

	res  IncrementalResult
	err  error
	hint *Serialization

	known map[history.TxID]struct{} // transactions already in hint.Order
	cand  []history.TxID            // scratch for the extended candidate

	// Checkpoint state (see TryTruncate): the reachable final states of
	// every serialization of the collapsed stable prefix, materialized
	// as durable Objects maps (merged over cfg.Objects) because stateIDs
	// do not survive context table flushes. nil means no checkpoint yet —
	// the single implicit root is cfg.Objects. rootPref is the index of
	// the root that last admitted a serialization; trying it first keeps
	// the hint fast path a single replay in the steady state.
	roots    []spec.Objects
	rootPref int
}

// NewIncremental returns a checker for one growing history. A nil
// cfg.Context gets a private SearchContext (shared across all appends);
// cfg.MaxNodes bounds each prefix check individually, exactly as it
// bounds each Check of a FirstNonOpaquePrefix scan.
func NewIncremental(cfg Config) *Incremental {
	if !cfg.DisableMemo && cfg.Context == nil {
		cfg.Context = NewSearchContext()
	}
	return &Incremental{
		cfg:   cfg,
		ctx:   cfg.Context,
		app:   history.NewAppender(),
		res:   IncrementalResult{Opaque: true, PrefixLen: -1},
		known: make(map[history.TxID]struct{}),
	}
}

// Result returns the current verdict.
func (inc *Incremental) Result() IncrementalResult { return inc.res }

// Err returns the latched error, if any.
func (inc *Incremental) Err() error { return inc.err }

// History returns the live suffix as a view: every event appended since
// the last checkpoint, or since creation while no truncation has
// happened (valid across further appends but not across TryTruncate;
// clone to retain independently).
func (inc *Incremental) History() history.History { return inc.app.History() }

// Context returns the SearchContext the checker runs on (nil on the
// DisableMemo reference path). Sharing it with a follow-up Diagnose of
// the violating prefix reuses everything interned during monitoring;
// the usual single-goroutine rules apply.
func (inc *Incremental) Context() *SearchContext { return inc.ctx }

// ContextStats returns the search-table counters of the checker's
// SearchContext — states and atoms interned, memo entries and hit rates
// — or the zero Stats on the DisableMemo reference path, which runs
// with no context. It follows the context's single-goroutine rules
// (call it from the appending goroutine, between appends); the monitor
// mirrors the result into lock-free counters so telemetry scrapes never
// touch the context itself.
func (inc *Incremental) ContextStats() Stats {
	if inc.ctx == nil {
		return Stats{}
	}
	return inc.ctx.Stats()
}

// Append extends the history with evs, in order, and returns the verdict
// covering every event appended so far. A non-nil error (ill-formed
// event, exhausted node budget) latches; the returned result is the last
// valid verdict.
func (inc *Incremental) Append(evs ...history.Event) (IncrementalResult, error) {
	for _, ev := range evs {
		if err := inc.appendOne(ev); err != nil {
			return inc.res, err
		}
	}
	return inc.res, nil
}

func (inc *Incremental) appendOne(ev history.Event) error {
	if inc.err != nil {
		return inc.err
	}
	// The skip rule needs the transaction's status in the prefix
	// *before* this event.
	wasCommitPending := ev.Kind == history.KindAbort &&
		inc.app.Status(ev.Tx) == history.StatusCommitPending
	if err := inc.app.Append(ev); err != nil {
		inc.err = fmt.Errorf("prefix of length %d: %w", inc.res.Events+1, err)
		return inc.err
	}
	inc.res.Events++
	switch {
	case !inc.res.Opaque:
		// Latched: the history keeps growing (for diagnosis and
		// reporting) but no further checking happens.
		return nil
	case ev.Kind.Invocation():
		return nil
	case ev.Kind == history.KindAbort && !wasCommitPending:
		inc.res.Skipped++
		return nil
	}
	return inc.check()
}

// check decides the current prefix and folds the outcome into the
// running result. With a checkpoint in place the prefix is the live
// suffix and the decomposition of TryTruncate applies: the full history
// is opaque iff the suffix serializes from at least one checkpoint root,
// so the roots are tried in turn — last-successful first, carrying the
// witness hint — under one shared node budget, and only a failure from
// every root is a violation.
func (inc *Incremental) check() error {
	if inc.cfg.DisableMemo {
		return inc.checkReference()
	}
	h := inc.app.History()
	txs := inc.app.Transactions()
	maxNodes := inc.cfg.MaxNodes
	if maxNodes == 0 {
		maxNodes = defaultMaxNodes
	}
	var nodes int
	hint := inc.candidate(txs)
	var ser *Serialization
	var err error
	for ri := range inc.rootCount() {
		root := inc.rootAt((inc.rootPref + ri) % inc.rootCount())
		ser, err = FindSerialization(SerializeOptions{
			Source: h,
			Txs:    txs,
			Decide: func(tx history.TxID) Decision {
				// O(1) from the appender's maintained phases; Check derives
				// the same decisions from History.Status scans.
				switch inc.app.Status(tx) {
				case history.StatusCommitted:
					return DecideCommitted
				case history.StatusCommitPending:
					return DecideBranch
				default:
					return DecideAborted
				}
			},
			// ≺ constraints from the appender's maintained spans: setup
			// cost scales with the live transaction count, not the
			// session's event count.
			RealTimeSpans: inc.app.Spans(),
			Objects:       root,
			MaxNodes:      maxNodes,
			Nodes:         &nodes, // accumulates: one budget across all roots
			Context:       inc.ctx,
			Hint:          hint,
			DisableSym:    inc.cfg.DisableSym,
		})
		if err != nil || ser != nil {
			if ser != nil {
				inc.rootPref = (inc.rootPref + ri) % inc.rootCount()
			}
			break
		}
	}
	inc.res.Nodes += nodes
	if nodes == 0 {
		// The search explores at least one node whenever it runs, so a
		// zero delta means the hint validated.
		inc.res.FastPath++
	} else {
		inc.res.Searches++
	}
	if err != nil {
		inc.err = fmt.Errorf("prefix of length %d: %w", inc.res.Events, err)
		return inc.err
	}
	if ser == nil {
		inc.res.Opaque = false
		inc.res.PrefixLen = inc.res.Events
		inc.hint = nil
		return nil
	}
	inc.hint = ser
	return nil
}

// rootCount returns the number of initial states prefix checks run from:
// the checkpoint roots, or 1 (the configured initial state) while no
// checkpoint exists.
func (inc *Incremental) rootCount() int {
	if len(inc.roots) == 0 {
		return 1
	}
	return len(inc.roots)
}

// rootAt returns the initial Objects of root i.
func (inc *Incremental) rootAt(i int) spec.Objects {
	if len(inc.roots) == 0 {
		return inc.cfg.Objects
	}
	return inc.roots[i]
}

// candidate extends the previous witness order with the transactions
// that appeared since — in first-event order, at the end, where a fresh
// (live, so unconstrained-by-≺H) transaction can always go.
func (inc *Incremental) candidate(txs []history.TxID) *Serialization {
	if inc.hint == nil {
		for _, tx := range txs {
			inc.known[tx] = struct{}{}
		}
		return nil
	}
	if len(inc.hint.Order) == len(txs) {
		return inc.hint
	}
	inc.cand = append(inc.cand[:0], inc.hint.Order...)
	for _, tx := range txs {
		if _, ok := inc.known[tx]; !ok {
			inc.known[tx] = struct{}{}
			inc.cand = append(inc.cand, tx)
		}
	}
	return &Serialization{Order: inc.cand, Commits: inc.hint.Commits}
}

// checkReference is the DisableMemo path: a fresh one-shot Check of the
// whole prefix, no context, no hint — the independent implementation the
// incremental engine is differentially tested against.
func (inc *Incremental) checkReference() error {
	r, err := Check(inc.app.History(), inc.cfg)
	inc.res.Nodes += r.Nodes
	inc.res.Searches++
	if err != nil {
		inc.err = fmt.Errorf("prefix of length %d: %w", inc.res.Events, err)
		return inc.err
	}
	if !r.Opaque {
		inc.res.Opaque = false
		inc.res.PrefixLen = inc.res.Events
	}
	return nil
}
