package core

import (
	"fmt"

	"otm/internal/history"
	"otm/internal/spec"
)

// replayTx replays the operation executions of one transaction on top of
// the given object states. It returns the updated states and true if
// every completed operation execution is accepted by the object's
// sequential specification; pending invocations at the end of a
// transaction are always legal (Seq(ob) contains every sequence of the
// specification ending with a pending invocation, §4). Objects missing
// from objs default to an integer register initialized to 0.
//
// The input map is never mutated: states are immutable and the map is
// copied on first write.
func replayTx(states spec.Objects, execs []history.OpExec) (spec.Objects, bool) {
	cur := states
	copied := false
	for _, e := range execs {
		if e.Pending {
			continue
		}
		st, ok := cur[e.Obj]
		if !ok {
			st = spec.NewRegister(0)
		}
		next, legal := st.Step(e.Op, e.Arg, e.Ret)
		if !legal {
			return nil, false
		}
		if !copied {
			cur = cur.Clone()
			copied = true
		}
		cur[e.Obj] = next
	}
	return cur, true
}

// TxLegal reports whether transaction tx is legal in the complete
// sequential history s (paper, §4): the largest subsequence of s
// consisting of tx itself plus every committed transaction preceding tx
// must be a legal history, i.e. respect the sequential specification of
// every object. objs gives the initial object states; objects not listed
// default to integer registers initialized to 0.
func TxLegal(s history.History, tx history.TxID, objs spec.Objects) bool {
	states := objs
	if states == nil {
		states = spec.Objects{}
	}
	for _, other := range s.Transactions() {
		if other == tx {
			break
		}
		if !s.Committed(other) {
			continue
		}
		var ok bool
		states, ok = replayTx(states, s.OpExecs(other))
		if !ok {
			return false
		}
	}
	_, ok := replayTx(states, s.OpExecs(tx))
	return ok
}

// AllLegal reports whether every transaction in the complete sequential
// history s is legal in s — condition (2) of Definition 1. It returns the
// first illegal transaction when the check fails.
func AllLegal(s history.History, objs spec.Objects) (history.TxID, bool) {
	if !s.Sequential() {
		panic("core: AllLegal requires a sequential history")
	}
	states := objs
	if states == nil {
		states = spec.Objects{}
	}
	for _, tx := range s.Transactions() {
		next, ok := replayTx(states, s.OpExecs(tx))
		if !ok {
			return tx, false
		}
		if s.Committed(tx) {
			states = next
		}
	}
	return 0, true
}

// buildSequential concatenates the per-transaction projections of hc in
// the given order, producing the sequential history S of a witness. One
// counting pass and one fill pass over hc replace the per-transaction
// H|Ti projections (which made witness assembly quadratic and the
// dominant allocation source of batch checking once the search itself
// was interned).
func buildSequential(hc history.History, order []history.TxID) history.History {
	n := len(order)
	ints := make([]int, 2*n) // slot cursor and slot base per transaction
	offs, fill := ints[:n], ints[n:]
	for _, e := range hc {
		if i := indexOf(order, e.Tx); i >= 0 {
			fill[i]++ // first pass: counts
		}
	}
	total := 0
	for i, c := range fill {
		offs[i] = total
		total += c
		fill[i] = 0
	}
	s := make(history.History, total)
	for _, e := range hc {
		if i := indexOf(order, e.Tx); i >= 0 {
			s[offs[i]+fill[i]] = e
			fill[i]++
		}
	}
	return s
}

// indexOf returns the position of tx in txs, or -1 — the checker-side
// twin of history's linear transaction lookup (transaction counts on the
// hot path are small; maps cost more than the scan).
func indexOf(txs []history.TxID, tx history.TxID) int {
	for i, t := range txs {
		if t == tx {
			return i
		}
	}
	return -1
}

func txIndex(txs []history.TxID) map[history.TxID]int {
	idx := make(map[history.TxID]int, len(txs))
	for i, tx := range txs {
		idx[tx] = i
	}
	return idx
}

func fmtOrder(order []history.TxID) string {
	s := ""
	for i, tx := range order {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("T%d", int(tx))
	}
	return s
}
