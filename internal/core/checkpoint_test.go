package core_test

import (
	"errors"
	"fmt"
	"testing"

	"otm/internal/core"
	"otm/internal/gen"
	"otm/internal/history"
	"otm/internal/spec"
)

// appendTruncating feeds h into inc one event at a time, attempting a
// truncation after every single append — the most adversarial
// checkpointing schedule possible: every quiescent point collapses the
// whole live suffix. Returns the prefix length the checker flagged, or
// -1, plus the number of checkpoints taken.
func appendTruncating(t *testing.T, inc *core.Incremental, h history.History) (int, int) {
	t.Helper()
	flagged := -1
	for i, ev := range h {
		res, err := inc.Append(ev)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !res.Opaque && flagged == -1 {
			flagged = res.PrefixLen
		}
		if _, err := inc.TryTruncate(0); err != nil {
			t.Fatalf("event %d: TryTruncate: %v", i, err)
		}
	}
	return flagged, inc.Result().Checkpoints
}

// TestTruncatedMatchesCheckEveryPrefix is the tentpole differential:
// with truncation attempted after every event, the running verdict must
// still agree with fresh one-shot Check calls on every prefix of the
// full, untruncated history — the checkpointed session may only ever
// hold a suffix, yet must judge exactly the same language.
func TestTruncatedMatchesCheckEveryPrefix(t *testing.T) {
	n := 60
	if !testing.Short() {
		n = 250
	}
	truncated := 0
	for _, cfg := range []gen.Config{
		{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.3},
		{Txs: 6, Objs: 2, MaxOps: 4, PStaleRead: 0.4, PLeaveLive: 0.5},
		{Txs: 4, Objs: 2, MaxOps: 3, PStaleRead: 0.2, PCommit: 0.4},
	} {
		for seed, h := range gen.Corpus(cfg, n, 7) {
			want := firstBadPrefix(t, h)
			inc := core.NewIncremental(core.Config{})
			flagged, cps := appendTruncating(t, inc, h)
			truncated += cps
			if flagged != want {
				t.Fatalf("cfg=%+v seed=%d: truncating incremental flags prefix %d, one-shot scan says %d (checkpoints=%d):\n%s",
					cfg, seed, flagged, want, cps, h.Format())
			}
		}
	}
	if truncated == 0 {
		t.Fatal("no corpus history ever truncated — the differential exercised nothing")
	}
}

// TestTruncatedMatchesReferenceEngine pins the truncating checker
// against the independent DisableMemo reference engine, checked fresh on
// every response-boundary prefix of the untruncated history.
func TestTruncatedMatchesReferenceEngine(t *testing.T) {
	n := 30
	if !testing.Short() {
		n = 100
	}
	for seed, h := range gen.Corpus(gen.Config{Txs: 5, Objs: 2, MaxOps: 3, PStaleRead: 0.35, PLeaveLive: 0.3}, n, 19) {
		inc := core.NewIncremental(core.Config{})
		flagged, _ := appendTruncating(t, inc, h)
		want := -1
		for i := 1; i <= len(h); i++ {
			if i < len(h) && h[i-1].Kind.Invocation() {
				continue
			}
			r, err := core.Check(h[:i], core.Config{DisableMemo: true})
			if err != nil {
				t.Fatalf("seed=%d: reference Check of prefix %d: %v", seed, i, err)
			}
			if !r.Opaque {
				want = i
				break
			}
		}
		if flagged != want {
			t.Fatalf("seed=%d: truncating incremental flags %d, reference engine says %d:\n%s",
				seed, flagged, want, h.Format())
		}
	}
}

// TestTruncateCollapsesState: on a long well-behaved workload with
// per-transaction quiescence, aggressive truncation keeps the live
// suffix at a handful of events while the verdict stays opaque and the
// fast path keeps carrying the checks.
func TestTruncateCollapsesState(t *testing.T) {
	inc := core.NewIncremental(core.Config{})
	maxLive := 0
	for i := 0; i < 200; i++ {
		tx := history.TxID(i + 1)
		evs := history.History{
			history.Inv(tx, "x", "write", i), history.Ret(tx, "x", "write", history.OK),
			history.Inv(tx, "x", "read", nil), history.Ret(tx, "x", "read", i),
			history.TryC(tx), history.Commit(tx),
		}
		for _, ev := range evs {
			if _, err := inc.Append(ev); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := inc.TryTruncate(0); err != nil {
			t.Fatal(err)
		}
		if l := inc.LiveLen(); l > maxLive {
			maxLive = l
		}
	}
	res := inc.Result()
	if !res.Opaque {
		t.Fatalf("flagged at %d", res.PrefixLen)
	}
	if res.Events != 1200 {
		t.Fatalf("Events = %d, want 1200", res.Events)
	}
	if res.Checkpoints != 200 {
		t.Errorf("Checkpoints = %d, want 200 (every transaction boundary is quiescent)", res.Checkpoints)
	}
	if res.TruncatedEvents != 1200 {
		t.Errorf("TruncatedEvents = %d, want 1200", res.TruncatedEvents)
	}
	if res.Roots != 1 {
		t.Errorf("Roots = %d, want 1 (deterministic sequential workload)", res.Roots)
	}
	if maxLive > 6 {
		t.Errorf("live suffix reached %d events; truncation is not bounding state", maxLive)
	}
	if inc.LiveLen() != 0 || inc.LiveTxs() != 0 {
		t.Errorf("live suffix %d events / %d txs after final truncation, want 0/0",
			inc.LiveLen(), inc.LiveTxs())
	}
}

// TestTruncateMultiRootCheckpoint: a stable prefix whose serializations
// reach several distinct final states must carry all of them, and a
// suffix is opaque iff it extends at least one.
func TestTruncateMultiRootCheckpoint(t *testing.T) {
	// T1 and T2 write x concurrently (overlapping spans: no real-time
	// constraint either way), so Reach = {x=1, x=2}.
	prefix := history.History{
		history.Inv(1, "x", "write", 1), history.Inv(2, "x", "write", 2),
		history.Ret(1, "x", "write", history.OK), history.Ret(2, "x", "write", history.OK),
		history.TryC(1), history.Commit(1), history.TryC(2), history.Commit(2),
	}.MustWellFormed()

	for _, tc := range []struct {
		name   string
		read   int
		opaque bool
	}{
		{"first writer's value", 1, true},
		{"second writer's value", 2, true},
		{"unwritten value", 3, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inc := core.NewIncremental(core.Config{})
			if _, err := inc.Append(prefix...); err != nil {
				t.Fatal(err)
			}
			ok, err := inc.TryTruncate(0)
			if err != nil || !ok {
				t.Fatalf("TryTruncate = %v, %v; want truncation", ok, err)
			}
			if got := inc.Result().Roots; got != 2 {
				t.Fatalf("Roots = %d, want 2 (both commit orders reachable)", got)
			}
			suffix := history.History{
				history.Inv(3, "x", "read", nil), history.Ret(3, "x", "read", tc.read),
				history.TryC(3), history.Commit(3),
			}
			res, err := inc.Append(suffix...)
			if err != nil {
				t.Fatal(err)
			}
			if res.Opaque != tc.opaque {
				t.Errorf("read x=%d: opaque=%v, want %v", tc.read, res.Opaque, tc.opaque)
			}
			// The untruncated one-shot verdict on the full history agrees.
			full := append(prefix[:len(prefix):len(prefix)], suffix...)
			r, err := core.Check(full, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if r.Opaque != tc.opaque {
				t.Errorf("one-shot Check disagrees: %v, want %v", r.Opaque, tc.opaque)
			}
		})
	}
}

// TestTruncateConfiguredObjects: a checkpoint must not lose the
// configured initial state of objects the collapsed prefix never
// touched.
func TestTruncateConfiguredObjects(t *testing.T) {
	cfg := core.Config{Objects: spec.Registers(7, "y")}
	for _, tc := range []struct {
		name   string
		read   int
		opaque bool
	}{{"configured initial", 7, true}, {"default initial", 0, false}} {
		t.Run(tc.name, func(t *testing.T) {
			inc := core.NewIncremental(cfg)
			prefix := history.History{
				history.Inv(1, "x", "write", 1), history.Ret(1, "x", "write", history.OK),
				history.TryC(1), history.Commit(1),
			}
			if _, err := inc.Append(prefix...); err != nil {
				t.Fatal(err)
			}
			if ok, err := inc.TryTruncate(0); err != nil || !ok {
				t.Fatalf("TryTruncate = %v, %v; want truncation", ok, err)
			}
			res, err := inc.Append(
				history.Inv(2, "y", "read", nil), history.Ret(2, "y", "read", tc.read))
			if err != nil {
				t.Fatal(err)
			}
			if res.Opaque != tc.opaque {
				t.Errorf("read y=%d after truncation: opaque=%v, want %v", tc.read, res.Opaque, tc.opaque)
			}
		})
	}
}

// TestTruncateDeclines: every legitimate reason not to truncate returns
// (false, nil) and leaves the checker fully functional.
func TestTruncateDeclines(t *testing.T) {
	t.Run("unstable", func(t *testing.T) {
		inc := core.NewIncremental(core.Config{})
		if _, err := inc.Append(
			history.Inv(1, "x", "write", 1), history.Ret(1, "x", "write", history.OK)); err != nil {
			t.Fatal(err)
		}
		if inc.Stable() {
			t.Fatal("live transaction but Stable() == true")
		}
		if ok, err := inc.TryTruncate(0); ok || err != nil {
			t.Fatalf("TryTruncate on unstable suffix = %v, %v; want false, nil", ok, err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		inc := core.NewIncremental(core.Config{})
		if ok, err := inc.TryTruncate(0); ok || err != nil {
			t.Fatalf("TryTruncate on empty history = %v, %v; want false, nil", ok, err)
		}
	})
	t.Run("budget", func(t *testing.T) {
		inc := core.NewIncremental(core.Config{})
		if _, err := inc.Append(
			history.Inv(1, "x", "write", 1), history.Ret(1, "x", "write", history.OK),
			history.TryC(1), history.Commit(1)); err != nil {
			t.Fatal(err)
		}
		if ok, err := inc.TryTruncate(1); ok || err != nil {
			t.Fatalf("TryTruncate under a 1-node budget = %v, %v; want false, nil", ok, err)
		}
		// Still checking correctly afterwards.
		res, err := inc.Append(history.Inv(2, "x", "read", nil), history.Ret(2, "x", "read", 1))
		if err != nil || !res.Opaque {
			t.Fatalf("append after declined truncation: res=%+v err=%v", res, err)
		}
	})
	t.Run("reference path", func(t *testing.T) {
		inc := core.NewIncremental(core.Config{DisableMemo: true})
		if _, err := inc.Append(
			history.Inv(1, "x", "write", 1), history.Ret(1, "x", "write", history.OK),
			history.TryC(1), history.Commit(1)); err != nil {
			t.Fatal(err)
		}
		if ok, err := inc.TryTruncate(0); ok || err != nil {
			t.Fatalf("TryTruncate on the reference path = %v, %v; want false, nil", ok, err)
		}
	})
	t.Run("violated", func(t *testing.T) {
		inc := core.NewIncremental(core.Config{})
		res, err := inc.Append(history.Inv(1, "x", "read", nil), history.Ret(1, "x", "read", 9))
		if err != nil {
			t.Fatal(err)
		}
		if res.Opaque {
			t.Fatal("expected a violation")
		}
		if ok, err := inc.TryTruncate(0); ok || err != nil {
			t.Fatalf("TryTruncate after a violation = %v, %v; want false, nil", ok, err)
		}
		if got := len(inc.History()); got != 2 {
			t.Errorf("violating suffix length %d, want 2 (retained for diagnosis)", got)
		}
	})
}

// TestIncrementalDiagnose: the checkpoint-aware diagnosis names the
// culpable suffix transactions, judged from the checkpoint roots.
func TestIncrementalDiagnose(t *testing.T) {
	inc := core.NewIncremental(core.Config{})
	if _, err := inc.Append(
		history.Inv(1, "x", "write", 5), history.Ret(1, "x", "write", history.OK),
		history.TryC(1), history.Commit(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Diagnose(); err == nil {
		t.Fatal("Diagnose with no violation should error")
	}
	if ok, err := inc.TryTruncate(0); err != nil || !ok {
		t.Fatalf("TryTruncate = %v, %v; want truncation", ok, err)
	}
	// T2 reads the checkpointed value (fine), T3 reads garbage.
	res, err := inc.Append(
		history.Inv(2, "x", "read", nil), history.Ret(2, "x", "read", 5),
		history.Inv(3, "x", "read", nil), history.Ret(3, "x", "read", 9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque {
		t.Fatal("expected a violation")
	}
	d, err := inc.Diagnose()
	if err != nil {
		t.Fatal(err)
	}
	if d.PrefixLen != res.PrefixLen {
		t.Errorf("diagnosis PrefixLen %d, want %d", d.PrefixLen, res.PrefixLen)
	}
	if len(d.Implicated) != 1 || d.Implicated[0] != 3 {
		t.Errorf("Implicated = %v, want [T3]", d.Implicated)
	}
	if d.Culprit.Tx != 3 {
		t.Errorf("Culprit = %v, want T3's read", d.Culprit)
	}
}

// TestTruncateComposition: a second truncation enumerates from every
// root of the first checkpoint; when the new stable suffix overwrites
// the divergent state, the per-root Reach sets collapse back into one
// deduplicated root.
func TestTruncateComposition(t *testing.T) {
	inc := core.NewIncremental(core.Config{})
	// Two concurrent writers: checkpoint with Reach = {x=1, x=2}.
	if _, err := inc.Append(
		history.Inv(1, "x", "write", 1), history.Inv(2, "x", "write", 2),
		history.Ret(1, "x", "write", history.OK), history.Ret(2, "x", "write", history.OK),
		history.TryC(1), history.Commit(1), history.TryC(2), history.Commit(2)); err != nil {
		t.Fatal(err)
	}
	if ok, err := inc.TryTruncate(0); err != nil || !ok {
		t.Fatalf("first TryTruncate = %v, %v", ok, err)
	}
	if got := len(inc.Roots()); got != 2 {
		t.Fatalf("Roots() has %d entries, want 2", got)
	}
	// T3 overwrites x: from either root the only final state is x=9.
	if _, err := inc.Append(
		history.Inv(3, "x", "write", 9), history.Ret(3, "x", "write", history.OK),
		history.TryC(3), history.Commit(3)); err != nil {
		t.Fatal(err)
	}
	if ok, err := inc.TryTruncate(0); err != nil || !ok {
		t.Fatalf("second TryTruncate = %v, %v", ok, err)
	}
	res := inc.Result()
	if res.Checkpoints != 2 || res.Roots != 1 {
		t.Fatalf("after composition: Checkpoints=%d Roots=%d, want 2 and 1", res.Checkpoints, res.Roots)
	}
	r, err := inc.Append(history.Inv(4, "x", "read", nil), history.Ret(4, "x", "read", 9))
	if err != nil || !r.Opaque {
		t.Fatalf("read of the converged state: res=%+v err=%v", r, err)
	}
}

// TestTruncateRootCapDeclines: a stable prefix whose Reach set exceeds
// maxCheckpointRoots (64) is declined — every root multiplies later
// check cost, so a too-diverse checkpoint is worse than none.
func TestTruncateRootCapDeclines(t *testing.T) {
	inc := core.NewIncremental(core.Config{})
	// Seven objects, each with two concurrent writers racing distinct
	// values, all fourteen transactions overlapping: Reach is the full
	// product, 2^7 = 128 > 64 final states.
	var open, rest history.History
	for o := range 7 {
		obj := history.ObjID(fmt.Sprintf("x%d", o))
		a, b := history.TxID(2*o+1), history.TxID(2*o+2)
		open = append(open, history.Inv(a, obj, "write", 1), history.Inv(b, obj, "write", 2))
		rest = append(rest,
			history.Ret(a, obj, "write", history.OK), history.Ret(b, obj, "write", history.OK))
	}
	for tx := history.TxID(1); tx <= 14; tx++ {
		rest = append(rest, history.TryC(tx), history.Commit(tx))
	}
	if _, err := inc.Append(append(open, rest...)...); err != nil {
		t.Fatal(err)
	}
	if !inc.Stable() {
		t.Fatal("prefix should be stable")
	}
	if ok, err := inc.TryTruncate(1 << 20); ok || err != nil {
		t.Fatalf("TryTruncate over a 128-state Reach = %v, %v; want false, nil (root cap)", ok, err)
	}
	if inc.Result().Checkpoints != 0 || inc.LiveLen() == 0 {
		t.Error("declined truncation must leave the history intact")
	}
}

// TestReferencePathBudgetError: an exhausted node budget on the
// DisableMemo reference path latches like any checking error.
func TestReferencePathBudgetError(t *testing.T) {
	inc := core.NewIncremental(core.Config{DisableMemo: true, MaxNodes: 1})
	var err error
	evs := history.History{
		history.Inv(1, "x", "write", 1), history.Inv(2, "x", "write", 2),
		history.Ret(1, "x", "write", history.OK), history.Ret(2, "x", "write", history.OK),
		history.TryC(1), history.Commit(1), history.TryC(2), history.Commit(2),
	}
	for _, ev := range evs {
		if _, err = inc.Append(ev); err != nil {
			break
		}
	}
	if !errors.Is(err, core.ErrSearchLimit) {
		t.Fatalf("err = %v, want ErrSearchLimit", err)
	}
	if inc.Err() == nil {
		t.Fatal("budget error did not latch")
	}
}
