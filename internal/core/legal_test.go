package core

import (
	"testing"

	"otm/internal/history"
	"otm/internal/spec"
)

// seqH2 is the paper's H2: a complete sequential history equivalent to H1.
func seqH2() history.History {
	return history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Write(3, "x", 2).Write(3, "y", 2).Commits(3).
		Read(2, "x", 1).Read(2, "y", 2).Aborts(2).
		MustHistory()
}

func TestTxLegalH2(t *testing.T) {
	s := seqH2()
	objs := spec.Registers(0, "x", "y")
	if !TxLegal(s, 1, objs) {
		t.Error("T1 (first writer) must be legal in H2")
	}
	if !TxLegal(s, 3, objs) {
		t.Error("T3 must be legal in H2 (sees T1's committed x=1)")
	}
	// T2 reads x=1 after committed T3 wrote x=2: illegal (the paper's
	// case (2) for H1: the first read of T2 returns 1 instead of 2).
	if TxLegal(s, 2, objs) {
		t.Error("T2 must be illegal in H2")
	}
}

func TestTxLegalIgnoresAbortedPredecessors(t *testing.T) {
	// An aborted writer must be invisible to later transactions.
	s := history.NewBuilder().
		Write(1, "x", 9).Aborts(1).
		Read(2, "x", 0).Commits(2).
		MustHistory()
	objs := spec.Registers(0, "x")
	if !TxLegal(s, 2, objs) {
		t.Error("T2 reading the initial value is legal: aborted T1 is not visible")
	}
	sBad := history.NewBuilder().
		Write(1, "x", 9).Aborts(1).
		Read(2, "x", 9).Commits(2).
		MustHistory()
	if TxLegal(sBad, 2, objs) {
		t.Error("T2 reading the aborted write is illegal")
	}
}

func TestTxLegalOwnWritesVisible(t *testing.T) {
	// A transaction sees its own earlier writes.
	s := history.NewBuilder().
		Write(1, "x", 7).Read(1, "x", 7).Commits(1).
		MustHistory()
	if !TxLegal(s, 1, spec.Registers(0, "x")) {
		t.Error("a transaction must see its own writes")
	}
}

func TestTxLegalPendingInvocation(t *testing.T) {
	// A trailing pending invocation is always legal.
	s := history.NewBuilder().
		Read(1, "x", 0).Inv(1, "x", "write", 5).
		MustHistory()
	if !TxLegal(s, 1, spec.Registers(0, "x")) {
		t.Error("pending invocation must be legal")
	}
}

func TestTxLegalDefaultRegister(t *testing.T) {
	// Objects not in the map default to registers initialized to 0.
	s := history.NewBuilder().Read(1, "z", 0).Commits(1).MustHistory()
	if !TxLegal(s, 1, nil) {
		t.Error("default object must be a register with initial value 0")
	}
	sBad := history.NewBuilder().Read(1, "z", 3).Commits(1).MustHistory()
	if TxLegal(sBad, 1, nil) {
		t.Error("read of 3 from a fresh register is illegal")
	}
}

func TestAllLegal(t *testing.T) {
	objs := spec.Registers(0, "x", "y")
	if tx, ok := AllLegal(seqH2(), objs); ok || tx != 2 {
		t.Errorf("AllLegal(H2) = (T%d, %v), want (T2, false)", int(tx), ok)
	}
	good := history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 1).Commits(2).
		MustHistory()
	if _, ok := AllLegal(good, objs); !ok {
		t.Error("sequential read-your-committed-predecessor history is legal")
	}
}

func TestAllLegalPanicsOnConcurrent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AllLegal must panic on non-sequential input")
		}
	}()
	h := history.NewBuilder().
		Inv(1, "x", "read", nil).
		Write(2, "x", 1).Commits(2).
		Ret(1, "x", "read", 1).Commits(1).
		MustHistory()
	AllLegal(h, nil)
}

func TestTxLegalCounterSemantics(t *testing.T) {
	// With counter semantics, concurrent committed increments compose.
	s := history.NewBuilder().
		Op(1, "c", "inc", nil, spec.OK).Commits(1).
		Op(2, "c", "inc", nil, spec.OK).Commits(2).
		Op(3, "c", "get", nil, 2).Commits(3).
		MustHistory()
	objs := spec.Objects{"c": spec.NewCounter(0)}
	for _, tx := range []history.TxID{1, 2, 3} {
		if !TxLegal(s, tx, objs) {
			t.Errorf("T%d must be legal with counter semantics", int(tx))
		}
	}
}
