package core

import (
	"fmt"
	"strings"

	"otm/internal/history"
)

// Diagnosis explains why a history is not opaque, in terms a TM
// implementer can act on: where the violation first became observable
// and which transactions are implicated.
type Diagnosis struct {
	// Opaque mirrors the checker verdict; the remaining fields are
	// meaningful only when it is false.
	Opaque bool
	// PrefixLen is the length of the shortest non-opaque prefix; the
	// violation became observable when event Culprit (the last event of
	// that prefix) was issued.
	PrefixLen int
	Culprit   history.Event
	// Implicated lists the transactions whose removal (alone) from the
	// offending prefix restores opacity — the minimal players of the
	// conflict. It may be empty when no single transaction is
	// responsible.
	Implicated []history.TxID
	// Nodes is the total number of search nodes explored across every
	// internal check: the prefix scan plus one re-check per removed
	// transaction. All of them share one SearchContext, so the total is
	// directly comparable to running the same checks with cold tables.
	Nodes int
}

// String renders the diagnosis for humans.
func (d Diagnosis) String() string {
	if d.Opaque {
		return "opaque"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "not opaque: first observable at event %d (%s)", d.PrefixLen-1, d.Culprit)
	if len(d.Implicated) > 0 {
		parts := make([]string, len(d.Implicated))
		for i, tx := range d.Implicated {
			parts[i] = fmt.Sprintf("T%d", int(tx))
		}
		fmt.Fprintf(&b, "; removing any of {%s} restores opacity", strings.Join(parts, ", "))
	}
	return b.String()
}

// RemoveTx returns h with every event of tx removed.
func RemoveTx(h history.History, tx history.TxID) history.History {
	var out history.History
	for _, e := range h {
		if e.Tx != tx {
			out = append(out, e)
		}
	}
	return out
}

// Diagnose locates the first non-opaque prefix of h and identifies the
// implicated transactions. It returns an error for malformed histories
// or search exhaustion. Every internal check — the prefix scan and the
// per-removed-transaction re-checks — runs on one shared SearchContext
// (cfg.Context if supplied), so the interned states and cached
// transitions of the scan are reused when each candidate transaction is
// removed; Diagnosis.Nodes makes the total cost observable.
func Diagnose(h history.History, cfg Config) (Diagnosis, error) {
	if cfg.Context == nil && !cfg.DisableMemo {
		cfg.Context = NewSearchContext()
	}
	n, nodes, err := firstNonOpaquePrefix(h, cfg)
	if err != nil {
		return Diagnosis{Nodes: nodes}, err
	}
	if n == -1 {
		return Diagnosis{Opaque: true, PrefixLen: -1, Nodes: nodes}, nil
	}
	d := Diagnosis{PrefixLen: n, Culprit: h[n-1], Nodes: nodes}
	prefix := h[:n]
	for _, tx := range prefix.Transactions() {
		r, err := Check(RemoveTx(prefix, tx), cfg)
		d.Nodes += r.Nodes
		if err != nil {
			return d, fmt.Errorf("diagnosing without T%d: %w", int(tx), err)
		}
		if r.Opaque {
			d.Implicated = append(d.Implicated, tx)
		}
	}
	return d, nil
}
