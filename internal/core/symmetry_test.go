package core

import (
	"testing"

	"otm/internal/gen"
	"otm/internal/history"
)

// cloneCorpus is the symmetric corpus of the symmetry-reduction tests:
// each history holds templates×clones transactions, the clones of one
// template fully interchangeable and all instances pairwise concurrent —
// maximal class sizes, the regime the reduction targets.
func cloneCorpus(n int, seed int64) []history.History {
	return gen.Corpus(gen.Config{
		Txs: 3, Objs: 2, MaxOps: 3, Clones: 3, PStaleRead: 0.3, PLeaveLive: 0.4,
	}, n, seed)
}

// checkWitness asserts that an opaque result carries a genuine
// Definition 1 certificate.
func checkWitness(t *testing.T, h history.History, res Result) {
	t.Helper()
	w := res.Witness
	s := w.Sequential
	if !s.Sequential() || !s.Complete() {
		t.Fatalf("witness S not complete-sequential:\n%s", s.Format())
	}
	if err := w.Completion.WellFormed(); err != nil {
		t.Fatalf("witness completion malformed: %v", err)
	}
	if !history.Equivalent(s, w.Completion) {
		t.Fatalf("witness S not equivalent to its completion:\n%s", s.Format())
	}
	if !history.PreservesRealTimeOrder(h, s) {
		t.Fatalf("witness S breaks the real-time order:\n%s", s.Format())
	}
	if tx, ok := AllLegal(s, nil); !ok {
		t.Fatalf("T%d illegal in witness S:\n%s", int(tx), s.Format())
	}
}

// TestSymmetryDifferential is the three-way engine differential on the
// symmetric corpus: the reduced engine, the unreduced engine
// (DisableSym) and the per-completion reference (DisableMemo) must agree
// on every verdict, the reduced engine must explore no more nodes than
// the unreduced one, and every opaque verdict must come with a valid
// witness. The reduced and unreduced engines share one context each
// across the corpus, so the class map's participation in the memo
// problem signature is exercised too.
func TestSymmetryDifferential(t *testing.T) {
	n := 60
	if !testing.Short() {
		n = 200
	}
	symCtx, nosymCtx := NewSearchContext(), NewSearchContext()
	symNodes, nosymNodes, opaque := 0, 0, 0
	for i, h := range cloneCorpus(n, 7) {
		sym, err := Check(h, Config{Context: symCtx})
		if err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		nosym, err := Check(h, Config{Context: nosymCtx, DisableSym: true})
		if err != nil {
			t.Fatalf("history %d: unreduced: %v", i, err)
		}
		ref, err := Check(h, Config{DisableMemo: true})
		if err != nil {
			t.Fatalf("history %d: reference: %v", i, err)
		}
		if sym.Opaque != nosym.Opaque || sym.Opaque != ref.Opaque {
			t.Fatalf("history %d: reduced=%v unreduced=%v reference=%v:\n%s",
				i, sym.Opaque, nosym.Opaque, ref.Opaque, h.Format())
		}
		if sym.Opaque {
			opaque++
			checkWitness(t, h, sym)
		}
		symNodes += sym.Nodes
		nosymNodes += nosym.Nodes
	}
	if opaque == 0 {
		t.Error("corpus produced no opaque histories; the witness path went untested")
	}
	if symNodes > nosymNodes {
		t.Errorf("reduced search explored %d nodes, unreduced %d — the reduction must never add nodes",
			symNodes, nosymNodes)
	}
	s := symCtx.Stats()
	if s.SymClasses == 0 || s.SymPrunes == 0 {
		t.Errorf("clone corpus detected no symmetry: %+v", s)
	}
	if ns := nosymCtx.Stats(); ns.SymClasses != 0 || ns.SymPrunes != 0 {
		t.Errorf("DisableSym engine still counted symmetry work: %+v", ns)
	}
}

// TestClonePermutationInvariance: relabeling the interchangeable clones
// of one template — any permutation of their dense TxID block — yields a
// history the checker must give the identical verdict, with a valid
// witness when opaque. This is the observable statement of the symmetry
// the search engine exploits: if canonicalizing class orders lost
// witnesses, some rotation of some clone block would flip a verdict.
func TestClonePermutationInvariance(t *testing.T) {
	const templates, clones = 3, 3
	n := 60
	if !testing.Short() {
		n = 200
	}
	// rotate relabels each template's clone block c → c+r (mod clones),
	// leaving every event in place: the same interleaving, told about
	// different members of each class.
	rotate := func(h history.History, r int) history.History {
		out := make(history.History, len(h))
		for i, e := range h {
			if e.Tx >= 1 {
				tpl := (int(e.Tx) - 1) / clones
				c := (int(e.Tx) - 1) % clones
				e.Tx = history.TxID(1 + tpl*clones + (c+r)%clones)
			}
			out[i] = e
		}
		return out
	}

	ctx := NewSearchContext()
	cfg := Config{Context: ctx}
	for i, h := range gen.Corpus(gen.Config{
		Txs: templates, Objs: 2, MaxOps: 3, Clones: clones, PStaleRead: 0.3, PLeaveLive: 0.4,
	}, n, 101) {
		base, err := Check(h, cfg)
		if err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		for r := 1; r < clones; r++ {
			p := rotate(h, r)
			if err := p.WellFormed(); err != nil {
				t.Fatalf("history %d rot %d: relabeling broke well-formedness: %v", i, r, err)
			}
			got, err := Check(p, cfg)
			if err != nil {
				t.Fatalf("history %d rot %d: %v", i, r, err)
			}
			if got.Opaque != base.Opaque {
				t.Fatalf("history %d: verdict flipped under clone relabeling (rot %d): base=%v got=%v\n%s",
					i, r, base.Opaque, got.Opaque, h.Format())
			}
			if got.Opaque {
				checkWitness(t, p, got)
			}
		}
	}
}

// TestSharedTablesSymmetricCorpus: the symmetry-reduced engine under one
// SharedTables pool — several goroutines racing on the same clone-heavy
// problems, so class-scoped memo entries and interned signatures cross
// workers — must match the unreduced single-context verdicts. Run with
// -race in CI.
func TestSharedTablesSymmetricCorpus(t *testing.T) {
	n := 60
	if !testing.Short() {
		n = 150
	}
	hs := cloneCorpus(n, 55)
	want := make([]bool, len(hs))
	nosym := NewSearchContext()
	for i, h := range hs {
		r, err := Check(h, Config{Context: nosym, DisableSym: true})
		if err != nil {
			t.Fatalf("history %d: unreduced: %v", i, err)
		}
		want[i] = r.Opaque
	}

	const goroutines = 8
	tables := NewSharedTables()
	errs := make([]error, goroutines)
	stats := make([]Stats, goroutines)
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			ctx := tables.NewContext()
			cfg := Config{Context: ctx}
			for i := range hs {
				j := (i + g*len(hs)/goroutines) % len(hs)
				r, err := Check(hs[j], cfg)
				if err != nil {
					errs[g] = err
					return
				}
				if r.Opaque != want[j] {
					t.Errorf("goroutine %d, history %d: shared reduced engine says opaque=%v, unreduced says %v",
						g, j, r.Opaque, want[j])
					return
				}
			}
			stats[g] = ctx.Stats()
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	var total Stats
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		total.Add(stats[g])
	}
	if total.SymClasses == 0 || total.SymPrunes == 0 {
		t.Errorf("shared run detected no symmetry: %+v", total)
	}
}
