package core

import (
	"errors"
	"fmt"

	"otm/internal/history"
	"otm/internal/spec"
)

// ErrSearchLimit is returned when the opacity search exceeds the
// configured node budget before reaching a verdict.
var ErrSearchLimit = errors.New("core: opacity search exceeded node limit")

// Witness demonstrates that a history is opaque: Completion is the member
// of Complete(H) assembled from the commit/abort fates the search chose
// for the commit-pending transactions, Order is the serialization of its
// transactions, and Sequential is the resulting history S of Definition 1
// (equivalent to Completion, preserving ≺H, with every transaction
// legal).
type Witness struct {
	Completion history.History
	Order      []history.TxID
	Sequential history.History
}

// String renders the witness serialization order, e.g. "T2 T1 T3".
func (w *Witness) String() string { return fmtOrder(w.Order) }

// Result is the outcome of an opacity check.
type Result struct {
	// Opaque is the verdict.
	Opaque bool
	// Witness is non-nil iff Opaque: the certificate of Definition 1.
	Witness *Witness
	// Nodes is the number of search nodes explored. For the default
	// engine this counts one unified search across all completions; for
	// the DisableMemo reference it accumulates across the per-completion
	// searches, so the two are directly comparable.
	Nodes int
}

// Config tunes the opacity decision procedure.
type Config struct {
	// Objects supplies the sequential specifications and initial states
	// of the shared objects. Objects not listed (or a nil map) default to
	// integer registers initialized to 0, matching the paper's examples.
	Objects spec.Objects
	// MaxNodes bounds the number of search nodes; 0 means the default
	// (4,000,000). Exceeding the bound yields ErrSearchLimit. The budget
	// covers the whole verdict: one unified search for the default
	// engine, the sum over completions for the reference engine.
	MaxNodes int
	// Context supplies the interned-state tables of the search engine.
	// nil means a fresh context per call; passing one amortizes state
	// interning, transition caching and (for structurally identical
	// problems) the failure memo across calls. Contexts are
	// single-goroutine; see SearchContext. Ignored when DisableMemo is
	// set.
	Context *SearchContext
	// DisableMemo runs the reference decision procedure instead of the
	// unified engine: completions are enumerated as an outer loop (2^k
	// for k commit-pending transactions) and each runs an un-memoized
	// backtracking search without partial-order reduction.
	// Differential-testing hook; not for production paths.
	DisableMemo bool
	// DisableSym turns off the symmetry reduction of the unified engine
	// (see SerializeOptions.DisableSym). Differential-testing hook; not
	// for production paths.
	DisableSym bool
}

const defaultMaxNodes = 4_000_000

// Opaque decides Definition 1 for h with register objects initialized to
// 0. It is shorthand for Check(h, Config{}).
func Opaque(h history.History) (Result, error) {
	return Check(h, Config{})
}

// Check decides whether h is opaque (Definition 1 of the paper):
//
//	∃ H' ∈ Complete(H), ∃ sequential S ≡ H' such that
//	S preserves ≺H and every transaction in S is legal in S.
//
// The search is completion-aware: instead of enumerating the 2^k members
// of Complete(H) as an outer loop, the fate of each commit-pending
// transaction is decided lazily when the transaction is placed in the
// serialization (see DecideBranch), so one memo table and one node
// budget serve the whole verdict. A transaction may be appended to the
// partial order when all its ≺H-predecessors have been placed and its
// operation executions are legal on the object states produced by the
// committed transactions placed so far. Failed search states are
// memoized by (placed-set, object-state fingerprint, last placement),
// and placements that merely transpose adjacent commuting transactions
// (disjoint object footprints) are explored only once.
//
// Check returns an error if h is not well-formed or the node budget is
// exhausted.
func Check(h history.History, cfg Config) (Result, error) {
	return check(h, cfg, nil)
}

// check is the engine shared by Check and CheckStrong: extraPreds adds
// ordering constraints on top of the real-time order ≺H.
func check(h history.History, cfg Config, extraPreds [][2]history.TxID) (Result, error) {
	if err := h.WellFormed(); err != nil {
		return Result{}, err
	}

	txs := h.Transactions()
	if len(txs) == 0 {
		return Result{Opaque: true, Witness: &Witness{}}, nil
	}
	maxNodes := cfg.MaxNodes
	if maxNodes == 0 {
		maxNodes = defaultMaxNodes
	}

	if cfg.DisableMemo {
		// ≺H is the real-time order of the *original* history h:
		// Definition 1 requires S to preserve the real-time order of H,
		// not of the completion.
		preds := h.RealTimeOrderOf(txs)
		preds = append(preds, extraPreds...)
		return checkPerCompletion(h, cfg, txs, preds, maxNodes)
	}

	res := Result{}
	ser, err := FindSerialization(SerializeOptions{
		Source: h,
		Txs:    txs,
		Decide: func(tx history.TxID) Decision {
			switch h.Status(tx) {
			case history.StatusCommitted:
				return DecideCommitted
			case history.StatusCommitPending:
				return DecideBranch
			default:
				// Aborted, or live without a commit-try: every completion
				// aborts it.
				return DecideAborted
			}
		},
		Preds: extraPreds,
		// ≺H of the original h, derived from spans inside the searcher
		// (Definition 1 preserves the real-time order of H, not of the
		// completion).
		RealTime:   h,
		Objects:    cfg.Objects,
		MaxNodes:   maxNodes,
		Nodes:      &res.Nodes,
		Context:    cfg.Context,
		DisableSym: cfg.DisableSym,
	})
	if err != nil {
		return res, err
	}
	if ser == nil {
		return res, nil
	}
	hc := h.CompleteWith(ser.Commits)
	res.Opaque = true
	res.Witness = &Witness{
		Completion: hc,
		Order:      ser.Order,
		Sequential: buildSequential(hc, ser.Order),
	}
	return res, nil
}

// checkPerCompletion is the retained reference decision procedure: the
// completion-outer-loop, un-memoized search that the unified engine is
// differentially tested against. It inherits EachCompletion's limit of
// 62 commit-pending transactions; the unified engine has no such cap.
func checkPerCompletion(h history.History, cfg Config, txs []history.TxID, preds [][2]history.TxID, maxNodes int) (Result, error) {
	res := Result{}
	var found *Witness
	var searchErr error

	h.EachCompletion(func(hc history.History) bool {
		ser, err := FindSerialization(SerializeOptions{
			Source: hc,
			Txs:    txs,
			Decide: func(tx history.TxID) Decision {
				if hc.Committed(tx) {
					return DecideCommitted
				}
				return DecideAborted
			},
			Preds:       preds,
			Objects:     cfg.Objects,
			MaxNodes:    maxNodes,
			Nodes:       &res.Nodes,
			DisableMemo: true,
		})
		if err != nil {
			searchErr = err
			return false
		}
		if ser != nil {
			found = &Witness{
				Completion: hc,
				Order:      ser.Order,
				Sequential: buildSequential(hc, ser.Order),
			}
			return false // stop enumerating completions
		}
		return true
	})

	if found != nil {
		res.Opaque = true
		res.Witness = found
		return res, nil
	}
	if searchErr != nil {
		return res, searchErr
	}
	return res, nil
}

// IsOpaque is a convenience wrapper returning only the verdict; it panics
// on malformed histories or search exhaustion. Intended for tests and
// examples where such conditions are programming errors.
func IsOpaque(h history.History, objs spec.Objects) bool {
	r, err := Check(h, Config{Objects: objs})
	if err != nil {
		panic(err)
	}
	return r.Opaque
}

// FirstNonOpaquePrefix returns the length of the shortest prefix of h
// that is not opaque, or -1 if every prefix is opaque. A correct TM
// generates its history progressively and every prefix the application
// can observe must be opaque; this is the "online" view of opacity used
// to validate recorded STM runs. The scan runs on the Incremental
// checker: every prefix shares one SearchContext (cfg.Context if
// supplied, a private one otherwise), and each check first revalidates
// the previous prefix's witness, so an all-opaque history costs a replay
// per event rather than a search per event. With cfg.DisableMemo the
// scan instead re-checks each response-boundary prefix from scratch on
// the reference engine.
func FirstNonOpaquePrefix(h history.History, cfg Config) (int, error) {
	n, _, err := firstNonOpaquePrefix(h, cfg)
	return n, err
}

// firstNonOpaquePrefix is FirstNonOpaquePrefix plus the total node count
// across the prefix scan, for Diagnose's cost accounting.
func firstNonOpaquePrefix(h history.History, cfg Config) (int, int, error) {
	if cfg.DisableMemo {
		nodes := 0
		for i := 1; i <= len(h); i++ {
			if i < len(h) && h[i-1].Kind.Invocation() {
				continue
			}
			r, err := Check(h[:i], cfg)
			nodes += r.Nodes
			if err != nil {
				return 0, nodes, fmt.Errorf("prefix of length %d: %w", i, err)
			}
			if !r.Opaque {
				return i, nodes, nil
			}
		}
		return -1, nodes, nil
	}
	inc := NewIncremental(cfg)
	if _, err := inc.Append(h...); err != nil {
		return 0, inc.Result().Nodes, err
	}
	r := inc.Result()
	if !r.Opaque {
		return r.PrefixLen, r.Nodes, nil
	}
	return -1, r.Nodes, nil
}
