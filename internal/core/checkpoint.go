// Checkpointed truncation: bounding an Incremental checker's state by
// collapsing a stable prefix into its set of reachable final states.
//
// Opacity is prefix-closed in the monitoring view (every observed prefix
// must be opaque), and that is what makes truncation sound. Call the
// history appended so far P and suppose P is *stable*: every transaction
// of P has completed (committed or aborted). Any transaction T appearing
// later starts after every transaction of P has completed, so the
// real-time order ≺ of the full history P·L forces all of P before all
// of L in every serialization. A serialization of P·L therefore
// decomposes into a legal serialization of P followed by a legal
// serialization of L starting from the object states the P-part
// produced — and conversely. So for judging any extension L, all that
// matters about P is the set
//
//	Reach(P) = { final object states of S : S a legal serialization of P }
//
// one state per serialization class (the partial-order reduction's
// commuting swaps cannot change the final state, so canonical
// representatives suffice). TryTruncate enumerates Reach(P), interns
// each member, and restarts the history behind the checkpoint; from then
// on P·L is opaque iff L serializes from at least one member, which is
// exactly what Incremental.check decides. Checkpoints compose: a later
// truncation enumerates from every current root and unions the results.
package core

import (
	"fmt"
	"sort"

	"otm/internal/history"
	"otm/internal/spec"
)

const (
	// defaultTruncNodes bounds one truncation attempt's enumeration. A
	// blown budget is not an error — the attempt is abandoned and the
	// session keeps checking untruncated — so the default errs small:
	// truncation is only worthwhile when the stable prefix is cheap to
	// collapse.
	defaultTruncNodes = 1 << 17
	// maxCheckpointRoots caps the reachable-state set a checkpoint may
	// carry. Every root multiplies the worst-case cost of later prefix
	// checks, so a prefix whose serializations reach more distinct
	// states than this is not worth collapsing.
	maxCheckpointRoots = 64
)

// LiveLen returns the length of the live suffix: the events appended
// since the last checkpoint (all events, while no checkpoint exists).
func (inc *Incremental) LiveLen() int { return inc.app.Len() }

// LiveTxs returns the number of transactions in the live suffix.
func (inc *Incremental) LiveTxs() int { return len(inc.app.Transactions()) }

// Stable reports whether the live suffix is a stable prefix: every
// transaction in it has completed, so the real-time order forces it
// before everything that can still arrive, and TryTruncate may collapse
// it. An empty suffix is vacuously stable (and not worth truncating).
func (inc *Incremental) Stable() bool { return inc.app.Open() == 0 }

// Roots returns the current checkpoint's reachable final states as
// initial-object maps, or nil while no checkpoint exists. The slice and
// maps are shared; treat them as read-only.
func (inc *Incremental) Roots() []spec.Objects { return inc.roots }

// TryTruncate attempts to collapse the live suffix behind a checkpoint:
// if the suffix is stable (every transaction completed — see Stable) and
// its reachable final states can be enumerated within maxNodes nodes
// (0 = default 131072) without exceeding the root cap, the suffix is
// replaced by its Reach set and the history restarts empty behind the
// checkpoint. Later appends are then judged in O(live-suffix) work
// regardless of how many events the session has absorbed.
//
// The return value reports whether truncation happened. Declining is
// never an error: an unstable suffix, a blown enumeration budget or a
// too-diverse Reach set simply leave the checker untruncated, to try
// again at a later quiescent point. Truncation is unavailable (always
// false) on the DisableMemo reference path, after a violation (the
// offending suffix is retained for diagnosis), and after a latched
// error. An error return means the checker state is inconsistent and is
// latched like any checking error.
func (inc *Incremental) TryTruncate(maxNodes int) (bool, error) {
	if inc.err != nil || !inc.res.Opaque || inc.cfg.DisableMemo || inc.ctx == nil {
		return false, nil
	}
	n := inc.app.Len()
	if n == 0 || !inc.Stable() {
		return false, nil
	}
	if maxNodes <= 0 {
		maxNodes = defaultTruncNodes
	}

	h := inc.app.History()
	txs := inc.app.Transactions()
	spans := inc.app.Spans()
	decide := func(tx history.TxID) Decision {
		if inc.app.Status(tx) == history.StatusCommitted {
			return DecideCommitted
		}
		// Stability means no live or commit-pending transactions remain.
		return DecideAborted
	}

	// Enumerate Reach(suffix) from every current root. Final vectors are
	// materialized to durable Objects immediately after each per-root
	// walk — before the next walk's setup, which may flush or reset the
	// context tables the stateIDs point into — and deduplicated by a
	// context-independent rendering of their states.
	var (
		nodes    int
		newRoots []spec.Objects
		seen     = map[string]struct{}{}
	)
	for ri := range inc.rootCount() {
		var finals []stateID
		dedup := map[stateID]struct{}{}
		err := enumerateFinals(SerializeOptions{
			Source:        h,
			Txs:           txs,
			Decide:        decide,
			RealTimeSpans: spans,
			Objects:       inc.rootAt(ri),
			Context:       inc.ctx,
		}, maxNodes, &nodes, func(vid stateID) {
			if _, ok := dedup[vid]; !ok {
				dedup[vid] = struct{}{}
				finals = append(finals, vid)
			}
		})
		if err != nil {
			// Budget exhausted: abandon the attempt, keep checking
			// untruncated.
			inc.res.TruncNodes += nodes
			return false, nil
		}
		for _, vid := range finals {
			objs := inc.mergedRoot(inc.ctx.materialize(vid))
			key := rootKey(objs)
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			newRoots = append(newRoots, objs)
			if len(newRoots) > maxCheckpointRoots {
				inc.res.TruncNodes += nodes
				return false, nil
			}
		}
	}
	inc.res.TruncNodes += nodes
	if len(newRoots) == 0 {
		// The suffix was verified opaque, so at least one root must admit
		// at least one serialization: an empty Reach set is a checker bug
		// and continuing from it would declare everything a violation.
		inc.err = fmt.Errorf("core: truncation found no reachable state for an opaque prefix of %d events", n)
		return false, inc.err
	}

	if err := inc.app.Truncate(n); err != nil {
		inc.err = fmt.Errorf("core: truncating %d stable events: %w", n, err)
		return false, inc.err
	}
	inc.roots = newRoots
	inc.rootPref = 0
	inc.hint = nil
	clear(inc.known)
	inc.cand = inc.cand[:0]
	inc.res.Checkpoints++
	inc.res.TruncatedEvents += n
	inc.res.Roots = len(newRoots)
	return true, nil
}

// mergedRoot overlays a materialized reachable state on the configured
// initial objects: objects the context has registered take their state
// from the checkpoint, objects the history has not yet touched keep
// their configured initial state (or the default register). The merge is
// what keeps a suffix that introduces a brand-new object judged against
// the same initial state an untruncated check would use.
func (inc *Incremental) mergedRoot(reached spec.Objects) spec.Objects {
	if len(inc.cfg.Objects) == 0 {
		return reached
	}
	out := make(spec.Objects, len(inc.cfg.Objects)+len(reached))
	for id, st := range inc.cfg.Objects {
		out[id] = st
	}
	for id, st := range reached {
		out[id] = st
	}
	return out
}

// rootKey renders an Objects map deterministically — object ids sorted,
// each state by its spec Key, every field length-framed — so equal root
// states deduplicate across enumeration walks regardless of which
// context tables interned them.
func rootKey(objs spec.Objects) string {
	ids := make([]string, 0, len(objs))
	for id := range objs {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	var buf []byte
	for _, id := range ids {
		key := objs[history.ObjID(id)].Key()
		buf = appendFramed(buf, func(b []byte) []byte { return append(b, id...) })
		buf = appendFramed(buf, func(b []byte) []byte { return append(b, key...) })
	}
	return string(buf)
}

// Diagnose explains the checker's latched violation in terms of the live
// suffix: which transactions' removal (alone) restores opacity. It is
// the checkpoint-aware counterpart of the package-level Diagnose — the
// offending prefix of a truncated session no longer exists in full, so
// the re-checks run on the retained suffix from the checkpoint roots
// (removal of a suffix transaction leaves the collapsed prefix, and with
// it the Reach set, untouched). The PrefixLen and Culprit of the
// returned Diagnosis are the checker's own: the global event position of
// the violation and the event that introduced it. Diagnose returns an
// error if no violation has been observed.
func (inc *Incremental) Diagnose() (Diagnosis, error) {
	if inc.res.Opaque {
		return Diagnosis{}, fmt.Errorf("core: Diagnose on a checker with no violation")
	}
	live := inc.app.History()
	d := Diagnosis{PrefixLen: inc.res.PrefixLen, Culprit: live[len(live)-1]}
	for _, tx := range live.Transactions() {
		removed := RemoveTx(live, tx)
		opaque, nodes, err := inc.opaqueFromRoots(removed)
		d.Nodes += nodes
		if err != nil {
			return d, fmt.Errorf("diagnosing without T%d: %w", int(tx), err)
		}
		if opaque {
			d.Implicated = append(d.Implicated, tx)
		}
	}
	return d, nil
}

// opaqueFromRoots decides whether h is opaque as an extension of the
// current checkpoint: serializable from at least one root.
func (inc *Incremental) opaqueFromRoots(h history.History) (bool, int, error) {
	nodes := 0
	for ri := range inc.rootCount() {
		r, err := Check(h, Config{
			Objects:     inc.rootAt(ri),
			MaxNodes:    inc.cfg.MaxNodes,
			Context:     inc.ctx,
			DisableMemo: inc.cfg.DisableMemo,
		})
		nodes += r.Nodes
		if err != nil {
			return false, nodes, err
		}
		if r.Opaque {
			return true, nodes, nil
		}
	}
	return false, nodes, nil
}
