package core

import (
	"otm/internal/history"
	"otm/internal/spec"
)

// refSearcher is the reference serialization engine preserved for
// differential testing (SerializeOptions.DisableMemo): a plain
// backtracking search that replays candidate transactions on
// copy-on-write spec.Objects maps, with no state interning, no
// memoization, no transition caching and no partial-order reduction. It
// shares nothing with the interned engine beyond the bitset type and
// replayTx, which is what makes agreement between the two engines
// meaningful as a correctness oracle.
type refSearcher struct {
	n        int
	txs      []history.TxID
	execs    [][]history.OpExec
	decide   []Decision
	fate     []bool
	preds    []bitset
	maxNodes int
	nodes    *int
	order    []history.TxID
}

// search tries to extend the partial serialization; see searcher.search
// for the shared conventions. Exceeding the node budget surfaces as a
// plain failure here — findSerializationRef tells exhaustion from
// failure by comparing the node counter against the budget afterwards.
func (s *refSearcher) search(placed bitset, count int, states spec.Objects, last int) bool {
	if *s.nodes >= s.maxNodes {
		return false
	}
	*s.nodes++
	if count == s.n {
		return true
	}
	for i := 0; i < s.n; i++ {
		if placed.has(i) || !placed.covers(s.preds[i]) {
			continue
		}
		next, legal := replayTx(states, s.execs[i])
		if !legal {
			continue
		}
		s.order = append(s.order, s.txs[i])
		placed.set(i)
		found := false
		switch s.decide[i] {
		case DecideCommitted:
			s.fate[i] = true
			found = s.search(placed, count+1, next, i)
		case DecideAborted:
			s.fate[i] = false
			found = s.search(placed, count+1, states, i)
		case DecideBranch:
			s.fate[i] = false
			found = s.search(placed, count+1, states, i)
			if !found {
				s.fate[i] = true
				found = s.search(placed, count+1, next, i)
			}
		}
		if found {
			return true
		}
		placed.clear(i)
		s.order = s.order[:len(s.order)-1]
	}
	return false
}

// findSerializationRef is FindSerialization on the reference engine.
func findSerializationRef(o SerializeOptions, maxNodes int, nodes *int) (*Serialization, error) {
	n := len(o.Txs)
	idx := txIndex(o.Txs)
	preds := make([]bitset, n)
	for i := range preds {
		preds[i] = newBitset(n)
	}
	pairs := o.Preds
	if o.RealTime != nil {
		pairs = append(o.RealTime.RealTimeOrderOf(o.Txs), pairs...)
	}
	for _, p := range pairs {
		i, oki := idx[p[0]]
		j, okj := idx[p[1]]
		if oki && okj {
			preds[j].set(i)
		}
	}

	s := &refSearcher{
		n:        n,
		txs:      o.Txs,
		execs:    make([][]history.OpExec, n),
		decide:   make([]Decision, n),
		fate:     make([]bool, n),
		preds:    preds,
		maxNodes: maxNodes,
		nodes:    nodes,
		order:    make([]history.TxID, 0, n),
	}
	for i, tx := range o.Txs {
		s.execs[i] = o.Source.OpExecs(tx)
		s.decide[i] = o.Decide(tx)
	}

	baseObjs := o.Objects
	if baseObjs == nil {
		baseObjs = spec.Objects{}
	}

	if s.search(newBitset(n), 0, baseObjs, -1) {
		ser := &Serialization{Order: append([]history.TxID(nil), s.order...)}
		for i, tx := range o.Txs {
			if s.decide[i] == DecideBranch {
				if ser.Commits == nil {
					ser.Commits = make(map[history.TxID]bool)
				}
				ser.Commits[tx] = s.fate[i]
			}
		}
		return ser, nil
	}
	if *nodes >= maxNodes {
		return nil, ErrSearchLimit
	}
	return nil, nil
}
