package core

// Opacity over arbitrary objects (§3.4's motivation: the criterion takes
// the objects' sequential specifications as an input parameter). These
// tests exercise the checker with queues, sets, stacks and CAS registers
// — operations that are neither read-only nor write-only and whose
// return values constrain serialization.

import (
	"testing"

	"otm/internal/history"
	"otm/internal/spec"
)

func TestQueueSerializationForcedByDeqOrder(t *testing.T) {
	objs := spec.Objects{"q": spec.NewQueue()}
	// T1 enqueues a, T2 enqueues b concurrently; T3 dequeues a then b:
	// the deq order forces T1 before T2 — still opaque.
	h := history.History{
		history.Inv(1, "q", "enq", "a"),
		history.Inv(2, "q", "enq", "b"),
		history.Ret(1, "q", "enq", spec.OK),
		history.Ret(2, "q", "enq", spec.OK),
		history.TryC(1), history.Commit(1),
		history.TryC(2), history.Commit(2),
	}.MustWellFormed()
	h3 := h.Append(
		history.Inv(3, "q", "deq", nil), history.Ret(3, "q", "deq", "a"),
		history.Inv(3, "q", "deq", nil), history.Ret(3, "q", "deq", "b"),
		history.TryC(3), history.Commit(3),
	).MustWellFormed()
	if !IsOpaque(h3, objs) {
		t.Error("deq order a,b matches serialization T1 T2 T3: opaque")
	}
	// Dequeuing b twice is impossible.
	bad := h.Append(
		history.Inv(3, "q", "deq", nil), history.Ret(3, "q", "deq", "b"),
		history.Inv(3, "q", "deq", nil), history.Ret(3, "q", "deq", "b"),
		history.TryC(3), history.Commit(3),
	).MustWellFormed()
	if IsOpaque(bad, objs) {
		t.Error("an element cannot be dequeued twice")
	}
}

func TestQueueEmptyDeqConstrainsOrder(t *testing.T) {
	objs := spec.Objects{"q": spec.NewQueue()}
	// T1 deqs empty; T2 enqueued and committed BEFORE T1 started: T1
	// cannot have seen an empty queue.
	h := history.NewBuilder().
		Op(2, "q", "enq", "x", spec.OK).Commits(2).
		Op(1, "q", "deq", nil, spec.Empty).Commits(1).
		MustHistory()
	if IsOpaque(h, objs) {
		t.Error("deq->empty after a committed enq violates real-time order")
	}
	// Concurrent versions may serialize the deq first.
	h2 := history.History{
		history.Inv(1, "q", "deq", nil),
		history.Inv(2, "q", "enq", "x"), history.Ret(2, "q", "enq", spec.OK),
		history.TryC(2), history.Commit(2),
		history.Ret(1, "q", "deq", spec.Empty),
		history.TryC(1), history.Commit(1),
	}.MustWellFormed()
	if !IsOpaque(h2, objs) {
		t.Error("concurrent deq->empty may serialize before the enq")
	}
}

func TestSetInsertReturnValuesForceOrder(t *testing.T) {
	objs := spec.Objects{"s": spec.NewSet()}
	// Two concurrent insert(5): exactly one may return true.
	mk := func(r1, r2 history.Value) history.History {
		return history.History{
			history.Inv(1, "s", "insert", 5),
			history.Inv(2, "s", "insert", 5),
			history.Ret(1, "s", "insert", r1),
			history.Ret(2, "s", "insert", r2),
			history.TryC(1), history.Commit(1),
			history.TryC(2), history.Commit(2),
		}.MustWellFormed()
	}
	if !IsOpaque(mk(true, false), objs) {
		t.Error("first-wins insert outcome is opaque")
	}
	if !IsOpaque(mk(false, true), objs) {
		t.Error("either order may win")
	}
	if IsOpaque(mk(true, true), objs) {
		t.Error("both inserts returning true is impossible")
	}
	if IsOpaque(mk(false, false), objs) {
		t.Error("both inserts returning false is impossible on an empty set")
	}
}

func TestStackLIFOAcrossTransactions(t *testing.T) {
	objs := spec.Objects{"st": spec.NewStack()}
	h := history.NewBuilder().
		Op(1, "st", "push", 1, spec.OK).Op(1, "st", "push", 2, spec.OK).Commits(1).
		Op(2, "st", "pop", nil, 2).Op(2, "st", "pop", nil, 1).Commits(2).
		MustHistory()
	if !IsOpaque(h, objs) {
		t.Error("LIFO pops are opaque")
	}
	bad := history.NewBuilder().
		Op(1, "st", "push", 1, spec.OK).Op(1, "st", "push", 2, spec.OK).Commits(1).
		Op(2, "st", "pop", nil, 1).Commits(2).
		MustHistory()
	if IsOpaque(bad, objs) {
		t.Error("popping the bottom first violates LIFO")
	}
}

func TestCASRegisterConditionalSemantics(t *testing.T) {
	objs := spec.Objects{"c": spec.NewCASRegister(0)}
	// Two concurrent cas(0→1) and cas(0→2): only one can succeed, and a
	// reader pins which.
	h := history.History{
		history.Inv(1, "c", "cas", spec.CASArg{Old: 0, New: 1}),
		history.Inv(2, "c", "cas", spec.CASArg{Old: 0, New: 2}),
		history.Ret(1, "c", "cas", true),
		history.Ret(2, "c", "cas", false),
		history.TryC(1), history.Commit(1),
		history.TryC(2), history.Commit(2),
	}.MustWellFormed()
	if !IsOpaque(h, objs) {
		t.Error("one winning cas is opaque")
	}
	both := history.History{
		history.Inv(1, "c", "cas", spec.CASArg{Old: 0, New: 1}),
		history.Inv(2, "c", "cas", spec.CASArg{Old: 0, New: 2}),
		history.Ret(1, "c", "cas", true),
		history.Ret(2, "c", "cas", true),
		history.TryC(1), history.Commit(1),
		history.TryC(2), history.Commit(2),
	}.MustWellFormed()
	if IsOpaque(both, objs) {
		t.Error("both cas(0→·) succeeding is impossible")
	}
	reader := h.Append(
		history.Inv(3, "c", "read", nil), history.Ret(3, "c", "read", 1),
		history.TryC(3), history.Commit(3),
	).MustWellFormed()
	if !IsOpaque(reader, objs) {
		t.Error("reader must see the winner's value")
	}
	wrongReader := h.Append(
		history.Inv(3, "c", "read", nil), history.Ret(3, "c", "read", 2),
		history.TryC(3), history.Commit(3),
	).MustWellFormed()
	if IsOpaque(wrongReader, objs) {
		t.Error("reader cannot see the loser's value")
	}
}

func TestMixedObjectTypes(t *testing.T) {
	objs := spec.Objects{
		"q": spec.NewQueue(),
		"c": spec.NewCounter(0),
		"x": spec.NewRegister(0),
	}
	h := history.NewBuilder().
		Op(1, "q", "enq", "job", spec.OK).
		Op(1, "c", "inc", nil, spec.OK).
		Write(1, "x", 7).Commits(1).
		Op(2, "q", "deq", nil, "job").
		Op(2, "c", "get", nil, 1).
		Read(2, "x", 7).Commits(2).
		MustHistory()
	if !IsOpaque(h, objs) {
		t.Error("mixed-object pipeline history is opaque")
	}
	// An aborted transaction's enq must stay invisible.
	h2 := history.NewBuilder().
		Op(1, "q", "enq", "ghost", spec.OK).Aborts(1).
		Op(2, "q", "deq", nil, "ghost").Commits(2).
		MustHistory()
	if IsOpaque(h2, objs) {
		t.Error("dequeuing an aborted transaction's element violates opacity")
	}
}
