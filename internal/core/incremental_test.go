package core_test

import (
	"errors"
	"testing"

	"otm/internal/core"
	"otm/internal/gen"
	"otm/internal/history"
)

// firstBadPrefix computes, by brute force, the length of the shortest
// non-opaque prefix of h using fresh one-shot Check calls on EVERY
// prefix length — including prefixes ending in invocation events, so the
// incremental engine's "invocations never flip the verdict" and
// abort-skip rules are themselves under test. Returns -1 if every prefix
// is opaque.
func firstBadPrefix(t *testing.T, h history.History) int {
	t.Helper()
	for i := 1; i <= len(h); i++ {
		r, err := core.Check(h[:i], core.Config{})
		if err != nil {
			t.Fatalf("fresh Check of prefix %d: %v", i, err)
		}
		if !r.Opaque {
			return i
		}
	}
	return -1
}

// TestIncrementalMatchesCheckEveryPrefix is the satellite differential:
// feed every event of every corpus history through one Incremental and
// require its running verdict to agree with fresh one-shot Check calls
// on every prefix — opaque exactly while all prefixes are opaque, and
// flagged at exactly the shortest non-opaque prefix.
func TestIncrementalMatchesCheckEveryPrefix(t *testing.T) {
	n := 60
	if !testing.Short() {
		n = 250
	}
	for _, cfg := range []gen.Config{
		{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.3},
		{Txs: 6, Objs: 2, MaxOps: 4, PStaleRead: 0.4, PLeaveLive: 0.5},
		{Txs: 4, Objs: 2, MaxOps: 3, PStaleRead: 0.2, PCommit: 0.4},
	} {
		for seed, h := range gen.Corpus(cfg, n, 7) {
			want := firstBadPrefix(t, h)
			inc := core.NewIncremental(core.Config{})
			flagged := -1
			for i, ev := range h {
				res, err := inc.Append(ev)
				if err != nil {
					t.Fatalf("cfg=%+v seed=%d event %d: %v", cfg, seed, i, err)
				}
				if res.Events != i+1 {
					t.Fatalf("cfg=%+v seed=%d: Events=%d after %d appends", cfg, seed, res.Events, i+1)
				}
				if !res.Opaque && flagged == -1 {
					flagged = res.PrefixLen
					if flagged != i+1 {
						t.Fatalf("cfg=%+v seed=%d: violation flagged at event %d with PrefixLen=%d",
							cfg, seed, i+1, flagged)
					}
				}
			}
			if flagged != want {
				t.Fatalf("cfg=%+v seed=%d: incremental flags prefix %d, one-shot scan says %d:\n%s",
					cfg, seed, flagged, want, h.Format())
			}
		}
	}
}

// TestIncrementalMatchesReferencePath: the unified incremental engine
// and the DisableMemo incremental path (fresh reference Check per
// checked prefix) agree on verdict and violation position.
func TestIncrementalMatchesReferencePath(t *testing.T) {
	n := 40
	if !testing.Short() {
		n = 120
	}
	for seed, h := range gen.Corpus(gen.Config{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.35, PLeaveLive: 0.3}, n, 101) {
		uni := core.NewIncremental(core.Config{})
		ref := core.NewIncremental(core.Config{DisableMemo: true})
		for i, ev := range h {
			ru, errU := uni.Append(ev)
			rr, errR := ref.Append(ev)
			if errU != nil || errR != nil {
				t.Fatalf("seed=%d event %d: unified err=%v reference err=%v", seed, i, errU, errR)
			}
			if ru.Opaque != rr.Opaque || ru.PrefixLen != rr.PrefixLen {
				t.Fatalf("seed=%d event %d: unified (opaque=%v at %d) vs reference (opaque=%v at %d)",
					seed, i, ru.Opaque, ru.PrefixLen, rr.Opaque, rr.PrefixLen)
			}
		}
	}
}

// TestIncrementalAgreesWithFirstNonOpaquePrefix: the refactored
// FirstNonOpaquePrefix (now running on Incremental) returns the same
// positions as the retained DisableMemo prefix loop.
func TestIncrementalAgreesWithFirstNonOpaquePrefix(t *testing.T) {
	n := 40
	if !testing.Short() {
		n = 150
	}
	for seed, h := range gen.Corpus(gen.Config{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.3}, n, 55) {
		got, err := core.FirstNonOpaquePrefix(h, core.Config{})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		want, err := core.FirstNonOpaquePrefix(h, core.Config{DisableMemo: true})
		if err != nil {
			t.Fatalf("seed=%d (reference): %v", seed, err)
		}
		if got != want {
			t.Fatalf("seed=%d: FirstNonOpaquePrefix unified=%d reference=%d:\n%s", seed, got, want, h.Format())
		}
	}
}

// TestIncrementalFastPath: on a well-behaved committed workload the
// witness-revalidation fast path, not the search, must carry almost
// every check — that is the property making online monitoring cheap.
func TestIncrementalFastPath(t *testing.T) {
	b := history.NewBuilder()
	for i := 0; i < 30; i++ {
		tx := history.TxID(i + 1)
		b.Write(tx, "x", i).Read(tx, "x", i).Commits(tx)
	}
	inc := core.NewIncremental(core.Config{})
	res, err := inc.Append(b.MustHistory()...)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Fatalf("sequential committed history flagged at %d", res.PrefixLen)
	}
	if res.FastPath <= res.Searches {
		t.Errorf("fast path carried %d checks, search %d — revalidation is not doing its job",
			res.FastPath, res.Searches)
	}
	if res.Nodes > 10*res.Searches+100 {
		t.Errorf("suspiciously many nodes (%d) for %d searches", res.Nodes, res.Searches)
	}
}

// TestIncrementalSkipRule: aborts of non-commit-pending transactions
// (voluntary tryA-A pairs and forceful aborts replacing an operation
// response) skip checking outright, and the verdict still matches a
// one-shot Check.
func TestIncrementalSkipRule(t *testing.T) {
	h := history.History{
		history.Inv(1, "x", "write", 1), history.Ret(1, "x", "write", history.OK),
		history.TryC(1), history.Commit(1),
		history.Inv(2, "x", "read", nil), history.Ret(2, "x", "read", 1),
		history.TryA(2), history.Abort(2), // voluntary abort: skippable
		history.Inv(3, "x", "read", nil), history.Abort(3), // forceful mid-op abort: skippable
		history.Inv(4, "x", "read", nil), history.Ret(4, "x", "read", 1),
		history.TryC(4), history.Abort(4), // abort of a commit-pending tx: NOT skippable
	}.MustWellFormed()
	inc := core.NewIncremental(core.Config{})
	res, err := inc.Append(h...)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Fatalf("flagged at %d", res.PrefixLen)
	}
	if res.Skipped != 2 {
		t.Errorf("Skipped = %d, want 2 (T2's voluntary and T3's forceful abort)", res.Skipped)
	}
	r, err := core.Check(h, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Opaque != res.Opaque {
		t.Errorf("incremental says %v, one-shot Check says %v", res.Opaque, r.Opaque)
	}
}

// TestIncrementalViolationLatch: after the first violation the verdict
// latches (PrefixLen frozen) while the history keeps growing.
func TestIncrementalViolationLatch(t *testing.T) {
	inc := core.NewIncremental(core.Config{})
	// T1 reads a value nobody wrote: non-opaque at event 2.
	res, err := inc.Append(
		history.Inv(1, "x", "read", nil), history.Ret(1, "x", "read", 9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque || res.PrefixLen != 2 {
		t.Fatalf("verdict %+v, want violation at prefix 2", res)
	}
	// Appending the writer that would explain the read in a longer
	// history must NOT un-flag: monitoring semantics are first-violation.
	res, err = inc.Append(
		history.Inv(2, "x", "write", 9), history.Ret(2, "x", "write", history.OK),
		history.TryC(2), history.Commit(2), history.TryC(1), history.Commit(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque || res.PrefixLen != 2 || res.Events != 8 {
		t.Fatalf("latched verdict %+v, want non-opaque at 2 with 8 events", res)
	}
	if got := len(inc.History()); got != 8 {
		t.Errorf("history length %d, want 8", got)
	}
	// The full history IS opaque under one-shot Check — the latch is the
	// difference between Definition 1 and its online monitoring view.
	r, err := core.Check(inc.History(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Opaque {
		t.Error("full history should be opaque one-shot (writer explains the read)")
	}
}

// TestIncrementalErrors: ill-formed events and exhausted budgets latch.
func TestIncrementalErrors(t *testing.T) {
	t.Run("illformed", func(t *testing.T) {
		inc := core.NewIncremental(core.Config{})
		if _, err := inc.Append(history.Inv(1, "x", "read", nil)); err != nil {
			t.Fatal(err)
		}
		bad := history.Inv(1, "y", "read", nil) // invocation while one is pending
		_, err := inc.Append(bad)
		var wfe *history.WellFormedError
		if !errors.As(err, &wfe) {
			t.Fatalf("Append(bad) = %v, want WellFormedError", err)
		}
		// Latched: the identical error again, and the valid prefix survives.
		if _, err2 := inc.Append(history.Ret(1, "x", "read", 0)); err2 != err {
			t.Fatalf("error did not latch: %v", err2)
		}
		if got := inc.Result().Events; got != 1 {
			t.Errorf("Events = %d, want 1 (rejected events not recorded)", got)
		}
		if inc.Err() == nil {
			t.Error("Err() should report the latched error")
		}
	})
	t.Run("budget", func(t *testing.T) {
		// An adversarial history with several commit-pending transactions
		// and a 1-node budget cannot reach a verdict.
		b := history.NewBuilder()
		for i := 1; i <= 4; i++ {
			tx := history.TxID(i)
			b.Write(tx, "x", i).TryC(tx)
		}
		h := b.Read(5, "x", 3).MustHistory()
		inc := core.NewIncremental(core.Config{MaxNodes: 1})
		_, err := inc.Append(h...)
		if !errors.Is(err, core.ErrSearchLimit) {
			t.Fatalf("Append under 1-node budget = %v, want ErrSearchLimit", err)
		}
	})
}

// TestIncrementalSharedContext: a caller-supplied SearchContext is used
// (and exposed) so a follow-up Diagnose can reuse the monitoring tables.
func TestIncrementalSharedContext(t *testing.T) {
	ctx := core.NewSearchContext()
	inc := core.NewIncremental(core.Config{Context: ctx})
	if inc.Context() != ctx {
		t.Fatal("Context() does not expose the supplied context")
	}
	h := history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 1).Read(2, "y", 5). // y=5 unexplained: violation
		MustHistory()
	res, err := inc.Append(h...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque {
		t.Fatal("expected a violation")
	}
	d, err := core.Diagnose(inc.History()[:res.PrefixLen], core.Config{Context: inc.Context()})
	if err != nil {
		t.Fatal(err)
	}
	if d.Opaque || d.PrefixLen != res.PrefixLen {
		t.Fatalf("diagnosis %+v disagrees with incremental verdict at %d", d, res.PrefixLen)
	}
}
