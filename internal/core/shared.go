package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"otm/internal/history"
	"otm/internal/spec"
)

// SharedTables is the concurrency-safe variant of the SearchContext
// tables: one pool-wide set of state atoms, interned state vectors,
// transition/step caches, failure memo and problem signatures that many
// goroutines read and populate at once. Each goroutine still owns a
// SearchContext (NewContext) for its scratch buffers and searcher, but
// every table probe and insert lands in the shared layer, so an N-worker
// batch interns each distinct state once instead of up to N times and
// every worker benefits from every other worker's memo and transition
// entries.
//
// Concurrency design: the hot tables — transitions (transTable) and the
// string-keyed interning indexes (keyTable) — are lock-free open-addressed
// hash tables whose probes are plain atomic loads; inserts CAS-claim a
// slot and publish the value with a second store, and growth doubles the
// slot array under a mutex that readers never touch. keyTable inserts
// mint ids exactly once (the CAS winner runs the mint callback), which
// is what makes shared interning agree with the per-goroutine semantics.
// The remaining key-indexed tables (per-atom steps, the failure memo for
// non-owned problems) are lock-striped Go maps, and the id-indexed
// stores (state atoms, state vectors, interned keys) are append-only
// paged arrays read without locks. All cached values are pure functions
// of their keys, so racing inserts always agree and first-writer-wins is
// sound.
//
// Soundness rules are exactly those of the single-goroutine context:
// memo entries are scoped by problem signature, budget-truncated
// subtrees are never memoized (see searcher.search), and enumeration
// epochs come from one shared atomic counter so no two reachable-state
// enumerations — on any worker — ever share a problem id.
//
// Two departures from the per-goroutine context keep the shared layer
// flush-free while workers are in flight:
//
//   - Registry growth never flushes. State vectors are stored in
//     canonical form with trailing default-register atoms trimmed, so a
//     vector interned before an object joined the registry is the same
//     logical state (new object still at its default initial state) as
//     after — histories that introduce new objects extend the registry
//     without invalidating anything.
//
//   - The size bound is enforced by generation swap, not reset. When the
//     tables outgrow the bound, the next call (on whichever worker)
//     atomically publishes a fresh generation; calls already running
//     keep their pinned generation until they finish, since stateIDs
//     must never cross table rebuilds. Each swap counts as one Flush in
//     Stats.
type SharedTables struct {
	gen    atomic.Pointer[sharedGen]
	swapMu sync.Mutex
	// maxEntries is the generation-swap threshold; a field (not the
	// maxTableEntries constant) so tests can force swaps cheaply.
	maxEntries int64

	// Cumulative insert counters, survive generation swaps. Lookup-hit
	// counters live in the per-goroutine contexts (they are private by
	// nature) and are aggregated separately, e.g. by checkpool.
	states       atomic.Int64
	atomsRetired atomic.Int64
	txSigs       atomic.Int64
	problemCount atomic.Int64
	memoEntries  atomic.Int64
	flushes      atomic.Int64

	enumEpoch atomic.Int32
}

// NewSharedTables returns an empty shared table set. Derive one
// SearchContext per goroutine with NewContext.
func NewSharedTables() *SharedTables {
	s := &SharedTables{maxEntries: maxTableEntries}
	s.gen.Store(newSharedGen())
	return s
}

// NewContext returns a SearchContext backed by the shared tables. The
// context itself (scratch buffers, resident searcher, hit counters) is
// still single-goroutine — give each worker its own — but everything it
// interns, caches and memoizes is shared with every sibling context.
//
// A shared-backed context's Stats report only its private lookup
// counters (memo/transition hits and misses); the pool-wide insert
// counters live in SharedTables.Stats, counted once, not per worker.
func (s *SharedTables) NewContext() *SearchContext {
	c := &SearchContext{
		shared:         s,
		objIdx:         make(map[history.ObjID]int32),
		steps:          make(map[atomStep]atomStepVal),
		memo:           make(map[memoKey]struct{}),
		memoWide:       make(map[string]struct{}),
		owned:          make(map[int32]struct{}),
		memoOwnProblem: -1,
		initEmpty:      -1,
	}
	c.pinShared()
	return c
}

// Stats returns the pool-wide counters: distinct states, atoms,
// signatures, problems and memo entries interned across every context
// sharing the tables (cumulative over the tables' lifetime, including
// retired generations), and the number of generation swaps as Flushes.
func (s *SharedTables) Stats() Stats {
	g := s.gen.Load()
	return Stats{
		States:      int(s.states.Load()),
		Atoms:       int(s.atomsRetired.Load()) + g.atoms.Len(),
		TxSigs:      int(s.txSigs.Load()),
		Problems:    int(s.problemCount.Load()),
		MemoEntries: int(s.memoEntries.Load()),
		Flushes:     int(s.flushes.Load()),
	}
}

// pin returns the generation the next call should run on, swapping in a
// fresh one first if the current tables outgrew the bound. Swapping is
// safe exactly because it happens between calls: in-flight calls keep
// using their pinned generation (stateIDs never cross generations), and
// the old tables are garbage once the last such call retires.
func (s *SharedTables) pin() *sharedGen {
	g := s.gen.Load()
	if g.size() <= s.maxEntries {
		return g
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.gen.Load()
	if cur == g && cur.size() > s.maxEntries {
		s.atomsRetired.Add(int64(cur.atoms.Len()))
		s.flushes.Add(1)
		cur = newSharedGen()
		s.gen.Store(cur)
	}
	return cur
}

// sharedGen is one generation of the shared tables. Everything a
// stateID, atom id, signature id or problem id can refer to lives in one
// generation; a generation is immutable in structure (append-only
// registry, insert-only tables) until it is retired wholesale.
type sharedGen struct {
	atoms  *spec.SharedInterner
	defReg int32

	// Object registry: append-only, under its own lock. Worker contexts
	// mirror a prefix of it locally so hot-path index lookups stay
	// lock-free (see SearchContext.sharedRegister).
	objMu  sync.RWMutex
	objIdx map[history.ObjID]int32
	objs   []history.ObjID

	sigIdx   keyTable
	problems keyTable
	vecIdx   keyTable
	vecs     pagedVecs
	trans    transTable
	steps    stripedMap[atomStep, atomStepVal]
	memo     stripedMap[memoKey, struct{}]
	memoWide keyTable

	sigSeq     atomic.Int32
	problemSeq atomic.Int32
	// entries approximates the generation's total size (all non-atom
	// inserts) for the swap bound.
	entries atomic.Int64
}

func newSharedGen() *sharedGen {
	g := &sharedGen{
		atoms:  spec.NewSharedInterner(),
		objIdx: make(map[history.ObjID]int32),
	}
	g.sigIdx.init()
	g.problems.init()
	g.vecIdx.init()
	g.memoWide.init()
	g.trans.init()
	g.steps.init(func(k atomStep) uint32 { return mix32(uint32(k.atom) ^ fnv32b(k.op)) })
	g.memo.init(func(k memoKey) uint32 {
		h := uint32(k.problem)*0x9e3779b9 + uint32(k.state)
		h = mix32(h ^ uint32(k.last))
		h ^= uint32(k.lo) ^ uint32(k.lo>>32) ^ uint32(k.hi) ^ uint32(k.hi>>32)
		return mix32(h)
	})
	g.defReg = g.atoms.Intern(spec.NewRegister(0))
	return g
}

func (g *sharedGen) size() int64 { return g.entries.Load() + int64(g.atoms.Len()) }

// sharedStripes must be a power of two. 64 stripes keep typical worker
// counts (≤16) almost always on distinct stripes once the tables are
// warm and probes dominate inserts.
const sharedStripes = 64

// mix32 is a cheap avalanche mix; only stripe selection depends on it.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// fnv32b is FNV-1a over a string's bytes.
func fnv32b(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// stripedMap is a lock-striped hash map for the comparable-keyed caches
// (transitions, atom steps, inline memo). The hash only picks a stripe,
// so it may ignore fields that are awkward to hash (e.g. the interface
// values in atomStep) at a small cost in stripe balance.
type stripedMap[K comparable, V any] struct {
	hash    func(K) uint32
	stripes [sharedStripes]mapStripe[K, V]
}

type mapStripe[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
	// Pad stripes apart so read-lock traffic on neighbours does not
	// false-share a cache line.
	_ [24]byte
}

func (s *stripedMap[K, V]) init(hash func(K) uint32) {
	s.hash = hash
	for i := range s.stripes {
		// Seed each stripe with room for a few buckets: the tables fill
		// from every worker at once, and growing 64 tiny maps through
		// their first rehashes costs more than the seed memory.
		s.stripes[i].m = make(map[K]V, 64)
	}
}

func (s *stripedMap[K, V]) get(k K) (V, bool) {
	sp := &s.stripes[s.hash(k)&(sharedStripes-1)]
	sp.mu.RLock()
	v, ok := sp.m[k]
	sp.mu.RUnlock()
	return v, ok
}

// put inserts k→v if absent and reports whether it inserted. An existing
// entry wins: every caller caches a pure function of the key, so racing
// writers always carry equal values.
func (s *stripedMap[K, V]) put(k K, v V) bool {
	sp := &s.stripes[s.hash(k)&(sharedStripes-1)]
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if _, ok := sp.m[k]; ok {
		return false
	}
	sp.m[k] = v
	return true
}

// transTable is the shared transition cache: a lock-free, insert-only,
// open-addressed hash table. The transition cache carries by far the
// most shared traffic (one probe per (search node, candidate)), so it
// alone gets a word-packed layout: a transKey packs into one non-zero
// uint64 and a transVal into another, a probe is a few plain atomic
// loads — no read lock, no RMW — and an insert is one CAS plus a store.
// Every race is sound because a transition value is a pure function of
// its key (racing writers carry equal values, so re-publishing is
// idempotent) and a lost or not-yet-published entry only costs the
// reader a recompute.
type transTable struct {
	growMu sync.Mutex // serializes growth epochs
	slots  atomic.Pointer[transSlots]
	count  atomic.Int64 // published entries; may overcount across grow races
}

// transSlots is one capacity epoch: interleaved (key, value) atomic
// words. Growth allocates a doubled epoch, migrates published entries
// single-threadedly under growMu, and swaps the pointer. Readers racing
// with a grow see the old epoch and at worst report a miss; writers
// that published into the old epoch during migration re-publish into
// the new one (see put), and the rare entry that still slips through is
// merely recomputed on its next miss.
type transSlots struct {
	mask uint64
	a    []atomic.Uint64 // 2*(mask+1) words: even = key, odd = value
}

func newTransSlots(n uint64) *transSlots {
	return &transSlots{mask: n - 1, a: make([]atomic.Uint64, 2*n)}
}

func (t *transTable) init() { t.slots.Store(newTransSlots(1 << 16)) }

// transEKey packs a transKey into a non-zero word: state ids are
// non-negative, so state+1 in the high half never leaves it zero.
func transEKey(k transKey) uint64 {
	return uint64(uint32(k.state)+1)<<32 | uint64(uint32(k.sig))
}

// encodeTransVal packs a transVal into a non-zero word; bit 0 marks the
// value published (distinguishing it from a claimed-but-unpublished
// slot), bit 1 carries legal, the high half carries next (-1 included).
func encodeTransVal(v transVal) uint64 {
	e := uint64(uint32(v.next))<<32 | 1
	if v.legal {
		e |= 2
	}
	return e
}

func decodeTransVal(e uint64) transVal {
	return transVal{next: stateID(int32(uint32(e >> 32))), legal: e&2 != 0}
}

// mix64 is the splitmix64 finalizer; open addressing needs every bit of
// the packed key to influence the slot index.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (t *transTable) get(k transKey) (transVal, bool) {
	s := t.slots.Load()
	ekey := transEKey(k)
	for i := mix64(ekey); ; i++ {
		j := (i & s.mask) * 2
		kk := s.a[j].Load()
		if kk == 0 {
			return transVal{}, false
		}
		if kk == ekey {
			ev := s.a[j+1].Load()
			if ev == 0 {
				// Claimed but not yet published; recompute rather than spin.
				return transVal{}, false
			}
			return decodeTransVal(ev), true
		}
	}
}

// put inserts k→v if absent and reports whether it inserted (the caller
// bumps the generation size budget on true). The load factor stays
// under ½: with bounded worker counts the table can never fill between
// a capacity check and the following single CAS, so probe loops
// terminate.
func (t *transTable) put(k transKey, v transVal) bool {
	ekey, ev := transEKey(k), encodeTransVal(v)
	for {
		s := t.slots.Load()
		if t.count.Load()*2 >= int64(s.mask+1) {
			t.grow(s)
			continue
		}
		for i := mix64(ekey); ; i++ {
			j := (i & s.mask) * 2
			kk := s.a[j].Load()
			if kk == ekey {
				s.a[j+1].Store(ev) // racing writers carry equal values
				return false
			}
			if kk != 0 {
				continue
			}
			if !s.a[j].CompareAndSwap(0, ekey) {
				if s.a[j].Load() == ekey {
					s.a[j+1].Store(ev)
					return false
				}
				continue // a different key claimed this slot; keep probing
			}
			s.a[j+1].Store(ev)
			t.count.Add(1)
			if t.slots.Load() != s {
				// A grow migrated while we were publishing and may have
				// scanned past our slot; re-publish into the live epoch.
				t.put(k, v)
			}
			return true
		}
	}
}

func (t *transTable) grow(old *transSlots) {
	t.growMu.Lock()
	defer t.growMu.Unlock()
	cur := t.slots.Load()
	if cur != old {
		return // another writer already grew this epoch
	}
	ns := newTransSlots(2 * (cur.mask + 1))
	n := int64(0)
	for j := uint64(0); j <= cur.mask; j++ {
		kk := cur.a[2*j].Load()
		ev := cur.a[2*j+1].Load()
		if kk == 0 || ev == 0 {
			continue // empty, or claimed-unpublished: the claimant re-publishes
		}
		for i := mix64(kk); ; i++ {
			nj := (i & ns.mask) * 2
			if ns.a[nj].Load() == 0 {
				ns.a[nj].Store(kk)
				ns.a[nj+1].Store(ev)
				n++
				break
			}
		}
	}
	t.count.Store(n)
	t.slots.Store(ns)
}

// keyTable is the lock-free string→id table behind the signature,
// state-vector, problem and wide-memo indexes, probed with []byte keys.
// Like transTable it is insert-only and open-addressed, but keys are
// arbitrary byte strings, so a slot holds a 64-bit fingerprint plus a
// reference into an append-only key store and every fingerprint match
// is verified against the stored bytes — a false positive degrades to a
// longer probe, never a wrong id. Unlike the pure-value caches, interns
// mint ids (mk has side effects), so exactly one goroutine may run mk
// per key: the slot-claiming CAS provides that exclusion, and racing
// interns of the same key spin for the claimant's publication instead
// of re-minting.
type keyTable struct {
	growMu sync.Mutex
	slots  atomic.Pointer[transSlots] // even = fingerprint, odd = store index+1
	count  atomic.Int64
	store  pagedKeys
}

func (t *keyTable) init() { t.slots.Store(newTransSlots(1 << 12)) }

// fingerprint is FNV-1a (64-bit), biased away from the empty-slot
// sentinel.
func fingerprint(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// loadEntry waits out a claimed-but-unpublished slot (the window
// between a winning claim and the value store is a few instructions,
// plus at worst one key-store append; Gosched keeps a preempted
// claimant from stalling single-core boxes) and returns the slot's key
// store index.
func (t *keyTable) loadEntry(s *transSlots, j uint64) uint64 {
	for spin := 0; ; spin++ {
		if v := s.a[j+1].Load(); v != 0 {
			return v
		}
		if spin > 16 {
			runtime.Gosched()
		}
	}
}

func (t *keyTable) get(key []byte) (int32, bool) {
	s := t.slots.Load()
	fp := fingerprint(key)
	for i := mix64(fp); ; i++ {
		j := (i & s.mask) * 2
		kk := s.a[j].Load()
		if kk == 0 {
			return 0, false
		}
		if kk == fp {
			e := t.store.get(t.loadEntry(s, j) - 1)
			if e.key == string(key) {
				return e.id, true
			}
			// Fingerprint collision with a different key; keep probing.
		}
	}
}

// intern returns the id of key, calling mk to allocate one if the key
// is new, and reports whether it allocated. The claiming CAS ties id
// allocation to key publication exactly as the old per-stripe write
// lock did: racing interns of one key can never allocate twice.
func (t *keyTable) intern(key []byte, mk func() int32) (int32, bool) {
	fp := fingerprint(key)
	for {
		s := t.slots.Load()
		if t.count.Load()*2 >= int64(s.mask+1) {
			t.grow(s)
			continue
		}
		for i := mix64(fp); ; i++ {
			j := (i & s.mask) * 2
			kk := s.a[j].Load()
			if kk == fp {
				idx := t.loadEntry(s, j)
				e := t.store.get(idx - 1)
				if e.key == string(key) {
					return e.id, false
				}
				continue
			}
			if kk != 0 {
				continue
			}
			if !s.a[j].CompareAndSwap(0, fp) {
				i-- // re-examine the slot someone just claimed
				continue
			}
			id := mk()
			idx := t.store.append(string(key), id)
			s.a[j+1].Store(idx + 1)
			t.count.Add(1)
			if t.slots.Load() != s {
				// A grow migrated while we were publishing and may have
				// scanned past our slot; re-publish into the live epoch.
				t.republish(fp, idx+1)
			}
			return id, true
		}
	}
}

// republish re-inserts an already-minted (fingerprint, store index)
// pair after a grow raced with its publication. mk must not re-run;
// the key bytes need no re-verification because the store index
// identifies the entry exactly.
func (t *keyTable) republish(fp, idxWord uint64) {
	for {
		s := t.slots.Load()
		for i := mix64(fp); ; i++ {
			j := (i & s.mask) * 2
			kk := s.a[j].Load()
			if kk == fp {
				if t.loadEntry(s, j) == idxWord {
					return // the grow migrated it after all
				}
				continue // same fingerprint, different key
			}
			if kk != 0 {
				continue
			}
			if !s.a[j].CompareAndSwap(0, fp) {
				i--
				continue
			}
			s.a[j+1].Store(idxWord)
			t.count.Add(1)
			if t.slots.Load() != s {
				break // grew again; start over
			}
			return
		}
	}
}

func (t *keyTable) grow(old *transSlots) {
	t.growMu.Lock()
	defer t.growMu.Unlock()
	cur := t.slots.Load()
	if cur != old {
		return
	}
	ns := newTransSlots(2 * (cur.mask + 1))
	n := int64(0)
	for j := uint64(0); j <= cur.mask; j++ {
		kk := cur.a[2*j].Load()
		ev := cur.a[2*j+1].Load()
		if kk == 0 || ev == 0 {
			continue // empty, or claimed-unpublished: the claimant re-publishes
		}
		for i := mix64(kk); ; i++ {
			nj := (i & ns.mask) * 2
			if ns.a[nj].Load() == 0 {
				ns.a[nj].Store(kk)
				ns.a[nj+1].Store(ev)
				n++
				break
			}
		}
	}
	t.count.Store(n)
	t.slots.Store(ns)
}

// pagedKeys is the append-only (key, id) store backing keyTable's
// verification reads: appends are serialized, reads are lock-free
// paged loads.
type keyEntry struct {
	key string
	id  int32
}

type keyPage [vecPageSize]keyEntry

type pagedKeys struct {
	mu    sync.Mutex
	pages atomic.Pointer[[]*keyPage]
	n     atomic.Int64
}

func (p *pagedKeys) append(key string, id int32) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.n.Load()
	var pages []*keyPage
	if t := p.pages.Load(); t != nil {
		pages = *t
	}
	if int(n>>vecPageShift) == len(pages) {
		grown := make([]*keyPage, len(pages)+1)
		copy(grown, pages)
		grown[len(pages)] = new(keyPage)
		pages = grown
		p.pages.Store(&pages)
	}
	pages[n>>vecPageShift][n&(vecPageSize-1)] = keyEntry{key: key, id: id}
	p.n.Store(n + 1)
	return uint64(n)
}

func (p *pagedKeys) get(idx uint64) keyEntry {
	pages := *p.pages.Load()
	return pages[idx>>vecPageShift][idx&(vecPageSize-1)]
}

// pagedVecs is the append-only store of interned state vectors, the
// shared analogue of SearchContext.vecs: appends are serialized, reads
// are lock-free pages like spec's shared interner. Stored vectors are
// canonical (trailing default atoms trimmed) and immutable.
const (
	vecPageShift = 10
	vecPageSize  = 1 << vecPageShift
)

type vecPage [vecPageSize][]int32

type pagedVecs struct {
	mu    sync.Mutex
	pages atomic.Pointer[[]*vecPage]
	n     int64
}

// append copies vec into the store and returns its dense id.
func (p *pagedVecs) append(vec []int32) stateID {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.n
	var pages []*vecPage
	if t := p.pages.Load(); t != nil {
		pages = *t
	}
	if int(n>>vecPageShift) == len(pages) {
		grown := make([]*vecPage, len(pages)+1)
		copy(grown, pages)
		grown[len(pages)] = new(vecPage)
		p.pages.Store(&grown)
		pages = grown
	}
	pages[n>>vecPageShift][n&(vecPageSize-1)] = append([]int32(nil), vec...)
	p.n = n + 1
	return stateID(n)
}

func (p *pagedVecs) get(id stateID) []int32 {
	return (*p.pages.Load())[id>>vecPageShift][id&(vecPageSize-1)]
}

// --- SearchContext shared-mode plumbing ---

// pinShared fixes the shared generation the context's next call runs on,
// swapping in a fresh generation first when the tables outgrew their
// bound. Crossing into a new generation invalidates everything local
// that referred to the old one: the registry mirror, the cached
// default-register atom and the empty-initial-state id. Callers must
// not pin from a re-entrant call (searcher.setup skips pinning when it
// runs on a non-resident searcher), or the generation would move out
// from under the outer call's stateIDs.
func (c *SearchContext) pinShared() {
	g := c.shared.pin()
	if g == c.sgen {
		return
	}
	c.sgen = g
	c.defReg = g.defReg
	clear(c.objIdx)
	c.objs = c.objs[:0]
	c.initEmpty = -1
	// The L1 caches and the owned-problem memo hold ids minted by the
	// old generation; drop them.
	clear(c.steps)
	clear(c.memo)
	clear(c.memoWide)
	clear(c.owned)
	c.memoOwnProblem = -1
}

// sharedRegister ensures ids are in the shared registry and syncs the
// context's local mirror (objIdx/objs) up to at least every id it needs.
// The mirror is always an exact prefix of the shared registry, so local
// index lookups agree with every other context's and footprint bitsets
// sized by the mirror cover all of this call's objects.
func (c *SearchContext) sharedRegister(ids []history.ObjID) {
	missing := false
	for _, id := range ids {
		if _, ok := c.objIdx[id]; !ok {
			missing = true
			break
		}
	}
	if !missing {
		return
	}
	g := c.sgen
	g.objMu.Lock()
	for _, id := range ids {
		if _, ok := g.objIdx[id]; !ok {
			g.objIdx[id] = int32(len(g.objs))
			g.objs = append(g.objs, id)
		}
	}
	for j := len(c.objs); j < len(g.objs); j++ {
		id := g.objs[j]
		c.objIdx[id] = int32(j)
		c.objs = append(c.objs, id)
	}
	g.objMu.Unlock()
	// Note: registry growth deliberately does NOT invalidate initEmpty
	// or flush anything — canonical trimming (sharedInternVec) makes
	// interned vectors registry-size independent.
}

// sharedInternVec interns the vector in vecBuf into the shared tables in
// canonical form: trailing default-register atoms are trimmed, so the
// same logical state has one id regardless of how large the registry was
// when it was first reached. (An object absent from a stored vector is
// by construction still at its default initial state; step and
// materialize pad reads back out with defReg.)
func (c *SearchContext) sharedInternVec() stateID {
	vec := c.vecBuf
	for len(vec) > 0 && vec[len(vec)-1] == c.defReg {
		vec = vec[:len(vec)-1]
	}
	buf := c.keyBuf[:0]
	for _, a := range vec {
		buf = append(buf, byte(a), byte(a>>8), byte(a>>16), byte(a>>24))
	}
	c.keyBuf = buf
	g := c.sgen
	id, fresh := g.vecIdx.intern(buf, func() int32 { return int32(g.vecs.append(vec)) })
	if fresh {
		c.shared.states.Add(1)
		g.entries.Add(1)
	}
	return id
}
