package core

import (
	"testing"

	"otm/internal/history"
	"otm/internal/spec"
)

// figure1 is the paper's H1 (Figure 1): globally atomic and recoverable
// but NOT opaque — aborted T2 observes an inconsistent state.
func figure1() history.History {
	return history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 1).
		Write(3, "x", 2).Write(3, "y", 2).Commits(3).
		Read(2, "y", 2).Aborts(2).
		MustHistory()
}

// figure2 is the paper's H5 (Figure 2, §5.3): an opaque history with
// witness serialization T2 T1 T3.
func figure2() history.History {
	h := history.History{
		history.Inv(2, "x", "write", 1), history.Ret(2, "x", "write", spec.OK),
		history.Inv(2, "y", "write", 2), history.Ret(2, "y", "write", spec.OK),
		history.TryC(2),
		history.Inv(1, "x", "read", nil),
		history.Commit(2),
		history.Inv(3, "y", "write", 3),
		history.Ret(1, "x", "read", 1), history.Inv(1, "x", "write", 5),
		history.Ret(3, "y", "write", spec.OK),
		history.Ret(1, "x", "write", spec.OK), history.Inv(1, "y", "read", nil),
		history.Inv(3, "x", "read", nil),
		history.Ret(1, "y", "read", 2), history.TryC(1),
		history.Ret(3, "x", "read", 1), history.TryC(3),
		history.Abort(1),
		history.Commit(3),
	}
	return h.MustWellFormed()
}

// h4 is the paper's H4 (§5.2): commit-pending T2's write is visible to T3
// but not to T1 — opaque thanks to the dual semantics of commit-pending
// transactions.
func h4() history.History {
	return history.NewBuilder().
		Read(1, "x", 0).
		Write(2, "x", 5).Write(2, "y", 5).TryC(2).
		Read(3, "y", 5).
		Read(1, "y", 0).
		MustHistory()
}

func TestFigure1_H1_NotOpaque(t *testing.T) {
	r, err := Opaque(figure1())
	if err != nil {
		t.Fatal(err)
	}
	if r.Opaque {
		t.Fatalf("H1 must not be opaque (witness claimed: %v)", r.Witness)
	}
}

func TestH2_NotOpaque(t *testing.T) {
	// H2 (sequential, equivalent to H1) is not opaque either: its
	// real-time order forces T2 last, where T2's read of x=1 is illegal.
	h := history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Write(3, "x", 2).Write(3, "y", 2).Commits(3).
		Read(2, "x", 1).Read(2, "y", 2).Aborts(2).
		MustHistory()
	if IsOpaque(h, nil) {
		t.Error("H2 must not be opaque")
	}
}

func TestFigure2_H5_Opaque(t *testing.T) {
	r, err := Opaque(figure2())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Opaque {
		t.Fatal("H5 (Figure 2) must be opaque")
	}
	w := r.Witness
	// The paper's witness is S = H5|T2 · H5|T1 · H5|T3; our search must
	// find it (it is the unique legal order: T1 must follow T2 because it
	// reads T2's x=1, and T3 must follow T1 is not required — but T3
	// cannot precede T1 since T1 reads y=2 written by T2, not T3's y=3).
	want := []history.TxID{2, 1, 3}
	if len(w.Order) != 3 || w.Order[0] != want[0] || w.Order[1] != want[1] || w.Order[2] != want[2] {
		t.Errorf("witness order = %v, want T2 T1 T3", w)
	}
	if !w.Sequential.Sequential() {
		t.Error("witness S must be sequential")
	}
	if !history.Equivalent(w.Sequential, w.Completion) {
		t.Error("witness S must be equivalent to the completion")
	}
	if !history.PreservesRealTimeOrder(figure2(), w.Sequential) {
		t.Error("witness S must preserve the real-time order of H5")
	}
	if _, ok := AllLegal(w.Sequential, spec.RegistersFor(figure2(), 0)); !ok {
		t.Error("every transaction must be legal in the witness S")
	}
}

func TestH3_Opaque(t *testing.T) {
	// H3: T1 commit-pending, T2 reads its write. Opaque by committing T1.
	h := history.NewBuilder().
		Write(1, "x", 1).TryC(1).
		Read(2, "x", 1).
		MustHistory()
	r, err := Opaque(h)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Opaque {
		t.Fatal("H3 must be opaque")
	}
	if !r.Witness.Completion.Committed(1) {
		t.Error("the witness completion must commit the commit-pending T1")
	}
}

func TestH4_Opaque(t *testing.T) {
	// §5.2: H4 is opaque — commit-pending T2 appears committed to T3 and
	// not yet to T1; the witness serializes T1 before T2 before T3.
	r, err := Opaque(h4())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Opaque {
		t.Fatal("H4 must be opaque")
	}
	w := r.Witness
	pos := map[history.TxID]int{}
	for i, tx := range w.Order {
		pos[tx] = i
	}
	if !(pos[1] < pos[2] && pos[2] < pos[3]) {
		t.Errorf("witness order %v should place T1 before T2 before T3", w)
	}
}

func TestH4_T1ReadingNewYNotOpaque(t *testing.T) {
	// The paper's discussion: if T1 read 5 from y (instead of 0), T1
	// would observe the inconsistent state x=0, y=5 — not opaque.
	h := history.NewBuilder().
		Read(1, "x", 0).
		Write(2, "x", 5).Write(2, "y", 5).TryC(2).
		Read(3, "y", 5).
		Read(1, "y", 5).
		MustHistory()
	if IsOpaque(h, nil) {
		t.Error("T1 observing x=0, y=5 must violate opacity")
	}
}

func TestEmptyAndTrivialHistories(t *testing.T) {
	r, err := Opaque(nil)
	if err != nil || !r.Opaque {
		t.Errorf("empty history must be opaque: %v %v", r, err)
	}
	h := history.NewBuilder().Read(1, "x", 0).Commits(1).MustHistory()
	if !IsOpaque(h, nil) {
		t.Error("single legal committed transaction must be opaque")
	}
	hBad := history.NewBuilder().Read(1, "x", 42).Commits(1).MustHistory()
	if IsOpaque(hBad, nil) {
		t.Error("read of 42 from a fresh register must not be opaque")
	}
}

func TestAbortedTransactionMustStillSeeConsistentState(t *testing.T) {
	// The defining feature of opacity vs serializability: even a
	// transaction that aborts must never have observed an inconsistent
	// snapshot.
	h := history.NewBuilder().
		Write(1, "x", 1).Write(1, "y", 1).Commits(1).
		Read(2, "x", 0). // T2 sees pre-T1 x...
		Read(2, "y", 1). // ...and post-T1 y: inconsistent
		Aborts(2).
		MustHistory()
	if IsOpaque(h, nil) {
		t.Error("mixed snapshot in an aborted transaction violates opacity")
	}
}

func TestLiveTransactionConsistency(t *testing.T) {
	// Same, for a still-live transaction (no completion events at all).
	h := history.NewBuilder().
		Write(1, "x", 1).Write(1, "y", 1).Commits(1).
		Read(2, "x", 0).
		Read(2, "y", 1).
		MustHistory()
	if IsOpaque(h, nil) {
		t.Error("a live transaction observing an inconsistent snapshot violates opacity")
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// T1 commits x=1 before T2 starts; T2 must not read the older value 0
	// ("preserving real-time order", §2).
	h := history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 0).Commits(2).
		MustHistory()
	if IsOpaque(h, nil) {
		t.Error("reading an outdated committed state violates real-time order")
	}
}

func TestConcurrentSerializationFlexibility(t *testing.T) {
	// Two concurrent transactions may serialize in either order; reading
	// the old value of a concurrent committer's object is fine.
	h := history.History{
		history.Inv(1, "x", "read", nil),
		history.Inv(2, "x", "write", 1),
		history.Ret(2, "x", "write", spec.OK),
		history.TryC(2),
		history.Commit(2),
		history.Ret(1, "x", "read", 0), // old value: T1 serializes first
		history.TryC(1),
		history.Commit(1),
	}.MustWellFormed()
	if !IsOpaque(h, nil) {
		t.Error("serializing the reader before the concurrent writer must be allowed")
	}
}

func TestCommitPendingVisibilityChoice(t *testing.T) {
	// A reader may see a commit-pending writer's value (the completion
	// commits it)...
	h := history.NewBuilder().
		Write(1, "x", 1).TryC(1).
		Read(2, "x", 1).Commits(2).
		MustHistory()
	if !IsOpaque(h, nil) {
		t.Error("reading a commit-pending write is opaque if the writer is deemed committed")
	}
	// ...or not see it (the completion aborts it).
	h2 := history.NewBuilder().
		Write(1, "x", 1).TryC(1).
		Read(2, "x", 0).Commits(2).
		MustHistory()
	if !IsOpaque(h2, nil) {
		t.Error("ignoring a commit-pending write is opaque if the writer is deemed aborted")
	}
}

func TestTwoReadersDisagreeOnCommitPending(t *testing.T) {
	// But a single commit-pending transaction cannot appear committed to
	// one reader and aborted to another when both readers commit and
	// overlap it completely... unless a serialization exists, as in H4.
	// Here both readers read the same object, so no order works.
	h := history.NewBuilder().
		Write(1, "x", 1).TryC(1).
		Read(2, "x", 1).Commits(2). // T2 sees the write
		Read(3, "x", 0).Commits(3). // T3 does not, yet T2 ≺H T3? no — concurrent
		MustHistory()
	// T2 commits before T3's first event? The builder puts T3's read
	// after T2's commit, so T2 ≺H T3, forcing T2 before T3; T2 sees x=1
	// (T1 committed), then T3 must also see x=1. Not opaque.
	if IsOpaque(h, nil) {
		t.Error("later reader cannot un-see a committed-visible write")
	}
}

func TestCounterConcurrentIncrements(t *testing.T) {
	// §3.4: k transactions concurrently increment a counter without
	// reading it; all commit. Opaque under counter semantics.
	b := history.NewBuilder()
	// Fully overlapping: all invs before any commit.
	h := history.History{}
	for tx := history.TxID(1); tx <= 4; tx++ {
		h = append(h, history.Inv(tx, "c", "inc", nil))
		h = append(h, history.Ret(tx, "c", "inc", spec.OK))
	}
	for tx := history.TxID(1); tx <= 4; tx++ {
		h = append(h, history.TryC(tx), history.Commit(tx))
	}
	_ = b
	h = h.MustWellFormed()
	objs := spec.Objects{"c": spec.NewCounter(0)}
	if !IsOpaque(h, objs) {
		t.Error("concurrent committed increments are opaque under counter semantics")
	}
	// A subsequent reader must see the total.
	h2 := h.Append(
		history.Inv(9, "c", "get", nil), history.Ret(9, "c", "get", 4),
		history.TryC(9), history.Commit(9),
	).MustWellFormed()
	if !IsOpaque(h2, objs) {
		t.Error("reader must see all 4 increments")
	}
	h3 := h.Append(
		history.Inv(9, "c", "get", nil), history.Ret(9, "c", "get", 3),
		history.TryC(9), history.Commit(9),
	).MustWellFormed()
	if IsOpaque(h3, objs) {
		t.Error("reader seeing 3 of 4 committed increments violates opacity")
	}
}

func TestRigorousSchedulingExampleIsOpaque(t *testing.T) {
	// §3.6: k transactions concurrently write x, y, z and all commit.
	// Rigorous scheduling forbids this; opacity allows it as long as the
	// end state is consistent (some order of the writers).
	var h history.History
	for tx := history.TxID(1); tx <= 3; tx++ {
		for _, ob := range []history.ObjID{"x", "y", "z"} {
			h = append(h,
				history.Inv(tx, ob, "write", int(tx)),
				history.Ret(tx, ob, "write", spec.OK))
		}
	}
	for tx := history.TxID(1); tx <= 3; tx++ {
		h = append(h, history.TryC(tx), history.Commit(tx))
	}
	h = h.MustWellFormed()
	if !IsOpaque(h, nil) {
		t.Error("concurrent blind writers must be opaque (§3.6)")
	}
	// And a later reader must see one writer's values consistently.
	ok := h.Append(
		history.Inv(9, "x", "read", nil), history.Ret(9, "x", "read", 2),
		history.Inv(9, "y", "read", nil), history.Ret(9, "y", "read", 2),
		history.Inv(9, "z", "read", nil), history.Ret(9, "z", "read", 2),
		history.TryC(9), history.Commit(9),
	).MustWellFormed()
	if !IsOpaque(ok, nil) {
		t.Error("x=y=z=2 is a consistent final state")
	}
	mixed := h.Append(
		history.Inv(9, "x", "read", nil), history.Ret(9, "x", "read", 1),
		history.Inv(9, "y", "read", nil), history.Ret(9, "y", "read", 2),
		history.TryC(9), history.Commit(9),
	).MustWellFormed()
	if IsOpaque(mixed, nil) {
		t.Error("x=1, y=2 mixes two writers: not opaque")
	}
}

func TestCheckRejectsMalformed(t *testing.T) {
	if _, err := Opaque(history.History{history.Commit(1)}); err == nil {
		t.Error("Check must reject malformed histories")
	}
}

func TestCheckNodeLimit(t *testing.T) {
	// A non-opaque history forces exhaustive search; a 2-node budget must
	// trip before the verdict is reached.
	_, err := Check(figure1(), Config{MaxNodes: 2})
	if err != ErrSearchLimit {
		t.Errorf("expected ErrSearchLimit, got %v", err)
	}
}

func TestIsOpaquePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IsOpaque must panic on malformed history")
		}
	}()
	IsOpaque(history.History{history.Commit(1)}, nil)
}

func TestFirstNonOpaquePrefix(t *testing.T) {
	h := figure1()
	n, err := FirstNonOpaquePrefix(h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The violation appears exactly when T2's read of y returns 2: event
	// index of that ret + 1.
	want := -1
	for i, e := range h {
		if e.Kind == history.KindRet && e.Tx == 2 && e.Obj == "y" {
			want = i + 1
			break
		}
	}
	if n != want {
		t.Errorf("FirstNonOpaquePrefix = %d, want %d (T2's read of y)", n, want)
	}

	if n, err := FirstNonOpaquePrefix(figure2(), Config{}); err != nil || n != -1 {
		t.Errorf("every prefix of opaque H5 is opaque; got %d, %v", n, err)
	}
}

func TestWitnessString(t *testing.T) {
	r, err := Opaque(figure2())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Witness.String(); got != "T2 T1 T3" {
		t.Errorf("witness string = %q", got)
	}
}

func TestManyTransactions(t *testing.T) {
	// The multi-word bitset removed the old 63-transaction cap: a history
	// of 200 sequential committed writers is checked exactly.
	var h history.History
	for tx := history.TxID(1); tx <= 200; tx++ {
		h = append(h,
			history.Inv(tx, "x", "write", int(tx)),
			history.Ret(tx, "x", "write", history.OK),
			history.TryC(tx), history.Commit(tx))
	}
	res, err := Opaque(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Error("sequential committed writers must be opaque")
	}
	if got := len(res.Witness.Order); got != 200 {
		t.Errorf("witness serializes %d transactions, want 200", got)
	}
}
