package core

import (
	"testing"

	"otm/internal/history"
)

// TestOpacityNotPrefixClosed materializes the §5.2 remark that "the set
// of all opaque histories is not prefix-closed": a live transaction's
// read of a value that nobody has written YET is inexplicable in the
// prefix, but becomes legal once the writer appears later in the history
// and serializes before the reader (possible because the reader is still
// live, so no real-time edge forces it first).
//
// This is exactly why the definition need not enforce prefix-closeness:
// a real TM generates events progressively, and it would never emit the
// prefix's unexplained read in the first place — FirstNonOpaquePrefix
// exists to audit that.
func TestOpacityNotPrefixClosed(t *testing.T) {
	full := history.History{
		history.Inv(1, "x", "read", nil), history.Ret(1, "x", "read", 1),
		history.Inv(2, "x", "write", 1), history.Ret(2, "x", "write", history.OK),
		history.TryC(2), history.Commit(2),
		history.TryC(1), history.Commit(1),
	}.MustWellFormed()

	// The full history is opaque: serialize T2 before T1 (no real-time
	// constraint orders them — T1 is live throughout T2's execution).
	res, err := Opaque(full)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Fatal("the full history must be opaque (T2 serializes first)")
	}
	if res.Witness.Order[0] != 2 {
		t.Errorf("witness %v should place the writer first", res.Witness.Order)
	}

	// Its two-event prefix — just T1's read of the unwritten value — is
	// not opaque.
	prefix := full[:2]
	pres, err := Opaque(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Opaque {
		t.Fatal("the prefix must NOT be opaque: nobody wrote 1")
	}

	// FirstNonOpaquePrefix pinpoints it.
	n, err := FirstNonOpaquePrefix(full, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("FirstNonOpaquePrefix = %d, want 2", n)
	}
}

// TestPrefixMonotoneForWellBehavedHistories: for histories a TM can
// actually emit (reads always explainable when issued), the online
// checker accepts every prefix — sanity for the recorder-audit workflow.
func TestPrefixMonotoneForWellBehavedHistories(t *testing.T) {
	h := history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 1).Write(2, "y", 2).Commits(2).
		Read(3, "y", 2).Read(3, "x", 1).Commits(3).
		MustHistory()
	n, err := FirstNonOpaquePrefix(h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n != -1 {
		t.Errorf("prefix %d flagged in a well-behaved history", n)
	}
}
