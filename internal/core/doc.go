// Package core implements opacity, the TM correctness criterion of
// Guerraoui & Kapałka, "On the Correctness of Transactional Memory"
// (PPoPP 2008) — the paper's primary contribution.
//
// Definition 1 of the paper: a history H is opaque if there exists a
// sequential history S equivalent to some history in Complete(H), such
// that (1) S preserves the real-time order of H, and (2) every
// transaction Ti ∈ S is legal in S.
//
// The package provides:
//
//   - Legality of transactions in complete sequential histories (§4,
//     "Legal histories and transactions"), parameterized by the
//     sequential specifications of the shared objects (package
//     internal/spec) — opacity is defined for arbitrary objects, not just
//     read/write registers.
//
//   - Opaque, a completion-aware decision procedure implementing
//     Definition 1. The search covers Complete(H) without enumerating its
//     2^k members as an outer loop: the commit/abort fate of each
//     commit-pending transaction is decided lazily, as a branch taken
//     when the transaction is placed in the serialization (commit makes
//     its effects visible to later placements; abort leaves no trace).
//     One memo table — failure verdicts keyed by (placed-transaction
//     set, object-state fingerprint, last placement) — and one node
//     budget therefore serve the entire verdict, and search prefixes
//     shared between completions are explored once. A partial-order
//     reduction prunes placements further: when adjacent placements
//     commute (the transactions have disjoint completed-operation
//     footprints, so neither's legality nor resulting states can depend
//     on the other), only the canonical order is explored; each
//     equivalence class of serializations keeps its lexicographically
//     least member, so no witness is lost. On success Opaque returns a
//     Witness — the completion assembled from the chosen fates, the
//     serialization order, and the sequential history S they induce; the
//     Nodes count of every Result measures the search, making the
//     reduction observable (see `opacheck -parallel`'s nodes= output and
//     BenchmarkCheckOpacityBatch's nodes/corpus metric). Deciding
//     opacity is NP-hard in general (it subsumes view-serializability),
//     so the procedure is exponential in the worst case; the pruning
//     makes it fast on the history sizes produced by tests, fuzzing and
//     recorded STM runs. The pre-unification engine — completions as an
//     outer loop, an un-memoized backtracking search per completion —
//     survives behind Config.DisableMemo as the reference the unified
//     engine is differentially tested and fuzzed against
//     (FuzzCheckOpacityDiff, search_diff_test.go).
//
//   - FirstNonOpaquePrefix, an "online" view: TM histories are generated
//     progressively and every prefix observed by the application must
//     itself be opaque (the set of opaque histories is not prefix-closed,
//     as §5.2 notes, but a correct TM never shows a non-opaque prefix).
//
// The graph characterization of opacity (Theorem 2) lives in
// internal/opg; the weaker criteria it is compared against in §3 live in
// internal/criteria.
package core
