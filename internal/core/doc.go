// Package core implements opacity, the TM correctness criterion of
// Guerraoui & Kapałka, "On the Correctness of Transactional Memory"
// (PPoPP 2008) — the paper's primary contribution.
//
// Definition 1 of the paper: a history H is opaque if there exists a
// sequential history S equivalent to some history in Complete(H), such
// that (1) S preserves the real-time order of H, and (2) every
// transaction Ti ∈ S is legal in S.
//
// The package provides:
//
//   - Legality of transactions in complete sequential histories (§4,
//     "Legal histories and transactions"), parameterized by the
//     sequential specifications of the shared objects (package
//     internal/spec) — opacity is defined for arbitrary objects, not just
//     read/write registers.
//
//   - Opaque, a decision procedure implementing Definition 1 directly: it
//     searches over the completions Complete(H) (each commit-pending
//     transaction may be committed or aborted) and over all serializations
//     consistent with the real-time order ≺H, with incremental legality
//     pruning and memoization on (placed-transaction set, object states).
//     On success it returns a Witness — the completion and serialization
//     order demonstrating opacity; on failure, a proof-of-search
//     exhaustion. Deciding opacity is NP-hard in general (it subsumes
//     view-serializability), so the procedure is exponential in the worst
//     case; the pruning makes it fast on the history sizes produced by
//     tests, fuzzing and recorded STM runs.
//
//   - FirstNonOpaquePrefix, an "online" view: TM histories are generated
//     progressively and every prefix observed by the application must
//     itself be opaque (the set of opaque histories is not prefix-closed,
//     as §5.2 notes, but a correct TM never shows a non-opaque prefix).
//
// The graph characterization of opacity (Theorem 2) lives in
// internal/opg; the weaker criteria it is compared against in §3 live in
// internal/criteria.
package core
