// Package core implements opacity, the TM correctness criterion of
// Guerraoui & Kapałka, "On the Correctness of Transactional Memory"
// (PPoPP 2008) — the paper's primary contribution.
//
// Definition 1 of the paper: a history H is opaque if there exists a
// sequential history S equivalent to some history in Complete(H), such
// that (1) S preserves the real-time order of H, and (2) every
// transaction Ti ∈ S is legal in S.
//
// The package provides:
//
//   - Legality of transactions in complete sequential histories (§4,
//     "Legal histories and transactions"), parameterized by the
//     sequential specifications of the shared objects (package
//     internal/spec) — opacity is defined for arbitrary objects, not just
//     read/write registers.
//
//   - Opaque, a completion-aware decision procedure implementing
//     Definition 1. The search covers Complete(H) without enumerating its
//     2^k members as an outer loop: the commit/abort fate of each
//     commit-pending transaction is decided lazily, as a branch taken
//     when the transaction is placed in the serialization (commit makes
//     its effects visible to later placements; abort leaves no trace).
//     One memo table and one node budget therefore serve the entire
//     verdict, and search prefixes shared between completions are
//     explored once. A partial-order reduction prunes placements
//     further: when adjacent placements commute (the transactions have
//     disjoint completed-operation footprints, so neither's legality nor
//     resulting states can depend on the other), only the canonical
//     order is explored; each equivalence class of serializations keeps
//     its lexicographically least member, so no witness is lost.
//
//     The engine's hot path runs entirely on interned state
//     (SearchContext). Per-object states are interned to small integers
//     by their spec.State.Key fingerprint, and each search node's full
//     object configuration is a dense vector of those atoms, itself
//     interned to a stateID — so comparing or hashing a search state is
//     word arithmetic, never string building. Replaying a transaction is
//     cached twice over: a transition cache maps (stateID, transaction
//     replay signature) to the resulting stateID, so each transaction is
//     replayed at most once per distinct state rather than once per
//     (node, candidate) pair, and an atom-level step cache makes even
//     those replays skip spec.State.Step for operations it has applied
//     to the same object state before. Failure verdicts are memoized
//     under a fixed-size comparable key — (problem signature,
//     placed-transaction bitset, last placement, stateID) — where the
//     problem signature scopes entries to structurally identical search
//     problems, making one context safely reusable across calls:
//     FirstNonOpaquePrefix threads a single SearchContext through its
//     prefix scan, Diagnose shares one across the scan and every
//     per-removed-transaction re-check, and internal/checkpool gives
//     each worker its own for the whole batch. Subtrees truncated by the
//     node budget propagate a distinct status and are never memoized, so
//     a budget-starved verdict can never be replayed as a definitive
//     failure by a later call.
//
//     On success Opaque returns a Witness — the completion assembled
//     from the chosen fates, the serialization order, and the sequential
//     history S they induce; the Nodes count of every Result measures
//     the search, and SearchContext.Stats exposes the interning and
//     cache counters (see `opacheck -parallel`'s summary and
//     BenchmarkCheckOpacityBatch's nodes/corpus and states-interned
//     metrics). Deciding opacity is NP-hard in general (it subsumes
//     view-serializability), so the procedure is exponential in the
//     worst case; the pruning makes it fast on the history sizes
//     produced by tests, fuzzing and recorded STM runs. The
//     pre-unification engine — completions as an outer loop, an
//     un-memoized, un-interned backtracking search per completion on
//     copy-on-write object maps — survives behind Config.DisableMemo as
//     the independent reference the unified engine is differentially
//     tested and fuzzed against (FuzzCheckOpacityDiff,
//     search_diff_test.go, context_test.go).
//
//   - FirstNonOpaquePrefix, an "online" view: TM histories are generated
//     progressively and every prefix observed by the application must
//     itself be opaque (the set of opaque histories is not prefix-closed,
//     as §5.2 notes, but a correct TM never shows a non-opaque prefix).
//
// The graph characterization of opacity (Theorem 2) lives in
// internal/opg; the weaker criteria it is compared against in §3 live in
// internal/criteria.
package core
