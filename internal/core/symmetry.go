package core

import "math/bits"

// Symmetry reduction over interchangeable transactions — the classic
// model-checking reduction, applied to the serialization search.
//
// Two transactions i and j are interchangeable when swapping their
// positions in any serialization (fates swapping along with positions)
// yields another serialization that is valid exactly when the original
// was and produces the identical final state. That holds when:
//
//   - their replay signatures are equal (sigOf): they replay identically
//     from every object state, so legality and successor states are
//     position-functions, not identity-functions — equal signatures also
//     force equal footprints, so the partial-order reduction treats the
//     two alike;
//   - their commit decisions are equal: the searcher branches (or not)
//     the same way at either position;
//   - their constraint positions are equal: equal predecessor bitsets and
//     equal successor bitsets. Every ordering constraint k≺i then holds
//     iff k≺j and i≺k iff j≺k, so the swap never violates a constraint.
//     Equality also excludes any constraint between i and j themselves
//     (i∈preds[j] would require i∈preds[i], which no constraint source
//     produces and which would make the pair's bitsets differ anyway).
//
// The reduction: each equivalence class is placed in increasing index
// order only. A candidate whose previous class member (classPrev) is
// still unplaced is skipped. This composes soundly with the existing
// partial-order reduction and the failure memo:
//
// Completeness. Among the valid extensions of any reachable search node,
// consider the lexicographically least one (comparing index sequences).
// If two unplaced class members appeared out of index order, swapping
// their positions would yield a valid extension (interchangeability) that
// is lexicographically smaller — so the least extension is class-sorted
// and passes the symmetry filter at every step. The partial-order
// reduction admits the lexicographically least member of every
// commuting-swap class by the same exchange argument (see prunable), and
// the least extension is simultaneously least for both orders, so no
// node prunes it under either filter: if a witness extension exists, the
// doubly-reduced search finds one.
//
// Memo soundness. A memo entry written by the reduced engine means "the
// reduced subtree under this node has no witness", which by completeness
// equals "no witness at all" — but only for nodes whose placed set is
// class-downward-closed, the only nodes the reduced engine ever visits
// or probes. The class map is carried in the problem signature
// (problemOf), so an unreduced engine variant (DisableSym) or a future
// variant with a different class definition can never consume these
// entries, even through a SharedTables pool.
//
// Enumeration. enumerate() applies the same filter: position-swapping
// interchangeable transactions preserves each serialization's final
// state (equal signatures, equal decisions), so the class-sorted
// representatives reach exactly the final-state set of the full walk.

// computeClasses fills s.classPrev for the current problem: for each
// transaction, the index of the previous member of its symmetry class,
// or -1 for the canonical (lowest-index) member and for singletons. With
// disable set, every transaction is a singleton. Classes are a pure
// function of (sigs, decide, preds), so every context — including
// sibling workers of one SharedTables pool — computes the same map for
// the same problem. Non-singleton classes are counted into
// Stats.SymClasses.
func (s *searcher) computeClasses(disable bool) {
	n := s.n
	s.classPrev = grow(s.classPrev, n)
	for i := range s.classPrev {
		s.classPrev[i] = -1
	}
	if disable || n < 2 {
		return
	}
	// succ[i] = {j : i ∈ preds[j]}; equal succ bitsets are required for
	// interchangeability alongside equal preds (a one-sided check would
	// admit pairs whose members other transactions order differently).
	for j := 0; j < n; j++ {
		for w, word := range s.preds[j] {
			for word != 0 {
				i := w<<6 + bits.TrailingZeros64(word)
				s.succ[i].set(j)
				word &= word - 1
			}
		}
	}
	for i := 1; i < n; i++ {
		// Scan back for the most recent interchangeable transaction; the
		// resulting chains link each class in increasing index order.
		for j := i - 1; j >= 0; j-- {
			if s.sigs[j] == s.sigs[i] && s.decide[j] == s.decide[i] &&
				s.preds[j].equal(s.preds[i]) && s.succ[j].equal(s.succ[i]) {
				s.classPrev[i] = int32(j)
				if s.classPrev[j] < 0 {
					// j is canonical, so i is the class's second member:
					// count the class once, exactly when it stops being a
					// singleton.
					s.ctx.stats.SymClasses++
				}
				break
			}
		}
	}
}

// symBlocked reports whether the symmetry reduction skips candidate i at
// a node with the given placed set: an earlier member of i's class is
// still unplaced, so placing i here would explore a non-canonical
// interleaving of interchangeable transactions.
func (s *searcher) symBlocked(i int, placed bitset) bool {
	if p := s.classPrev[i]; p >= 0 && !placed.has(int(p)) {
		s.ctx.stats.SymPrunes++
		return true
	}
	return false
}
