package core

import (
	"otm/internal/history"
	"otm/internal/spec"
)

// Decision tells the serialization search how to treat one transaction's
// commit status when the transaction is placed.
type Decision int

const (
	// DecideCommitted: the transaction's effects update the object states
	// seen by transactions placed after it.
	DecideCommitted Decision = iota
	// DecideAborted: the transaction is checked for legality but leaves
	// no trace on the object states.
	DecideAborted
	// DecideBranch marks a commit-pending transaction whose fate the
	// search chooses: placement branches on committing it (its effects
	// become visible) versus aborting it (no trace). This is how the
	// search covers Complete(H) without enumerating the 2^k completions
	// as an outer loop — each completion corresponds to one assignment of
	// fates along a search path, and the memo table and node budget are
	// shared across all of them.
	DecideBranch
)

// SerializeOptions parameterizes the serialization search shared by the
// opacity checker and the weaker criteria of internal/criteria.
type SerializeOptions struct {
	// Source supplies the per-transaction event sequences. For opacity
	// this is the history under test itself: completions only append
	// commit/abort events, so the operation executions of every
	// transaction are identical across all of Complete(H).
	Source history.History
	// Txs are the transactions to serialize. For opacity this is every
	// transaction of the history; for serializability-style criteria,
	// only the committed ones.
	Txs []history.TxID
	// Decide maps each transaction to how its placement treats the object
	// states (committed, aborted, or branch on both).
	Decide func(history.TxID) Decision
	// Preds are ordering constraints: each pair (a, b) requires a to be
	// serialized before b. Pairs mentioning transactions outside Txs are
	// ignored.
	Preds [][2]history.TxID
	// RealTime, when non-nil, additionally constrains the order by the
	// real-time order ≺ of this history restricted to Txs (a completed
	// transaction precedes every transaction whose first event follows
	// its last). The searcher derives the constraint bitsets straight
	// from the transaction spans, so hot callers avoid materializing
	// the quadratic pair list of History.RealTimeOrder.
	RealTime history.History
	// RealTimeSpans, when non-nil, supplies the transaction spans —
	// indexed like Txs — that RealTime would be scanned for, skipping
	// the O(events) event scan entirely. Incremental prefix checking
	// passes the spans its history.Appender maintains per event, which
	// is what makes the per-check setup cost a function of the
	// transaction count rather than the history length. Takes
	// precedence over RealTime.
	RealTimeSpans []history.Span
	// Objects are the initial object states; nil entries default to
	// integer registers initialized to 0.
	Objects spec.Objects
	// MaxNodes bounds the search (0 = default); *Nodes accumulates the
	// node count across calls when non-nil.
	MaxNodes int
	Nodes    *int
	// Context supplies the interned-state tables (state interner,
	// transition cache, failure memo) the search runs on. nil means a
	// fresh context for this call; passing one reuses the tables across
	// calls — see SearchContext for why that is sound. Ignored by the
	// DisableMemo reference engine.
	Context *SearchContext
	// Hint optionally supplies a candidate serialization — an order over
	// exactly Txs plus commit fates for the DecideBranch transactions —
	// to validate before searching. A candidate that places every
	// transaction legally under the ordering constraints is returned as
	// the result without exploring a single search node; an invalid one
	// costs one linear walk over cached transitions and falls back to
	// the full search. Incremental prefix checking threads the previous
	// prefix's witness through here, which is what makes the common
	// "history still opaque" append a replay instead of a search.
	// Ignored by the DisableMemo reference engine.
	Hint *Serialization
	// DisableMemo runs the reference engine instead: the plain
	// backtracking search on copy-on-write spec.Objects maps, with no
	// interning, no memoization and no partial-order reduction. It exists
	// as the independent implementation the interned engine is
	// differentially tested against and should not be set on production
	// paths.
	DisableMemo bool
	// DisableSym turns off the symmetry reduction: every transaction is
	// its own class and interchangeable placements are all explored.
	// Differential-testing hook for isolating the reduction (the memo
	// problem signature carries the class map, so reduced and unreduced
	// searches never share memo entries); not for production paths.
	DisableSym bool

	// enumerate switches the searcher from witness finding to
	// reachable-final-state enumeration (see enumerateFinals). It scopes
	// the memo under a distinct problem kind: enumeration entries mean
	// "subtree already enumerated", not "subtree has no witness", and
	// the two must never answer each other's lookups.
	enumerate bool
}

// Serialization is the successful outcome of FindSerialization.
type Serialization struct {
	// Order is the serialization of the transactions.
	Order []history.TxID
	// Commits records the fate the search chose for every DecideBranch
	// transaction: true = committed, false = aborted. Transactions with a
	// fixed Decision do not appear. The map is in the shape expected by
	// history.CompleteWith.
	Commits map[history.TxID]bool
}

// outcome is the tri-state result of one search subtree. Distinguishing
// outTruncated from outFailed is what keeps a shared memo sound: a
// subtree cut short by the node budget proves nothing about the state it
// hangs from, so truncation propagates to the root without a memo insert,
// and a later call with budget to spare re-explores the state.
type outcome int8

const (
	outFailed outcome = iota
	outFound
	outTruncated
)

// searcher is the interned-state serialization engine. One instance
// serves one FindSerialization call, but the tables it searches over
// live in the SearchContext and persist across calls: object states are
// interned to stateIDs (vector comparison is word equality, not string
// building), each transaction's replay is cached per distinct state, and
// failure verdicts are memoized under a fixed-size comparable key of
// (problem, placed bitset, last placement, stateID). Isomorphic search
// prefixes — different placement orders and different commit/abort fate
// assignments reaching the same placed set and object states — are
// explored once; the last placed transaction is part of the key because
// the partial-order reduction prunes successors relative to it.
type searcher struct {
	ctx    *SearchContext
	active bool

	n       int
	txs     []history.TxID
	txIdx   map[history.TxID]int32 // index into txs; nil for small n
	execs   [][]history.OpExec
	sigs    []int32
	decide  []Decision
	fate    []bool // chosen fate per placed transaction (branch txs)
	preds   []bitset
	foot    []bitset // per-transaction object footprint (bit per object)
	words   []uint64 // shared backing store of preds, foot, succ and placed
	spans   []int    // scratch: first/last event index per transaction
	compl   []bool   // scratch: completed flag per transaction
	placed  bitset
	order   []history.TxID
	init    stateID
	problem int32

	// classPrev implements the symmetry reduction: classPrev[i] is the
	// index of the previous member of i's symmetry class (-1 when i is
	// the canonical, lowest-index member). Two transactions are in one
	// class when they are fully interchangeable: identical replay
	// signature (hence identical footprint and legality behavior from any
	// state), identical commit decision, and identical constraint
	// position (equal predecessor and successor bitsets — which also
	// rules out any ordering constraint between the two). The search only
	// places a member once its classPrev is placed, so each class is
	// placed in increasing index order; see symmetry.go for why pruning
	// the other interleavings never loses a witness or a reachable final
	// state.
	classPrev []int32
	succ      []bitset // scratch: per-transaction successor bitsets

	// The incremental legality watch: legality of candidate i depends
	// only on the current states of the objects in foot[i], so a computed
	// verdict stays valid until one of those objects changes. ver is the
	// per-call version clock, bumped on every state change — placements
	// of state-changing transactions and their backtracks alike — and
	// objVer[o] records the clock at object o's last possible change.
	// legalVal[i]/legalVer[i] cache candidate i's last verdict and the
	// clock it was computed at; the cached verdict is fresh while no
	// watched object's version exceeds it. Only illegal verdicts are
	// consumed from the cache (a legal placement still needs the
	// successor state from the transition cache), which is exactly the
	// hot case: an illegal candidate is re-scanned at every node of the
	// enclosing subtree, and the watch answers those scans with an array
	// probe instead of a transition-cache probe (or a replay, at states
	// the cache has never seen).
	ver      int32
	objVer   []int32
	legalVal []bool
	legalVer []int32

	maxNodes int
	nodes    *int
}

// grow returns s resized to n elements, reusing its backing array when
// capacity allows. Contents are unspecified; callers overwrite.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// setup prepares the searcher for one call, reusing the scratch slices
// of previous calls on the same context.
func (s *searcher) setup(ctx *SearchContext, o SerializeOptions, maxNodes int, nodes *int) {
	n := len(o.Txs)
	s.ctx = ctx
	s.n = n
	s.txs = o.Txs
	s.maxNodes = maxNodes
	s.nodes = nodes

	// Enough transactions to make the linear indexOf scans of setup,
	// addRealTimePreds and validate quadratic: build an index map.
	if n > 32 {
		if s.txIdx == nil {
			s.txIdx = make(map[history.TxID]int32, n)
		} else {
			clear(s.txIdx)
		}
		for i, tx := range o.Txs {
			s.txIdx[tx] = int32(i)
		}
	} else {
		s.txIdx = nil
	}

	// Between calls is the only safe point to bound the tables: nothing
	// for this call has been interned yet. Shared-table contexts pin (and
	// possibly rotate) the pool-wide generation here instead of resetting
	// private tables — unless this is a re-entrant call on a borrowed
	// searcher (s != &ctx.srch), whose outer call still holds stateIDs
	// into the pinned generation.
	if ctx.shared != nil {
		if s == &ctx.srch {
			ctx.pinShared()
			// The private side (L1 caches, owned-problem memo) grows
			// independently of the shared generation; dropping it is
			// always sound and only costs re-derivation.
			if len(ctx.steps)+len(ctx.memo)+len(ctx.memoWide) > maxTableEntries {
				clear(ctx.steps)
				clear(ctx.memo)
				clear(ctx.memoWide)
				clear(ctx.owned)
				ctx.memoOwnProblem = -1
			}
		}
	} else if ctx.tableEntries() > maxTableEntries {
		ctx.reset()
	}

	// Registry order only needs to be stable within the context — state
	// vectors are never compared across contexts — so first-appearance
	// order does fine and skips a sort per call.
	ctx.registerObjects(o.Source.Objects())

	s.execs = o.Source.OpExecsFor(o.Txs)
	s.sigs = grow(s.sigs, n)
	s.decide = grow(s.decide, n)
	s.fate = grow(s.fate, n)
	for i, tx := range o.Txs {
		s.sigs[i] = ctx.sigOf(s.execs[i])
		s.decide[i] = o.Decide(tx)
	}

	// preds, foot, succ and placed share one zeroed word block.
	tw := (n + 63) / 64
	ow := (len(ctx.objs) + 63) / 64
	s.words = grow(s.words, 2*n*tw+n*ow+tw)
	clear(s.words)
	s.preds = grow(s.preds, n)
	s.foot = grow(s.foot, n)
	s.succ = grow(s.succ, n)
	off := 0
	for i := 0; i < n; i++ {
		s.preds[i] = bitset(s.words[off : off+tw])
		off += tw
	}
	for i := 0; i < n; i++ {
		s.foot[i] = bitset(s.words[off : off+ow])
		off += ow
		for _, e := range s.execs[i] {
			if !e.Pending {
				s.foot[i].set(int(ctx.objIdx[e.Obj]))
			}
		}
	}
	for i := 0; i < n; i++ {
		s.succ[i] = bitset(s.words[off : off+tw])
		off += tw
	}
	s.placed = bitset(s.words[off : off+tw])

	for _, p := range o.Preds {
		i := s.indexOfTx(p[0])
		j := s.indexOfTx(p[1])
		if i >= 0 && j >= 0 {
			s.preds[j].set(i)
		}
	}
	if o.RealTimeSpans != nil {
		s.addSpanPreds(o.RealTimeSpans)
	} else if o.RealTime != nil {
		s.addRealTimePreds(o.RealTime)
	}

	if cap(s.order) < n {
		s.order = make([]history.TxID, 0, n)
	} else {
		s.order = s.order[:0]
	}

	s.computeClasses(o.DisableSym)

	// The legality watch starts every call cold: version clock at zero,
	// every object version at zero, every cached verdict invalid.
	s.ver = 0
	s.objVer = grow(s.objVer, len(ctx.objs))
	clear(s.objVer)
	s.legalVal = grow(s.legalVal, n)
	s.legalVer = grow(s.legalVer, n)
	for i := range s.legalVer {
		s.legalVer[i] = -1
	}

	// A nil Objects map reads like an empty one, so no defaulting
	// allocation is needed.
	s.init = ctx.initialState(o.Objects)
	kind, salt := byte(problemSearch), int32(0)
	if o.enumerate {
		kind = problemEnum
		if ctx.shared != nil {
			// Epochs must be pool-unique: another worker's enumeration
			// sharing a salt would suppress this one's finals.
			salt = ctx.shared.enumEpoch.Add(1)
		} else {
			ctx.enumEpoch++
			salt = ctx.enumEpoch
		}
	}
	s.problem = ctx.problemOf(kind, salt, s.init, s.sigs, s.decide, s.preds, s.classPrev)
}

// addSpanPreds sets the predecessor bits induced by the real-time order,
// from caller-maintained spans indexed like s.txs: a completed
// transaction precedes exactly the transactions whose span starts after
// its ends. Identical constraints to addRealTimePreds, without its
// O(events) span-derivation scan.
func (s *searcher) addSpanPreds(spans []history.Span) {
	n := s.n
	for i := 0; i < n; i++ {
		if !spans[i].Completed {
			continue
		}
		last := spans[i].Last
		for j := 0; j < n; j++ {
			if i != j && spans[j].First > last {
				s.preds[j].set(i)
			}
		}
	}
}

// addRealTimePreds sets the predecessor bits induced by the real-time
// order of src over s.txs: one event scan computes each transaction's
// span and whether it completed (last event commit or abort), and a
// completed transaction precedes exactly the transactions whose span
// starts after its ends.
func (s *searcher) addRealTimePreds(src history.History) {
	n := s.n
	s.spans = grow(s.spans, 2*n)
	first, last := s.spans[:n], s.spans[n:]
	for i := range first {
		first[i] = -1
		last[i] = -1
	}
	s.compl = grow(s.compl, n)
	completed := s.compl
	for i := range completed {
		completed[i] = false
	}
	for hi, e := range src {
		j := s.indexOfTx(e.Tx)
		if j < 0 {
			continue
		}
		if first[j] < 0 {
			first[j] = hi
		}
		last[j] = hi
		completed[j] = e.Kind == history.KindCommit || e.Kind == history.KindAbort
	}
	for i := 0; i < n; i++ {
		if !completed[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i != j && first[j] > last[i] {
				s.preds[j].set(i)
			}
		}
	}
}

// indexOfTx returns the index of tx in s.txs, through the index map when
// one was built (large transaction counts), or -1.
func (s *searcher) indexOfTx(tx history.TxID) int {
	if s.txIdx != nil {
		if i, ok := s.txIdx[tx]; ok {
			return int(i)
		}
		return -1
	}
	return indexOf(s.txs, tx)
}

// validate checks one full candidate serialization — hint.Order over
// exactly s.txs plus hint.Commits fates for the DecideBranch
// transactions (absent entries default to abort, which never perturbs
// the object states) — without searching: each transaction in turn must
// have its predecessors already placed and replay legally on the current
// interned state. On success s.order, s.fate and s.placed hold the
// serialization exactly as a successful search would leave them; on
// failure the walk state is rolled back so the full search starts clean.
// Validation runs entirely on the transition cache and explores no
// search nodes.
func (s *searcher) validate(hint *Serialization) bool {
	if len(hint.Order) != s.n {
		return false
	}
	vid := s.init
	ok := true
	for _, tx := range hint.Order {
		i := s.indexOfTx(tx)
		if i < 0 || s.placed.has(i) || !s.placed.covers(s.preds[i]) {
			ok = false
			break
		}
		next, legal := s.ctx.step(vid, s.sigs[i], s.execs[i])
		if !legal {
			ok = false
			break
		}
		fate := false
		switch s.decide[i] {
		case DecideCommitted:
			fate = true
		case DecideBranch:
			fate = hint.Commits[tx]
		}
		if fate {
			vid = next
		}
		s.fate[i] = fate
		s.placed.set(i)
		s.order = append(s.order, tx)
	}
	if ok && len(s.order) == s.n {
		return true
	}
	clear(s.placed)
	s.order = s.order[:0]
	return false
}

// result assembles the Serialization from the searcher's final walk
// state (s.order and, for DecideBranch transactions, s.fate) — shared by
// the search success path and the validated-hint fast path.
func (s *searcher) result(o SerializeOptions) *Serialization {
	ser := &Serialization{Order: append([]history.TxID(nil), s.order...)}
	for i, tx := range o.Txs {
		if s.decide[i] == DecideBranch {
			if ser.Commits == nil {
				ser.Commits = make(map[history.TxID]bool)
			}
			ser.Commits[tx] = s.fate[i]
		}
	}
	return ser
}

// prunable implements the partial-order reduction: placing candidate i
// directly after last is skipped when the swapped order — i first, then
// last — is a valid placement too, reaches the identical search state,
// and is lexicographically smaller (i < last by index). The swap is valid
// exactly when the two transactions commute (disjoint completed-operation
// footprints: neither one's legality or resulting states can depend on
// the other) and i was already placeable before last was placed (last is
// not a predecessor of i; i's other predecessors were placed earlier).
// Every equivalence class of serializations under such adjacent swaps
// retains its lexicographically least member, which passes this test at
// every step, so pruning the rest never loses a witness.
func (s *searcher) prunable(i, last int) bool {
	return last >= 0 && i < last &&
		!s.preds[i].has(last) &&
		!s.foot[i].intersects(s.foot[last])
}

// search tries to extend the partial serialization. placed is mutated in
// place (set before recursing, cleared on backtrack); count is the number
// of placed transactions; vid is the interned object-state vector
// produced by the committed transactions placed so far; last is the index
// of the most recently placed transaction (-1 at the root). On outFound
// the winning bits stay set and s.order / s.fate hold the full
// serialization and fate assignment. A state is memoized as failed only
// when its whole subtree was explored within the node budget; a truncated
// subtree yields outTruncated, which propagates without memoization.
func (s *searcher) search(placed bitset, count int, vid stateID, last int) outcome {
	if *s.nodes >= s.maxNodes {
		return outTruncated
	}
	*s.nodes++
	if count == s.n {
		return outFound
	}
	if s.ctx.memoHas(s.problem, placed, last, vid) {
		return outFailed
	}
	for i := 0; i < s.n; i++ {
		if placed.has(i) || !placed.covers(s.preds[i]) ||
			s.prunable(i, last) || s.symBlocked(i, placed) {
			continue
		}
		next, legal := s.stepCand(i, vid)
		if !legal {
			continue
		}
		s.order = append(s.order, s.txs[i])
		placed.set(i)
		var out outcome
		switch s.decide[i] {
		case DecideCommitted:
			s.fate[i] = true
			out = s.searchCommitted(placed, count, vid, next, i)
		case DecideAborted:
			s.fate[i] = false
			out = s.search(placed, count+1, vid, i)
		case DecideBranch:
			// Abort first: it keeps the object states unchanged, matching
			// the reference engine's enumeration order (completion mask 0
			// aborts every commit-pending transaction).
			s.fate[i] = false
			out = s.search(placed, count+1, vid, i)
			if out == outFailed {
				s.fate[i] = true
				out = s.searchCommitted(placed, count, vid, next, i)
			}
		}
		if out == outFound {
			return outFound
		}
		placed.clear(i)
		s.order = s.order[:len(s.order)-1]
		if out == outTruncated {
			// The budget is global, so every remaining candidate would
			// truncate too; bail without memoizing this state.
			return outTruncated
		}
	}
	s.ctx.memoInsert(s.problem, placed, last, vid)
	return outFailed
}

// searchCommitted recurses below the committed placement of transaction
// i, keeping the legality watch honest: when the placement actually
// changes the object states (next != vid), i's footprint objects are
// stamped before descending and again after returning, since the
// backtrack reverts them (see legality.go).
func (s *searcher) searchCommitted(placed bitset, count int, vid, next stateID, i int) outcome {
	if next == vid {
		return s.search(placed, count+1, vid, i)
	}
	s.touch(i)
	out := s.search(placed, count+1, next, i)
	s.touch(i)
	return out
}

// FindSerialization searches for an order of o.Txs such that every
// ordering constraint holds and every transaction is legal on the object
// states produced by the committed transactions placed before it,
// choosing a commit/abort fate for every DecideBranch transaction along
// the way. It returns the serialization on success and nil if no order
// (under any fate assignment) exists. ErrSearchLimit is returned when the
// node budget is exhausted first.
func FindSerialization(o SerializeOptions) (*Serialization, error) {
	n := len(o.Txs)
	if n == 0 {
		return &Serialization{}, nil
	}
	maxNodes := o.MaxNodes
	if maxNodes == 0 {
		maxNodes = defaultMaxNodes
	}
	var localNodes int
	nodes := o.Nodes
	if nodes == nil {
		nodes = &localNodes
	}

	if o.DisableMemo {
		return findSerializationRef(o, maxNodes, nodes)
	}

	ctx := o.Context
	if ctx == nil {
		ctx = NewSearchContext()
	}
	// Reuse the context's resident searcher unless a call is already
	// active on it (re-entrancy through a Decide callback would be the
	// only path; none exists today, but correctness is cheap).
	s := &ctx.srch
	if s.active {
		s = &searcher{}
	}
	s.active = true
	defer func() { s.active = false }()
	s.setup(ctx, o, maxNodes, nodes)

	if o.Hint != nil && s.validate(o.Hint) {
		return s.result(o), nil
	}

	switch s.search(s.placed, 0, s.init, -1) {
	case outFound:
		return s.result(o), nil
	case outTruncated:
		return nil, ErrSearchLimit
	}
	return nil, nil
}

// enumerate visits every legal serialization of the problem (one
// canonical representative per commuting-swap equivalence class — the
// classes agree on the final state, so the reduction loses nothing) and
// sinks the interned final object-state vector of each. States already
// enumerated are recorded in the memo under the enumeration problem kind
// and skipped: the reachable-final set below a (placed, last, state)
// node is a pure function of the node, so a second visit contributes
// nothing new. Returns outTruncated when the node budget runs out
// (post-order memo insertion keeps truncated subtrees out of the visited
// set, exactly as the search path keeps them out of the failure memo);
// outFailed otherwise — enumeration never stops early, so outFound is
// never produced.
func (s *searcher) enumerate(placed bitset, count int, vid stateID, last int, sink func(stateID)) outcome {
	if *s.nodes >= s.maxNodes {
		return outTruncated
	}
	*s.nodes++
	if count == s.n {
		sink(vid)
		return outFailed
	}
	if s.ctx.memoHas(s.problem, placed, last, vid) {
		return outFailed
	}
	for i := 0; i < s.n; i++ {
		if placed.has(i) || !placed.covers(s.preds[i]) ||
			s.prunable(i, last) || s.symBlocked(i, placed) {
			continue
		}
		next, legal := s.stepCand(i, vid)
		if !legal {
			continue
		}
		if s.decide[i] != DecideCommitted {
			// Aborted placements leave no state trace; DecideBranch never
			// reaches enumeration (checkpointed prefixes are completed).
			next = vid
		}
		placed.set(i)
		var out outcome
		if next != vid {
			s.touch(i)
			out = s.enumerate(placed, count+1, next, i, sink)
			s.touch(i)
		} else {
			out = s.enumerate(placed, count+1, vid, i, sink)
		}
		placed.clear(i)
		if out == outTruncated {
			return outTruncated
		}
	}
	s.ctx.memoInsert(s.problem, placed, last, vid)
	return outFailed
}

// enumerateFinals runs the reachable-final-state enumeration for a fully
// decided problem (no DecideBranch transactions): sink receives the
// interned final object-state vector of every legal serialization of
// o.Txs, deduplicated per distinct vector by the caller if desired (the
// walk itself may sink one vector several times via distinct
// serialization classes). It returns ErrSearchLimit when the node budget
// is exhausted before the enumeration completes — the caller must then
// discard everything sunk, since uncovered serializations may reach
// states never reported.
func enumerateFinals(o SerializeOptions, maxNodes int, nodes *int, sink func(stateID)) error {
	o.enumerate = true
	if len(o.Txs) == 0 {
		return nil
	}
	ctx := o.Context
	if ctx == nil {
		ctx = NewSearchContext()
	}
	s := &ctx.srch
	if s.active {
		s = &searcher{}
	}
	s.active = true
	defer func() { s.active = false }()
	s.setup(ctx, o, maxNodes, nodes)
	if s.enumerate(s.placed, 0, s.init, -1, sink) == outTruncated {
		return ErrSearchLimit
	}
	return nil
}
