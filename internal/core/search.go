package core

import (
	"fmt"

	"otm/internal/history"
	"otm/internal/spec"
)

// SerializeOptions parameterizes the serialization search shared by the
// opacity checker and the weaker criteria of internal/criteria.
type SerializeOptions struct {
	// Source supplies the per-transaction event sequences (typically a
	// completion of the history under test).
	Source history.History
	// Txs are the transactions to serialize. For opacity this is every
	// transaction of the completion; for serializability-style criteria,
	// only the committed ones.
	Txs []history.TxID
	// Committed tells which transactions update the object states once
	// placed. Transactions for which it returns false are checked for
	// legality but leave no trace.
	Committed func(history.TxID) bool
	// Preds are ordering constraints: each pair (a, b) requires a to be
	// serialized before b. Pairs mentioning transactions outside Txs are
	// ignored.
	Preds [][2]history.TxID
	// Objects are the initial object states; nil entries default to
	// integer registers initialized to 0.
	Objects spec.Objects
	// MaxNodes bounds the search (0 = default); *Nodes accumulates the
	// node count across calls when non-nil.
	MaxNodes int
	Nodes    *int
}

// FindSerialization searches for an order of o.Txs such that every
// ordering constraint holds and every transaction is legal on the object
// states produced by the committed transactions placed before it. It
// returns the order and true on success; false if no such order exists.
// ErrSearchLimit is returned when the node budget is exhausted first.
func FindSerialization(o SerializeOptions) ([]history.TxID, bool, error) {
	n := len(o.Txs)
	if n > 63 {
		return nil, false, fmt.Errorf("core: %d transactions exceed the supported maximum of 63", n)
	}
	if n == 0 {
		return nil, true, nil
	}
	maxNodes := o.MaxNodes
	if maxNodes == 0 {
		maxNodes = defaultMaxNodes
	}
	var localNodes int
	nodes := o.Nodes
	if nodes == nil {
		nodes = &localNodes
	}

	idx := txIndex(o.Txs)
	preds := make([]uint64, n)
	for _, p := range o.Preds {
		i, oki := idx[p[0]]
		j, okj := idx[p[1]]
		if oki && okj {
			preds[j] |= 1 << uint(i)
		}
	}

	objIDs := sortedObjects(o.Source)
	execs := make([][]history.OpExec, n)
	committed := make([]bool, n)
	for i, tx := range o.Txs {
		execs[i] = o.Source.OpExecs(tx)
		committed[i] = o.Committed(tx)
	}

	baseObjs := o.Objects
	if baseObjs == nil {
		baseObjs = spec.Objects{}
	}

	visitedFail := make(map[string]bool)
	order := make([]history.TxID, 0, n)
	full := (uint64(1) << uint(n)) - 1

	var search func(placed uint64, states spec.Objects) bool
	search = func(placed uint64, states spec.Objects) bool {
		if *nodes >= maxNodes {
			return false
		}
		*nodes++
		if placed == full {
			return true
		}
		key := fmt.Sprintf("%x|%s", placed, stateKey(states, objIDs))
		if visitedFail[key] {
			return false
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if placed&bit != 0 || preds[i]&^placed != 0 {
				continue
			}
			next, legal := replayTx(states, execs[i])
			if !legal {
				continue
			}
			order = append(order, o.Txs[i])
			after := states
			if committed[i] {
				after = next
			}
			if search(placed|bit, after) {
				return true
			}
			order = order[:len(order)-1]
		}
		visitedFail[key] = true
		return false
	}

	if search(0, baseObjs) {
		return append([]history.TxID(nil), order...), true, nil
	}
	if *nodes >= maxNodes {
		return nil, false, ErrSearchLimit
	}
	return nil, false, nil
}
