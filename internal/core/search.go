package core

import (
	"otm/internal/history"
	"otm/internal/spec"
)

// Decision tells the serialization search how to treat one transaction's
// commit status when the transaction is placed.
type Decision int

const (
	// DecideCommitted: the transaction's effects update the object states
	// seen by transactions placed after it.
	DecideCommitted Decision = iota
	// DecideAborted: the transaction is checked for legality but leaves
	// no trace on the object states.
	DecideAborted
	// DecideBranch marks a commit-pending transaction whose fate the
	// search chooses: placement branches on committing it (its effects
	// become visible) versus aborting it (no trace). This is how the
	// search covers Complete(H) without enumerating the 2^k completions
	// as an outer loop — each completion corresponds to one assignment of
	// fates along a search path, and the memo table and node budget are
	// shared across all of them.
	DecideBranch
)

// SerializeOptions parameterizes the serialization search shared by the
// opacity checker and the weaker criteria of internal/criteria.
type SerializeOptions struct {
	// Source supplies the per-transaction event sequences. For opacity
	// this is the history under test itself: completions only append
	// commit/abort events, so the operation executions of every
	// transaction are identical across all of Complete(H).
	Source history.History
	// Txs are the transactions to serialize. For opacity this is every
	// transaction of the history; for serializability-style criteria,
	// only the committed ones.
	Txs []history.TxID
	// Decide maps each transaction to how its placement treats the object
	// states (committed, aborted, or branch on both).
	Decide func(history.TxID) Decision
	// Preds are ordering constraints: each pair (a, b) requires a to be
	// serialized before b. Pairs mentioning transactions outside Txs are
	// ignored.
	Preds [][2]history.TxID
	// Objects are the initial object states; nil entries default to
	// integer registers initialized to 0.
	Objects spec.Objects
	// MaxNodes bounds the search (0 = default); *Nodes accumulates the
	// node count across calls when non-nil.
	MaxNodes int
	Nodes    *int
	// DisableMemo turns off both the (placed-set, object-state, last)
	// verdict cache and the commutativity-based partial-order reduction,
	// running the plain backtracking search. It exists as the reference
	// implementation for differential testing of the memoized engine and
	// should not be set on production paths.
	DisableMemo bool
}

// Serialization is the successful outcome of FindSerialization.
type Serialization struct {
	// Order is the serialization of the transactions.
	Order []history.TxID
	// Commits records the fate the search chose for every DecideBranch
	// transaction: true = committed, false = aborted. Transactions with a
	// fixed Decision do not appear. The map is in the shape expected by
	// history.CompleteWith.
	Commits map[history.TxID]bool
}

// searcher is the memoized serialization engine. One instance serves one
// FindSerialization call: the memo table caches failure verdicts keyed by
// (placed-transaction bitset, object-state fingerprint, last placed
// transaction), so isomorphic search prefixes — different placement
// orders and different commit/abort fate assignments reaching the same
// set of placed transactions and the same object states — are explored
// once. The last placed transaction is part of the key because the
// partial-order reduction prunes successors relative to it.
type searcher struct {
	n        int
	txs      []history.TxID
	execs    [][]history.OpExec
	decide   []Decision
	fate     []bool // chosen fate per placed transaction (branch txs)
	preds    []bitset
	foot     []bitset // per-transaction object footprint (bit per object)
	objIDs   []history.ObjID
	maxNodes int
	nodes    *int
	memo     map[string]struct{} // failed states; nil = memoization off
	por      bool                // partial-order reduction on
	keyBuf   []byte              // reused scratch for memo keys
	order    []history.TxID
}

// stateKey renders the memo key for the current search state into the
// reused scratch buffer: the raw words of the placed bitset, the index of
// the last placed transaction, then the canonical fingerprint of every
// object state.
func (s *searcher) stateKey(placed bitset, states spec.Objects, last int) []byte {
	buf := placed.appendKey(s.keyBuf[:0])
	u := uint32(last + 1) // -1 (root) becomes 0
	buf = append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	for _, id := range s.objIDs {
		buf = append(buf, id...)
		buf = append(buf, '=')
		if st, ok := states[id]; ok {
			buf = append(buf, st.Key()...)
		} else {
			buf = append(buf, '?')
		}
		buf = append(buf, ';')
	}
	s.keyBuf = buf
	return buf
}

// prunable implements the partial-order reduction: placing candidate i
// directly after last is skipped when the swapped order — i first, then
// last — is a valid placement too, reaches the identical search state,
// and is lexicographically smaller (i < last by index). The swap is valid
// exactly when the two transactions commute (disjoint completed-operation
// footprints: neither one's legality or resulting states can depend on
// the other) and i was already placeable before last was placed (last is
// not a predecessor of i; i's other predecessors were placed earlier).
// Every equivalence class of serializations under such adjacent swaps
// retains its lexicographically least member, which passes this test at
// every step, so pruning the rest never loses a witness.
func (s *searcher) prunable(i, last int) bool {
	return s.por && last >= 0 && i < last &&
		!s.preds[i].has(last) &&
		!s.foot[i].intersects(s.foot[last])
}

// search tries to extend the partial serialization. placed is mutated in
// place (set before recursing, cleared on backtrack); count is the number
// of placed transactions; last is the index of the most recently placed
// transaction (-1 at the root). On success the winning bits stay set and
// s.order / s.fate hold the full serialization and fate assignment.
func (s *searcher) search(placed bitset, count int, states spec.Objects, last int) bool {
	if *s.nodes >= s.maxNodes {
		return false
	}
	*s.nodes++
	if count == s.n {
		return true
	}
	var key []byte
	if s.memo != nil {
		key = s.stateKey(placed, states, last)
		if _, failed := s.memo[string(key)]; failed {
			return false
		}
	}
	for i := 0; i < s.n; i++ {
		if placed.has(i) || !placed.covers(s.preds[i]) || s.prunable(i, last) {
			continue
		}
		next, legal := replayTx(states, s.execs[i])
		if !legal {
			continue
		}
		s.order = append(s.order, s.txs[i])
		placed.set(i)
		found := false
		switch s.decide[i] {
		case DecideCommitted:
			s.fate[i] = true
			found = s.search(placed, count+1, next, i)
		case DecideAborted:
			s.fate[i] = false
			found = s.search(placed, count+1, states, i)
		case DecideBranch:
			// Abort first: it keeps the object states unchanged, matching
			// the reference engine's enumeration order (completion mask 0
			// aborts every commit-pending transaction).
			s.fate[i] = false
			found = s.search(placed, count+1, states, i)
			if !found {
				s.fate[i] = true
				found = s.search(placed, count+1, next, i)
			}
		}
		if found {
			return true
		}
		placed.clear(i)
		s.order = s.order[:len(s.order)-1]
	}
	if s.memo != nil {
		// key was rendered into the shared scratch buffer before the
		// recursive calls overwrote it; re-render for the insert.
		s.memo[string(s.stateKey(placed, states, last))] = struct{}{}
	}
	return false
}

// FindSerialization searches for an order of o.Txs such that every
// ordering constraint holds and every transaction is legal on the object
// states produced by the committed transactions placed before it,
// choosing a commit/abort fate for every DecideBranch transaction along
// the way. It returns the serialization on success and nil if no order
// (under any fate assignment) exists. ErrSearchLimit is returned when the
// node budget is exhausted first.
func FindSerialization(o SerializeOptions) (*Serialization, error) {
	n := len(o.Txs)
	if n == 0 {
		return &Serialization{}, nil
	}
	maxNodes := o.MaxNodes
	if maxNodes == 0 {
		maxNodes = defaultMaxNodes
	}
	var localNodes int
	nodes := o.Nodes
	if nodes == nil {
		nodes = &localNodes
	}

	idx := txIndex(o.Txs)
	preds := make([]bitset, n)
	for i := range preds {
		preds[i] = newBitset(n)
	}
	for _, p := range o.Preds {
		i, oki := idx[p[0]]
		j, okj := idx[p[1]]
		if oki && okj {
			preds[j].set(i)
		}
	}

	s := &searcher{
		n:        n,
		txs:      o.Txs,
		execs:    make([][]history.OpExec, n),
		decide:   make([]Decision, n),
		fate:     make([]bool, n),
		preds:    preds,
		objIDs:   sortedObjects(o.Source),
		maxNodes: maxNodes,
		nodes:    nodes,
		order:    make([]history.TxID, 0, n),
	}
	for i, tx := range o.Txs {
		s.execs[i] = o.Source.OpExecs(tx)
		s.decide[i] = o.Decide(tx)
	}
	if !o.DisableMemo {
		s.memo = make(map[string]struct{})
		s.por = true
		s.foot = footprints(o.Source, o.Txs, s.objIDs)
	}

	baseObjs := o.Objects
	if baseObjs == nil {
		baseObjs = spec.Objects{}
	}

	if s.search(newBitset(n), 0, baseObjs, -1) {
		ser := &Serialization{Order: append([]history.TxID(nil), s.order...)}
		for i, tx := range o.Txs {
			if s.decide[i] == DecideBranch {
				if ser.Commits == nil {
					ser.Commits = make(map[history.TxID]bool)
				}
				ser.Commits[tx] = s.fate[i]
			}
		}
		return ser, nil
	}
	if *nodes >= maxNodes {
		return nil, ErrSearchLimit
	}
	return nil, nil
}

// footprints renders each transaction's object footprint (see
// history.Footprint) as a bitset over the sorted object ids, the form the
// partial-order reduction's disjointness test consumes.
func footprints(src history.History, txs []history.TxID, objIDs []history.ObjID) []bitset {
	objIdx := make(map[history.ObjID]int, len(objIDs))
	for i, id := range objIDs {
		objIdx[id] = i
	}
	foot := make([]bitset, len(txs))
	for i, tx := range txs {
		foot[i] = newBitset(len(objIDs))
		for _, ob := range src.Footprint(tx) {
			if j, ok := objIdx[ob]; ok {
				foot[i].set(j)
			}
		}
	}
	return foot
}
