package core

import (
	"otm/internal/history"
	"otm/internal/spec"
)

// SerializeOptions parameterizes the serialization search shared by the
// opacity checker and the weaker criteria of internal/criteria.
type SerializeOptions struct {
	// Source supplies the per-transaction event sequences (typically a
	// completion of the history under test).
	Source history.History
	// Txs are the transactions to serialize. For opacity this is every
	// transaction of the completion; for serializability-style criteria,
	// only the committed ones.
	Txs []history.TxID
	// Committed tells which transactions update the object states once
	// placed. Transactions for which it returns false are checked for
	// legality but leave no trace.
	Committed func(history.TxID) bool
	// Preds are ordering constraints: each pair (a, b) requires a to be
	// serialized before b. Pairs mentioning transactions outside Txs are
	// ignored.
	Preds [][2]history.TxID
	// Objects are the initial object states; nil entries default to
	// integer registers initialized to 0.
	Objects spec.Objects
	// MaxNodes bounds the search (0 = default); *Nodes accumulates the
	// node count across calls when non-nil.
	MaxNodes int
	Nodes    *int
	// DisableMemo turns off the (placed-set, object-state) verdict cache
	// and runs the plain backtracking search. It exists as the reference
	// implementation for differential testing of the memoized engine and
	// should not be set on production paths.
	DisableMemo bool
}

// searcher is the memoized serialization engine. One instance serves one
// FindSerialization call: the memo table caches failure verdicts keyed by
// (placed-transaction bitset, object-state fingerprint), so isomorphic
// search prefixes — different placement orders reaching the same set of
// placed transactions and the same object states — are explored once.
type searcher struct {
	n         int
	txs       []history.TxID
	execs     [][]history.OpExec
	committed []bool
	preds     []bitset
	objIDs    []history.ObjID
	maxNodes  int
	nodes     *int
	memo      map[string]struct{} // failed states; nil = memoization off
	keyBuf    []byte              // reused scratch for memo keys
	order     []history.TxID
}

// stateKey renders the memo key for the current search state into the
// reused scratch buffer: the raw words of the placed bitset followed by
// the canonical fingerprint of every object state.
func (s *searcher) stateKey(placed bitset, states spec.Objects) []byte {
	buf := placed.appendKey(s.keyBuf[:0])
	for _, id := range s.objIDs {
		buf = append(buf, id...)
		buf = append(buf, '=')
		if st, ok := states[id]; ok {
			buf = append(buf, st.Key()...)
		} else {
			buf = append(buf, '?')
		}
		buf = append(buf, ';')
	}
	s.keyBuf = buf
	return buf
}

// search tries to extend the partial serialization. placed is mutated in
// place (set before recursing, cleared on backtrack); count is the number
// of placed transactions. On success the winning bits stay set and
// s.order holds the full serialization.
func (s *searcher) search(placed bitset, count int, states spec.Objects) bool {
	if *s.nodes >= s.maxNodes {
		return false
	}
	*s.nodes++
	if count == s.n {
		return true
	}
	var key []byte
	if s.memo != nil {
		key = s.stateKey(placed, states)
		if _, failed := s.memo[string(key)]; failed {
			return false
		}
	}
	for i := 0; i < s.n; i++ {
		if placed.has(i) || !placed.covers(s.preds[i]) {
			continue
		}
		next, legal := replayTx(states, s.execs[i])
		if !legal {
			continue
		}
		s.order = append(s.order, s.txs[i])
		after := states
		if s.committed[i] {
			after = next
		}
		placed.set(i)
		if s.search(placed, count+1, after) {
			return true
		}
		placed.clear(i)
		s.order = s.order[:len(s.order)-1]
	}
	if s.memo != nil {
		// key was rendered into the shared scratch buffer before the
		// recursive calls overwrote it; re-render for the insert.
		s.memo[string(s.stateKey(placed, states))] = struct{}{}
	}
	return false
}

// FindSerialization searches for an order of o.Txs such that every
// ordering constraint holds and every transaction is legal on the object
// states produced by the committed transactions placed before it. It
// returns the order and true on success; false if no such order exists.
// ErrSearchLimit is returned when the node budget is exhausted first.
func FindSerialization(o SerializeOptions) ([]history.TxID, bool, error) {
	n := len(o.Txs)
	if n == 0 {
		return nil, true, nil
	}
	maxNodes := o.MaxNodes
	if maxNodes == 0 {
		maxNodes = defaultMaxNodes
	}
	var localNodes int
	nodes := o.Nodes
	if nodes == nil {
		nodes = &localNodes
	}

	idx := txIndex(o.Txs)
	preds := make([]bitset, n)
	for i := range preds {
		preds[i] = newBitset(n)
	}
	for _, p := range o.Preds {
		i, oki := idx[p[0]]
		j, okj := idx[p[1]]
		if oki && okj {
			preds[j].set(i)
		}
	}

	s := &searcher{
		n:         n,
		txs:       o.Txs,
		execs:     make([][]history.OpExec, n),
		committed: make([]bool, n),
		preds:     preds,
		objIDs:    sortedObjects(o.Source),
		maxNodes:  maxNodes,
		nodes:     nodes,
		order:     make([]history.TxID, 0, n),
	}
	for i, tx := range o.Txs {
		s.execs[i] = o.Source.OpExecs(tx)
		s.committed[i] = o.Committed(tx)
	}
	if !o.DisableMemo {
		s.memo = make(map[string]struct{})
	}

	baseObjs := o.Objects
	if baseObjs == nil {
		baseObjs = spec.Objects{}
	}

	if s.search(newBitset(n), 0, baseObjs) {
		return append([]history.TxID(nil), s.order...), true, nil
	}
	if *nodes >= maxNodes {
		return nil, false, ErrSearchLimit
	}
	return nil, false, nil
}
