package core_test

import (
	"errors"
	"testing"

	"otm/internal/core"
	"otm/internal/gen"
	"otm/internal/history"
)

// FuzzCheckOpacityDiff is the fuzz half of the engine differential
// suite: on every parseable, well-formed history, the unified
// completion-aware engine and the per-completion reference engine
// (core.Config.DisableMemo) must reach the same opacity verdict, and an
// opaque verdict must come with a witness satisfying all three clauses
// of Definition 1. Seeds come from the same generated corpora the
// deterministic differential tests sweep, so the fuzzer starts from
// inputs known to exercise both verdicts and commit-pending branching.
func FuzzCheckOpacityDiff(f *testing.F) {
	for _, h := range gen.Corpus(gen.Config{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.3}, 600, 0) {
		f.Add(h.String())
	}
	// Commit-pending-heavy seeds: the regime where the engines diverge
	// structurally (lazy fates vs completion enumeration).
	for _, h := range gen.Corpus(gen.Config{Txs: 5, Objs: 2, MaxOps: 3, PStaleRead: 0.4, PLeaveLive: 0.8}, 600, 1_000_000) {
		f.Add(h.String())
	}

	f.Fuzz(func(t *testing.T, src string) {
		h, err := history.Parse(src)
		if err != nil || h.WellFormed() != nil {
			return
		}
		// Keep the reference's 2^k completion loop and the backtracking
		// search inside fuzz-friendly bounds.
		if len(h) > 64 || len(h.Transactions()) > 8 || len(h.CommitPendingTxs()) > 6 {
			return
		}
		cfg := core.Config{MaxNodes: 200_000}
		uni, errU := core.Check(h, cfg)
		cfg.DisableMemo = true
		ref, errR := core.Check(h, cfg)
		if errors.Is(errU, core.ErrSearchLimit) || errors.Is(errR, core.ErrSearchLimit) {
			return // starved: nothing to compare
		}
		if errU != nil || errR != nil {
			t.Fatalf("unified err=%v, reference err=%v on well-formed input:\n%s", errU, errR, h.Format())
		}
		if uni.Opaque != ref.Opaque {
			t.Fatalf("unified engine says opaque=%v, reference says %v:\n%s",
				uni.Opaque, ref.Opaque, h.Format())
		}
		if !uni.Opaque {
			return
		}
		// The witness must be a genuine Definition 1 certificate.
		w := uni.Witness
		s := w.Sequential
		if !s.Sequential() || !s.Complete() {
			t.Fatalf("witness S not complete-sequential:\n%s", s.Format())
		}
		if err := w.Completion.WellFormed(); err != nil {
			t.Fatalf("witness completion malformed: %v", err)
		}
		if !history.Equivalent(s, w.Completion) {
			t.Fatalf("witness S not equivalent to its completion:\n%s", s.Format())
		}
		if !history.PreservesRealTimeOrder(h, s) {
			t.Fatalf("witness S breaks ≺H:\n%s", s.Format())
		}
		if tx, ok := core.AllLegal(s, nil); !ok {
			t.Fatalf("T%d illegal in witness S:\n%s", int(tx), s.Format())
		}
	})
}

// FuzzCheckOpacitySym is the symmetry-reduction differential fuzzer: on
// every parseable, well-formed history, the symmetry-reduced engine, the
// unreduced engine (core.Config.DisableSym) and the per-completion
// reference must agree, the reduced engine must not explore more nodes
// than the unreduced one, and opaque verdicts must carry a valid
// Definition 1 witness. Seeds come from the clone-heavy symmetric corpus
// (interchangeable transactions, maximal class sizes) — the regime where
// a canonicalization bug would actually lose witnesses — so mutation
// explores the boundary where near-clones stop being interchangeable.
func FuzzCheckOpacitySym(f *testing.F) {
	for _, h := range gen.Corpus(gen.Config{
		Txs: 3, Objs: 2, MaxOps: 3, Clones: 3, PStaleRead: 0.3, PLeaveLive: 0.4,
	}, 300, 0) {
		f.Add(h.String())
	}
	// Near-miss seeds: clones of a template differing only in fate, the
	// cheapest mutation that must break a class.
	f.Add("r1(x)->0 r2(x)->0 tryC1 C1 tryC2 A2")
	f.Add("w1(x,1) w2(x,1) w3(x,1) tryC1 tryC2 tryC3")

	f.Fuzz(func(t *testing.T, src string) {
		h, err := history.Parse(src)
		if err != nil || h.WellFormed() != nil {
			return
		}
		if len(h) > 72 || len(h.Transactions()) > 9 || len(h.CommitPendingTxs()) > 6 {
			return
		}
		cfg := core.Config{MaxNodes: 200_000}
		sym, errS := core.Check(h, cfg)
		cfg.DisableSym = true
		nosym, errN := core.Check(h, cfg)
		cfg = core.Config{MaxNodes: 200_000, DisableMemo: true}
		ref, errR := core.Check(h, cfg)
		if errors.Is(errS, core.ErrSearchLimit) || errors.Is(errN, core.ErrSearchLimit) ||
			errors.Is(errR, core.ErrSearchLimit) {
			return // starved: nothing to compare
		}
		if errS != nil || errN != nil || errR != nil {
			t.Fatalf("reduced err=%v, unreduced err=%v, reference err=%v on well-formed input:\n%s",
				errS, errN, errR, h.Format())
		}
		if sym.Opaque != nosym.Opaque || sym.Opaque != ref.Opaque {
			t.Fatalf("reduced=%v unreduced=%v reference=%v:\n%s",
				sym.Opaque, nosym.Opaque, ref.Opaque, h.Format())
		}
		if sym.Nodes > nosym.Nodes {
			t.Fatalf("reduced search explored %d nodes, unreduced %d:\n%s",
				sym.Nodes, nosym.Nodes, h.Format())
		}
		if !sym.Opaque {
			return
		}
		w := sym.Witness
		s := w.Sequential
		if !s.Sequential() || !s.Complete() {
			t.Fatalf("witness S not complete-sequential:\n%s", s.Format())
		}
		if err := w.Completion.WellFormed(); err != nil {
			t.Fatalf("witness completion malformed: %v", err)
		}
		if !history.Equivalent(s, w.Completion) {
			t.Fatalf("witness S not equivalent to its completion:\n%s", s.Format())
		}
		if !history.PreservesRealTimeOrder(h, s) {
			t.Fatalf("witness S breaks ≺H:\n%s", s.Format())
		}
		if tx, ok := core.AllLegal(s, nil); !ok {
			t.Fatalf("T%d illegal in witness S:\n%s", int(tx), s.Format())
		}
	})
}
