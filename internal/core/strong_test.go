package core

import (
	"testing"

	"otm/internal/history"
)

func TestOpOrderPreds(t *testing.T) {
	// T1's read completes before T2's write is invoked; T2's write
	// completes before nothing of T1 (T1 has no later invocation).
	h := history.NewBuilder().
		Read(1, "x", 0).
		Write(2, "x", 1).
		MustHistory()
	preds := OpOrderPreds(h)
	if len(preds) != 1 || preds[0] != [2]history.TxID{1, 2} {
		t.Errorf("preds = %v, want [[1 2]]", preds)
	}
}

// TestH4NotStronglyOpaque is the §5.2 argument made executable: H4 is
// opaque (the multi-version behaviour) but fails once operation order
// must be preserved — T3's read of y=5 completes before T1's read of
// y=0 is invoked, forcing T3 before T1, yet legality forces T1 before
// T2 before T3.
func TestH4NotStronglyOpaque(t *testing.T) {
	r, err := Opaque(h4())
	if err != nil || !r.Opaque {
		t.Fatalf("H4 must be opaque: %v %v", r.Opaque, err)
	}
	rs, err := CheckStrong(h4(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Opaque {
		t.Fatal("H4 must NOT be strongly opaque (witness would contradict §5.2)")
	}
}

// TestH5NotStronglyOpaque: even the paper's flagship opaque history
// fails the strengthened requirement — T1's and T3's operations
// mutually interleave — underscoring why the paper rejects it.
func TestH5NotStronglyOpaque(t *testing.T) {
	rs, err := CheckStrong(figure2(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Opaque {
		t.Error("H5 interleaves T1 and T3 operations in both directions")
	}
}

// TestSequentialHistoriesStrongEqualsOpaque: with no operation
// interleaving the two notions coincide.
func TestSequentialHistoriesStrongEqualsOpaque(t *testing.T) {
	cases := []history.History{
		history.MustParse("w1(x,1) tryC1 C1 r2(x)->1 tryC2 C2"),
		history.MustParse("w1(x,1) tryC1 C1 r2(x)->0 tryC2 C2"), // stale: neither
		history.MustParse("w1(x,1) tryC1 C1 w2(x,2) tryC2 C2 r3(x)->2 tryC3 C3"),
	}
	for i, h := range cases {
		a, err := Opaque(h)
		if err != nil {
			t.Fatal(err)
		}
		b, err := CheckStrong(h, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Opaque != b.Opaque {
			t.Errorf("case %d: opaque=%v strong=%v; must coincide on sequential histories",
				i, a.Opaque, b.Opaque)
		}
	}
}

// TestStrongOpaqueImpliesOpaque: on arbitrary histories the
// strengthened criterion only removes witnesses.
func TestStrongOpaqueImpliesOpaque(t *testing.T) {
	hs := []history.History{figure2(), h4(), figure1()}
	for i, h := range hs {
		s, err := CheckStrong(h, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !s.Opaque {
			continue
		}
		o, err := Opaque(h)
		if err != nil {
			t.Fatal(err)
		}
		if !o.Opaque {
			t.Errorf("case %d: strongly opaque but not opaque?!", i)
		}
	}
}

// TestStrongConcurrentButNonInterleaved: concurrent transactions whose
// operations happen not to interleave can still serialize freely.
func TestStrongConcurrentButNonInterleaved(t *testing.T) {
	// T1's single op completes, then T2's single op runs, but neither
	// transaction completes before the other's first event (both commit
	// at the end): concurrent transactions, one-directional op order.
	h := history.History{
		history.Inv(1, "x", "read", nil), history.Ret(1, "x", "read", 1),
		history.Inv(2, "x", "write", 1), history.Ret(2, "x", "write", history.OK),
		history.TryC(2), history.Commit(2),
		history.TryC(1), history.Commit(1),
	}.MustWellFormed()
	// Opaque: T2 serializes before T1 (T1 reads T2's value).
	o, err := Opaque(h)
	if err != nil || !o.Opaque {
		t.Fatalf("base history must be opaque: %v %v", o.Opaque, err)
	}
	// But strong opacity forbids that serialization: T1's read completed
	// before T2's write was invoked.
	s, err := CheckStrong(h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Opaque {
		t.Error("reading a value written later must fail strong opacity")
	}
}
