package core

import (
	"strings"
	"testing"

	"otm/internal/history"
)

func TestDiagnoseFigure1(t *testing.T) {
	d, err := Diagnose(figure1(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Opaque {
		t.Fatal("H1 is not opaque")
	}
	// The violation becomes observable at T2's read of y returning 2.
	if d.Culprit.Kind != history.KindRet || d.Culprit.Tx != 2 || d.Culprit.Obj != "y" {
		t.Errorf("culprit = %v, want T2's ret on y", d.Culprit)
	}
	// Removing T2 (the inconsistent reader) restores opacity; so does
	// removing T1 or T3 (either write makes the snapshot consistent).
	found := map[history.TxID]bool{}
	for _, tx := range d.Implicated {
		found[tx] = true
	}
	if !found[2] {
		t.Errorf("T2 must be implicated; got %v", d.Implicated)
	}
	s := d.String()
	if !strings.Contains(s, "not opaque") || !strings.Contains(s, "T2") {
		t.Errorf("diagnosis string %q", s)
	}
}

// TestDiagnoseNodesAccounted: Diagnose reports the total search cost of
// its internal checks, and a caller-supplied context is actually used
// (its tables are populated by the run).
func TestDiagnoseNodesAccounted(t *testing.T) {
	ctx := NewSearchContext()
	d, err := Diagnose(figure1(), Config{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if d.Opaque {
		t.Fatal("H1 is not opaque")
	}
	if d.Nodes <= 0 {
		t.Errorf("Diagnosis.Nodes = %d, want > 0 (prefix scan plus per-transaction re-checks)", d.Nodes)
	}
	if s := ctx.Stats(); s.States == 0 || s.Problems == 0 {
		t.Errorf("supplied context not used by Diagnose: %+v", s)
	}
	// The opaque path reports cost too.
	d2, err := Diagnose(figure2(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Opaque || d2.Nodes <= 0 {
		t.Errorf("opaque diagnosis: %+v, want Opaque with Nodes > 0", d2)
	}
}

func TestDiagnoseOpaque(t *testing.T) {
	d, err := Diagnose(figure2(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Opaque || d.String() != "opaque" {
		t.Errorf("diagnosis = %+v", d)
	}
}

func TestDiagnoseMalformed(t *testing.T) {
	if _, err := Diagnose(history.History{history.Commit(1)}, Config{}); err == nil {
		t.Error("malformed history must error")
	}
}

func TestRemoveTx(t *testing.T) {
	h := figure1()
	h2 := RemoveTx(h, 2)
	if h2.Contains(2) {
		t.Error("T2 events must be gone")
	}
	if len(h2) != len(h)-len(h.Sub(2)) {
		t.Error("only T2's events may be removed")
	}
	// Without the inconsistent reader, H1 becomes opaque.
	r, err := Opaque(h2)
	if err != nil || !r.Opaque {
		t.Errorf("H1 minus T2 must be opaque: %v %v", r.Opaque, err)
	}
}
