package core

import (
	"strings"
	"testing"

	"otm/internal/history"
)

func TestDiagnoseFigure1(t *testing.T) {
	d, err := Diagnose(figure1(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Opaque {
		t.Fatal("H1 is not opaque")
	}
	// The violation becomes observable at T2's read of y returning 2.
	if d.Culprit.Kind != history.KindRet || d.Culprit.Tx != 2 || d.Culprit.Obj != "y" {
		t.Errorf("culprit = %v, want T2's ret on y", d.Culprit)
	}
	// Removing T2 (the inconsistent reader) restores opacity; so does
	// removing T1 or T3 (either write makes the snapshot consistent).
	found := map[history.TxID]bool{}
	for _, tx := range d.Implicated {
		found[tx] = true
	}
	if !found[2] {
		t.Errorf("T2 must be implicated; got %v", d.Implicated)
	}
	s := d.String()
	if !strings.Contains(s, "not opaque") || !strings.Contains(s, "T2") {
		t.Errorf("diagnosis string %q", s)
	}
}

func TestDiagnoseOpaque(t *testing.T) {
	d, err := Diagnose(figure2(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Opaque || d.String() != "opaque" {
		t.Errorf("diagnosis = %+v", d)
	}
}

func TestDiagnoseMalformed(t *testing.T) {
	if _, err := Diagnose(history.History{history.Commit(1)}, Config{}); err == nil {
		t.Error("malformed history must error")
	}
}

func TestRemoveTx(t *testing.T) {
	h := figure1()
	h2 := RemoveTx(h, 2)
	if h2.Contains(2) {
		t.Error("T2 events must be gone")
	}
	if len(h2) != len(h)-len(h.Sub(2)) {
		t.Error("only T2's events may be removed")
	}
	// Without the inconsistent reader, H1 becomes opaque.
	r, err := Opaque(h2)
	if err != nil || !r.Opaque {
		t.Errorf("H1 minus T2 must be opaque: %v %v", r.Opaque, err)
	}
}
