package core

// bitset is a multi-word set of transaction indices. It replaces the
// single-uint64 mask that used to cap the serialization search at 63
// transactions: the search now scales to histories with arbitrarily many
// transactions (the node budget, not the representation, is the limit).
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << uint(i&63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// covers reports whether every member of other is also in b. The two
// bitsets must have the same word length.
func (b bitset) covers(other bitset) bool {
	for w, bits := range other {
		if bits&^b[w] != 0 {
			return false
		}
	}
	return true
}

// intersects reports whether b and other share at least one member. The
// two bitsets must have the same word length.
func (b bitset) intersects(other bitset) bool {
	for w, bits := range other {
		if bits&b[w] != 0 {
			return true
		}
	}
	return false
}

// equal reports whether b and other contain exactly the same members.
// The two bitsets must have the same word length.
func (b bitset) equal(other bitset) bool {
	for w, bits := range other {
		if bits != b[w] {
			return false
		}
	}
	return true
}

// appendKey appends the raw words of b to dst, producing a fixed-width
// prefix for memoization keys.
func (b bitset) appendKey(dst []byte) []byte {
	for _, w := range b {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}
