package core

import (
	"otm/internal/history"
	"otm/internal/spec"
)

// stateID identifies one interned object-state vector in a SearchContext:
// the dense states of every registered object, indexed by registration
// order. Two search nodes with equal stateIDs have identical object
// states, so the id substitutes for the per-node state fingerprint the
// memo and transition caches used to render as strings.
type stateID = int32

// Stats are the observability counters of a SearchContext. All counters
// are cumulative over the context's lifetime (they survive internal table
// flushes); Add makes them aggregatable across the per-worker contexts of
// a batch run.
type Stats struct {
	// States is the number of distinct object-state vectors interned.
	States int
	// Atoms is the number of distinct single-object states interned.
	Atoms int
	// TxSigs is the number of distinct transaction replay signatures.
	TxSigs int
	// Problems is the number of distinct search problems the context has
	// scoped memo entries by.
	Problems int
	// MemoEntries counts failure-verdict insertions; MemoHits and
	// MemoMisses count memo lookup outcomes (their sum is the lookup
	// count, so MemoHits/(MemoHits+MemoMisses) is the memo hit rate);
	// TransHits / TransMisses count transition-cache outcomes (a miss
	// replays the transaction, a hit is a map probe).
	MemoEntries int
	MemoHits    int
	MemoMisses  int
	TransHits   int
	TransMisses int
	// Flushes counts the times the state-dependent tables were discarded
	// because a history introduced objects unknown to the context.
	Flushes int
	// SymClasses counts the non-singleton symmetry classes detected
	// across calls (groups of ≥2 interchangeable transactions whose
	// placements the search canonicalizes); SymPrunes counts candidate
	// placements skipped because an earlier member of the candidate's
	// class was still unplaced; LegalSkips counts candidate placements
	// skipped by the incremental legality watch without probing the
	// transition cache (the candidate was known-illegal on the current
	// states of every object it touches).
	SymClasses int
	SymPrunes  int
	LegalSkips int
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.States += o.States
	s.Atoms += o.Atoms
	s.TxSigs += o.TxSigs
	s.Problems += o.Problems
	s.MemoEntries += o.MemoEntries
	s.MemoHits += o.MemoHits
	s.MemoMisses += o.MemoMisses
	s.TransHits += o.TransHits
	s.TransMisses += o.TransMisses
	s.Flushes += o.Flushes
	s.SymClasses += o.SymClasses
	s.SymPrunes += o.SymPrunes
	s.LegalSkips += o.LegalSkips
}

// transKey keys the transition cache: replaying the transaction with
// signature sig on the object states of state. The replay outcome is a
// pure function of the two, so the cache is valid across search nodes,
// completions, and separate checker calls sharing the context.
type transKey struct {
	state stateID
	sig   int32
}

// transVal is a cached replay outcome: legal tells whether every
// completed operation execution was accepted, next is the resulting
// state (-1 when illegal).
type transVal struct {
	next  stateID
	legal bool
}

// atomStep keys the single-object step cache: one operation execution
// applied to one interned object state. Argument and return values are
// comparable by the history model's contract, so they can key a map
// directly. The cache is what keeps spec.State.Step — and the Key
// rendering of its result — off the hot path even when whole-vector
// transitions miss: two state vectors differing only in objects a
// transaction does not touch replay it through identical atom steps.
type atomStep struct {
	atom int32
	op   string
	arg  history.Value
	ret  history.Value
}

// atomStepVal is a cached step outcome (next is meaningless when the
// step is illegal).
type atomStepVal struct {
	next  int32
	legal bool
}

// memoKey keys the failure memo: search states are identified by the
// scoping problem id, the interned object-state vector, the last placed
// transaction (part of the key because the partial-order reduction
// prunes successors relative to it) and the placed-transaction bitset,
// inlined for histories of up to 128 transactions. Wider bitsets take
// the string-keyed spill path (memoWide).
type memoKey struct {
	problem int32
	state   stateID
	last    int32
	lo, hi  uint64
}

// SearchContext holds the interned-state tables of the serialization
// search engine: the atom and state-vector interners, the transition
// cache, and the failure memo. A fresh context is created internally for
// every call that does not supply one; supplying one (Config.Context,
// SerializeOptions.Context) reuses the tables across calls, which is
// what makes the O(n) prefix scan of FirstNonOpaquePrefix, the
// per-removed-transaction re-checks of Diagnose, and long batch runs
// amortize their state exploration.
//
// Reuse is sound because every table is scoped by what it depends on:
// atoms and state vectors are pure values; transitions are keyed by
// (state, transaction replay signature); and memo entries are scoped by
// a problem signature covering the transactions' replay signatures,
// commit decisions, ordering constraints and initial states — two calls
// share memo entries only when they pose structurally identical search
// problems. Budget-truncated subtrees are never memoized (see
// searcher.search), so a verdict cut short by MaxNodes can never be
// replayed as a definitive failure by a later call.
//
// A SearchContext is not safe for concurrent use. Give each goroutine
// its own; internal/checkpool provisions one per worker. To share the
// tables themselves across goroutines, derive per-goroutine contexts
// from one SharedTables (SharedTables.NewContext): such contexts keep
// their scratch state private but delegate every table probe and insert
// to the concurrent shared layer.
type SearchContext struct {
	// shared, when non-nil, backs this context by pool-wide concurrent
	// tables; sgen is the generation pinned for the current call. In
	// shared mode the private steps map below serves as an L1 cache over
	// the lock-striped shared step table (the transition cache and the
	// string-keyed interning indexes need none — their shared tables are
	// lock-free on reads), the memo/memoWide maps hold the entries of
	// problems this context owns (see owned), and the other table fields
	// stay nil. The L1 and the owned-problem memo are cleared on every
	// generation change.
	shared *SharedTables
	sgen   *sharedGen

	// owned (shared mode only) is the set of problem ids this context
	// interned first. Memo entries are problem-scoped, so for a problem
	// no other context has ever posed, the shared memo cannot hold or
	// ever be asked for its entries by anyone else — the owner keeps
	// them in its private maps at plain-map cost. Contexts that re-pose
	// a problem someone else minted (duplicate histories) read and write
	// the locked shared memo instead, which is where cross-worker memo
	// reuse actually pays. Cleared, with the private maps, on every
	// generation change: ids do not outlive their generation.
	owned map[int32]struct{}
	// memoOwnProblem/memoOwn memoize the last owned-lookup: memo probes
	// arrive in long per-problem runs (one search call = one problem),
	// so almost every probe short-circuits to an int compare.
	memoOwnProblem int32
	memoOwn        bool

	atoms  *spec.Interner
	defReg int32 // interned default object state (register 0)

	// objIdx/objs are the object registry — or, in shared mode, a local
	// mirror of a prefix of the shared registry, so hot-path index
	// lookups never touch the registry lock.
	objIdx map[history.ObjID]int32
	objs   []history.ObjID

	sigIdx   map[string]int32
	vecIdx   map[string]stateID
	vecs     [][]int32
	trans    map[transKey]transVal
	steps    map[atomStep]atomStepVal
	memo     map[memoKey]struct{}
	memoWide map[string]struct{}
	problems map[string]int32

	// initEmpty caches initialState(nil-or-empty Objects) — the common
	// configuration — between registry growths; -1 means not cached.
	initEmpty stateID

	// enumEpoch salts the problem signature of every reachable-final
	// enumeration (searcher.enumerate) so no two enumerations ever share
	// a problem id: a "visited" entry left by one walk would silently
	// suppress the finals of an identical later walk, whose collector
	// never saw what the first one sank. Search problems carry salt 0
	// and keep sharing failure verdicts as before.
	enumEpoch int32

	stats Stats

	keyBuf []byte
	vecBuf []int32
	srch   searcher
}

// NewSearchContext returns an empty context ready to be shared across
// checker calls on one goroutine.
func NewSearchContext() *SearchContext {
	c := &SearchContext{
		atoms:    spec.NewInterner(),
		objIdx:   make(map[history.ObjID]int32),
		sigIdx:   make(map[string]int32),
		vecIdx:   make(map[string]stateID),
		trans:    make(map[transKey]transVal),
		steps:    make(map[atomStep]atomStepVal),
		memo:     make(map[memoKey]struct{}),
		memoWide: make(map[string]struct{}),
		problems: make(map[string]int32),
	}
	c.defReg = c.internAtom(spec.NewRegister(0))
	c.initEmpty = -1
	return c
}

// Stats returns a snapshot of the context's counters. For a context
// derived from SharedTables this covers only the context's private
// lookup counters (memo/transition hits and misses); the pool-wide
// insert counters — states, atoms, signatures, problems, memo entries,
// flushes — are reported once by SharedTables.Stats, not per context.
func (c *SearchContext) Stats() Stats {
	s := c.stats
	if c.shared == nil {
		s.Atoms = c.atoms.Len()
	}
	return s
}

// registerObjects adds any unseen objects to the context's registry.
// State vectors are dense over the registry, so growing it invalidates
// every interned vector and everything keyed by one: those tables are
// flushed (the atom interner, the atom step cache and the replay
// signatures survive — they reference atoms and objects by ids that
// never change).
func (c *SearchContext) registerObjects(ids []history.ObjID) {
	if c.shared != nil {
		c.sharedRegister(ids)
		return
	}
	grew := false
	for _, id := range ids {
		if _, ok := c.objIdx[id]; !ok {
			c.objIdx[id] = int32(len(c.objs))
			c.objs = append(c.objs, id)
			grew = true
		}
	}
	if grew {
		c.initEmpty = -1
		if len(c.vecs) > 0 {
			c.flushStateTables()
		}
	}
}

// maxTableEntries bounds the total size of one context's tables — memo,
// transitions, atom steps, replay signatures and interned atoms alike.
// Long-lived contexts (a checkpool worker over a million-history batch
// of diverse values) would otherwise grow without limit; crossing the
// bound rebuilds the context's tables wholesale between calls — cheap
// relative to the work they cached — and starts re-filling them.
const maxTableEntries = 1 << 20

// tableEntries is the size the bound applies to.
func (c *SearchContext) tableEntries() int {
	return len(c.memo) + len(c.memoWide) + len(c.trans) +
		len(c.steps) + len(c.sigIdx) + c.atoms.Len()
}

// reset discards every table, including the flush-surviving ones
// (atoms, atom steps, replay signatures, object registry), counting as
// one flush in the stats.
func (c *SearchContext) reset() {
	c.atoms = spec.NewInterner()
	c.steps = make(map[atomStep]atomStepVal)
	c.sigIdx = make(map[string]int32)
	c.objIdx = make(map[history.ObjID]int32)
	c.objs = c.objs[:0]
	c.defReg = c.internAtom(spec.NewRegister(0))
	c.flushStateTables()
}

// flushStateTables discards every table keyed by (or holding) stateIDs.
// The atom interner, the atom step cache and the replay signatures
// survive: they are keyed by ids that remain valid.
func (c *SearchContext) flushStateTables() {
	c.vecIdx = make(map[string]stateID)
	c.vecs = c.vecs[:0]
	c.trans = make(map[transKey]transVal)
	c.memo = make(map[memoKey]struct{})
	c.memoWide = make(map[string]struct{})
	c.problems = make(map[string]int32)
	c.initEmpty = -1
	c.stats.Flushes++
}

// internAtom interns one single-object state.
func (c *SearchContext) internAtom(st spec.State) int32 {
	if c.shared != nil {
		return c.sgen.atoms.Intern(st)
	}
	return c.atoms.Intern(st)
}

// internVec interns the vector currently in vecBuf and returns its id.
func (c *SearchContext) internVec() stateID {
	if c.shared != nil {
		return c.sharedInternVec()
	}
	buf := c.keyBuf[:0]
	for _, a := range c.vecBuf {
		buf = append(buf, byte(a), byte(a>>8), byte(a>>16), byte(a>>24))
	}
	c.keyBuf = buf
	if id, ok := c.vecIdx[string(buf)]; ok {
		return id
	}
	id := stateID(len(c.vecs))
	c.vecs = append(c.vecs, append([]int32(nil), c.vecBuf...))
	c.vecIdx[string(buf)] = id
	c.stats.States++
	return id
}

// initialState interns the initial object-state vector implied by objs:
// each registered object takes its state from objs, or the default
// integer register initialized to 0 — the same default replayTx applies.
func (c *SearchContext) initialState(objs spec.Objects) stateID {
	if len(objs) == 0 {
		if c.initEmpty >= 0 {
			return c.initEmpty
		}
		c.vecBuf = c.vecBuf[:0]
		for range c.objs {
			c.vecBuf = append(c.vecBuf, c.defReg)
		}
		c.initEmpty = c.internVec()
		return c.initEmpty
	}
	c.vecBuf = c.vecBuf[:0]
	for _, id := range c.objs {
		a := c.defReg
		if st, ok := objs[id]; ok {
			a = c.internAtom(st)
		}
		c.vecBuf = append(c.vecBuf, a)
	}
	return c.internVec()
}

// sigOf interns the replay signature of one transaction's operation
// executions — the canonical history.OpSignature rendering (object,
// operation, argument and return value of every completed execution, in
// order, injection-safe). Two transactions with equal signatures replay
// identically from any state, so the signature is the transaction's
// identity in the transition cache, the problem signature and the
// symmetry-class computation, and it is stable across calls and contexts
// (the rendering references object names, never registry indices).
func (c *SearchContext) sigOf(execs []history.OpExec) int32 {
	buf := history.AppendOpSignature(c.keyBuf[:0], execs)
	c.keyBuf = buf
	if c.shared != nil {
		g := c.sgen
		id, fresh := g.sigIdx.intern(buf, func() int32 { return g.sigSeq.Add(1) - 1 })
		if fresh {
			c.shared.txSigs.Add(1)
			g.entries.Add(1)
		}
		return id
	}
	if id, ok := c.sigIdx[string(buf)]; ok {
		return id
	}
	id := int32(len(c.sigIdx))
	c.sigIdx[string(buf)] = id
	c.stats.TxSigs++
	return id
}

// appendFramed appends a 4-byte little-endian length followed by the
// bytes render produces, making the field self-delimiting regardless of
// its content.
func appendFramed(buf []byte, render func([]byte) []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = render(buf)
	n := uint32(len(buf) - start - 4)
	buf[start] = byte(n)
	buf[start+1] = byte(n >> 8)
	buf[start+2] = byte(n >> 16)
	buf[start+3] = byte(n >> 24)
	return buf
}

// step replays the transaction with the given signature on state vid,
// through the transition cache: each (state, signature) pair is replayed
// at most once per context — once per table set, in shared mode — not
// once per (search node, candidate) pair.
func (c *SearchContext) step(vid stateID, sig int32, execs []history.OpExec) (stateID, bool) {
	k := transKey{state: vid, sig: sig}
	if c.shared != nil {
		// No private cache in front: the shared transition table is
		// lock-free on reads, so probing it directly costs about a map
		// lookup and every worker sees every sibling's replays.
		if v, ok := c.sgen.trans.get(k); ok {
			c.stats.TransHits++
			return v.next, v.legal
		}
		c.stats.TransMisses++
		// The replay outcome is a pure function of (vid, sig) — stored
		// vectors are canonical and signatures pin the registry indices
		// they touch — so racing workers compute the same value and
		// first-writer-wins is sound.
		v := c.replay(vid, c.sgen.vecs.get(vid), execs)
		if c.sgen.trans.put(k, v) {
			c.sgen.entries.Add(1)
		}
		return v.next, v.legal
	}
	if v, ok := c.trans[k]; ok {
		c.stats.TransHits++
		return v.next, v.legal
	}
	c.stats.TransMisses++
	v := c.replay(vid, c.vecs[vid], execs)
	c.trans[k] = v
	return v.next, v.legal
}

// replay applies a transaction's completed operation executions to the
// object-state vector vec (the stored form of vid), returning the cached
// transition value. vec may be shorter than the registry mirror in
// shared mode (canonical trimming); absent positions are still at the
// default register state and are padded back out.
func (c *SearchContext) replay(vid stateID, vec []int32, execs []history.OpExec) transVal {
	c.vecBuf = append(c.vecBuf[:0], vec...)
	for len(c.vecBuf) < len(c.objs) {
		c.vecBuf = append(c.vecBuf, c.defReg)
	}
	changed := false
	v := transVal{next: -1, legal: true}
	for _, e := range execs {
		if e.Pending {
			continue
		}
		j := c.objIdx[e.Obj]
		a, ok := c.stepAtom(c.vecBuf[j], e)
		if !ok {
			v.legal = false
			break
		}
		if a != c.vecBuf[j] {
			c.vecBuf[j] = a
			changed = true
		}
	}
	if v.legal {
		if changed {
			v.next = c.internVec()
		} else {
			v.next = vid
		}
	}
	return v
}

// stepAtom applies one completed operation execution to one interned
// object state, through the atom step cache: each (state, operation,
// argument, return) combination calls spec.State.Step — and pays the
// Key rendering of the result — once per context lifetime.
func (c *SearchContext) stepAtom(atom int32, e history.OpExec) (int32, bool) {
	k := atomStep{atom: atom, op: e.Op, arg: e.Arg, ret: e.Ret}
	if v, ok := c.steps[k]; ok { // in shared mode, the lock-free L1
		return v.next, v.legal
	}
	if c.shared != nil {
		if v, ok := c.sgen.steps.get(k); ok {
			c.steps[k] = v
			return v.next, v.legal
		}
		next, ok := c.sgen.atoms.State(atom).Step(e.Op, e.Arg, e.Ret)
		v := atomStepVal{next: -1, legal: ok}
		if ok {
			v.next = c.internAtom(next)
		}
		if c.sgen.steps.put(k, v) {
			c.sgen.entries.Add(1)
		}
		c.steps[k] = v
		return v.next, v.legal
	}
	next, ok := c.atoms.State(atom).Step(e.Op, e.Arg, e.Ret)
	v := atomStepVal{next: -1, legal: ok}
	if ok {
		v.next = c.internAtom(next)
	}
	c.steps[k] = v
	return v.next, v.legal
}

// Problem kinds: the leading byte of every problem signature. Memo
// entries under a search problem mean "this subtree has no witness";
// under an enumeration problem they mean "this subtree was already
// enumerated". The kinds give the two disjoint keyspaces in the shared
// memo table, so neither can ever answer the other's lookups.
const (
	problemSearch byte = iota
	problemEnum
)

// problemOf interns the signature of one search problem: the problem
// kind, the number of transactions, the initial state, and per
// transaction (in placement-index order) its replay signature, commit
// decision, predecessor bitset and symmetry-class predecessor. Memo
// entries are scoped by the resulting id, so two calls share them exactly
// when they pose the same search problem — the transaction ids themselves
// are irrelevant to failure verdicts and do not participate. Footprints
// (and with them the partial-order reduction) are a function of the
// replay signatures, so they need no separate representation. The
// classPrev entries are a pure function of the preceding fields today,
// but they shape which subtrees the symmetry-reduced engine explores, so
// they participate explicitly: an engine variant with the reduction
// disabled (SerializeOptions.DisableSym) poses all-singleton classes and
// can never share memo entries with a reduced search over real classes —
// even across workers of one SharedTables pool.
func (c *SearchContext) problemOf(kind byte, salt int32, init stateID, sigs []int32, decide []Decision, preds []bitset, classPrev []int32) int32 {
	buf := c.keyBuf[:0]
	buf = append(buf, kind, byte(salt), byte(salt>>8), byte(salt>>16), byte(salt>>24))
	n := uint32(len(sigs))
	buf = append(buf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	buf = append(buf, byte(init), byte(init>>8), byte(init>>16), byte(init>>24))
	for i := range sigs {
		s := sigs[i]
		buf = append(buf, byte(s), byte(s>>8), byte(s>>16), byte(s>>24), byte(decide[i]))
		buf = preds[i].appendKey(buf)
		p := classPrev[i]
		buf = append(buf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
	}
	c.keyBuf = buf
	if c.shared != nil {
		g := c.sgen
		id, fresh := g.problems.intern(buf, func() int32 { return g.problemSeq.Add(1) - 1 })
		if fresh {
			c.shared.problemCount.Add(1)
			g.entries.Add(1)
			c.owned[id] = struct{}{}
		}
		return id
	}
	if id, ok := c.problems[string(buf)]; ok {
		return id
	}
	id := int32(len(c.problems))
	c.problems[string(buf)] = id
	c.stats.Problems++
	return id
}

// materialize renders one interned state vector as a durable Objects
// map: every registered object mapped to its (canonical, immutable)
// spec.State. The result references no context table, so it survives
// flushes and resets — checkpoint roots are kept in this form and
// re-interned per check, precisely because stateIDs do not outlive the
// tables that issued them.
func (c *SearchContext) materialize(vid stateID) spec.Objects {
	out := make(spec.Objects, len(c.objs))
	if c.shared != nil {
		vec := c.sgen.vecs.get(vid)
		for j, id := range c.objs {
			a := c.defReg
			if j < len(vec) {
				a = vec[j]
			}
			out[id] = c.sgen.atoms.State(a)
		}
		return out
	}
	for j, id := range c.objs {
		out[id] = c.atoms.State(c.vecs[vid][j])
	}
	return out
}

// ownsProblem reports whether this context minted the problem (shared
// mode only), memoizing the last answer: probes arrive in per-problem
// runs, so the owned-map lookup happens once per run.
func (c *SearchContext) ownsProblem(problem int32) bool {
	if problem != c.memoOwnProblem {
		_, ok := c.owned[problem]
		c.memoOwnProblem, c.memoOwn = problem, ok
	}
	return c.memoOwn
}

// memoIndex builds the inline memo key for placed bitsets of at most two
// words; ok is false when the bitset is wider and the spill path applies.
func memoIndex(problem int32, placed bitset, last int, vid stateID) (memoKey, bool) {
	if len(placed) > 2 {
		return memoKey{}, false
	}
	k := memoKey{problem: problem, state: vid, last: int32(last), lo: placed[0]}
	if len(placed) == 2 {
		k.hi = placed[1]
	}
	return k, true
}

// wideKey renders the spill memo key for >128-transaction histories.
func (c *SearchContext) wideKey(problem int32, placed bitset, last int, vid stateID) []byte {
	buf := c.keyBuf[:0]
	buf = append(buf, byte(problem), byte(problem>>8), byte(problem>>16), byte(problem>>24))
	buf = append(buf, byte(vid), byte(vid>>8), byte(vid>>16), byte(vid>>24))
	u := uint32(last + 1)
	buf = append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	buf = placed.appendKey(buf)
	c.keyBuf = buf
	return buf
}

// memoHas reports whether the search state was recorded as a definitive
// failure.
func (c *SearchContext) memoHas(problem int32, placed bitset, last int, vid stateID) bool {
	var ok bool
	if c.shared != nil {
		if c.ownsProblem(problem) {
			// This context minted the problem; its entries live in the
			// private maps and no sibling can ever pose it (see owned).
			if k, inline := memoIndex(problem, placed, last, vid); inline {
				_, ok = c.memo[k]
			} else {
				_, ok = c.memoWide[string(c.wideKey(problem, placed, last, vid))]
			}
		} else if k, inline := memoIndex(problem, placed, last, vid); inline {
			_, ok = c.sgen.memo.get(k)
		} else {
			_, ok = c.sgen.memoWide.get(c.wideKey(problem, placed, last, vid))
		}
	} else if k, inline := memoIndex(problem, placed, last, vid); inline {
		_, ok = c.memo[k]
	} else {
		_, ok = c.memoWide[string(c.wideKey(problem, placed, last, vid))]
	}
	if ok {
		c.stats.MemoHits++
	} else {
		c.stats.MemoMisses++
	}
	return ok
}

// memoInsert records the search state as a definitive failure. Callers
// must never insert a state whose subtree was truncated by the node
// budget: with contexts shared across calls — and, via SharedTables,
// across workers — a truncated verdict replayed as a failure would be
// unsound.
func (c *SearchContext) memoInsert(problem int32, placed bitset, last int, vid stateID) {
	if c.shared != nil {
		if c.ownsProblem(problem) {
			if k, inline := memoIndex(problem, placed, last, vid); inline {
				c.memo[k] = struct{}{}
			} else {
				c.memoWide[string(c.wideKey(problem, placed, last, vid))] = struct{}{}
			}
			c.stats.MemoEntries++
			return
		}
		inserted := false
		if k, inline := memoIndex(problem, placed, last, vid); inline {
			inserted = c.sgen.memo.put(k, struct{}{})
		} else {
			wk := c.wideKey(problem, placed, last, vid)
			_, inserted = c.sgen.memoWide.intern(wk, func() int32 { return 0 })
		}
		if inserted {
			c.shared.memoEntries.Add(1)
			c.sgen.entries.Add(1)
		}
		return
	}
	if k, inline := memoIndex(problem, placed, last, vid); inline {
		c.memo[k] = struct{}{}
	} else {
		c.memoWide[string(c.wideKey(problem, placed, last, vid))] = struct{}{}
	}
	c.stats.MemoEntries++
}
