package core
