package core

import (
	"errors"
	"testing"

	"otm/internal/gen"
	"otm/internal/history"
	"otm/internal/spec"
)

// TestStateTableInterning checks the interning invariants of the state
// table directly: vectors of states with equal Keys intern to the same
// stateID, distinct vectors to distinct ids, and the default environment
// (missing object = register 0) is canonical — an explicit register 0
// and an absent entry produce the same interned state.
func TestStateTableInterning(t *testing.T) {
	ctx := NewSearchContext()
	ctx.registerObjects([]history.ObjID{"x", "y"})

	empty := ctx.initialState(spec.Objects{})
	again := ctx.initialState(spec.Objects{})
	if empty != again {
		t.Errorf("interning the empty environment twice gave ids %d and %d", empty, again)
	}
	explicit := ctx.initialState(spec.Objects{"x": spec.NewRegister(0), "y": spec.NewRegister(0)})
	if explicit != empty {
		t.Errorf("explicit register-0 environment interned to %d, absent-objects environment to %d; equal Keys must share a stateID", explicit, empty)
	}
	other := ctx.initialState(spec.Objects{"x": spec.NewRegister(1)})
	if other == empty {
		t.Errorf("distinct vectors (x=1 vs x=0) share stateID %d", other)
	}
	if s := ctx.Stats(); s.States != 2 {
		t.Errorf("Stats().States = %d, want 2 distinct vectors", s.States)
	}
}

// TestStateTableFlushOnNewObjects: growing the object registry discards
// interned vectors (their width changed) but keeps checking correct; the
// flush is observable in Stats.
func TestStateTableFlushOnNewObjects(t *testing.T) {
	ctx := NewSearchContext()
	cfg := Config{Context: ctx}
	h1 := history.MustParse("w1(x,1) tryC1 C1 r2(x)->1 tryC2 C2")
	h2 := history.MustParse("w1(x,1) w1(y,2) tryC1 C1 r2(y)->2 tryC2 C2")

	r1, err := Check(h1, cfg)
	if err != nil || !r1.Opaque {
		t.Fatalf("h1: opaque=%v err=%v", r1.Opaque, err)
	}
	if ctx.Stats().Flushes != 0 {
		t.Fatalf("flushed before any new object appeared")
	}
	r2, err := Check(h2, cfg) // introduces y -> registry grows -> flush
	if err != nil || !r2.Opaque {
		t.Fatalf("h2: opaque=%v err=%v", r2.Opaque, err)
	}
	if ctx.Stats().Flushes == 0 {
		t.Error("introducing object y must flush the state-dependent tables")
	}
	// And the flushed context still answers correctly (fresh oracle).
	r1b, err := Check(h1, cfg)
	if err != nil || r1b.Opaque != r1.Opaque {
		t.Errorf("h1 after flush: opaque=%v err=%v, want %v", r1b.Opaque, err, r1.Opaque)
	}
}

// TestTransitionCacheMatchesReplay is the transition-cache half of the
// differential suite: on a generated corpus, stepping every transaction
// through the cached interned-state path must agree with replayTx — the
// reference replay on copy-on-write object maps — in both legality and
// resulting per-object states, including when transactions are chained
// so that non-initial states are exercised and every cache entry is hit
// at least twice.
func TestTransitionCacheMatchesReplay(t *testing.T) {
	hs := gen.Corpus(gen.Config{Txs: 5, Objs: 3, MaxOps: 4, PStaleRead: 0.4}, 200, 7)
	ctx := NewSearchContext()
	for hi, h := range hs {
		txs := h.Transactions()
		execs := h.OpExecsFor(txs)
		ctx.registerObjects(h.Objects())

		for round := 0; round < 2; round++ { // second round must hit the cache
			vid := ctx.initialState(nil)
			states := spec.Objects{}
			for i := range txs {
				sig := ctx.sigOf(execs[i])
				nextVid, legalC := ctx.step(vid, sig, execs[i])
				nextStates, legalR := replayTx(states, execs[i])
				if legalC != legalR {
					t.Fatalf("history %d, T%d: cached legality %v, replayTx %v", hi, int(txs[i]), legalC, legalR)
				}
				if !legalC {
					continue // chain only over legal transactions
				}
				for j, ob := range ctx.objs {
					want := "reg:0"
					if st, ok := nextStates[ob]; ok {
						want = st.Key()
					}
					if got := ctx.atoms.State(ctx.vecs[nextVid][j]).Key(); got != want {
						t.Fatalf("history %d, T%d, object %s: cached state %q, replayTx %q", hi, int(txs[i]), ob, got, want)
					}
				}
				vid, states = nextVid, nextStates
			}
		}
	}
	if s := ctx.Stats(); s.TransHits == 0 || s.TransMisses == 0 {
		t.Errorf("differential did not exercise both cache paths: %+v", s)
	}
}

// TestMemoWideBitsetSpill covers the >128-transaction memo path: placed
// bitsets too wide for the inline comparable key go through the
// string-keyed spill table with the same semantics.
func TestMemoWideBitsetSpill(t *testing.T) {
	ctx := NewSearchContext()
	placed := newBitset(130) // 3 words -> spill
	placed.set(0)
	placed.set(129)
	if ctx.memoHas(1, placed, 5, 42) {
		t.Fatal("empty spill table reported a hit")
	}
	ctx.memoInsert(1, placed, 5, 42)
	if !ctx.memoHas(1, placed, 5, 42) {
		t.Error("inserted wide state not found")
	}
	// Any component differing must miss.
	for _, probe := range []struct {
		problem int32
		last    int
		vid     stateID
	}{{2, 5, 42}, {1, 6, 42}, {1, 5, 43}} {
		if ctx.memoHas(probe.problem, placed, probe.last, probe.vid) {
			t.Errorf("probe %+v hit, want miss", probe)
		}
	}
	placed.clear(129)
	if ctx.memoHas(1, placed, 5, 42) {
		t.Error("different placed bitset hit, want miss")
	}
	if s := ctx.Stats(); s.MemoEntries != 1 || s.MemoHits != 1 {
		t.Errorf("stats = %+v, want 1 entry and 1 hit", s)
	}
}

// TestTruncatedStatesReExploredOnLargerBudget is the soundness test for
// memo reuse across calls: when a check exhausts its node budget, the
// states whose subtrees were truncated must NOT be memoized as failures,
// so re-checking the same history on the same context with budget to
// spare reaches the true verdict. (Before truncation became a distinct
// search status, the parent of an exhausted subtree recorded the state
// as failed — harmless while memos died with the call, unsound the
// moment they are shared.)
func TestTruncatedStatesReExploredOnLargerBudget(t *testing.T) {
	hs := gen.Corpus(gen.Config{Txs: 6, Objs: 3, MaxOps: 4, PStaleRead: 0.3, PLeaveLive: 0.5}, 200, 11)
	starved := 0
	for i, h := range hs {
		want, err := Check(h, Config{})
		if err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		if want.Nodes < 2 {
			continue // cannot starve a 1-node verdict
		}
		ctx := NewSearchContext()
		_, err = Check(h, Config{Context: ctx, MaxNodes: want.Nodes - 1})
		if !errors.Is(err, ErrSearchLimit) {
			t.Fatalf("history %d: err=%v under a %d-node budget, want ErrSearchLimit", i, err, want.Nodes-1)
		}
		starved++
		got, err := Check(h, Config{Context: ctx})
		if err != nil {
			t.Fatalf("history %d: retry on the starved context: %v", i, err)
		}
		if got.Opaque != want.Opaque {
			t.Fatalf("history %d: retry on the starved context says opaque=%v, fresh verdict is %v:\n%s",
				i, got.Opaque, want.Opaque, h.Format())
		}
	}
	if starved < 50 {
		t.Errorf("only %d starved cases exercised; corpus too easy", starved)
	}
}

// TestSharedContextMatchesFreshAcrossCorpus: one long-lived context
// serving a whole mixed corpus — the checkpool-worker shape — must
// reproduce the verdicts of per-call fresh contexts and of the reference
// engine, while actually reusing tables (memo or transition hits > 0).
func TestSharedContextMatchesFreshAcrossCorpus(t *testing.T) {
	n := 300
	if !testing.Short() {
		n = 800
	}
	hs := gen.Corpus(gen.Config{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.3, PLeaveLive: 0.3}, n, 23)
	ctx := NewSearchContext()
	shared := Config{Context: ctx}
	for i, h := range hs {
		got, err := Check(h, shared)
		if err != nil {
			t.Fatalf("history %d: shared context: %v", i, err)
		}
		want, err := Check(h, Config{DisableMemo: true})
		if err != nil {
			t.Fatalf("history %d: reference: %v", i, err)
		}
		if got.Opaque != want.Opaque {
			t.Fatalf("history %d: shared context says opaque=%v, reference says %v:\n%s",
				i, got.Opaque, want.Opaque, h.Format())
		}
	}
	s := ctx.Stats()
	if s.TransHits == 0 {
		t.Error("a corpus-wide context should hit the transition cache")
	}
	if s.States == 0 || s.Atoms == 0 || s.TxSigs == 0 || s.Problems == 0 {
		t.Errorf("stats not populated: %+v", s)
	}
}

// TestTableSizeCapFlushes: a context whose memo has grown past the
// entry bound is flushed at the next call boundary and keeps answering
// correctly — the policy that bounds a batch worker's memory on
// million-history runs.
func TestTableSizeCapFlushes(t *testing.T) {
	ctx := NewSearchContext()
	h := history.MustParse("w1(x,1) tryC1 C1 r2(x)->1 tryC2 C2")
	if _, err := Check(h, Config{Context: ctx}); err != nil {
		t.Fatal(err)
	}
	flushes := ctx.Stats().Flushes
	for i := 0; len(ctx.memo) <= maxTableEntries; i++ {
		ctx.memo[memoKey{problem: int32(i), lo: uint64(i)}] = struct{}{}
	}
	r, err := Check(h, Config{Context: ctx})
	if err != nil || !r.Opaque {
		t.Fatalf("post-flush check: opaque=%v err=%v", r.Opaque, err)
	}
	if got := ctx.Stats().Flushes; got != flushes+1 {
		t.Errorf("Flushes = %d, want %d (one size-cap flush)", got, flushes+1)
	}
	if len(ctx.memo) > 16 {
		t.Errorf("memo not flushed: %d entries", len(ctx.memo))
	}
}

// TestSigOfResistsSeparatorInjection: replay signatures are
// length-framed, so a string value crafted to mimic field or record
// boundaries cannot make two different transactions share a signature.
// Regression test: before framing, a return value embedding the raw
// separator bytes could splice a fake second execution into its record,
// and the poisoned transition cache flipped an opacity verdict.
func TestSigOfResistsSeparatorInjection(t *testing.T) {
	ctx := NewSearchContext()
	ctx.registerObjects([]history.ObjID{"x"})
	mk := func(execs ...history.OpExec) int32 { return ctx.sigOf(execs) }
	read := func(ret history.Value) history.OpExec {
		return history.OpExec{Tx: 1, Obj: "x", Op: "read", Ret: ret}
	}
	// One exec whose return value embeds bytes that, unframed, rendered
	// identically to the two-exec sequence read->"x", read->"y".
	crafted := "x\x01\x00\x00\x00\x00read\x00n\x00sy"
	single := mk(read(crafted))
	double := mk(read("x"), read("y"))
	if single == double {
		t.Fatal("crafted single-exec signature collides with a two-exec signature")
	}
	// And end to end on one shared context: unified verdicts must match
	// the reference for both histories, in cache-poisoning order.
	h1 := history.History{
		history.Inv(1, "x", "write", crafted), history.Ret(1, "x", "write", history.OK),
		history.TryC(1), history.Commit(1),
		history.Inv(2, "x", "read", nil), history.Ret(2, "x", "read", crafted),
		history.TryC(2), history.Commit(2),
	}
	h2 := history.History{
		history.Inv(1, "x", "write", crafted), history.Ret(1, "x", "write", history.OK),
		history.TryC(1), history.Commit(1),
		history.Inv(2, "x", "read", nil), history.Ret(2, "x", "read", "x"),
		history.Inv(2, "x", "read", nil), history.Ret(2, "x", "read", "y"),
		history.TryC(2), history.Commit(2),
	}
	shared := Config{Context: ctx}
	for i, h := range []history.History{h1, h2} {
		got, err := Check(h, shared)
		if err != nil {
			t.Fatalf("h%d: %v", i+1, err)
		}
		want, err := Check(h, Config{DisableMemo: true})
		if err != nil {
			t.Fatalf("h%d reference: %v", i+1, err)
		}
		if got.Opaque != want.Opaque {
			t.Fatalf("h%d: unified says opaque=%v, reference says %v", i+1, got.Opaque, want.Opaque)
		}
	}
}

// TestIndexOfMiss covers the not-found path of the linear transaction
// lookup shared by the searcher and witness assembly.
func TestIndexOfMiss(t *testing.T) {
	txs := []history.TxID{3, 1, 2}
	if got := indexOf(txs, 2); got != 2 {
		t.Errorf("indexOf(2) = %d, want 2", got)
	}
	if got := indexOf(txs, 9); got != -1 {
		t.Errorf("indexOf(9) = %d, want -1", got)
	}
}

// TestStatsAdd pins the aggregation used by checkpool's per-worker
// accounting.
func TestStatsAdd(t *testing.T) {
	a := Stats{States: 1, Atoms: 2, TxSigs: 3, Problems: 4, MemoEntries: 5, MemoHits: 6, MemoMisses: 7, TransHits: 8, TransMisses: 9, Flushes: 10}
	b := a
	a.Add(b)
	want := Stats{States: 2, Atoms: 4, TxSigs: 6, Problems: 8, MemoEntries: 10, MemoHits: 12, MemoMisses: 14, TransHits: 16, TransMisses: 18, Flushes: 20}
	if a != want {
		t.Errorf("Add: got %+v, want %+v", a, want)
	}
}
