package core

import (
	"otm/internal/history"
)

// OpOrderPreds returns the transaction-ordering constraints induced by
// the real-time order of individual OPERATION executions: a pair
// (Ti, Tj) appears when some operation response of Ti precedes some
// operation invocation of Tj in h. A block-sequential witness history
// preserves the real-time order of operations iff its transaction order
// extends these pairs.
func OpOrderPreds(h history.History) [][2]history.TxID {
	firstRet := make(map[history.TxID]int)
	lastInv := make(map[history.TxID]int)
	for i, e := range h {
		switch e.Kind {
		case history.KindRet:
			if _, ok := firstRet[e.Tx]; !ok {
				firstRet[e.Tx] = i
			}
		case history.KindInv:
			lastInv[e.Tx] = i
		}
	}
	var out [][2]history.TxID
	for ti, r := range firstRet {
		for tj, v := range lastInv {
			if ti != tj && r < v {
				out = append(out, [2]history.TxID{ti, tj})
			}
		}
	}
	return out
}

// CheckStrong decides "strong opacity": Definition 1 strengthened so
// that the witness S must preserve the real-time order of operation
// executions of different transactions, not only of transactions.
//
// The paper rejects this strengthening (§5.2): "it seems that forcing
// the order between operation executions of different transactions to
// be preserved, in addition to the real-time order of transactions
// themselves, would be too strong a requirement." CheckStrong makes the
// rejection demonstrable: history H4 — opaque, and exactly the
// behaviour multi-version TMs rely on to let long readers commit — is
// NOT strongly opaque, and neither is any history where two
// transactions' operations mutually interleave with a data dependency.
// It exists for that comparison; TM implementations should be audited
// with Check.
func CheckStrong(h history.History, cfg Config) (Result, error) {
	if err := h.WellFormed(); err != nil {
		return Result{}, err
	}
	txs := h.Transactions()
	if len(txs) == 0 {
		return Result{Opaque: true, Witness: &Witness{}}, nil
	}
	maxNodes := cfg.MaxNodes
	if maxNodes == 0 {
		maxNodes = defaultMaxNodes
	}
	preds := append(h.RealTimeOrder(), OpOrderPreds(h)...)

	res := Result{}
	var found *Witness
	var searchErr error
	h.EachCompletion(func(hc history.History) bool {
		order, ok, err := FindSerialization(SerializeOptions{
			Source:      hc,
			Txs:         txs,
			Committed:   func(tx history.TxID) bool { return hc.Committed(tx) },
			Preds:       preds,
			Objects:     cfg.Objects,
			MaxNodes:    maxNodes,
			Nodes:       &res.Nodes,
			DisableMemo: cfg.DisableMemo,
		})
		if err != nil {
			searchErr = err
			return false
		}
		if ok {
			found = &Witness{Completion: hc, Order: order, Sequential: buildSequential(hc, order)}
			return false
		}
		return true
	})
	if found != nil {
		res.Opaque = true
		res.Witness = found
		return res, nil
	}
	return res, searchErr
}
