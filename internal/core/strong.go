package core

import (
	"otm/internal/history"
)

// OpOrderPreds returns the transaction-ordering constraints induced by
// the real-time order of individual OPERATION executions: a pair
// (Ti, Tj) appears when some operation response of Ti precedes some
// operation invocation of Tj in h. A block-sequential witness history
// preserves the real-time order of operations iff its transaction order
// extends these pairs.
func OpOrderPreds(h history.History) [][2]history.TxID {
	firstRet := make(map[history.TxID]int)
	lastInv := make(map[history.TxID]int)
	for i, e := range h {
		switch e.Kind {
		case history.KindRet:
			if _, ok := firstRet[e.Tx]; !ok {
				firstRet[e.Tx] = i
			}
		case history.KindInv:
			lastInv[e.Tx] = i
		}
	}
	var out [][2]history.TxID
	for ti, r := range firstRet {
		for tj, v := range lastInv {
			if ti != tj && r < v {
				out = append(out, [2]history.TxID{ti, tj})
			}
		}
	}
	return out
}

// CheckStrong decides "strong opacity": Definition 1 strengthened so
// that the witness S must preserve the real-time order of operation
// executions of different transactions, not only of transactions.
//
// The paper rejects this strengthening (§5.2): "it seems that forcing
// the order between operation executions of different transactions to
// be preserved, in addition to the real-time order of transactions
// themselves, would be too strong a requirement." CheckStrong makes the
// rejection demonstrable: history H4 — opaque, and exactly the
// behaviour multi-version TMs rely on to let long readers commit — is
// NOT strongly opaque, and neither is any history where two
// transactions' operations mutually interleave with a data dependency.
// It exists for that comparison; TM implementations should be audited
// with Check.
// Like Check, the decision runs on the completion-aware unified engine
// (per-completion reference behind Config.DisableMemo); the only
// difference is the extra ordering constraints.
func CheckStrong(h history.History, cfg Config) (Result, error) {
	return check(h, cfg, OpOrderPreds(h))
}
