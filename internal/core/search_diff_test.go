package core_test

import (
	"errors"
	"testing"

	"otm/internal/core"
	"otm/internal/gen"
)

// TestMemoizedMatchesReference is the engine half of the differential
// suite: on a ≥1k random corpus the memoized search must return exactly
// the verdicts of the retained un-memoized reference search, while never
// exploring more nodes.
func TestMemoizedMatchesReference(t *testing.T) {
	n := 400
	if !testing.Short() {
		n = 1200
	}
	hs := gen.Corpus(gen.Config{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.3}, n, 0)
	opaque, nonOpaque := 0, 0
	for i, h := range hs {
		memo, errM := core.Check(h, core.Config{})
		ref, errR := core.Check(h, core.Config{DisableMemo: true})
		if errM != nil || errR != nil {
			t.Fatalf("history %d: memo err=%v, reference err=%v", i, errM, errR)
		}
		if memo.Opaque != ref.Opaque {
			t.Fatalf("history %d: memoized says opaque=%v, reference says %v:\n%s",
				i, memo.Opaque, ref.Opaque, h.Format())
		}
		if memo.Nodes > ref.Nodes {
			t.Errorf("history %d: memoized explored %d nodes, reference only %d",
				i, memo.Nodes, ref.Nodes)
		}
		if memo.Opaque {
			opaque++
		} else {
			nonOpaque++
		}
	}
	if min := n / 40; opaque < min || nonOpaque < min {
		t.Errorf("unbalanced corpus: %d opaque, %d non-opaque, want ≥%d each", opaque, nonOpaque, min)
	}
}

// TestMemoizedMatchesReferenceUnderBudget stresses agreement when the
// node budget bites. Memoization only prunes work, so whenever the
// memoized engine exhausts a budget the reference must exhaust it too,
// and whenever the reference finishes the memoized engine must finish
// with the same verdict. (The converse is allowed to differ: the memo
// can finish inside a budget that starves the reference.)
func TestMemoizedMatchesReferenceUnderBudget(t *testing.T) {
	hs := gen.Corpus(gen.Config{Txs: 8, Objs: 2, MaxOps: 4, PStaleRead: 0.4}, 300, 10_000)
	exhausted := 0
	for i, h := range hs {
		cfg := core.Config{MaxNodes: 300}
		memo, errM := core.Check(h, cfg)
		cfg.DisableMemo = true
		ref, errR := core.Check(h, cfg)

		switch {
		case errM != nil:
			if !errors.Is(errM, core.ErrSearchLimit) {
				t.Fatalf("history %d: memo: %v", i, errM)
			}
			if !errors.Is(errR, core.ErrSearchLimit) {
				t.Fatalf("history %d: memoized engine exhausted %d nodes but the reference finished (err=%v)",
					i, cfg.MaxNodes, errR)
			}
			exhausted++
		case errR != nil:
			// Reference starved where the memo finished: acceptable, the
			// memo is strictly cheaper.
			if !errors.Is(errR, core.ErrSearchLimit) {
				t.Fatalf("history %d: reference: %v", i, errR)
			}
			exhausted++
		default:
			if memo.Opaque != ref.Opaque {
				t.Fatalf("history %d: memoized says opaque=%v, reference says %v:\n%s",
					i, memo.Opaque, ref.Opaque, h.Format())
			}
		}
	}
	if exhausted == 0 {
		t.Error("corpus produced no budget-exhausted cases; tighten MaxNodes")
	}
}
