package core_test

import (
	"errors"
	"testing"

	"otm/internal/core"
	"otm/internal/gen"
	"otm/internal/history"
)

// TestMemoizedMatchesReference is the engine half of the differential
// suite: on a ≥1k random corpus the unified completion-aware engine must
// return exactly the verdicts of the retained per-completion reference,
// while exploring fewer nodes in aggregate. (Per history the unified
// engine may lose by a handful of nodes — branching on a commit-pending
// fate can wander where the reference's first completion succeeds
// immediately — so the node comparison is over the whole corpus.)
func TestMemoizedMatchesReference(t *testing.T) {
	n := 400
	if !testing.Short() {
		n = 1200
	}
	hs := gen.Corpus(gen.Config{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.3}, n, 0)
	opaque, nonOpaque := 0, 0
	totalUnified, totalReference := 0, 0
	for i, h := range hs {
		uni, errU := core.Check(h, core.Config{})
		ref, errR := core.Check(h, core.Config{DisableMemo: true})
		if errU != nil || errR != nil {
			t.Fatalf("history %d: unified err=%v, reference err=%v", i, errU, errR)
		}
		if uni.Opaque != ref.Opaque {
			t.Fatalf("history %d: unified says opaque=%v, reference says %v:\n%s",
				i, uni.Opaque, ref.Opaque, h.Format())
		}
		totalUnified += uni.Nodes
		totalReference += ref.Nodes
		if uni.Opaque {
			opaque++
		} else {
			nonOpaque++
		}
	}
	if totalUnified >= totalReference {
		t.Errorf("unified engine explored %d nodes in aggregate, reference only %d",
			totalUnified, totalReference)
	}
	if min := n / 40; opaque < min || nonOpaque < min {
		t.Errorf("unbalanced corpus: %d opaque, %d non-opaque, want ≥%d each", opaque, nonOpaque, min)
	}
}

// TestUnifiedEngineNodeReduction targets the corpus the unified engine
// was built for: commit-pending-heavy histories, where the reference
// pays for 2^k completions while the unified search shares one memo
// across all fate assignments and prunes commuting placements. Verdicts
// must agree on every input and the aggregate node count must be
// strictly smaller.
func TestUnifiedEngineNodeReduction(t *testing.T) {
	n := 150
	if !testing.Short() {
		n = 400
	}
	hs := gen.Corpus(gen.Config{Txs: 6, Objs: 3, MaxOps: 3, PStaleRead: 0.3, PLeaveLive: 0.8}, n, 0)
	totalUnified, totalReference := 0, 0
	commitPending := 0
	for i, h := range hs {
		commitPending += len(h.CommitPendingTxs())
		uni, errU := core.Check(h, core.Config{})
		ref, errR := core.Check(h, core.Config{DisableMemo: true})
		if errU != nil || errR != nil {
			t.Fatalf("history %d: unified err=%v, reference err=%v", i, errU, errR)
		}
		if uni.Opaque != ref.Opaque {
			t.Fatalf("history %d: unified says opaque=%v, reference says %v:\n%s",
				i, uni.Opaque, ref.Opaque, h.Format())
		}
		totalUnified += uni.Nodes
		totalReference += ref.Nodes
	}
	if commitPending < n/2 {
		t.Errorf("corpus is not commit-pending-heavy: %d commit-pending transactions over %d histories",
			commitPending, n)
	}
	if totalUnified >= totalReference {
		t.Errorf("unified engine explored %d nodes in aggregate, reference only %d",
			totalUnified, totalReference)
	}
	t.Logf("nodes: unified=%d reference=%d (%.1f%% of reference)",
		totalUnified, totalReference, 100*float64(totalUnified)/float64(totalReference))
}

// TestMemoizedMatchesReferenceUnderBudget stresses agreement when the
// node budget bites: whenever both engines reach a verdict within the
// budget the verdicts must agree, and exhaustion must surface as
// ErrSearchLimit (never a silent wrong verdict). Either engine may
// exhaust a budget the other survives — the two explore the state space
// in different orders — so no implication is asserted between their
// exhaustions.
func TestMemoizedMatchesReferenceUnderBudget(t *testing.T) {
	hs := gen.Corpus(gen.Config{Txs: 8, Objs: 2, MaxOps: 4, PStaleRead: 0.4}, 300, 10_000)
	exhausted, compared := 0, 0
	for i, h := range hs {
		cfg := core.Config{MaxNodes: 300}
		uni, errU := core.Check(h, cfg)
		cfg.DisableMemo = true
		ref, errR := core.Check(h, cfg)

		for _, err := range []error{errU, errR} {
			if err != nil && !errors.Is(err, core.ErrSearchLimit) {
				t.Fatalf("history %d: unexpected error: %v", i, err)
			}
		}
		if errU != nil || errR != nil {
			exhausted++
			continue
		}
		compared++
		if uni.Opaque != ref.Opaque {
			t.Fatalf("history %d: unified says opaque=%v, reference says %v:\n%s",
				i, uni.Opaque, ref.Opaque, h.Format())
		}
	}
	if exhausted == 0 {
		t.Error("corpus produced no budget-exhausted cases; tighten MaxNodes")
	}
	if compared == 0 {
		t.Error("corpus produced no comparable cases; loosen MaxNodes")
	}
}

// TestUnifiedBudgetIsShared: the unified engine charges the whole
// verdict — every completion branch — to one budget, and stops with
// ErrSearchLimit the moment it is exceeded.
func TestUnifiedBudgetIsSharedAndExact(t *testing.T) {
	hs := gen.Corpus(gen.Config{Txs: 6, Objs: 2, MaxOps: 3, PStaleRead: 0.4, PLeaveLive: 0.8}, 50, 77)
	for i, h := range hs {
		full, err := core.Check(h, core.Config{})
		if err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		if full.Nodes < 1 {
			t.Fatalf("history %d: engine reported %d nodes", i, full.Nodes)
		}
		// A budget one short of what the verdict needs must exhaust, and
		// must stop exactly at the budget.
		short, err := core.Check(h, core.Config{MaxNodes: full.Nodes - 1})
		if full.Nodes == 1 {
			continue // nothing to starve
		}
		if !errors.Is(err, core.ErrSearchLimit) {
			t.Fatalf("history %d: err=%v under a %d-node budget (full verdict needs %d)",
				i, err, full.Nodes-1, full.Nodes)
		}
		if short.Nodes != full.Nodes-1 {
			t.Errorf("history %d: exhausted run counted %d nodes, budget was %d",
				i, short.Nodes, full.Nodes-1)
		}
	}
}

// TestFindSerializationDefaults: the exported entry point fills in every
// optional knob — empty Txs short-circuits, and a call with no MaxNodes,
// Nodes counter or Context gets the defaults and a private context.
func TestFindSerializationDefaults(t *testing.T) {
	if ser, err := core.FindSerialization(core.SerializeOptions{}); err != nil || ser == nil || len(ser.Order) != 0 {
		t.Fatalf("empty options: ser=%v err=%v, want the empty serialization", ser, err)
	}
	h := history.History{
		history.Inv(1, "x", "write", 1), history.Ret(1, "x", "write", history.OK),
		history.TryC(1), history.Commit(1),
	}.MustWellFormed()
	ser, err := core.FindSerialization(core.SerializeOptions{
		Source: h,
		Txs:    h.Transactions(),
		Decide: func(history.TxID) core.Decision { return core.DecideCommitted },
	})
	if err != nil || ser == nil {
		t.Fatalf("defaults path: ser=%v err=%v", ser, err)
	}
}

// TestFindSerializationManyTxs: above 32 transactions the searcher
// builds (and on reuse, rebuilds) a transaction index map; a chain of 40
// value-linked writers has exactly one serialization, found twice on one
// shared context.
func TestFindSerializationManyTxs(t *testing.T) {
	var h history.History
	for i := 1; i <= 40; i++ {
		tx := history.TxID(i)
		h = append(h,
			history.Inv(tx, "x", "read", nil), history.Ret(tx, "x", "read", i-1),
			history.Inv(tx, "x", "write", i), history.Ret(tx, "x", "write", history.OK),
			history.TryC(tx), history.Commit(tx))
	}
	h = h.MustWellFormed()
	ctx := core.NewSearchContext()
	for round := range 2 {
		ser, err := core.FindSerialization(core.SerializeOptions{
			Source:  h,
			Txs:     h.Transactions(),
			Decide:  func(history.TxID) core.Decision { return core.DecideCommitted },
			Context: ctx,
		})
		if err != nil || ser == nil {
			t.Fatalf("round %d: ser=%v err=%v", round, ser, err)
		}
		if len(ser.Order) != 40 {
			t.Fatalf("round %d: |order| = %d, want 40", round, len(ser.Order))
		}
	}
}
