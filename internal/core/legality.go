package core

import "math/bits"

// The incremental legality watch: DPLL-style propagation of placement
// feasibility. A candidate's legality from the current object states is
// a pure function of the states of the objects in its footprint (replay
// touches nothing else), so a verdict computed once stays valid until
// one of those objects changes. The searcher tracks changes with version
// counters instead of re-deriving verdicts through the transition cache:
// every state transition — a state-changing placement on the way down
// and its revert on the way back up — bumps the call-local clock and
// stamps the placed transaction's footprint objects (touch), and a
// cached verdict is fresh exactly while no watched object's stamp
// exceeds the verdict's (legalFresh). Bumping on backtrack is what makes
// the stamp test sound: a verdict computed inside a subtree must not
// survive the revert of the states it was computed against.

// stepCand resolves candidate i's placement from state vid: the cached
// illegal verdict when it is still fresh (no transition-cache probe, no
// replay — counted as a LegalSkip), the transition cache otherwise,
// refreshing the watch entry either way. Legal verdicts always go to the
// transition cache: the successor state is vid-specific, while the watch
// only caches the boolean.
func (s *searcher) stepCand(i int, vid stateID) (stateID, bool) {
	if s.legalVer[i] >= 0 && !s.legalVal[i] && s.legalFresh(i) {
		s.ctx.stats.LegalSkips++
		return -1, false
	}
	next, legal := s.ctx.step(vid, s.sigs[i], s.execs[i])
	s.legalVal[i] = legal
	s.legalVer[i] = s.ver
	return next, legal
}

// legalFresh reports whether candidate i's cached verdict predates no
// change of any object in its footprint.
func (s *searcher) legalFresh(i int) bool {
	lv := s.legalVer[i]
	for w, word := range s.foot[i] {
		base := w << 6
		for word != 0 {
			if s.objVer[base+bits.TrailingZeros64(word)] > lv {
				return false
			}
			word &= word - 1
		}
	}
	return true
}

// touch records that the objects in transaction i's footprint may have
// changed: callers invoke it around every state-changing recursion, once
// before (the placement changes the states) and once after (the
// backtrack reverts them).
func (s *searcher) touch(i int) {
	s.ver++
	v := s.ver
	for w, word := range s.foot[i] {
		base := w << 6
		for word != 0 {
			s.objVer[base+bits.TrailingZeros64(word)] = v
			word &= word - 1
		}
	}
}
