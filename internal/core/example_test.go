package core_test

import (
	"fmt"

	"otm/internal/core"
	"otm/internal/history"
	"otm/internal/spec"
)

// ExampleCheck verifies the paper's Figure 1 history: globally atomic
// yet not opaque, because the aborted T2 saw x=1 next to y=2.
func ExampleCheck() {
	h := history.MustParse(
		"w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2")
	res, err := core.Check(h, core.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("opaque:", res.Opaque)
	// Output:
	// opaque: false
}

// ExampleCheck_witness shows the positive case: the checker exhibits the
// serialization order that makes a history opaque.
func ExampleCheck_witness() {
	h := history.MustParse("w1(x,1) tryC1 C1 r2(x)->1 tryC2 C2")
	res, err := core.Check(h, core.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("opaque:", res.Opaque, "witness:", res.Witness.String())
	// Output:
	// opaque: true witness: T1 T2
}

// ExampleCheck_objects supplies a counter specification: concurrent
// committed increments are opaque under the richer semantics (§3.4).
func ExampleCheck_objects() {
	h := history.MustParse("inc1(c)->ok inc2(c)->ok tryC1 C1 tryC2 C2 get3(c)->2 tryC3 C3")
	res, err := core.Check(h, core.Config{
		Objects: spec.Objects{"c": spec.NewCounter(0)},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("opaque:", res.Opaque)
	// Output:
	// opaque: true
}

// ExampleDiagnose locates the first observable violation of Figure 1.
func ExampleDiagnose() {
	h := history.MustParse(
		"w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2")
	d, err := core.Diagnose(h, core.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println(d)
	// Output:
	// not opaque: first observable at event 13 (ret2(y.read)->2); removing any of {T2} restores opacity
}
