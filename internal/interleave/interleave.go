// Package interleave replays deterministic operation schedules against
// STM engines. A schedule is a list of steps, each naming a
// script-local transaction and one action; transactions are begun
// lazily on first use and all steps run from the calling goroutine, so
// the interleaving is exact — the executable counterpart of the paper's
// figure timelines.
//
// The package also ships the canonical schedules of the paper
// (the §2 zombie schedule, the H4 commit-pending/old-snapshot schedule,
// the Theorem 3 scenario, write skew) and a classifier that maps each
// engine's reaction to a behaviour class, producing the cross-engine
// matrix of EXPERIMENTS.md.
package interleave

import (
	"errors"
	"fmt"

	"otm/internal/stm"
)

// Action is the kind of a schedule step.
type Action int

const (
	// Read object Obj in transaction Tx.
	Read Action = iota
	// Write Val to object Obj in transaction Tx.
	Write
	// Commit transaction Tx.
	Commit
	// Abort transaction Tx voluntarily.
	Abort
	// Begin forces transaction Tx to start now (otherwise transactions
	// begin lazily at their first operation). Use it to pin snapshot
	// timestamps.
	Begin
)

// Step is one action of a schedule.
type Step struct {
	Tx     int // script-local transaction index (0-based)
	Action Action
	Obj    int
	Val    int
}

// Result is the outcome of one step.
type Result struct {
	Val int
	Err error
}

// Aborted reports whether the step ended in a forceful or voluntary
// abort error.
func (r Result) Aborted() bool { return errors.Is(r.Err, stm.ErrAborted) }

// Run replays the schedule against a fresh transaction set on tm and
// returns one Result per step. Steps on a transaction that has already
// completed yield ErrAborted results, mirroring the Tx contract.
func Run(tm stm.TM, steps []Step) []Result {
	txs := make(map[int]stm.Tx)
	get := func(i int) stm.Tx {
		tx, ok := txs[i]
		if !ok {
			tx = tm.Begin()
			txs[i] = tx
		}
		return tx
	}
	out := make([]Result, len(steps))
	for i, s := range steps {
		switch s.Action {
		case Begin:
			get(s.Tx)
		case Read:
			v, err := get(s.Tx).Read(s.Obj)
			out[i] = Result{Val: v, Err: err}
		case Write:
			out[i] = Result{Err: get(s.Tx).Write(s.Obj, s.Val)}
		case Commit:
			out[i] = Result{Err: get(s.Tx).Commit()}
		case Abort:
			get(s.Tx).Abort()
		default:
			out[i] = Result{Err: fmt.Errorf("interleave: unknown action %d", s.Action)}
		}
	}
	return out
}

// ZombieSchedule is the §2 schedule: T0 reads object 0, T1 overwrites
// objects 0 and 1 and commits, T0 reads object 1. The last read (index
// 5) is the probe: an opaque single-version engine must abort it, a
// multi-version engine serves the old value, a non-opaque single-version
// engine returns the new value — the zombie.
func ZombieSchedule() []Step {
	return []Step{
		{Tx: 0, Action: Read, Obj: 0},
		{Tx: 1, Action: Write, Obj: 0, Val: 1},
		{Tx: 1, Action: Write, Obj: 1, Val: 1},
		{Tx: 1, Action: Commit},
		{Tx: 0, Action: Read, Obj: 1}, // the probe
		{Tx: 0, Action: Commit},
	}
}

// ZombieProbe is the index of the probing read in ZombieSchedule.
const ZombieProbe = 4

// Behaviour classifies an engine's reaction to the zombie probe.
type Behaviour string

// The three behaviour classes of the probe read.
const (
	BehaviourAbort    Behaviour = "abort"     // forcefully aborted: opacity by invalidation
	BehaviourOldValue Behaviour = "old-value" // old snapshot served: opacity by versioning
	BehaviourZombie   Behaviour = "ZOMBIE"    // new value served: opacity violated
)

// Classify runs ZombieSchedule on tm and classifies the probe outcome.
func Classify(tm stm.TM) Behaviour {
	res := Run(tm, ZombieSchedule())
	probe := res[ZombieProbe]
	switch {
	case probe.Aborted():
		return BehaviourAbort
	case probe.Val == 0:
		return BehaviourOldValue
	default:
		return BehaviourZombie
	}
}

// WriteSkewSchedule: both transactions read objects 0 and 1 (each 50)
// and write 100−110 = −10 into different objects; under serializable
// engines at most one commit may survive with both writes... precisely:
// a serializable outcome forbids BOTH commits succeeding. Probe the two
// Commit results (indices 8 and 9).
func WriteSkewSchedule() []Step {
	return []Step{
		{Tx: 0, Action: Begin},
		{Tx: 1, Action: Begin},
		{Tx: 0, Action: Read, Obj: 0},
		{Tx: 0, Action: Read, Obj: 1},
		{Tx: 1, Action: Read, Obj: 0},
		{Tx: 1, Action: Read, Obj: 1},
		{Tx: 0, Action: Write, Obj: 0, Val: -10},
		{Tx: 1, Action: Write, Obj: 1, Val: -10},
		{Tx: 0, Action: Commit},
		{Tx: 1, Action: Commit},
	}
}

// Theorem3Schedule builds the E9 scenario for k objects: T0 reads
// objects 0..k/2−1, T1 writes object k−1 and commits, T0 reads object
// k−1 (the measured/probed step, at index k/2+2).
func Theorem3Schedule(k int) []Step {
	var steps []Step
	for i := 0; i < k/2; i++ {
		steps = append(steps, Step{Tx: 0, Action: Read, Obj: i})
	}
	steps = append(steps,
		Step{Tx: 1, Action: Write, Obj: k - 1, Val: 1},
		Step{Tx: 1, Action: Commit},
		Step{Tx: 0, Action: Read, Obj: k - 1},
	)
	return steps
}
