package interleave

import (
	"testing"

	"otm/internal/bench"
	"otm/internal/core"
	"otm/internal/opg"
	"otm/internal/stm"
)

// TestZombieBehaviourMatrix replays the §2 schedule against every
// engine and pins each to its behaviour class — the cross-engine matrix
// of EXPERIMENTS.md. Single-version opaque engines abort the probe;
// multi-version engines serve the old snapshot; gatm alone zombies.
func TestZombieBehaviourMatrix(t *testing.T) {
	want := map[string]Behaviour{
		"dstm":  BehaviourAbort,
		"tl2":   BehaviourAbort,
		"tl2x":  BehaviourAbort, // the extension fails: object 0 changed
		"vstm":  BehaviourAbort,
		"mvstm": BehaviourOldValue,
		"sistm": BehaviourOldValue,
		"gatm":  BehaviourZombie,
	}
	for _, e := range bench.Engines() {
		got := Classify(e.New(2))
		if got != want[e.Name] {
			t.Errorf("%s: behaviour %s, want %s", e.Name, got, want[e.Name])
		}
	}
}

// TestWriteSkewMatrix: exactly the snapshot-isolation engine lets both
// write-skew commits through.
func TestWriteSkewMatrix(t *testing.T) {
	for _, e := range bench.Engines() {
		tm := e.New(2)
		if err := stm.DirectWrite(tm, 0, 50); err != nil {
			t.Fatal(err)
		}
		if err := stm.DirectWrite(tm, 1, 50); err != nil {
			t.Fatal(err)
		}
		res := Run(tm, WriteSkewSchedule())
		c0, c1 := res[8], res[9]
		bothCommitted := c0.Err == nil && c1.Err == nil
		if e.Name == "sistm" {
			if !bothCommitted {
				t.Errorf("sistm must admit write skew (got %v, %v)", c0.Err, c1.Err)
			}
			continue
		}
		if bothCommitted {
			t.Errorf("%s admitted write skew", e.Name)
		}
	}
}

// TestTheorem3ScheduleShapes mirrors the E9 probe through the schedule
// driver: dstm serves the read after Θ(k) validation, tl2 aborts it.
func TestTheorem3ScheduleShapes(t *testing.T) {
	for _, name := range []string{"dstm", "tl2"} {
		e, err := bench.EngineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		const k = 16
		res := Run(e.New(k), Theorem3Schedule(k))
		probe := res[len(res)-1]
		switch name {
		case "dstm":
			if probe.Err != nil || probe.Val != 1 {
				t.Errorf("dstm probe = %+v, want successful read of 1", probe)
			}
		case "tl2":
			if !probe.Aborted() {
				t.Errorf("tl2 probe = %+v, want non-progressive abort", probe)
			}
		}
	}
}

func TestRunLazyBeginAndCompletedTx(t *testing.T) {
	e, err := bench.EngineByName("tl2")
	if err != nil {
		t.Fatal(err)
	}
	res := Run(e.New(2), []Step{
		{Tx: 0, Action: Write, Obj: 0, Val: 9},
		{Tx: 0, Action: Commit},
		{Tx: 0, Action: Read, Obj: 0}, // after completion: ErrAborted
		{Tx: 1, Action: Read, Obj: 0},
		{Tx: 1, Action: Abort},
	})
	if res[1].Err != nil {
		t.Fatalf("commit failed: %v", res[1].Err)
	}
	if !res[2].Aborted() {
		t.Error("operation after completion must report ErrAborted")
	}
	if res[3].Err != nil || res[3].Val != 9 {
		t.Errorf("fresh transaction read = %+v", res[3])
	}
}

func TestRunUnknownAction(t *testing.T) {
	e, _ := bench.EngineByName("tl2")
	res := Run(e.New(1), []Step{{Tx: 0, Action: Action(99)}})
	if res[0].Err == nil {
		t.Error("unknown action must error")
	}
}

// TestEngineRecorderCheckerTriangle closes the loop end to end: run a
// deterministic schedule on every engine under the recorder, then check
// the recorded history with BOTH the definitional checker and the
// Theorem 2 graph characterization. The two must agree with each other
// on every engine, and report opaque for the opaque engines. Initial
// reads of 0 are attributed to an initializing transaction (WithInit);
// workload write values are distinct, so the unique-writes assumption of
// the characterization holds.
func TestEngineRecorderCheckerTriangle(t *testing.T) {
	schedule := []Step{
		{Tx: 0, Action: Read, Obj: 0},
		{Tx: 1, Action: Write, Obj: 0, Val: 101},
		{Tx: 1, Action: Write, Obj: 1, Val: 102},
		{Tx: 1, Action: Commit},
		{Tx: 0, Action: Read, Obj: 1},
		{Tx: 0, Action: Commit},
		{Tx: 2, Action: Read, Obj: 1},
		{Tx: 2, Action: Write, Obj: 1, Val: 103},
		{Tx: 2, Action: Commit},
	}
	for _, e := range bench.Engines() {
		rec := stm.NewRecorder(e.New(2))
		Run(rec, schedule)
		h := opg.WithInit(rec.History(), 0)

		defRes, err := core.Opaque(h)
		if err != nil {
			t.Fatalf("%s: core: %v\n%s", e.Name, err, h.Format())
		}
		gRes, err := opg.CheckTheorem2(h)
		if err != nil {
			t.Fatalf("%s: opg: %v\n%s", e.Name, err, h.Format())
		}
		if defRes.Opaque != gRes.Opaque {
			t.Fatalf("%s: checkers disagree (def=%v thm2=%v):\n%s",
				e.Name, defRes.Opaque, gRes.Opaque, h.Format())
		}
		if e.Opaque && !defRes.Opaque {
			t.Errorf("%s: opaque engine produced a non-opaque history:\n%s", e.Name, h.Format())
		}
		if e.Name == "gatm" && defRes.Opaque {
			t.Errorf("gatm on the zombie schedule must record a non-opaque history:\n%s", h.Format())
		}
	}
}

// TestBeginPinsSnapshot: an explicit Begin before a competing commit
// pins the multi-version snapshot.
func TestBeginPinsSnapshot(t *testing.T) {
	e, err := bench.EngineByName("mvstm")
	if err != nil {
		t.Fatal(err)
	}
	tm := e.New(1)
	res := Run(tm, []Step{
		{Tx: 0, Action: Begin},
		{Tx: 1, Action: Write, Obj: 0, Val: 7},
		{Tx: 1, Action: Commit},
		{Tx: 0, Action: Read, Obj: 0},
	})
	if res[3].Err != nil || res[3].Val != 0 {
		t.Errorf("pinned snapshot read = %+v, want 0", res[3])
	}
}
