// Package telemetry is the observability substrate of the monitoring
// control plane: a registry of named, labeled metrics backed by atomic
// counters and gauges, rendered in two wire formats from one source of
// truth — the Prometheus text exposition format (for scraping) and an
// expvar-style flat JSON object (for humans and tests). It is stdlib
// only, by design: the control plane must not drag a metrics dependency
// into a checker library.
//
// Two metric classes exist, each in a stored and a functional flavor:
//
//   - Counter / CounterFunc: monotonically increasing totals
//     (events seen, drops, search nodes). The functional flavor reads
//     its value on demand, which is how the control plane exports the
//     monitor's lock-free Stats counters without copying them on a
//     schedule.
//   - Gauge / GaugeFunc: instantaneous values (queue depth, live-suffix
//     length, heap residency).
//
// Registration is strict: metric and label names must match the
// Prometheus grammar, and registering the same (name, labels) sample
// twice panics, like flag redefinition — a duplicate is a wiring bug,
// not a runtime condition. Reads never lock the registry's samples:
// stored values are atomics and functional values call straight into
// the producer, so a scrape perturbs the monitored system only by the
// cost the producer's read path chooses to pay.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a sample. Labels are
// rendered in registration order, which the registry also uses for
// sample identity.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing stored value. The zero value is
// usable, but counters are normally minted by Registry.Counter so they
// render.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be ≥ 0 for the Prometheus
// contract to hold; Add does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a stored instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

const (
	kindCounter = "counter"
	kindGauge   = "gauge"
)

// sample is one registered (name, labels) series.
type sample struct {
	labels []Label
	key    string // rendered label block, for identity and output
	value  func() float64
	isInt  bool // render without a decimal point (counters from int64 sources)
}

// family groups the samples of one metric name under one HELP/TYPE.
type family struct {
	name    string
	help    string
	kind    string
	samples []*sample
	byKey   map[string]*sample
}

// Registry holds the metric families of one exporter.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // sorted family names, maintained on registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers (or panics on a duplicate of) a stored counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, labels, func() float64 { return float64(c.Value()) }, true)
	return c
}

// CounterFunc registers a counter whose value is read from fn at render
// time. fn must be monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, kindCounter, labels, func() float64 { return float64(fn()) }, true)
}

// Gauge registers a stored gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, labels, g.Value, false)
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at render
// time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, fn, false)
}

func (r *Registry) register(name, help, kind string, labels []Label, value func() float64, isInt bool) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Name) {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label name %q", name, l.Name))
		}
	}
	s := &sample{labels: labels, key: labelBlock(labels), value: value, isInt: isInt}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*sample)}
		r.families[name] = f
		i := sort.SearchStrings(r.names, name)
		r.names = append(r.names, "")
		copy(r.names[i+1:], r.names[i:])
		r.names[i] = name
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	if _, dup := f.byKey[s.key]; dup {
		panic(fmt.Sprintf("telemetry: duplicate sample %s%s", name, s.key))
	}
	f.byKey[s.key] = s
	f.samples = append(f.samples, s)
}

// validName checks the Prometheus metric/label name grammar:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelBlock renders labels as {a="x",b="y"}, or "" for none. Values are
// escaped per the exposition format (backslash, quote, newline).
func labelBlock(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func formatValue(v float64, isInt bool) string {
	if isInt {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered sample in the Prometheus text
// exposition format (version 0.0.4), families sorted by name, each
// preceded by its # HELP and # TYPE lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder
	for _, name := range r.names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.samples {
			fmt.Fprintf(&b, "%s%s %s\n", f.name, s.key, formatValue(s.value(), s.isInt))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders every sample as one flat JSON object in expvar
// style: each key is the sample's full identity (name plus label block)
// and each value its current reading. Keys are emitted sorted, so the
// output is deterministic for a quiesced registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	flat := make(map[string]any)
	for _, name := range r.names {
		f := r.families[name]
		for _, s := range f.samples {
			v := s.value()
			if s.isInt {
				flat[f.name+s.key] = int64(v)
			} else {
				flat[f.name+s.key] = v
			}
		}
	}
	r.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flat)
}

// Handler serves the registry over HTTP: the Prometheus text format by
// default, the JSON rendering when the request asks for it with
// ?format=json (or an Accept header preferring application/json).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
