package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("otm_test_total", "a counter")
	g := r.Gauge("otm_test_depth", "a gauge")
	c.Inc()
	c.Add(41)
	g.Set(2.5)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("otm_events_total", "events seen", L("session", "s0"))
	c.Add(7)
	r.CounterFunc("otm_events_total", "events seen", func() int64 { return 9 }, L("session", "s1"))
	g := r.Gauge("otm_depth", "queue depth")
	g.Set(3)
	r.GaugeFunc("otm_rate", "events per second", func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP otm_depth queue depth
# TYPE otm_depth gauge
otm_depth 3
# HELP otm_events_total events seen
# TYPE otm_events_total counter
otm_events_total{session="s0"} 7
otm_events_total{session="s1"} 9
# HELP otm_rate events per second
# TYPE otm_rate gauge
otm_rate 1.5
`
	if b.String() != want {
		t.Fatalf("prometheus rendering:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestJSONRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("otm_a_total", "", L("x", "1")).Add(5)
	r.GaugeFunc("otm_b", "", func() float64 { return 0.25 })
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if got[`otm_a_total{x="1"}`] != float64(5) {
		t.Fatalf("counter sample = %v, want 5", got[`otm_a_total{x="1"}`])
	}
	if got["otm_b"] != 0.25 {
		t.Fatalf("gauge sample = %v, want 0.25", got["otm_b"])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("otm_esc", "", L("path", `a\b"c`+"\n"))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `otm_esc{path="a\\b\"c\n"} 0`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestDuplicateSamplePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("otm_dup_total", "", L("s", "x"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("otm_dup_total", "", L("s", "x"))
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("otm_kind", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("otm_kind", "", L("s", "x"))
}

func TestInvalidNamesPanic(t *testing.T) {
	for _, name := range []string{"", "0abc", "with-dash", "sp ace"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q did not panic", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid label name did not panic")
		}
	}()
	NewRegistry().Counter("otm_ok", "", L("bad-label", "v"))
}

func TestValidNameAccepts(t *testing.T) {
	for _, name := range []string{"a", "otm_x:y", "_hidden", "A9"} {
		if !validName(name) {
			t.Errorf("validName(%q) = false, want true", name)
		}
	}
}

func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("otm_h_total", "h").Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q, want text/plain...", ct)
	}
	buf := make([]byte, 1024)
	n, _ := res.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "otm_h_total 3") {
		t.Fatalf("prometheus body missing sample:\n%s", buf[:n])
	}

	res2, err := srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	if ct := res2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type = %q", ct)
	}
	var got map[string]any
	if err := json.NewDecoder(res2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["otm_h_total"] != float64(3) {
		t.Fatalf("json sample = %v, want 3", got["otm_h_total"])
	}

	res3, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	res3.Body.Close()
	if res3.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", res3.StatusCode)
	}
}

func TestAcceptHeaderSelectsJSON(t *testing.T) {
	r := NewRegistry()
	r.Gauge("otm_aj", "").Set(1)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json")
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q, want application/json", ct)
	}
}

// TestConcurrentScrape pins that rendering is safe against concurrent
// registration and updates (the -race matrix runs this).
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("otm_conc_total", "")
	g := r.Gauge("otm_conc_depth", "")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			g.Set(float64(i))
		}
	}()
	for i := 0; i < 50; i++ {
		// Registration of fresh samples races the updates above.
		r.Gauge("otm_conc_extra", "", L("i", strconv.Itoa(i))).Set(float64(i))
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
