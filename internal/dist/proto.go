// Package dist is the sharded coordinator/worker batch-verification
// service: it partitions a history corpus into shards, leases shards to
// workers over an HTTP/JSON API, collects per-shard verdict logs written
// through storage.FS, and merges them into one in-order verdict stream
// that is byte-identical to a single-process `opacheck -parallel` run
// over the same corpus.
//
// The fault model is standard at-least-once dispatch: a shard lease that
// is not completed or heartbeat-extended before its deadline is requeued
// (a killed worker loses its shards, nothing else), explicit failures
// are retried with exponential backoff up to a bound, and every piece of
// durable state — the shard manifest, the per-shard verdict logs, the
// done-marker checkpoints — is committed atomically through
// storage.FS, so a coordinator restarted over the same store resumes
// exactly where it stopped: shards with a committed done marker are
// never re-checked, everything else is re-leased. Checking is
// deterministic per history, so re-running a shard reproduces the same
// verdict bytes, which is what makes at-least-once dispatch safe.
package dist

// Wire types of the coordinator's HTTP/JSON API. Workers POST JSON
// bodies to /v1/lease, /v1/heartbeat, /v1/complete and /v1/fail, and GET
// /v1/status; every response is JSON.

// LeaseRequest asks the coordinator for a shard to check.
type LeaseRequest struct {
	// Worker is a display name for logs and the status page.
	Worker string `json:"worker"`
}

// LeaseResponse is the coordinator's answer to a lease request: exactly
// one of Lease (work to do), WaitMillis (try again later) or Done (the
// run is over — successfully, or fatally if RunFailed is set).
type LeaseResponse struct {
	Done      bool   `json:"done,omitempty"`
	RunFailed string `json:"run_failed,omitempty"`
	// WaitMillis asks the worker to poll again after this long: every
	// pending shard is leased out (or backing off) right now.
	WaitMillis int    `json:"wait_millis,omitempty"`
	Lease      *Lease `json:"lease,omitempty"`
}

// Lease is one granted shard assignment.
type Lease struct {
	// ID names this grant; heartbeat, complete and fail all quote it.
	// A lease that expires is reassigned under a new ID, and messages
	// quoting the old ID are ignored — that is what makes worker-side
	// completion idempotent.
	ID string `json:"id"`
	// Shard is the work itself (see Manifest for the two shard kinds).
	Shard ShardSpec `json:"shard"`
	// Gen is the manifest's generator spec, set for generator-defined
	// corpora: the worker regenerates its slice instead of reading it.
	Gen *GenSpec `json:"gen,omitempty"`
	// Label prefixes verdict sources ("label:lineno"), matching what a
	// single-process opacheck run over the same corpus would print.
	Label string `json:"label"`
	// StoreURI locates the shared store holding shard inputs and
	// receiving verdict logs; the worker resolves it with storage.Resolve.
	StoreURI string `json:"store_uri"`
	// CounterObjs and MaxNodes mirror opacheck's -counter and -maxnodes.
	CounterObjs string `json:"counter_objs,omitempty"`
	MaxNodes    int    `json:"max_nodes,omitempty"`
	// ExpiresMillis is the lease duration; a worker that cannot complete
	// within it must heartbeat or lose the shard. HeartbeatMillis is the
	// suggested heartbeat period (a fraction of the lease).
	ExpiresMillis   int `json:"expires_millis"`
	HeartbeatMillis int `json:"heartbeat_millis"`
}

// HeartbeatRequest extends a lease.
type HeartbeatRequest struct {
	Lease string `json:"lease"`
}

// CompleteRequest reports a finished shard: the worker has committed the
// verdict log named in Record to the store.
type CompleteRequest struct {
	Lease  string     `json:"lease"`
	Record DoneRecord `json:"record"`
}

// FailRequest reports that the worker could not finish the shard (e.g.
// the verdict sink failed); the coordinator requeues it with backoff.
type FailRequest struct {
	Lease string `json:"lease"`
	Error string `json:"error"`
}

// Ack answers heartbeat, complete and fail. Ignored is set when the
// quoted lease is no longer current (expired and reassigned, or the
// shard already completed); the worker should drop the shard silently.
type Ack struct {
	OK      bool `json:"ok"`
	Ignored bool `json:"ignored,omitempty"`
}

// Status is the coordinator's progress snapshot (GET /v1/status).
type Status struct {
	Run         string  `json:"run"`
	Shards      int     `json:"shards"`
	ShardsDone  int     `json:"shards_done"`
	Leased      int     `json:"leased"`
	Histories   int     `json:"histories"`
	Opaque      int     `json:"opaque"`
	NonOpaque   int     `json:"non_opaque"`
	Errored     int     `json:"errored"`
	Nodes       int     `json:"nodes"`
	Retries     int     `json:"retries"`
	RunFailed   string  `json:"run_failed,omitempty"`
	ElapsedSecs float64 `json:"elapsed_secs"`
}
