package dist

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"otm/internal/storage"
)

// BenchmarkDistributed measures end-to-end distributed throughput: plan
// a generated corpus, run W in-process workers against the HTTP API, and
// merge. Reported as shards/s and histories/s so benchjson can track
// coordination overhead separately from raw checking speed.
func BenchmarkDistributed(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			const histories = 512
			spec := &GenSpec{N: histories, Seed: 42, Txs: 3, Objs: 2, MaxOps: 3, PStaleRead: 0.3}
			b.ReportAllocs()
			var shards int
			start := time.Now()
			for i := 0; i < b.N; i++ {
				storeURI := fmt.Sprintf("mem://bench-dist-%d-%d", workers, i)
				store, err := storage.Resolve(storeURI)
				if err != nil {
					b.Fatal(err)
				}
				man, err := Plan(store, PlanOptions{Gen: spec, ShardSize: 64})
				if err != nil {
					b.Fatal(err)
				}
				shards = len(man.Shards)
				cp, _ := LoadCheckpoint(store, man)
				c := NewCoordinator(store, man, cp, CoordinatorOptions{StoreURI: storeURI})
				srv := httptest.NewServer(c.Handler())
				var wg sync.WaitGroup
				for j := 0; j < workers; j++ {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						w := &Worker{Coordinator: srv.URL, Name: fmt.Sprintf("b%d", j), Shared: true}
						if _, err := w.Run(context.Background()); err != nil {
							b.Errorf("worker %d: %v", j, err)
						}
					}(j)
				}
				if err := c.MergeTo(io.Discard); err != nil {
					b.Fatal(err)
				}
				wg.Wait()
				srv.Close()
			}
			secs := time.Since(start).Seconds()
			b.ReportMetric(float64(b.N*shards)/secs, "shards/s")
			b.ReportMetric(float64(b.N*histories)/secs, "histories/s")
		})
	}
}
