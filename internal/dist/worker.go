package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"otm/internal/checkpool"
	"otm/internal/core"
	"otm/internal/gen"
	"otm/internal/history"
	"otm/internal/spec"
	"otm/internal/storage"
)

// Worker pulls shard leases from a coordinator, checks them on a
// checkpool.Pool, writes each shard's verdict log to the shared store
// (atomically — a crashed or failed shard commits nothing), and reports
// back. It is the thin distributed wrapper around the PR 7 engine: one
// worker process is morally one `opacheck -parallel` whose input arrives
// in leased slices.
type Worker struct {
	// Coordinator is the coordinator's base URL (e.g.
	// "http://127.0.0.1:8077").
	Coordinator string
	// Name identifies the worker in coordinator logs (default "worker").
	Name string
	// Parallel is the checkpool width per shard (default 1: distributed
	// runs usually scale by adding workers, not by widening one).
	Parallel int
	// Shared backs all of this worker's shards by one core.SharedTables,
	// the `opacheck -shared` engine: states interned once per worker
	// process instead of once per shard.
	Shared bool
	// HTTP overrides the API client (default http.DefaultClient).
	HTTP *http.Client
	// Logf receives progress lines (default: none).
	Logf func(format string, args ...any)
	// ConnectGrace bounds how long transient coordinator errors
	// (connection refused at startup, restarts) are retried before the
	// worker gives up (default 15s).
	ConnectGrace time.Duration

	// store caches the resolved StoreURI.
	store    storage.FS
	storeURI string
	shared   *core.SharedTables
	// runSearch accumulates per-context search counters across shards;
	// see addSearchStats.
	runSearch core.Stats
}

// RunStats summarizes a worker's run: the same per-worker totals and
// search-table counters `opacheck -parallel` prints in its summary.
type RunStats struct {
	Shards    int
	Histories int
	Opaque    int
	NonOpaque int
	Errored   int
	Nodes     int
	// Search aggregates the checkpool search-context counters across
	// all shards (with Shared, pool-wide insert counters are counted
	// once, from the shared tables).
	Search core.Stats
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run processes leases until the coordinator reports the run done, ctx
// is cancelled, or the coordinator becomes unreachable past
// ConnectGrace. The returned stats cover everything this worker checked,
// including the aggregated search-table counters.
func (w *Worker) Run(ctx context.Context) (stats RunStats, err error) {
	defer func() { stats.Search = w.Stats() }()
	if w.Name == "" {
		w.Name = "worker"
	}
	if w.Parallel < 1 {
		w.Parallel = 1
	}
	if w.HTTP == nil {
		w.HTTP = http.DefaultClient
	}
	if w.ConnectGrace <= 0 {
		w.ConnectGrace = 15 * time.Second
	}
	if w.Shared {
		w.shared = core.NewSharedTables()
	}

	downSince := time.Time{}
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		var resp LeaseResponse
		err := w.post(ctx, "/v1/lease", LeaseRequest{Worker: w.Name}, &resp)
		if err != nil {
			// Transient coordinator outages (startup races, restarts
			// from checkpoint) are retried within the grace window.
			if downSince.IsZero() {
				downSince = time.Now()
			}
			if time.Since(downSince) > w.ConnectGrace {
				return stats, fmt.Errorf("dist: coordinator unreachable for %v: %w", w.ConnectGrace, err)
			}
			if !sleep(ctx, 200*time.Millisecond) {
				return stats, ctx.Err()
			}
			continue
		}
		downSince = time.Time{}
		switch {
		case resp.Done && resp.RunFailed != "":
			w.logf("dist: %s: run failed: %s", w.Name, resp.RunFailed)
			return stats, fmt.Errorf("dist: run failed: %s", resp.RunFailed)
		case resp.Done:
			w.logf("dist: %s: run complete (%d shards, %d histories checked here)", w.Name, stats.Shards, stats.Histories)
			return stats, nil
		case resp.Lease == nil:
			wait := time.Duration(resp.WaitMillis) * time.Millisecond
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			if !sleep(ctx, wait) {
				return stats, ctx.Err()
			}
		default:
			w.processShard(ctx, resp.Lease, &stats)
		}
	}
}

// processShard checks one leased shard end to end. Failures — storage,
// sink writes, cancellation — abort the uncommitted log and report
// /v1/fail so the coordinator requeues the shard cleanly instead of
// trusting a partial log.
func (w *Worker) processShard(ctx context.Context, lease *Lease, stats *RunStats) {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeats keep the lease alive for as long as the shard is being
	// checked; a lease the coordinator no longer recognizes cancels the
	// work (it has been reassigned — finishing it would be wasted).
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		period := time.Duration(lease.HeartbeatMillis) * time.Millisecond
		if period <= 0 {
			period = time.Second
		}
		for {
			if !sleep(shardCtx, period) {
				return
			}
			var ack Ack
			if err := w.post(shardCtx, "/v1/heartbeat", HeartbeatRequest{Lease: lease.ID}, &ack); err == nil && ack.Ignored {
				w.logf("dist: %s: lease %s expired under us; dropping shard %d", w.Name, lease.ID, lease.Shard.Index)
				cancel()
				return
			}
		}
	}()
	defer func() { cancel(); <-hbDone }()

	rec, err := w.checkShard(shardCtx, lease)
	if err != nil {
		w.logf("dist: %s: shard %d failed: %v", w.Name, lease.Shard.Index, err)
		var ack Ack
		// Best effort over the parent ctx: shardCtx may be the cause.
		if err2 := w.post(ctx, "/v1/fail", FailRequest{Lease: lease.ID, Error: err.Error()}, &ack); err2 != nil {
			w.logf("dist: %s: reporting failure: %v", w.Name, err2)
		}
		return
	}
	var ack Ack
	if err := w.post(ctx, "/v1/complete", CompleteRequest{Lease: lease.ID, Record: rec}, &ack); err != nil {
		w.logf("dist: %s: reporting completion of shard %d: %v", w.Name, lease.Shard.Index, err)
		return
	}
	if ack.Ignored {
		w.logf("dist: %s: shard %d completion ignored (lease lost)", w.Name, lease.Shard.Index)
		return
	}
	stats.Shards++
	stats.Histories += rec.Histories
	stats.Opaque += rec.Opaque
	stats.NonOpaque += rec.NonOpaque
	stats.Errored += rec.Errored
	stats.Nodes += rec.Nodes
}

// checkShard runs the shard through the pool and commits its verdict
// log. The log commit happens before the done record is built, so a
// record reported complete always names a fully committed log.
func (w *Worker) checkShard(ctx context.Context, lease *Lease) (DoneRecord, error) {
	store, err := w.resolveStore(lease.StoreURI)
	if err != nil {
		return DoneRecord{}, err
	}
	in := make(chan checkpool.Item)
	feedErr := make(chan error, 1)
	go func() {
		defer close(in)
		feedErr <- w.feed(ctx, in, store, lease)
	}()

	var poolStats core.Stats
	pool := checkpool.New(checkpool.Options{
		Workers: w.Parallel,
		Config: core.Config{
			Objects:  counterObjects(lease.CounterObjs),
			MaxNodes: lease.MaxNodes,
		},
		Stats:         &poolStats,
		SharedContext: w.shared,
	})

	logName := fmt.Sprintf(shardLogFmt, lease.Shard.Index, lease.ID)
	sink, err := store.Create(logName)
	if err != nil {
		return DoneRecord{}, err
	}
	rec := DoneRecord{Shard: lease.Shard.Index, Log: logName, Worker: w.Name}
	bw := bufio.NewWriter(sink)
	runErr := pool.RunTo(ctx, in, func(v checkpool.Verdict) error {
		rec.Histories++
		rec.Nodes += v.Result.Nodes
		switch {
		case v.Err != nil:
			rec.Errored++
		case v.Result.Opaque:
			rec.Opaque++
		default:
			rec.NonOpaque++
		}
		_, err := bw.WriteString(v.Line() + "\n")
		return err
	})
	if runErr == nil {
		runErr = <-feedErr
	}
	if runErr == nil {
		runErr = bw.Flush()
	}
	if runErr != nil {
		sink.Abort()
		return DoneRecord{}, runErr
	}
	if err := sink.Close(); err != nil {
		return DoneRecord{}, err
	}
	w.addSearchStats(poolStats)
	return rec, nil
}

// feed streams the shard's items into the pool: parsed lines of the
// shard's input object for file corpora, regenerated histories for
// generator corpora.
func (w *Worker) feed(ctx context.Context, in chan<- checkpool.Item, store storage.FS, lease *Lease) error {
	send := func(item checkpool.Item) bool {
		select {
		case in <- item:
			return true
		case <-ctx.Done():
			return false
		}
	}
	if lease.Gen != nil {
		cfg := lease.Gen.Config()
		for j := lease.Shard.Lo; j < lease.Shard.Hi; j++ {
			item := checkpool.Item{
				Source:  fmt.Sprintf("%s:%d", lease.Label, j),
				History: gen.History(cfg, lease.Gen.Seed+int64(j)),
			}
			if !send(item) {
				return ctx.Err()
			}
		}
		return nil
	}

	r, err := store.Open(lease.Shard.Input)
	if err != nil {
		return err
	}
	defer r.Close()
	// Mirrors opacheck's feedLines: skip blank and comment lines, turn
	// parse failures into errored items, label "label:lineno" with the
	// corpus-global line number so merged logs match a single-process
	// run byte for byte.
	br := bufio.NewReader(r)
	for lineno := lease.Shard.StartLine; ; lineno++ {
		line, err := br.ReadString('\n')
		if line != "" {
			line = strings.TrimSpace(line)
			if line != "" && !strings.HasPrefix(line, "#") {
				item := checkpool.Item{Source: fmt.Sprintf("%s:%d", lease.Label, lineno)}
				item.History, item.Err = history.Parse(line)
				if !send(item) {
					return ctx.Err()
				}
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func (w *Worker) resolveStore(uri string) (storage.FS, error) {
	if w.store != nil && w.storeURI == uri {
		return w.store, nil
	}
	store, err := storage.Resolve(uri)
	if err != nil {
		return nil, err
	}
	w.store, w.storeURI = store, uri
	return store, nil
}

// addSearchStats folds one shard's pool counters into the run total.
// With shared tables the pool adds a cumulative snapshot of the shared
// insert counters to every run's stats; summing those across shards
// would multiply-count them. The tables are quiescent once RunTo has
// returned (every pool worker retired), so the current snapshot equals
// what the pool added — subtract it here, leaving this shard's
// per-context contributions (including memo inserts for context-owned
// problems), and let Stats() re-add the final snapshot exactly once.
func (w *Worker) addSearchStats(poolStats core.Stats) {
	if w.shared != nil {
		snap := w.shared.Stats()
		poolStats.States -= snap.States
		poolStats.Atoms -= snap.Atoms
		poolStats.TxSigs -= snap.TxSigs
		poolStats.Problems -= snap.Problems
		poolStats.MemoEntries -= snap.MemoEntries
		poolStats.Flushes -= snap.Flushes
	}
	w.runSearch.Add(poolStats)
}

// Stats returns the worker's aggregated search-table counters; valid
// once Run has returned.
func (w *Worker) Stats() core.Stats {
	s := w.runSearch
	if w.shared != nil {
		s.Add(w.shared.Stats())
	}
	return s
}

// post sends one API request and decodes the JSON response into out.
func (w *Worker) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimSuffix(w.Coordinator, "/")+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("dist: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// counterObjects mirrors opacheck's -counter flag: the named objects are
// counters, everything else defaults to a register inside the checker.
func counterObjects(counterObjs string) spec.Objects {
	objs := spec.Objects{}
	for _, name := range strings.Split(counterObjs, ",") {
		if name = strings.TrimSpace(name); name != "" {
			objs[history.ObjID(name)] = spec.NewCounter(0)
		}
	}
	return objs
}

// sleep waits d or until ctx is done; it reports whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
