package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"otm/internal/storage"
)

// CoordinatorOptions tunes a Coordinator.
type CoordinatorOptions struct {
	// StoreURI is handed to workers so they can resolve the shared store
	// themselves (file:// for multi-process runs, mem:// in-process).
	StoreURI string
	// LeaseFor is how long a granted shard stays assigned without a
	// heartbeat (default 30s). Heartbeats extend it by the same amount.
	LeaseFor time.Duration
	// MaxRetries bounds how many times one shard may be requeued —
	// lease expiries and explicit failures both count — before the whole
	// run is declared failed (default 3).
	MaxRetries int
	// Backoff is the base of the exponential backoff applied after an
	// explicit shard failure: the shard becomes leasable again after
	// Backoff << (retries-1) (default 250ms). Expired leases requeue
	// immediately — the worker died; another should take over at once.
	Backoff time.Duration
	// Logf receives progress lines (default: none).
	Logf func(format string, args ...any)
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.LeaseFor <= 0 {
		o.LeaseFor = 30 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 250 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// shardQueueEntry is one pending shard: leasable once notBefore has
// passed.
type shardQueueEntry struct {
	shard     int
	retries   int
	notBefore time.Time
}

// activeLease is a granted, unexpired shard assignment.
type activeLease struct {
	id      string
	shard   int
	retries int
	worker  string
	expires time.Time
}

// Coordinator owns one run: it leases the manifest's pending shards to
// workers, requeues expired leases, checkpoints completions through the
// store, and streams the merged in-order verdict log. Construct with
// NewCoordinator (after Plan or LoadManifest+LoadCheckpoint), expose
// Handler over HTTP, and call MergeTo to block until the run completes.
type Coordinator struct {
	opts  CoordinatorOptions
	store storage.FS
	man   *Manifest

	mu      sync.Mutex
	cond    *sync.Cond // broadcast on completion, failure, requeue
	pending []shardQueueEntry
	leases  map[string]*activeLease
	cp      *Checkpoint
	nextID  int
	retries int    // total requeues, for Status
	failed  string // non-empty once the run is fatally failed
	started time.Time
}

// NewCoordinator resumes (or starts) the run described by man over
// store: shards with a committed done marker in cp are final, everything
// else is queued for leasing.
func NewCoordinator(store storage.FS, man *Manifest, cp *Checkpoint, opts CoordinatorOptions) *Coordinator {
	c := &Coordinator{
		opts:    opts.withDefaults(),
		store:   store,
		man:     man,
		leases:  map[string]*activeLease{},
		cp:      cp,
		started: time.Now(),
	}
	c.cond = sync.NewCond(&c.mu)
	for _, idx := range cp.Pending(man) {
		c.pending = append(c.pending, shardQueueEntry{shard: idx})
	}
	c.opts.Logf("dist: run %s: %d shards, %d already done, %d pending",
		man.Run, len(man.Shards), cp.NumDone(), len(c.pending))
	return c
}

// finished reports run completion (all shards done, or fatal failure).
// Callers hold c.mu.
func (c *Coordinator) finished() bool {
	return c.failed != "" || c.cp.NumDone() == len(c.man.Shards)
}

// sweep requeues expired leases. Callers hold c.mu.
func (c *Coordinator) sweep(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(c.leases, id)
		c.requeue(l, now, "lease expired", false)
	}
}

// requeue returns a lost shard to the queue, counting the attempt and
// failing the run once the retry bound is exhausted. Explicit failures
// back off exponentially; expiries requeue immediately. Callers hold
// c.mu.
func (c *Coordinator) requeue(l *activeLease, now time.Time, cause string, backoff bool) {
	retries := l.retries + 1
	c.retries++
	if retries > c.opts.MaxRetries {
		c.failed = fmt.Sprintf("shard %d: %s after %d attempts", l.shard, cause, retries)
		c.opts.Logf("dist: run failed: %s", c.failed)
		c.cond.Broadcast()
		return
	}
	entry := shardQueueEntry{shard: l.shard, retries: retries}
	if backoff {
		entry.notBefore = now.Add(c.opts.Backoff << (retries - 1))
	}
	c.pending = append(c.pending, entry)
	c.opts.Logf("dist: shard %d requeued (%s, attempt %d/%d)", l.shard, cause, retries, c.opts.MaxRetries+1)
	c.cond.Broadcast()
}

// grant leases the first leasable pending shard. Callers hold c.mu.
func (c *Coordinator) grant(worker string, now time.Time) *Lease {
	for i, e := range c.pending {
		if now.Before(e.notBefore) {
			continue
		}
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
		c.nextID++
		l := &activeLease{
			id:      fmt.Sprintf("%s-%d-%d", c.man.Run, e.shard, c.nextID),
			shard:   e.shard,
			retries: e.retries,
			worker:  worker,
			expires: now.Add(c.opts.LeaseFor),
		}
		c.leases[l.id] = l
		c.opts.Logf("dist: shard %d leased to %s (%s)", e.shard, worker, l.id)
		hb := c.opts.LeaseFor / 3
		if hb < 10*time.Millisecond {
			hb = 10 * time.Millisecond
		}
		return &Lease{
			ID:              l.id,
			Shard:           c.man.Shards[e.shard],
			Gen:             c.man.Gen,
			Label:           c.man.Label,
			StoreURI:        c.opts.StoreURI,
			CounterObjs:     c.man.CounterObjs,
			MaxNodes:        c.man.MaxNodes,
			ExpiresMillis:   int(c.opts.LeaseFor / time.Millisecond),
			HeartbeatMillis: int(hb / time.Millisecond),
		}
	}
	return nil
}

// maxLeasePoll bounds how long one Lease call blocks waiting for a
// shard to become leasable (long poll). Kept well under typical HTTP
// client/server timeouts.
const maxLeasePoll = 500 * time.Millisecond

// Lease grants a shard to worker, or explains why not (done / failed /
// wait hint). When nothing is leasable — every pending shard is backing
// off, or all remaining work is leased out — the call long-polls up to
// maxLeasePoll: completions, failures and requeues broadcast on the
// coordinator's cond, so an idle worker reacts to them immediately
// instead of sleeping through the end of the run. It is the API behind
// POST /v1/lease.
func (c *Coordinator) Lease(worker string) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	deadline := time.Now().Add(maxLeasePoll)
	for {
		now := time.Now()
		c.sweep(now)
		if c.finished() {
			return LeaseResponse{Done: true, RunFailed: c.failed}
		}
		if l := c.grant(worker, now); l != nil {
			return LeaseResponse{Lease: l}
		}
		if !now.Before(deadline) {
			return LeaseResponse{WaitMillis: 10}
		}
		// Sleep until the next scheduled event (a backoff ending, a
		// lease expiring, the poll deadline) or an explicit broadcast,
		// whichever comes first.
		wake := deadline
		for _, e := range c.pending {
			if e.notBefore.After(now) && e.notBefore.Before(wake) {
				wake = e.notBefore
			}
		}
		for _, l := range c.leases {
			if l.expires.Before(wake) {
				wake = l.expires
			}
		}
		t := time.AfterFunc(time.Until(wake)+time.Millisecond, c.cond.Broadcast)
		c.cond.Wait()
		t.Stop()
	}
}

// Heartbeat extends a lease; an unknown (expired, completed) lease is
// reported Ignored so the worker abandons the shard.
func (c *Coordinator) Heartbeat(leaseID string) Ack {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[leaseID]
	if !ok {
		return Ack{OK: true, Ignored: true}
	}
	l.expires = time.Now().Add(c.opts.LeaseFor)
	return Ack{OK: true}
}

// Complete checkpoints a finished shard. Completion quoting a stale
// lease is acknowledged but ignored — the shard either completed under
// another lease already (first record wins) or will be re-checked.
func (c *Coordinator) Complete(leaseID string, rec DoneRecord) (Ack, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[leaseID]
	if !ok {
		return Ack{OK: true, Ignored: true}, nil
	}
	if rec.Shard != l.shard {
		return Ack{}, fmt.Errorf("lease %s is for shard %d, not %d", leaseID, l.shard, rec.Shard)
	}
	// The done marker is committed before the lease is released: if the
	// marker write fails, the lease stands and the shard will be retried.
	if err := c.cp.Mark(c.store, rec); err != nil {
		return Ack{}, err
	}
	delete(c.leases, leaseID)
	c.opts.Logf("dist: shard %d done (%s, %d histories, %d nodes) [%d/%d]",
		rec.Shard, l.worker, rec.Histories, rec.Nodes, c.cp.NumDone(), len(c.man.Shards))
	c.cond.Broadcast()
	return Ack{OK: true}, nil
}

// Fail requeues a shard its worker could not finish.
func (c *Coordinator) Fail(leaseID, cause string) Ack {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[leaseID]
	if !ok {
		return Ack{OK: true, Ignored: true}
	}
	delete(c.leases, leaseID)
	c.requeue(l, time.Now(), cause, true)
	return Ack{OK: true}
}

// Status snapshots run progress, aggregating the done records.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{
		Run:         c.man.Run,
		Shards:      len(c.man.Shards),
		ShardsDone:  c.cp.NumDone(),
		Leased:      len(c.leases),
		Retries:     c.retries,
		RunFailed:   c.failed,
		ElapsedSecs: time.Since(c.started).Seconds(),
	}
	for i := range c.man.Shards {
		if rec, ok := c.cp.Done(i); ok {
			s.Histories += rec.Histories
			s.Opaque += rec.Opaque
			s.NonOpaque += rec.NonOpaque
			s.Errored += rec.Errored
			s.Nodes += rec.Nodes
		}
	}
	return s
}

// waitForShard blocks until shard idx has a done record or the run
// fails. The periodic wakeup keeps lease expiry moving even when no
// worker is polling (e.g. every worker died).
func (c *Coordinator) waitForShard(idx int) (DoneRecord, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if rec, ok := c.cp.Done(idx); ok {
			return rec, nil
		}
		if c.failed != "" {
			return DoneRecord{}, fmt.Errorf("dist: %s", c.failed)
		}
		c.sweep(time.Now())
		// Wake ourselves up for the sweep even if nothing signals.
		t := time.AfterFunc(200*time.Millisecond, c.cond.Broadcast)
		c.cond.Wait()
		t.Stop()
	}
}

// MergeTo streams the run's verdict lines to w in corpus order: shard
// 0's log as soon as shard 0 completes, then shard 1's, and so on —
// the distributed equivalent of `opacheck -parallel`'s in-order stdout
// stream, byte-identical to it for the same corpus. It blocks until
// every shard is merged or the run fails, and is the natural place to
// wait for completion. Already-merged prefixes are simply re-read from
// the logs, so a merge restarted after a coordinator kill redoes no
// checking, only copying.
func (c *Coordinator) MergeTo(w io.Writer) error {
	for idx := range c.man.Shards {
		rec, err := c.waitForShard(idx)
		if err != nil {
			return err
		}
		r, err := c.store.Open(rec.Log)
		if err != nil {
			return fmt.Errorf("dist: shard %d log: %w", idx, err)
		}
		_, err = io.Copy(w, r)
		r.Close()
		if err != nil {
			return fmt.Errorf("dist: merging shard %d: %w", idx, err)
		}
	}
	return nil
}

// Handler exposes the coordinator API over HTTP; see proto.go for the
// wire types.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", func(rw http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decode(rw, r, &req) {
			return
		}
		reply(rw, c.Lease(req.Worker))
	})
	mux.HandleFunc("POST /v1/heartbeat", func(rw http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decode(rw, r, &req) {
			return
		}
		reply(rw, c.Heartbeat(req.Lease))
	})
	mux.HandleFunc("POST /v1/complete", func(rw http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decode(rw, r, &req) {
			return
		}
		ack, err := c.Complete(req.Lease, req.Record)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		reply(rw, ack)
	})
	mux.HandleFunc("POST /v1/fail", func(rw http.ResponseWriter, r *http.Request) {
		var req FailRequest
		if !decode(rw, r, &req) {
			return
		}
		reply(rw, c.Fail(req.Lease, req.Error))
	})
	mux.HandleFunc("GET /v1/status", func(rw http.ResponseWriter, r *http.Request) {
		reply(rw, c.Status())
	})
	return mux
}

func decode(rw http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(rw, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(v)
}
