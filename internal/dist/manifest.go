package dist

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"otm/internal/gen"
	"otm/internal/storage"
)

// Store layout. Everything is committed atomically (storage.Writer), so
// each object either exists in full or not at all:
//
//	manifest.json    — the run's shard plan; committing it is the point
//	                   of no return for planning
//	shards/00007.in  — raw corpus line slice of shard 7 (file corpora)
//	logs/00007-<lease>.log — verdict lines of one completed attempt
//	done/00007.json  — DoneRecord: shard 7 is verdicted, which log holds
//	                   its lines; the set of done markers IS the
//	                   checkpoint
const (
	manifestName  = "manifest.json"
	shardInputFmt = "shards/%05d.in"
	shardLogFmt   = "logs/%05d-%s.log"
	doneFmt       = "done/%05d.json"
	donePrefix    = "done/"
)

// ErrNoManifest reports a store with no committed manifest: nothing to
// resume.
var ErrNoManifest = errors.New("dist: store has no manifest")

// GenSpec describes a generator-defined corpus (cmd/histgen's
// parameters): workers regenerate their shard's slice from the seed
// instead of reading shard inputs from the store, so distributed runs of
// generated corpora ship no corpus bytes at all.
type GenSpec struct {
	// N is the corpus size; history j (0 ≤ j < N) uses seed Seed+j.
	N    int   `json:"n"`
	Seed int64 `json:"seed"`
	// Txs, Objs, MaxOps, PStaleRead, WithInit mirror gen.Config.
	Txs        int     `json:"txs,omitempty"`
	Objs       int     `json:"objs,omitempty"`
	MaxOps     int     `json:"max_ops,omitempty"`
	PStaleRead float64 `json:"p_stale_read,omitempty"`
	WithInit   bool    `json:"with_init,omitempty"`
}

// Config translates the spec to the generator's configuration.
func (g GenSpec) Config() gen.Config {
	return gen.Config{
		Txs: g.Txs, Objs: g.Objs, MaxOps: g.MaxOps,
		PStaleRead: g.PStaleRead, WithInit: g.WithInit,
	}
}

// ShardSpec is one unit of leased work. File-backed shards carry a
// store input object and the global line numbering to label verdicts
// with; generator-backed shards carry the half-open history-index range
// to regenerate.
type ShardSpec struct {
	Index int `json:"index"`
	// Input is the store object holding this shard's raw corpus lines
	// (file corpora only).
	Input string `json:"input,omitempty"`
	// StartLine is the 1-based line number of Input's first line in the
	// original corpus; verdict sources are "label:StartLine+offset".
	StartLine int `json:"start_line,omitempty"`
	// Lines is the raw line count of Input (blank and comment lines
	// included; they yield no verdicts, matching opacheck).
	Lines int `json:"lines,omitempty"`
	// Lo and Hi delimit the generator index range [Lo, Hi) (generator
	// corpora only).
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`
}

// Manifest is the durable shard plan of one run. It is written once by
// Plan and never modified; progress lives in the done markers.
type Manifest struct {
	// Run identifies the plan (for log lines and sanity checks).
	Run string `json:"run"`
	// Label prefixes verdict sources; for file corpora it defaults to
	// the corpus path as given, so distributed verdict lines match a
	// single-process `opacheck -parallel <path>` run byte for byte.
	Label string `json:"label"`
	// Gen is set for generator-defined corpora.
	Gen *GenSpec `json:"gen,omitempty"`
	// CounterObjs and MaxNodes are the checker configuration every
	// worker applies (opacheck's -counter / -maxnodes).
	CounterObjs string      `json:"counter_objs,omitempty"`
	MaxNodes    int         `json:"max_nodes,omitempty"`
	Shards      []ShardSpec `json:"shards"`
}

// PlanOptions configures Plan.
type PlanOptions struct {
	// CorpusURI names the corpus file to shard (a storage URI or plain
	// path). Exactly one of CorpusURI and Gen must be set.
	CorpusURI string
	// Label overrides the verdict source prefix (default: CorpusURI for
	// file corpora, "gen" for generator corpora).
	Label string
	// Gen defines a generator corpus instead of a file.
	Gen *GenSpec
	// ShardSize is the number of corpus lines (file) or histories
	// (generator) per shard; default 256.
	ShardSize int
	// CounterObjs and MaxNodes are recorded in the manifest for workers.
	CounterObjs string
	MaxNodes    int
	// RunID names the plan; default "run".
	RunID string
}

// Plan shards a corpus into store and commits the manifest. For file
// corpora the corpus is split into contiguous raw line slices written as
// shard inputs — workers never need the original file, only the store.
// Planning is not idempotent: if store already holds a manifest, Plan
// refuses, and the caller should resume with LoadManifest instead.
func Plan(store storage.FS, opts PlanOptions) (*Manifest, error) {
	if _, err := store.Stat(manifestName); err == nil {
		return nil, fmt.Errorf("dist: store already has a manifest; resume instead of re-planning")
	} else if !errors.Is(err, storage.ErrNotExist) {
		return nil, err
	}
	if (opts.CorpusURI == "") == (opts.Gen == nil) {
		return nil, fmt.Errorf("dist: exactly one of CorpusURI and Gen must be set")
	}
	if opts.ShardSize < 1 {
		opts.ShardSize = 256
	}
	if opts.RunID == "" {
		opts.RunID = "run"
	}

	man := &Manifest{
		Run:         opts.RunID,
		Label:       opts.Label,
		Gen:         opts.Gen,
		CounterObjs: opts.CounterObjs,
		MaxNodes:    opts.MaxNodes,
	}
	if opts.Gen != nil {
		if man.Label == "" {
			man.Label = "gen"
		}
		if opts.Gen.N < 1 {
			return nil, fmt.Errorf("dist: generator corpus needs n ≥ 1")
		}
		k := (opts.Gen.N + opts.ShardSize - 1) / opts.ShardSize
		for i := 0; i < k; i++ {
			lo, hi := gen.ShardRange(opts.Gen.N, i, k)
			man.Shards = append(man.Shards, ShardSpec{Index: i, Lo: lo, Hi: hi})
		}
	} else {
		if man.Label == "" {
			man.Label = opts.CorpusURI
		}
		if err := planFileShards(store, man, opts); err != nil {
			return nil, err
		}
	}

	if err := writeJSON(store, manifestName, man); err != nil {
		return nil, err
	}
	return man, nil
}

// planFileShards streams the corpus once, writing every ShardSize raw
// lines as one committed shard input.
func planFileShards(store storage.FS, man *Manifest, opts PlanOptions) error {
	r, err := storage.OpenURI(opts.CorpusURI)
	if err != nil {
		return fmt.Errorf("dist: corpus: %w", err)
	}
	defer r.Close()

	br := bufio.NewReader(r)
	var (
		w         storage.Writer
		input     string
		startLine = 1
		lines     = 0
		lineno    = 0
	)
	flush := func() error {
		if w == nil {
			return nil
		}
		if err := w.Close(); err != nil {
			return err
		}
		man.Shards = append(man.Shards, ShardSpec{
			Index: len(man.Shards), Input: input, StartLine: startLine, Lines: lines,
		})
		w, lines = nil, 0
		return nil
	}
	for {
		line, err := br.ReadString('\n')
		if line != "" {
			lineno++
			if w == nil {
				input = fmt.Sprintf(shardInputFmt, len(man.Shards))
				startLine = lineno
				var err2 error
				if w, err2 = store.Create(input); err2 != nil {
					return err2
				}
			}
			if !strings.HasSuffix(line, "\n") {
				line += "\n"
			}
			if _, err2 := io.WriteString(w, line); err2 != nil {
				w.Abort()
				return err2
			}
			if lines++; lines == opts.ShardSize {
				if err2 := flush(); err2 != nil {
					return err2
				}
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			if w != nil {
				w.Abort()
			}
			return err
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if len(man.Shards) == 0 {
		return fmt.Errorf("dist: corpus %s is empty", opts.CorpusURI)
	}
	return nil
}

// LoadManifest reads the committed manifest of store, or ErrNoManifest.
func LoadManifest(store storage.FS) (*Manifest, error) {
	var man Manifest
	if err := readJSON(store, manifestName, &man); err != nil {
		if errors.Is(err, storage.ErrNotExist) {
			return nil, ErrNoManifest
		}
		return nil, err
	}
	return &man, nil
}

// DoneRecord is the checkpoint entry of one completed shard: where its
// verdict log lives and what it contains. Committing the record's done
// marker is the step that makes a shard's verdicts permanent — a crash
// before it leaves the shard pending (it will be re-checked, yielding
// identical bytes); a crash after it means the shard is never re-checked.
type DoneRecord struct {
	Shard int `json:"shard"`
	// Log is the store object holding the shard's verdict lines.
	Log       string `json:"log"`
	Histories int    `json:"histories"`
	Opaque    int    `json:"opaque"`
	NonOpaque int    `json:"non_opaque"`
	Errored   int    `json:"errored"`
	Nodes     int    `json:"nodes"`
	Worker    string `json:"worker,omitempty"`
}

// Checkpoint is the reloadable progress of a run: the set of done
// shards. It is exactly the store's committed done markers — there is no
// separate progress file to drift out of sync.
type Checkpoint struct {
	done map[int]DoneRecord
}

// LoadCheckpoint rebuilds the checkpoint from store's done markers.
// Markers for shards the manifest does not know are rejected — they mean
// the store holds a different run's state.
func LoadCheckpoint(store storage.FS, man *Manifest) (*Checkpoint, error) {
	names, err := store.List(donePrefix)
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{done: make(map[int]DoneRecord, len(names))}
	for _, name := range names {
		var rec DoneRecord
		if err := readJSON(store, name, &rec); err != nil {
			return nil, fmt.Errorf("dist: checkpoint %s: %w", name, err)
		}
		if rec.Shard < 0 || rec.Shard >= len(man.Shards) {
			return nil, fmt.Errorf("dist: checkpoint %s names shard %d outside the manifest's %d shards", name, rec.Shard, len(man.Shards))
		}
		cp.done[rec.Shard] = rec
	}
	return cp, nil
}

// Mark durably records a completed shard, then updates the in-memory
// set. Marking an already-done shard is a no-op (at-least-once dispatch
// can complete a shard twice; the first record wins).
func (c *Checkpoint) Mark(store storage.FS, rec DoneRecord) error {
	if _, dup := c.done[rec.Shard]; dup {
		return nil
	}
	if err := writeJSON(store, fmt.Sprintf(doneFmt, rec.Shard), rec); err != nil {
		return err
	}
	c.done[rec.Shard] = rec
	return nil
}

// Done returns the record of a completed shard.
func (c *Checkpoint) Done(shard int) (DoneRecord, bool) {
	rec, ok := c.done[shard]
	return rec, ok
}

// NumDone returns how many shards have completed.
func (c *Checkpoint) NumDone() int { return len(c.done) }

// Pending returns the manifest's shard indices with no done record, in
// order — the work a resumed coordinator requeues.
func (c *Checkpoint) Pending(man *Manifest) []int {
	var pending []int
	for i := range man.Shards {
		if _, ok := c.done[i]; !ok {
			pending = append(pending, i)
		}
	}
	return pending
}

func writeJSON(store storage.FS, name string, v any) error {
	w, err := store.Create(name)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

func readJSON(store storage.FS, name string, v any) error {
	r, err := store.Open(name)
	if err != nil {
		return err
	}
	defer r.Close()
	return json.NewDecoder(r).Decode(v)
}
