package dist

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"otm/internal/storage"
)

// writeCorpus commits the given lines as a corpus object in store and
// returns nothing; planning reads it back through the same FS.
func writeCorpus(t *testing.T, store storage.FS, name string, lines []string) {
	t.Helper()
	w, err := store.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, strings.Join(lines, "\n")+"\n"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPlanErrors: the planner rejects contradictory or unusable inputs
// instead of committing a bad manifest.
func TestPlanErrors(t *testing.T) {
	cases := []struct {
		name string
		opts PlanOptions
	}{
		{"NeitherSource", PlanOptions{}},
		{"BothSources", PlanOptions{CorpusURI: "x.txt", Gen: &GenSpec{N: 10}}},
		{"MissingCorpus", PlanOptions{CorpusURI: "mem://test-plan-errors/absent.txt"}},
		{"EmptyGen", PlanOptions{Gen: &GenSpec{N: 0}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			store := storage.NewMem()
			if _, err := Plan(store, c.opts); err == nil {
				t.Errorf("Plan(%+v) succeeded, want error", c.opts)
			}
			if _, err := store.Stat(manifestName); err == nil {
				t.Error("failed Plan committed a manifest")
			}
		})
	}

	t.Run("EmptyCorpusFile", func(t *testing.T) {
		store := storage.NewMem()
		corpus := storage.Mem("test-plan-errors-empty")
		w, _ := corpus.Create("empty.txt")
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := Plan(store, PlanOptions{CorpusURI: "mem://test-plan-errors-empty/empty.txt"}); err == nil {
			t.Error("Plan over an empty corpus succeeded")
		}
	})
}

// TestPlanFileShardsFromFile plans a real file corpus and checks the
// slicing invariants.
func TestPlanFileShardsFromFile(t *testing.T) {
	dir := t.TempDir()
	lines := []string{
		"# header comment",
		"w1(x,1) tryC1 C1",
		"",
		"r1(x)->0 tryC1 C1",
		"not a history at all",
		"w1(y,2) tryC1 A1",
		"# trailing comment",
	}
	corpus := dir + "/corpus.txt"
	osfs := storage.NewOS(dir)
	writeCorpus(t, osfs, "corpus.txt", lines)

	store := storage.NewMem()
	man, err := Plan(store, PlanOptions{CorpusURI: corpus, ShardSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if man.Label != corpus {
		t.Errorf("Label = %q, want the corpus path %q", man.Label, corpus)
	}
	if len(man.Shards) != 3 { // 7 lines / 3 per shard
		t.Fatalf("%d shards, want 3", len(man.Shards))
	}
	var rebuilt strings.Builder
	wantStart := 1
	for i, s := range man.Shards {
		if s.Index != i {
			t.Errorf("shard %d carries index %d", i, s.Index)
		}
		if s.StartLine != wantStart {
			t.Errorf("shard %d starts at line %d, want %d", i, s.StartLine, wantStart)
		}
		wantStart += s.Lines
		r, err := store.Open(s.Input)
		if err != nil {
			t.Fatalf("shard %d input: %v", i, err)
		}
		b, _ := io.ReadAll(r)
		r.Close()
		if got := strings.Count(string(b), "\n"); got != s.Lines {
			t.Errorf("shard %d input has %d lines, spec says %d", i, got, s.Lines)
		}
		rebuilt.Write(b)
	}
	if want := strings.Join(lines, "\n") + "\n"; rebuilt.String() != want {
		t.Errorf("concatenated shard inputs differ from the corpus:\n%q\nvs\n%q", rebuilt.String(), want)
	}

	// Planning twice over the same store must refuse.
	if _, err := Plan(store, PlanOptions{CorpusURI: corpus}); err == nil {
		t.Error("second Plan over the same store must fail")
	}

	// The committed manifest round-trips.
	got, err := LoadManifest(store)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, man) {
		t.Errorf("LoadManifest = %+v, want %+v", got, man)
	}
}

// TestPlanGenShards: generator plans cover [0, N) with balanced
// contiguous ranges and no stored inputs.
func TestPlanGenShards(t *testing.T) {
	store := storage.NewMem()
	spec := &GenSpec{N: 100, Seed: 7, Txs: 4, Objs: 2, MaxOps: 3, PStaleRead: 0.25}
	man, err := Plan(store, PlanOptions{Gen: spec, ShardSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if man.Label != "gen" {
		t.Errorf("default gen label = %q", man.Label)
	}
	covered := 0
	prev := 0
	for _, s := range man.Shards {
		if s.Input != "" {
			t.Errorf("gen shard %d has a stored input %q", s.Index, s.Input)
		}
		if s.Lo != prev {
			t.Errorf("shard %d starts at %d, want %d", s.Index, s.Lo, prev)
		}
		covered += s.Hi - s.Lo
		prev = s.Hi
	}
	if prev != spec.N || covered != spec.N {
		t.Errorf("shards cover %d indices ending at %d, want exactly %d", covered, prev, spec.N)
	}
	if names, _ := store.List("shards/"); len(names) != 0 {
		t.Errorf("gen plan wrote shard inputs: %v", names)
	}
}

// TestLoadManifestMissing: an unplanned store is ErrNoManifest, which is
// how `otmd coordinate` decides between plan and resume.
func TestLoadManifestMissing(t *testing.T) {
	if _, err := LoadManifest(storage.NewMem()); err != ErrNoManifest {
		t.Errorf("LoadManifest(empty) = %v, want ErrNoManifest", err)
	}
}

// TestCheckpointRoundTrip is the marshal→crash→reload property, in the
// gopter style on testing/quick: for any shard count and any completed
// subset, dropping every in-memory structure and reloading from the
// store yields exactly the same done and pending sets.
func TestCheckpointRoundTrip(t *testing.T) {
	property := func(shardSeed int64) bool {
		rng := rand.New(rand.NewSource(shardSeed))
		n := 1 + rng.Intn(40)
		store := storage.NewMem()
		man, err := Plan(store, PlanOptions{Gen: &GenSpec{N: n, Seed: shardSeed}, ShardSize: 1 + rng.Intn(5)})
		if err != nil {
			t.Logf("Plan: %v", err)
			return false
		}

		cp, err := LoadCheckpoint(store, man)
		if err != nil {
			t.Logf("LoadCheckpoint(fresh): %v", err)
			return false
		}
		wantDone := map[int]DoneRecord{}
		for i := range man.Shards {
			if rng.Intn(2) == 0 {
				continue
			}
			rec := DoneRecord{
				Shard: i, Log: fmt.Sprintf(shardLogFmt, i, "lease"),
				Histories: rng.Intn(100), Opaque: rng.Intn(50), Nodes: rng.Intn(10_000),
				Worker: "w1",
			}
			if err := cp.Mark(store, rec); err != nil {
				t.Logf("Mark: %v", err)
				return false
			}
			wantDone[i] = rec
		}

		// "Crash": drop cp and the coordinator; the store is all that
		// survives. Reload and compare.
		man2, err := LoadManifest(store)
		if err != nil {
			t.Logf("LoadManifest: %v", err)
			return false
		}
		if !reflect.DeepEqual(man2, man) {
			t.Logf("manifest drifted across reload")
			return false
		}
		cp2, err := LoadCheckpoint(store, man2)
		if err != nil {
			t.Logf("LoadCheckpoint: %v", err)
			return false
		}
		for i := range man.Shards {
			rec, ok := cp2.Done(i)
			wantRec, wantOK := wantDone[i]
			if ok != wantOK || (ok && !reflect.DeepEqual(rec, wantRec)) {
				t.Logf("shard %d: reloaded done=(%v,%+v), want (%v,%+v)", i, ok, rec, wantOK, wantRec)
				return false
			}
		}
		var wantPending []int
		for i := range man.Shards {
			if _, ok := wantDone[i]; !ok {
				wantPending = append(wantPending, i)
			}
		}
		if !reflect.DeepEqual(cp2.Pending(man2), wantPending) {
			t.Logf("pending = %v, want %v", cp2.Pending(man2), wantPending)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCheckpointMarkIdempotent: at-least-once dispatch can complete a
// shard twice; the first record wins durably.
func TestCheckpointMarkIdempotent(t *testing.T) {
	store := storage.NewMem()
	man, err := Plan(store, PlanOptions{Gen: &GenSpec{N: 4, Seed: 1}, ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := LoadCheckpoint(store, man)
	first := DoneRecord{Shard: 1, Log: "logs/first.log", Histories: 2}
	if err := cp.Mark(store, first); err != nil {
		t.Fatal(err)
	}
	if err := cp.Mark(store, DoneRecord{Shard: 1, Log: "logs/second.log", Histories: 99}); err != nil {
		t.Fatal(err)
	}
	cp2, err := LoadCheckpoint(store, man)
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := cp2.Done(1); !reflect.DeepEqual(rec, first) {
		t.Errorf("second Mark overwrote the first record: %+v", rec)
	}
}

// TestCheckpointRejectsForeignMarkers: markers outside the manifest's
// shard range mean the store holds another run's state.
func TestCheckpointRejectsForeignMarkers(t *testing.T) {
	store := storage.NewMem()
	man, err := Plan(store, PlanOptions{Gen: &GenSpec{N: 4, Seed: 1}, ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeJSON(store, fmt.Sprintf(doneFmt, 99), DoneRecord{Shard: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(store, man); err == nil {
		t.Error("LoadCheckpoint accepted a marker for a shard the manifest does not have")
	}
}
