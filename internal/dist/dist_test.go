package dist

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"otm/internal/checkpool"
	"otm/internal/gen"
	"otm/internal/history"
	"otm/internal/storage"
)

// corpusLines renders a generated corpus the way histgen does — one
// history per line with a seed comment — plus a header comment, a blank
// line and one unparseable line, so labels, skipping and error verdicts
// are all exercised.
func corpusLines(n int, seed int64) []string {
	cfg := gen.Config{Txs: 4, Objs: 2, MaxOps: 3, PStaleRead: 0.3}
	lines := []string{"# generated test corpus", ""}
	for i := 0; i < n; i++ {
		lines = append(lines, fmt.Sprintf("%s   # seed=%d", gen.History(cfg, seed+int64(i)), seed+int64(i)))
	}
	lines = append(lines, "this line does not parse")
	return lines
}

// golden computes the single-process verdict log for a corpus file:
// exactly what `opacheck -parallel` prints for it, via the same
// canonical Verdict.Line rendering the distributed workers use.
func golden(t *testing.T, label string, lines []string) string {
	t.Helper()
	in := make(chan checkpool.Item)
	go func() {
		defer close(in)
		for i, line := range lines {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			item := checkpool.Item{Source: fmt.Sprintf("%s:%d", label, i+1)}
			item.History, item.Err = history.Parse(line)
			in <- item
		}
	}()
	var sb strings.Builder
	err := checkpool.New(checkpool.Options{Workers: 1}).RunTo(context.Background(), in, func(v checkpool.Verdict) error {
		sb.WriteString(v.Line() + "\n")
		return nil
	})
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	return sb.String()
}

// startRun plans a file corpus into a fresh file-backed store and
// returns the running coordinator plus its HTTP server.
func startRun(t *testing.T, lines []string, shardSize int, copts CoordinatorOptions) (*Coordinator, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	corpusPath := dir + "/corpus.txt"
	writeCorpus(t, storage.NewOS(dir), "corpus.txt", lines)

	storeURI := "file://" + dir + "/store"
	store, err := storage.Resolve(storeURI)
	if err != nil {
		t.Fatal(err)
	}
	man, err := Plan(store, PlanOptions{CorpusURI: corpusPath, ShardSize: shardSize})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(store, man)
	if err != nil {
		t.Fatal(err)
	}
	copts.StoreURI = storeURI
	c := NewCoordinator(store, man, cp, copts)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv, corpusPath
}

// TestDistributedMatchesSingleProcess is the core determinism claim:
// two workers (one on shared tables) over a sharded corpus produce a
// merged in-order verdict log byte-identical to a single-process run.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	lines := corpusLines(60, 100)
	c, srv, corpusPath := startRun(t, lines, 7, CoordinatorOptions{LeaseFor: 10 * time.Second})
	want := golden(t, corpusPath, lines)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				Coordinator: srv.URL,
				Name:        fmt.Sprintf("w%d", i),
				Shared:      i == 0,
			}
			if stats, err := w.Run(context.Background()); err != nil {
				t.Errorf("worker %d: %v", i, err)
			} else if stats.Shards > 0 && stats.Search.States == 0 {
				t.Errorf("worker %d checked %d shards but reports zero interned states", i, stats.Shards)
			}
		}(i)
	}

	var merged strings.Builder
	if err := c.MergeTo(&merged); err != nil {
		t.Fatalf("MergeTo: %v", err)
	}
	wg.Wait()

	if merged.String() != want {
		t.Errorf("merged log differs from the single-process run:\n--- merged ---\n%s--- single ---\n%s", merged.String(), want)
	}
	st := c.Status()
	if st.ShardsDone != st.Shards || st.Histories != 61 || st.Errored != 1 {
		t.Errorf("status = %+v, want all %d shards done, 61 histories, 1 errored", st, st.Shards)
	}
}

// TestGenCorpusDistributed is the gen-mode e2e over a shared named mem
// store, the configuration `otmd run` uses in-process: generator-defined
// corpora ship no bytes — workers regenerate exactly their slice — and
// still merge to the same log as a single process generating the whole
// corpus.
func TestGenCorpusDistributed(t *testing.T) {
	storeURI := "mem://test-gen-dist"
	store, err := storage.Resolve(storeURI)
	if err != nil {
		t.Fatal(err)
	}
	spec := &GenSpec{N: 50, Seed: 400, Txs: 4, Objs: 2, MaxOps: 3, PStaleRead: 0.3}
	man, err := Plan(store, PlanOptions{Gen: spec, ShardSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := LoadCheckpoint(store, man)
	c := NewCoordinator(store, man, cp, CoordinatorOptions{StoreURI: storeURI})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		w := &Worker{Coordinator: srv.URL, Name: "gen-worker", Parallel: 2}
		_, err := w.Run(context.Background())
		done <- err
	}()
	var merged strings.Builder
	if err := c.MergeTo(&merged); err != nil {
		t.Fatalf("MergeTo: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}

	// Golden: generate the full corpus in one process, same labeling.
	in := make(chan checkpool.Item)
	go func() {
		defer close(in)
		cfg := spec.Config()
		for j := 0; j < spec.N; j++ {
			in <- checkpool.Item{Source: fmt.Sprintf("gen:%d", j), History: gen.History(cfg, spec.Seed+int64(j))}
		}
	}()
	var want strings.Builder
	err = checkpool.New(checkpool.Options{Workers: 1}).RunTo(context.Background(), in, func(v checkpool.Verdict) error {
		want.WriteString(v.Line() + "\n")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if merged.String() != want.String() {
		t.Errorf("gen-mode merged log differs from single-process generation:\n--- merged ---\n%s--- single ---\n%s", merged.String(), want.String())
	}
}

// TestWorkerKilledMidShard: a worker that takes a lease and dies without
// ever completing it loses the lease at expiry; the surviving worker
// picks the shard up and the merged log is still byte-identical.
func TestWorkerKilledMidShard(t *testing.T) {
	lines := corpusLines(30, 200)
	c, srv, corpusPath := startRun(t, lines, 4, CoordinatorOptions{LeaseFor: 250 * time.Millisecond})
	want := golden(t, corpusPath, lines)

	// The "killed" worker: leases one shard over the real API and
	// vanishes — no heartbeat, no complete, exactly like a SIGKILL
	// between lease and completion.
	dead := &Worker{Coordinator: srv.URL, Name: "doomed", HTTP: srv.Client()}
	var resp LeaseResponse
	if err := dead.post(context.Background(), "/v1/lease", LeaseRequest{Worker: "doomed"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Lease == nil {
		t.Fatalf("no lease granted to the doomed worker: %+v", resp)
	}

	survivor := &Worker{Coordinator: srv.URL, Name: "survivor"}
	done := make(chan error, 1)
	go func() {
		_, err := survivor.Run(context.Background())
		done <- err
	}()
	var merged strings.Builder
	if err := c.MergeTo(&merged); err != nil {
		t.Fatalf("MergeTo after a worker death: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if merged.String() != want {
		t.Errorf("merged log differs after worker death:\n--- merged ---\n%s--- single ---\n%s", merged.String(), want)
	}
	if st := c.Status(); st.Retries == 0 {
		t.Errorf("status reports no requeues, but a lease was abandoned: %+v", st)
	}
}

// TestCoordinatorResume: kill the coordinator (drop every in-memory
// structure), restart from the store, and the run finishes from where it
// stopped — already-verdicted shards are never re-checked and the final
// merged log is byte-identical.
func TestCoordinatorResume(t *testing.T) {
	lines := corpusLines(40, 300)
	dir := t.TempDir()
	corpusPath := dir + "/corpus.txt"
	writeCorpus(t, storage.NewOS(dir), "corpus.txt", lines)
	want := golden(t, corpusPath, lines)

	storeURI := "file://" + dir + "/store"
	store, err := storage.Resolve(storeURI)
	if err != nil {
		t.Fatal(err)
	}
	man, err := Plan(store, PlanOptions{CorpusURI: corpusPath, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: run until at least 3 shards are done, then kill
	// everything — coordinator dropped mid-run, worker cancelled
	// mid-shard.
	cp1, _ := LoadCheckpoint(store, man)
	c1 := NewCoordinator(store, man, cp1, CoordinatorOptions{StoreURI: storeURI, LeaseFor: time.Second})
	srv1 := httptest.NewServer(c1.Handler())
	ctx1, cancel1 := context.WithCancel(context.Background())
	w1done := make(chan struct{})
	go func() {
		defer close(w1done)
		w := &Worker{Coordinator: srv1.URL, Name: "phase1"}
		w.Run(ctx1) // error expected: cancelled mid-run
	}()
	deadline := time.Now().Add(30 * time.Second)
	for c1.Status().ShardsDone < 3 {
		if time.Now().After(deadline) {
			t.Fatal("phase 1 never completed 3 shards")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel1()
	<-w1done
	srv1.Close() // the "kill": c1 and its server are gone

	// Phase 2: a fresh coordinator process over the same store.
	man2, err := LoadManifest(store)
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := LoadCheckpoint(store, man2)
	if err != nil {
		t.Fatal(err)
	}
	doneAtRestart := cp2.NumDone()
	if doneAtRestart < 3 {
		t.Fatalf("checkpoint lost completions: %d done, phase 1 saw ≥3", doneAtRestart)
	}
	c2 := NewCoordinator(store, man2, cp2, CoordinatorOptions{StoreURI: storeURI, LeaseFor: time.Second})
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()

	w2 := &Worker{Coordinator: srv2.URL, Name: "phase2"}
	done := make(chan RunStats, 1)
	go func() {
		stats, err := w2.Run(context.Background())
		if err != nil {
			t.Errorf("phase 2 worker: %v", err)
		}
		done <- stats
	}()
	var merged strings.Builder
	if err := c2.MergeTo(&merged); err != nil {
		t.Fatalf("MergeTo after resume: %v", err)
	}
	stats := <-done

	if merged.String() != want {
		t.Errorf("merged log differs after coordinator restart:\n--- merged ---\n%s--- single ---\n%s", merged.String(), want)
	}
	// Resume must not redo finished work: phase 2 checked exactly the
	// shards with no committed done marker at restart.
	if got, max := stats.Shards, len(man.Shards)-doneAtRestart; got > max {
		t.Errorf("phase 2 re-checked done shards: %d checked, only %d were pending at restart", got, max)
	}
	if st := c2.Status(); st.ShardsDone != len(man.Shards) {
		t.Errorf("resumed run finished with %d/%d shards", st.ShardsDone, len(man.Shards))
	}
}

// TestShardFailureRetriesThenRunFails: explicit shard failures requeue
// with backoff up to MaxRetries, then fail the whole run — visible to
// workers (Done+RunFailed), MergeTo and Status.
func TestShardFailureRetriesThenRunFails(t *testing.T) {
	store := storage.NewMem()
	man, err := Plan(store, PlanOptions{Gen: &GenSpec{N: 4, Seed: 1}, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := LoadCheckpoint(store, man)
	c := NewCoordinator(store, man, cp, CoordinatorOptions{
		MaxRetries: 2,
		Backoff:    time.Millisecond,
		LeaseFor:   time.Second,
	})

	attempts := 0
	for {
		resp := c.Lease("flaky")
		if resp.Done {
			break
		}
		if resp.Lease == nil {
			time.Sleep(time.Duration(resp.WaitMillis) * time.Millisecond)
			continue
		}
		attempts++
		if ack := c.Fail(resp.Lease.ID, "verdict sink write failed"); !ack.OK {
			t.Fatalf("Fail: %+v", ack)
		}
	}
	if attempts != 3 { // initial + MaxRetries
		t.Errorf("%d attempts before the run failed, want 3", attempts)
	}
	resp := c.Lease("flaky")
	if !resp.Done || resp.RunFailed == "" {
		t.Errorf("post-failure lease response = %+v, want Done with RunFailed", resp)
	}
	if err := c.MergeTo(&strings.Builder{}); err == nil {
		t.Error("MergeTo succeeded on a failed run")
	}
	if st := c.Status(); st.RunFailed == "" {
		t.Errorf("Status does not report the failure: %+v", st)
	}
}

// TestStaleLeaseIgnored: completions and heartbeats quoting an expired
// lease are acknowledged as Ignored, and the shard's eventual completion
// under the new lease is the one that counts.
func TestStaleLeaseIgnored(t *testing.T) {
	store := storage.NewMem()
	man, err := Plan(store, PlanOptions{Gen: &GenSpec{N: 2, Seed: 1}, ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := LoadCheckpoint(store, man)
	c := NewCoordinator(store, man, cp, CoordinatorOptions{LeaseFor: 30 * time.Millisecond})

	resp := c.Lease("slow")
	if resp.Lease == nil {
		t.Fatalf("no lease: %+v", resp)
	}
	stale := resp.Lease.ID
	time.Sleep(60 * time.Millisecond) // let it expire

	resp2 := c.Lease("fast")
	if resp2.Lease == nil {
		t.Fatalf("expired shard not re-leased: %+v", resp2)
	}
	if resp2.Lease.ID == stale {
		t.Fatal("re-lease reused the stale lease ID")
	}

	if ack := c.Heartbeat(stale); !ack.Ignored {
		t.Errorf("heartbeat on a stale lease = %+v, want Ignored", ack)
	}
	ack, err := c.Complete(stale, DoneRecord{Shard: 0, Log: "logs/stale.log"})
	if err != nil || !ack.Ignored {
		t.Errorf("complete on a stale lease = %+v, %v, want Ignored", ack, err)
	}
	if _, done := cp.Done(0); done {
		t.Error("stale completion checkpointed the shard")
	}

	// The current holder's completion is the real one.
	if err := writeJSON(store, "logs/real.log", "x"); err != nil {
		t.Fatal(err)
	}
	ack, err = c.Complete(resp2.Lease.ID, DoneRecord{Shard: 0, Log: "logs/real.log", Histories: 1})
	if err != nil || ack.Ignored {
		t.Fatalf("current completion rejected: %+v, %v", ack, err)
	}
	if rec, done := cp.Done(0); !done || rec.Log != "logs/real.log" {
		t.Errorf("checkpoint after current completion = %+v, %v", rec, done)
	}
}

// TestHeartbeatExtendsLease: a heartbeat pushes the deadline out, so a
// slow-but-alive worker keeps its shard across the original expiry.
func TestHeartbeatExtendsLease(t *testing.T) {
	store := storage.NewMem()
	man, err := Plan(store, PlanOptions{Gen: &GenSpec{N: 2, Seed: 1}, ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := LoadCheckpoint(store, man)
	c := NewCoordinator(store, man, cp, CoordinatorOptions{LeaseFor: 300 * time.Millisecond})

	resp := c.Lease("slow")
	if resp.Lease == nil {
		t.Fatal("no lease")
	}
	time.Sleep(150 * time.Millisecond)
	if ack := c.Heartbeat(resp.Lease.ID); ack.Ignored {
		t.Fatal("heartbeat before expiry was ignored")
	}
	time.Sleep(250 * time.Millisecond) // past the original 300ms deadline, within the extension
	if ack := c.Heartbeat(resp.Lease.ID); ack.Ignored {
		t.Error("lease expired despite a timely heartbeat")
	}
}
