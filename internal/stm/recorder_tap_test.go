package stm

import (
	"reflect"
	"sync"
	"testing"

	"otm/internal/history"
)

// lockedTM is a minimal concurrency-safe TM (one big lock, last-writer-
// wins at commit) for exercising the recorder's concurrent plumbing
// without dragging a real engine into the package (the engines import
// stm, not the other way around). It makes no isolation promises — the
// tests below are about the Recorder and its tap, not about opacity.
type lockedTM struct {
	mu   sync.Mutex
	vals []int
}

func newLocked(n int) *lockedTM { return &lockedTM{vals: make([]int, n)} }

func (m *lockedTM) Name() string { return "locked" }
func (m *lockedTM) Len() int     { return len(m.vals) }
func (m *lockedTM) Begin() Tx    { return &lockedTx{tm: m, local: map[int]int{}} }

type lockedTx struct {
	tm    *lockedTM
	local map[int]int
	steps int64
	done  bool
}

func (t *lockedTx) Read(i int) (int, error) {
	if t.done {
		return 0, ErrAborted
	}
	t.steps++
	if v, ok := t.local[i]; ok {
		return v, nil
	}
	t.tm.mu.Lock()
	defer t.tm.mu.Unlock()
	return t.tm.vals[i], nil
}

func (t *lockedTx) Write(i, v int) error {
	if t.done {
		return ErrAborted
	}
	t.steps++
	t.local[i] = v
	return nil
}

func (t *lockedTx) Commit() error {
	if t.done {
		return ErrAborted
	}
	t.done = true
	t.tm.mu.Lock()
	defer t.tm.mu.Unlock()
	for i, v := range t.local {
		t.tm.vals[i] = v
	}
	return nil
}

func (t *lockedTx) Abort()       { t.done = true }
func (t *lockedTx) Steps() int64 { return t.steps }

// TestRecorderTapConcurrent hammers one tapped Recorder from many
// goroutines — transactions recording, a reader polling History — and
// checks the tap observed exactly the recorded history, event for event.
// The tap writes to a plain slice with no locking of its own: the
// recorder's mutex is the only thing making that safe, which is
// precisely what `go test -race` verifies here.
func TestRecorderTapConcurrent(t *testing.T) {
	const goroutines = 8
	const txPerG = 50

	rec := NewRecorder(newLocked(4))
	var tapped []history.Event
	rec.Tap(func(ev history.Event) { tapped = append(tapped, ev) })

	// A reader goroutine races History() snapshots against the recording
	// goroutines for the whole run.
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = rec.History()
			}
		}
	}()

	var txs sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		txs.Add(1)
		go func(g int) {
			defer txs.Done()
			for i := 0; i < txPerG; i++ {
				err := Atomically(rec, func(tx Tx) error {
					if _, err := tx.Read((g + i) % 4); err != nil {
						return err
					}
					return tx.Write(g%4, i)
				})
				if err != nil {
					t.Errorf("goroutine %d tx %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	txs.Wait()
	close(stop)
	reader.Wait()

	h := rec.History()
	if err := h.WellFormed(); err != nil {
		t.Fatalf("recorded history ill-formed: %v", err)
	}
	if !reflect.DeepEqual(history.History(tapped), h) {
		t.Fatalf("tap saw %d events, history has %d — streams diverge", len(tapped), len(h))
	}
	if len(h) < goroutines*txPerG*2 {
		t.Fatalf("implausibly short history: %d events", len(h))
	}
}

// TestRecorderTapRemoval: a nil tap stops observation without touching
// already-tapped events.
func TestRecorderTapRemoval(t *testing.T) {
	rec := NewRecorder(newLocked(1))
	var n int
	rec.Tap(func(history.Event) { n++ })
	tx := rec.Begin()
	if _, err := tx.Read(0); err != nil {
		t.Fatal(err)
	}
	rec.Tap(nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("tap observed %d events, want 2 (inv+ret before removal)", n)
	}
	if got := len(rec.History()); got != 4 {
		t.Errorf("recorded %d events, want 4", got)
	}
}
