package mvstm

import (
	"errors"
	"sync"
	"testing"

	"otm/internal/core"
	"otm/internal/stm"
	"otm/internal/stm/stmtest"
)

func TestConformance(t *testing.T) {
	stmtest.Run(t, func(n int) stm.TM { return New(n) }, stmtest.Options{Opaque: true})
}

// TestReadOnlyNeverAborts is the multi-version headline (§6.2, footnote
// 2, and the H4 discussion in §5.2): a read-only transaction keeps
// reading its birth snapshot despite concurrent committed overwrites, and
// always commits.
func TestReadOnlyNeverAborts(t *testing.T) {
	tm := New(2)
	t1 := tm.Begin() // snapshot at clock 0

	if v, err := t1.Read(0); err != nil || v != 0 {
		t.Fatalf("t1 read(0) = %d, %v", v, err)
	}

	t2 := tm.Begin()
	if err := t2.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	// T1 still sees the OLD y — the consistent snapshot of its birth.
	// A single-version TM would have to abort here; mvstm serves the old
	// version (this is exactly the paper's H4 situation).
	v, err := t1.Read(1)
	if err != nil || v != 0 {
		t.Fatalf("t1 read(1) = %d, %v; want the old snapshot value 0", v, err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("read-only transactions never abort: %v", err)
	}

	// A transaction born after T2 sees the new values.
	t3 := tm.Begin()
	if v, _ := t3.Read(1); v != 5 {
		t.Errorf("t3 read(1) = %d, want 5", v)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestRecordedH4StyleHistoryOpaque: the schedule above recorded and fed
// to the checker — the old-snapshot read is opaque (T1 serializes before
// T2).
func TestRecordedH4StyleHistoryOpaque(t *testing.T) {
	rec := stm.NewRecorder(New(2))
	t1 := rec.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	t2 := rec.Begin()
	if err := t2.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	t3 := rec.Begin()
	if v, err := t3.Read(1); err != nil || v != 5 {
		t.Fatalf("t3 = %d, %v", v, err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, err := t1.Read(1); err != nil || v != 0 {
		t.Fatalf("t1 = %d, %v", v, err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := core.Opaque(rec.History())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Fatalf("multi-version old-snapshot history must be opaque:\n%s", rec.History().Format())
	}
}

// TestFirstCommitterWins: write skew between two updaters is resolved by
// commit-time validation — the second committer aborts.
func TestFirstCommitterWins(t *testing.T) {
	tm := New(2)
	t1 := tm.Begin()
	t2 := tm.Begin()
	// T1: reads r0, writes r1. T2: reads r1, writes r0.
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read(1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("first committer: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("second committer with stale read: %v, want ErrAborted", err)
	}
}

// TestUpdaterStaleReadAborts: an updater whose read object gained a newer
// version aborts at commit.
func TestUpdaterStaleReadAborts(t *testing.T) {
	tm := New(2)
	t1 := tm.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(1, 9); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("stale updater: %v, want ErrAborted", err)
	}
}

// TestVersionListsGrow: each commit prepends one version per written
// object; old versions stay reachable for old readers.
func TestVersionListsGrow(t *testing.T) {
	tm := New(1)
	if tm.Versions(0) != 1 {
		t.Fatalf("initial versions = %d", tm.Versions(0))
	}
	for i := 1; i <= 5; i++ {
		if err := stm.Atomically(tm, func(tx stm.Tx) error {
			return tx.Write(0, i)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tm.Versions(0); got != 6 {
		t.Errorf("versions after 5 commits = %d, want 6", got)
	}
}

// TestReadCostIndependentOfK: reading costs O(version-chain), not O(k):
// doubling the object count leaves per-read steps unchanged.
func TestReadCostIndependentOfK(t *testing.T) {
	cost := func(k int) int64 {
		tm := New(k)
		tx := tm.Begin()
		for i := 0; i < k/2; i++ {
			if _, err := tx.Read(i); err != nil {
				t.Fatal(err)
			}
		}
		before := tx.Steps()
		if _, err := tx.Read(k - 1); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}()
		return tx.Steps() - before
	}
	if c16, c256 := cost(16), cost(256); c16 != c256 {
		t.Errorf("per-read cost depends on k: %d @16 vs %d @256", c16, c256)
	}
}

// TestOldReaderWalksVersionChain: a reader born early pays per-version
// steps but still finds its snapshot after many commits.
func TestOldReaderWalksVersionChain(t *testing.T) {
	tm := New(1)
	old := tm.Begin() // snapshot 0
	for i := 1; i <= 10; i++ {
		if err := stm.Atomically(tm, func(tx stm.Tx) error {
			return tx.Write(0, i*100)
		}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := old.Read(0)
	if err != nil || v != 0 {
		t.Fatalf("old reader sees %d, %v; want snapshot value 0", v, err)
	}
	if err := old.Commit(); err != nil {
		t.Fatal(err)
	}
}

// --- version GC (NewWithGC) ---

func TestGCConformance(t *testing.T) {
	stmtest.Run(t, func(n int) stm.TM { return NewWithGC(n) }, stmtest.Options{Opaque: true})
}

// TestGCBoundsVersionChains: with no long-lived readers, chains stay
// short no matter how many commits hit the object.
func TestGCBoundsVersionChains(t *testing.T) {
	tm := NewWithGC(1)
	for i := 1; i <= 200; i++ {
		if err := stm.Atomically(tm, func(tx stm.Tx) error {
			return tx.Write(0, i)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tm.Versions(0); got > 3 {
		t.Errorf("GC left %d versions, want a small constant", got)
	}
	// The value is intact.
	if v, err := stm.DirectRead(tm, 0); err != nil || v != 200 {
		t.Errorf("value after GC = %d, %v", v, err)
	}
}

// TestGCPreservesOldReaderSnapshot: a long-lived reader pins its
// snapshot; versions it needs survive, and are reclaimed after it
// finishes.
func TestGCPreservesOldReaderSnapshot(t *testing.T) {
	tm := NewWithGC(2)
	if err := stm.DirectWrite(tm, 0, 7); err != nil {
		t.Fatal(err)
	}
	old := tm.Begin() // snapshot: r0=7
	for i := 1; i <= 50; i++ {
		if err := stm.Atomically(tm, func(tx stm.Tx) error {
			return tx.Write(0, 100+i)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if tm.Versions(0) < 2 {
		t.Error("the old reader's snapshot version must survive GC")
	}
	if v, err := old.Read(0); err != nil || v != 7 {
		t.Fatalf("old reader sees %d, %v; want pinned snapshot 7", v, err)
	}
	if err := old.Commit(); err != nil {
		t.Fatal(err)
	}
	// With the reader retired, the next commit truncates the chain.
	if err := stm.DirectWrite(tm, 0, 999); err != nil {
		t.Fatal(err)
	}
	if got := tm.Versions(0); got > 3 {
		t.Errorf("chain not reclaimed after the reader retired: %d versions", got)
	}
}

// TestGCUnderChurn: concurrent writers and transient readers; chains
// stay bounded and reads stay consistent.
func TestGCUnderChurn(t *testing.T) {
	tm := NewWithGC(4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if g%2 == 0 {
					if err := stm.Atomically(tm, func(tx stm.Tx) error {
						return tx.Write(g, i)
					}); err != nil {
						t.Error(err)
						return
					}
				} else {
					if err := stm.Atomically(tm, func(tx stm.Tx) error {
						_, err := tx.Read(g - 1)
						return err
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if got := tm.Versions(i); got > 8 {
			t.Errorf("object %d has %d versions after churn", i, got)
		}
	}
}

// TestGCReadOnlyNeverAbortsUnderTruncationChurn stresses the Begin /
// truncate interleaving: read-only transactions are born continuously
// while committers truncate the hot object's chain. A read-only
// transaction must NEVER abort — its snapshot is pinned atomically with
// the registry insert, so truncation can never cut the version it needs.
func TestGCReadOnlyNeverAbortsUnderTruncationChurn(t *testing.T) {
	tm := NewWithGC(1)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if err := stm.Atomically(tm, func(tx stm.Tx) error {
					return tx.Write(0, w*1000+i)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				tx := tm.Begin()
				if _, err := tx.Read(0); err != nil {
					t.Errorf("read-only transaction aborted: %v", err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("read-only commit failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestBlindWriterCommits: a pure writer (no reads) always commits.
func TestBlindWriterCommits(t *testing.T) {
	tm := New(1)
	t1 := tm.Begin()
	t2 := tm.Begin()
	if err := t1.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	t3 := tm.Begin()
	if v, _ := t3.Read(0); v != 2 {
		t.Errorf("value = %d, want 2", v)
	}
}
