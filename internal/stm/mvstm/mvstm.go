// Package mvstm implements a multi-version software transactional memory
// in the style of JVSTM's versioned boxes (Cachopo & Rito-Silva) and
// LSA-STM: every object keeps a list of committed versions stamped by a
// global clock; a transaction reads the newest version no newer than its
// birth timestamp.
//
// Multi-versioning is the paper's third escape from the Ω(k) lower bound
// (§6.2, footnote 2): a read costs O(versions-per-object) steps — bounded
// by a function *independent of k* — because old snapshots stay
// available; no read-set validation against other objects is ever
// required, and read-only transactions can never be forcefully aborted
// (they commit wait-free). The engine is NOT single-version, which is
// exactly why Theorem 3 does not apply to it. It is also how history H4
// of §5.2 arises in practice: a long reader keeps reading the old
// snapshot while later transactions already see a newer commit-pending/
// committed version — opaque, as the paper argues.
//
// Update transactions validate their read set once, at commit, under a
// global commit lock (first-committer-wins on write skew), so committed
// transactions serialize at commit points and live readers always see
// the consistent snapshot of their birth timestamp.
package mvstm

import (
	"sync"
	"sync/atomic"

	"otm/internal/base"
	"otm/internal/stm"
)

// version is one committed version of an object; versions form a
// newest-first linked list. The next pointer is atomic because the
// garbage collector truncates tails concurrently with readers walking
// the chain.
type version struct {
	ver  uint64
	val  int
	next atomic.Pointer[version]
}

// TM is a multi-version transactional memory over Len integer registers.
type TM struct {
	clock base.U64
	lock  base.U64 // global commit lock
	heads []base.Word[version]

	// Optional version GC (see NewWithGC): a registry of active
	// transactions' snapshot timestamps. Registration happens once per
	// transaction at Begin — bookkeeping, not a read operation, so the
	// engine's reads stay invisible in the §6.1 sense. JVSTM tracks
	// active transactions the same way.
	gc     bool
	mu     sync.Mutex
	active map[*tx]uint64
}

// New returns a multi-version TM with n objects initialized to 0 at
// version 0. Version chains grow without bound — each committed write
// prepends one version; use NewWithGC for bounded chains.
func New(n int) *TM {
	t := &TM{heads: make([]base.Word[version], n)}
	for i := range t.heads {
		t.heads[i].Store(nil, &version{})
	}
	return t
}

// NewWithGC returns a multi-version TM that reclaims versions no active
// transaction can reach: after each commit, every written object's chain
// is truncated below the oldest active snapshot. With GC the per-read
// cost is bounded by the number of versions committed during the oldest
// live transaction's lifetime — the "function independent of k" of the
// paper's footnote 2 — instead of the full commit history.
func NewWithGC(n int) *TM {
	t := New(n)
	t.gc = true
	t.active = make(map[*tx]uint64)
	return t
}

// Name implements stm.TM.
func (t *TM) Name() string { return "mvstm" }

// Len implements stm.TM.
func (t *TM) Len() int { return len(t.heads) }

// Begin implements stm.TM: the transaction's snapshot is the clock value
// at birth. With GC enabled, the clock sample and the registry insert
// happen under the registry mutex — atomically with respect to
// minActive — so a committer can never truncate below a snapshot that a
// concurrently-born reader has already sampled but not yet registered.
func (t *TM) Begin() stm.Tx {
	x := &tx{tm: t}
	if t.gc {
		t.mu.Lock()
		x.readTS = t.clock.Load(&x.steps)
		t.active[x] = x.readTS
		t.mu.Unlock()
		return x
	}
	x.readTS = t.clock.Load(&x.steps)
	return x
}

// retire removes a completed transaction from the GC registry.
func (t *TM) retire(x *tx) {
	if !t.gc {
		return
	}
	t.mu.Lock()
	delete(t.active, x)
	t.mu.Unlock()
}

// minActive returns the oldest active snapshot timestamp, or now if no
// transaction is active.
func (t *TM) minActive(now uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	min := now
	for _, ts := range t.active {
		if ts < min {
			min = ts
		}
	}
	return min
}

// truncate cuts object i's chain below the oldest version any active or
// future transaction can need: the newest version with ver ≤ minTS stays
// (it IS the snapshot of a reader at minTS); everything older is
// unreachable. Called with the commit lock held.
func (t *TM) truncate(i int, minTS uint64) {
	v := t.heads[i].Load(nil)
	for v != nil && v.ver > minTS {
		v = v.next.Load()
	}
	if v != nil {
		v.next.Store(nil)
	}
}

type tx struct {
	tm     *TM
	readTS uint64
	steps  base.StepCounter
	reads  []int
	inRead map[int]bool
	writes map[int]int
	done   bool
}

// Steps implements stm.Tx.
func (t *tx) Steps() int64 { return t.steps.Count() }

// Read implements stm.Tx: walk the version list to the newest version no
// newer than readTS. The cost is O(versions traversed) — independent of
// the number of objects k.
func (t *tx) Read(i int) (int, error) {
	if t.done {
		return 0, stm.ErrAborted
	}
	if v, ok := t.writes[i]; ok {
		return v, nil
	}
	v := t.tm.heads[i].Load(&t.steps)
	for v != nil && v.ver > t.readTS {
		t.steps.Step() // following one next pointer = one base access
		v = v.next.Load()
	}
	if v == nil {
		// Unreachable with the unbounded version lists this engine
		// keeps: version 0 of every object exists forever.
		return 0, stm.ErrAborted
	}
	if !t.inRead[i] {
		if t.inRead == nil {
			t.inRead = make(map[int]bool)
		}
		t.inRead[i] = true
		t.reads = append(t.reads, i)
	}
	return v.val, nil
}

// Write implements stm.Tx: buffered until commit.
func (t *tx) Write(i int, v int) error {
	if t.done {
		return stm.ErrAborted
	}
	if t.writes == nil {
		t.writes = make(map[int]int)
	}
	t.writes[i] = v
	return nil
}

// Commit implements stm.Tx. Read-only transactions always commit (their
// whole execution was a consistent snapshot at readTS). Update
// transactions validate, under the global commit lock, that no object
// they read has a version newer than readTS, then publish new versions
// at the incremented clock.
func (t *tx) Commit() error {
	if t.done {
		return stm.ErrAborted
	}
	t.done = true
	if len(t.writes) == 0 {
		t.tm.retire(t)
		return nil
	}
	defer t.tm.retire(t)
	for !t.tm.lock.CAS(&t.steps, 0, 1) {
	}
	for _, i := range t.reads {
		if _, own := t.writes[i]; own {
			continue
		}
		head := t.tm.heads[i].Load(&t.steps)
		if head.ver > t.readTS {
			t.tm.lock.Store(&t.steps, 0)
			return stm.ErrAborted
		}
	}
	// Also first-committer-wins on our own read-write objects.
	for i := range t.writes {
		if t.inRead[i] {
			head := t.tm.heads[i].Load(&t.steps)
			if head.ver > t.readTS {
				t.tm.lock.Store(&t.steps, 0)
				return stm.ErrAborted
			}
		}
	}
	wv := t.tm.clock.Add(&t.steps, 1)
	for i, val := range t.writes {
		head := t.tm.heads[i].Load(&t.steps)
		nv := &version{ver: wv, val: val}
		nv.next.Store(head)
		t.tm.heads[i].Store(&t.steps, nv)
	}
	if t.tm.gc {
		// We are still registered, so minActive ≤ our readTS; versions
		// our own reads need survive the truncation.
		minTS := t.tm.minActive(wv)
		for i := range t.writes {
			t.tm.truncate(i, minTS)
		}
	}
	t.tm.lock.Store(&t.steps, 0)
	return nil
}

// Abort implements stm.Tx.
func (t *tx) Abort() {
	if !t.done {
		t.tm.retire(t)
	}
	t.done = true
}

// Versions reports the current length of object i's version list —
// diagnostics for the complexity benchmarks (the per-read bound is the
// maximum of this over all objects, independent of Len()).
func (t *TM) Versions(i int) int {
	n := 0
	for v := t.heads[i].Load(nil); v != nil; v = v.next.Load() {
		n++
	}
	return n
}
