package stm

import (
	"errors"
	"testing"

	"otm/internal/core"
)

func TestNestedSeesParentWrites(t *testing.T) {
	tm := newFake(2)
	parent := tm.Begin()
	if err := parent.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	child := Nest(parent)
	if v, err := child.Read(0); err != nil || v != 5 {
		t.Fatalf("child read of parent write = %d, %v", v, err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedCommitMergesIntoParent(t *testing.T) {
	tm := newFake(2)
	parent := tm.Begin()
	child := Nest(parent)
	if err := child.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := child.Write(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	// Parent sees the child's committed writes...
	if v, _ := parent.Read(0); v != 1 {
		t.Error("parent must see the merged write")
	}
	// ...but shared memory does not until the parent commits.
	if tm.vals[0] != 0 {
		t.Error("child commit must not publish to shared memory")
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	if tm.vals[0] != 1 || tm.vals[1] != 2 {
		t.Errorf("after parent commit: %v", tm.vals)
	}
}

func TestNestedAbortDiscardsOnlyChild(t *testing.T) {
	tm := newFake(2)
	parent := tm.Begin()
	if err := parent.Write(0, 7); err != nil {
		t.Fatal(err)
	}
	child := Nest(parent)
	if err := child.Write(0, 99); err != nil {
		t.Fatal(err)
	}
	if err := child.Write(1, 99); err != nil {
		t.Fatal(err)
	}
	child.Abort()
	// Parent's own write survives; the child's vanish.
	if v, _ := parent.Read(0); v != 7 {
		t.Error("parent write lost after child abort")
	}
	if v, _ := parent.Read(1); v != 0 {
		t.Error("child write leaked after abort")
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	if tm.vals[0] != 7 || tm.vals[1] != 0 {
		t.Errorf("final %v", tm.vals)
	}
}

func TestNestedCompletedRejectsOps(t *testing.T) {
	parent := newFake(1).Begin()
	child := Nest(parent)
	child.Abort()
	if _, err := child.Read(0); !errors.Is(err, ErrAborted) {
		t.Error("read after child abort")
	}
	if err := child.Write(0, 1); !errors.Is(err, ErrAborted) {
		t.Error("write after child abort")
	}
	if err := child.Commit(); !errors.Is(err, ErrAborted) {
		t.Error("commit after child abort")
	}
}

func TestDeepNesting(t *testing.T) {
	tm := newFake(3)
	parent := tm.Begin()
	c1 := Nest(parent)
	if err := c1.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	c2 := Nest(c1)
	if v, _ := c2.Read(0); v != 1 {
		t.Error("grandchild must see child's write")
	}
	if err := c2.Write(1, 2); err != nil {
		t.Fatal(err)
	}
	c3 := Nest(c2)
	if err := c3.Write(2, 3); err != nil {
		t.Fatal(err)
	}
	c3.Abort() // deepest aborts
	if err := c2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	if tm.vals[0] != 1 || tm.vals[1] != 2 || tm.vals[2] != 0 {
		t.Errorf("final %v, want [1 2 0]", tm.vals)
	}
}

func TestNestedParentAbortSurfacesInChild(t *testing.T) {
	tm := newFake(1)
	tm.failReads = 1
	parent := tm.Begin()
	child := Nest(parent)
	if _, err := child.Read(0); !errors.Is(err, ErrAborted) {
		t.Fatal("parent's forceful abort must surface through the child")
	}
}

func TestNestedWriteOrderPreserved(t *testing.T) {
	// Overwrites within the child must replay as a single final value per
	// object, in first-write order.
	tm := newFake(2)
	parent := tm.Begin()
	child := Nest(parent)
	for _, w := range []struct{ i, v int }{{1, 1}, {0, 2}, {1, 3}} {
		if err := child.Write(w.i, w.v); err != nil {
			t.Fatal(err)
		}
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	if tm.vals[0] != 2 || tm.vals[1] != 3 {
		t.Errorf("final %v, want [2 3]", tm.vals)
	}
}

// TestNestedRecordedFlattening: under a recorder, committed nested
// transactions appear as operations of the parent — the paper's §7
// flattening — and the recorded history is opaque.
func TestNestedRecordedFlattening(t *testing.T) {
	rec := NewRecorder(newFake(2))
	parent := rec.Begin()
	if _, err := parent.Read(0); err != nil {
		t.Fatal(err)
	}
	child := Nest(parent)
	if err := child.Write(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	h := rec.History()
	if got := len(h.Transactions()); got != 1 {
		t.Fatalf("flattened history has %d transactions, want 1", got)
	}
	execs := h.OpExecs(1)
	if len(execs) != 2 || execs[1].Obj != "r1" || execs[1].Arg != 5 {
		t.Errorf("parent ops = %v; the child's write must appear as the parent's", execs)
	}
	res, err := core.Opaque(h)
	if err != nil || !res.Opaque {
		t.Errorf("flattened nested history must be opaque: %v %v", res, err)
	}
}

func TestDirectOps(t *testing.T) {
	tm := newFake(2)
	if err := DirectWrite(tm, 0, 42); err != nil {
		t.Fatal(err)
	}
	v, err := DirectRead(tm, 0)
	if err != nil || v != 42 {
		t.Fatalf("DirectRead = %d, %v", v, err)
	}
	// Each direct op is its own committed transaction.
	if tm.begun != 2 {
		t.Errorf("begun %d transactions, want 2", tm.begun)
	}
}

// TestDirectOpsRecorded: §7's encapsulation — non-transactional accesses
// appear as single-operation committed transactions in the history, and
// mixing them with ordinary transactions stays opaque.
func TestDirectOpsRecorded(t *testing.T) {
	rec := NewRecorder(newFake(2))
	if err := DirectWrite(rec, 0, 1); err != nil {
		t.Fatal(err)
	}
	err := Atomically(rec, func(tx Tx) error {
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		return tx.Write(1, v+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DirectRead(rec, 1); err != nil {
		t.Fatal(err)
	}
	h := rec.History()
	if got := len(h.Transactions()); got != 3 {
		t.Fatalf("%d transactions, want 3 (2 direct + 1 ordinary)", got)
	}
	for _, tx := range h.Transactions() {
		if !h.Committed(tx) {
			t.Errorf("T%d not committed", int(tx))
		}
	}
	// The direct ops are single-operation transactions.
	if n := len(h.OpExecs(1)); n != 1 {
		t.Errorf("direct write transaction has %d ops", n)
	}
	res, err := core.Opaque(h)
	if err != nil || !res.Opaque {
		t.Errorf("mixed history must be opaque: %v %v", res, err)
	}
	// And the committed values line up.
	if h.OpExecs(3)[0].Ret != 2 {
		t.Errorf("final direct read = %v, want 2", h.OpExecs(3)[0].Ret)
	}
}

// TestDirectOpsAgainstRealEngine exercises the helpers on a real engine
// under light concurrency.
func TestDirectOpsWithNestingEndToEnd(t *testing.T) {
	tm := newFake(4)
	err := Atomically(tm, func(tx Tx) error {
		if err := tx.Write(0, 1); err != nil {
			return err
		}
		child := Nest(tx)
		if err := child.Write(1, 2); err != nil {
			return err
		}
		if err := child.Commit(); err != nil {
			return err
		}
		doomed := Nest(tx)
		if err := doomed.Write(2, 3); err != nil {
			return err
		}
		doomed.Abort()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tm.vals[0] != 1 || tm.vals[1] != 2 || tm.vals[2] != 0 {
		t.Errorf("final %v, want [1 2 0 0]", tm.vals)
	}
}
