// Package dstm implements a DSTM-style software transactional memory
// (Herlihy, Luchangco, Moir, Scherer, PODC 2003) — the archetype the
// paper's Theorem 3 is tight for. The engine is:
//
//   - progressive: a transaction is forcefully aborted only upon a
//     conflict with a concurrent live transaction (the contention manager
//     picks the victim among the two);
//   - single-version: only the latest committed state of each object is
//     kept in base shared objects (inside the current locator);
//   - invisible-read: a read operation modifies no base shared object;
//     readers are unknown to other processes.
//
// To remain opaque under these three properties the engine validates its
// entire read set on every operation — Θ(r) base-object steps for a
// transaction that has read r objects, hence Θ(k) worst-case operation
// complexity and Θ(k²) for a transaction reading all k objects. This is
// exactly the cost Theorem 3 proves unavoidable: with invisible reads no
// other process can warn the reader that its snapshot was invalidated,
// so the reader must re-examine every object it read.
//
// Writes acquire object ownership via CAS on a per-object locator, as in
// DSTM: the locator points at the owner's descriptor and carries the old
// (committed) and new (speculative) value. Aborting a transaction is a
// single CAS on its status word, which implicitly reverts every object it
// owns to the old value — revocable "virtual" locks.
//
// One deviation from the 2003 paper: update transactions serialize their
// commit-time validation and status change under a global commit lock.
// DSTM as literally published validates and then CASes its status in two
// separate steps, which admits a write-skew race between two update
// transactions that validate concurrently and then both commit; the
// commit lock closes it. The lock adds O(1) steps to commit, keeps reads
// invisible (read operations still write nothing), and does not affect
// the Θ(k) per-operation validation cost that the lower bound is about.
// Read-only transactions commit without touching the lock.
package dstm

import (
	"otm/internal/base"
	"otm/internal/cm"
	"otm/internal/stm"
)

// locator is the per-object descriptor of DSTM: the current owner and the
// old/new values. The committed value of the object is newVal if the
// owner committed, oldVal otherwise.
type locator struct {
	owner  *txDesc
	oldVal int
	newVal int
}

// txDesc is the shared transaction descriptor other processes CAS to
// abort the transaction.
type txDesc struct {
	status base.I32
	info   *cm.Info
}

// committedDesc is the descriptor used for pre-initialized locators.
var committedDesc = func() *txDesc {
	d := &txDesc{info: cm.NewInfo()}
	d.status.Store(nil, stm.StatusCommitted)
	return d
}()

// TM is a DSTM-style transactional memory over Len integer registers.
type TM struct {
	objs []base.Word[locator]
	mgr  cm.Manager
	lock base.U64 // global commit lock for update transactions
}

// New returns a DSTM-style TM with n objects initialized to 0, using mgr
// to arbitrate conflicts (nil defaults to cm.Aggressive).
func New(n int, mgr cm.Manager) *TM {
	if mgr == nil {
		mgr = cm.Aggressive{}
	}
	t := &TM{objs: make([]base.Word[locator], n), mgr: mgr}
	for i := range t.objs {
		t.objs[i].Store(nil, &locator{owner: committedDesc})
	}
	return t
}

// Name implements stm.TM.
func (t *TM) Name() string { return "dstm" }

// Len implements stm.TM.
func (t *TM) Len() int { return len(t.objs) }

// Begin implements stm.TM.
func (t *TM) Begin() stm.Tx {
	return &tx{
		tm:     t,
		desc:   &txDesc{info: cm.NewInfo()},
		writes: make(map[int]*locator),
	}
}

// readEntry remembers the value observed by an invisible read, for
// revalidation.
type readEntry struct {
	obj int
	val int
}

type tx struct {
	tm      *TM
	desc    *txDesc
	steps   base.StepCounter
	reads   []readEntry
	readIdx map[int]int // object -> index in reads
	writes  map[int]*locator
	done    bool
}

// Steps implements stm.Tx.
func (t *tx) Steps() int64 { return t.steps.Count() }

// currentValue returns the latest committed value recorded in l: newVal
// if the owner committed, oldVal if it is active or aborted. Costs one
// step (the owner-status load); loading the locator itself is charged by
// the caller.
func (t *tx) currentValue(l *locator) int {
	if l.owner.status.Load(&t.steps) == stm.StatusCommitted {
		return l.newVal
	}
	return l.oldVal
}

// validate re-checks every read against the current committed state —
// the Θ(r) per-operation cost of invisible reads.
func (t *tx) validate() bool {
	for _, re := range t.reads {
		l := t.tm.objs[re.obj].Load(&t.steps)
		if own, ok := t.writes[re.obj]; ok && l == own {
			// We own the object: the committed value our read must match
			// is frozen in our locator's oldVal (anyone stealing the
			// object aborts us first, which selfAborted detects).
			if own.oldVal != re.val {
				return false
			}
			continue
		}
		if t.currentValue(l) != re.val {
			return false
		}
	}
	return true
}

// selfAborted reports (with one step) whether another process aborted us.
func (t *tx) selfAborted() bool {
	return t.desc.status.Load(&t.steps) != stm.StatusActive
}

// abortSelf transitions the transaction to aborted (idempotent).
func (t *tx) abortSelf() {
	t.desc.status.CAS(&t.steps, stm.StatusActive, stm.StatusAborted)
	t.done = true
}

// Read implements stm.Tx: an invisible read with full read-set
// validation.
func (t *tx) Read(i int) (int, error) {
	if t.done {
		return 0, stm.ErrAborted
	}
	if t.selfAborted() {
		t.done = true
		return 0, stm.ErrAborted
	}
	if own, ok := t.writes[i]; ok {
		// Read own speculative write: transaction-local, no base steps.
		return own.newVal, nil
	}
	l := t.tm.objs[i].Load(&t.steps)
	v := t.currentValue(l)
	// Record the read first, then validate the whole snapshot including
	// it: a commit sneaking in between the value load and the validation
	// is caught because validation re-reads object i and compares.
	if t.readIdx == nil {
		t.readIdx = make(map[int]int)
	}
	fresh := false
	if _, ok := t.readIdx[i]; !ok {
		t.readIdx[i] = len(t.reads)
		t.reads = append(t.reads, readEntry{obj: i, val: v})
		t.desc.info.Opened()
		fresh = true
	}
	if !t.validate() {
		t.abortSelf()
		return 0, stm.ErrAborted
	}
	if !fresh {
		// Re-read of a known object: return the value recorded at first
		// read (the validated snapshot value).
		v = t.reads[t.readIdx[i]].val
	}
	return v, nil
}

// Write implements stm.Tx: acquire the object's locator by CAS, fighting
// live owners through the contention manager, then revalidate the read
// set.
func (t *tx) Write(i int, v int) error {
	if t.done {
		return stm.ErrAborted
	}
	if t.selfAborted() {
		t.done = true
		return stm.ErrAborted
	}
	if own, ok := t.writes[i]; ok {
		own.newVal = v // safe: visible to others only after our commit
		return nil
	}
	attempts := 0
	for {
		l := t.tm.objs[i].Load(&t.steps)
		owner := l.owner
		if owner != t.desc && owner.status.Load(&t.steps) == stm.StatusActive {
			// Conflict with a live owner: arbitrate.
			t.desc.info.Attempts = attempts
			switch t.tm.mgr.Resolve(t.desc.info, owner.info) {
			case cm.AbortOther:
				owner.status.CAS(&t.steps, stm.StatusActive, stm.StatusAborted)
			case cm.AbortSelf:
				t.abortSelf()
				return stm.ErrAborted
			case cm.Wait:
				attempts++
				if t.selfAborted() {
					t.done = true
					return stm.ErrAborted
				}
			}
			continue
		}
		old := t.currentValue(l)
		nl := &locator{owner: t.desc, oldVal: old, newVal: v}
		if !t.tm.objs[i].CAS(&t.steps, l, nl) {
			continue // lost a race; re-read the locator
		}
		t.writes[i] = nl
		t.desc.info.Opened()
		break
	}
	if !t.validate() {
		t.abortSelf()
		return stm.ErrAborted
	}
	return nil
}

// Commit implements stm.Tx. Read-only transactions validate and flip
// their status; update transactions do so under the global commit lock
// (see the package comment).
func (t *tx) Commit() error {
	if t.done {
		return stm.ErrAborted
	}
	t.done = true
	if len(t.writes) == 0 {
		if !t.validate() {
			t.abortSelf()
			return stm.ErrAborted
		}
		if !t.desc.status.CAS(&t.steps, stm.StatusActive, stm.StatusCommitted) {
			return stm.ErrAborted
		}
		return nil
	}
	for !t.tm.lock.CAS(&t.steps, 0, 1) {
		// Bounded by the other committer's O(r) critical section.
	}
	ok := t.validate() && t.desc.status.CAS(&t.steps, stm.StatusActive, stm.StatusCommitted)
	t.tm.lock.Store(&t.steps, 0)
	if !ok {
		t.abortSelf()
		return stm.ErrAborted
	}
	return nil
}

// Abort implements stm.Tx (tryA: voluntary, always succeeds).
func (t *tx) Abort() {
	if t.done {
		return
	}
	t.abortSelf()
}
