package dstm

import (
	"errors"
	"testing"

	"otm/internal/cm"
	"otm/internal/core"
	"otm/internal/stm"
	"otm/internal/stm/stmtest"
)

func TestConformance(t *testing.T) {
	managers := map[string]cm.Manager{
		"aggressive": cm.Aggressive{},
		"polite":     cm.Polite{},
		"karma":      cm.Karma{},
		"greedy":     cm.Greedy{},
	}
	for name, mgr := range managers {
		mgr := mgr
		t.Run(name, func(t *testing.T) {
			stmtest.Run(t, func(n int) stm.TM { return New(n, mgr) }, stmtest.Options{Opaque: true})
		})
	}
}

// TestZombiePrevented reproduces the paper's §2 scenario deterministically:
// T1 reads r0, T2 overwrites r0 and r1 and commits, T1 tries to read r1.
// An opaque TM must abort T1 instead of showing it the mixed snapshot.
func TestZombiePrevented(t *testing.T) {
	tm := New(2, cm.Aggressive{})
	t1 := tm.Begin()
	if v, err := t1.Read(0); err != nil || v != 0 {
		t.Fatalf("t1 read(0) = %d, %v", v, err)
	}

	t2 := tm.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2 commit: %v", err)
	}

	// T1's read set {r0=0} is now stale; validation must abort it.
	if _, err := t1.Read(1); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("t1 read(1) after conflicting commit: err = %v, want ErrAborted", err)
	}
}

// TestProgressiveNoSpuriousAbort: a transaction whose read set is NOT
// invalidated keeps running even though another transaction committed
// meanwhile — the progressive behaviour TL2 lacks (§6.2).
func TestProgressiveNoSpuriousAbort(t *testing.T) {
	tm := New(3, cm.Aggressive{})
	t1 := tm.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}

	t2 := tm.Begin()
	if err := t2.Write(1, 5); err != nil { // disjoint object
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	// T1 reads the object T2 just committed: fine — the combined snapshot
	// {r0=0, r1=5} is consistent (serialize T1 after T2).
	v, err := t1.Read(1)
	if err != nil || v != 5 {
		t.Fatalf("t1 read(1) = %d, %v; progressive TM must not abort", v, err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 commit: %v", err)
	}
}

// TestValidationCostGrows measures the Θ(r) per-read validation: the
// steps consumed by the r-th read grow linearly with the read set —
// the mechanism behind the Ω(k) bound.
func TestValidationCostGrows(t *testing.T) {
	const k = 64
	tm := New(k, cm.Aggressive{})
	tx := tm.Begin()
	var costs []int64
	for i := 0; i < k; i++ {
		before := tx.Steps()
		if _, err := tx.Read(i); err != nil {
			t.Fatal(err)
		}
		costs = append(costs, tx.Steps()-before)
	}
	if costs[k-1] <= costs[0] {
		t.Errorf("last read cost %d not greater than first %d", costs[k-1], costs[0])
	}
	// Linear growth: cost of read i is ~2(i+1)+2; check the last read
	// costs at least k steps and at most a small constant times k.
	if costs[k-1] < int64(k) {
		t.Errorf("read %d cost %d steps, expected Ω(k)=≥%d", k-1, costs[k-1], k)
	}
	if costs[k-1] > int64(8*k) {
		t.Errorf("read %d cost %d steps, expected Θ(k)≤%d", k-1, costs[k-1], 8*k)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestQuadraticTransaction: a transaction reading all k objects performs
// Θ(k²) steps in total (§6.2's tightness claim for DSTM/ASTM).
func TestQuadraticTransaction(t *testing.T) {
	for _, k := range []int{16, 32, 64} {
		tm := New(k, cm.Aggressive{})
		tx := tm.Begin()
		for i := 0; i < k; i++ {
			if _, err := tx.Read(i); err != nil {
				t.Fatal(err)
			}
		}
		steps := tx.Steps()
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		// Σ 2i + O(k) ≈ k². Accept [k²/2, 8k²].
		if steps < int64(k*k/2) || steps > int64(8*k*k) {
			t.Errorf("k=%d: %d steps, want Θ(k²)≈%d", k, steps, k*k)
		}
	}
}

// TestWriterWriterConflictAggressive: the attacker steals ownership and
// the victim's commit fails.
func TestWriterWriterConflictAggressive(t *testing.T) {
	tm := New(1, cm.Aggressive{})
	t1 := tm.Begin()
	if err := t1.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 2); err != nil { // aborts T1, takes the object
		t.Fatal(err)
	}
	if err := t1.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Errorf("victim's commit: %v, want ErrAborted", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("winner's commit: %v", err)
	}
	t3 := tm.Begin()
	if v, _ := t3.Read(0); v != 2 {
		t.Errorf("final value %d, want the winner's 2", v)
	}
}

// TestWriterWriterConflictSuicidal: the attacker yields instead.
func TestWriterWriterConflictSuicidal(t *testing.T) {
	tm := New(1, cm.Suicidal{})
	t1 := tm.Begin()
	if err := t1.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 2); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("suicidal attacker should abort itself: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("owner must survive: %v", err)
	}
}

// TestGreedySeniority: with the timestamp policy the older transaction
// wins both as attacker and as owner.
func TestGreedySeniority(t *testing.T) {
	tm := New(1, cm.Greedy{})
	older := tm.Begin()
	younger := tm.Begin()
	if err := younger.Write(0, 2); err != nil {
		t.Fatal(err)
	}
	// Older attacks younger owner: older wins.
	if err := older.Write(0, 1); err != nil {
		t.Fatalf("older attacker must win: %v", err)
	}
	if err := younger.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Error("younger owner must have been aborted")
	}
	if err := older.Commit(); err != nil {
		t.Fatal(err)
	}

	// Younger attacks older owner: younger yields.
	tm2 := New(1, cm.Greedy{})
	o2 := tm2.Begin()
	y2 := tm2.Begin()
	if err := o2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := y2.Write(0, 2); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("younger attacker must yield: %v", err)
	}
	if err := o2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestRecordedZombieScheduleOpaque replays the zombie schedule under the
// recorder: the resulting history (T1 forcefully aborted at its second
// read) must be opaque.
func TestRecordedZombieScheduleOpaque(t *testing.T) {
	rec := stm.NewRecorder(New(2, cm.Aggressive{}))
	t1 := rec.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	t2 := rec.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Read(1); !errors.Is(err, stm.ErrAborted) {
		t.Fatal("expected forceful abort")
	}
	h := rec.History()
	res, err := core.Opaque(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Fatalf("recorded abort-instead-of-zombie history must be opaque:\n%s", h.Format())
	}
}

// TestReadOwnWriteNoValidationOfStale: writing then reading back does not
// interact with other objects' state.
func TestReadOwnWriteConflictFree(t *testing.T) {
	tm := New(2, cm.Aggressive{})
	t1 := tm.Begin()
	if err := t1.Write(0, 7); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(1, 9); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, err := t1.Read(0); err != nil || v != 7 {
		t.Fatalf("own write = %d, %v", v, err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("disjoint writer must commit: %v", err)
	}
}

// TestStaleReadThenWriteAborts: T1 reads r0, T2 commits a new r0, then T1
// tries to WRITE r1 — the open-for-write validation must catch the stale
// read set too.
func TestStaleReadThenWriteAborts(t *testing.T) {
	tm := New(2, cm.Aggressive{})
	t1 := tm.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(1, 5); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("write after stale read: %v, want ErrAborted", err)
	}
}

// TestCommitValidates: a stale read set is caught at commit even when no
// further operation happens.
func TestCommitValidates(t *testing.T) {
	tm := New(2, cm.Aggressive{})
	t1 := tm.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(1, 3); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("commit with stale read set: %v, want ErrAborted", err)
	}
	t3 := tm.Begin()
	if v, _ := t3.Read(1); v != 0 {
		t.Errorf("aborted T1's write leaked: r1 = %d", v)
	}
}
