// Package stm defines the transactional-memory programming interface
// shared by every engine in this repository (internal/stm/dstm, tl2,
// vstm, mvstm, gatm), the Atomically retry helper, and a recorder that
// turns live concurrent executions into internal/history histories so
// the opacity checker can audit real runs.
//
// The interface mirrors the paper's model (§4): an application begins a
// transaction, issues operations (reads and writes of integer registers,
// the objects of the paper's examples and of Theorem 3's proof), and
// finally requests commit (tryC) or abort (tryA). Any operation may
// return ErrAborted, the engine's forceful abort.
package stm

import "errors"

// ErrAborted is returned by Read, Write and Commit when the engine has
// (forcefully) aborted the transaction — the abort event A_i arriving in
// place of an operation response or after tryC.
var ErrAborted = errors.New("stm: transaction aborted")

// TM is a transactional memory instance managing a fixed array of
// integer registers numbered 0..Len()-1.
type TM interface {
	// Name identifies the engine and its strategy, e.g. "dstm".
	Name() string
	// Len returns the number of shared objects (k = |Obj| in the paper).
	Len() int
	// Begin starts a new transaction.
	Begin() Tx
}

// Tx is a live transaction. A transaction is sequential: the caller
// issues one operation at a time and must not use a Tx from multiple
// goroutines. After Commit or Abort returns (or any operation returns
// ErrAborted), the transaction is completed and further calls return
// ErrAborted.
type Tx interface {
	// Read returns the transaction's view of object i, or ErrAborted if
	// the engine forcefully aborts the transaction instead of answering.
	Read(i int) (int, error)
	// Write sets object i to v in the transaction's view.
	Write(i int, v int) error
	// Commit is tryC: it attempts to make the transaction's updates
	// visible atomically. nil means committed; ErrAborted means the
	// commit request ended in an abort.
	Commit() error
	// Abort is tryA: it aborts the transaction voluntarily. It is
	// idempotent and never fails.
	Abort()
	// Steps returns the number of base-shared-object steps the
	// transaction has executed so far (the cost model of §6.1).
	Steps() int64
}

// Statuses of engine-internal transaction descriptors, shared by the
// engines that use revocable ownership.
const (
	StatusActive    int32 = 0
	StatusCommitted int32 = 1
	StatusAborted   int32 = 2
)

// Atomically runs fn inside transactions of tm until one commits: the
// standard retry loop TM applications use. fn is re-invoked from scratch
// after every forceful abort (each retry is a fresh transaction with a
// fresh identifier, as the paper's model prescribes). If fn returns a
// non-nil error other than ErrAborted, the transaction is aborted
// voluntarily and the error is returned. The committed attempt's result
// is nil.
func Atomically(tm TM, fn func(Tx) error) error {
	for {
		tx := tm.Begin()
		err := fn(tx)
		switch {
		case err == nil:
			if cerr := tx.Commit(); cerr == nil {
				return nil
			}
			// Forcefully aborted at commit: retry.
		case errors.Is(err, ErrAborted):
			// Forcefully aborted mid-flight: retry.
		default:
			tx.Abort()
			return err
		}
	}
}

// ReadAll is a convenience for tests and examples: it reads objects
// [0, n) in order, returning the values, or ErrAborted.
func ReadAll(tx Tx, n int) ([]int, error) {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		v, err := tx.Read(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
