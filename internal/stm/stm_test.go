package stm

import (
	"errors"
	"fmt"
	"testing"

	"otm/internal/history"
)

// fakeTM is a deterministic scriptable TM for testing the package's
// engine-independent plumbing (Atomically, Recorder) in isolation.
type fakeTM struct {
	n          int
	vals       []int
	failReads  int // abort the first N reads across all transactions
	failCommit int // abort the first N commits
	begun      int
}

func newFake(n int) *fakeTM { return &fakeTM{n: n, vals: make([]int, n)} }

func (f *fakeTM) Name() string { return "fake" }
func (f *fakeTM) Len() int     { return f.n }
func (f *fakeTM) Begin() Tx {
	f.begun++
	return &fakeTx{tm: f, local: make(map[int]int)}
}

type fakeTx struct {
	tm    *fakeTM
	local map[int]int
	steps int64
	done  bool
}

func (t *fakeTx) Read(i int) (int, error) {
	if t.done {
		return 0, ErrAborted
	}
	t.steps++
	if t.tm.failReads > 0 {
		t.tm.failReads--
		t.done = true
		return 0, ErrAborted
	}
	if v, ok := t.local[i]; ok {
		return v, nil
	}
	return t.tm.vals[i], nil
}

func (t *fakeTx) Write(i, v int) error {
	if t.done {
		return ErrAborted
	}
	t.local[i] = v
	return nil
}

func (t *fakeTx) Commit() error {
	if t.done {
		return ErrAborted
	}
	t.done = true
	if t.tm.failCommit > 0 {
		t.tm.failCommit--
		return ErrAborted
	}
	for i, v := range t.local {
		t.tm.vals[i] = v
	}
	return nil
}

func (t *fakeTx) Abort()       { t.done = true }
func (t *fakeTx) Steps() int64 { return t.steps }

func TestAtomicallyCommits(t *testing.T) {
	tm := newFake(2)
	err := Atomically(tm, func(tx Tx) error {
		return tx.Write(0, 5)
	})
	if err != nil || tm.vals[0] != 5 {
		t.Fatalf("err=%v vals=%v", err, tm.vals)
	}
	if tm.begun != 1 {
		t.Errorf("begun %d transactions, want 1", tm.begun)
	}
}

func TestAtomicallyRetriesOnForcedAbort(t *testing.T) {
	tm := newFake(1)
	tm.failReads = 2
	calls := 0
	err := Atomically(tm, func(tx Tx) error {
		calls++
		_, err := tx.Read(0)
		if err != nil {
			return err
		}
		return tx.Write(0, 9)
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("fn called %d times, want 3 (two forced aborts)", calls)
	}
	if tm.vals[0] != 9 {
		t.Error("retried transaction's write lost")
	}
}

func TestAtomicallyRetriesOnCommitAbort(t *testing.T) {
	tm := newFake(1)
	tm.failCommit = 1
	err := Atomically(tm, func(tx Tx) error { return tx.Write(0, 3) })
	if err != nil || tm.vals[0] != 3 {
		t.Fatalf("err=%v vals=%v", err, tm.vals)
	}
	if tm.begun != 2 {
		t.Errorf("begun %d, want 2", tm.begun)
	}
}

func TestAtomicallyPropagatesUserError(t *testing.T) {
	tm := newFake(1)
	boom := errors.New("boom")
	err := Atomically(tm, func(tx Tx) error {
		if werr := tx.Write(0, 7); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if tm.vals[0] != 0 {
		t.Error("failed transaction's write must be discarded")
	}
	if tm.begun != 1 {
		t.Error("user errors must not retry")
	}
}

func TestReadAll(t *testing.T) {
	tm := newFake(3)
	tm.vals = []int{1, 2, 3}
	tx := tm.Begin()
	vs, err := ReadAll(tx, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		if v != i+1 {
			t.Errorf("vs[%d]=%d", i, v)
		}
	}
	tm2 := newFake(2)
	tm2.failReads = 1
	if _, err := ReadAll(tm2.Begin(), 2); !errors.Is(err, ErrAborted) {
		t.Error("ReadAll must propagate aborts")
	}
}

func TestObjName(t *testing.T) {
	if ObjName(0) != "r0" || ObjName(17) != "r17" {
		t.Errorf("ObjName: %s %s", ObjName(0), ObjName(17))
	}
}

func TestRecorderHappyPath(t *testing.T) {
	rec := NewRecorder(newFake(2))
	if rec.Len() != 2 {
		t.Error("Len passthrough")
	}
	if rec.Name() != "fake+rec" {
		t.Errorf("Name = %q", rec.Name())
	}
	tx := rec.Begin()
	if v, err := tx.Read(0); err != nil || v != 0 {
		t.Fatal(err)
	}
	if err := tx.Write(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	h := rec.History()
	want := history.History{
		history.Inv(1, "r0", "read", nil), history.Ret(1, "r0", "read", 0),
		history.Inv(1, "r1", "write", 5), history.Ret(1, "r1", "write", history.OK),
		history.TryC(1), history.Commit(1),
	}
	if len(h) != len(want) {
		t.Fatalf("recorded %d events, want %d: %v", len(h), len(want), h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, h[i], want[i])
		}
	}
	if err := h.WellFormed(); err != nil {
		t.Error(err)
	}
}

func TestRecorderForcedAbortDuringRead(t *testing.T) {
	tm := newFake(1)
	tm.failReads = 1
	rec := NewRecorder(tm)
	tx := rec.Begin()
	if _, err := tx.Read(0); !errors.Is(err, ErrAborted) {
		t.Fatal("expected forced abort")
	}
	h := rec.History()
	// ⟨inv, A⟩: the abort event arrives in place of the response.
	if len(h) != 2 || h[0].Kind != history.KindInv || h[1].Kind != history.KindAbort {
		t.Fatalf("recorded %v", h)
	}
	if err := h.WellFormed(); err != nil {
		t.Error(err)
	}
	if !h.ForcefullyAborted(1) {
		t.Error("T1 must be forcefully aborted")
	}
	// Subsequent operations are rejected and NOT recorded.
	if _, err := tx.Read(0); !errors.Is(err, ErrAborted) {
		t.Error("post-abort read must fail")
	}
	if err := tx.Write(0, 1); !errors.Is(err, ErrAborted) {
		t.Error("post-abort write must fail")
	}
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Error("post-abort commit must fail")
	}
	if len(rec.History()) != 2 {
		t.Error("post-abort operations must not be recorded")
	}
}

func TestRecorderCommitAbort(t *testing.T) {
	tm := newFake(1)
	tm.failCommit = 1
	rec := NewRecorder(tm)
	tx := rec.Begin()
	if err := tx.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatal("expected commit abort")
	}
	h := rec.History()
	last2 := h[len(h)-2:]
	if last2[0].Kind != history.KindTryCommit || last2[1].Kind != history.KindAbort {
		t.Errorf("tail = %v, want tryC A", last2)
	}
}

func TestRecorderVoluntaryAbort(t *testing.T) {
	rec := NewRecorder(newFake(1))
	tx := rec.Begin()
	tx.Abort()
	tx.Abort() // idempotent: no duplicate events
	h := rec.History()
	if len(h) != 2 || h[0].Kind != history.KindTryAbort || h[1].Kind != history.KindAbort {
		t.Fatalf("recorded %v, want tryA A", h)
	}
}

func TestRecorderAssignsFreshTxIDs(t *testing.T) {
	rec := NewRecorder(newFake(1))
	a := rec.Begin()
	b := rec.Begin()
	_ = a.Commit()
	_ = b.Commit()
	h := rec.History()
	txs := h.Transactions()
	if len(txs) != 2 || txs[0] == txs[1] {
		t.Errorf("transactions %v", txs)
	}
}

func TestRecorderStepsPassthrough(t *testing.T) {
	rec := NewRecorder(newFake(2))
	tx := rec.Begin()
	if _, err := tx.Read(0); err != nil {
		t.Fatal(err)
	}
	if tx.Steps() != 1 {
		t.Errorf("Steps = %d, want the inner engine's 1", tx.Steps())
	}
}

func TestRecorderHistorySnapshot(t *testing.T) {
	rec := NewRecorder(newFake(1))
	tx := rec.Begin()
	if _, err := tx.Read(0); err != nil {
		t.Fatal(err)
	}
	snap := rec.History()
	n := len(snap)
	_ = tx.Commit()
	if len(snap) != n {
		t.Error("History must return an independent snapshot")
	}
}

func TestStatusConstantsDistinct(t *testing.T) {
	s := map[int32]bool{StatusActive: true, StatusCommitted: true, StatusAborted: true}
	if len(s) != 3 {
		t.Error("status constants must be distinct")
	}
}

func ExampleAtomically() {
	tm := newFake(1)
	_ = Atomically(tm, func(tx Tx) error {
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		return tx.Write(0, v+1)
	})
	fmt.Println(tm.vals[0])
	// Output: 1
}
