package vstm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"otm/internal/cm"
	"otm/internal/core"
	"otm/internal/stm"
	"otm/internal/stm/stmtest"
)

func TestConformance(t *testing.T) {
	managers := map[string]cm.Manager{
		"aggressive": cm.Aggressive{},
		"polite":     cm.Polite{MaxSpins: 2},
		"karma":      cm.Karma{MaxSpins: 2},
		"greedy":     cm.Greedy{},
	}
	for name, mgr := range managers {
		mgr := mgr
		t.Run(name, func(t *testing.T) {
			stmtest.Run(t, func(n int) stm.TM { return New(n, mgr) }, stmtest.Options{Opaque: true})
		})
	}
}

// TestVisibleReaderAbortedByWriter: the defining behaviour of visible
// reads — the writer sees the reader and kills it, instead of the reader
// having to validate. (Aggressive manager: attacker wins.)
func TestVisibleReaderAbortedByWriter(t *testing.T) {
	tm := New(2, cm.Aggressive{})
	t1 := tm.Begin()
	if v, err := t1.Read(0); err != nil || v != 0 {
		t.Fatalf("t1 read = %d, %v", v, err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 1); err != nil { // aborts the visible reader T1
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// T1 was aborted by T2; its next operation reports it.
	if _, err := t1.Read(1); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("aborted reader's next read: %v, want ErrAborted", err)
	}
}

// TestWriterYieldsToReaderSuicidal: with the Suicidal manager the writer
// defers to the registered reader.
func TestWriterYieldsToReaderSuicidal(t *testing.T) {
	tm := New(1, cm.Suicidal{})
	t1 := tm.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 1); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("suicidal writer vs reader: %v, want ErrAborted", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("reader must survive: %v", err)
	}
}

// TestNoZombiePossible: the §2 schedule cannot even be formed — T2's
// first write aborts T1, so T1 never observes the mixed snapshot.
func TestNoZombiePossible(t *testing.T) {
	tm := New(2, cm.Aggressive{})
	t1 := tm.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Read(1); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("t1 must already be dead: %v", err)
	}
}

// TestConstantReadCost: per-read step count does not grow with the read
// set — no validation, ever.
func TestConstantReadCost(t *testing.T) {
	const k = 128
	tm := New(k, cm.Aggressive{})
	tx := tm.Begin()
	var first, last int64
	for i := 0; i < k; i++ {
		before := tx.Steps()
		if _, err := tx.Read(i); err != nil {
			t.Fatal(err)
		}
		cost := tx.Steps() - before
		if i == 0 {
			first = cost
		}
		last = cost
	}
	if last > first+2 {
		t.Errorf("read cost grew from %d to %d; visible reads must be O(1)", first, last)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestEagerWriteUndoneOnAbort: an aborted eager writer's value is rolled
// back for subsequent readers.
func TestEagerWriteUndoneOnAbort(t *testing.T) {
	tm := New(1, cm.Aggressive{})
	t1 := tm.Begin()
	if err := t1.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	t1.Abort()
	t2 := tm.Begin()
	if v, err := t2.Read(0); err != nil || v != 0 {
		t.Fatalf("undo failed: read = %d, %v", v, err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestLazyRepairByReader: a reader arriving after a writer was aborted
// (by a third party) repairs the object before reading.
func TestLazyRepairByReader(t *testing.T) {
	tm := New(1, cm.Aggressive{})
	victim := tm.Begin()
	if err := victim.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	killer := tm.Begin()
	if err := killer.Write(0, 7); err != nil { // aborts victim, installs 7
		t.Fatal(err)
	}
	killer.Abort() // and then aborts voluntarily: both writes must vanish
	reader := tm.Begin()
	if v, err := reader.Read(0); err != nil || v != 0 {
		t.Fatalf("read = %d, %v; both aborted writes must be undone", v, err)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestWriterWriterConflict: ownership transfers to the aggressor.
func TestWriterWriterConflict(t *testing.T) {
	tm := New(1, cm.Aggressive{})
	t1 := tm.Begin()
	if err := t1.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Errorf("victim commit: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	t3 := tm.Begin()
	if v, _ := t3.Read(0); v != 2 {
		t.Errorf("value = %d, want 2", v)
	}
}

// TestRecordedConflictScheduleOpaque: the visible-read kill schedule
// recorded and checked.
func TestRecordedConflictScheduleOpaque(t *testing.T) {
	rec := stm.NewRecorder(New(2, cm.Aggressive{}))
	t1 := rec.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	t2 := rec.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	_, _ = t1.Read(1) // dead; recorder logs the abort
	res, err := core.Opaque(rec.History())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Fatalf("recorded history must be opaque:\n%s", rec.History().Format())
	}
}

// TestHotObjectContentionStorm hammers one object with readers and
// writers under the Polite manager — the policy whose Wait decision
// drops the object lock mid-conflict, exercising the re-scan loops in
// clearWriter/clearReaders. The final value must be one goroutine's
// last write and the register must never tear.
func TestHotObjectContentionStorm(t *testing.T) {
	tm := New(1, cm.Polite{MaxSpins: 2})
	const goroutines, rounds = 8, 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if g%2 == 0 {
					err := stm.Atomically(tm, func(tx stm.Tx) error {
						v, err := tx.Read(0)
						if err != nil {
							return err
						}
						if v%1000 >= 500 {
							return fmt.Errorf("torn value %d", v)
						}
						return tx.Write(0, g*1000+i)
					})
					if err != nil {
						t.Error(err)
						return
					}
				} else {
					err := stm.Atomically(tm, func(tx stm.Tx) error {
						v, err := tx.Read(0)
						if err != nil {
							return err
						}
						if v%1000 >= 500 {
							return fmt.Errorf("torn value %d", v)
						}
						return nil
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	v, err := stm.DirectRead(tm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v%1000 >= rounds || v/1000 >= goroutines {
		t.Errorf("final value %d is not any goroutine's write", v)
	}
}

// TestMultipleReadersCoexist: visible readers do not conflict with each
// other.
func TestMultipleReadersCoexist(t *testing.T) {
	tm := New(1, cm.Aggressive{})
	t1 := tm.Begin()
	t2 := tm.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
}
