// Package vstm implements a visible-read software transactional memory
// in the style of SXM and RSTM's visible-reader mode: every reader
// registers itself in a per-object reader list, so a writer detects
// read/write conflicts directly and resolves them through the contention
// manager — no per-operation read-set validation is ever needed.
//
// This is one of the paper's escape hatches from the Ω(k) lower bound
// (§6.2): by making reads visible (a read DOES modify base shared
// objects — the reader list), the engine keeps a constant number of
// base-object steps per operation while remaining progressive,
// single-version and opaque. The price the paper discusses is cache-line
// ping-pong on read-mostly workloads: every read now writes shared
// memory, which the throughput benchmarks expose.
//
// Writes are eager (undo-logged): a writer aborts or defers to every
// registered live reader and the current writer before installing its
// value. Because any conflicting transaction is aborted before the
// object changes, a live transaction's snapshot can never be
// invalidated — opacity holds with no validation at all.
package vstm

import (
	"otm/internal/base"
	"otm/internal/cm"
	"otm/internal/stm"
)

// txDesc is the shared transaction descriptor; objects point at it from
// reader lists and writer fields.
type txDesc struct {
	status base.I32
	info   *cm.Info
}

// object is one shared register with its spinlock-protected metadata.
// Every access to the metadata (readers map, writer, value, saved) is
// performed under lock and charged as base-object steps.
type object struct {
	lock    base.U64
	val     int
	saved   int // undo value while writer is active
	writer  *txDesc
	readers map[*txDesc]struct{}
}

// TM is a visible-read transactional memory over Len integer registers.
type TM struct {
	objs []object
	mgr  cm.Manager
}

// New returns a visible-read TM with n objects initialized to 0 and mgr
// arbitrating conflicts (nil defaults to cm.Aggressive).
func New(n int, mgr cm.Manager) *TM {
	if mgr == nil {
		mgr = cm.Aggressive{}
	}
	t := &TM{objs: make([]object, n), mgr: mgr}
	for i := range t.objs {
		t.objs[i].readers = make(map[*txDesc]struct{})
	}
	return t
}

// Name implements stm.TM.
func (t *TM) Name() string { return "vstm" }

// Len implements stm.TM.
func (t *TM) Len() int { return len(t.objs) }

// Begin implements stm.TM.
func (t *TM) Begin() stm.Tx {
	return &tx{tm: t, desc: &txDesc{info: cm.NewInfo()}}
}

type tx struct {
	tm       *TM
	desc     *txDesc
	steps    base.StepCounter
	readSet  []int
	writeSet []int
	inRead   map[int]bool
	inWrite  map[int]bool
	done     bool
}

// Steps implements stm.Tx.
func (t *tx) Steps() int64 { return t.steps.Count() }

// lockObj spins on the object's lock word; each CAS attempt is one step.
func (t *tx) lockObj(o *object) {
	for !o.lock.CAS(&t.steps, 0, 1) {
	}
}

func (t *tx) unlockObj(o *object) {
	o.lock.Store(&t.steps, 0)
}

// cleanObj, called with o locked, lazily repairs an object whose writer
// has completed: a committed writer's value stays, an aborted writer's
// undo value is restored. One status-load step when a writer is present.
func (t *tx) cleanObj(o *object) {
	if o.writer == nil {
		return
	}
	switch o.writer.status.Load(&t.steps) {
	case stm.StatusCommitted:
		o.writer = nil
	case stm.StatusAborted:
		o.val = o.saved
		o.writer = nil
	}
}

func (t *tx) selfAborted() bool {
	return t.desc.status.Load(&t.steps) != stm.StatusActive
}

// resolveOwner, called with o locked, fights the live transaction other
// for the object. It returns false if self must abort (the object lock
// is released first). On true the conflicting transaction is no longer
// live and the object has been repaired — but the Wait decision drops
// and retakes the object lock, so CALLERS MUST RE-EXAMINE the object's
// writer and reader state from scratch after every resolveOwner call
// (another transaction may have slipped in during the window).
func (t *tx) resolveOwner(o *object, other *txDesc) bool {
	attempts := 0
	for other.status.Load(&t.steps) == stm.StatusActive {
		t.desc.info.Attempts = attempts
		switch t.tm.mgr.Resolve(t.desc.info, other.info) {
		case cm.AbortOther:
			other.status.CAS(&t.steps, stm.StatusActive, stm.StatusAborted)
		case cm.AbortSelf:
			t.unlockObj(o)
			t.abortAndCleanup()
			return false
		case cm.Wait:
			attempts++
			// Drop the object lock while waiting so the owner can make
			// progress, then retake it.
			t.unlockObj(o)
			if t.selfAborted() {
				t.abortAndCleanup()
				return false
			}
			t.lockObj(o)
		}
	}
	t.cleanObj(o)
	return true
}

// clearWriter, called with o locked, repeatedly resolves whatever live
// foreign writer currently holds o until none does. Returns false if
// self aborted (lock released).
func (t *tx) clearWriter(o *object) bool {
	for {
		t.cleanObj(o)
		w := o.writer
		if w == nil || w == t.desc {
			return true
		}
		if !t.resolveOwner(o, w) {
			return false
		}
		// The lock may have been dropped mid-fight: re-examine.
	}
}

// clearReaders, called with o locked, resolves every live foreign
// visible reader of o, re-scanning after each fight because the lock may
// have been dropped and the reader set changed. Returns false if self
// aborted (lock released).
func (t *tx) clearReaders(o *object) bool {
	for {
		var victim *txDesc
		for rd := range o.readers {
			if rd == t.desc {
				continue
			}
			if rd.status.Load(&t.steps) != stm.StatusActive {
				delete(o.readers, rd)
				t.steps.Step()
				continue
			}
			victim = rd
			break
		}
		if victim == nil {
			return true
		}
		if !t.resolveOwner(o, victim) {
			return false
		}
		delete(o.readers, victim)
		t.steps.Step()
		// Re-scan: new readers (and writers) may have registered while
		// the lock was dropped; the caller re-checks the writer.
	}
}

// Read implements stm.Tx: register as a visible reader and read the
// value — O(1) base steps, no validation.
func (t *tx) Read(i int) (int, error) {
	if t.done {
		return 0, stm.ErrAborted
	}
	o := &t.tm.objs[i]
	t.lockObj(o)
	if t.selfAborted() {
		t.unlockObj(o)
		t.abortAndCleanup()
		return 0, stm.ErrAborted
	}
	if !t.clearWriter(o) {
		return 0, stm.ErrAborted
	}
	if t.selfAborted() {
		t.unlockObj(o)
		t.abortAndCleanup()
		return 0, stm.ErrAborted
	}
	if o.writer != t.desc && !t.inRead[i] {
		o.readers[t.desc] = struct{}{} // the visible part
		t.steps.Step()
		if t.inRead == nil {
			t.inRead = make(map[int]bool)
		}
		t.inRead[i] = true
		t.readSet = append(t.readSet, i)
		t.desc.info.Opened()
	}
	v := o.val
	t.steps.Step()
	t.unlockObj(o)
	return v, nil
}

// Write implements stm.Tx: abort or defer to the live writer and every
// live reader, then install the value eagerly with an undo log.
func (t *tx) Write(i int, v int) error {
	if t.done {
		return stm.ErrAborted
	}
	o := &t.tm.objs[i]
	t.lockObj(o)
	if t.selfAborted() {
		t.unlockObj(o)
		t.abortAndCleanup()
		return stm.ErrAborted
	}
	// Clear the writer, then the visible readers; every fight may drop
	// the lock, so loop until one pass finds the object free.
	for {
		if !t.clearWriter(o) {
			return stm.ErrAborted
		}
		if !t.clearReaders(o) {
			return stm.ErrAborted
		}
		t.cleanObj(o)
		if w := o.writer; w == nil || w == t.desc {
			foreign := false
			for rd := range o.readers {
				if rd != t.desc && rd.status.Load(&t.steps) == stm.StatusActive {
					foreign = true
					break
				}
			}
			if !foreign {
				break
			}
		}
	}
	if t.selfAborted() {
		t.unlockObj(o)
		t.abortAndCleanup()
		return stm.ErrAborted
	}
	if o.writer != t.desc {
		o.writer = t.desc
		o.saved = o.val
		t.steps.Step()
		if t.inWrite == nil {
			t.inWrite = make(map[int]bool)
		}
		t.inWrite[i] = true
		t.writeSet = append(t.writeSet, i)
		t.desc.info.Opened()
	}
	o.val = v
	t.steps.Step()
	t.unlockObj(o)
	return nil
}

// Commit implements stm.Tx: a single status CAS decides, then the
// transaction deregisters from its read set and releases its write set.
func (t *tx) Commit() error {
	if t.done {
		return stm.ErrAborted
	}
	t.done = true
	if !t.desc.status.CAS(&t.steps, stm.StatusActive, stm.StatusCommitted) {
		t.cleanup()
		return stm.ErrAborted
	}
	t.cleanup()
	return nil
}

// Abort implements stm.Tx.
func (t *tx) Abort() {
	if t.done {
		return
	}
	t.abortAndCleanup()
}

func (t *tx) abortAndCleanup() {
	t.desc.status.CAS(&t.steps, stm.StatusActive, stm.StatusAborted)
	t.done = true
	t.cleanup()
}

// cleanup deregisters the transaction from reader lists and repairs its
// written objects according to its final status. O(|readSet|+|writeSet|)
// once per transaction.
func (t *tx) cleanup() {
	for _, i := range t.readSet {
		o := &t.tm.objs[i]
		t.lockObj(o)
		delete(o.readers, t.desc)
		t.steps.Step()
		t.unlockObj(o)
	}
	for _, i := range t.writeSet {
		o := &t.tm.objs[i]
		t.lockObj(o)
		if o.writer == t.desc {
			t.cleanObj(o)
		}
		t.unlockObj(o)
	}
}
