package stm

import "errors"

// ErrNestedActive is returned by operations on a parent transaction
// bypassing an open nested child (callers must commit or abort the child
// first). Enforcing this keeps each transaction sequential, as the
// paper's model requires.
var ErrNestedActive = errors.New("stm: parent has an open nested transaction")

// Nest starts a closed-nested child transaction over parent (paper, §7:
// "we can treat events of each committed nested transaction as if they
// were executed directly by the parent transaction"). The child:
//
//   - sees the parent's writes (and, transitively, its ancestors');
//   - buffers its own writes locally;
//   - on Commit, replays its writes into the parent — from the TM's (and
//     the recorder's) point of view they become parent operations, which
//     is exactly the paper's flattening semantics for committed nested
//     transactions;
//   - on Abort, discards its writes without touching the parent: a
//     partial rollback the flat API cannot express.
//
// Reads performed by the child reach shared memory through the parent,
// so a forceful abort of the PARENT surfaces inside the child as
// ErrAborted — a nested transaction cannot outlive its parent. Children
// nest arbitrarily (Nest(Nest(...))).
func Nest(parent Tx) Tx {
	return &nestedTx{parent: parent, writes: make(map[int]int)}
}

type nestedTx struct {
	parent Tx
	writes map[int]int
	order  []int // write order, for deterministic replay
	done   bool
}

// Read implements Tx: child buffer first, then the parent's view.
func (t *nestedTx) Read(i int) (int, error) {
	if t.done {
		return 0, ErrAborted
	}
	if v, ok := t.writes[i]; ok {
		return v, nil
	}
	return t.parent.Read(i)
}

// Write implements Tx: buffered in the child.
func (t *nestedTx) Write(i, v int) error {
	if t.done {
		return ErrAborted
	}
	if _, seen := t.writes[i]; !seen {
		t.order = append(t.order, i)
	}
	t.writes[i] = v
	return nil
}

// Commit implements Tx: merge the child's writes into the parent. The
// child's reads already went through the parent, so nothing else moves.
func (t *nestedTx) Commit() error {
	if t.done {
		return ErrAborted
	}
	t.done = true
	for _, i := range t.order {
		if err := t.parent.Write(i, t.writes[i]); err != nil {
			return err
		}
	}
	return nil
}

// Abort implements Tx: drop the child's buffer; the parent is untouched.
func (t *nestedTx) Abort() {
	t.done = true
	t.writes = nil
}

// Steps implements Tx: the child's shared-memory work is the parent's.
func (t *nestedTx) Steps() int64 { return t.parent.Steps() }
