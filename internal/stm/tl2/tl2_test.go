package tl2

import (
	"errors"
	"testing"

	"otm/internal/core"
	"otm/internal/stm"
	"otm/internal/stm/stmtest"
)

func TestConformance(t *testing.T) {
	stmtest.Run(t, func(n int) stm.TM { return New(n) }, stmtest.Options{Opaque: true})
}

// TestNotProgressive reproduces §6.2's observation: TL2 forcefully aborts
// a transaction that conflicts only with an ALREADY COMMITTED one — a
// progressive TM (dstm) would let it continue. This is the property TL2
// trades for O(1) reads.
func TestNotProgressive(t *testing.T) {
	tm := New(2)
	t1 := tm.Begin() // rv = 0

	t2 := tm.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// T2 is completed. T1 now reads the object T2 wrote: version 1 > rv,
	// so TL2 aborts T1 although no live transaction conflicts with it.
	if _, err := t1.Read(0); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("read of post-rv version: %v, want ErrAborted", err)
	}
}

// TestZombiePrevented: the same §2 schedule as in the dstm tests; TL2
// must also never expose the mixed snapshot (it aborts at the second
// read because r1's version exceeds rv).
func TestZombiePrevented(t *testing.T) {
	tm := New(2)
	t1 := tm.Begin()
	if v, err := t1.Read(0); err != nil || v != 0 {
		t.Fatalf("t1 read(0) = %d, %v", v, err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Read(1); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("t1 read(1): %v, want ErrAborted", err)
	}
}

// TestConstantReadCost: every read costs the same small number of base
// steps regardless of how many objects were read before — the O(1)
// per-operation complexity that escapes the lower bound.
func TestConstantReadCost(t *testing.T) {
	const k = 128
	tm := New(k)
	tx := tm.Begin()
	var first, last int64
	for i := 0; i < k; i++ {
		before := tx.Steps()
		if _, err := tx.Read(i); err != nil {
			t.Fatal(err)
		}
		cost := tx.Steps() - before
		if i == 0 {
			first = cost
		}
		last = cost
	}
	if first != last {
		t.Errorf("read cost drifted from %d to %d; TL2 reads must be O(1)", first, last)
	}
	if last > 5 {
		t.Errorf("read cost %d, want ≤5 (two version loads + one value load)", last)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCommitValidationCatchesStaleRead: read before a conflicting commit,
// then try to commit an update — commit-time validation must abort.
func TestCommitValidationCatchesStaleRead(t *testing.T) {
	tm := New(2)
	t1 := tm.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(1, 7); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("stale update commit: %v, want ErrAborted", err)
	}
	t3 := tm.Begin()
	if v, _ := t3.Read(1); v != 0 {
		t.Errorf("aborted write leaked: %d", v)
	}
}

// TestReadWriteObjectStaleAtLock: T1 reads AND writes r0; T2 commits a
// newer r0 in between; T1's commit must fail at lock time.
func TestReadWriteObjectStaleAtLock(t *testing.T) {
	tm := New(1)
	t1 := tm.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 9); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("read-write object with newer version: %v, want ErrAborted", err)
	}
	t3 := tm.Begin()
	if v, _ := t3.Read(0); v != 9 {
		t.Errorf("value = %d, want T2's 9", v)
	}
}

// TestBlindWritesBothCommit: two buffered blind writers to the same
// object both commit (no read sets to invalidate); last committer wins.
func TestBlindWritesBothCommit(t *testing.T) {
	tm := New(1)
	t1 := tm.Begin()
	t2 := tm.Begin()
	if err := t1.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	t3 := tm.Begin()
	if v, _ := t3.Read(0); v != 2 {
		t.Errorf("value = %d, want the later committer's 2", v)
	}
}

// TestRecordedNonProgressiveAbortOpaque: the forceful abort TL2 performs
// is still an opaque outcome.
func TestRecordedNonProgressiveAbortOpaque(t *testing.T) {
	rec := stm.NewRecorder(New(2))
	t1 := rec.Begin()
	t2 := rec.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Read(0); !errors.Is(err, stm.ErrAborted) {
		t.Fatal("expected the non-progressive abort")
	}
	res, err := core.Opaque(rec.History())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Fatalf("recorded history must be opaque:\n%s", rec.History().Format())
	}
}

// TestReadOnlyCommitCheap: a read-only transaction's commit performs no
// base steps (TL2 read-only fast path).
func TestReadOnlyCommitCheap(t *testing.T) {
	tm := New(4)
	tx := tm.Begin()
	for i := 0; i < 4; i++ {
		if _, err := tx.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	before := tx.Steps()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := tx.Steps() - before; got != 0 {
		t.Errorf("read-only commit cost %d steps, want 0", got)
	}
}
