package tl2

import (
	"otm/internal/base"
	"otm/internal/stm"
)

// NewExtending returns a TL2 variant with LSA-style snapshot extension
// (after Riegel, Felber & Fetzer's lazy snapshot algorithm, the paper's
// [25], restricted to a single version): when a read finds an object
// version newer than the transaction's read timestamp rv, the engine
// does not abort immediately — it first tries to EXTEND the snapshot by
// revalidating every past read at the current clock and, on success,
// adopting the new clock value as rv.
//
// The variant sits exactly on the trade-off the paper's Theorem 3 is
// about. Conflict-free reads stay O(1), like TL2. But surviving the
// lower bound's scenario (a committed writer invalidating the snapshot
// between two reads) requires revalidating the whole read set — Θ(r)
// base steps, just like dstm's per-operation validation. One cannot
// both keep the transaction alive AND stay sub-linear: the engine makes
// the Ω(k) cost conditional on conflict instead of per-operation, and
// still aborts (non-progressively) when the extension fails because a
// read value truly changed.
type ExtTM struct {
	TM
}

// NewExtending returns the snapshot-extending engine over n objects.
func NewExtending(n int) *ExtTM {
	return &ExtTM{TM{vers: make([]base.U64, n), vals: make([]base.I64, n)}}
}

// Name implements stm.TM.
func (t *ExtTM) Name() string { return "tl2x" }

// Begin implements stm.TM.
func (t *ExtTM) Begin() stm.Tx {
	x := &extTx{tx: tx{tm: &t.TM}}
	x.rv = t.clock.Load(&x.steps)
	return x
}

// extTx records, unlike the plain TL2 transaction, the version observed
// by each read so the snapshot can be revalidated during extension.
type extTx struct {
	tx
	readVers map[int]uint64
}

// Read implements stm.Tx: O(1) on the happy path; on a version newer
// than rv it attempts a snapshot extension (Θ(r)) before giving up.
func (t *extTx) Read(i int) (int, error) {
	if t.done {
		return 0, stm.ErrAborted
	}
	if v, ok := t.writes[i]; ok {
		return v, nil
	}
	for {
		v1 := t.tm.vers[i].Load(&t.steps)
		val := t.tm.vals[i].Load(&t.steps)
		v2 := t.tm.vers[i].Load(&t.steps)
		if v1&lockBit != 0 || v1 != v2 {
			continue // writer mid-commit; retry the torn read
		}
		if v1>>1 > t.rv {
			if !t.extend() {
				t.done = true
				return 0, stm.ErrAborted
			}
			// rv now covers the new version; re-read to be safe against
			// commits racing the extension.
			continue
		}
		t.record(i, v1)
		return int(val), nil
	}
}

func (t *extTx) record(i int, ver uint64) {
	if t.inRead[i] {
		return
	}
	if t.inRead == nil {
		t.inRead = make(map[int]bool)
		t.readVers = make(map[int]uint64)
	}
	t.inRead[i] = true
	t.readVers[i] = ver
	t.reads = append(t.reads, i)
}

// extend revalidates the read set: every past read must still be at its
// recorded (unlocked) version. The clock is sampled BEFORE validating,
// so a concurrent commit either changed a validated version (extension
// fails) or carries a timestamp above the sampled clock (later reads of
// it will trigger another extension) — either way the reads recorded so
// far form a consistent snapshot at the sampled timestamp, which becomes
// the new rv. Θ(|readset|) base steps: the conditional form of the
// lower bound's validation cost.
func (t *extTx) extend() bool {
	now := t.tm.clock.Load(&t.steps)
	for _, i := range t.reads {
		if t.tm.vers[i].Load(&t.steps) != t.readVers[i] {
			return false
		}
	}
	t.rv = now
	return true
}

// Commit implements stm.Tx, reusing the TL2 commit (the embedded tx's
// rv has been kept current by extensions).
func (t *extTx) Commit() error { return t.tx.Commit() }
