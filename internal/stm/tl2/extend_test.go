package tl2

import (
	"errors"
	"testing"

	"otm/internal/core"
	"otm/internal/stm"
	"otm/internal/stm/stmtest"
)

func TestExtendingConformance(t *testing.T) {
	stmtest.Run(t, func(n int) stm.TM { return NewExtending(n) }, stmtest.Options{Opaque: true})
}

// TestExtensionSurvivesTheorem3Scenario: where plain TL2 aborts the
// probe read (non-progressive), the extending variant revalidates its
// snapshot and serves the new value — at Θ(r) cost.
func TestExtensionSurvivesTheorem3Scenario(t *testing.T) {
	const k = 32
	tm := NewExtending(k)
	t1 := tm.Begin()
	for i := 0; i < k/2; i++ {
		if _, err := t1.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	t2 := tm.Begin()
	if err := t2.Write(k-1, 7); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	before := t1.Steps()
	v, err := t1.Read(k - 1)
	cost := t1.Steps() - before
	if err != nil || v != 7 {
		t.Fatalf("probe read = %d, %v; extension must serve the new value", v, err)
	}
	// The extension revalidated k/2 reads: Θ(r) steps, not O(1).
	if cost < int64(k/2) {
		t.Errorf("probe cost %d steps; extension must pay Ω(r)=%d", cost, k/2)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("extended transaction must commit: %v", err)
	}
}

// TestExtensionFailsOnRealConflict: if the committed writer touched an
// object we READ, the snapshot cannot be extended and the transaction
// aborts (still not progressive — the conflicting writer completed).
func TestExtensionFailsOnRealConflict(t *testing.T) {
	tm := NewExtending(2)
	t1 := tm.Begin()
	if v, err := t1.Read(0); err != nil || v != 0 {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Read(1); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("read(1) after the snapshot was invalidated: %v, want ErrAborted", err)
	}
}

// TestExtensionConflictFreeReadsO1: without conflicts the variant keeps
// TL2's O(1) reads.
func TestExtensionConflictFreeReadsO1(t *testing.T) {
	const k = 128
	tm := NewExtending(k)
	tx := tm.Begin()
	var first, last int64
	for i := 0; i < k; i++ {
		before := tx.Steps()
		if _, err := tx.Read(i); err != nil {
			t.Fatal(err)
		}
		cost := tx.Steps() - before
		if i == 0 {
			first = cost
		}
		last = cost
	}
	if first != last {
		t.Errorf("conflict-free read cost drifted %d→%d; must stay O(1)", first, last)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestExtensionRecordedOpaque: the extension schedule produces an opaque
// history (the reader serializes after the writer).
func TestExtensionRecordedOpaque(t *testing.T) {
	rec := stm.NewRecorder(NewExtending(3))
	t1 := rec.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	t2 := rec.Begin()
	if err := t2.Write(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, err := t1.Read(1); err != nil || v != 5 {
		t.Fatalf("extended read = %d, %v", v, err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := core.Opaque(rec.History())
	if err != nil || !res.Opaque {
		t.Fatalf("extension history must be opaque: %v %v\n%s", res, err, rec.History().Format())
	}
}

// TestExtensionWriteSkewStillPrevented: commit-time validation is
// inherited from TL2.
func TestExtensionWriteSkewStillPrevented(t *testing.T) {
	tm := NewExtending(2)
	t1 := tm.Begin()
	t2 := tm.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read(1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("second skewed committer: %v, want ErrAborted", err)
	}
}
