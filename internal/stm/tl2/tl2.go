// Package tl2 implements a TL2-style software transactional memory
// (Dice, Shalev, Shavit, DISC 2006): a global version clock, per-object
// versioned write-locks, invisible reads, lazy (buffered) writes and
// commit-time locking.
//
// TL2 is the paper's example of escaping the Ω(k) lower bound by
// dropping progressiveness (§6.2): each read costs O(1) base-object
// steps — two version-word loads and one value load — because a read
// only checks that the object's version is no newer than the
// transaction's birth timestamp rv. The price is that a transaction may
// be forcefully aborted because of a transaction that has already
// committed (its version stamp exceeds rv), a conflict with a
// *completed* transaction — exactly what progressiveness forbids.
// Opacity is nevertheless guaranteed: every value returned is consistent
// with the snapshot at timestamp rv.
package tl2

import (
	"sort"

	"otm/internal/base"
	"otm/internal/stm"
)

// verWord encoding: version<<1 | lockBit.
const lockBit = 1

// TM is a TL2-style transactional memory over Len integer registers.
type TM struct {
	clock base.U64
	vers  []base.U64
	vals  []base.I64
}

// New returns a TL2-style TM with n objects initialized to 0.
func New(n int) *TM {
	return &TM{vers: make([]base.U64, n), vals: make([]base.I64, n)}
}

// Name implements stm.TM.
func (t *TM) Name() string { return "tl2" }

// Len implements stm.TM.
func (t *TM) Len() int { return len(t.vers) }

// Begin implements stm.TM: the transaction samples the global clock as
// its read version rv.
func (t *TM) Begin() stm.Tx {
	x := &tx{tm: t}
	x.rv = t.clock.Load(&x.steps)
	return x
}

type tx struct {
	tm     *TM
	rv     uint64
	steps  base.StepCounter
	reads  []int
	inRead map[int]bool
	writes map[int]int
	done   bool
}

// Steps implements stm.Tx.
func (t *tx) Steps() int64 { return t.steps.Count() }

// Read implements stm.Tx: the O(1) TL2 read — sample version, load
// value, resample version; abort unless the object is unlocked and no
// newer than rv.
func (t *tx) Read(i int) (int, error) {
	if t.done {
		return 0, stm.ErrAborted
	}
	if v, ok := t.writes[i]; ok {
		return v, nil
	}
	v1 := t.tm.vers[i].Load(&t.steps)
	val := t.tm.vals[i].Load(&t.steps)
	v2 := t.tm.vers[i].Load(&t.steps)
	if v1&lockBit != 0 || v1 != v2 || v1>>1 > t.rv {
		// Locked, torn, or written after we started: TL2 aborts — even
		// though the conflicting writer may long have committed. This is
		// the non-progressive abort.
		t.done = true
		return 0, stm.ErrAborted
	}
	if !t.inRead[i] {
		if t.inRead == nil {
			t.inRead = make(map[int]bool)
		}
		t.inRead[i] = true
		t.reads = append(t.reads, i)
	}
	return int(val), nil
}

// Write implements stm.Tx: writes are buffered locally (zero base steps)
// until commit.
func (t *tx) Write(i int, v int) error {
	if t.done {
		return stm.ErrAborted
	}
	if t.writes == nil {
		t.writes = make(map[int]int)
	}
	t.writes[i] = v
	return nil
}

// Commit implements stm.Tx: lock the write set (in object order, to
// avoid deadlock between committers), increment the global clock,
// validate the read set against rv, then write back values stamped with
// the new version.
func (t *tx) Commit() error {
	if t.done {
		return stm.ErrAborted
	}
	t.done = true
	if len(t.writes) == 0 {
		// Read-only: every read was consistent at rv; nothing to
		// publish. O(1) commit.
		return nil
	}

	wobjs := make([]int, 0, len(t.writes))
	for i := range t.writes {
		wobjs = append(wobjs, i)
	}
	sort.Ints(wobjs)

	locked := make([]int, 0, len(wobjs))
	release := func() {
		for _, i := range locked {
			v := t.tm.vers[i].Load(&t.steps)
			t.tm.vers[i].Store(&t.steps, v&^lockBit)
		}
	}
	for _, i := range wobjs {
		v := t.tm.vers[i].Load(&t.steps)
		if v&lockBit != 0 || !t.tm.vers[i].CAS(&t.steps, v, v|lockBit) {
			release()
			return stm.ErrAborted
		}
		locked = append(locked, i)
		if t.inRead[i] && v>>1 > t.rv {
			// We read this object earlier and someone committed a newer
			// version since: the read-set entry is stale.
			release()
			return stm.ErrAborted
		}
	}

	wv := t.tm.clock.Add(&t.steps, 1)

	for _, i := range t.reads {
		if t.writes != nil {
			if _, own := t.writes[i]; own {
				continue // we hold its lock
			}
		}
		v := t.tm.vers[i].Load(&t.steps)
		if v&lockBit != 0 || v>>1 > t.rv {
			release()
			return stm.ErrAborted
		}
	}

	for _, i := range wobjs {
		t.tm.vals[i].Store(&t.steps, int64(t.writes[i]))
		t.tm.vers[i].Store(&t.steps, wv<<1)
	}
	return nil
}

// Abort implements stm.Tx.
func (t *tx) Abort() {
	t.done = true
}
