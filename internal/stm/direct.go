package stm

// Non-transactional access (paper, §7): "It is preferable to require
// that every non-transactional operation has the semantics of a single
// transaction... by encapsulating every non-transactional operation into
// a committed transaction." DirectRead and DirectWrite are exactly that
// encapsulation: each runs a fresh single-operation transaction to
// completion, retrying on forceful aborts, so mixed transactional and
// non-transactional code keeps the illusion of instantaneous execution
// and recorded histories remain well-formed and checkable.
//
// An engine could special-case such transactions (the paper's footnote
// 13 suggests they need never be forcefully aborted and can skip
// logging); these helpers deliberately go through the ordinary path so
// that every engine supports them unchanged.

// DirectRead reads object i outside any user transaction, with
// single-transaction semantics.
func DirectRead(tm TM, i int) (int, error) {
	var v int
	err := Atomically(tm, func(tx Tx) error {
		var err error
		v, err = tx.Read(i)
		return err
	})
	return v, err
}

// DirectWrite writes object i outside any user transaction, with
// single-transaction semantics.
func DirectWrite(tm TM, i, v int) error {
	return Atomically(tm, func(tx Tx) error {
		return tx.Write(i, v)
	})
}
