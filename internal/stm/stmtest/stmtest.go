// Package stmtest provides a reusable conformance suite for the STM
// engines of this repository. Each engine's test package calls Run with
// a factory; the suite exercises sequential semantics, concurrency
// safety, retry behaviour and — crucially — records concurrent runs and
// feeds them to the opacity checker of internal/core, closing the loop
// between the paper's formalism and the executable engines.
package stmtest

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"otm/internal/core"
	"otm/internal/stm"
)

// Factory builds a fresh TM with n objects (initialized to 0).
type Factory func(n int) stm.TM

// Options tunes the suite for an engine's guarantees.
type Options struct {
	// Opaque engines must only produce opaque histories; the suite
	// verifies recorded runs. Set false for gatm and sistm.
	Opaque bool
	// AllowsWriteSkew skips the write-skew-prevention test for engines
	// whose committed histories are deliberately not serializable
	// (snapshot isolation).
	AllowsWriteSkew bool
	// SingleThreadedOnly skips the concurrency stress tests (unused by
	// the current engines; kept for experimentation).
	SingleThreadedOnly bool
}

// Run executes the whole conformance suite against the engine.
func Run(t *testing.T, factory Factory, opt Options) {
	t.Run("SequentialReadWrite", func(t *testing.T) { sequentialReadWrite(t, factory) })
	t.Run("ReadYourWrites", func(t *testing.T) { readYourWrites(t, factory) })
	t.Run("AbortDiscards", func(t *testing.T) { abortDiscards(t, factory) })
	t.Run("AbortedTxRejectsFurtherOps", func(t *testing.T) { abortedTxRejects(t, factory) })
	t.Run("FreshValuesAcrossTxs", func(t *testing.T) { freshValues(t, factory) })
	t.Run("StepsAccumulate", func(t *testing.T) { stepsAccumulate(t, factory) })
	t.Run("NestedTransactions", func(t *testing.T) { nestedTransactions(t, factory) })
	t.Run("DirectOps", func(t *testing.T) { directOps(t, factory) })
	if !opt.SingleThreadedOnly {
		t.Run("ConcurrentCounter", func(t *testing.T) { concurrentCounter(t, factory) })
		t.Run("BankInvariant", func(t *testing.T) { bankInvariant(t, factory, opt.Opaque) })
		if !opt.AllowsWriteSkew {
			t.Run("WriteSkewPrevented", func(t *testing.T) { writeSkewPrevented(t, factory) })
		}
		t.Run("HighContentionSwap", func(t *testing.T) { highContentionSwap(t, factory) })
		if opt.Opaque {
			t.Run("RecordedHistoryOpaque", func(t *testing.T) { recordedOpaque(t, factory) })
		}
	}
}

func mustCommit(t *testing.T, tx stm.Tx) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit failed: %v", err)
	}
}

func sequentialReadWrite(t *testing.T, factory Factory) {
	tm := factory(4)
	if tm.Len() != 4 {
		t.Fatalf("Len = %d", tm.Len())
	}
	tx := tm.Begin()
	for i := 0; i < 4; i++ {
		v, err := tx.Read(i)
		if err != nil || v != 0 {
			t.Fatalf("initial read(%d) = %d, %v", i, v, err)
		}
	}
	if err := tx.Write(1, 42); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	tx2 := tm.Begin()
	v, err := tx2.Read(1)
	if err != nil || v != 42 {
		t.Fatalf("read after commit = %d, %v", v, err)
	}
	v, err = tx2.Read(0)
	if err != nil || v != 0 {
		t.Fatalf("untouched object = %d, %v", v, err)
	}
	mustCommit(t, tx2)
}

func readYourWrites(t *testing.T, factory Factory) {
	tm := factory(2)
	tx := tm.Begin()
	if err := tx.Write(0, 7); err != nil {
		t.Fatal(err)
	}
	if v, err := tx.Read(0); err != nil || v != 7 {
		t.Fatalf("read own write = %d, %v", v, err)
	}
	if err := tx.Write(0, 8); err != nil {
		t.Fatal(err)
	}
	if v, err := tx.Read(0); err != nil || v != 8 {
		t.Fatalf("read own overwrite = %d, %v", v, err)
	}
	mustCommit(t, tx)
	tx2 := tm.Begin()
	if v, _ := tx2.Read(0); v != 8 {
		t.Fatalf("committed value = %d, want 8", v)
	}
	mustCommit(t, tx2)
}

func abortDiscards(t *testing.T, factory Factory) {
	tm := factory(2)
	tx := tm.Begin()
	if err := tx.Write(0, 99); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	tx2 := tm.Begin()
	if v, err := tx2.Read(0); err != nil || v != 0 {
		t.Fatalf("aborted write leaked: read = %d, %v", v, err)
	}
	mustCommit(t, tx2)
}

func abortedTxRejects(t *testing.T, factory Factory) {
	tm := factory(2)
	tx := tm.Begin()
	tx.Abort()
	tx.Abort() // idempotent
	if _, err := tx.Read(0); !errors.Is(err, stm.ErrAborted) {
		t.Errorf("read after abort: %v", err)
	}
	if err := tx.Write(0, 1); !errors.Is(err, stm.ErrAborted) {
		t.Errorf("write after abort: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Errorf("commit after abort: %v", err)
	}

	tx2 := tm.Begin()
	mustCommit(t, tx2)
	if err := tx2.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Errorf("double commit: %v", err)
	}
}

func freshValues(t *testing.T, factory Factory) {
	tm := factory(3)
	for round := 1; round <= 5; round++ {
		err := stm.Atomically(tm, func(tx stm.Tx) error {
			for i := 0; i < 3; i++ {
				if err := tx.Write(i, round*10+i); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		err = stm.Atomically(tm, func(tx stm.Tx) error {
			vs, err := stm.ReadAll(tx, 3)
			if err != nil {
				return err
			}
			for i, v := range vs {
				if v != round*10+i {
					t.Fatalf("round %d object %d = %d", round, i, v)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func stepsAccumulate(t *testing.T, factory Factory) {
	tm := factory(8)
	tx := tm.Begin()
	before := tx.Steps()
	if before < 0 {
		t.Fatal("negative steps")
	}
	for i := 0; i < 8; i++ {
		if _, err := tx.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	mid := tx.Steps()
	if mid < before {
		t.Error("steps must be monotonic")
	}
	mustCommit(t, tx)
	if tx.Steps() < mid {
		t.Error("commit steps must not decrease the counter")
	}
}

// nestedTransactions exercises the §7 closed-nesting wrapper against the
// real engine: committed children flatten into the parent, aborted
// children roll back alone.
func nestedTransactions(t *testing.T, factory Factory) {
	tm := factory(3)
	err := stm.Atomically(tm, func(tx stm.Tx) error {
		if err := tx.Write(0, 1); err != nil {
			return err
		}
		child := stm.Nest(tx)
		if v, err := child.Read(0); err != nil || v != 1 {
			t.Errorf("child must see parent write: %d, %v", v, err)
		}
		if err := child.Write(1, 2); err != nil {
			return err
		}
		if err := child.Commit(); err != nil {
			return err
		}
		doomed := stm.Nest(tx)
		if err := doomed.Write(2, 3); err != nil {
			return err
		}
		doomed.Abort()
		if v, err := tx.Read(1); err != nil || v != 2 {
			t.Errorf("committed child write missing: %d, %v", v, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	vs, err := stm.ReadAll(tm.Begin(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if vs[0] != 1 || vs[1] != 2 || vs[2] != 0 {
		t.Errorf("final state %v, want [1 2 0]", vs)
	}
}

// directOps exercises the §7 non-transactional access helpers.
func directOps(t *testing.T, factory Factory) {
	tm := factory(1)
	if err := stm.DirectWrite(tm, 0, 11); err != nil {
		t.Fatal(err)
	}
	if v, err := stm.DirectRead(tm, 0); err != nil || v != 11 {
		t.Fatalf("DirectRead = %d, %v", v, err)
	}
}

// concurrentCounter: G goroutines each add 1 to object 0, N times, via
// the retry loop. Exactly G*N must survive — the classic lost-update
// test.
func concurrentCounter(t *testing.T, factory Factory) {
	tm := factory(1)
	const goroutines, rounds = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				err := stm.Atomically(tm, func(tx stm.Tx) error {
					v, err := tx.Read(0)
					if err != nil {
						return err
					}
					return tx.Write(0, v+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var final int
	if err := stm.Atomically(tm, func(tx stm.Tx) error {
		v, err := tx.Read(0)
		final = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if final != goroutines*rounds {
		t.Errorf("counter = %d, want %d (lost updates)", final, goroutines*rounds)
	}
}

// bankInvariant: concurrent transfers between 8 accounts. Every
// *committed* observer transaction must have seen the total conserved;
// when the engine claims opacity, even in-flight (possibly doomed)
// observers must — that is precisely the difference between global
// atomicity and opacity, and the reason the inFlight flag exists (gatm
// legitimately shows torn totals to transactions it later aborts).
func bankInvariant(t *testing.T, factory Factory, inFlight bool) {
	const accounts, initial = 8, 100
	tm := factory(accounts)
	if err := stm.Atomically(tm, func(tx stm.Tx) error {
		for i := 0; i < accounts; i++ {
			if err := tx.Write(i, initial); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var transferrers, observers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		transferrers.Add(1)
		go func(seed int64) {
			defer transferrers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				amt := rng.Intn(20)
				err := stm.Atomically(tm, func(tx stm.Tx) error {
					fv, err := tx.Read(from)
					if err != nil {
						return err
					}
					tv, err := tx.Read(to)
					if err != nil {
						return err
					}
					if err := tx.Write(from, fv-amt); err != nil {
						return err
					}
					if from == to {
						return tx.Write(to, fv)
					}
					return tx.Write(to, tv+amt)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g) + 1)
	}
	// Observers: every committed snapshot must conserve the total.
	for g := 0; g < 2; g++ {
		observers.Add(1)
		go func() {
			defer observers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sum int
				err := stm.Atomically(tm, func(tx stm.Tx) error {
					sum = 0
					for i := 0; i < accounts; i++ {
						v, err := tx.Read(i)
						if err != nil {
							return err
						}
						sum += v
					}
					if inFlight && sum != accounts*initial {
						t.Errorf("live observer saw total %d, want %d (opacity violation)", sum, accounts*initial)
					}
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				// The attempt that committed must have seen the invariant
				// (global atomicity — required of every engine).
				if sum != accounts*initial {
					t.Errorf("committed observer saw total %d, want %d", sum, accounts*initial)
				}
			}
		}()
	}
	transferrers.Wait()
	close(stop)
	observers.Wait()

	// Final total.
	if err := stm.Atomically(tm, func(tx stm.Tx) error {
		sum := 0
		for i := 0; i < accounts; i++ {
			v, err := tx.Read(i)
			if err != nil {
				return err
			}
			sum += v
		}
		if sum != accounts*initial {
			t.Errorf("final total %d, want %d", sum, accounts*initial)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// writeSkewPrevented: the classic two-account write-skew anomaly. Both
// accounts start at 50; a transaction may withdraw 60 from one account
// only if the combined balance is at least 60. Serializably, exactly one
// withdrawal can succeed (the second sees 40 and declines), so the final
// total is 40; under write skew both would succeed, leaving −20. Every
// engine here — including gatm, whose committed transactions are
// serializable — must end at 40.
func writeSkewPrevented(t *testing.T, factory Factory) {
	for round := 0; round < 20; round++ {
		tm := factory(2)
		if err := stm.Atomically(tm, func(tx stm.Tx) error {
			if err := tx.Write(0, 50); err != nil {
				return err
			}
			return tx.Write(1, 50)
		}); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(target int) {
				defer wg.Done()
				err := stm.Atomically(tm, func(tx stm.Tx) error {
					a, err := tx.Read(0)
					if err != nil {
						return err
					}
					b, err := tx.Read(1)
					if err != nil {
						return err
					}
					if a+b < 60 {
						return nil // decline
					}
					v := a
					if target == 1 {
						v = b
					}
					return tx.Write(target, v-60)
				})
				if err != nil {
					t.Error(err)
				}
			}(g)
		}
		wg.Wait()
		var total int
		if err := stm.Atomically(tm, func(tx stm.Tx) error {
			a, err := tx.Read(0)
			if err != nil {
				return err
			}
			b, err := tx.Read(1)
			if err != nil {
				return err
			}
			total = a + b
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if total != 40 {
			t.Fatalf("round %d: final total %d, want 40 (write skew if negative)", round, total)
		}
	}
}

// highContentionSwap: goroutines repeatedly swap two hot objects; the
// multiset of values must be preserved.
func highContentionSwap(t *testing.T, factory Factory) {
	tm := factory(2)
	if err := stm.Atomically(tm, func(tx stm.Tx) error {
		if err := tx.Write(0, 1); err != nil {
			return err
		}
		return tx.Write(1, 2)
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if err := stm.Atomically(tm, func(tx stm.Tx) error {
					a, err := tx.Read(0)
					if err != nil {
						return err
					}
					b, err := tx.Read(1)
					if err != nil {
						return err
					}
					if err := tx.Write(0, b); err != nil {
						return err
					}
					return tx.Write(1, a)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := stm.Atomically(tm, func(tx stm.Tx) error {
		a, err := tx.Read(0)
		if err != nil {
			return err
		}
		b, err := tx.Read(1)
		if err != nil {
			return err
		}
		if a+b != 3 || a == b {
			t.Errorf("swap corrupted values: %d, %d", a, b)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// recordedOpaque runs a small seeded concurrent workload under the
// recorder and checks every recorded history with the definitional
// opacity checker — the integration point between engines and formalism.
func recordedOpaque(t *testing.T, factory Factory) {
	for seed := int64(1); seed <= 8; seed++ {
		rec := stm.NewRecorder(factory(4))
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 4; i++ {
					tx := rec.Begin()
					alive := true
					for op := 0; op < 3 && alive; op++ {
						obj := rng.Intn(4)
						if rng.Intn(2) == 0 {
							if _, err := tx.Read(obj); err != nil {
								alive = false
							}
						} else {
							if err := tx.Write(obj, rng.Intn(1000)+1); err != nil {
								alive = false
							}
						}
					}
					if alive {
						_ = tx.Commit()
					}
				}
			}(seed*100 + int64(g))
		}
		wg.Wait()
		h := rec.History()
		res, err := core.Check(h, core.Config{})
		if err != nil {
			t.Fatalf("seed %d: checker error: %v\n%s", seed, err, h.Format())
		}
		if !res.Opaque {
			t.Fatalf("seed %d: engine produced a non-opaque history:\n%s", seed, h.Format())
		}
	}
}
