package stm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"otm/internal/history"
)

// ObjName maps object index i to the history object identifier used by
// the recorder ("r0", "r1", ...).
func ObjName(i int) history.ObjID {
	return history.ObjID(fmt.Sprintf("r%d", i))
}

// Recorder wraps a TM and logs every transactional event of every
// transaction into a single totally-ordered history. The interleaving is
// faithful: each invocation event is appended (under the recorder's
// mutex) immediately before the engine processes the operation, and each
// response event immediately after — so the recorded order is a legal
// linearization of the real-time order of the run, exactly the "history"
// of the paper's model.
//
// Recorded histories can then be fed to internal/core.Check: a correct
// engine must only ever produce opaque histories.
type Recorder struct {
	inner TM

	mu     sync.Mutex
	h      history.History
	tap    func(history.Event)
	gate   func()
	nextTx atomic.Int64
}

// NewRecorder wraps tm. The returned Recorder is itself a TM.
func NewRecorder(tm TM) *Recorder {
	return &Recorder{inner: tm}
}

// Name implements TM.
func (r *Recorder) Name() string { return r.inner.Name() + "+rec" }

// Len implements TM.
func (r *Recorder) Len() int { return r.inner.Len() }

// Begin implements TM, assigning the new transaction the next history
// identifier T1, T2, ... A registered gate (see Gate) runs first, with
// no lock held, and may block the start of the transaction.
func (r *Recorder) Begin() Tx {
	r.mu.Lock()
	gate := r.gate
	r.mu.Unlock()
	if gate != nil {
		gate()
	}
	id := history.TxID(r.nextTx.Add(1))
	return &recTx{rec: r, id: id, inner: r.inner.Begin()}
}

// Gate registers fn to run at the start of every subsequent Begin,
// before the underlying engine is consulted and with no recorder lock
// held. A monitor uses it for admission control: blocking inside fn
// delays the start of NEW transactions without impeding the events of
// transactions already running — those never pass the gate, so whatever
// quiescent point fn is waiting for remains reachable. Contrast Tap,
// which runs under the recorder mutex and must never block. A nil fn
// removes the gate.
func (r *Recorder) Gate(fn func()) {
	r.mu.Lock()
	r.gate = fn
	r.mu.Unlock()
}

// History returns a snapshot of the recorded history.
func (r *Recorder) History() history.History {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.h.Clone()
}

// Tap registers fn to observe every subsequently recorded event, in
// recording order. fn runs while the recorder's mutex is held, so it
// sees exactly the total order of the recorded history with no gaps or
// reorderings — the property an online opacity monitor needs — but it
// also serializes every transactional operation for its duration: keep
// it cheap (enqueue, not check) unless stop-the-world semantics are
// wanted, and never call back into the Recorder from inside it. A nil
// fn removes the tap.
func (r *Recorder) Tap(fn func(history.Event)) {
	r.mu.Lock()
	r.tap = fn
	r.mu.Unlock()
}

func (r *Recorder) append(evs ...history.Event) {
	r.mu.Lock()
	r.h = append(r.h, evs...)
	if r.tap != nil {
		for _, e := range evs {
			r.tap(e)
		}
	}
	r.mu.Unlock()
}

// recTx interposes on every operation of one transaction.
type recTx struct {
	rec   *Recorder
	id    history.TxID
	inner Tx
	done  bool
}

// Read implements Tx, recording inv/ret (or inv/A on forceful abort).
func (t *recTx) Read(i int) (int, error) {
	if t.done {
		return 0, ErrAborted
	}
	ob := ObjName(i)
	t.rec.append(history.Inv(t.id, ob, "read", nil))
	v, err := t.inner.Read(i)
	if err != nil {
		t.done = true
		t.rec.append(history.Abort(t.id))
		return 0, err
	}
	t.rec.append(history.Ret(t.id, ob, "read", v))
	return v, nil
}

// Write implements Tx.
func (t *recTx) Write(i int, v int) error {
	if t.done {
		return ErrAborted
	}
	ob := ObjName(i)
	t.rec.append(history.Inv(t.id, ob, "write", v))
	if err := t.inner.Write(i, v); err != nil {
		t.done = true
		t.rec.append(history.Abort(t.id))
		return err
	}
	t.rec.append(history.Ret(t.id, ob, "write", history.OK))
	return nil
}

// Commit implements Tx, recording tryC then C or A.
func (t *recTx) Commit() error {
	if t.done {
		return ErrAborted
	}
	t.done = true
	t.rec.append(history.TryC(t.id))
	err := t.inner.Commit()
	if err == nil {
		t.rec.append(history.Commit(t.id))
		return nil
	}
	if errors.Is(err, ErrAborted) {
		t.rec.append(history.Abort(t.id))
	}
	return err
}

// Abort implements Tx, recording tryA, A.
func (t *recTx) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.rec.append(history.TryA(t.id), history.Abort(t.id))
	t.inner.Abort()
}

// Steps implements Tx.
func (t *recTx) Steps() int64 { return t.inner.Steps() }
