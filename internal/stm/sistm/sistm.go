// Package sistm implements a snapshot-isolation software transactional
// memory in the style of SI-STM (Riegel, Felber, Fetzer, TRANSACT 2006)
// — the second of the paper's named examples of TMs that "explicitly
// trade safety guarantees, while recognizing the resulting dangers, for
// improved performance" (§1).
//
// The engine is multi-version: every read comes from the transaction's
// birth snapshot, so — unlike gatm — a live transaction NEVER observes
// an inconsistent state (no §2 zombies, no divide-by-zero). What it
// gives up is serializability of committed transactions: commit-time
// validation covers only WRITE-write conflicts (first-committer-wins),
// so two transactions that read overlapping data and write disjoint
// objects can both commit — the classic write-skew anomaly. The
// committed history is then neither serializable nor opaque, which the
// checkers in this repository detect on recorded runs.
//
// Complexity-wise sistm matches mvstm: O(versions) per read,
// independent of the number of objects k — another demonstration that
// the Ω(k) bound of Theorem 3 is specifically about opacity-with-
// invisible-reads-single-version-progressiveness, not about cheap reads
// per se.
package sistm

import (
	"sync/atomic"

	"otm/internal/base"
	"otm/internal/stm"
)

// version is one committed version of an object (newest first).
type version struct {
	ver  uint64
	val  int
	next atomic.Pointer[version]
}

// TM is a snapshot-isolation transactional memory over Len integer
// registers.
type TM struct {
	clock base.U64
	lock  base.U64
	heads []base.Word[version]
}

// New returns an SI TM with n objects initialized to 0 at version 0.
func New(n int) *TM {
	t := &TM{heads: make([]base.Word[version], n)}
	for i := range t.heads {
		t.heads[i].Store(nil, &version{})
	}
	return t
}

// Name implements stm.TM.
func (t *TM) Name() string { return "sistm" }

// Len implements stm.TM.
func (t *TM) Len() int { return len(t.heads) }

// Begin implements stm.TM.
func (t *TM) Begin() stm.Tx {
	x := &tx{tm: t}
	x.readTS = t.clock.Load(&x.steps)
	return x
}

type tx struct {
	tm     *TM
	readTS uint64
	steps  base.StepCounter
	writes map[int]int
	done   bool
}

// Steps implements stm.Tx.
func (t *tx) Steps() int64 { return t.steps.Count() }

// Read implements stm.Tx: always from the birth snapshot — consistent,
// never aborts, never validated against other objects.
func (t *tx) Read(i int) (int, error) {
	if t.done {
		return 0, stm.ErrAborted
	}
	if v, ok := t.writes[i]; ok {
		return v, nil
	}
	v := t.tm.heads[i].Load(&t.steps)
	for v != nil && v.ver > t.readTS {
		t.steps.Step()
		v = v.next.Load()
	}
	if v == nil {
		return 0, stm.ErrAborted // unreachable: version 0 persists
	}
	return v.val, nil
}

// Write implements stm.Tx: buffered until commit.
func (t *tx) Write(i int, v int) error {
	if t.done {
		return stm.ErrAborted
	}
	if t.writes == nil {
		t.writes = make(map[int]int)
	}
	t.writes[i] = v
	return nil
}

// Commit implements stm.Tx: first-committer-wins on the WRITE set only.
// The read set is deliberately not validated — that is the whole
// difference from mvstm, and the source of write skew.
func (t *tx) Commit() error {
	if t.done {
		return stm.ErrAborted
	}
	t.done = true
	if len(t.writes) == 0 {
		return nil
	}
	for !t.tm.lock.CAS(&t.steps, 0, 1) {
	}
	for i := range t.writes {
		head := t.tm.heads[i].Load(&t.steps)
		if head.ver > t.readTS {
			// Someone committed a write to an object WE write since our
			// snapshot: first committer wins, we abort.
			t.tm.lock.Store(&t.steps, 0)
			return stm.ErrAborted
		}
	}
	wv := t.tm.clock.Add(&t.steps, 1)
	for i, val := range t.writes {
		head := t.tm.heads[i].Load(&t.steps)
		nv := &version{ver: wv, val: val}
		nv.next.Store(head)
		t.tm.heads[i].Store(&t.steps, nv)
	}
	t.tm.lock.Store(&t.steps, 0)
	return nil
}

// Abort implements stm.Tx.
func (t *tx) Abort() {
	t.done = true
}
