package sistm

import (
	"errors"
	"testing"

	"otm/internal/criteria"
	"otm/internal/stm"
	"otm/internal/stm/stmtest"
)

func TestConformance(t *testing.T) {
	stmtest.Run(t, func(n int) stm.TM { return New(n) },
		stmtest.Options{Opaque: false, AllowsWriteSkew: true})
}

// TestSnapshotReadsAlwaysConsistent: unlike gatm, SI never shows a mixed
// snapshot — the §2 zombie schedule is harmless here (the reader sees
// the OLD y, like mvstm).
func TestSnapshotReadsAlwaysConsistent(t *testing.T) {
	tm := New(2)
	t1 := tm.Begin()
	if v, err := t1.Read(0); err != nil || v != 0 {
		t.Fatalf("read(0) = %d, %v", v, err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	v, err := t1.Read(1)
	if err != nil || v != 0 {
		t.Fatalf("read(1) = %d, %v; SI must serve the old snapshot", v, err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("read-only SI transactions always commit: %v", err)
	}
}

// TestWriteSkewHappens: the defining SI anomaly, deterministic. T1 and
// T2 each read both objects and write the OTHER one; under SI both
// commit, producing a non-serializable (hence non-opaque) outcome.
func TestWriteSkewHappens(t *testing.T) {
	tm := New(2)
	if err := stm.DirectWrite(tm, 0, 50); err != nil {
		t.Fatal(err)
	}
	if err := stm.DirectWrite(tm, 1, 50); err != nil {
		t.Fatal(err)
	}
	t1 := tm.Begin()
	t2 := tm.Begin()
	for _, tx := range []stm.Tx{t1, t2} {
		if _, err := tx.Read(0); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Read(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := t1.Write(0, 50-60); err != nil { // withdraw 60 from account 0
		t.Fatal(err)
	}
	if err := t2.Write(1, 50-60); err != nil { // withdraw 60 from account 1
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 commit: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2 commit must succeed under SI (disjoint write sets): %v", err)
	}
	a, _ := stm.DirectRead(tm, 0)
	b, _ := stm.DirectRead(tm, 1)
	if a+b != -20 {
		t.Fatalf("total = %d; the write-skew outcome is -20", a+b)
	}
}

// TestRecordedWriteSkewVerdicts: the recorded write-skew run is neither
// opaque NOR serializable — a different criteria signature from gatm,
// whose committed projection stays serializable. SI trades a different
// part of safety.
func TestRecordedWriteSkewVerdicts(t *testing.T) {
	rec := stm.NewRecorder(New(2))
	seed := rec.Begin()
	if err := seed.Write(0, 50); err != nil {
		t.Fatal(err)
	}
	if err := seed.Write(1, 50); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	t1 := rec.Begin()
	t2 := rec.Begin()
	for _, tx := range []stm.Tx{t1, t2} {
		if _, err := tx.Read(0); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Read(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := t1.Write(0, -10); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, -10); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	rep, err := criteria.Evaluate(rec.History(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Opaque {
		t.Error("write-skew history must not be opaque")
	}
	if rep.Serializable {
		t.Error("write-skew history must not even be serializable")
	}
	if !rep.StrictlyRecoverable {
		t.Error("SI reads only committed versions: recoverable")
	}
}

// TestFirstCommitterWinsOnWriteWrite: overlapping WRITE sets are still
// detected.
func TestFirstCommitterWinsOnWriteWrite(t *testing.T) {
	tm := New(1)
	t1 := tm.Begin()
	t2 := tm.Begin()
	if err := t1.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("second writer: %v, want ErrAborted", err)
	}
	if v, _ := stm.DirectRead(tm, 0); v != 1 {
		t.Errorf("value = %d, want the first committer's 1", v)
	}
}

// TestConstantReadCost: per-read steps independent of the object count.
func TestConstantReadCost(t *testing.T) {
	cost := func(k int) int64 {
		tm := New(k)
		tx := tm.Begin()
		for i := 0; i < k/2; i++ {
			if _, err := tx.Read(i); err != nil {
				t.Fatal(err)
			}
		}
		before := tx.Steps()
		if _, err := tx.Read(k - 1); err != nil {
			t.Fatal(err)
		}
		d := tx.Steps() - before
		tx.Abort()
		return d
	}
	if c16, c512 := cost(16), cost(512); c16 != c512 {
		t.Errorf("per-read cost depends on k: %d vs %d", c16, c512)
	}
}
