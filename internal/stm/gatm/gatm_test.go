package gatm

import (
	"errors"
	"testing"

	"otm/internal/core"
	"otm/internal/criteria"
	"otm/internal/stm"
	"otm/internal/stm/stmtest"
)

func TestConformance(t *testing.T) {
	// Opaque: false — gatm deliberately is not; the suite skips the
	// recorded-opacity check.
	stmtest.Run(t, func(n int) stm.TM { return New(n) }, stmtest.Options{Opaque: false})
}

// TestZombieObservesInconsistentState is experiment E12: the §2 zombie
// schedule against the constant-complexity GA-only engine. T1 reads the
// OLD r0 and the NEW r1 — the inconsistent snapshot an opaque TM must
// never expose. T1 is then aborted at commit, so committed transactions
// stay serializable: global atomicity holds, opacity does not.
func TestZombieObservesInconsistentState(t *testing.T) {
	tm := New(2)
	t1 := tm.Begin()
	if v, err := t1.Read(0); err != nil || v != 0 {
		t.Fatalf("t1 read(0) = %d, %v", v, err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// The zombie read: gatm happily returns the latest committed r1.
	v, err := t1.Read(1)
	if err != nil {
		t.Fatalf("gatm must answer the zombie read: %v", err)
	}
	if v != 1 {
		t.Fatalf("t1 read(1) = %d; the inconsistent snapshot requires 1", v)
	}
	// Commit-time validation kills the zombie, preserving global
	// atomicity.
	if err := t1.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("zombie's commit: %v, want ErrAborted", err)
	}
}

// TestRecordedZombieHistoryVerdicts: record the schedule above and check
// it against the whole criteria battery — the executable version of the
// paper's Figure 1 punchline.
func TestRecordedZombieHistoryVerdicts(t *testing.T) {
	rec := stm.NewRecorder(New(2))
	t1 := rec.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	t2 := rec.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Read(1); err != nil {
		t.Fatal(err)
	}
	_ = t1.Commit() // aborted

	h := rec.History()
	rep, err := criteria.Evaluate(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Opaque {
		t.Errorf("zombie history must NOT be opaque:\n%s", h.Format())
	}
	if !rep.GloballyAtomic {
		t.Errorf("committed projection must stay globally atomic:\n%s", h.Format())
	}
	if !rep.StrictlyRecoverable {
		t.Errorf("gatm reads only committed values; history must be recoverable:\n%s", h.Format())
	}
}

// TestConstantReadCost: the whole point of dropping opacity — O(1) reads
// with invisible readers and a single version.
func TestConstantReadCost(t *testing.T) {
	const k = 128
	tm := New(k)
	tx := tm.Begin()
	var first, last int64
	for i := 0; i < k; i++ {
		before := tx.Steps()
		if _, err := tx.Read(i); err != nil {
			t.Fatal(err)
		}
		cost := tx.Steps() - before
		if i == 0 {
			first = cost
		}
		last = cost
	}
	if first != last {
		t.Errorf("read cost drifted from %d to %d; gatm reads must be O(1)", first, last)
	}
	if last > 5 {
		t.Errorf("read cost %d, want ≤5", last)
	}
	_ = tx.Commit()
}

// TestCommittedSerializable: concurrent committed transactions remain
// strictly serializable (validation at commit), even across the zombie
// window.
func TestCommittedSerializable(t *testing.T) {
	rec := stm.NewRecorder(New(3))
	// Three sequential committed updaters and one zombie reader.
	for round := 1; round <= 3; round++ {
		tx := rec.Begin()
		if _, err := tx.Read(round - 1); err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(round%3, round*10); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	h := rec.History()
	if ok, err := criteria.StrictlySerializable(h, nil); err != nil || !ok {
		t.Errorf("committed projection must be strictly serializable: %v %v\n%s", ok, err, h.Format())
	}
	// And in this all-committed sequential run, even opacity holds.
	res, err := core.Opaque(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Errorf("sequential committed-only gatm run is opaque:\n%s", h.Format())
	}
}

// TestStaleReadCommitAborts: commit-time validation detail — a read
// version bumped by a later committer fails validation.
func TestStaleReadCommitAborts(t *testing.T) {
	tm := New(2)
	t1 := tm.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(1, 5); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 9); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("stale read at commit: %v, want ErrAborted", err)
	}
}

// TestReadWriteSameObjectValidatedAtLock: read-then-write object staleness
// is caught while locking.
func TestReadWriteSameObjectValidatedAtLock(t *testing.T) {
	tm := New(1)
	t1 := tm.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	if err := t2.Write(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("read-write staleness: %v, want ErrAborted", err)
	}
}
