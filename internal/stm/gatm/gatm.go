// Package gatm implements the paper's §6 counterexample algorithm: a
// single-version, invisible-read TM with constant per-operation
// complexity that ensures global atomicity (committed transactions are
// strictly serializable) and strict recoverability (transactions only
// ever read committed values), but NOT opacity.
//
// Its existence is what makes opacity load-bearing in Theorem 3: the
// lower bound evaporates the moment the correctness requirement is
// weakened to global atomicity + recoverability, because a read can
// simply return the latest committed value — O(1) base steps, no
// snapshot validation — and commit-time validation suffices to keep
// *committed* transactions serializable.
//
// The price: a live transaction can observe an inconsistent snapshot (a
// "zombie"). It will certainly be aborted at commit, so the committed
// history stays correct — but in a TM, unlike a sandboxed database, the
// zombie has already executed application code on impossible state: the
// paper's §2 examples (division by zero, runaway loop writing beyond
// array bounds) happen between the inconsistent read and the abort.
// examples/invariant demonstrates exactly this against this engine.
//
// Mechanically the engine is TL2 with the read-time "version ≤ rv" check
// removed: per-object versioned write-locks, buffered writes, commit-time
// locking and read-set validation. A read double-checks only that it saw
// an unlocked, untorn (version, value) pair — the minimum needed for
// recoverability (never expose a speculative value), not consistency.
package gatm

import (
	"sort"

	"otm/internal/base"
	"otm/internal/stm"
)

const lockBit = 1

// TM is the global-atomicity-only transactional memory over Len integer
// registers.
type TM struct {
	vers []base.U64
	vals []base.I64
}

// New returns a gatm TM with n objects initialized to 0.
func New(n int) *TM {
	return &TM{vers: make([]base.U64, n), vals: make([]base.I64, n)}
}

// Name implements stm.TM.
func (t *TM) Name() string { return "gatm" }

// Len implements stm.TM.
func (t *TM) Len() int { return len(t.vers) }

// Begin implements stm.TM. No clock to sample: reads are unanchored.
func (t *TM) Begin() stm.Tx {
	return &tx{tm: t}
}

// readEntry remembers the version observed, for commit-time validation.
type readEntry struct {
	obj int
	ver uint64
}

type tx struct {
	tm     *TM
	steps  base.StepCounter
	reads  []readEntry
	inRead map[int]uint64
	writes map[int]int
	done   bool
}

// Steps implements stm.Tx.
func (t *tx) Steps() int64 { return t.steps.Count() }

// Read implements stm.Tx: return the latest committed value, whatever
// snapshot it belongs to. O(1) steps; the opacity-violating read.
func (t *tx) Read(i int) (int, error) {
	if t.done {
		return 0, stm.ErrAborted
	}
	if v, ok := t.writes[i]; ok {
		return v, nil
	}
	for {
		v1 := t.tm.vers[i].Load(&t.steps)
		if v1&lockBit != 0 {
			continue // writer mid-commit; spin briefly
		}
		val := t.tm.vals[i].Load(&t.steps)
		v2 := t.tm.vers[i].Load(&t.steps)
		if v1 != v2 {
			continue
		}
		if _, ok := t.inRead[i]; !ok {
			if t.inRead == nil {
				t.inRead = make(map[int]uint64)
			}
			t.inRead[i] = v1
			t.reads = append(t.reads, readEntry{obj: i, ver: v1})
		}
		return int(val), nil
	}
}

// Write implements stm.Tx: buffered until commit, zero base steps.
func (t *tx) Write(i int, v int) error {
	if t.done {
		return stm.ErrAborted
	}
	if t.writes == nil {
		t.writes = make(map[int]int)
	}
	t.writes[i] = v
	return nil
}

// Commit implements stm.Tx: lock the write set in order, validate that
// every read version is unchanged and unlocked, write back with bumped
// versions. Commit-time validation keeps committed transactions
// serializable (global atomicity) even though live reads were never
// checked against each other.
func (t *tx) Commit() error {
	if t.done {
		return stm.ErrAborted
	}
	t.done = true

	wobjs := make([]int, 0, len(t.writes))
	for i := range t.writes {
		wobjs = append(wobjs, i)
	}
	sort.Ints(wobjs)

	locked := make([]int, 0, len(wobjs))
	release := func() {
		for _, i := range locked {
			v := t.tm.vers[i].Load(&t.steps)
			t.tm.vers[i].Store(&t.steps, v&^lockBit)
		}
	}
	for _, i := range wobjs {
		v := t.tm.vers[i].Load(&t.steps)
		if v&lockBit != 0 || !t.tm.vers[i].CAS(&t.steps, v, v|lockBit) {
			release()
			return stm.ErrAborted
		}
		locked = append(locked, i)
		if want, ok := t.inRead[i]; ok && v != want {
			release()
			return stm.ErrAborted
		}
	}
	for _, re := range t.reads {
		if _, own := t.writes[re.obj]; own {
			continue // checked while locking
		}
		v := t.tm.vers[re.obj].Load(&t.steps)
		if v != re.ver {
			release()
			return stm.ErrAborted
		}
	}
	for _, i := range wobjs {
		t.tm.vals[i].Store(&t.steps, int64(t.writes[i]))
		v := t.tm.vers[i].Load(&t.steps)
		t.tm.vers[i].Store(&t.steps, (v&^lockBit)+2)
	}
	return nil
}

// Abort implements stm.Tx.
func (t *tx) Abort() {
	t.done = true
}
