package spec

import (
	"sync"
	"sync/atomic"
)

// SharedInterner is the concurrency-safe variant of Interner: many
// goroutines may Intern and resolve states at once. It keeps the same
// contract — dense int32 ids keyed by State.Key, one canonical
// representative per id, a panic instead of id wraparound — but
// distributes the key table over lock stripes so concurrent interning of
// distinct states rarely contends, and stores the representatives in an
// append-only paged array so State(id) is a lock-free read.
//
// It backs the pool-wide shared search tables of internal/core
// (core.SharedTables), where every checkpool worker interns into one
// table instead of paying the interning ×Workers times.
type SharedInterner struct {
	stripes [internStripes]internStripe
	states  pagedStates
}

// internStripes must be a power of two; 64 keeps 8–16 workers almost
// always on distinct stripes after the warmup phase.
const internStripes = 64

type internStripe struct {
	mu  sync.RWMutex
	ids map[string]int32
}

// NewSharedInterner returns an empty SharedInterner.
func NewSharedInterner() *SharedInterner {
	it := &SharedInterner{}
	for i := range it.stripes {
		it.stripes[i].ids = make(map[string]int32)
	}
	return it
}

// fnv32 is FNV-1a over the key bytes; only the stripe choice depends on
// it, so the exact function is free to change.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Intern returns the id of st, assigning the next free id if st's key has
// not been seen before. Concurrent calls with equal keys always agree on
// the id: the losing racer re-checks under the stripe's write lock before
// allocating.
func (it *SharedInterner) Intern(st State) int32 {
	key := st.Key()
	sp := &it.stripes[fnv32(key)&(internStripes-1)]
	sp.mu.RLock()
	id, ok := sp.ids[key]
	sp.mu.RUnlock()
	if ok {
		return id
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if id, ok := sp.ids[key]; ok {
		return id
	}
	id = it.states.append(st)
	sp.ids[key] = id
	return id
}

// State returns the canonical representative of id without locking. It
// panics if id was not returned by Intern.
func (it *SharedInterner) State(id int32) State { return it.states.get(id) }

// Len returns the number of distinct states interned so far. Under
// concurrent interning the count is a snapshot, monotonically
// non-decreasing.
func (it *SharedInterner) Len() int { return it.states.len() }

// pagedStates is an append-only id-indexed store. Appends are serialized
// by a mutex; reads index fixed-size pages through an atomically
// published page table, so resolving an id never takes a lock and never
// races with a concurrent append (an id is only ever read after it was
// published through some synchronized table, which happens-after the
// slot write).
const (
	internPageShift = 10
	internPageSize  = 1 << internPageShift
)

type internPage [internPageSize]State

type pagedStates struct {
	mu    sync.Mutex
	pages atomic.Pointer[[]*internPage]
	n     atomic.Int64
}

func (p *pagedStates) append(st State) int32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.n.Load()
	checkInternLimit(n)
	var pages []*internPage
	if t := p.pages.Load(); t != nil {
		pages = *t
	}
	if int(n>>internPageShift) == len(pages) {
		grown := make([]*internPage, len(pages)+1)
		copy(grown, pages)
		grown[len(pages)] = new(internPage)
		p.pages.Store(&grown)
		pages = grown
	}
	pages[n>>internPageShift][n&(internPageSize-1)] = st
	p.n.Store(n + 1)
	return int32(n)
}

func (p *pagedStates) get(id int32) State {
	return (*p.pages.Load())[id>>internPageShift][id&(internPageSize-1)]
}

func (p *pagedStates) len() int { return int(p.n.Load()) }
