package spec

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestInternerOverflowPanics pins the id-wraparound fix: once the int32
// id space is (simulated to be) exhausted, Intern must panic with a
// descriptive message instead of handing out a wrapped, colliding id.
func TestInternerOverflowPanics(t *testing.T) {
	defer func(orig int64) { maxInternStates = orig }(maxInternStates)
	maxInternStates = 2

	it := NewInterner()
	it.Intern(NewRegister(0))
	if id := it.Intern(NewRegister(1)); id != 1 {
		t.Fatalf("second state got id %d, want 1", id)
	}
	// Re-interning known keys must stay fine at the limit.
	if id := it.Intern(NewRegister(0)); id != 0 {
		t.Fatalf("re-intern at the limit got id %d, want 0", id)
	}
	mustPanicOverflow(t, func() { it.Intern(NewRegister(2)) })
}

// TestSharedInternerOverflowPanics: the concurrent variant shares the
// same hard limit.
func TestSharedInternerOverflowPanics(t *testing.T) {
	defer func(orig int64) { maxInternStates = orig }(maxInternStates)
	maxInternStates = 2

	it := NewSharedInterner()
	it.Intern(NewRegister(0))
	it.Intern(NewRegister(1))
	if id := it.Intern(NewRegister(1)); id != 1 {
		t.Fatalf("re-intern at the limit got id %d, want 1", id)
	}
	mustPanicOverflow(t, func() { it.Intern(NewRegister(2)) })
}

func mustPanicOverflow(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Intern past the id limit did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "interner overflow") {
			t.Fatalf("overflow panic message %q does not name the failure", msg)
		}
	}()
	f()
}

// TestSharedInternerMatchesInterner: interned sequentially, the shared
// variant assigns exactly the ids the single-goroutine Interner does.
func TestSharedInternerMatchesInterner(t *testing.T) {
	states := []State{
		NewRegister(0), NewRegister(1), NewCounter(0), NewCounter(1),
		NewRegister("0"), NewRegister(1), NewRegister(0), NewCounter(7),
	}
	it, sh := NewInterner(), NewSharedInterner()
	for i, st := range states {
		a, b := it.Intern(st), sh.Intern(st)
		if a != b {
			t.Fatalf("state %d (%s): Interner id %d, SharedInterner id %d", i, st.Key(), a, b)
		}
		if got := sh.State(b).Key(); got != st.Key() {
			t.Fatalf("state %d: State(%d).Key() = %q, want %q", i, b, got, st.Key())
		}
	}
	if it.Len() != sh.Len() {
		t.Fatalf("Len: Interner %d, SharedInterner %d", it.Len(), sh.Len())
	}
}

// TestSharedInternerConcurrent hammers one interner from many goroutines
// over an overlapping key set (every goroutine interns every state, in a
// rotated order) and checks the invariants that make shared search
// tables sound: equal keys always resolve to one id, distinct keys to
// distinct ids, ids stay dense, and every id round-trips to a canonical
// representative with the right key. Run with -race in CI.
func TestSharedInternerConcurrent(t *testing.T) {
	const goroutines = 8
	const distinct = 3000
	states := make([]State, distinct)
	for i := range states {
		states[i] = NewRegister(i)
	}

	sh := NewSharedInterner()
	got := make([][]int32, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]int32, distinct)
			for i := 0; i < distinct; i++ {
				j := (i*7 + g*distinct/goroutines) % distinct
				ids[j] = sh.Intern(states[j])
			}
			got[g] = ids
		}(g)
	}
	wg.Wait()

	if sh.Len() != distinct {
		t.Fatalf("Len() = %d after %d goroutines interned %d distinct states", sh.Len(), goroutines, distinct)
	}
	for g := 1; g < goroutines; g++ {
		for i := range got[g] {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutines 0 and %d disagree on state %d: ids %d vs %d", g, i, got[0][i], got[g][i])
			}
		}
	}
	seen := make(map[int32]bool, distinct)
	for i, id := range got[0] {
		if id < 0 || int(id) >= distinct {
			t.Fatalf("state %d: id %d not dense in [0,%d)", i, id, distinct)
		}
		if seen[id] {
			t.Fatalf("id %d assigned to two distinct states", id)
		}
		seen[id] = true
		if key := sh.State(id).Key(); key != states[i].Key() {
			t.Fatalf("State(%d).Key() = %q, want %q", id, key, states[i].Key())
		}
	}
}
