package spec

// register is the sequential specification of a read/write register
// (paper, §4): every read returns the value given as argument to the
// latest preceding write, regardless of transaction identifiers.
//
// Operations:
//
//	read()    -> current value
//	write(v)  -> ok
type register struct {
	v Value
}

// NewRegister returns the initial state of a register holding initial.
func NewRegister(initial Value) State { return register{v: initial} }

func (r register) Name() string { return "register" }

func (r register) Step(op string, arg, ret Value) (State, bool) {
	switch op {
	case "read":
		return r, arg == nil && ret == r.v
	case "write":
		return register{v: arg}, ret == OK
	default:
		return r, false
	}
}

func (r register) Key() string { return "reg:" + keyValue(r.v) }
