package spec

import "strings"

// stack is the sequential specification of a LIFO stack.
//
// Operations:
//
//	push(v) -> ok
//	pop()   -> top element, or Empty if the stack is empty
//	len()   -> number of stacked elements
type stack struct {
	items []Value // items[len-1] is the top
}

// NewStack returns the initial state of a stack holding items, bottom
// first.
func NewStack(items ...Value) State {
	return stack{items: append([]Value(nil), items...)}
}

func (s stack) Name() string { return "stack" }

func (s stack) Step(op string, arg, ret Value) (State, bool) {
	switch op {
	case "push":
		items := make([]Value, len(s.items)+1)
		copy(items, s.items)
		items[len(s.items)] = arg
		return stack{items: items}, ret == OK
	case "pop":
		if arg != nil {
			return s, false
		}
		if len(s.items) == 0 {
			return s, ret == Empty
		}
		top := s.items[len(s.items)-1]
		return stack{items: append([]Value(nil), s.items[:len(s.items)-1]...)}, ret == top
	case "len":
		return s, arg == nil && ret == len(s.items)
	default:
		return s, false
	}
}

func (s stack) Key() string {
	parts := make([]string, len(s.items))
	for i, v := range s.items {
		parts[i] = keyValue(v)
	}
	return "st:[" + strings.Join(parts, ",") + "]"
}
