package spec

import "testing"

// Keys must be distinct across object types and across states of the
// same object (equal keys promise identical continuations, §-checker
// memoization), and Name must identify the type.
func TestNamesAndKeys(t *testing.T) {
	states := map[string]State{
		"register":     NewRegister(0),
		"counter":      NewCounter(0),
		"cas-register": NewCASRegister(0),
		"set":          NewSet(),
		"queue":        NewQueue(),
		"stack":        NewStack(),
	}
	keys := map[string]string{}
	for name, s := range states {
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
		k := s.Key()
		if prev, dup := keys[k]; dup {
			t.Errorf("key %q shared by %s and %s", k, prev, name)
		}
		keys[k] = name
	}
}

func TestKeysTrackState(t *testing.T) {
	step := func(s State, op string, arg, ret Value) State {
		t.Helper()
		next, ok := s.Step(op, arg, ret)
		if !ok {
			t.Fatalf("%s(%v)->%v rejected", op, arg, ret)
		}
		return next
	}
	// Different states of each object get different keys; stepping back
	// to the same abstract state restores the key.
	r0 := NewRegister(0)
	r5 := step(r0, "write", 5, OK)
	if r0.Key() == r5.Key() {
		t.Error("register key must depend on the value")
	}
	back := step(r5, "write", 0, OK)
	if back.Key() != r0.Key() {
		t.Error("register key must be canonical")
	}

	c0 := NewCASRegister(0)
	c1 := step(c0, "cas", CASArg{Old: 0, New: 1}, true)
	if c0.Key() == c1.Key() {
		t.Error("cas-register key must change after a successful cas")
	}

	q0 := NewQueue()
	q1 := step(q0, "enq", "a", OK)
	if q0.Key() == q1.Key() {
		t.Error("queue key must change after enq")
	}
	q2 := step(q1, "deq", nil, "a")
	if q2.Key() != q0.Key() {
		t.Error("empty queue key must be canonical")
	}

	s0 := NewStack()
	s1 := step(s0, "push", 1, OK)
	if s0.Key() == s1.Key() {
		t.Error("stack key must change after push")
	}
}
