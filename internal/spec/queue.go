package spec

import "strings"

// Empty is the return value of deq on an empty queue and pop on an empty
// stack.
const Empty = "empty"

// queue is the sequential specification of a FIFO queue.
//
// Operations:
//
//	enq(v) -> ok
//	deq()  -> front element, or Empty if the queue is empty
//	len()  -> number of queued elements
type queue struct {
	items []Value
}

// NewQueue returns the initial state of a queue holding items, front
// first.
func NewQueue(items ...Value) State {
	return queue{items: append([]Value(nil), items...)}
}

func (q queue) Name() string { return "queue" }

func (q queue) Step(op string, arg, ret Value) (State, bool) {
	switch op {
	case "enq":
		items := make([]Value, len(q.items)+1)
		copy(items, q.items)
		items[len(q.items)] = arg
		return queue{items: items}, ret == OK
	case "deq":
		if arg != nil {
			return q, false
		}
		if len(q.items) == 0 {
			return q, ret == Empty
		}
		return queue{items: append([]Value(nil), q.items[1:]...)}, ret == q.items[0]
	case "len":
		return q, arg == nil && ret == len(q.items)
	default:
		return q, false
	}
}

func (q queue) Key() string {
	parts := make([]string, len(q.items))
	for i, v := range q.items {
		parts[i] = keyValue(v)
	}
	return "q:[" + strings.Join(parts, ",") + "]"
}
