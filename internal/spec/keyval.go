package spec

import (
	"fmt"
	"strconv"
)

// keyValue renders one operation value for use inside a State key.
// A bare %v would let distinct values collide — int 0 and string "0"
// both print as 0, and a string containing the container separator
// (e.g. "1,2" inside a queue) would read as two elements — and states
// with colliding keys poison every memo table built on the Key
// contract. Strings are therefore quoted and all other types tagged
// with their dynamic type.
func keyValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "<nil>"
	case string:
		return strconv.Quote(x)
	case int:
		return strconv.Itoa(x)
	default:
		return fmt.Sprintf("%T(%v)", v, v)
	}
}
