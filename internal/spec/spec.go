// Package spec implements sequential specifications of shared objects
// (paper, §4, "Sequential specification of a shared object").
//
// A sequential specification Seq(ob) is a prefix-closed set of
// object-local histories. This package represents such sets operationally
// as immutable state machines: a State accepts or rejects one operation
// execution at a time, returning the successor state. A sequence of
// operation executions is in Seq(ob) iff the state machine accepts every
// execution in order starting from the object's initial state. Sequences
// ending with a pending invocation are always in Seq(ob) when their
// completed prefix is (the paper notes this as "a minor detail"); callers
// therefore only feed completed executions to Step.
//
// States are immutable values: Step returns a new State and never mutates
// the receiver. This makes cloning free and lets correctness checkers
// backtrack and memoize cheaply (see State.Key).
package spec

import "otm/internal/history"

// Value is the type of operation arguments and return values, re-exported
// from the history model for convenience.
type Value = history.Value

// OK is the conventional return value of always-succeeding mutators.
const OK = history.OK

// State is one state of an object's sequential specification.
type State interface {
	// Name returns the object type name, e.g. "register" or "counter".
	Name() string

	// Step checks one operation execution against the specification in
	// this state. It returns the successor state and true if the
	// execution (operation op called with argument arg returning ret) is
	// allowed here, or an unspecified state and false otherwise.
	Step(op string, arg, ret Value) (State, bool)

	// Key returns a fingerprint of the state: two states of the same
	// object with equal keys accept exactly the same continuations. Used
	// by checkers to memoize search states.
	Key() string
}

// Objects maps each shared object of a history to the initial state of
// its sequential specification. It is the "input parameter to the TM
// correctness criterion" that §3.4 calls for: the semantics of the
// objects is supplied alongside the history, not baked into the
// criterion.
type Objects map[history.ObjID]State

// Registers returns an Objects map giving every listed object a register
// specification with the given initial value — the common case in the
// paper's examples, where all shared objects are read/write registers.
func Registers(initial Value, ids ...history.ObjID) Objects {
	out := make(Objects, len(ids))
	for _, id := range ids {
		out[id] = NewRegister(initial)
	}
	return out
}

// RegistersFor returns register specifications (initial value zero) for
// every object appearing in h. This is the default object environment
// used by checkers when the caller supplies none.
func RegistersFor(h history.History, initial Value) Objects {
	out := make(Objects)
	for _, id := range h.Objects() {
		out[id] = NewRegister(initial)
	}
	return out
}

// Clone returns a shallow copy of the map. States themselves are
// immutable and shared.
func (o Objects) Clone() Objects {
	out := make(Objects, len(o))
	for k, v := range o {
		out[k] = v
	}
	return out
}
