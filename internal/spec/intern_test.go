package spec

import "testing"

func TestInternerEqualKeysShareIDs(t *testing.T) {
	it := NewInterner()
	a := it.Intern(NewRegister(1))
	b := it.Intern(NewRegister(1))
	if a != b {
		t.Errorf("two registers holding 1 interned to %d and %d, want equal ids", a, b)
	}
	if it.Len() != 1 {
		t.Errorf("Len() = %d after interning one distinct state", it.Len())
	}
}

func TestInternerDistinctKeysDistinctIDs(t *testing.T) {
	it := NewInterner()
	ids := map[int32]string{}
	for _, st := range []State{
		NewRegister(0),
		NewRegister(1),
		NewCounter(0), // "ctr:0" must not collide with "reg:0"
		NewCounter(1),
		NewRegister("0"), // string "0" vs int 0
	} {
		id := it.Intern(st)
		if prev, dup := ids[id]; dup {
			t.Errorf("states with keys %q and %q share id %d", prev, st.Key(), id)
		}
		ids[id] = st.Key()
	}
	if it.Len() != len(ids) {
		t.Errorf("Len() = %d, want %d", it.Len(), len(ids))
	}
}

func TestInternerStateRoundTrip(t *testing.T) {
	it := NewInterner()
	orig := NewCounter(7)
	id := it.Intern(orig)
	got := it.State(id)
	if got.Key() != orig.Key() {
		t.Errorf("State(%d).Key() = %q, want %q", id, got.Key(), orig.Key())
	}
	// The canonical representative must behave like the original.
	next, ok := got.Step("inc", nil, OK)
	if !ok || next.Key() != NewCounter(8).Key() {
		t.Errorf("canonical counter stepped to %v (ok=%v)", next, ok)
	}
	// Ids are dense, in interning order.
	if id2 := it.Intern(NewCounter(8)); id2 != id+1 {
		t.Errorf("second distinct state got id %d, want %d", id2, id+1)
	}
}
