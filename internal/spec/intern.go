package spec

import (
	"fmt"
	"math"
)

// Interner assigns small dense integer ids to States, keyed by State.Key:
// two states whose keys are equal — which by the State contract accept
// exactly the same continuations — receive the same id, and distinct keys
// receive distinct ids. Checkers use the ids as word-sized proxies for
// states, so that comparing (or hashing) whole object-state vectors is
// integer arithmetic instead of string building.
//
// An Interner also canonicalizes: State returns one representative per
// id, so repeatedly reached equal states share a single boxed value
// regardless of how many distinct State values produced them.
//
// Ids are int32, so one Interner can hold at most 2^31-1 distinct states;
// Intern panics loudly if the limit is ever reached instead of silently
// wrapping ids (see maxInternStates). In practice the search contexts of
// internal/core rebuild their tables long before then, but a days-long
// session over a huge value domain must shard or flush rather than rely
// on the id space (ROADMAP: per-checkpoint table compaction).
//
// Interners are not safe for concurrent use; give each goroutine its
// own, or use SharedInterner.
type Interner struct {
	ids    map[string]int32
	states []State
}

// maxInternStates caps the number of distinct states one interner (of
// either flavor) can hold: ids are int32 and must never wrap. A variable
// rather than a constant so the overflow path is testable without
// interning 2^31 states.
var maxInternStates = int64(math.MaxInt32)

// checkInternLimit panics if assigning the id n would leave the int32 id
// space. n is the number of states already interned.
func checkInternLimit(n int64) {
	if n >= maxInternStates {
		panic(fmt.Sprintf(
			"spec: interner overflow: %d distinct states already interned, int32 id space exhausted; "+
				"shard the corpus or flush/rebuild the search context (see ROADMAP: per-checkpoint table compaction)", n))
	}
}

// NewInterner returns an empty Interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int32)}
}

// Intern returns the id of st, assigning the next free id if st's key has
// not been seen before. It panics if the int32 id space is exhausted
// rather than wrapping ids silently.
func (it *Interner) Intern(st State) int32 {
	key := st.Key()
	if id, ok := it.ids[key]; ok {
		return id
	}
	checkInternLimit(int64(len(it.states)))
	id := int32(len(it.states))
	it.ids[key] = id
	it.states = append(it.states, st)
	return id
}

// State returns the canonical representative of id. It panics if id was
// not returned by Intern.
func (it *Interner) State(id int32) State { return it.states[id] }

// Len returns the number of distinct states interned so far.
func (it *Interner) Len() int { return len(it.states) }
