package spec

// Interner assigns small dense integer ids to States, keyed by State.Key:
// two states whose keys are equal — which by the State contract accept
// exactly the same continuations — receive the same id, and distinct keys
// receive distinct ids. Checkers use the ids as word-sized proxies for
// states, so that comparing (or hashing) whole object-state vectors is
// integer arithmetic instead of string building.
//
// An Interner also canonicalizes: State returns one representative per
// id, so repeatedly reached equal states share a single boxed value
// regardless of how many distinct State values produced them.
//
// Interners are not safe for concurrent use; give each goroutine its own.
type Interner struct {
	ids    map[string]int32
	states []State
}

// NewInterner returns an empty Interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int32)}
}

// Intern returns the id of st, assigning the next free id if st's key has
// not been seen before.
func (it *Interner) Intern(st State) int32 {
	key := st.Key()
	if id, ok := it.ids[key]; ok {
		return id
	}
	id := int32(len(it.states))
	it.ids[key] = id
	it.states = append(it.states, st)
	return id
}

// State returns the canonical representative of id. It panics if id was
// not returned by Intern.
func (it *Interner) State(id int32) State { return it.states[id] }

// Len returns the number of distinct states interned so far.
func (it *Interner) Len() int { return len(it.states) }
