package spec

// CASArg is the argument of the cas operation on a CAS register.
type CASArg struct {
	Old, New Value
}

// casRegister is the sequential specification of a register with an
// additional compare-and-swap operation — an example of an object whose
// operations are neither read-only nor write-only (a conditional write
// whose return value matters), exercising the "arbitrary objects"
// generality the paper requires of opacity.
//
// Operations:
//
//	read()            -> current value
//	write(v)          -> ok
//	cas(CASArg{o,n})  -> true (and sets n) iff current value == o
type casRegister struct {
	v Value
}

// NewCASRegister returns the initial state of a CAS register.
func NewCASRegister(initial Value) State { return casRegister{v: initial} }

func (r casRegister) Name() string { return "cas-register" }

func (r casRegister) Step(op string, arg, ret Value) (State, bool) {
	switch op {
	case "read":
		return r, arg == nil && ret == r.v
	case "write":
		return casRegister{v: arg}, ret == OK
	case "cas":
		a, ok := arg.(CASArg)
		if !ok {
			return r, false
		}
		if r.v == a.Old {
			return casRegister{v: a.New}, ret == true
		}
		return r, ret == false
	default:
		return r, false
	}
}

func (r casRegister) Key() string { return "cas:" + keyValue(r.v) }
