package spec

import (
	"sort"
	"strings"
)

// set is the sequential specification of a mathematical set of comparable
// values, modelled after the dynamic-set data structures (linked lists,
// skip lists) that motivated DSTM. Insert and remove report whether they
// changed the set, so they are neither read-only nor write-only.
//
// Operations:
//
//	insert(v)   -> true iff v was absent
//	remove(v)   -> true iff v was present
//	contains(v) -> membership
//	size()      -> cardinality
type set struct {
	m map[Value]bool
}

// NewSet returns the initial state of a set containing the given members.
func NewSet(members ...Value) State {
	m := make(map[Value]bool, len(members))
	for _, v := range members {
		m[v] = true
	}
	return set{m: m}
}

func (s set) Name() string { return "set" }

// with returns a copy of s with v present iff in is true.
func (s set) with(v Value, in bool) set {
	m := make(map[Value]bool, len(s.m)+1)
	for k := range s.m {
		m[k] = true
	}
	if in {
		m[v] = true
	} else {
		delete(m, v)
	}
	return set{m: m}
}

func (s set) Step(op string, arg, ret Value) (State, bool) {
	switch op {
	case "insert":
		if s.m[arg] {
			return s, ret == false
		}
		return s.with(arg, true), ret == true
	case "remove":
		if !s.m[arg] {
			return s, ret == false
		}
		return s.with(arg, false), ret == true
	case "contains":
		return s, ret == s.m[arg]
	case "size":
		return s, arg == nil && ret == len(s.m)
	default:
		return s, false
	}
}

func (s set) Key() string {
	elems := make([]string, 0, len(s.m))
	for v := range s.m {
		elems = append(elems, keyValue(v))
	}
	sort.Strings(elems)
	return "set:{" + strings.Join(elems, ",") + "}"
}
