package spec

import "fmt"

// counter is the sequential specification of a shared counter — the
// richer-semantics object of the paper's §3.4, where k transactions
// concurrently increment without reading and should all be allowed to
// commit.
//
// Operations:
//
//	inc()   -> ok      increment by one
//	dec()   -> ok      decrement by one
//	add(n)  -> ok      add integer n
//	get()   -> value   read the current count
type counter struct {
	n int
}

// NewCounter returns the initial state of a counter holding initial.
func NewCounter(initial int) State { return counter{n: initial} }

func (c counter) Name() string { return "counter" }

func (c counter) Step(op string, arg, ret Value) (State, bool) {
	switch op {
	case "inc":
		return counter{n: c.n + 1}, ret == OK
	case "dec":
		return counter{n: c.n - 1}, ret == OK
	case "add":
		d, ok := arg.(int)
		if !ok {
			return c, false
		}
		return counter{n: c.n + d}, ret == OK
	case "get":
		return c, arg == nil && ret == c.n
	default:
		return c, false
	}
}

func (c counter) Key() string { return fmt.Sprintf("ctr:%d", c.n) }
