package spec

import (
	"testing"
	"testing/quick"

	"otm/internal/history"
)

// step applies a sequence of (op, arg, ret) triples and fails the test if
// any is rejected.
type exec struct {
	op       string
	arg, ret Value
}

func replay(t *testing.T, s State, execs []exec) State {
	t.Helper()
	for i, e := range execs {
		next, ok := s.Step(e.op, e.arg, e.ret)
		if !ok {
			t.Fatalf("step %d: %s(%v)->%v rejected in state %s", i, e.op, e.arg, e.ret, s.Key())
		}
		s = next
	}
	return s
}

func rejects(t *testing.T, s State, op string, arg, ret Value) {
	t.Helper()
	if _, ok := s.Step(op, arg, ret); ok {
		t.Errorf("%s(%v)->%v should be rejected in state %s", op, arg, ret, s.Key())
	}
}

func TestRegister(t *testing.T) {
	s := NewRegister(0)
	if s.Name() != "register" {
		t.Errorf("name = %q", s.Name())
	}
	s = replay(t, s, []exec{
		{"read", nil, 0},
		{"write", 5, OK},
		{"read", nil, 5},
		{"write", 7, OK},
		{"read", nil, 7},
		{"read", nil, 7},
	})
	rejects(t, s, "read", nil, 5)     // stale read
	rejects(t, s, "write", 1, "nope") // wrong return
	rejects(t, s, "read", 3, 7)       // read takes no argument
	rejects(t, s, "fetchAdd", 1, 7)   // unknown operation
}

func TestRegisterImmutability(t *testing.T) {
	s0 := NewRegister(0)
	s1, _ := s0.Step("write", 9, OK)
	if _, ok := s0.Step("read", nil, 0); !ok {
		t.Error("stepping must not mutate the original state")
	}
	if _, ok := s1.Step("read", nil, 9); !ok {
		t.Error("successor state must hold the written value")
	}
}

func TestCounter(t *testing.T) {
	s := NewCounter(0)
	s = replay(t, s, []exec{
		{"inc", nil, OK},
		{"inc", nil, OK},
		{"get", nil, 2},
		{"add", 5, OK},
		{"get", nil, 7},
		{"dec", nil, OK},
		{"get", nil, 6},
	})
	rejects(t, s, "get", nil, 7)
	rejects(t, s, "inc", nil, 6)     // inc returns ok, not the count
	rejects(t, s, "add", "five", OK) // non-integer argument
	if s.Key() != "ctr:6" {
		t.Errorf("Key = %q", s.Key())
	}
}

func TestCASRegister(t *testing.T) {
	s := NewCASRegister(0)
	s = replay(t, s, []exec{
		{"read", nil, 0},
		{"cas", CASArg{Old: 0, New: 3}, true},
		{"read", nil, 3},
		{"cas", CASArg{Old: 0, New: 9}, false}, // old value mismatch
		{"read", nil, 3},
		{"write", 4, OK},
		{"read", nil, 4},
	})
	rejects(t, s, "cas", CASArg{Old: 4, New: 5}, false) // would succeed
	rejects(t, s, "cas", CASArg{Old: 0, New: 5}, true)  // would fail
	rejects(t, s, "cas", "junk", true)
}

func TestSet(t *testing.T) {
	s := NewSet()
	s = replay(t, s, []exec{
		{"insert", 1, true},
		{"insert", 1, false},
		{"insert", 2, true},
		{"contains", 1, true},
		{"contains", 3, false},
		{"size", nil, 2},
		{"remove", 1, true},
		{"remove", 1, false},
		{"contains", 1, false},
		{"size", nil, 1},
	})
	rejects(t, s, "insert", 2, true) // 2 already present
	rejects(t, s, "size", nil, 5)
	rejects(t, s, "union", 1, true)
	if NewSet(2, 1).Key() != NewSet(1, 2).Key() {
		t.Error("set key must be order-insensitive")
	}
}

func TestQueue(t *testing.T) {
	s := NewQueue()
	s = replay(t, s, []exec{
		{"deq", nil, Empty},
		{"enq", "a", OK},
		{"enq", "b", OK},
		{"len", nil, 2},
		{"deq", nil, "a"},
		{"deq", nil, "b"},
		{"deq", nil, Empty},
	})
	rejects(t, s, "deq", nil, "a") // empty now
	rejects(t, s, "deq", 1, Empty) // deq takes no argument
	s2 := NewQueue("x", "y")
	if _, ok := s2.Step("deq", nil, "y"); ok {
		t.Error("queue must be FIFO: front is x")
	}
}

func TestStack(t *testing.T) {
	s := NewStack()
	s = replay(t, s, []exec{
		{"pop", nil, Empty},
		{"push", 1, OK},
		{"push", 2, OK},
		{"len", nil, 2},
		{"pop", nil, 2},
		{"pop", nil, 1},
		{"pop", nil, Empty},
	})
	rejects(t, s, "pop", nil, 1)
	rejects(t, s, "pop", 9, Empty)
	s2 := NewStack(1, 2) // 2 on top
	if _, ok := s2.Step("pop", nil, 1); ok {
		t.Error("stack must be LIFO: top is 2")
	}
}

func TestObjectsHelpers(t *testing.T) {
	objs := Registers(0, "x", "y")
	if len(objs) != 2 {
		t.Fatalf("Registers gave %d objects", len(objs))
	}
	if _, ok := objs["x"].Step("read", nil, 0); !ok {
		t.Error("register should start at the given initial value")
	}
	h := history.NewBuilder().Write(1, "x", 1).Read(1, "z", 0).MustHistory()
	auto := RegistersFor(h, 0)
	if len(auto) != 2 {
		t.Errorf("RegistersFor found %d objects, want x and z", len(auto))
	}
	cl := objs.Clone()
	cl["x"] = NewCounter(0)
	if objs["x"].Name() != "register" {
		t.Error("Clone must not alias the original map")
	}
}

// Property: a register accepts exactly the reads matching the latest
// write, for arbitrary int sequences.
func TestRegisterProperty(t *testing.T) {
	f := func(writes []int, probe int) bool {
		s := NewRegister(0)
		last := Value(0)
		for _, w := range writes {
			var ok bool
			s, ok = s.Step("write", w, OK)
			if !ok {
				return false
			}
			last = w
		}
		if _, ok := s.Step("read", nil, last); !ok {
			return false
		}
		_, bad := s.Step("read", nil, probe)
		return bad == (probe == last)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: counter get always equals the running sum of applied deltas.
func TestCounterProperty(t *testing.T) {
	f := func(deltas []int8) bool {
		s := NewCounter(0)
		sum := 0
		for _, d := range deltas {
			var ok bool
			s, ok = s.Step("add", int(d), OK)
			if !ok {
				return false
			}
			sum += int(d)
		}
		_, ok := s.Step("get", nil, sum)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a queue is FIFO — enqueue a sequence, dequeue it back in
// order, then the queue is empty.
func TestQueueProperty(t *testing.T) {
	f := func(items []int) bool {
		s := NewQueue()
		for _, v := range items {
			var ok bool
			s, ok = s.Step("enq", v, OK)
			if !ok {
				return false
			}
		}
		for _, v := range items {
			var ok bool
			s, ok = s.Step("deq", nil, v)
			if !ok {
				return false
			}
		}
		_, ok := s.Step("deq", nil, Empty)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: stack pop order is the reverse of push order.
func TestStackProperty(t *testing.T) {
	f := func(items []int) bool {
		s := NewStack()
		for _, v := range items {
			var ok bool
			s, ok = s.Step("push", v, OK)
			if !ok {
				return false
			}
		}
		for i := len(items) - 1; i >= 0; i-- {
			var ok bool
			s, ok = s.Step("pop", nil, items[i])
			if !ok {
				return false
			}
		}
		_, ok := s.Step("pop", nil, Empty)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: set membership after a random operation sequence matches a
// reference map.
func TestSetProperty(t *testing.T) {
	f := func(ops []struct {
		V      int8
		Insert bool
	}) bool {
		s := NewSet()
		ref := map[Value]bool{}
		for _, o := range ops {
			v := Value(int(o.V))
			var want bool
			var op string
			if o.Insert {
				op, want = "insert", !ref[v]
				ref[v] = true
			} else {
				op, want = "remove", ref[v]
				delete(ref, v)
			}
			var ok bool
			s, ok = s.Step(op, v, want)
			if !ok {
				return false
			}
		}
		_, ok := s.Step("size", nil, len(ref))
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
