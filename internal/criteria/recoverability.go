package criteria

import (
	"fmt"

	"otm/internal/history"
)

// ReadOnlyOps lists the operation names treated as non-updating when
// deciding recoverability and rigorous scheduling. Everything else is an
// update. The set covers the objects of internal/spec; callers with
// custom objects can pass their own classification via the *WithOps
// variants.
var ReadOnlyOps = map[string]bool{
	"read":     true,
	"get":      true,
	"contains": true,
	"size":     true,
	"len":      true,
}

// Violation describes why a scheduling criterion failed: transaction
// Second performed op on Obj while First's access was still unresolved.
type Violation struct {
	First, Second history.TxID
	Obj           history.ObjID
	Index         int // event index of the offending access
	Msg           string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("T%d vs T%d on %s at event %d: %s",
		int(v.First), int(v.Second), v.Obj, v.Index, v.Msg)
}

// completionIndex returns the index of tx's commit/abort event in h, or
// len(h) if tx is live (its window extends to the end of the history).
func completionIndex(h history.History, tx history.TxID) int {
	for i, e := range h {
		if e.Tx == tx && (e.Kind == history.KindCommit || e.Kind == history.KindAbort) {
			return i
		}
	}
	return len(h)
}

// StrictlyRecoverable reports whether h satisfies strict recoverability
// (§3.5, after Hadzilacos): if a transaction Ti updates a shared object
// x, then no other transaction performs any operation on x until Ti
// commits or aborts. isUpdate classifies operations; nil uses
// ReadOnlyOps's complement.
func StrictlyRecoverable(h history.History, isUpdate func(op string) bool) (bool, *Violation) {
	if isUpdate == nil {
		isUpdate = func(op string) bool { return !ReadOnlyOps[op] }
	}
	for i, e := range h {
		if e.Kind != history.KindInv || !isUpdate(e.Op) {
			continue
		}
		end := completionIndex(h, e.Tx)
		for j := i + 1; j < end && j < len(h); j++ {
			f := h[j]
			if f.Kind == history.KindInv && f.Obj == e.Obj && f.Tx != e.Tx {
				return false, &Violation{
					First: e.Tx, Second: f.Tx, Obj: e.Obj, Index: j,
					Msg: fmt.Sprintf("%s invoked on %s updated by live T%d", f.Op, f.Obj, int(e.Tx)),
				}
			}
		}
	}
	return true, nil
}

// RigorouslyScheduled reports whether h satisfies rigorous scheduling
// (§3.6, after Breitbart et al.): no two transactions concurrently access
// an object if one of them updates it. Concretely, after Ti accesses x
// and until Ti completes, no other transaction may update x; and after Ti
// updates x and until Ti completes, no other transaction may access x at
// all.
func RigorouslyScheduled(h history.History, isUpdate func(op string) bool) (bool, *Violation) {
	if isUpdate == nil {
		isUpdate = func(op string) bool { return !ReadOnlyOps[op] }
	}
	for i, e := range h {
		if e.Kind != history.KindInv {
			continue
		}
		end := completionIndex(h, e.Tx)
		for j := i + 1; j < end && j < len(h); j++ {
			f := h[j]
			if f.Kind != history.KindInv || f.Obj != e.Obj || f.Tx == e.Tx {
				continue
			}
			if isUpdate(e.Op) || isUpdate(f.Op) {
				return false, &Violation{
					First: e.Tx, Second: f.Tx, Obj: e.Obj, Index: j,
					Msg: fmt.Sprintf("conflicting %s/%s on %s while T%d is live", e.Op, f.Op, f.Obj, int(e.Tx)),
				}
			}
		}
	}
	return true, nil
}
