package criteria

import (
	"fmt"
	"strings"

	"otm/internal/core"
	"otm/internal/history"
	"otm/internal/spec"
)

// Report collects the verdict of every criterion for one history — the
// rows of the comparison tables in EXPERIMENTS.md and cmd/opacheck.
type Report struct {
	Opaque               bool
	Serializable         bool
	StrictlySerializable bool
	GloballyAtomic       bool
	StrictlyRecoverable  bool
	Rigorous             bool

	// OpacityWitness is the serialization order proving opacity, when
	// Opaque is true.
	OpacityWitness []history.TxID
}

// Evaluate runs every criterion on h with the given object environment
// (nil = registers initialized to 0).
func Evaluate(h history.History, objs spec.Objects) (Report, error) {
	var rep Report
	res, err := core.Check(h, core.Config{Objects: objs})
	if err != nil {
		return rep, fmt.Errorf("opacity: %w", err)
	}
	rep.Opaque = res.Opaque
	if res.Opaque {
		rep.OpacityWitness = res.Witness.Order
	}
	if rep.Serializable, err = Serializable(h, objs); err != nil {
		return rep, fmt.Errorf("serializability: %w", err)
	}
	if rep.StrictlySerializable, err = StrictlySerializable(h, objs); err != nil {
		return rep, fmt.Errorf("strict serializability: %w", err)
	}
	if rep.GloballyAtomic, err = GloballyAtomic(h, objs); err != nil {
		return rep, fmt.Errorf("global atomicity: %w", err)
	}
	rep.StrictlyRecoverable, _ = StrictlyRecoverable(h, nil)
	rep.Rigorous, _ = RigorouslyScheduled(h, nil)
	return rep, nil
}

// String renders the report as an aligned two-column table.
func (r Report) String() string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %s", "opacity", mark(r.Opaque))
	if r.Opaque {
		fmt.Fprintf(&b, "  (witness:")
		for _, tx := range r.OpacityWitness {
			fmt.Fprintf(&b, " T%d", int(tx))
		}
		fmt.Fprintf(&b, ")")
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-24s %s\n", "serializability", mark(r.Serializable))
	fmt.Fprintf(&b, "%-24s %s\n", "strict serializability", mark(r.StrictlySerializable))
	fmt.Fprintf(&b, "%-24s %s\n", "global atomicity (+rt)", mark(r.GloballyAtomic))
	fmt.Fprintf(&b, "%-24s %s\n", "strict recoverability", mark(r.StrictlyRecoverable))
	fmt.Fprintf(&b, "%-24s %s\n", "rigorous scheduling", mark(r.Rigorous))
	return b.String()
}
