// Package criteria implements the correctness criteria that the paper's
// Section 3 examines — and rejects — as candidate TM correctness
// conditions: serializability, strict serializability, global atomicity
// (with or without real-time ordering), strict recoverability, and
// rigorous scheduling. Having them executable allows the verdict tables
// of the paper's examples to be regenerated mechanically: e.g. the
// history of Figure 1 satisfies global atomicity and recoverability yet
// is not opaque.
//
// All criteria share the model of internal/history and the sequential
// specifications of internal/spec, and reuse the serialization search of
// internal/core.
package criteria

import (
	"otm/internal/core"
	"otm/internal/history"
	"otm/internal/spec"
)

// CommittedProjection returns the subsequence of h containing only the
// events of committed transactions — the input to serializability-style
// criteria, which say nothing about live or aborted transactions.
func CommittedProjection(h history.History) history.History {
	committed := make(map[history.TxID]bool)
	for _, tx := range h.Transactions() {
		if h.Committed(tx) {
			committed[tx] = true
		}
	}
	var out history.History
	for _, e := range h {
		if committed[e.Tx] {
			out = append(out, e)
		}
	}
	return out
}

// serializable is the shared engine: does the committed projection of h
// have a legal sequential equivalent, optionally preserving the
// real-time order of h?
func serializable(h history.History, objs spec.Objects, realTime bool) (bool, error) {
	proj := CommittedProjection(h)
	txs := proj.Transactions()
	var rt history.History
	if realTime {
		// ≺H of the original history h: its restriction to the committed
		// transactions is exactly the constraint strict serializability
		// adds (pairs involving removed transactions are ignored).
		rt = h
	}
	ser, err := core.FindSerialization(core.SerializeOptions{
		Source:   proj,
		Txs:      txs,
		Decide:   func(history.TxID) core.Decision { return core.DecideCommitted },
		RealTime: rt,
		Objects:  objs,
	})
	return ser != nil, err
}

// Serializable reports whether h is serializable (§3.2): all committed
// transactions issue the same operations and receive the same responses
// as in some legal sequential history consisting of exactly those
// transactions. Real-time order is NOT required. objs supplies the object
// semantics (nil = registers initialized to 0); with arbitrary objects
// this is the paper's global atomicity (§3.4), which generalizes
// serializability beyond read/write registers.
func Serializable(h history.History, objs spec.Objects) (bool, error) {
	return serializable(h, objs, false)
}

// StrictlySerializable reports whether h is serializable in the strict
// sense: the witness sequential history must additionally preserve the
// real-time order ≺H of the committed transactions.
func StrictlySerializable(h history.History, objs spec.Objects) (bool, error) {
	return serializable(h, objs, true)
}

// GloballyAtomic reports whether h satisfies global atomicity with
// real-time ordering (§3.4 extended as in §5.1): after removing all
// non-committed transactions from h, the result is equivalent to some
// legal sequential history that preserves the real-time order of the
// committed transactions. In this model — which already supports
// arbitrary objects and multiple versions — global atomicity with
// real-time order coincides with strict serializability of the committed
// projection; the function exists to keep the paper's vocabulary.
func GloballyAtomic(h history.History, objs spec.Objects) (bool, error) {
	return serializable(h, objs, true)
}
