package criteria

import (
	"strings"
	"testing"

	"otm/internal/history"
	"otm/internal/spec"
)

// figure1 is the paper's H1: globally atomic (with real-time ordering)
// and strictly recoverable, but not opaque.
func figure1() history.History {
	return history.MustParse(
		"w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2")
}

func TestCommittedProjection(t *testing.T) {
	proj := CommittedProjection(figure1())
	txs := proj.Transactions()
	if len(txs) != 2 {
		t.Fatalf("committed projection has %d transactions, want T1 and T3", len(txs))
	}
	for _, e := range proj {
		if e.Tx == 2 {
			t.Error("aborted T2 must not appear in the committed projection")
		}
	}
	if !proj.Committed(1) || !proj.Committed(3) {
		t.Error("T1 and T3 must remain committed in the projection")
	}
}

func TestFigure1Verdicts(t *testing.T) {
	// The punchline of the paper's Figure 1: every weaker criterion
	// passes, opacity fails.
	rep, err := Evaluate(figure1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Opaque {
		t.Error("H1 must not be opaque")
	}
	if !rep.Serializable {
		t.Error("H1 must be serializable (committed T1, T3 are sequential)")
	}
	if !rep.StrictlySerializable {
		t.Error("H1 must be strictly serializable")
	}
	if !rep.GloballyAtomic {
		t.Error("H1 must satisfy global atomicity with real-time ordering")
	}
	if !rep.StrictlyRecoverable {
		t.Error("H1 must be strictly recoverable (paper, §3.5)")
	}
	if rep.Rigorous {
		t.Error("H1 is not rigorous: T3 writes x while reader T2 is live")
	}
}

func TestSerializableVsStrict(t *testing.T) {
	// T1 commits x=1 before T2 starts; T2 reads the older value 0 and
	// commits. Serializable (order T2 T1) but not strictly serializable.
	h := history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 0).Commits(2).
		MustHistory()
	if ok, err := Serializable(h, nil); err != nil || !ok {
		t.Errorf("stale read is serializable without real-time: %v %v", ok, err)
	}
	if ok, err := StrictlySerializable(h, nil); err != nil || ok {
		t.Errorf("stale read violates strict serializability: %v %v", ok, err)
	}
}

func TestSerializabilityIgnoresAborted(t *testing.T) {
	// A wildly inconsistent aborted transaction does not affect
	// serializability — that is exactly its weakness.
	h := figure1()
	if ok, _ := Serializable(h, nil); !ok {
		t.Error("aborted T2 must be invisible to serializability")
	}
	// But an inconsistent COMMITTED read does break it.
	bad := history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 7).Commits(2).
		MustHistory()
	if ok, _ := Serializable(bad, nil); ok {
		t.Error("committed read of a never-written value is not serializable")
	}
}

func TestGlobalAtomicityCounter(t *testing.T) {
	// §3.4: concurrent committed increments — globally atomic under
	// counter semantics (and under opacity too), impossible as
	// read-modify-write registers.
	var h history.History
	for tx := history.TxID(1); tx <= 3; tx++ {
		h = append(h, history.Inv(tx, "c", "inc", nil))
	}
	for tx := history.TxID(1); tx <= 3; tx++ {
		h = append(h, history.Ret(tx, "c", "inc", spec.OK))
	}
	for tx := history.TxID(1); tx <= 3; tx++ {
		h = append(h, history.TryC(tx), history.Commit(tx))
	}
	h = h.MustWellFormed()
	objs := spec.Objects{"c": spec.NewCounter(0)}
	if ok, err := GloballyAtomic(h, objs); err != nil || !ok {
		t.Errorf("concurrent increments are globally atomic: %v %v", ok, err)
	}
	// Recoverability forbids the very same history (paper's point: it is
	// too strong for arbitrary objects).
	if ok, v := StrictlyRecoverable(h, nil); ok {
		t.Error("concurrent increments violate strict recoverability")
	} else if v == nil {
		t.Error("violation detail missing")
	}
}

func TestStrictRecoverabilityWindow(t *testing.T) {
	// Writer completes before the reader touches x: recoverable.
	h := history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 1).Commits(2).
		MustHistory()
	if ok, _ := StrictlyRecoverable(h, nil); !ok {
		t.Error("sequential writer then reader is recoverable")
	}
	// Reader overlaps the live writer on x: not recoverable.
	h2 := history.History{
		history.Inv(1, "x", "write", 1), history.Ret(1, "x", "write", spec.OK),
		history.Inv(2, "x", "read", nil), history.Ret(2, "x", "read", 0),
		history.TryC(1), history.Commit(1),
		history.TryC(2), history.Commit(2),
	}.MustWellFormed()
	ok, v := StrictlyRecoverable(h2, nil)
	if ok {
		t.Fatal("read of an object updated by a live transaction is not recoverable")
	}
	if v.First != 1 || v.Second != 2 || v.Obj != "x" {
		t.Errorf("violation = %+v", v)
	}
	if !strings.Contains(v.Error(), "T1") {
		t.Errorf("violation message %q should name T1", v.Error())
	}
}

func TestRecoverabilityLiveWriterWindowExtendsToEnd(t *testing.T) {
	// The writer never completes: its window covers the rest of the
	// history.
	h := history.History{
		history.Inv(1, "x", "write", 1), history.Ret(1, "x", "write", spec.OK),
		history.Inv(2, "x", "read", nil), history.Ret(2, "x", "read", 0),
	}.MustWellFormed()
	if ok, _ := StrictlyRecoverable(h, nil); ok {
		t.Error("access to an object held by a live writer is not recoverable")
	}
}

func TestRigorousSchedulingReadersOK(t *testing.T) {
	// Two concurrent readers of the same object are rigorous.
	h := history.History{
		history.Inv(1, "x", "read", nil), history.Ret(1, "x", "read", 0),
		history.Inv(2, "x", "read", nil), history.Ret(2, "x", "read", 0),
		history.TryC(1), history.Commit(1),
		history.TryC(2), history.Commit(2),
	}.MustWellFormed()
	if ok, v := RigorouslyScheduled(h, nil); !ok {
		t.Errorf("concurrent readers are rigorous; violation: %v", v)
	}
}

func TestRigorousSchedulingBlindWritersRejected(t *testing.T) {
	// §3.6: concurrent blind writers violate rigorous scheduling even
	// though the history is opaque. (The paper's argument that rigorous
	// scheduling is too strong.)
	var h history.History
	for tx := history.TxID(1); tx <= 3; tx++ {
		h = append(h, history.Inv(tx, "x", "write", int(tx)),
			history.Ret(tx, "x", "write", spec.OK))
	}
	for tx := history.TxID(1); tx <= 3; tx++ {
		h = append(h, history.TryC(tx), history.Commit(tx))
	}
	h = h.MustWellFormed()
	ok, v := RigorouslyScheduled(h, nil)
	if ok {
		t.Fatal("concurrent writers must violate rigorous scheduling")
	}
	if v.Obj != "x" {
		t.Errorf("violation object = %s", v.Obj)
	}
}

func TestRigorousAfterCompletionOK(t *testing.T) {
	// Accesses strictly after the updater completes are fine.
	h := history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Write(2, "x", 2).Commits(2).
		MustHistory()
	if ok, _ := RigorouslyScheduled(h, nil); !ok {
		t.Error("sequential writers are rigorous")
	}
}

func TestCustomUpdateClassifier(t *testing.T) {
	// With a classifier that treats "inc" as read-only, concurrent incs
	// pass recoverability.
	var h history.History
	for tx := history.TxID(1); tx <= 2; tx++ {
		h = append(h, history.Inv(tx, "c", "inc", nil))
	}
	for tx := history.TxID(1); tx <= 2; tx++ {
		h = append(h, history.Ret(tx, "c", "inc", spec.OK))
	}
	for tx := history.TxID(1); tx <= 2; tx++ {
		h = append(h, history.TryC(tx), history.Commit(tx))
	}
	h = h.MustWellFormed()
	never := func(string) bool { return false }
	if ok, _ := StrictlyRecoverable(h, never); !ok {
		t.Error("no updates → trivially recoverable")
	}
	if ok, _ := RigorouslyScheduled(h, never); !ok {
		t.Error("no updates → trivially rigorous")
	}
}

func TestReportString(t *testing.T) {
	rep, err := Evaluate(figure1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"opacity", "NO", "serializability", "yes"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
	// An opaque history's report includes the witness order.
	rep2, err := Evaluate(history.MustParse("w1(x,1) tryC1 C1 r2(x)->1 tryC2 C2"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep2.String(), "witness") {
		t.Error("opaque report should include the witness")
	}
}

func TestEvaluatePropagatesErrors(t *testing.T) {
	if _, err := Evaluate(history.History{history.Commit(1)}, nil); err == nil {
		t.Error("Evaluate must propagate malformed-history errors")
	}
}

// Opacity implies strict serializability of the committed projection —
// checked here on the paper's opaque H5 (Figure 2).
func TestOpacityImpliesStrictSerializability(t *testing.T) {
	h5 := history.History{
		history.Inv(2, "x", "write", 1), history.Ret(2, "x", "write", spec.OK),
		history.Inv(2, "y", "write", 2), history.Ret(2, "y", "write", spec.OK),
		history.TryC(2),
		history.Inv(1, "x", "read", nil),
		history.Commit(2),
		history.Inv(3, "y", "write", 3),
		history.Ret(1, "x", "read", 1), history.Inv(1, "x", "write", 5),
		history.Ret(3, "y", "write", spec.OK),
		history.Ret(1, "x", "write", spec.OK), history.Inv(1, "y", "read", nil),
		history.Inv(3, "x", "read", nil),
		history.Ret(1, "y", "read", 2), history.TryC(1),
		history.Ret(3, "x", "read", 1), history.TryC(3),
		history.Abort(1),
		history.Commit(3),
	}.MustWellFormed()
	rep, err := Evaluate(h5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Opaque {
		t.Fatal("H5 is opaque")
	}
	if !rep.StrictlySerializable {
		t.Error("opacity implies strict serializability")
	}
}
