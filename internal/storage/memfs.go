package storage

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
)

// memFS is the in-memory backend: objects are byte slices in a map. A
// Writer accumulates into a private buffer and publishes its copy under
// the store lock on Close, so commits are atomic and an aborted or
// abandoned writer leaves no trace.
type memFS struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMem returns a fresh, private in-memory store.
func NewMem() FS {
	return &memFS{objects: map[string][]byte{}}
}

var (
	memMu     sync.Mutex
	memStores = map[string]*memFS{}
)

// Mem returns the process-wide shared in-memory store with the given
// name, creating it on first use. It backs mem:// URIs: everything in
// the process that resolves mem://name shares one object map.
func Mem(name string) FS {
	memMu.Lock()
	defer memMu.Unlock()
	m, ok := memStores[name]
	if !ok {
		m = &memFS{objects: map[string][]byte{}}
		memStores[name] = m
	}
	return m
}

func (m *memFS) Open(name string) (io.ReadCloser, error) {
	if _, err := cleanName(name); err != nil {
		return nil, err
	}
	m.mu.RLock()
	b, ok := m.objects[name]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: %q: %w", name, ErrNotExist)
	}
	return io.NopCloser(bytes.NewReader(b)), nil
}

func (m *memFS) Create(name string) (Writer, error) {
	if _, err := cleanName(name); err != nil {
		return nil, err
	}
	return &memWriter{fs: m, name: name}, nil
}

type memWriter struct {
	fs   *memFS
	name string
	buf  bytes.Buffer
	done bool
}

func (w *memWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

func (w *memWriter) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	w.fs.mu.Lock()
	w.fs.objects[w.name] = bytes.Clone(w.buf.Bytes())
	w.fs.mu.Unlock()
	return nil
}

func (w *memWriter) Abort() error {
	w.done = true
	return nil
}

func (m *memFS) List(prefix string) ([]string, error) {
	m.mu.RLock()
	var names []string
	for name := range m.objects {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	m.mu.RUnlock()
	sort.Strings(names)
	return names, nil
}

func (m *memFS) Stat(name string) (Info, error) {
	if _, err := cleanName(name); err != nil {
		return Info{}, err
	}
	m.mu.RLock()
	b, ok := m.objects[name]
	m.mu.RUnlock()
	if !ok {
		return Info{}, fmt.Errorf("storage: %q: %w", name, ErrNotExist)
	}
	return Info{Name: name, Size: int64(len(b))}, nil
}

func (m *memFS) Remove(name string) error {
	if _, err := cleanName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.objects[name]; !ok {
		return fmt.Errorf("storage: %q: %w", name, ErrNotExist)
	}
	delete(m.objects, name)
	return nil
}
