// Package storage abstracts where corpora, verdict logs and
// coordination state live. One small FS interface — Open, Create, List,
// Stat, Remove over slash-separated names — is implemented by multiple
// backends resolved from URIs: `file://` (or a bare path) maps onto a
// directory of the local filesystem, `mem://` onto a named in-process
// store shared by everything in the same process (tests, `otmd run`).
// New backends register a scheme with Register, in the style of
// C2FO/vfs's backend package; every backend must pass the shared
// conformance suite in storage/testsuite.
//
// Writes are atomic: Create returns a Writer whose bytes are invisible
// to Open/List/Stat until Close commits them in one step (the os backend
// writes a hidden temp file and renames it into place; fsync before the
// rename makes a committed object durable). A crash — or an explicit
// Abort — between Create and Close leaves no partial object behind.
// This commit-on-close contract is what makes the distributed checker's
// manifests, checkpoints and per-shard verdict logs safe to reload after
// a kill: an object either exists with its full content or not at all.
package storage

import (
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"
)

// ErrNotExist reports that a named object does not exist. Backends wrap
// it (or an error satisfying errors.Is(err, ErrNotExist), like the os
// package's) so callers test with errors.Is.
var ErrNotExist = fs.ErrNotExist

// Info describes a committed object.
type Info struct {
	// Name is the object's name within its FS.
	Name string
	// Size is the committed content length in bytes.
	Size int64
}

// Writer is an in-flight object created by FS.Create. Bytes written are
// not observable through Open, List or Stat until Close commits them
// atomically. Abort discards the object instead; aborting after a
// successful Close is a no-op. Exactly one of Close or Abort should
// decide the object's fate, and a Writer is not safe for concurrent use.
type Writer interface {
	io.Writer
	// Close commits the written bytes as the object's full content,
	// replacing any previous version in one atomic step.
	Close() error
	// Abort discards the written bytes, leaving any previous version of
	// the object untouched.
	Abort() error
}

// FS is one storage location: a flat namespace of slash-separated
// object names (e.g. "shards/0007.in"). Implementations are safe for
// concurrent use by multiple goroutines.
type FS interface {
	// Open returns the committed content of name.
	Open(name string) (io.ReadCloser, error)
	// Create starts a new version of name; see Writer.
	Create(name string) (Writer, error)
	// List returns the names of all committed objects with the given
	// name prefix, sorted. A "" prefix lists everything.
	List(prefix string) ([]string, error)
	// Stat describes a committed object.
	Stat(name string) (Info, error)
	// Remove deletes a committed object.
	Remove(name string) error
}

// cleanName validates an object name: nonempty, slash-separated,
// relative, no "." or ".." segments, no empty segments. It returns the
// name unchanged so call sites read as a checked pass-through.
func cleanName(name string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("storage: empty object name")
	}
	if strings.HasPrefix(name, "/") || strings.HasSuffix(name, "/") {
		return "", fmt.Errorf("storage: object name %q must be relative with no trailing slash", name)
	}
	for _, seg := range strings.Split(name, "/") {
		switch seg {
		case "", ".", "..":
			return "", fmt.Errorf("storage: object name %q has a %q segment", name, seg)
		}
	}
	return name, nil
}

// Backend constructs an FS from the remainder of a URI (everything
// after "scheme://").
type Backend func(rest string) (FS, error)

var (
	backendsMu sync.RWMutex
	backends   = map[string]Backend{}
)

// Register makes a backend available to Resolve under the given scheme.
// The file and mem backends are pre-registered; registering an already
// registered scheme panics, like flag redefinition.
func Register(scheme string, b Backend) {
	backendsMu.Lock()
	defer backendsMu.Unlock()
	if _, dup := backends[scheme]; dup {
		panic("storage: duplicate backend scheme " + scheme)
	}
	backends[scheme] = b
}

func init() {
	Register("file", func(rest string) (FS, error) {
		if rest == "" {
			return nil, fmt.Errorf("storage: file:// URI needs a path")
		}
		return NewOS(rest), nil
	})
	Register("mem", func(rest string) (FS, error) {
		store, sub, _ := strings.Cut(rest, "/")
		if store == "" {
			return nil, fmt.Errorf("storage: mem:// URI needs a store name")
		}
		fsys := Mem(store)
		if sub != "" {
			return Sub(fsys, sub), nil
		}
		return fsys, nil
	})
}

// Resolve maps a location URI onto a backend FS rooted at the URI's
// path:
//
//	file:///var/run/otmd     → local directory /var/run/otmd
//	file://rel/dir           → local directory rel/dir
//	mem://bucket/sub         → named in-process store "bucket", under sub/
//	/var/run/otmd (no scheme)→ local directory, same as file://
//
// The mem scheme names process-wide stores: every Resolve of the same
// store name in the same process sees the same objects, which is what
// lets an in-process coordinator and its workers (or a test) share state
// without touching disk. It does not cross process boundaries — separate
// worker processes need file:// (or another durable backend).
func Resolve(uri string) (FS, error) {
	scheme, rest, ok := strings.Cut(uri, "://")
	if !ok {
		if uri == "" {
			return nil, fmt.Errorf("storage: empty location")
		}
		return NewOS(uri), nil
	}
	backendsMu.RLock()
	b := backends[scheme]
	backendsMu.RUnlock()
	if b == nil {
		return nil, fmt.Errorf("storage: unknown scheme %q in %q (known: %s)", scheme, uri, strings.Join(schemes(), ", "))
	}
	fsys, err := b(rest)
	if err != nil {
		return nil, fmt.Errorf("%w (in %q)", err, uri)
	}
	return fsys, nil
}

func schemes() []string {
	var s []string
	for k := range backends {
		s = append(s, k)
	}
	sort.Strings(s)
	return s
}

// SplitURI splits a URI naming a single object into the URI of its
// enclosing location and the object's base name, for OpenURI/CreateURI:
//
//	file:///tmp/run/corpus.txt → ("file:///tmp/run", "corpus.txt")
//	mem://b/logs/x.log         → ("mem://b/logs", "x.log")
//	corpus.txt                 → (".", "corpus.txt")
func SplitURI(uri string) (dir, base string, err error) {
	scheme, rest, hasScheme := strings.Cut(uri, "://")
	if !hasScheme {
		scheme, rest = "", uri
	}
	i := strings.LastIndex(rest, "/")
	if i < 0 {
		dir, base = ".", rest
		if hasScheme && scheme == "mem" {
			return "", "", fmt.Errorf("storage: mem URI %q names a store, not an object", uri)
		}
		if hasScheme {
			return "", "", fmt.Errorf("storage: URI %q has no object component", uri)
		}
	} else {
		dir, base = rest[:i], rest[i+1:]
		if dir == "" {
			dir = "/"
		}
		if hasScheme {
			dir = scheme + "://" + dir
		}
	}
	if base == "" {
		return "", "", fmt.Errorf("storage: URI %q has an empty object name", uri)
	}
	return dir, base, nil
}

// OpenURI opens the single object named by uri (a location URI plus a
// base name, or a plain file path).
func OpenURI(uri string) (io.ReadCloser, error) {
	dir, base, err := SplitURI(uri)
	if err != nil {
		return nil, err
	}
	fsys, err := Resolve(dir)
	if err != nil {
		return nil, err
	}
	return fsys.Open(base)
}

// CreateURI starts an atomic write of the single object named by uri.
func CreateURI(uri string) (Writer, error) {
	dir, base, err := SplitURI(uri)
	if err != nil {
		return nil, err
	}
	fsys, err := Resolve(dir)
	if err != nil {
		return nil, err
	}
	return fsys.Create(base)
}

// Sub returns fsys restricted to the objects under dir/: names passed to
// the returned FS are prefixed with dir+"/", and List results have the
// prefix stripped, so a Sub FS satisfies the same conformance suite as
// its parent.
func Sub(fsys FS, dir string) FS {
	dir = strings.Trim(path.Clean(dir), "/")
	return &subFS{fsys: fsys, prefix: dir + "/"}
}

type subFS struct {
	fsys   FS
	prefix string
}

func (s *subFS) full(name string) (string, error) {
	if _, err := cleanName(name); err != nil {
		return "", err
	}
	return s.prefix + name, nil
}

func (s *subFS) Open(name string) (io.ReadCloser, error) {
	full, err := s.full(name)
	if err != nil {
		return nil, err
	}
	return s.fsys.Open(full)
}

func (s *subFS) Create(name string) (Writer, error) {
	full, err := s.full(name)
	if err != nil {
		return nil, err
	}
	return s.fsys.Create(full)
}

func (s *subFS) List(prefix string) ([]string, error) {
	names, err := s.fsys.List(s.prefix + prefix)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, strings.TrimPrefix(n, s.prefix))
	}
	return out, nil
}

func (s *subFS) Stat(name string) (Info, error) {
	full, err := s.full(name)
	if err != nil {
		return Info{}, err
	}
	info, err := s.fsys.Stat(full)
	if err != nil {
		return Info{}, err
	}
	info.Name = name
	return info, nil
}

func (s *subFS) Remove(name string) error {
	full, err := s.full(name)
	if err != nil {
		return err
	}
	return s.fsys.Remove(full)
}
