package storage

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// tmpPrefix marks in-flight objects of the os backend. Temp files live
// next to their target (same directory, so the commit rename never
// crosses filesystems) and are excluded from Open/List/Stat.
const tmpPrefix = ".otm-tmp-"

// osFS is the file backend: objects are regular files under a root
// directory, names map to slash-separated relative paths. Create writes
// a hidden temp file, fsyncs it and renames it over the target on Close,
// so a committed object is atomic and durable and a crashed writer
// leaves only a temp file that List/Open never surface.
type osFS struct {
	root string
}

// NewOS returns the file backend rooted at dir. The directory is created
// lazily on the first Create; a missing root simply has nothing to Open
// or List.
func NewOS(dir string) FS {
	return &osFS{root: filepath.Clean(dir)}
}

func (o *osFS) path(name string) (string, error) {
	if _, err := cleanName(name); err != nil {
		return "", err
	}
	if strings.HasPrefix(filepath.Base(name), tmpPrefix) {
		return "", fmt.Errorf("storage: object name %q uses the reserved temp prefix", name)
	}
	return filepath.Join(o.root, filepath.FromSlash(name)), nil
}

func (o *osFS) Open(name string) (io.ReadCloser, error) {
	p, err := o.path(name)
	if err != nil {
		return nil, err
	}
	return os.Open(p)
}

func (o *osFS) Create(name string) (Writer, error) {
	p, err := o.path(name)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(filepath.Dir(p), tmpPrefix+filepath.Base(p)+"-*")
	if err != nil {
		return nil, err
	}
	return &osWriter{f: f, target: p}, nil
}

type osWriter struct {
	f      *os.File
	target string
	done   bool
}

func (w *osWriter) Write(p []byte) (int, error) { return w.f.Write(p) }

func (w *osWriter) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	// Sync before rename: after Close returns, the object must survive a
	// crash — the distributed checkpoints rely on it.
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		os.Remove(w.f.Name())
		return err
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.f.Name())
		return err
	}
	return os.Rename(w.f.Name(), w.target)
}

func (w *osWriter) Abort() error {
	if w.done {
		return nil
	}
	w.done = true
	w.f.Close()
	return os.Remove(w.f.Name())
}

func (o *osFS) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(o.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if p == o.root && os.IsNotExist(err) {
				return filepath.SkipAll // empty store, not an error
			}
			return err
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), tmpPrefix) {
			return nil
		}
		rel, err := filepath.Rel(o.root, p)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

func (o *osFS) Stat(name string) (Info, error) {
	p, err := o.path(name)
	if err != nil {
		return Info{}, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return Info{}, err
	}
	if fi.IsDir() {
		return Info{}, fmt.Errorf("storage: %q: %w", name, ErrNotExist)
	}
	return Info{Name: name, Size: fi.Size()}, nil
}

func (o *osFS) Remove(name string) error {
	p, err := o.path(name)
	if err != nil {
		return err
	}
	return os.Remove(p)
}
