// Package testsuite is the conformance suite every storage.FS backend
// must pass. Backend packages call Run from their own tests with a
// factory producing a fresh, empty FS per subtest; the suite pins the
// contract the distributed checker depends on — atomic commit-on-close,
// no partial visibility, ErrNotExist discipline, sorted prefix listing,
// name validation — so a new backend (or a wrapper like storage.Sub) is
// correct by construction once it is green here.
package testsuite

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"testing"

	"otm/internal/storage"
)

// Run exercises the full FS contract against fresh instances from open.
func Run(t *testing.T, open func(t *testing.T) storage.FS) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(t *testing.T, fsys storage.FS)
	}{
		{"CreateOpenRoundTrip", testRoundTrip},
		{"OverwriteReplacesAtomically", testOverwrite},
		{"NotExistErrors", testNotExist},
		{"UncommittedInvisible", testUncommittedInvisible},
		{"AbortDiscards", testAbortDiscards},
		{"CloseIdempotent", testCloseIdempotent},
		{"ListPrefixSorted", testList},
		{"StatSize", testStat},
		{"Remove", testRemove},
		{"RejectsBadNames", testBadNames},
		{"ConcurrentCreates", testConcurrent},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { tc.fn(t, open(t)) })
	}
}

func write(t *testing.T, fsys storage.FS, name, content string) {
	t.Helper()
	w, err := fsys.Create(name)
	if err != nil {
		t.Fatalf("Create(%q): %v", name, err)
	}
	if _, err := io.WriteString(w, content); err != nil {
		t.Fatalf("Write(%q): %v", name, err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close(%q): %v", name, err)
	}
}

func read(t *testing.T, fsys storage.FS, name string) string {
	t.Helper()
	r, err := fsys.Open(name)
	if err != nil {
		t.Fatalf("Open(%q): %v", name, err)
	}
	defer r.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll(%q): %v", name, err)
	}
	return string(b)
}

func testRoundTrip(t *testing.T, fsys storage.FS) {
	write(t, fsys, "a/b/c.txt", "hello\nworld\n")
	if got := read(t, fsys, "a/b/c.txt"); got != "hello\nworld\n" {
		t.Errorf("round trip = %q", got)
	}
	write(t, fsys, "empty", "")
	if got := read(t, fsys, "empty"); got != "" {
		t.Errorf("empty object = %q", got)
	}
}

func testOverwrite(t *testing.T, fsys storage.FS) {
	write(t, fsys, "obj", "first version")
	write(t, fsys, "obj", "second")
	if got := read(t, fsys, "obj"); got != "second" {
		t.Errorf("after overwrite = %q, want the full second version", got)
	}
	names, err := fsys.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "obj" {
		t.Errorf("List after overwrite = %v, want [obj]", names)
	}
}

func testNotExist(t *testing.T, fsys storage.FS) {
	if _, err := fsys.Open("missing"); !errors.Is(err, storage.ErrNotExist) {
		t.Errorf("Open(missing) = %v, want ErrNotExist", err)
	}
	if _, err := fsys.Stat("missing"); !errors.Is(err, storage.ErrNotExist) {
		t.Errorf("Stat(missing) = %v, want ErrNotExist", err)
	}
	if err := fsys.Remove("missing"); !errors.Is(err, storage.ErrNotExist) {
		t.Errorf("Remove(missing) = %v, want ErrNotExist", err)
	}
}

func testUncommittedInvisible(t *testing.T, fsys storage.FS) {
	w, err := fsys.Create("pending")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, "not committed yet"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Open("pending"); !errors.Is(err, storage.ErrNotExist) {
		t.Errorf("Open of uncommitted object = %v, want ErrNotExist", err)
	}
	names, err := fsys.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("List sees uncommitted objects: %v", names)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := read(t, fsys, "pending"); got != "not committed yet" {
		t.Errorf("after commit = %q", got)
	}
}

func testAbortDiscards(t *testing.T, fsys storage.FS) {
	write(t, fsys, "obj", "old")
	w, err := fsys.Create("obj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, "new but aborted"); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if got := read(t, fsys, "obj"); got != "old" {
		t.Errorf("after abort = %q, want the previous version", got)
	}
	// Abort of a never-committed name leaves nothing behind.
	w2, err := fsys.Create("ghost")
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w2, "x")
	w2.Abort()
	if _, err := fsys.Open("ghost"); !errors.Is(err, storage.ErrNotExist) {
		t.Errorf("aborted object exists: %v", err)
	}
}

func testCloseIdempotent(t *testing.T, fsys storage.FS) {
	w, err := fsys.Create("obj")
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w, "content")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	if err := w.Abort(); err != nil {
		t.Errorf("Abort after Close = %v, want nil no-op", err)
	}
	if got := read(t, fsys, "obj"); got != "content" {
		t.Errorf("Abort after Close discarded the commit: %q", got)
	}
}

func testList(t *testing.T, fsys storage.FS) {
	for _, name := range []string{"logs/2.log", "logs/10.log", "logs/1.log", "manifest.json", "done/1"} {
		write(t, fsys, name, name)
	}
	names, err := fsys.List("logs/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"logs/1.log", "logs/10.log", "logs/2.log"} // lexicographic
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("List(logs/) = %v, want %v", names, want)
	}
	all, err := fsys.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 || !sort.StringsAreSorted(all) {
		t.Errorf("List(\"\") = %v, want all 5 names sorted", all)
	}
	none, err := fsys.List("nope/")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("List(nope/) = %v, want empty", none)
	}
}

func testStat(t *testing.T, fsys storage.FS) {
	write(t, fsys, "obj", "12345")
	info, err := fsys.Stat("obj")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "obj" || info.Size != 5 {
		t.Errorf("Stat = %+v, want {obj 5}", info)
	}
}

func testRemove(t *testing.T, fsys storage.FS) {
	write(t, fsys, "obj", "x")
	if err := fsys.Remove("obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Open("obj"); !errors.Is(err, storage.ErrNotExist) {
		t.Errorf("Open after Remove = %v, want ErrNotExist", err)
	}
}

func testBadNames(t *testing.T, fsys storage.FS) {
	for _, name := range []string{"", "/abs", "trailing/", "a//b", "a/../b", ".", "..", "../escape"} {
		if _, err := fsys.Create(name); err == nil {
			t.Errorf("Create(%q) accepted an invalid name", name)
		}
		if _, err := fsys.Open(name); err == nil {
			t.Errorf("Open(%q) accepted an invalid name", name)
		}
	}
}

func testConcurrent(t *testing.T, fsys storage.FS) {
	const n = 16
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("c/%02d", i)
			w, err := fsys.Create(name)
			if err != nil {
				t.Errorf("Create(%q): %v", name, err)
				return
			}
			io.WriteString(w, strings.Repeat("x", i))
			if err := w.Close(); err != nil {
				t.Errorf("Close(%q): %v", name, err)
			}
		}(i)
	}
	wg.Wait()
	names, err := fsys.List("c/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != n {
		t.Errorf("List after %d concurrent creates = %d names", n, len(names))
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("c/%02d", i)
		if got := read(t, fsys, name); len(got) != i {
			t.Errorf("%q = %d bytes, want %d", name, len(got), i)
		}
	}
}
