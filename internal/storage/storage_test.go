package storage_test

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"otm/internal/storage"
	"otm/internal/storage/testsuite"
)

// Both backends — and the Sub wrapper over each — must pass the shared
// conformance suite. This is the gate a future backend (s3, gcs, ...)
// has to clear too.
func TestOSConformance(t *testing.T) {
	testsuite.Run(t, func(t *testing.T) storage.FS {
		return storage.NewOS(t.TempDir())
	})
}

func TestMemConformance(t *testing.T) {
	testsuite.Run(t, func(t *testing.T) storage.FS {
		return storage.NewMem()
	})
}

func TestSubConformance(t *testing.T) {
	t.Run("OverOS", func(t *testing.T) {
		testsuite.Run(t, func(t *testing.T) storage.FS {
			return storage.Sub(storage.NewOS(t.TempDir()), "nested/prefix")
		})
	})
	t.Run("OverMem", func(t *testing.T) {
		testsuite.Run(t, func(t *testing.T) storage.FS {
			return storage.Sub(storage.NewMem(), "nested")
		})
	})
}

// TestSubIsolation: a Sub view only sees its own prefix of the parent.
func TestSubIsolation(t *testing.T) {
	parent := storage.NewMem()
	a, b := storage.Sub(parent, "a"), storage.Sub(parent, "b")
	w, _ := a.Create("obj")
	io.WriteString(w, "in a")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open("obj"); !errors.Is(err, storage.ErrNotExist) {
		t.Errorf("b sees a's object: %v", err)
	}
	names, err := parent.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "a/obj" {
		t.Errorf("parent List = %v, want [a/obj]", names)
	}
}

// TestMemSharedStores: mem:// URIs with the same store name resolve to
// the same objects; different names are isolated.
func TestMemSharedStores(t *testing.T) {
	one, err := storage.Resolve("mem://test-shared-stores")
	if err != nil {
		t.Fatal(err)
	}
	w, _ := one.Create("x")
	io.WriteString(w, "shared")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	two, err := storage.Resolve("mem://test-shared-stores")
	if err != nil {
		t.Fatal(err)
	}
	r, err := two.Open("x")
	if err != nil {
		t.Fatalf("second resolve of the same store cannot see the object: %v", err)
	}
	b, _ := io.ReadAll(r)
	r.Close()
	if string(b) != "shared" {
		t.Errorf("shared store content = %q", b)
	}

	other, err := storage.Resolve("mem://test-shared-stores-other")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Open("x"); !errors.Is(err, storage.ErrNotExist) {
		t.Errorf("distinct store names share objects: %v", err)
	}
}

func TestResolve(t *testing.T) {
	dir := t.TempDir()
	for _, uri := range []string{dir, "file://" + dir} {
		fsys, err := storage.Resolve(uri)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", uri, err)
		}
		w, err := fsys.Create("probe")
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(w, uri)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if b, err := os.ReadFile(filepath.Join(dir, "probe")); err != nil || string(b) != uri {
			t.Errorf("Resolve(%q) did not land on %s: %q, %v", uri, dir, b, err)
		}
	}

	for _, uri := range []string{"", "file://", "mem://", "s3://bucket/x"} {
		if _, err := storage.Resolve(uri); err == nil {
			t.Errorf("Resolve(%q) succeeded, want error", uri)
		}
	}
	if _, err := storage.Resolve("s3://b/x"); err == nil || !strings.Contains(err.Error(), "known: file, mem") {
		t.Errorf("unknown scheme error should name the known backends, got %v", err)
	}
}

func TestSplitURI(t *testing.T) {
	cases := []struct {
		uri, dir, base string
		wantErr        bool
	}{
		{uri: "file:///tmp/run/corpus.txt", dir: "file:///tmp/run", base: "corpus.txt"},
		{uri: "file:///corpus.txt", dir: "file:///", base: "corpus.txt"},
		{uri: "mem://b/logs/x.log", dir: "mem://b/logs", base: "x.log"},
		{uri: "mem://b/x.log", dir: "mem://b", base: "x.log"},
		{uri: "corpus.txt", dir: ".", base: "corpus.txt"},
		{uri: "/tmp/corpus.txt", dir: "/tmp", base: "corpus.txt"},
		{uri: "rel/dir/corpus.txt", dir: "rel/dir", base: "corpus.txt"},
		{uri: "mem://bucket", wantErr: true}, // a store, not an object
		{uri: "file:///dir/", wantErr: true}, // empty object name
		{uri: "", wantErr: true},
	}
	for _, c := range cases {
		dir, base, err := storage.SplitURI(c.uri)
		if c.wantErr {
			if err == nil {
				t.Errorf("SplitURI(%q) = (%q, %q), want error", c.uri, dir, base)
			}
			continue
		}
		if err != nil || dir != c.dir || base != c.base {
			t.Errorf("SplitURI(%q) = (%q, %q, %v), want (%q, %q)", c.uri, dir, base, err, c.dir, c.base)
		}
	}
}

// TestOpenCreateURI: the single-object helpers compose Split+Resolve for
// both backends.
func TestOpenCreateURI(t *testing.T) {
	for _, root := range []string{"file://" + t.TempDir(), "mem://test-open-create-uri"} {
		uri := root + "/deep/obj.txt"
		w, err := storage.CreateURI(uri)
		if err != nil {
			t.Fatalf("CreateURI(%q): %v", uri, err)
		}
		io.WriteString(w, "via uri")
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := storage.OpenURI(uri)
		if err != nil {
			t.Fatalf("OpenURI(%q): %v", uri, err)
		}
		b, _ := io.ReadAll(r)
		r.Close()
		if string(b) != "via uri" {
			t.Errorf("OpenURI(%q) = %q", uri, b)
		}
	}
	if _, err := storage.OpenURI("mem://test-open-create-uri/absent"); !errors.Is(err, storage.ErrNotExist) {
		t.Errorf("OpenURI(absent) = %v, want ErrNotExist", err)
	}
}

// TestOSCrashLeavesNoPartial: an abandoned os writer (simulating a
// killed process) leaves only a hidden temp file that the FS never
// surfaces, and the previous version stays intact.
func TestOSCrashLeavesNoPartial(t *testing.T) {
	dir := t.TempDir()
	fsys := storage.NewOS(dir)
	w, _ := fsys.Create("obj")
	io.WriteString(w, "committed")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	crash, _ := fsys.Create("obj")
	io.WriteString(crash, "partial write, never closed")
	// No Close, no Abort: the writer is simply abandoned.

	names, err := fsys.List("")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(names) != "[obj]" {
		t.Errorf("List after crash = %v, want [obj]", names)
	}
	r, err := fsys.Open("obj")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(r)
	r.Close()
	if string(b) != "committed" {
		t.Errorf("crashed writer corrupted the committed version: %q", b)
	}
}

// TestOSReservedTempPrefix: object names that collide with the os
// backend's temp-file namespace are rejected, so List can always tell
// committed objects from in-flight ones.
func TestOSReservedTempPrefix(t *testing.T) {
	fsys := storage.NewOS(t.TempDir())
	if _, err := fsys.Create(".otm-tmp-sneaky"); err == nil {
		t.Error("Create with the reserved temp prefix must fail")
	}
}
