package opg

import (
	"fmt"
	"sort"
	"strings"

	"otm/internal/history"
)

// DOT renders the opacity graph in Graphviz dot syntax: Lvis vertices are
// solid, Lloc vertices dashed; edge labels list the relation labels.
// Pipe the output through `dot -Tsvg` to visualize a history's
// dependency structure or an opacity violation cycle.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	txs := append([]history.TxID(nil), g.Txs...)
	sort.Slice(txs, func(i, j int) bool { return txs[i] < txs[j] })
	for _, tx := range txs {
		style := "dashed"
		label := "loc"
		if g.Vis[tx] {
			style = "solid"
			label = "vis"
		}
		fmt.Fprintf(&b, "  T%d [style=%s, xlabel=%q];\n", int(tx), style, label)
	}
	type row struct {
		key    [2]history.TxID
		labels []string
	}
	rows := make([]row, 0, len(g.Edges))
	for key, labels := range g.Edges {
		var ls []string
		for _, l := range []Label{Lrt, Lrf, Lrw, Lww} {
			if labels[l] {
				ls = append(ls, string(l))
			}
		}
		rows = append(rows, row{key, ls})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].key[0] != rows[j].key[0] {
			return rows[i].key[0] < rows[j].key[0]
		}
		return rows[i].key[1] < rows[j].key[1]
	})
	for _, r := range rows {
		fmt.Fprintf(&b, "  T%d -> T%d [label=%q];\n",
			int(r.key[0]), int(r.key[1]), strings.Join(r.labels, ","))
	}
	b.WriteString("}\n")
	return b.String()
}
