package opg

import (
	"strings"
	"testing"

	"otm/internal/core"
	"otm/internal/history"
)

// figure1 is the paper's H1 with the initializing transaction T0 writing
// 0 to x and y (the characterization's standing assumption).
func figure1() history.History {
	return WithInit(history.MustParse(
		"w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2"), 0)
}

// figure2 is the paper's opaque H5 with T0.
func figure2() history.History {
	h := history.History{
		history.Inv(2, "x", "write", 1), history.Ret(2, "x", "write", history.OK),
		history.Inv(2, "y", "write", 2), history.Ret(2, "y", "write", history.OK),
		history.TryC(2),
		history.Inv(1, "x", "read", nil),
		history.Commit(2),
		history.Inv(3, "y", "write", 3),
		history.Ret(1, "x", "read", 1), history.Inv(1, "x", "write", 5),
		history.Ret(3, "y", "write", history.OK),
		history.Ret(1, "x", "write", history.OK), history.Inv(1, "y", "read", nil),
		history.Inv(3, "x", "read", nil),
		history.Ret(1, "y", "read", 2), history.TryC(1),
		history.Ret(3, "x", "read", 1), history.TryC(3),
		history.Abort(1),
		history.Commit(3),
	}.MustWellFormed()
	return WithInit(h, 0)
}

// h4 is the paper's H4 (§5.2) with T0: T2 commit-pending, T3 sees its
// write, T1 does not.
func h4() history.History {
	return WithInit(history.NewBuilder().
		Read(1, "x", 0).
		Write(2, "x", 5).Write(2, "y", 5).TryC(2).
		Read(3, "y", 5).
		Read(1, "y", 0).
		MustHistory(), 0)
}

func TestBuildEdgesSimple(t *testing.T) {
	// T1 writes and commits, T2 reads from T1: Lrt (T0→all, T1→T2) and
	// Lrf (T1→T2).
	h := WithInit(history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 1).Commits(2).
		MustHistory(), 0)
	txs := Nonlocal(h).Transactions()
	g, err := Build(h, txs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 2, Lrf) {
		t.Error("missing reads-from edge T1→T2")
	}
	if !g.HasEdge(0, 1, Lrt) || !g.HasEdge(1, 2, Lrt) {
		t.Error("missing real-time edges")
	}
	if !g.Vis[1] || !g.Vis[2] || !g.Vis[0] {
		t.Error("committed transactions must be labelled Lvis")
	}
	if !g.WellFormed() || !g.Acyclic() {
		t.Errorf("graph must be well-formed and acyclic:\n%s", g)
	}
}

func TestBuildRwEdgeDependsOnOrder(t *testing.T) {
	// T1 reads x=0 (from T0); T2 writes x=5 concurrently.
	h := WithInit(history.History{
		history.Inv(1, "x", "read", nil),
		history.Inv(2, "x", "write", 5), history.Ret(2, "x", "write", history.OK),
		history.Ret(1, "x", "read", 0),
		history.TryC(1), history.Commit(1),
		history.TryC(2), history.Commit(2),
	}.MustWellFormed(), 0)
	// Order T1 ≪ T2: anti-dependency edge T1→T2.
	g, err := Build(h, []history.TxID{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 2, Lrw) {
		t.Errorf("T1 ≪ T2 with T1 reading x written by T2 needs an Lrw edge:\n%s", g)
	}
	// Order T2 ≪ T1: no Lrw edge from T1, but Lww: T0 visible, T0 ≪ T1,
	// T0 writes x, T1 reads x from T0 — no, that's reads-from T0 itself.
	// T2 visible, T2 ≪ T1, T2 writes x, T1 reads x from T0 ⇒ Lww T2→T0.
	g2, err := Build(h, []history.TxID{0, 2, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2.HasEdge(1, 2, Lrw) {
		t.Error("no Lrw edge when T2 ≪ T1")
	}
	if !g2.HasEdge(2, 0, Lww) {
		t.Errorf("T2 ≪ T1, T2 writes x, T1 reads x from T0 ⇒ Lww T2→T0:\n%s", g2)
	}
	// That Lww edge closes a cycle with Lrt T0→T2, so this order loses.
	if g2.Acyclic() {
		t.Error("order T2 ≪ T1 must be cyclic (T2 cannot be serialized before the initializer it overwrote)")
	}
	if !g.Acyclic() {
		t.Error("order T1 ≪ T2 must be acyclic")
	}
}

func TestWellFormedness(t *testing.T) {
	// A live transaction's write read by another: Lrf out of an Lloc
	// vertex → ill-formed (for V = ∅).
	h := WithInit(history.History{
		history.Inv(1, "x", "write", 1), history.Ret(1, "x", "write", history.OK),
		history.Inv(2, "x", "read", nil), history.Ret(2, "x", "read", 1),
		history.TryC(2), history.Commit(2),
	}.MustWellFormed(), 0)
	txs := Nonlocal(h).Transactions()
	g, err := Build(h, txs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Vis[1] {
		t.Fatal("live T1 with V=∅ must be Lloc")
	}
	if g.WellFormed() {
		t.Error("reading from an Lloc transaction must be ill-formed")
	}
}

func TestVMakesCommitPendingVisible(t *testing.T) {
	h := WithInit(history.NewBuilder().
		Write(1, "x", 1).TryC(1).
		Read(2, "x", 1).Commits(2).
		MustHistory(), 0)
	txs := Nonlocal(h).Transactions()
	g, err := Build(h, txs, []history.TxID{1})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Vis[1] {
		t.Error("T1 ∈ V must be labelled Lvis")
	}
	if !g.WellFormed() {
		t.Error("with T1 visible the graph is well-formed")
	}
	// V may contain only commit-pending transactions.
	if _, err := Build(h, txs, []history.TxID{2}); err == nil {
		t.Error("committed T2 must be rejected as a V member")
	}
}

func TestBuildValidation(t *testing.T) {
	h := figure1()
	if _, err := Build(h, nil, nil); err == nil {
		t.Error("order missing transactions must be rejected")
	}
	counter := history.NewBuilder().Op(1, "c", "inc", nil, history.OK).Commits(1).MustHistory()
	if _, err := Build(counter, []history.TxID{1}, nil); err == nil {
		t.Error("non-register history must be rejected")
	}
	dup := history.NewBuilder().Write(1, "x", 1).Write(2, "x", 1).MustHistory()
	if _, err := Build(dup, []history.TxID{1, 2}, nil); err == nil {
		t.Error("duplicate writes must be rejected")
	}
}

func TestCycleExtraction(t *testing.T) {
	g := newGraph([]history.TxID{1, 2, 3})
	g.addEdge(1, 2, Lrt)
	g.addEdge(2, 3, Lrt)
	if c := g.Cycle(); c != nil {
		t.Errorf("acyclic graph reported cycle %v", c)
	}
	g.addEdge(3, 1, Lrw)
	c := g.Cycle()
	if len(c) != 3 {
		t.Errorf("cycle = %v, want all three vertices", c)
	}
	// Self-loop.
	g2 := newGraph([]history.TxID{1})
	g2.addEdge(1, 1, Lww)
	if g2.Acyclic() {
		t.Error("self-loop must be cyclic")
	}
}

func TestGraphString(t *testing.T) {
	h := figure1()
	txs := Nonlocal(h).Transactions()
	g, err := Build(h, txs, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := g.String()
	if !strings.Contains(s, "->") || !strings.Contains(s, "rf") {
		t.Errorf("graph rendering looks wrong:\n%s", s)
	}
}

func TestTheorem2Figure1NotOpaque(t *testing.T) {
	res, err := CheckTheorem2(figure1())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("H1 is consistent; reason: %v", res.Reason)
	}
	if res.Opaque {
		t.Errorf("H1 must not be opaque by Theorem 2 (order %v, V %v)", res.Order, res.V)
	}
}

func TestTheorem2Figure2Opaque(t *testing.T) {
	res, err := CheckTheorem2(figure2())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Fatal("H5 must be opaque by Theorem 2")
	}
	if !res.Graph.WellFormed() || !res.Graph.Acyclic() {
		t.Error("witness graph must be well-formed and acyclic")
	}
}

func TestTheorem2H4OpaqueWithV(t *testing.T) {
	res, err := CheckTheorem2(h4())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Fatal("H4 must be opaque by Theorem 2")
	}
	// T3 reads commit-pending T2's write, so T2 must be in V.
	found := false
	for _, tx := range res.V {
		if tx == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("witness V = %v must contain commit-pending T2", res.V)
	}
}

func TestTheorem2InconsistentShortCircuit(t *testing.T) {
	h := WithInit(history.NewBuilder().Read(1, "x", 99).Commits(1).MustHistory(), 0)
	res, err := CheckTheorem2(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent || res.Opaque {
		t.Error("read of unwritten 99 must fail the consistency precondition")
	}
	if res.Reason == nil {
		t.Error("missing inconsistency reason")
	}
}

func TestTheorem2Errors(t *testing.T) {
	if _, err := CheckTheorem2(history.History{history.Commit(1)}); err == nil {
		t.Error("malformed history must error")
	}
	counter := history.NewBuilder().Op(1, "c", "inc", nil, history.OK).Commits(1).MustHistory()
	if _, err := CheckTheorem2(counter); err == nil {
		t.Error("non-register history must error")
	}
	// Ten sequential committed writers used to exceed the 9-transaction
	// cap of the old factorial permutation search; the incremental-cycle
	// search decides them (see TestTheorem2BeyondOldFactorialCap for the
	// positive case at 12).
	var big history.History
	for tx := history.TxID(1); tx <= 10; tx++ {
		big = append(big,
			history.Inv(tx, "x", "write", int(tx)),
			history.Ret(tx, "x", "write", history.OK),
			history.TryC(tx), history.Commit(tx))
	}
	if res, err := CheckTheorem2(big.MustWellFormed()); err != nil || !res.Opaque {
		t.Errorf("10 sequential writers: res=%+v err=%v, want opaque with no cap error", res, err)
	}
}

func TestTheorem2EmptyHistory(t *testing.T) {
	res, err := CheckTheorem2(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Error("the empty history is opaque")
	}
}

// Differential check on the paper's fixed examples: Theorem 2 must agree
// with the definitional checker of internal/core. (Random differential
// testing lives in internal/gen.)
func TestTheorem2AgreesWithDefinitionOnPaperExamples(t *testing.T) {
	cases := map[string]history.History{
		"H1":  figure1(),
		"H5":  figure2(),
		"H4":  h4(),
		"rw":  WithInit(history.MustParse("w1(x,1) tryC1 C1 r2(x)->1 tryC2 C2"), 0),
		"rt":  WithInit(history.MustParse("w1(x,1) tryC1 C1 r2(x)->0 tryC2 C2"), 0),
		"cp":  WithInit(history.MustParse("w1(x,1) tryC1 r2(x)->1 tryC2 C2"), 0),
		"cp2": WithInit(history.MustParse("w1(x,1) tryC1 r2(x)->0 tryC2 C2"), 0),
	}
	for name, h := range cases {
		defRes, err := core.Opaque(h)
		if err != nil {
			t.Fatalf("%s: core: %v", name, err)
		}
		gRes, err := CheckTheorem2(h)
		if err != nil {
			t.Fatalf("%s: opg: %v", name, err)
		}
		if defRes.Opaque != gRes.Opaque {
			t.Errorf("%s: definitional checker says %v, Theorem 2 says %v",
				name, defRes.Opaque, gRes.Opaque)
		}
	}
}
