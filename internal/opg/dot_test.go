package opg

import (
	"strings"
	"testing"
)

func TestDOT(t *testing.T) {
	h := figure1()
	txs := Nonlocal(h).Transactions()
	g, err := Build(h, txs, nil)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT("fig1")
	for _, want := range []string{
		"digraph \"fig1\"",
		"T0 [style=solid",
		"T2 [style=solid", // aborted T2 is not Lvis... see below
		"->",
		"rt",
		"}",
	} {
		if want == "T2 [style=solid" {
			// Aborted T2 is Lloc: dashed.
			if !strings.Contains(dot, "T2 [style=dashed") {
				t.Errorf("aborted T2 must render dashed (Lloc):\n%s", dot)
			}
			continue
		}
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Every edge of the graph appears.
	edgeCount := strings.Count(dot, "->")
	if edgeCount != len(g.Edges) {
		t.Errorf("DOT has %d edges, graph has %d", edgeCount, len(g.Edges))
	}
}

func TestDOTDeterministic(t *testing.T) {
	h := figure2()
	txs := Nonlocal(h).Transactions()
	g, err := Build(h, txs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.DOT("x") != g.DOT("x") {
		t.Error("DOT output must be deterministic")
	}
}
