package opg

import (
	"errors"
	"testing"

	"otm/internal/core"
	"otm/internal/history"
)

// TestTheorem2Budget: the graph search honours the same budget plumbing
// as the definitional checker — exhaustion reports core.ErrSearchLimit
// and a shared Nodes counter accumulates across calls.
func TestTheorem2Budget(t *testing.T) {
	h := WithInit(history.MustParse(
		"w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2"), 0)

	var nodes int
	if _, err := CheckTheorem2Budget(h, Theorem2Config{MaxNodes: 1, Nodes: &nodes}); !errors.Is(err, core.ErrSearchLimit) {
		t.Fatalf("err=%v, want core.ErrSearchLimit under a 1-node budget", err)
	}
	if nodes != 1 {
		t.Errorf("nodes=%d, want exactly the budget (1)", nodes)
	}

	// A generous budget reproduces the unbudgeted verdict and counts the
	// candidate graphs actually built.
	nodes = 0
	res, err := CheckTheorem2Budget(h, Theorem2Config{Nodes: &nodes})
	if err != nil {
		t.Fatal(err)
	}
	want, err := CheckTheorem2(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque != want.Opaque {
		t.Errorf("budgeted verdict %v != unbudgeted %v", res.Opaque, want.Opaque)
	}
	if nodes == 0 {
		t.Error("Nodes counter did not accumulate")
	}
}
