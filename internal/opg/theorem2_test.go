package opg

import (
	"errors"
	"fmt"
	"testing"

	"otm/internal/core"
	"otm/internal/gen"
	"otm/internal/history"
)

// TestTheorem2Budget: the graph search honours the same budget plumbing
// as the definitional checker — exhaustion reports core.ErrSearchLimit
// and a shared Nodes counter accumulates across calls.
func TestTheorem2Budget(t *testing.T) {
	h := WithInit(history.MustParse(
		"w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2"), 0)

	var nodes int
	if _, err := CheckTheorem2Budget(h, Theorem2Config{MaxNodes: 1, Nodes: &nodes}); !errors.Is(err, core.ErrSearchLimit) {
		t.Fatalf("err=%v, want core.ErrSearchLimit under a 1-node budget", err)
	}
	if nodes != 1 {
		t.Errorf("nodes=%d, want exactly the budget (1)", nodes)
	}

	// A generous budget reproduces the unbudgeted verdict and counts the
	// candidate graphs actually built.
	nodes = 0
	res, err := CheckTheorem2Budget(h, Theorem2Config{Nodes: &nodes})
	if err != nil {
		t.Fatal(err)
	}
	want, err := CheckTheorem2(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque != want.Opaque {
		t.Errorf("budgeted verdict %v != unbudgeted %v", res.Opaque, want.Opaque)
	}
	if nodes == 0 {
		t.Error("Nodes counter did not accumulate")
	}
}

// TestTheorem2BeyondOldFactorialCap: the incremental-cycle search
// decides 12-transaction histories the old factorial permutation engine
// refused outright (it was capped at 9 transactions because it built up
// to n! candidate graphs per V; 12! ≈ 4.8×10⁸ would also have blown the
// default node budget). Both verdicts are cross-checked against the
// Definition 1 engine.
func TestTheorem2BeyondOldFactorialCap(t *testing.T) {
	// T0 (init) plus a sequential committed chain T1..T10 on x, each
	// reading its predecessor's value, plus a commit-pending reader T11 —
	// 12 transactions, opaque, with V-subset branching exercised.
	chain := ""
	for i := 1; i <= 10; i++ {
		chain += fmt.Sprintf("r%d(x)->%d w%d(x,%d) tryC%d C%d ", i, i-1, i, i, i, i)
	}
	opaque := WithInit(history.MustParse(chain+"r11(x)->10 tryC11"), 0)
	if n := len(opaque.Transactions()); n != 12 {
		t.Fatalf("got %d transactions, want 12", n)
	}

	var nodes int
	res, err := CheckTheorem2Budget(opaque, Theorem2Config{Nodes: &nodes})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Opaque {
		t.Fatal("12-transaction sequential chain must be opaque")
	}
	if res.Graph == nil || !res.Graph.WellFormed() || !res.Graph.Acyclic() {
		t.Error("witness graph must be well-formed and acyclic")
	}
	if len(res.Order) != len(Nonlocal(opaque).Transactions()) {
		t.Errorf("witness order %v does not cover the nonlocal transactions", res.Order)
	}
	// The incremental search must get nowhere near the factorial regime:
	// a sequential chain is decided in roughly quadratically many
	// placement attempts.
	if nodes > 10_000 {
		t.Errorf("nodes=%d, want far below the factorial regime", nodes)
	}
	dRes, err := core.Check(opaque, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !dRes.Opaque {
		t.Error("Definition 1 disagrees: not opaque")
	}

	// Same chain with a committed stale reader: T11 reads the long-dead
	// x=3 after T10 committed, so every order closes a cycle (e.g.
	// Lrt T3→T4 against the Lww edge T4→T3 its visibility forces once
	// T4 ≪ T11 is settled). 12 transactions, non-opaque.
	nodes = 0
	stale := WithInit(history.MustParse(chain+"r11(x)->3 tryC11 C11"), 0)
	res, err = CheckTheorem2Budget(stale, Theorem2Config{Nodes: &nodes})
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque || !res.Consistent {
		t.Errorf("stale 12-transaction chain: opaque=%v consistent=%v, want consistent non-opaque",
			res.Opaque, res.Consistent)
	}
	if nodes > 100_000 {
		t.Errorf("refutation took %d nodes, want cycle pruning to stay far below the factorial regime", nodes)
	}
	dRes, err = core.Check(stale, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dRes.Opaque {
		t.Error("Definition 1 disagrees: opaque")
	}
}

// TestTheorem2MatchesDefinitionSmall is the table-driven cross-check of
// the two decision procedures: on every generated history of at most 5
// transactions (T0 included), the Theorem 2 graph search — run through
// its budget entry point — must agree with the completion-aware
// Definition 1 checker of internal/core. The cases sweep transaction
// count, object count, operation density, stale-read adversariality and
// commit-pending pressure, so both verdicts, the consistency
// precondition and the V-subset branching are all exercised.
func TestTheorem2MatchesDefinitionSmall(t *testing.T) {
	base := gen.Config{Objs: 2, MaxOps: 2, WithInit: true, PStaleRead: 0.35}
	with := func(mut func(*gen.Config)) gen.Config {
		cfg := base
		mut(&cfg)
		return cfg
	}
	cases := []struct {
		name  string
		cfg   gen.Config
		seeds int64
	}{
		{"1tx", with(func(c *gen.Config) { c.Txs = 1 }), 150},
		{"2tx", with(func(c *gen.Config) { c.Txs = 2 }), 250},
		{"3tx", with(func(c *gen.Config) { c.Txs = 3 }), 300},
		{"4tx", with(func(c *gen.Config) { c.Txs = 4 }), 300},
		{"4tx-dense", with(func(c *gen.Config) { c.Txs = 4; c.MaxOps = 3; c.Objs = 3 }), 200},
		{"4tx-adversarial", with(func(c *gen.Config) { c.Txs = 4; c.PStaleRead = 0.6 }), 250},
		{"4tx-commit-pending", with(func(c *gen.Config) { c.Txs = 4; c.PLeaveLive = 0.7 }), 300},
		{"3tx-single-object", with(func(c *gen.Config) { c.Txs = 3; c.Objs = 1; c.MaxOps = 3 }), 250},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seeds := tc.seeds
			if testing.Short() {
				seeds /= 4
			}
			opaque, notOpaque, inconsistent := 0, 0, 0
			for seed := int64(0); seed < seeds; seed++ {
				h := gen.History(tc.cfg, seed)
				if n := len(h.Transactions()); n > 5 {
					t.Fatalf("seed %d: generator produced %d transactions, want ≤5", seed, n)
				}

				var nodes int
				gRes, err := CheckTheorem2Budget(h, Theorem2Config{Nodes: &nodes})
				if err != nil {
					t.Fatalf("seed %d: opg: %v\n%s", seed, err, h.Format())
				}
				dRes, err := core.Check(h, core.Config{})
				if err != nil {
					t.Fatalf("seed %d: core: %v\n%s", seed, err, h.Format())
				}

				if gRes.Opaque != dRes.Opaque {
					t.Fatalf("seed %d: Theorem 2 says opaque=%v but Definition 1 says %v\nconsistent=%v reason=%v\n%s",
						seed, gRes.Opaque, dRes.Opaque, gRes.Consistent, gRes.Reason, h.Format())
				}
				if !gRes.Consistent {
					inconsistent++
					if dRes.Opaque {
						t.Fatalf("seed %d: inconsistent per Theorem 2 yet opaque per Definition 1:\n%s",
							seed, h.Format())
					}
				} else if nodes == 0 && len(Nonlocal(h).Transactions()) > 0 {
					t.Errorf("seed %d: consistent non-trivial history built no candidate graphs", seed)
				}
				if gRes.Opaque {
					opaque++
					if len(gRes.Order) != len(Nonlocal(h).Transactions()) {
						t.Fatalf("seed %d: witness order %v does not cover the nonlocal transactions", seed, gRes.Order)
					}
				} else {
					notOpaque++
				}
			}
			t.Logf("%s: %d opaque, %d non-opaque (%d inconsistent) over %d seeds",
				tc.name, opaque, notOpaque, inconsistent, seeds)
			// Every case must genuinely exercise the comparison; the
			// all-committing and adversarial corpora must produce both
			// verdicts in bulk.
			if opaque == 0 {
				t.Errorf("%s: corpus produced no opaque histories", tc.name)
			}
			if tc.cfg.PStaleRead >= 0.35 && tc.cfg.Txs >= 3 && notOpaque == 0 {
				t.Errorf("%s: adversarial corpus produced no non-opaque histories", tc.name)
			}
		})
	}
}
