package opg

import (
	"errors"
	"testing"

	"otm/internal/core"
	"otm/internal/gen"
	"otm/internal/history"
)

// TestTheorem2Budget: the graph search honours the same budget plumbing
// as the definitional checker — exhaustion reports core.ErrSearchLimit
// and a shared Nodes counter accumulates across calls.
func TestTheorem2Budget(t *testing.T) {
	h := WithInit(history.MustParse(
		"w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2"), 0)

	var nodes int
	if _, err := CheckTheorem2Budget(h, Theorem2Config{MaxNodes: 1, Nodes: &nodes}); !errors.Is(err, core.ErrSearchLimit) {
		t.Fatalf("err=%v, want core.ErrSearchLimit under a 1-node budget", err)
	}
	if nodes != 1 {
		t.Errorf("nodes=%d, want exactly the budget (1)", nodes)
	}

	// A generous budget reproduces the unbudgeted verdict and counts the
	// candidate graphs actually built.
	nodes = 0
	res, err := CheckTheorem2Budget(h, Theorem2Config{Nodes: &nodes})
	if err != nil {
		t.Fatal(err)
	}
	want, err := CheckTheorem2(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Opaque != want.Opaque {
		t.Errorf("budgeted verdict %v != unbudgeted %v", res.Opaque, want.Opaque)
	}
	if nodes == 0 {
		t.Error("Nodes counter did not accumulate")
	}
}

// TestTheorem2MatchesDefinitionSmall is the table-driven cross-check of
// the two decision procedures: on every generated history of at most 5
// transactions (T0 included), the Theorem 2 graph search — run through
// its budget entry point — must agree with the completion-aware
// Definition 1 checker of internal/core. The cases sweep transaction
// count, object count, operation density, stale-read adversariality and
// commit-pending pressure, so both verdicts, the consistency
// precondition and the V-subset branching are all exercised.
func TestTheorem2MatchesDefinitionSmall(t *testing.T) {
	base := gen.Config{Objs: 2, MaxOps: 2, WithInit: true, PStaleRead: 0.35}
	with := func(mut func(*gen.Config)) gen.Config {
		cfg := base
		mut(&cfg)
		return cfg
	}
	cases := []struct {
		name  string
		cfg   gen.Config
		seeds int64
	}{
		{"1tx", with(func(c *gen.Config) { c.Txs = 1 }), 150},
		{"2tx", with(func(c *gen.Config) { c.Txs = 2 }), 250},
		{"3tx", with(func(c *gen.Config) { c.Txs = 3 }), 300},
		{"4tx", with(func(c *gen.Config) { c.Txs = 4 }), 300},
		{"4tx-dense", with(func(c *gen.Config) { c.Txs = 4; c.MaxOps = 3; c.Objs = 3 }), 200},
		{"4tx-adversarial", with(func(c *gen.Config) { c.Txs = 4; c.PStaleRead = 0.6 }), 250},
		{"4tx-commit-pending", with(func(c *gen.Config) { c.Txs = 4; c.PLeaveLive = 0.7 }), 300},
		{"3tx-single-object", with(func(c *gen.Config) { c.Txs = 3; c.Objs = 1; c.MaxOps = 3 }), 250},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seeds := tc.seeds
			if testing.Short() {
				seeds /= 4
			}
			opaque, notOpaque, inconsistent := 0, 0, 0
			for seed := int64(0); seed < seeds; seed++ {
				h := gen.History(tc.cfg, seed)
				if n := len(h.Transactions()); n > 5 {
					t.Fatalf("seed %d: generator produced %d transactions, want ≤5", seed, n)
				}

				var nodes int
				gRes, err := CheckTheorem2Budget(h, Theorem2Config{Nodes: &nodes})
				if err != nil {
					t.Fatalf("seed %d: opg: %v\n%s", seed, err, h.Format())
				}
				dRes, err := core.Check(h, core.Config{})
				if err != nil {
					t.Fatalf("seed %d: core: %v\n%s", seed, err, h.Format())
				}

				if gRes.Opaque != dRes.Opaque {
					t.Fatalf("seed %d: Theorem 2 says opaque=%v but Definition 1 says %v\nconsistent=%v reason=%v\n%s",
						seed, gRes.Opaque, dRes.Opaque, gRes.Consistent, gRes.Reason, h.Format())
				}
				if !gRes.Consistent {
					inconsistent++
					if dRes.Opaque {
						t.Fatalf("seed %d: inconsistent per Theorem 2 yet opaque per Definition 1:\n%s",
							seed, h.Format())
					}
				} else if nodes == 0 && len(Nonlocal(h).Transactions()) > 0 {
					t.Errorf("seed %d: consistent non-trivial history built no candidate graphs", seed)
				}
				if gRes.Opaque {
					opaque++
					if len(gRes.Order) != len(Nonlocal(h).Transactions()) {
						t.Fatalf("seed %d: witness order %v does not cover the nonlocal transactions", seed, gRes.Order)
					}
				} else {
					notOpaque++
				}
			}
			t.Logf("%s: %d opaque, %d non-opaque (%d inconsistent) over %d seeds",
				tc.name, opaque, notOpaque, inconsistent, seeds)
			// Every case must genuinely exercise the comparison; the
			// all-committing and adversarial corpora must produce both
			// verdicts in bulk.
			if opaque == 0 {
				t.Errorf("%s: corpus produced no opaque histories", tc.name)
			}
			if tc.cfg.PStaleRead >= 0.35 && tc.cfg.Txs >= 3 && notOpaque == 0 {
				t.Errorf("%s: adversarial corpus produced no non-opaque histories", tc.name)
			}
		})
	}
}
