package opg

import (
	"fmt"
	"math/bits"

	"otm/internal/core"
	"otm/internal/history"
)

// Theorem2Result is the outcome of deciding opacity via the graph
// characterization.
type Theorem2Result struct {
	// Opaque is the verdict.
	Opaque bool
	// Consistent reports condition (1) of Theorem 2. When false, Reason
	// explains the inconsistency and no graph search was attempted.
	Consistent bool
	Reason     error
	// Order and V are the witnesses (≪, V) when Opaque; Graph is the
	// corresponding well-formed acyclic opacity graph.
	Order []history.TxID
	V     []history.TxID
	Graph *Graph
}

// Theorem2Config tunes the Theorem 2 search. It mirrors the budget
// plumbing of core.Config: MaxNodes bounds the search (0 = the same
// 4,000,000 default as the definitional checker; one node is charged per
// V subset considered and per attempted placement of a transaction into
// the order ≪), exhaustion reports core.ErrSearchLimit, and a non-nil
// Nodes accumulates the count across calls — so batch drivers can meter
// the graph characterization exactly like the Definition 1 search.
type Theorem2Config struct {
	MaxNodes int
	Nodes    *int
}

// CheckTheorem2 decides opacity of h by Theorem 2: h is opaque iff h is
// consistent and there exist a total order ≪ on the transactions of h
// and a subset V of its commit-pending transactions such that
// OPG(nonlocal(h), ≪, V) is well-formed and acyclic.
//
// The search enumerates subsets V exhaustively. For each V the order ≪
// is built one transaction at a time with incremental cycle detection
// instead of enumerating the n! permutations: the OPG edge set
// decomposes into a ≪-independent base (Lrt and Lrf) and conditional
// edges guarded by a single precedence each — an Lrw edge Ti→Tk is
// present iff Ti ≪ Tk, and an Lww edge Ti→Tk iff Ti ≪ Tm for its
// mediating reader Tm — so extending a prefix of ≪ by T activates
// exactly the edges whose guard T≪· just became true, and the edge set
// grows monotonically along every branch of the search. A prefix whose
// active edges already contain a cycle can therefore be pruned
// immediately, and since every new edge of one extension shares the
// source T, one reachability pass (can any new target reach T?) decides
// the cycle check. A full prefix has exactly the edges of
// OPG(nonlocal(h), ≪, V) and was verified acyclic at every step, so it
// is a witness.
//
// The ≪-independent parts are still pruned per V before any ordering
// work: an ill-formed base (an Lrf edge out of an Lloc vertex) or a
// cycle among the Lrt/Lrf edges alone rules out every order. The search
// is budget-bounded (see Theorem2Config) rather than capped by
// transaction count: the worst case remains exponential — the
// characterization is NP-complete in general — but cycle pruning
// decides realistic histories far from the n! bound the permutation
// enumeration paid. The point of this function is cross-validation of
// the definitional checker (internal/core) and the production of
// explicit graph witnesses/counterexamples, not bulk checking.
func CheckTheorem2(h history.History) (Theorem2Result, error) {
	return CheckTheorem2Budget(h, Theorem2Config{})
}

// t2cond is one Rule 4 (Lww) conditional edge: if its source Ti is
// visible and Ti ≪ m, the edge Ti→k is in the graph.
type t2cond struct{ m, k int32 }

// CheckTheorem2Budget is CheckTheorem2 under an explicit search budget;
// see Theorem2Config.
func CheckTheorem2Budget(h history.History, cfg Theorem2Config) (Theorem2Result, error) {
	if err := h.WellFormed(); err != nil {
		return Theorem2Result{}, err
	}
	maxNodes := cfg.MaxNodes
	if maxNodes == 0 {
		maxNodes = 4_000_000 // matches core's defaultMaxNodes
	}
	var localNodes int
	nodes := cfg.Nodes
	if nodes == nil {
		nodes = &localNodes
	}
	if !RegisterOnly(h) {
		return Theorem2Result{}, fmt.Errorf("opg: the graph characterization applies to register histories only")
	}
	if ok, err := UniqueWrites(h); !ok {
		return Theorem2Result{}, err
	}

	res := Theorem2Result{}
	if ok, err := Consistent(h); !ok {
		res.Consistent = false
		res.Reason = err
		return res, nil
	}
	res.Consistent = true

	nl := Nonlocal(h)
	txs := nl.Transactions()
	n := len(txs)
	if n == 0 {
		res.Opaque = true
		res.Graph = newGraph(nil)
		return res, nil
	}

	cps := h.CommitPendingTxs()
	if len(cps) > 16 {
		return res, fmt.Errorf("opg: too many commit-pending transactions (%d)", len(cps))
	}

	idx := make(map[history.TxID]int, n)
	for i, tx := range txs {
		idx[tx] = i
	}

	// Everything ≪- and V-independent is derived once, as index-based
	// edge data over nonlocal(h) — the same relations Build evaluates,
	// reshaped for incremental activation (see Build for the rules).
	writers := writersOf(nl)
	readsVals := make([][]history.OpExec, n)
	writesTo := make([]map[history.ObjID]bool, n)
	for i, tx := range txs {
		for _, e := range nl.OpExecs(tx) {
			switch {
			case e.Op == "read" && !e.Pending:
				readsVals[i] = append(readsVals[i], e)
			case e.Op == "write":
				if writesTo[i] == nil {
					writesTo[i] = make(map[history.ObjID]bool)
				}
				writesTo[i][e.Obj] = true
			}
		}
	}
	type rf struct {
		writer int
		reg    history.ObjID
	}
	readsFrom := make([][]rf, n)
	for k := range txs {
		for _, e := range readsVals[k] {
			if w, ok := writers[writeKey{e.Obj, e.Ret}]; ok {
				readsFrom[k] = append(readsFrom[k], rf{idx[w], e.Obj})
			}
		}
	}

	w := (n + 63) / 64
	// Base edges: Rule 1 (Lrt) and Rule 2 (Lrf) do not depend on ≪ or V.
	base := make([]uint64, n*w)
	row := func(adj []uint64, i int) []uint64 { return adj[i*w : (i+1)*w] }
	for _, p := range nl.RealTimeOrder() {
		row(base, idx[p[0]])[idx[p[1]]>>6] |= 1 << uint(idx[p[1]]&63)
	}
	// lrfSrc marks transactions with an outgoing Lrf edge: the graph is
	// well-formed iff every one of them is visible, the only V-dependent
	// precondition.
	lrfSrc := make([]bool, n)
	for k := 0; k < n; k++ {
		for _, r := range readsFrom[k] {
			if r.writer != k {
				row(base, r.writer)[k>>6] |= 1 << uint(k&63)
				lrfSrc[r.writer] = true
			}
		}
	}
	// Rule 3 (Lrw) conditionals: rw[i] has bit k set when Ti reads a
	// register Tk writes — the edge Ti→Tk is in the graph iff Ti ≪ Tk.
	rw := make([]uint64, n*w)
	for i := 0; i < n; i++ {
		for _, e := range readsVals[i] {
			for k := 0; k < n; k++ {
				if k != i && writesTo[k][e.Obj] {
					row(rw, i)[k>>6] |= 1 << uint(k&63)
				}
			}
		}
	}
	// Rule 4 (Lww) conditionals: for visible Ti with Ti ≪ Tm where Tm
	// reads register r from Tk ≠ Ti and Ti writes r, the edge Ti→Tk is
	// in the graph. Guarded by Ti ≪ Tm, so activation at Ti's placement
	// applies to the still-unplaced mediators Tm.
	ww := make([][]t2cond, n)
	for i := 0; i < n; i++ {
		if writesTo[i] == nil {
			continue
		}
		for m := 0; m < n; m++ {
			if m == i {
				continue
			}
			for _, r := range readsFrom[m] {
				if r.writer != i && writesTo[i][r.reg] {
					ww[i] = append(ww[i], t2cond{m: int32(m), k: int32(r.writer)})
				}
			}
		}
	}

	// Per-V scratch, reused across subsets.
	vis := make([]bool, n)
	adj := make([]uint64, n*w)
	placed := make([]uint64, w)
	color := make([]int8, n)
	seen := make([]uint64, w)
	var stack []int
	order := make([]int, 0, n)
	// One activation buffer per search depth: a level's added-edge mask
	// must survive the recursion below it to undo exactly those bits.
	addBuf := make([]uint64, n*w)

	// reaches reports whether any member of the from mask can reach
	// target through the currently active edges.
	reaches := func(from []uint64, target int) bool {
		clear(seen)
		stack = stack[:0]
		for wi, word := range from {
			seen[wi] = word
			for word != 0 {
				stack = append(stack, wi<<6+bits.TrailingZeros64(word))
				word &= word - 1
			}
		}
		if seen[target>>6]&(1<<uint(target&63)) != 0 {
			return true
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for wi, word := range row(adj, v) {
				word &^= seen[wi]
				seen[wi] |= word
				for word != 0 {
					u := wi<<6 + bits.TrailingZeros64(word)
					if u == target {
						return true
					}
					stack = append(stack, u)
					word &= word - 1
				}
			}
		}
		return false
	}

	for mask := 0; mask < 1<<uint(len(cps)); mask++ {
		var V []history.TxID
		for i, tx := range cps {
			if mask&(1<<uint(i)) != 0 {
				V = append(V, tx)
			}
		}
		if *nodes >= maxNodes {
			return res, fmt.Errorf("theorem 2 search: %w", core.ErrSearchLimit)
		}
		*nodes++

		inV := make(map[history.TxID]bool, len(V))
		for _, tx := range V {
			inV[tx] = true
		}
		wellFormed := true
		for i, tx := range txs {
			vis[i] = inV[tx] || h.Committed(tx)
			if lrfSrc[i] && !vis[i] {
				wellFormed = false
			}
		}
		// Prune on the ≪-independent part: an Lrf edge out of an Lloc
		// vertex, or a cycle among the Lrt/Lrf edges alone, rules out
		// every order ≪ for this V.
		if !wellFormed {
			continue
		}
		copy(adj, base)
		if cyclic(adj, w, color) {
			continue
		}

		// Incrementally build ≪. Placing t activates the conditional
		// edges whose guard t≪· just became true: its Rule 3 partners
		// still unplaced, and the Rule 4 edges whose mediator is still
		// unplaced. All activated edges leave t, so the active graph —
		// acyclic by induction — gains a cycle iff some new target
		// reaches t, one reachability pass per attempted placement. Every
		// guard involving two placed transactions was settled when the
		// earlier one was placed, so along any branch the active set is
		// exactly the final edge set restricted to settled guards, and a
		// complete prefix is a witness.
		clear(placed)
		order = order[:0]
		exhausted := false
		var extend func(count int) bool
		extend = func(count int) bool {
			if count == n {
				return true
			}
			add := row(addBuf, count)
			for t := 0; t < n; t++ {
				if placed[t>>6]&(1<<uint(t&63)) != 0 {
					continue
				}
				if *nodes >= maxNodes {
					exhausted = true
					return false
				}
				*nodes++
				clear(add)
				for wi, word := range row(rw, t) {
					add[wi] |= word &^ placed[wi]
				}
				if vis[t] {
					for _, c := range ww[t] {
						if placed[c.m>>6]&(1<<uint(c.m&63)) == 0 {
							add[c.k>>6] |= 1 << uint(c.k&63)
						}
					}
				}
				r := row(adj, t)
				for wi := range add {
					add[wi] &^= r[wi] // already active: nothing to re-check
				}
				if reaches(add, t) {
					continue // placing t here closes a cycle on every completion
				}
				for wi := range add {
					r[wi] |= add[wi]
				}
				placed[t>>6] |= 1 << uint(t&63)
				order = append(order, t)
				if extend(count + 1) {
					return true
				}
				order = order[:len(order)-1]
				placed[t>>6] &^= 1 << uint(t&63)
				for wi := range add {
					r[wi] &^= add[wi]
				}
				if exhausted {
					return false
				}
			}
			return false
		}
		if extend(0) {
			orderTxs := make([]history.TxID, n)
			for i, t := range order {
				orderTxs[i] = txs[t]
			}
			g, err := Build(h, orderTxs, V)
			if err != nil {
				return res, err // impossible: inputs validated above
			}
			res.Opaque = true
			res.Order = orderTxs
			res.V = V
			res.Graph = g
			return res, nil
		}
		if exhausted {
			return res, fmt.Errorf("theorem 2 search: %w", core.ErrSearchLimit)
		}
	}
	return res, nil
}

// cyclic reports whether the adjacency masks contain a directed cycle,
// by iterative three-color DFS. color is caller-provided scratch of n
// entries.
func cyclic(adj []uint64, w int, color []int8) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	n := len(color)
	clear(color)
	type frame struct {
		v    int
		wi   int
		word uint64
	}
	var stack []frame
	for s := 0; s < n; s++ {
		if color[s] != white {
			continue
		}
		color[s] = gray
		stack = append(stack[:0], frame{v: s, wi: 0, word: adj[s*w]})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.word == 0 {
				if f.wi++; f.wi < w {
					f.word = adj[f.v*w+f.wi]
					continue
				}
				color[f.v] = black
				stack = stack[:len(stack)-1]
				continue
			}
			u := f.wi<<6 + bits.TrailingZeros64(f.word)
			f.word &= f.word - 1
			switch color[u] {
			case gray:
				return true
			case white:
				color[u] = gray
				stack = append(stack, frame{v: u, wi: 0, word: adj[u*w]})
			}
		}
	}
	return false
}
