package opg

import (
	"fmt"

	"otm/internal/core"
	"otm/internal/history"
)

// Theorem2Result is the outcome of deciding opacity via the graph
// characterization.
type Theorem2Result struct {
	// Opaque is the verdict.
	Opaque bool
	// Consistent reports condition (1) of Theorem 2. When false, Reason
	// explains the inconsistency and no graph search was attempted.
	Consistent bool
	Reason     error
	// Order and V are the witnesses (≪, V) when Opaque; Graph is the
	// corresponding well-formed acyclic opacity graph.
	Order []history.TxID
	V     []history.TxID
	Graph *Graph
}

// maxTheorem2Txs bounds the permutation search (n! growth).
const maxTheorem2Txs = 9

// Theorem2Config tunes the Theorem 2 search. It mirrors the budget
// plumbing of core.Config: MaxNodes bounds the number of candidate
// opacity graphs built (0 = the same 4,000,000 default as the
// definitional checker), exhaustion reports core.ErrSearchLimit, and a
// non-nil Nodes accumulates the count across calls — so batch drivers
// can meter the graph characterization exactly like the Definition 1
// search.
type Theorem2Config struct {
	MaxNodes int
	Nodes    *int
}

// CheckTheorem2 decides opacity of h by Theorem 2: h is opaque iff h is
// consistent and there exist a total order ≪ on the transactions of h
// and a subset V of its commit-pending transactions such that
// OPG(nonlocal(h), ≪, V) is well-formed and acyclic.
//
// The search enumerates subsets V and total orders ≪ exhaustively, with
// one prune: the Lrt and Lrf edges and the well-formedness condition do
// not depend on ≪, so a V whose base graph is ill-formed or already
// cyclic skips the permutation loop entirely. Exhaustive enumeration is
// factorial in the number of transactions; CheckTheorem2 refuses
// histories with more than 9 transactions. The point of this function is
// cross-validation of the definitional checker (internal/core) and the
// production of explicit graph witnesses/counterexamples, not bulk
// checking.
func CheckTheorem2(h history.History) (Theorem2Result, error) {
	return CheckTheorem2Budget(h, Theorem2Config{})
}

// CheckTheorem2Budget is CheckTheorem2 under an explicit search budget;
// see Theorem2Config.
func CheckTheorem2Budget(h history.History, cfg Theorem2Config) (Theorem2Result, error) {
	if err := h.WellFormed(); err != nil {
		return Theorem2Result{}, err
	}
	maxNodes := cfg.MaxNodes
	if maxNodes == 0 {
		maxNodes = 4_000_000 // matches core's defaultMaxNodes
	}
	var localNodes int
	nodes := cfg.Nodes
	if nodes == nil {
		nodes = &localNodes
	}
	if !RegisterOnly(h) {
		return Theorem2Result{}, fmt.Errorf("opg: the graph characterization applies to register histories only")
	}
	if ok, err := UniqueWrites(h); !ok {
		return Theorem2Result{}, err
	}

	res := Theorem2Result{}
	if ok, err := Consistent(h); !ok {
		res.Consistent = false
		res.Reason = err
		return res, nil
	}
	res.Consistent = true

	nl := Nonlocal(h)
	txs := nl.Transactions()
	n := len(txs)
	if n > maxTheorem2Txs {
		return res, fmt.Errorf("opg: %d transactions exceed the Theorem 2 search bound of %d", n, maxTheorem2Txs)
	}
	if n == 0 {
		res.Opaque = true
		res.Graph = newGraph(nil)
		return res, nil
	}

	cps := h.CommitPendingTxs()
	if len(cps) > 16 {
		return res, fmt.Errorf("opg: too many commit-pending transactions (%d)", len(cps))
	}

	for mask := 0; mask < 1<<uint(len(cps)); mask++ {
		var V []history.TxID
		for i, tx := range cps {
			if mask&(1<<uint(i)) != 0 {
				V = append(V, tx)
			}
		}
		// Prune on the ≪-independent part: vertex labels and the Lrt/Lrf
		// edges are fixed given V, so an ill-formed graph (an Lrf edge
		// out of an Lloc vertex) or a cycle among Lrt/Lrf edges alone
		// rules out every order ≪ for this V.
		if *nodes >= maxNodes {
			return res, fmt.Errorf("theorem 2 search: %w", core.ErrSearchLimit)
		}
		*nodes++
		base, err := Build(h, txs, V)
		if err != nil {
			return res, err
		}
		if !base.WellFormed() {
			continue
		}
		rtrf := newGraph(txs)
		for key, labels := range base.Edges {
			if labels[Lrt] {
				rtrf.addEdge(key[0], key[1], Lrt)
			}
			if labels[Lrf] {
				rtrf.addEdge(key[0], key[1], Lrf)
			}
		}
		if !rtrf.Acyclic() {
			continue
		}

		found := false
		exhausted := false
		permute(txs, func(order []history.TxID) bool {
			if *nodes >= maxNodes {
				exhausted = true
				return false
			}
			*nodes++
			g, err := Build(h, order, V)
			if err != nil {
				return true // impossible: inputs validated above
			}
			if g.WellFormed() && g.Acyclic() {
				res.Opaque = true
				res.Order = append([]history.TxID(nil), order...)
				res.V = V
				res.Graph = g
				found = true
				return false
			}
			return true
		})
		if found {
			return res, nil
		}
		if exhausted {
			return res, fmt.Errorf("theorem 2 search: %w", core.ErrSearchLimit)
		}
	}
	return res, nil
}

// permute enumerates permutations of txs, invoking fn on each; fn
// returning false stops the enumeration. The slice passed to fn is reused
// between calls.
func permute(txs []history.TxID, fn func([]history.TxID) bool) {
	perm := append([]history.TxID(nil), txs...)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(perm) {
			return fn(perm)
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if !rec(k + 1) {
				return false
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return true
	}
	rec(0)
}
