package opg_test

import (
	"fmt"

	"otm/internal/history"
	"otm/internal/opg"
)

// ExampleCheckTheorem2 decides opacity of the paper's Figure 1 through
// the graph characterization: the history is consistent, but no total
// order ≪ and visibility set V yield a well-formed acyclic opacity
// graph.
func ExampleCheckTheorem2() {
	h := opg.WithInit(history.MustParse(
		"w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2"), 0)
	res, err := opg.CheckTheorem2(h)
	if err != nil {
		panic(err)
	}
	fmt.Println("consistent:", res.Consistent, "opaque:", res.Opaque)
	// Output:
	// consistent: true opaque: false
}

// ExampleBuild constructs an opacity graph explicitly and inspects its
// reads-from edge.
func ExampleBuild() {
	h := opg.WithInit(history.MustParse("w1(x,1) tryC1 C1 r2(x)->1 tryC2 C2"), 0)
	g, err := opg.Build(h, []history.TxID{0, 1, 2}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("T1 -rf-> T2:", g.HasEdge(1, 2, opg.Lrf))
	fmt.Println("well-formed:", g.WellFormed(), "acyclic:", g.Acyclic())
	// Output:
	// T1 -rf-> T2: true
	// well-formed: true acyclic: true
}
