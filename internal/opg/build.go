package opg

import (
	"fmt"

	"otm/internal/history"
)

// Build constructs the opacity graph OPG(nonlocal(h), ≪, V) of §5.4.
//
// order is the total order ≪, given as a permutation of the transactions
// of h; V is the set of commit-pending transactions whose updates are
// deemed visible. Build validates its inputs: h must be over registers
// with unique writes, order must be a permutation of h's transactions,
// and V must contain only commit-pending transactions of h.
//
// Vertices are labelled Lvis (committed or in V) or Lloc; edges carry the
// labels Lrt, Lrf, Lrw and Lww per the four rules of the definition, all
// evaluated on nonlocal(h).
func Build(h history.History, order []history.TxID, V []history.TxID) (*Graph, error) {
	if !RegisterOnly(h) {
		return nil, fmt.Errorf("opg: the graph characterization applies to register histories only")
	}
	if ok, err := UniqueWrites(h); !ok {
		return nil, err
	}

	nl := Nonlocal(h)
	txs := nl.Transactions()
	pos := make(map[history.TxID]int, len(order))
	for i, tx := range order {
		pos[tx] = i
	}
	for _, tx := range txs {
		if _, ok := pos[tx]; !ok {
			return nil, fmt.Errorf("opg: order is missing transaction T%d", int(tx))
		}
	}
	if len(order) != len(txs) {
		return nil, fmt.Errorf("opg: order has %d transactions, history has %d", len(order), len(txs))
	}

	inV := make(map[history.TxID]bool, len(V))
	for _, tx := range V {
		if !h.CommitPending(tx) {
			return nil, fmt.Errorf("opg: T%d in V is not commit-pending", int(tx))
		}
		inV[tx] = true
	}

	g := newGraph(txs)
	for _, tx := range txs {
		g.Vis[tx] = inV[tx] || h.Committed(tx)
	}

	// Per-transaction read and write sets over nonlocal(h), and the
	// reads-from relation (unique writes make the writer of each read
	// value unambiguous).
	writers := writersOf(nl)
	readsVals := make(map[history.TxID][]history.OpExec) // completed nonlocal reads
	writesTo := make(map[history.TxID]map[history.ObjID]bool)
	for _, tx := range txs {
		for _, e := range nl.OpExecs(tx) {
			switch {
			case e.Op == "read" && !e.Pending:
				readsVals[tx] = append(readsVals[tx], e)
			case e.Op == "write":
				if writesTo[tx] == nil {
					writesTo[tx] = make(map[history.ObjID]bool)
				}
				writesTo[tx][e.Obj] = true
			}
		}
	}
	// readsFrom[tk] lists (writer, register) pairs for tk's reads.
	type rf struct {
		writer history.TxID
		reg    history.ObjID
	}
	readsFrom := make(map[history.TxID][]rf)
	for _, tk := range txs {
		for _, e := range readsVals[tk] {
			if w, ok := writers[writeKey{e.Obj, e.Ret}]; ok {
				readsFrom[tk] = append(readsFrom[tk], rf{w, e.Obj})
			}
		}
	}

	// Rule 1 (Lrt): Ti ≺nl Tk.
	for _, p := range nl.RealTimeOrder() {
		g.addEdge(p[0], p[1], Lrt)
	}

	// Rule 2 (Lrf): Tk reads from Ti.
	for _, tk := range txs {
		for _, r := range readsFrom[tk] {
			if r.writer != tk {
				g.addEdge(r.writer, tk, Lrf)
			}
		}
	}

	// Rule 3 (Lrw): Ti ≪ Tk and Ti reads a register written by Tk.
	for _, ti := range txs {
		for _, e := range readsVals[ti] {
			for _, tk := range txs {
				if tk == ti || pos[ti] >= pos[tk] {
					continue
				}
				if writesTo[tk][e.Obj] {
					g.addEdge(ti, tk, Lrw)
				}
			}
		}
	}

	// Rule 4 (Lww): Ti visible, Ti ≪ Tm, Ti writes r, Tm reads r from Tk
	// ⇒ edge Ti → Tk.
	for _, ti := range txs {
		if !g.Vis[ti] {
			continue
		}
		for _, tm := range txs {
			if tm == ti || pos[ti] >= pos[tm] {
				continue
			}
			for _, r := range readsFrom[tm] {
				if writesTo[ti][r.reg] && r.writer != ti {
					g.addEdge(ti, r.writer, Lww)
				}
			}
		}
	}

	return g, nil
}
