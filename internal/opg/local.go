package opg

import (
	"fmt"

	"otm/internal/history"
)

// isRead reports whether an event is part of a read operation on a
// register; isWrite likewise for writes. The graph characterization is
// defined for histories over read/write registers only (§5.4).
func isRead(e history.Event) bool  { return e.Op == "read" }
func isWrite(e history.Event) bool { return e.Op == "write" }

// RegisterOnly reports whether every operation event in h is a register
// read or write, as required by the graph characterization.
func RegisterOnly(h history.History) bool {
	for _, e := range h {
		if e.Kind != history.KindInv && e.Kind != history.KindRet {
			continue
		}
		if !isRead(e) && !isWrite(e) {
			return false
		}
	}
	return true
}

// Nonlocal returns nonlocal(H): the longest subsequence of h with every
// local operation execution removed (both its events). A read_i(r, v) is
// local if it is preceded in H|Ti by a write_i(r, ·); a write_i(r, v) is
// local if it is followed in H|Ti by another write_i(r, ·) (paper, §5.4).
// A pending write invocation counts as a write (the paper's "Ti writes v
// to r" requires only the invocation), so it localizes earlier writes to
// the same register.
func Nonlocal(h history.History) history.History {
	// For each (tx, reg): index (within h) of the last write invocation.
	lastWrite := make(map[history.TxID]map[history.ObjID]int)
	firstWrite := make(map[history.TxID]map[history.ObjID]int)
	for i, e := range h {
		if e.Kind != history.KindInv || !isWrite(e) {
			continue
		}
		if lastWrite[e.Tx] == nil {
			lastWrite[e.Tx] = make(map[history.ObjID]int)
			firstWrite[e.Tx] = make(map[history.ObjID]int)
		}
		if _, ok := firstWrite[e.Tx][e.Obj]; !ok {
			firstWrite[e.Tx][e.Obj] = i
		}
		lastWrite[e.Tx][e.Obj] = i
	}

	drop := make([]bool, len(h))
	for i, e := range h {
		if e.Kind != history.KindInv {
			continue
		}
		local := false
		switch {
		case isWrite(e):
			local = lastWrite[e.Tx][e.Obj] > i
		case isRead(e):
			if fw, ok := firstWrite[e.Tx]; ok {
				if wi, ok := fw[e.Obj]; ok && wi < i {
					local = true
				}
			}
		}
		if local {
			drop[i] = true
			// Drop the matching response too: the next event of this
			// transaction, when it is the matching ret.
			for j := i + 1; j < len(h); j++ {
				if h[j].Tx == e.Tx {
					if h[j].Kind == history.KindRet && history.Matches(e, h[j]) {
						drop[j] = true
					}
					break
				}
			}
		}
	}

	var out history.History
	for i, e := range h {
		if !drop[i] {
			out = append(out, e)
		}
	}
	return out
}

// LocallyConsistent reports whether h is locally-consistent: every local
// read read_i(r, v) returns the value of the latest preceding write by
// the same transaction to r (paper, §5.4). It returns a description of
// the first violation otherwise.
func LocallyConsistent(h history.History) (bool, error) {
	// latest[tx][reg] is the value of the transaction's latest completed
	// or pending write invocation to reg seen so far.
	latest := make(map[history.TxID]map[history.ObjID]history.Value)
	for _, e := range h {
		switch {
		case e.Kind == history.KindInv && isWrite(e):
			if latest[e.Tx] == nil {
				latest[e.Tx] = make(map[history.ObjID]history.Value)
			}
			latest[e.Tx][e.Obj] = e.Arg
		case e.Kind == history.KindRet && isRead(e):
			if m, ok := latest[e.Tx]; ok {
				if v, ok := m[e.Obj]; ok && v != e.Ret {
					return false, fmt.Errorf(
						"opg: local read by T%d of %s returned %v, latest own write is %v",
						int(e.Tx), e.Obj, e.Ret, v)
				}
			}
		}
	}
	return true, nil
}

// UniqueWrites checks the standing assumption that no two write
// operations write the same value to the same register. It reports the
// first duplicate otherwise.
func UniqueWrites(h history.History) (bool, error) {
	type wk struct {
		obj history.ObjID
		v   history.Value
	}
	seen := make(map[wk]history.TxID)
	for _, e := range h {
		if e.Kind != history.KindInv || !isWrite(e) {
			continue
		}
		k := wk{e.Obj, e.Arg}
		if prev, dup := seen[k]; dup {
			return false, fmt.Errorf(
				"opg: writes of %v to %s by both T%d and T%d violate the unique-writes assumption",
				e.Arg, e.Obj, int(prev), int(e.Tx))
		}
		seen[k] = e.Tx
	}
	return true, nil
}

// Consistent reports whether h is consistent (paper, §5.4): h is
// locally-consistent and every nonlocal read of value v from register r
// is matched by some transaction writing v to r in nonlocal(h).
func Consistent(h history.History) (bool, error) {
	if ok, err := LocallyConsistent(h); !ok {
		return false, err
	}
	nl := Nonlocal(h)
	writers := writersOf(nl)
	for _, tx := range nl.Transactions() {
		for _, e := range nl.OpExecs(tx) {
			if e.Pending || e.Op != "read" {
				continue
			}
			if _, ok := writers[writeKey{e.Obj, e.Ret}]; !ok {
				return false, fmt.Errorf(
					"opg: T%d reads %v from %s but no transaction writes it in nonlocal(H)",
					int(tx), e.Ret, e.Obj)
			}
		}
	}
	return true, nil
}

type writeKey struct {
	obj history.ObjID
	v   history.Value
}

// writersOf maps (register, value) to the transaction writing that value
// in h. Assumes unique writes.
func writersOf(h history.History) map[writeKey]history.TxID {
	out := make(map[writeKey]history.TxID)
	for _, e := range h {
		if e.Kind == history.KindInv && isWrite(e) {
			out[writeKey{e.Obj, e.Arg}] = e.Tx
		}
	}
	return out
}

// WithInit prepends the initializing committed transaction T0 writing
// initial to every register of h (and any extra registers listed),
// satisfying the characterization's second standing assumption. It
// panics if h already contains transaction T0.
func WithInit(h history.History, initial history.Value, extra ...history.ObjID) history.History {
	if h.Contains(InitTx) {
		panic("opg: history already contains T0")
	}
	seen := make(map[history.ObjID]bool)
	var regs []history.ObjID
	for _, r := range append(h.Objects(), extra...) {
		if !seen[r] {
			seen[r] = true
			regs = append(regs, r)
		}
	}
	var init history.History
	for _, r := range regs {
		init = append(init,
			history.Inv(InitTx, r, "write", initial),
			history.Ret(InitTx, r, "write", history.OK))
	}
	init = append(init, history.TryC(InitTx), history.Commit(InitTx))
	return init.Concat(h)
}
