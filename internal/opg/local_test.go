package opg

import (
	"strings"
	"testing"

	"otm/internal/history"
)

func TestNonlocalRemovesLocalOps(t *testing.T) {
	// T1: write x=1 (local: overwritten), read x=1 (local: own write),
	// write x=2 (nonlocal: last write).
	h := history.NewBuilder().
		Write(1, "x", 1).
		Read(1, "x", 1).
		Write(1, "x", 2).
		Commits(1).
		MustHistory()
	nl := Nonlocal(h)
	execs := nl.OpExecs(1)
	if len(execs) != 1 {
		t.Fatalf("nonlocal(H)|T1 has %d ops, want only the final write: %v", len(execs), execs)
	}
	if execs[0].Op != "write" || execs[0].Arg != 2 {
		t.Errorf("surviving op = %+v, want write(x,2)", execs[0])
	}
	// Control events survive.
	if !nl.Committed(1) {
		t.Error("commit events must survive Nonlocal")
	}
}

func TestNonlocalKeepsForeignReads(t *testing.T) {
	// A read with no preceding own write is nonlocal even if another
	// transaction wrote the register.
	h := history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 1).Commits(2).
		MustHistory()
	nl := Nonlocal(h)
	if len(nl.OpExecs(2)) != 1 {
		t.Error("T2's read is nonlocal")
	}
	if len(nl.OpExecs(1)) != 1 {
		t.Error("T1's single write is nonlocal")
	}
}

func TestNonlocalPendingWriteLocalizes(t *testing.T) {
	// A pending write invocation counts as a write, so the earlier write
	// to the same register becomes local.
	h := history.NewBuilder().
		Write(1, "x", 1).
		Inv(1, "x", "write", 2).
		MustHistory()
	nl := Nonlocal(h)
	execs := nl.OpExecs(1)
	if len(execs) != 1 || !execs[0].Pending || execs[0].Arg != 2 {
		t.Errorf("only the pending write(x,2) should survive: %v", execs)
	}
}

func TestNonlocalReadAfterWriteOtherRegister(t *testing.T) {
	// Writing y does not localize a read of x.
	h := history.NewBuilder().
		Write(1, "y", 1).
		Read(1, "x", 0).
		Commits(1).
		MustHistory()
	nl := Nonlocal(h)
	if len(nl.OpExecs(1)) != 2 {
		t.Error("read of x must stay nonlocal after a write to y")
	}
}

func TestLocallyConsistent(t *testing.T) {
	good := history.NewBuilder().
		Write(1, "x", 1).Read(1, "x", 1).Commits(1).
		MustHistory()
	if ok, err := LocallyConsistent(good); !ok {
		t.Errorf("read-own-write is locally consistent: %v", err)
	}
	bad := history.NewBuilder().
		Write(1, "x", 1).Read(1, "x", 7).Commits(1).
		MustHistory()
	ok, err := LocallyConsistent(bad)
	if ok {
		t.Fatal("read of 7 after own write of 1 is locally inconsistent")
	}
	if !strings.Contains(err.Error(), "T1") {
		t.Errorf("error %q should name T1", err)
	}
	// Reads with no own write are unconstrained by local consistency.
	foreign := history.NewBuilder().Read(1, "x", 42).MustHistory()
	if ok, _ := LocallyConsistent(foreign); !ok {
		t.Error("foreign reads are not local reads")
	}
}

func TestUniqueWrites(t *testing.T) {
	if ok, _ := UniqueWrites(history.NewBuilder().
		Write(1, "x", 1).Write(2, "x", 2).Write(1, "y", 1).MustHistory()); !ok {
		t.Error("same value on different registers is fine")
	}
	ok, err := UniqueWrites(history.NewBuilder().
		Write(1, "x", 1).Write(2, "x", 1).MustHistory())
	if ok {
		t.Fatal("duplicate write of 1 to x must be rejected")
	}
	if !strings.Contains(err.Error(), "unique-writes") {
		t.Errorf("error %q should mention the assumption", err)
	}
}

func TestConsistent(t *testing.T) {
	// Read of a value nobody wrote (and not detectable locally).
	h := history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 9).Commits(2).
		MustHistory()
	ok, err := Consistent(h)
	if ok {
		t.Fatal("read of unwritten 9 is inconsistent")
	}
	if !strings.Contains(err.Error(), "9") {
		t.Errorf("error %q should mention the value", err)
	}
	good := history.NewBuilder().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 1).Commits(2).
		MustHistory()
	if ok, err := Consistent(good); !ok {
		t.Errorf("reads-from-writer history is consistent: %v", err)
	}
}

func TestConsistentCatchesLocalViolationFirst(t *testing.T) {
	h := history.NewBuilder().
		Write(1, "x", 1).Read(1, "x", 3).Write(1, "x", 2).Commits(1).
		MustHistory()
	if ok, _ := Consistent(h); ok {
		t.Error("locally inconsistent history is inconsistent")
	}
}

func TestWithInit(t *testing.T) {
	h := history.NewBuilder().Read(1, "x", 0).Commits(1).MustHistory()
	hi := WithInit(h, 0, "y")
	if !hi.Committed(InitTx) {
		t.Fatal("T0 must be committed")
	}
	// T0 writes both x (from h) and y (extra).
	execs := hi.OpExecs(InitTx)
	if len(execs) != 2 {
		t.Fatalf("T0 writes %d registers, want 2", len(execs))
	}
	if !hi.Precedes(InitTx, 1) {
		t.Error("T0 must precede every other transaction")
	}
	if ok, _ := Consistent(hi); !ok {
		t.Error("T0 makes the initial read of 0 consistent")
	}
}

func TestWithInitPanicsOnExistingT0(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithInit must panic when T0 already exists")
		}
	}()
	WithInit(history.NewBuilder().Write(0, "x", 1).MustHistory(), 0)
}

func TestRegisterOnly(t *testing.T) {
	if !RegisterOnly(history.NewBuilder().Write(1, "x", 1).Read(1, "x", 1).MustHistory()) {
		t.Error("register history misclassified")
	}
	if RegisterOnly(history.NewBuilder().Op(1, "c", "inc", nil, history.OK).MustHistory()) {
		t.Error("counter history is not register-only")
	}
}
