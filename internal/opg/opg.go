// Package opg implements the graph characterization of opacity from §5.4
// of Guerraoui & Kapałka, "On the Correctness of Transactional Memory"
// (PPoPP 2008): the opacity graph OPG(H, ≪, V) and Theorem 2, which
// states that a history H (over read/write registers) is opaque iff H is
// consistent and there exist a total order ≪ on its transactions and a
// subset V of its commit-pending transactions such that
// OPG(nonlocal(H), ≪, V) is well-formed and acyclic.
//
// The characterization applies under the paper's two standing
// assumptions, which this package checks and enforces:
//
//  1. no two write operations write the same value to the same register
//     (unique writes — the paper suggests tagging values with a local
//     timestamp and writer id);
//  2. the history starts with an initializing committed transaction T0
//     that writes a value to every register (see WithInit).
package opg

import (
	"fmt"
	"sort"

	"otm/internal/history"
)

// InitTx is the conventional identifier of the initializing transaction.
const InitTx history.TxID = 0

// Label classifies opacity-graph edges and vertices.
type Label string

// Edge labels (paper, §5.4) and vertex labels.
const (
	Lrt  Label = "rt"  // real-time order: Ti ≺H Tk
	Lrf  Label = "rf"  // reads-from: Tk reads a value written by Ti
	Lrw  Label = "rw"  // anti-dependency: Ti ≪ Tk and Ti reads a register written by Tk
	Lww  Label = "ww"  // write order: visible Ti ≪ Tm and Tm reads from Tk ⇒ Ti before Tk
	Lvis Label = "vis" // vertex: committed or in V (updates visible)
	Lloc Label = "loc" // vertex: updates local only
)

// Graph is an opacity graph: a directed multigraph over the transactions
// of a history with labelled edges and vertex visibility labels.
type Graph struct {
	// Txs are the vertices in first-event order.
	Txs []history.TxID
	// Vis[tx] is true when the vertex is labelled Lvis (committed or in
	// V), false for Lloc.
	Vis map[history.TxID]bool
	// Edges maps ordered pairs to the set of labels on that edge.
	Edges map[[2]history.TxID]map[Label]bool
}

func newGraph(txs []history.TxID) *Graph {
	return &Graph{
		Txs:   txs,
		Vis:   make(map[history.TxID]bool, len(txs)),
		Edges: make(map[[2]history.TxID]map[Label]bool),
	}
}

func (g *Graph) addEdge(from, to history.TxID, l Label) {
	key := [2]history.TxID{from, to}
	m, ok := g.Edges[key]
	if !ok {
		m = make(map[Label]bool, 2)
		g.Edges[key] = m
	}
	m[l] = true
}

// HasEdge reports whether the graph has an edge from → to with label l.
func (g *Graph) HasEdge(from, to history.TxID, l Label) bool {
	return g.Edges[[2]history.TxID{from, to}][l]
}

// WellFormed reports whether the graph is well-formed: no vertex labelled
// Lloc has an outgoing Lrf edge (a transaction whose updates are not
// visible must not be read from).
func (g *Graph) WellFormed() bool {
	for key, labels := range g.Edges {
		if labels[Lrf] && !g.Vis[key[0]] {
			return false
		}
	}
	return true
}

// Acyclic reports whether the graph has no directed cycle (self-loops
// count as cycles).
func (g *Graph) Acyclic() bool { return g.Cycle() == nil }

// Cycle returns the vertices of some directed cycle, or nil if the graph
// is acyclic.
func (g *Graph) Cycle() []history.TxID {
	adj := make(map[history.TxID][]history.TxID, len(g.Txs))
	for key := range g.Edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	for _, outs := range adj {
		sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[history.TxID]int, len(g.Txs))
	var stack []history.TxID
	var cycle []history.TxID

	var dfs func(v history.TxID) bool
	dfs = func(v history.TxID) bool {
		color[v] = gray
		stack = append(stack, v)
		for _, w := range adj[v] {
			switch color[w] {
			case gray:
				// Found a back edge; extract the cycle from the stack.
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == w {
						cycle = append([]history.TxID(nil), stack[i:]...)
						return true
					}
				}
				cycle = []history.TxID{w}
				return true
			case white:
				if dfs(w) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[v] = black
		return false
	}
	for _, v := range g.Txs {
		if color[v] == white && dfs(v) {
			return cycle
		}
	}
	return nil
}

// String renders the graph compactly for diagnostics: one line per edge,
// sorted, with labels.
func (g *Graph) String() string {
	type row struct {
		key    [2]history.TxID
		labels []string
	}
	rows := make([]row, 0, len(g.Edges))
	for key, labels := range g.Edges {
		var ls []string
		for _, l := range []Label{Lrt, Lrf, Lrw, Lww} {
			if labels[l] {
				ls = append(ls, string(l))
			}
		}
		rows = append(rows, row{key, ls})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].key[0] != rows[j].key[0] {
			return rows[i].key[0] < rows[j].key[0]
		}
		return rows[i].key[1] < rows[j].key[1]
	})
	out := ""
	for _, r := range rows {
		out += fmt.Sprintf("T%d -> T%d %v\n", int(r.key[0]), int(r.key[1]), r.labels)
	}
	return out
}
