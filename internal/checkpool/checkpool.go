// Package checkpool verifies batches of transactional histories
// concurrently. It wraps the Definition 1 checker of internal/core in a
// worker pool with bounded memory: histories stream in, verdicts stream
// out in input order, and at most a fixed window of them is in flight at
// any moment regardless of the batch size. Each history gets its own
// search-node budget, so one pathological input exhausts its budget and
// reports ErrSearchLimit instead of stalling the whole batch.
//
// The pool is the engine behind `opacheck -parallel` and the
// "check a million histories" workload: feed it a channel of items
// (e.g. parsed from files or stdin) and range over the verdicts.
// RunContext supports cooperative cancellation: admitted histories are
// finished and emitted in order, the rest of the input is discarded, and
// every pool goroutine exits.
//
// Workers default to private search tables; Options.SharedContext backs
// them all by one core.SharedTables instead, so the pool interns each
// distinct state/signature/transition once rather than once per worker.
package checkpool

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"otm/internal/core"
	"otm/internal/history"
)

// Item is one unit of batch-checking work. Source carries an optional
// label (input line, file position) that travels to the Verdict
// untouched. A non-nil Err marks an item that already failed upstream —
// typically a parse error — which the pool passes through as an errored
// Verdict so the output stream stays aligned with the input stream.
type Item struct {
	Source  string
	History history.History
	Err     error
}

// Verdict is the outcome of checking one Item. Index is the item's
// 0-based position in the input stream; verdicts are always emitted in
// increasing Index order.
type Verdict struct {
	Index  int
	Source string
	Result core.Result
	Err    error
}

// Opaque reports whether the item was checked successfully and found
// opaque.
func (v Verdict) Opaque() bool { return v.Err == nil && v.Result.Opaque }

// Line renders the verdict in the canonical one-line batch format, the
// one `opacheck -parallel` prints and distributed verdict logs store:
//
//	corpus.txt:3 opaque nodes=42 order="T1 T2"
//	corpus.txt:4 non-opaque nodes=97
//	corpus.txt:5 error parse: bad token "zzz"
//
// Keeping the rendering here — next to the Verdict — is what makes a
// merged distributed log byte-comparable with a single-process run: both
// paths print exactly this.
func (v Verdict) Line() string {
	switch {
	case v.Err != nil:
		return fmt.Sprintf("%s error %v", v.Source, v.Err)
	case v.Result.Opaque:
		return fmt.Sprintf("%s opaque nodes=%d order=%q", v.Source, v.Result.Nodes, v.Result.Witness)
	default:
		return fmt.Sprintf("%s non-opaque nodes=%d", v.Source, v.Result.Nodes)
	}
}

// Options tunes a Pool.
type Options struct {
	// Workers is the number of concurrent checkers (default GOMAXPROCS;
	// values < 1 mean the default).
	Workers int
	// Window bounds the number of items admitted but not yet emitted
	// (default 4×Workers). Together with streaming input this caps the
	// pool's memory: a million-history batch holds at most Window
	// histories and verdicts at a time.
	Window int
	// Config is the per-history checker configuration: object semantics
	// and the search-node budget applied to each history independently.
	// Config.Context is ignored: SearchContexts are single-goroutine, so
	// the pool provisions one fresh context per worker instead, and each
	// worker's interned states, cached transitions and memo entries are
	// amortized across every history that worker checks.
	Config core.Config
	// Check overrides the checker (default core.Check with Config).
	// Useful to batch-check other criteria, e.g. core.CheckStrong.
	Check func(history.History, core.Config) (core.Result, error)
	// Stats, when non-nil, accumulates the search-context statistics of
	// every worker. It is written under the pool's lock as each worker
	// retires and is safe to read once the verdict channel has closed
	// (CheckAll and `for range Run(in)` both guarantee that). With
	// SharedContext set, the pool-wide insert counters (states, atoms,
	// signatures, memo entries, flushes) are added exactly once from the
	// shared tables, and the per-worker contributions are the private
	// lookup counters (memo/transition hits and misses) only.
	Stats *core.Stats
	// SharedContext, when non-nil, backs every worker's SearchContext by
	// one pool-wide set of concurrent tables (core.SharedTables): each
	// distinct state is interned once for the whole pool instead of once
	// per worker, and every worker reuses every other worker's memo and
	// transition entries. The default — nil — keeps the per-worker
	// contexts, which stay the differential oracle for the shared layer.
	// Ignored under Config.DisableMemo (the reference path uses no
	// context at all). The same SharedTables may back several pools,
	// sequentially or concurrently.
	SharedContext *core.SharedTables
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Window < 1 {
		o.Window = 4 * o.Workers
	}
	if o.Check == nil {
		o.Check = core.Check
	}
	return o
}

// Pool is a reusable batch-checking configuration. The zero value is
// valid and uses the defaults of Options.
type Pool struct {
	opts Options
}

// New returns a Pool with the given options. Options are stored as
// given; defaults are resolved once per run (in RunContext), so
// New(Options{}), new(Pool) and &Pool{} are interchangeable — the
// equivalence is pinned by TestZeroValuePool.
func New(opts Options) *Pool { return &Pool{opts: opts} }

// Run checks every item arriving on in and returns a channel of verdicts
// in input order. The verdict channel closes once all input has been
// checked and emitted. Run returns immediately; the caller must drain
// the returned channel (or consume it fully) for the pool to make
// progress, since emission back-pressures admission. It is shorthand for
// RunContext with a background context.
func (p *Pool) Run(in <-chan Item) <-chan Verdict {
	return p.RunContext(context.Background(), in)
}

// RunContext is Run under a cancellable context. Cancelling ctx stops
// the admission of new items: every item already admitted is still
// checked and its verdict emitted, in input order and without gaps, and
// then the verdict channel closes. Items not yet admitted are read from
// in and discarded — so a producer blocked sending to in always
// unblocks — but in must still be closed eventually for the drain (and
// therefore the pool's goroutines) to finish. The caller must keep
// draining the verdict channel after cancellation.
func (p *Pool) RunContext(ctx context.Context, in <-chan Item) <-chan Verdict {
	opts := p.opts.withDefaults()

	type job struct {
		idx  int
		item Item
	}
	work := make(chan job)
	results := make(chan Verdict, opts.Window)
	out := make(chan Verdict)
	// tickets bounds the admitted-but-not-emitted window, and therefore
	// the size of the reorder buffer below.
	tickets := make(chan struct{}, opts.Window)

	// Dispatcher: admit items as window slots free up; once ctx is
	// cancelled, stop admitting and drain in so producers never block on
	// a cancelled pool.
	go func() {
		defer close(work)
		idx := 0
		done := ctx.Done()
		for {
			// Cancellation wins over a simultaneously ready item: a
			// cancelled pool never admits again.
			select {
			case <-done:
				for range in { // discard
				}
				return
			default:
			}
			select {
			case <-done:
				for range in { // discard
				}
				return
			case item, ok := <-in:
				if !ok {
					return
				}
				select {
				case tickets <- struct{}{}:
				case <-done:
					for range in { // discard, including this item's successors
					}
					return
				}
				work <- job{idx: idx, item: item}
				idx++
			}
		}
	}()

	// Workers: check admitted items. Each worker owns a SearchContext —
	// private tables by default, so interning and caching amortize across
	// its share of the batch without cross-goroutine synchronization on
	// the hot path; with SharedContext, a per-worker view onto the
	// pool-wide tables, so they amortize across the whole batch.
	var wg sync.WaitGroup
	var statsMu sync.Mutex
	wg.Add(opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		go func() {
			defer wg.Done()
			cfg := opts.Config
			cfg.Context = nil
			if !cfg.DisableMemo {
				if opts.SharedContext != nil {
					cfg.Context = opts.SharedContext.NewContext()
				} else {
					cfg.Context = core.NewSearchContext()
				}
			}
			for j := range work {
				v := Verdict{Index: j.idx, Source: j.item.Source, Err: j.item.Err}
				if v.Err == nil {
					v.Result, v.Err = opts.Check(j.item.History, cfg)
				}
				results <- v
			}
			if opts.Stats != nil && cfg.Context != nil {
				statsMu.Lock()
				opts.Stats.Add(cfg.Context.Stats())
				statsMu.Unlock()
			}
		}()
	}
	go func() {
		wg.Wait()
		// The shared tables' pool-wide insert counters are added once —
		// after every worker retired, so the snapshot covers the whole
		// run — not once per worker.
		if opts.Stats != nil && opts.SharedContext != nil && !opts.Config.DisableMemo {
			statsMu.Lock()
			opts.Stats.Add(opts.SharedContext.Stats())
			statsMu.Unlock()
		}
		close(results)
	}()

	// Reorderer: restore input order. The stash never exceeds the window
	// because each stashed verdict holds a ticket.
	go func() {
		defer close(out)
		stash := make(map[int]Verdict, opts.Window)
		next := 0
		for v := range results {
			stash[v.Index] = v
			for {
				pending, ok := stash[next]
				if !ok {
					break
				}
				delete(stash, next)
				out <- pending
				<-tickets
				next++
			}
		}
	}()

	return out
}

// RunTo runs the pool over in and delivers every verdict, in input
// order, to sink. It is the error-propagating form of RunContext for
// batch consumers that write verdicts somewhere that can fail (a file, a
// storage backend, a network log): a sink error cancels the run, drains
// the remaining verdicts without delivering them, and is returned — so a
// failed writer surfaces loudly instead of silently dropping the tail of
// the verdict stream, and a distributed worker can fail its shard lease
// cleanly rather than report a partial log as complete.
//
// A nil return means the input was exhausted and every verdict was
// delivered to sink. Otherwise RunTo returns the first sink error if the
// sink failed, else ctx's error if the run was cancelled (admitted
// verdicts were still delivered in order; input not yet admitted was
// discarded). sink is called from RunTo's goroutine only, never
// concurrently.
func (p *Pool) RunTo(ctx context.Context, in <-chan Item, sink func(Verdict) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var sinkErr error
	for v := range p.RunContext(ctx, in) {
		if sinkErr != nil {
			continue // drain: admitted verdicts still flow, undelivered
		}
		if err := sink(v); err != nil {
			sinkErr = err
			cancel()
		}
	}
	if sinkErr != nil {
		return sinkErr
	}
	return ctx.Err()
}

// CheckAll runs the pool over a fixed slice and collects every verdict.
// The result is indexed like hs.
func (p *Pool) CheckAll(hs []history.History) []Verdict {
	in := make(chan Item)
	go func() {
		for _, h := range hs {
			in <- Item{History: h}
		}
		close(in)
	}()
	verdicts := make([]Verdict, 0, len(hs))
	for v := range p.Run(in) {
		verdicts = append(verdicts, v)
	}
	return verdicts
}
