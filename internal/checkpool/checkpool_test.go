package checkpool

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"otm/internal/core"
	"otm/internal/gen"
	"otm/internal/history"
)

func corpus(n int) []history.History {
	return gen.Corpus(gen.Config{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.3}, n, 0)
}

// TestMatchesSequentialChecker is the pool half of the differential
// suite: the parallel pool must return exactly the verdicts the
// sequential checker returns, in input order.
func TestMatchesSequentialChecker(t *testing.T) {
	n := 300
	if !testing.Short() {
		n = 1000
	}
	hs := corpus(n)
	want := make([]bool, n)
	for i, h := range hs {
		res, err := core.Opaque(h)
		if err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		want[i] = res.Opaque
	}

	for _, workers := range []int{1, 4, 8} {
		p := New(Options{Workers: workers})
		verdicts := p.CheckAll(hs)
		if len(verdicts) != n {
			t.Fatalf("workers=%d: %d verdicts, want %d", workers, len(verdicts), n)
		}
		for i, v := range verdicts {
			if v.Index != i {
				t.Fatalf("workers=%d: verdict %d carries index %d", workers, i, v.Index)
			}
			if v.Err != nil {
				t.Fatalf("workers=%d: history %d: %v", workers, i, v.Err)
			}
			if v.Result.Opaque != want[i] {
				t.Errorf("workers=%d: history %d: pool says opaque=%v, sequential says %v",
					workers, i, v.Result.Opaque, want[i])
			}
		}
	}
}

func TestStreamPreservesOrderAndSources(t *testing.T) {
	hs := corpus(64)
	p := New(Options{Workers: 4, Window: 2})
	in := make(chan Item)
	go func() {
		for i, h := range hs {
			in <- Item{Source: fmt.Sprintf("line%d", i), History: h}
		}
		close(in)
	}()
	i := 0
	for v := range p.Run(in) {
		if v.Index != i || v.Source != fmt.Sprintf("line%d", i) {
			t.Fatalf("verdict %d: index=%d source=%q", i, v.Index, v.Source)
		}
		i++
	}
	if i != len(hs) {
		t.Fatalf("got %d verdicts, want %d", i, len(hs))
	}
}

func TestUpstreamErrorsPassThrough(t *testing.T) {
	parseErr := errors.New("parse: bad token")
	in := make(chan Item, 3)
	in <- Item{Source: "a", History: history.MustParse("w1(x,1) tryC1 C1")}
	in <- Item{Source: "b", Err: parseErr}
	in <- Item{Source: "c", History: history.MustParse("r1(x)->0 tryC1 C1")}
	close(in)

	var got []Verdict
	for v := range New(Options{Workers: 2}).Run(in) {
		got = append(got, v)
	}
	if len(got) != 3 {
		t.Fatalf("%d verdicts, want 3", len(got))
	}
	if !got[0].Opaque() || !got[2].Opaque() {
		t.Error("valid items must check opaque")
	}
	if !errors.Is(got[1].Err, parseErr) {
		t.Errorf("item b: err=%v, want the upstream parse error", got[1].Err)
	}
	if got[1].Opaque() {
		t.Error("errored item must not report opaque")
	}
}

// TestPerHistoryBudget: a starved node budget fails each history
// independently with ErrSearchLimit; the failure of one item does not
// taint its neighbours since every history gets a fresh budget.
func TestPerHistoryBudget(t *testing.T) {
	hs := corpus(20)
	p := New(Options{Workers: 4, Config: core.Config{MaxNodes: 1}})
	verdicts := p.CheckAll(hs)
	for i, v := range verdicts {
		if !errors.Is(v.Err, core.ErrSearchLimit) {
			t.Fatalf("history %d: err=%v, want ErrSearchLimit under a 1-node budget", i, v.Err)
		}
	}

	// The same corpus under the default budget is fully checkable.
	for i, v := range New(Options{Workers: 4}).CheckAll(hs) {
		if v.Err != nil {
			t.Fatalf("history %d: %v", i, v.Err)
		}
	}
}

func TestCustomCheckFunction(t *testing.T) {
	hs := corpus(16)
	p := New(Options{
		Workers: 2,
		Check: func(h history.History, cfg core.Config) (core.Result, error) {
			return core.CheckStrong(h, cfg)
		},
	})
	for i, v := range p.CheckAll(hs) {
		want, err := core.CheckStrong(hs[i], core.Config{})
		if err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		if v.Err != nil || v.Result.Opaque != want.Opaque {
			t.Fatalf("history %d: pool strong=%v err=%v, want %v", i, v.Result.Opaque, v.Err, want.Opaque)
		}
	}
}

// TestStatsAggregated: the pool sums the per-worker SearchContext
// counters into Options.Stats, and the per-worker contexts do not
// change any verdict relative to the reference engine.
func TestStatsAggregated(t *testing.T) {
	hs := corpus(64)
	var stats core.Stats
	p := New(Options{Workers: 4, Stats: &stats})
	verdicts := p.CheckAll(hs)
	for i, v := range verdicts {
		want, err := core.Check(hs[i], core.Config{DisableMemo: true})
		if err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		if v.Err != nil || v.Result.Opaque != want.Opaque {
			t.Fatalf("history %d: pool opaque=%v err=%v, reference %v", i, v.Result.Opaque, v.Err, want.Opaque)
		}
	}
	if stats.States == 0 || stats.Atoms == 0 || stats.Problems == 0 {
		t.Errorf("worker stats not aggregated: %+v", stats)
	}

	// The reference engine uses no contexts: stats must stay zero.
	var refStats core.Stats
	rp := New(Options{Workers: 2, Config: core.Config{DisableMemo: true}, Stats: &refStats})
	rp.CheckAll(hs[:8])
	if refStats != (core.Stats{}) {
		t.Errorf("reference batch populated stats: %+v", refStats)
	}
}

func TestEmptyInput(t *testing.T) {
	in := make(chan Item)
	close(in)
	if _, open := <-New(Options{}).Run(in); open {
		t.Error("verdict channel must close on empty input")
	}
}

// TestRunToDeliversAll: with a healthy sink, RunTo delivers every
// verdict in input order and returns nil.
func TestRunToDeliversAll(t *testing.T) {
	hs := corpus(48)
	in := make(chan Item)
	go func() {
		for i, h := range hs {
			in <- Item{Source: fmt.Sprintf("s%d", i), History: h}
		}
		close(in)
	}()
	var got []Verdict
	err := New(Options{Workers: 4}).RunTo(context.Background(), in, func(v Verdict) error {
		got = append(got, v)
		return nil
	})
	if err != nil {
		t.Fatalf("RunTo = %v, want nil", err)
	}
	if len(got) != len(hs) {
		t.Fatalf("delivered %d verdicts, want %d", len(got), len(hs))
	}
	for i, v := range got {
		if v.Index != i || v.Source != fmt.Sprintf("s%d", i) {
			t.Fatalf("verdict %d out of order: index=%d source=%q", i, v.Index, v.Source)
		}
	}
}

// TestRunToSinkErrorPropagates: the first sink failure cancels the run,
// stops deliveries, unblocks the producer, and is returned — the
// documented error-propagation path for failing verdict sinks.
func TestRunToSinkErrorPropagates(t *testing.T) {
	sinkErr := errors.New("disk full")
	in := make(chan Item)
	produced := make(chan struct{})
	go func() {
		defer close(produced)
		// More input than the window so the producer would block forever
		// if a failed sink did not drain the channel.
		for i, h := range corpus(128) {
			in <- Item{Source: fmt.Sprintf("s%d", i), History: h}
		}
		close(in)
	}()
	delivered := 0
	err := New(Options{Workers: 2, Window: 2}).RunTo(context.Background(), in, func(v Verdict) error {
		if delivered++; delivered == 3 {
			return sinkErr
		}
		return nil
	})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("RunTo = %v, want the sink error", err)
	}
	if delivered != 3 {
		t.Errorf("sink called %d times after its error, want exactly 3", delivered)
	}
	<-produced // must not deadlock
}

// TestRunToCancelled: an external cancellation surfaces as ctx's error,
// so callers can tell "all delivered" from "cut short".
func TestRunToCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := make(chan Item)
	go func() {
		for _, h := range corpus(16) {
			in <- Item{History: h}
		}
		close(in)
	}()
	err := New(Options{Workers: 2}).RunTo(ctx, in, func(Verdict) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunTo on a cancelled context = %v, want context.Canceled", err)
	}
}

// TestVerdictLine pins the canonical batch line rendering that both
// opacheck and the distributed verdict logs use.
func TestVerdictLine(t *testing.T) {
	h, err := history.Parse("w1(x,1) tryC1 C1 r2(x)->1 tryC2 C2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Opaque(h)
	if err != nil || !res.Opaque {
		t.Fatalf("fixture history: opaque=%v err=%v", res.Opaque, err)
	}
	v := Verdict{Source: "corpus.txt:3", Result: res}
	want := fmt.Sprintf("corpus.txt:3 opaque nodes=%d order=%q", res.Nodes, res.Witness)
	if got := v.Line(); got != want {
		t.Errorf("opaque Line() = %q, want %q", got, want)
	}
	v = Verdict{Source: "corpus.txt:4", Result: core.Result{Nodes: 9}}
	if got := v.Line(); got != "corpus.txt:4 non-opaque nodes=9" {
		t.Errorf("non-opaque Line() = %q", got)
	}
	v = Verdict{Source: "corpus.txt:5", Err: errors.New(`parse: bad token "zzz"`)}
	if got := v.Line(); got != `corpus.txt:5 error parse: bad token "zzz"` {
		t.Errorf("error Line() = %q", got)
	}
}
