package checkpool

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"otm/internal/core"
)

// waitGoroutines polls until the goroutine count settles back to at most
// base (plus a small allowance for runtime helpers) or the deadline
// expires, returning the final count.
func waitGoroutines(base int) int {
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base || time.Now().After(deadline) {
			return n
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunContextCancelMidBatch cancels the context partway through a
// large batch and asserts the contract of RunContext: verdicts for
// already-admitted histories still arrive, in input order and without
// gaps; the rest of the input is discarded so the producer unblocks; the
// verdict channel closes; and no pool goroutine is left behind. Runs
// under the CI -race job.
func TestRunContextCancelMidBatch(t *testing.T) {
	const n = 5000
	hs := corpus(n)
	want := make([]bool, n)
	for i, h := range hs {
		res, err := core.Opaque(h)
		if err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		want[i] = res.Opaque
	}

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := New(Options{Workers: 4, Window: 4})

	in := make(chan Item)
	producerDone := make(chan struct{})
	go func() {
		defer close(producerDone)
		defer close(in)
		for i, h := range hs {
			in <- Item{Source: fmt.Sprintf("line%d", i), History: h}
		}
	}()

	got := 0
	for v := range p.RunContext(ctx, in) {
		if v.Index != got {
			t.Fatalf("verdict %d carries index %d: cancellation broke ordering", got, v.Index)
		}
		if v.Source != fmt.Sprintf("line%d", got) {
			t.Fatalf("verdict %d carries source %q", got, v.Source)
		}
		if v.Err != nil {
			t.Fatalf("history %d: %v", got, v.Err)
		}
		if v.Result.Opaque != want[got] {
			t.Fatalf("history %d: pool says opaque=%v, sequential says %v", got, v.Result.Opaque, want[got])
		}
		got++
		if got == 16 {
			cancel()
		}
	}
	if got < 16 {
		t.Fatalf("only %d verdicts before the channel closed, want at least the 16 seen pre-cancel", got)
	}
	if got == n {
		t.Fatalf("cancellation admitted the whole %d-history batch", n)
	}

	// The producer must unblock even though most of its input was never
	// admitted.
	select {
	case <-producerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked 5s after cancellation: input not drained")
	}

	if g := waitGoroutines(base); g > base {
		t.Errorf("goroutine leak after cancellation: %d running, started with %d", g, base)
	}
}

// TestRunContextCancelBeforeStart: a context cancelled before Run admits
// anything yields zero verdicts, a closed channel and no leaked
// goroutines — and the producer still unblocks.
func TestRunContextCancelBeforeStart(t *testing.T) {
	hs := corpus(32)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	in := make(chan Item)
	go func() {
		defer close(in)
		for _, h := range hs {
			in <- Item{History: h}
		}
	}()

	got := 0
	for range New(Options{Workers: 2}).RunContext(ctx, in) {
		got++
	}
	if got != 0 {
		t.Errorf("pre-cancelled pool emitted %d verdicts, want 0", got)
	}
	if g := waitGoroutines(base); g > base {
		t.Errorf("goroutine leak: %d running, started with %d", g, base)
	}
}

// TestRunContextRace hammers concurrent cancellation at random points
// while verdicts stream, for the -race detector's benefit.
func TestRunContextRace(t *testing.T) {
	hs := corpus(200)
	for round := 0; round < 8; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		in := make(chan Item)
		go func() {
			defer close(in)
			for _, h := range hs {
				in <- Item{History: h}
			}
		}()
		go func(after int) {
			time.Sleep(time.Duration(after) * time.Millisecond)
			cancel()
		}(round)
		prev := -1
		for v := range New(Options{Workers: 4, Window: 3}).RunContext(ctx, in) {
			if v.Index != prev+1 {
				t.Fatalf("round %d: verdict index %d after %d", round, v.Index, prev)
			}
			prev = v.Index
		}
		cancel()
	}
}
