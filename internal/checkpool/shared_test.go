package checkpool

import (
	"runtime"
	"sync"
	"testing"

	"otm/internal/core"
	"otm/internal/history"
)

// TestSharedContextMatchesPerWorkerAndReference is the three-way
// differential for the shared-table layer: on one mixed corpus, the
// shared-table pool, the per-worker-context pool (the former oracle)
// and the DisableMemo reference engine must agree on every verdict.
func TestSharedContextMatchesPerWorkerAndReference(t *testing.T) {
	n := 300
	if !testing.Short() {
		n = 1000
	}
	hs := corpus(n)

	ref := New(Options{Workers: 4, Config: core.Config{DisableMemo: true}}).CheckAll(hs)
	perWorker := New(Options{Workers: 8}).CheckAll(hs)
	shared := New(Options{Workers: 8, SharedContext: core.NewSharedTables()}).CheckAll(hs)

	for i := range hs {
		if shared[i].Err != nil || perWorker[i].Err != nil || ref[i].Err != nil {
			t.Fatalf("history %d: errs shared=%v perWorker=%v ref=%v",
				i, shared[i].Err, perWorker[i].Err, ref[i].Err)
		}
		if shared[i].Result.Opaque != ref[i].Result.Opaque {
			t.Errorf("history %d: shared tables say opaque=%v, reference says %v:\n%s",
				i, shared[i].Result.Opaque, ref[i].Result.Opaque, hs[i].Format())
		}
		if perWorker[i].Result.Opaque != ref[i].Result.Opaque {
			t.Errorf("history %d: per-worker contexts say opaque=%v, reference says %v",
				i, perWorker[i].Result.Opaque, ref[i].Result.Opaque)
		}
	}
}

// TestSharedStatsPoolWide pins the point of the shared tables: the
// pool-wide states-interned count of an 8-worker shared run stays within
// 10% of what a single worker interns for the same corpus — not
// ×Workers, as per-worker contexts pay — and the aggregated stats carry
// both the shared insert counters and the workers' lookup counters.
func TestSharedStatsPoolWide(t *testing.T) {
	n := 300
	if !testing.Short() {
		n = 1000
	}
	hs := corpus(n)

	var single core.Stats
	New(Options{Workers: 1, Stats: &single}).CheckAll(hs)
	if single.States == 0 {
		t.Fatalf("single-worker baseline interned no states: %+v", single)
	}

	var shared core.Stats
	New(Options{Workers: 8, SharedContext: core.NewSharedTables(), Stats: &shared}).CheckAll(hs)
	if shared.States == 0 || shared.Atoms == 0 || shared.TxSigs == 0 {
		t.Fatalf("shared run reported no insert counters: %+v", shared)
	}
	if limit := single.States + single.States/10; shared.States > limit {
		t.Errorf("8-worker shared run interned %d states, single worker %d; want within 10%% (≤%d), not ×Workers",
			shared.States, single.States, limit)
	}
	if shared.MemoHits+shared.MemoMisses == 0 {
		t.Errorf("shared run recorded no memo lookups: %+v", shared)
	}

	// The per-worker pool, by contrast, really does intern per worker;
	// the shared pool must undercut it decisively on the same corpus.
	var per core.Stats
	New(Options{Workers: 8, Stats: &per}).CheckAll(hs)
	if shared.States >= per.States {
		t.Errorf("shared run interned %d states, 8 per-worker contexts %d; sharing should deduplicate",
			shared.States, per.States)
	}
}

// TestSharedStatsAddedOnce: the shared insert counters land in
// Options.Stats exactly once per run, not once per worker — a corpus
// checked by 8 workers reports the same pool-wide States a 2-worker run
// does.
func TestSharedStatsAddedOnce(t *testing.T) {
	hs := corpus(200)
	counts := make([]int, 2)
	for i, workers := range []int{2, 8} {
		var stats core.Stats
		New(Options{Workers: workers, SharedContext: core.NewSharedTables(), Stats: &stats}).CheckAll(hs)
		counts[i] = stats.States
	}
	if counts[0] != counts[1] {
		t.Errorf("pool-wide States differ by worker count: 2 workers %d, 8 workers %d", counts[0], counts[1])
	}
}

// TestSharedContextIgnoredOnReferencePath: DisableMemo keeps the
// reference engine context-free even when shared tables are supplied —
// stats stay zero and verdicts still come back.
func TestSharedContextIgnoredOnReferencePath(t *testing.T) {
	hs := corpus(16)
	var stats core.Stats
	p := New(Options{
		Workers:       2,
		Config:        core.Config{DisableMemo: true},
		SharedContext: core.NewSharedTables(),
		Stats:         &stats,
	})
	for i, v := range p.CheckAll(hs) {
		if v.Err != nil {
			t.Fatalf("history %d: %v", i, v.Err)
		}
	}
	if stats != (core.Stats{}) {
		t.Errorf("reference batch populated stats through shared tables: %+v", stats)
	}
}

// TestSharedRaceStress hammers one SharedTables from every available
// core: two pools at max workers run concurrently over a duplicated
// corpus (every history checked many times, so workers collide on hot
// keys), and every verdict must match the reference. Run with -race in
// CI — the stress is the point.
func TestSharedRaceStress(t *testing.T) {
	n := 150
	if !testing.Short() {
		n = 400
	}
	base := corpus(n)
	want := make([]bool, n)
	for i, h := range base {
		r, err := core.Check(h, core.Config{DisableMemo: true})
		if err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		want[i] = r.Opaque
	}
	// Duplicate the corpus so shared entries are probed long after they
	// were inserted, across pool boundaries.
	hs := append(append([]history.History(nil), base...), base...)

	workers := runtime.GOMAXPROCS(0)
	tables := core.NewSharedTables()
	const pools = 2
	verdicts := make([][]Verdict, pools)
	var wg sync.WaitGroup
	for p := 0; p < pools; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			verdicts[p] = New(Options{Workers: workers, SharedContext: tables}).CheckAll(hs)
		}(p)
	}
	wg.Wait()

	for p := 0; p < pools; p++ {
		if len(verdicts[p]) != len(hs) {
			t.Fatalf("pool %d: %d verdicts, want %d", p, len(verdicts[p]), len(hs))
		}
		for i, v := range verdicts[p] {
			if v.Err != nil {
				t.Fatalf("pool %d, history %d: %v", p, i, v.Err)
			}
			if v.Result.Opaque != want[i%n] {
				t.Fatalf("pool %d, history %d: opaque=%v, reference says %v",
					p, i, v.Result.Opaque, want[i%n])
			}
		}
	}
}

// TestZeroValuePool pins the construction equivalence New restored: a
// zero Pool, New(Options{}) and new(Pool) behave identically (defaults
// are resolved once per run, not at construction), and withDefaults is
// idempotent so resolving them again could never change them anyway.
func TestZeroValuePool(t *testing.T) {
	hs := corpus(32)
	want := New(Options{}).CheckAll(hs)
	for name, p := range map[string]*Pool{"zero literal": {}, "new(Pool)": new(Pool)} {
		got := p.CheckAll(hs)
		if len(got) != len(want) {
			t.Fatalf("%s: %d verdicts, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i].Err != nil || got[i].Result.Opaque != want[i].Result.Opaque || got[i].Index != i {
				t.Fatalf("%s: verdict %d = %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}

	once := Options{}.withDefaults()
	twice := once.withDefaults()
	if twice.Workers != once.Workers || twice.Window != once.Window {
		t.Errorf("withDefaults not idempotent: once {Workers:%d Window:%d}, twice {Workers:%d Window:%d}",
			once.Workers, once.Window, twice.Workers, twice.Window)
	}
	if once.Workers < 1 || once.Window != 4*once.Workers || once.Check == nil {
		t.Errorf("defaults not resolved: %+v", once)
	}
}
