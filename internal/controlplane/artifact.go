package controlplane

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"otm/internal/core"
	"otm/internal/history"
	"otm/internal/monitor"
)

// artifactVersion is the first line of every violation artifact.
const artifactVersion = "otm-violation-artifact v1"

// Artifact is a replayable violation capture: the offending history
// prefix in the textual format of internal/history plus the verdict and
// diagnosis the online monitor produced, so an offline `opacheck
// -replay` can independently re-derive the same non-opaque verdict and
// culprit set. The encoding is deliberately a valid opacheck corpus
// file — metadata rides in `# ` comment lines, the history is one
// parseable line — so even tooling that knows nothing about artifacts
// can check the history inside one.
//
// An artifact is replayable when the capturing session retained the
// full offending prefix. A session that truncated before the violation
// holds only the live suffix since its last checkpoint, which is
// judged from reachable-state roots rather than the initial state; such
// captures still record the suffix and diagnosis for a human, but
// Replayable is false and Replay refuses them.
type Artifact struct {
	// Session names the fleet member that observed the violation.
	Session string
	// PrefixLen is the length of the shortest non-opaque prefix, as a
	// global event count (checkpoints included).
	PrefixLen int
	// Event renders the violating event — the last of the prefix.
	Event string
	// Culprits is the diagnosed culprit set (sorted), valid when
	// Diagnosed.
	Culprits  []history.TxID
	Diagnosed bool
	// Replayable reports whether History is the complete offending
	// prefix (no truncation checkpoint preceded it).
	Replayable bool
	// History is the retained portion of the offending prefix.
	History history.History
}

// NewArtifact builds the artifact for one session's violation.
func NewArtifact(session string, v monitor.Violation) *Artifact {
	a := &Artifact{
		Session:    session,
		PrefixLen:  v.PrefixLen,
		Event:      v.Event.String(),
		Diagnosed:  v.Diagnosed,
		Replayable: v.PrefixLen == len(v.Prefix),
		History:    v.Prefix,
	}
	if v.Diagnosed {
		a.Culprits = append([]history.TxID(nil), v.Diagnosis.Implicated...)
		sort.Slice(a.Culprits, func(i, j int) bool { return a.Culprits[i] < a.Culprits[j] })
	}
	return a
}

// Encode renders the artifact: a version line, `# key: value` metadata,
// then the history as one line in the internal/history grammar.
func (a *Artifact) Encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# %s\n", artifactVersion)
	fmt.Fprintf(&b, "# session: %s\n", a.Session)
	fmt.Fprintf(&b, "# prefix-len: %d\n", a.PrefixLen)
	fmt.Fprintf(&b, "# event: %s\n", a.Event)
	fmt.Fprintf(&b, "# status: non-opaque\n")
	fmt.Fprintf(&b, "# replayable: %v\n", a.Replayable)
	fmt.Fprintf(&b, "# diagnosed: %v\n", a.Diagnosed)
	fmt.Fprintf(&b, "# culprits: %s\n", txList(a.Culprits))
	fmt.Fprintf(&b, "%s\n", a.History.String())
	return b.Bytes()
}

func txList(txs []history.TxID) string {
	parts := make([]string, len(txs))
	for i, tx := range txs {
		parts[i] = fmt.Sprintf("T%d", int(tx))
	}
	return strings.Join(parts, " ")
}

// ParseArtifact decodes an artifact produced by Encode.
func ParseArtifact(r io.Reader) (*Artifact, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	a := &Artifact{}
	sawVersion := false
	sawHistory := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if !sawVersion {
				if body != artifactVersion {
					return nil, fmt.Errorf("controlplane: not a violation artifact (first line %q, want %q)", body, artifactVersion)
				}
				sawVersion = true
				continue
			}
			key, val, ok := strings.Cut(body, ":")
			if !ok {
				continue // free-form comment
			}
			val = strings.TrimSpace(val)
			var err error
			switch strings.TrimSpace(key) {
			case "session":
				a.Session = val
			case "prefix-len":
				a.PrefixLen, err = strconv.Atoi(val)
			case "event":
				a.Event = val
			case "replayable":
				a.Replayable, err = strconv.ParseBool(val)
			case "diagnosed":
				a.Diagnosed, err = strconv.ParseBool(val)
			case "culprits":
				a.Culprits, err = parseTxList(val)
			}
			if err != nil {
				return nil, fmt.Errorf("controlplane: artifact header %q: %w", body, err)
			}
			continue
		}
		if sawHistory {
			return nil, fmt.Errorf("controlplane: artifact has more than one history line")
		}
		if !sawVersion {
			return nil, fmt.Errorf("controlplane: not a violation artifact (no version header)")
		}
		h, err := history.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("controlplane: artifact history: %w", err)
		}
		a.History = h
		sawHistory = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawVersion {
		return nil, fmt.Errorf("controlplane: not a violation artifact (no version header)")
	}
	if !sawHistory {
		return nil, fmt.Errorf("controlplane: artifact has no history line")
	}
	return a, nil
}

func parseTxList(s string) ([]history.TxID, error) {
	if s == "" {
		return nil, nil
	}
	var out []history.TxID
	for _, f := range strings.Fields(s) {
		id, ok := strings.CutPrefix(f, "T")
		if !ok {
			return nil, fmt.Errorf("bad transaction %q", f)
		}
		n, err := strconv.Atoi(id)
		if err != nil {
			return nil, fmt.Errorf("bad transaction %q", f)
		}
		out = append(out, history.TxID(n))
	}
	return out, nil
}

// ReplayOutcome is the result of re-checking an artifact offline.
type ReplayOutcome struct {
	// Diagnosis is the fresh offline diagnosis of the artifact history.
	Diagnosis core.Diagnosis
	// VerdictMatches reports that the replay re-derived the recorded
	// verdict: the history is non-opaque with the recorded prefix
	// length.
	VerdictMatches bool
	// CulpritsMatch reports that the fresh culprit set equals the
	// recorded one. Vacuously true when the capture was undiagnosed.
	CulpritsMatch bool
}

// Confirmed reports full agreement between the capture and the replay.
func (o ReplayOutcome) Confirmed() bool { return o.VerdictMatches && o.CulpritsMatch }

// Replay re-checks the artifact's history with a fresh offline
// diagnosis — no state shared with the monitor that captured it — and
// compares verdict, violation position and culprit set against what the
// capture recorded. cfg supplies the object environment (zero value:
// registers initialized to 0, the monitor default); cfg.Context is
// never reused from a capture, so the replay is an independent witness.
func (a *Artifact) Replay(cfg core.Config) (ReplayOutcome, error) {
	if !a.Replayable {
		return ReplayOutcome{}, fmt.Errorf("controlplane: artifact from session %q is not replayable (the capturing session truncated; only the live suffix was retained)", a.Session)
	}
	d, err := core.Diagnose(a.History, cfg)
	if err != nil {
		return ReplayOutcome{}, err
	}
	out := ReplayOutcome{Diagnosis: d}
	out.VerdictMatches = !d.Opaque && d.PrefixLen == a.PrefixLen
	if a.Diagnosed {
		fresh := append([]history.TxID(nil), d.Implicated...)
		sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
		out.CulpritsMatch = len(fresh) == len(a.Culprits)
		for i := range fresh {
			if !out.CulpritsMatch || fresh[i] != a.Culprits[i] {
				out.CulpritsMatch = false
				break
			}
		}
	} else {
		out.CulpritsMatch = true
	}
	return out, nil
}
