// Package controlplane scales online opacity monitoring from one
// session to a fleet: one monitor.Session per STM instance (or shard),
// aggregated into a single live fleet verdict with first-violation
// latching, exported metrics, and replayable violation capture.
//
// A Fleet owns its member sessions. Each member wraps one
// monitor.Session — fed by a recorder tap (Attach) or directly
// (Member.Append) — and the fleet aggregates their lock-free Stats
// snapshots into a fleet Status: worst-of member status, summed
// throughput counters, events/s and heap residency. The aggregation
// never takes a session lock, so scraping a live fleet perturbs the
// monitored engines only by a handful of atomic loads per member.
//
// On a member's first violation the fleet:
//
//  1. captures a replayable timeline artifact — the offending prefix in
//     the internal/history textual format plus the diagnosis culprit
//     set — through internal/storage (atomic commit-on-close, so a
//     crash mid-capture leaves no partial artifact), closing the loop
//     between the online monitor and the offline checker: `opacheck
//     -replay` re-derives the same verdict from the artifact alone;
//  2. latches the fleet-level first violation (later violations are
//     counted and captured, but First stays first);
//  3. under StopAll, asynchronously closes every other member — the
//     fleet-wide analogue of a session's own first-violation stop.
//
// Telemetry is a telemetry.Registry of per-session and fleet-level
// metrics; Handler serves it at /metrics (Prometheus text, or JSON via
// ?format=json) alongside /status (the aggregated fleet Status as
// JSON).
package controlplane

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"otm/internal/history"
	"otm/internal/monitor"
	"otm/internal/stm"
	"otm/internal/storage"
	"otm/internal/telemetry"
)

// StopPolicy says what the fleet does with the other members when one
// member observes a violation.
type StopPolicy int

const (
	// StopOne stops only the violating session (which latches by
	// itself); the rest of the fleet keeps monitoring. The fleet status
	// still latches the violation.
	StopOne StopPolicy = iota
	// StopAll additionally closes every other member, asynchronously —
	// one bad shard halts monitoring fleet-wide. Closing waits for each
	// member's queue to drain, so already-offered events still get
	// their verdicts.
	StopAll
)

// String returns "stop-one" or "stop-all".
func (p StopPolicy) String() string {
	if p == StopAll {
		return "stop-all"
	}
	return "stop-one"
}

// Options configures a Fleet.
type Options struct {
	// Monitor is the per-member session template. Its OnViolation is
	// wrapped, not replaced: the fleet's capture-and-latch runs first,
	// then the template callback (with the same caveats as
	// monitor.Options.OnViolation).
	Monitor monitor.Options
	// Stop selects the fleet-wide violation policy (default StopOne).
	Stop StopPolicy
	// ArtifactsURI is the storage location violation artifacts are
	// written to (file:///dir, mem://store, or a plain path); empty
	// disables capture. ArtifactsFS overrides it with an already-open
	// FS.
	ArtifactsURI string
	ArtifactsFS  storage.FS
	// Registry receives the fleet's metrics (nil: a fresh registry,
	// exposed by Fleet.Registry).
	Registry *telemetry.Registry
	// OnViolation, if non-nil, is called once per violating member,
	// after the artifact capture and fleet latch. It runs where the
	// member session's own OnViolation would (inside the append
	// critical section — see monitor.Options) and must not call back
	// into the fleet or its sessions.
	OnViolation func(session string, v ViolationRecord)
}

// ViolationRecord is the fleet's account of one member violation.
type ViolationRecord struct {
	// Session names the violating member; Seq is the fleet-wide
	// violation sequence number (0 for the first).
	Session string `json:"session"`
	Seq     int    `json:"seq"`
	// PrefixLen and Event locate the violation as in monitor.Violation.
	PrefixLen int    `json:"prefix_len"`
	Event     string `json:"event"`
	// Culprits is the diagnosed culprit set, rendered "T<n>".
	Culprits  []string `json:"culprits,omitempty"`
	Diagnosed bool     `json:"diagnosed"`
	// Artifact is the storage object name the capture committed to
	// ("" when capture is disabled), and CaptureErr the capture failure
	// if one occurred — capture failures never mask the violation
	// itself.
	Artifact   string `json:"artifact,omitempty"`
	CaptureErr string `json:"capture_err,omitempty"`
}

// SessionStatus is one member's slice of the fleet status.
type SessionStatus struct {
	Name string `json:"name"`
	monitor.Stats
}

// Status is the aggregated fleet verdict and throughput snapshot.
type Status struct {
	// Sessions is the member count; Fleet is the worst-of aggregate of
	// the member statuses (error ≻ violated ≻ lossy ≻ opaque).
	Sessions int            `json:"sessions"`
	Fleet    monitor.Status `json:"-"`
	// FleetStatus is Fleet rendered for JSON.
	FleetStatus string `json:"fleet_status"`
	// Summed member counters (see monitor.Stats).
	Events      int `json:"events"`
	Checked     int `json:"checked"`
	Dropped     int `json:"dropped"`
	QueueDepth  int `json:"queue_depth"`
	Nodes       int `json:"nodes"`
	FastPath    int `json:"fast_path"`
	Searches    int `json:"searches"`
	Skipped     int `json:"skipped"`
	Checkpoints int `json:"checkpoints"`
	LiveEvents  int `json:"live_events"`
	// Violations counts violating members so far; First is the latched
	// first violation (nil while the fleet is clean).
	Violations int              `json:"violations"`
	First      *ViolationRecord `json:"first,omitempty"`
	// UptimeSecs is the fleet age, EventsPerSec the fleet-wide offered
	// event rate over that age, and HeapBytes the process heap
	// residency at snapshot time.
	UptimeSecs   float64 `json:"uptime_secs"`
	EventsPerSec float64 `json:"events_per_sec"`
	HeapBytes    uint64  `json:"heap_bytes"`
	// PerSession carries each member's own snapshot.
	PerSession []SessionStatus `json:"per_session"`
}

// Fleet runs and aggregates a set of monitoring sessions. Create with
// New, add members with Add or Attach, and Close when the run ends.
// All methods are safe for concurrent use.
type Fleet struct {
	opts  Options
	reg   *telemetry.Registry
	store storage.FS
	start time.Time

	mu      sync.Mutex
	members []*Member
	byName  map[string]*Member
	closed  bool

	violations atomic.Int64
	firstMu    sync.Mutex
	first      *ViolationRecord

	wg sync.WaitGroup // StopAll closers
}

// Member is one fleet session.
type Member struct {
	name  string
	fleet *Fleet
	sess  *monitor.Session
}

// New creates an empty fleet and registers its fleet-level metrics.
func New(opts Options) (*Fleet, error) {
	f := &Fleet{
		opts:   opts,
		reg:    opts.Registry,
		store:  opts.ArtifactsFS,
		start:  time.Now(),
		byName: make(map[string]*Member),
	}
	if f.reg == nil {
		f.reg = telemetry.NewRegistry()
	}
	if f.store == nil && opts.ArtifactsURI != "" {
		fsys, err := storage.Resolve(opts.ArtifactsURI)
		if err != nil {
			return nil, fmt.Errorf("controlplane: artifacts: %w", err)
		}
		f.store = fsys
	}
	f.reg.GaugeFunc("otm_fleet_sessions", "fleet member count",
		func() float64 { f.mu.Lock(); defer f.mu.Unlock(); return float64(len(f.members)) })
	f.reg.GaugeFunc("otm_fleet_status", "aggregate fleet status (0 opaque, 1 violated, 2 lossy, 3 error)",
		func() float64 { return float64(f.aggregateStatus()) })
	f.reg.CounterFunc("otm_fleet_violations_total", "members that observed a violation",
		f.violations.Load)
	f.reg.CounterFunc("otm_fleet_events_total", "events offered across the fleet",
		func() int64 { return f.sum(func(s monitor.Stats) int { return s.Events }) })
	f.reg.GaugeFunc("otm_fleet_events_per_second", "fleet-wide offered event rate since start",
		func() float64 {
			secs := time.Since(f.start).Seconds()
			if secs <= 0 {
				return 0
			}
			return float64(f.sum(func(s monitor.Stats) int { return s.Events })) / secs
		})
	f.reg.GaugeFunc("otm_fleet_uptime_seconds", "seconds since the fleet started",
		func() float64 { return time.Since(f.start).Seconds() })
	f.reg.GaugeFunc("otm_process_heap_bytes", "process heap residency (runtime.MemStats.HeapAlloc)",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	return f, nil
}

// Registry returns the fleet's metrics registry.
func (f *Fleet) Registry() *telemetry.Registry { return f.reg }

// sum folds one Stats field across the members.
func (f *Fleet) sum(field func(monitor.Stats) int) int64 {
	f.mu.Lock()
	members := f.members
	f.mu.Unlock()
	var total int64
	for _, m := range members {
		total += int64(field(m.sess.Stats()))
	}
	return total
}

// Add creates a member session named name from the fleet's session
// template. Names must be unique within the fleet; adding to a closed
// fleet is an error.
func (f *Fleet) Add(name string) (*Member, error) {
	return f.AddWith(name, f.opts.Monitor)
}

// AddWith creates a member with per-member session options (the
// violation plumbing is wired on top of them, as with the template).
func (f *Fleet) AddWith(name string, mopts monitor.Options) (*Member, error) {
	if name == "" {
		return nil, fmt.Errorf("controlplane: member name must be nonempty")
	}
	m := &Member{name: name, fleet: f}
	userCb := mopts.OnViolation
	mopts.OnViolation = func(v monitor.Violation) {
		f.noteViolation(m, v)
		if userCb != nil {
			userCb(v)
		}
	}

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("controlplane: fleet is closed")
	}
	if _, dup := f.byName[name]; dup {
		f.mu.Unlock()
		return nil, fmt.Errorf("controlplane: duplicate member %q", name)
	}
	// Register inside the lock so a racing duplicate Add cannot reach
	// the registry (which would panic) before the name check lands.
	f.byName[name] = m
	f.members = append(f.members, m)
	f.mu.Unlock()

	m.sess = monitor.New(mopts)
	f.registerMemberMetrics(m)
	return m, nil
}

// Attach adds a member fed by every event rec records, in recording
// order — the fleet-scale analogue of monitor.Attach.
func (f *Fleet) Attach(name string, rec *stm.Recorder) (*Member, error) {
	return f.AttachWith(name, rec, f.opts.Monitor)
}

// AttachWith is Attach with per-member session options.
func (f *Fleet) AttachWith(name string, rec *stm.Recorder, mopts monitor.Options) (*Member, error) {
	m, err := f.AddWith(name, mopts)
	if err != nil {
		return nil, err
	}
	if g := m.sess.AdmissionGate(); g != nil {
		rec.Gate(g)
	}
	rec.Tap(func(ev history.Event) { m.sess.Append(ev) })
	return m, nil
}

// registerMemberMetrics exports the member's lock-free Stats as labeled
// samples. Every read goes through Stats(), so a scrape never touches
// session locks.
func (f *Fleet) registerMemberMetrics(m *Member) {
	l := telemetry.L("session", m.name)
	stats := m.sess.Stats
	counter := func(name, help string, field func(monitor.Stats) int) {
		f.reg.CounterFunc(name, help, func() int64 { return int64(field(stats())) }, l)
	}
	gauge := func(name, help string, field func(monitor.Stats) int) {
		f.reg.GaugeFunc(name, help, func() float64 { return float64(field(stats())) }, l)
	}
	counter("otm_monitor_events_total", "events offered to the session", func(s monitor.Stats) int { return s.Events })
	counter("otm_monitor_checked_total", "events consumed by the incremental checker", func(s monitor.Stats) int { return s.Checked })
	counter("otm_monitor_dropped_total", "events discarded by the lossy policy", func(s monitor.Stats) int { return s.Dropped })
	counter("otm_monitor_skipped_total", "response events skipped by the abort rule", func(s monitor.Stats) int { return s.Skipped })
	counter("otm_monitor_search_nodes_total", "search nodes explored", func(s monitor.Stats) int { return s.Nodes })
	counter("otm_monitor_fastpath_total", "checks resolved by witness revalidation", func(s monitor.Stats) int { return s.FastPath })
	counter("otm_monitor_searches_total", "checks that ran a full search", func(s monitor.Stats) int { return s.Searches })
	counter("otm_monitor_checkpoints_total", "successful truncation checkpoints", func(s monitor.Stats) int { return s.Checkpoints })
	counter("otm_monitor_truncated_events_total", "events collapsed behind checkpoints", func(s monitor.Stats) int { return s.TruncatedEvents })
	counter("otm_monitor_trunc_nodes_total", "enumeration nodes spent on truncation attempts", func(s monitor.Stats) int { return s.TruncNodes })
	counter("otm_monitor_barrier_stalls_total", "transaction starts stalled by the truncation barrier", func(s monitor.Stats) int { return s.BarrierStalls })
	f.reg.CounterFunc("otm_monitor_barrier_wait_nanoseconds_total", "total time transaction starts waited on the truncation barrier",
		func() int64 { return stats().BarrierWaitNanos }, l)
	gauge("otm_monitor_status", "session status (0 opaque, 1 violated, 2 lossy, 3 error)", func(s monitor.Stats) int { return int(s.Status) })
	gauge("otm_monitor_queue_depth", "async queue occupancy", func(s monitor.Stats) int { return s.QueueDepth })
	gauge("otm_monitor_live_events", "live-suffix length (events since the last checkpoint)", func(s monitor.Stats) int { return s.LiveEvents })
	gauge("otm_monitor_roots", "reachable-state roots of the current checkpoint", func(s monitor.Stats) int { return s.Roots })
	gauge("otm_monitor_table_states", "interned state vectors held by the session's search context", func(s monitor.Stats) int { return s.TableStates })
	gauge("otm_monitor_table_memo_entries", "failure-memo entries held by the session's search context", func(s monitor.Stats) int { return s.TableMemoEntries })
}

// Name returns the member's fleet-unique name.
func (m *Member) Name() string { return m.name }

// Session returns the underlying monitoring session.
func (m *Member) Session() *monitor.Session { return m.sess }

// Append offers one event to the member's session.
func (m *Member) Append(ev history.Event) monitor.Verdict { return m.sess.Append(ev) }

// Stats returns the member session's lock-free counters.
func (m *Member) Stats() monitor.Stats { return m.sess.Stats() }

// Verdict returns the member session's verdict snapshot.
func (m *Member) Verdict() monitor.Verdict { return m.sess.Verdict() }

// Close closes the member's session and returns its final verdict. The
// member stays in the fleet (its final counters keep contributing to
// status and metrics).
func (m *Member) Close() monitor.Verdict { return m.sess.Close() }

// noteViolation is the fleet half of a member violation: capture the
// artifact, latch the fleet first-violation, count, notify, and apply
// the stop policy. It runs inside the member session's append critical
// section (see monitor.Options.OnViolation), so everything here must
// avoid the fleet's sessions — StopAll defers its closes to a
// goroutine.
func (f *Fleet) noteViolation(m *Member, v monitor.Violation) {
	seq := int(f.violations.Add(1)) - 1
	rec := ViolationRecord{
		Session:   m.name,
		Seq:       seq,
		PrefixLen: v.PrefixLen,
		Event:     v.Event.String(),
		Diagnosed: v.Diagnosed,
	}
	if v.Diagnosed {
		for _, tx := range v.Diagnosis.Implicated {
			rec.Culprits = append(rec.Culprits, fmt.Sprintf("T%d", int(tx)))
		}
	}
	if f.store != nil {
		name, err := f.capture(m.name, seq, v)
		rec.Artifact = name
		if err != nil {
			rec.CaptureErr = err.Error()
		}
	}
	f.firstMu.Lock()
	if f.first == nil {
		first := rec
		f.first = &first
	}
	f.firstMu.Unlock()
	if f.opts.OnViolation != nil {
		f.opts.OnViolation(m.name, rec)
	}
	if f.opts.Stop == StopAll {
		f.mu.Lock()
		others := make([]*Member, 0, len(f.members))
		for _, o := range f.members {
			if o != m {
				others = append(others, o)
			}
		}
		f.mu.Unlock()
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			for _, o := range others {
				o.sess.Close()
			}
		}()
	}
}

// capture writes the violation artifact through the fleet's store. The
// object name is violations/NNN-<session>.hist; commit-on-close means a
// reader can never observe a half-written artifact.
func (f *Fleet) capture(session string, seq int, v monitor.Violation) (string, error) {
	name := fmt.Sprintf("violations/%03d-%s.hist", seq, session)
	w, err := f.store.Create(name)
	if err != nil {
		return "", err
	}
	if _, err := w.Write(NewArtifact(session, v).Encode()); err != nil {
		w.Abort()
		return "", err
	}
	if err := w.Close(); err != nil {
		return "", err
	}
	return name, nil
}

// aggregateStatus folds the member statuses: error ≻ violated ≻ lossy ≻
// opaque.
func (f *Fleet) aggregateStatus() monitor.Status {
	f.mu.Lock()
	members := f.members
	f.mu.Unlock()
	agg := monitor.StatusOpaque
	rank := func(s monitor.Status) int {
		switch s {
		case monitor.StatusError:
			return 3
		case monitor.StatusViolated:
			return 2
		case monitor.StatusLossy:
			return 1
		default:
			return 0
		}
	}
	for _, m := range members {
		if s := m.sess.Stats().Status; rank(s) > rank(agg) {
			agg = s
		}
	}
	return agg
}

// Status aggregates the fleet: worst-of status, summed counters, rates
// and per-member snapshots. Like the member Stats it reads, the
// snapshot is loosely consistent while the fleet is live and exact
// after Close.
func (f *Fleet) Status() Status {
	f.mu.Lock()
	members := make([]*Member, len(f.members))
	copy(members, f.members)
	f.mu.Unlock()

	st := Status{
		Sessions:   len(members),
		Violations: int(f.violations.Load()),
		UptimeSecs: time.Since(f.start).Seconds(),
	}
	agg := monitor.StatusOpaque
	rank := map[monitor.Status]int{
		monitor.StatusOpaque: 0, monitor.StatusLossy: 1,
		monitor.StatusViolated: 2, monitor.StatusError: 3,
	}
	for _, m := range members {
		s := m.sess.Stats()
		st.PerSession = append(st.PerSession, SessionStatus{Name: m.name, Stats: s})
		st.Events += s.Events
		st.Checked += s.Checked
		st.Dropped += s.Dropped
		st.QueueDepth += s.QueueDepth
		st.Nodes += s.Nodes
		st.FastPath += s.FastPath
		st.Searches += s.Searches
		st.Skipped += s.Skipped
		st.Checkpoints += s.Checkpoints
		st.LiveEvents += s.LiveEvents
		if rank[s.Status] > rank[agg] {
			agg = s.Status
		}
	}
	st.Fleet = agg
	st.FleetStatus = agg.String()
	if st.UptimeSecs > 0 {
		st.EventsPerSec = float64(st.Events) / st.UptimeSecs
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st.HeapBytes = ms.HeapAlloc

	f.firstMu.Lock()
	if f.first != nil {
		first := *f.first
		st.First = &first
	}
	f.firstMu.Unlock()
	return st
}

// Close closes every member session (waiting for async drains), waits
// for any in-flight StopAll closer, and returns the final aggregated
// status. Close is idempotent; members added afterwards are rejected.
func (f *Fleet) Close() Status {
	f.mu.Lock()
	f.closed = true
	members := make([]*Member, len(f.members))
	copy(members, f.members)
	f.mu.Unlock()
	for _, m := range members {
		m.sess.Close()
	}
	f.wg.Wait()
	return f.Status()
}

// Handler serves the fleet over HTTP:
//
//	/metrics  Prometheus text format (JSON with ?format=json)
//	/status   the aggregated fleet Status as JSON
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", f.reg.Handler())
	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(f.Status())
	})
	return mux
}
