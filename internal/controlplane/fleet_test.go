package controlplane

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"otm/internal/core"
	"otm/internal/history"
	"otm/internal/monitor"
	"otm/internal/stm"
	"otm/internal/stm/tl2"
	"otm/internal/storage"
)

// opaqueStream returns n read-own-write commits, each a fresh
// transaction — trivially opaque, cheap to check.
func opaqueStream(n int) history.History {
	b := history.NewBuilder()
	for i := 1; i <= n; i++ {
		tx := history.TxID(i)
		b.Write(tx, "x", i).Read(tx, "x", i).Commits(tx)
	}
	return b.MustHistory()
}

func scrape(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	res, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", path, res.StatusCode, body)
	}
	return string(body)
}

// TestFleetAggregationAndMetrics: two members fed opaque streams
// aggregate into an opaque fleet status with summed counters, and the
// handler exposes both the per-session samples and the fleet families.
func TestFleetAggregationAndMetrics(t *testing.T) {
	f, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Add("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Add("b")
	if err != nil {
		t.Fatal(err)
	}
	ha, hb := opaqueStream(8), opaqueStream(4)
	for _, ev := range ha {
		a.Append(ev)
	}
	for _, ev := range hb {
		b.Append(ev)
	}
	st := f.Close()
	if st.Sessions != 2 || st.Fleet != monitor.StatusOpaque || st.Violations != 0 || st.First != nil {
		t.Fatalf("status %+v, want 2 opaque sessions, no violations", st)
	}
	if want := len(ha) + len(hb); st.Events != want || st.Checked != want {
		t.Fatalf("events %d checked %d, want %d", st.Events, st.Checked, want)
	}
	if len(st.PerSession) != 2 || st.PerSession[0].Name != "a" || st.PerSession[1].Name != "b" {
		t.Fatalf("per-session %+v", st.PerSession)
	}
	if st.PerSession[0].Events != len(ha) || st.PerSession[1].Events != len(hb) {
		t.Fatalf("per-session events %d/%d, want %d/%d",
			st.PerSession[0].Events, st.PerSession[1].Events, len(ha), len(hb))
	}
	if st.UptimeSecs <= 0 || st.HeapBytes == 0 {
		t.Errorf("uptime %v heap %d, want both positive", st.UptimeSecs, st.HeapBytes)
	}

	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	prom := scrape(t, srv, "/metrics")
	for _, want := range []string{
		fmt.Sprintf(`otm_monitor_events_total{session="a"} %d`, len(ha)),
		fmt.Sprintf(`otm_monitor_events_total{session="b"} %d`, len(hb)),
		`otm_monitor_status{session="a"} 0`,
		"otm_fleet_sessions 2",
		fmt.Sprintf("otm_fleet_events_total %d", len(ha)+len(hb)),
		"otm_fleet_status 0",
		"otm_fleet_violations_total 0",
		"# TYPE otm_monitor_events_total counter",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q\n%s", want, prom)
		}
	}
	var status struct {
		Sessions    int    `json:"sessions"`
		FleetStatus string `json:"fleet_status"`
		Events      int    `json:"events"`
		PerSession  []struct {
			Name string `json:"name"`
		} `json:"per_session"`
	}
	if err := json.Unmarshal([]byte(scrape(t, srv, "/status")), &status); err != nil {
		t.Fatal(err)
	}
	if status.Sessions != 2 || status.FleetStatus != "opaque" || status.Events != len(ha)+len(hb) || len(status.PerSession) != 2 {
		t.Fatalf("/status %+v", status)
	}
}

// TestFleetViolationCapture: a zombie stream in one member latches the
// fleet's first violation, captures a replayable artifact through the
// mem:// store, and leaves the other member monitoring (StopOne). The
// artifact re-confirms offline.
func TestFleetViolationCapture(t *testing.T) {
	var notified []ViolationRecord
	f, err := New(Options{
		ArtifactsURI: "mem://fleet-test-capture",
		OnViolation:  func(_ string, r ViolationRecord) { notified = append(notified, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := f.Add("bad")
	if err != nil {
		t.Fatal(err)
	}
	good, err := f.Add("good")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range zombieHistory() {
		bad.Append(ev)
	}
	// StopOne: the healthy member keeps checking after the violation.
	hg := opaqueStream(3)
	for _, ev := range hg {
		good.Append(ev)
	}
	st := f.Close()
	if st.Fleet != monitor.StatusViolated || st.Violations != 1 || st.First == nil {
		t.Fatalf("status %+v, want one latched violation", st)
	}
	first := *st.First
	if first.Session != "bad" || first.Seq != 0 || first.PrefixLen != 10 || !first.Diagnosed {
		t.Fatalf("first violation %+v", first)
	}
	if first.CaptureErr != "" {
		t.Fatalf("capture failed: %s", first.CaptureErr)
	}
	if first.Artifact != "violations/000-bad.hist" {
		t.Fatalf("artifact name %q", first.Artifact)
	}
	if len(notified) != 1 || notified[0].Artifact != first.Artifact {
		t.Fatalf("OnViolation calls %+v", notified)
	}
	if got := good.Verdict(); got.Status != monitor.StatusOpaque || got.Events != len(hg) {
		t.Fatalf("healthy member perturbed: %+v", got)
	}

	// Round trip through storage: parse, replay, confirm.
	fsys, err := storage.Resolve("mem://fleet-test-capture")
	if err != nil {
		t.Fatal(err)
	}
	rc, err := fsys.Open(first.Artifact)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	a, err := ParseArtifact(rc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Session != "bad" || !a.Replayable {
		t.Fatalf("artifact %+v", a)
	}
	out, err := a.Replay(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Confirmed() {
		t.Fatalf("offline replay disagrees with the online monitor: %+v", out)
	}
}

// TestFleetStopAll: one member's violation closes the rest of the fleet.
func TestFleetStopAll(t *testing.T) {
	f, err := New(Options{Stop: StopAll})
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := f.Add("bad")
	good, _ := f.Add("good")
	for _, ev := range opaqueStream(2) {
		good.Append(ev)
	}
	before := good.Stats().Events
	for _, ev := range zombieHistory() {
		bad.Append(ev)
	}
	// The stop is asynchronous; Close waits for it, and afterwards the
	// healthy member must ignore further events (closed sessions do).
	st := f.Close()
	if st.Fleet != monitor.StatusViolated {
		t.Fatalf("status %+v", st)
	}
	good.Append(history.TryC(history.TxID(99)))
	if got := good.Stats().Events; got != before {
		t.Errorf("member accepted events after StopAll close: %d -> %d", before, got)
	}
}

func TestFleetAddErrors(t *testing.T) {
	f, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Add(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := f.Add("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Add("a"); err == nil {
		t.Error("duplicate name accepted")
	}
	f.Close()
	if _, err := f.Add("b"); err == nil {
		t.Error("add after Close accepted")
	}
	if _, err := New(Options{ArtifactsURI: "bogus://x"}); err == nil {
		t.Error("bogus artifacts URI accepted")
	}
}

// TestFleetAttachRecorder drives member sessions from live tl2 engines
// through recorder taps — the production wiring — and scrapes /metrics
// concurrently under -race. The fleet must come out opaque with every
// recorded event accounted for.
func TestFleetAttachRecorder(t *testing.T) {
	f, err := New(Options{Monitor: monitor.Options{Mode: monitor.Async, Buffer: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	const shards, goroutines, txPerG, k = 4, 4, 25, 4
	recs := make([]*stm.Recorder, shards)
	for i := range recs {
		recs[i] = stm.NewRecorder(tl2.New(k))
		if _, err := f.Attach(fmt.Sprintf("shard-%d", i), recs[i]); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := srv.Client().Get(srv.URL + "/metrics")
			if err == nil {
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
			}
			f.Status()
		}
	}()

	var wg sync.WaitGroup
	for s, rec := range recs {
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(s, g int, rec *stm.Recorder) {
				defer wg.Done()
				for i := 0; i < txPerG; i++ {
					err := stm.Atomically(rec, func(tx stm.Tx) error {
						if _, err := tx.Read((g + i) % k); err != nil {
							return err
						}
						return tx.Write(g%k, g*1000+i)
					})
					if err != nil {
						t.Errorf("shard %d g%d tx %d: %v", s, g, i, err)
						return
					}
				}
			}(s, g, rec)
		}
	}
	wg.Wait()
	for _, rec := range recs {
		rec.Tap(nil)
	}
	st := f.Close()
	close(stop)
	scrapeWG.Wait()
	if st.Fleet != monitor.StatusOpaque {
		t.Fatalf("fleet status %+v", st)
	}
	var recorded int
	for _, rec := range recs {
		recorded += len(rec.History())
	}
	if st.Events != recorded || st.Checked != recorded || st.Dropped != 0 {
		t.Fatalf("fleet saw %d/%d events, recorders logged %d", st.Events, st.Checked, recorded)
	}
}

// TestScrapePerturbation measures (and logs) the throughput cost of
// scraping a live 8-session fleet: the same fixed workload is timed with
// no scraper and with a tight scrape loop. Informational — thresholds
// on shared CI timing would flake — but the measured overhead on an
// idle machine is the README number.
func TestScrapePerturbation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	// Truncation keeps the per-event check cost bounded, so the
	// measurement reflects steady-state monitoring rather than an
	// ever-growing witness replay.
	const sessions, events = 8, 1800
	run := func(scraping bool) float64 {
		f, err := New(Options{Monitor: monitor.Options{TruncateAfterEvents: 64}})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(f.Handler())
		defer srv.Close()
		members := make([]*Member, sessions)
		for i := range members {
			m, err := f.Add(fmt.Sprintf("s%d", i))
			if err != nil {
				t.Fatal(err)
			}
			members[i] = m
		}
		stop := make(chan struct{})
		var scrapeWG sync.WaitGroup
		if scraping {
			scrapeWG.Add(1)
			go func() {
				defer scrapeWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					res, err := srv.Client().Get(srv.URL + "/metrics")
					if err == nil {
						io.Copy(io.Discard, res.Body)
						res.Body.Close()
					}
				}
			}()
		}
		h := opaqueStream(events / 4)
		start := time.Now()
		var wg sync.WaitGroup
		for _, m := range members {
			wg.Add(1)
			go func(m *Member) {
				defer wg.Done()
				for _, ev := range h {
					m.Append(ev)
				}
			}(m)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(stop)
		scrapeWG.Wait()
		st := f.Close()
		if st.Fleet != monitor.StatusOpaque {
			t.Fatalf("fleet status %+v", st)
		}
		return float64(st.Events) / elapsed.Seconds()
	}
	run(false) // warm up spec/search paths
	quiet := run(false)
	scraped := run(true)
	t.Logf("events/s: %.0f unscraped, %.0f under scrape (%.2f%% delta)",
		quiet, scraped, 100*(quiet-scraped)/quiet)
}

// BenchmarkFleetScrape prices one /metrics render of an 8-member fleet.
func BenchmarkFleetScrape(b *testing.B) {
	f, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		m, err := f.Add(fmt.Sprintf("s%d", i))
		if err != nil {
			b.Fatal(err)
		}
		for _, ev := range opaqueStream(16) {
			m.Append(ev)
		}
	}
	reg := f.Registry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFleetAccessors covers the small introspection surface: policy
// names, the shared registry, member identity and per-member close.
func TestFleetAccessors(t *testing.T) {
	if got := StopOne.String(); got != "stop-one" {
		t.Errorf("StopOne.String() = %q", got)
	}
	if got := StopAll.String(); got != "stop-all" {
		t.Errorf("StopAll.String() = %q", got)
	}
	f, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Registry() == nil {
		t.Fatal("nil fleet registry")
	}
	m, err := f.Add("solo")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "solo" {
		t.Errorf("Name() = %q", m.Name())
	}
	if m.Session() == nil {
		t.Fatal("nil member session")
	}
	for _, ev := range opaqueStream(2) {
		m.Append(ev)
	}
	v := m.Close()
	if v.Status != monitor.StatusOpaque || v.Events != 12 {
		t.Fatalf("member verdict %+v", v)
	}
	if st := f.Status(); st.FleetStatus != "opaque" {
		t.Fatalf("fleet status %q after clean member close", st.FleetStatus)
	}
}
