package controlplane

import (
	"bytes"
	"strings"
	"testing"

	"otm/internal/core"
	"otm/internal/history"
	"otm/internal/monitor"
)

// zombieHistory is the §2 schedule: T1 reads x=0, T2 commits x=1,y=1,
// then T1 reads y=1 — a zombie read no serialization explains, flagged
// at the final response event with T1 implicated.
func zombieHistory() history.History {
	return history.History{
		history.Inv(1, "x", "read", nil), history.Ret(1, "x", "read", 0),
		history.Inv(2, "x", "write", 1), history.Ret(2, "x", "write", history.OK),
		history.Inv(2, "y", "write", 1), history.Ret(2, "y", "write", history.OK),
		history.TryC(2), history.Commit(2),
		history.Inv(1, "y", "read", nil), history.Ret(1, "y", "read", 1),
	}.MustWellFormed()
}

// captureZombie runs the zombie schedule through a session and returns
// the Violation its OnViolation callback delivered.
func captureZombie(t *testing.T) monitor.Violation {
	t.Helper()
	var got *monitor.Violation
	s := monitor.New(monitor.Options{
		OnViolation: func(v monitor.Violation) { got = &v },
	})
	for _, ev := range zombieHistory() {
		s.Append(ev)
	}
	s.Close()
	if got == nil {
		t.Fatal("zombie schedule produced no violation")
	}
	return *got
}

// TestArtifactRoundTrip is the satellite contract end to end: inject a
// zombie, capture the violation as an artifact, decode the bytes back,
// and replay offline — the fresh diagnosis must re-derive the same
// verdict, position and culprit set.
func TestArtifactRoundTrip(t *testing.T) {
	v := captureZombie(t)
	a := NewArtifact("shard-0", v)
	if !a.Replayable {
		t.Fatalf("untruncated capture not replayable: %+v", a)
	}
	if a.PrefixLen != 10 {
		t.Errorf("PrefixLen = %d, want 10", a.PrefixLen)
	}

	enc := a.Encode()
	back, err := ParseArtifact(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("ParseArtifact: %v\nartifact:\n%s", err, enc)
	}
	if back.Session != "shard-0" || back.PrefixLen != a.PrefixLen ||
		back.Event != a.Event || back.Diagnosed != a.Diagnosed ||
		back.Replayable != a.Replayable {
		t.Fatalf("decoded %+v, want %+v", back, a)
	}
	if len(back.Culprits) != len(a.Culprits) {
		t.Fatalf("culprits %v, want %v", back.Culprits, a.Culprits)
	}
	for i := range back.Culprits {
		if back.Culprits[i] != a.Culprits[i] {
			t.Fatalf("culprits %v, want %v", back.Culprits, a.Culprits)
		}
	}
	if back.History.String() != a.History.String() {
		t.Fatalf("history %q, want %q", back.History.String(), a.History.String())
	}

	out, err := back.Replay(core.Config{})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !out.Confirmed() {
		t.Fatalf("replay did not confirm: %+v (diagnosis %+v)", out, out.Diagnosis)
	}
	if out.Diagnosis.Opaque {
		t.Fatal("replay found the history opaque")
	}
}

// TestArtifactReEncodeStable: Encode ∘ ParseArtifact is the identity on
// the wire format.
func TestArtifactReEncodeStable(t *testing.T) {
	v := captureZombie(t)
	enc := NewArtifact("s", v).Encode()
	back, err := ParseArtifact(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if again := back.Encode(); !bytes.Equal(enc, again) {
		t.Fatalf("re-encode drifted:\n%s\nvs\n%s", enc, again)
	}
}

// TestArtifactIsCorpusFile: the artifact's history line stands alone —
// any corpus tooling that strips # comments can parse and re-check it.
func TestArtifactIsCorpusFile(t *testing.T) {
	v := captureZombie(t)
	var histLine string
	for _, line := range strings.Split(string(NewArtifact("s", v).Encode()), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			if histLine != "" {
				t.Fatalf("more than one non-comment line")
			}
			histLine = line
		}
	}
	h, err := history.Parse(histLine)
	if err != nil {
		t.Fatalf("history line not parseable: %v", err)
	}
	r, err := core.Check(h, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Opaque {
		t.Fatal("corpus check found the captured history opaque")
	}
}

func TestParseArtifactErrors(t *testing.T) {
	cases := map[string]string{
		"wrong version":  "# some other file v9\nC1\n",
		"no version":     "r1(x)->0\n",
		"empty":          "",
		"no history":     "# otm-violation-artifact v1\n# session: s\n",
		"two histories":  "# otm-violation-artifact v1\ntryC1 C1\ntryC2 C2\n",
		"bad prefix-len": "# otm-violation-artifact v1\n# prefix-len: many\ntryC1 C1\n",
		"bad culprits":   "# otm-violation-artifact v1\n# culprits: X9\ntryC1 C1\n",
		"bad history":    "# otm-violation-artifact v1\nnot a history\n",
	}
	for name, in := range cases {
		if _, err := ParseArtifact(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ParseArtifact accepted %q", name, in)
		}
	}
}

// TestReplayRefusesTruncated: an artifact whose capturing session
// truncated before the violation holds only the live suffix, so Replay
// must refuse rather than re-check from the wrong initial state.
func TestReplayRefusesTruncated(t *testing.T) {
	v := captureZombie(t)
	a := NewArtifact("s", v)
	a.Replayable = false
	if _, err := a.Replay(core.Config{}); err == nil {
		t.Fatal("Replay accepted a non-replayable artifact")
	}
	// And the flag survives the wire format.
	back, err := ParseArtifact(bytes.NewReader(a.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Replayable {
		t.Fatal("replayable flag lost in encoding")
	}
}

// TestReplayDetectsTampering: an artifact whose recorded culprit set no
// longer matches the fresh diagnosis must not confirm.
func TestReplayDetectsTampering(t *testing.T) {
	v := captureZombie(t)
	a := NewArtifact("s", v)
	a.Culprits = []history.TxID{99}
	out, err := a.Replay(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.CulpritsMatch || out.Confirmed() {
		t.Fatalf("tampered culprits confirmed: %+v", out)
	}
	// An undiagnosed capture has no culprit set to compare; the verdict
	// position alone decides confirmation.
	b := NewArtifact("s", v)
	b.Diagnosed = false
	b.Culprits = nil
	out, err = b.Replay(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.CulpritsMatch || !out.VerdictMatches {
		t.Fatalf("undiagnosed replay: %+v", out)
	}
}
