package bench

import (
	"strings"
	"testing"
)

// TestTheorem3Shape is experiment E9 as an assertion: per-operation step
// cost must grow linearly in k for the progressive single-version
// invisible-read engine (dstm) and stay flat (or k-independent) for every
// escape hatch the paper lists.
func TestTheorem3Shape(t *testing.T) {
	const kSmall, kBig = 32, 256 // 8× object count
	for _, e := range Engines() {
		small, err := StepsForNextRead(e, kSmall)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		big, err := StepsForNextRead(e, kBig)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		ratio := float64(big) / float64(small)
		if e.Name == "dstm" || e.Name == "tl2x" {
			// Linear growth in the conflict scenario: dstm validates on
			// every operation, tl2x pays the same Θ(r) cost as a
			// snapshot extension when the conflict actually hits.
			if ratio < 4 {
				t.Errorf("%s: steps %d→%d (ratio %.1f); expected Ω(k) growth", e.Name, small, big, ratio)
			}
			if big < int64(kBig)/2 {
				t.Errorf("%s: %d steps at k=%d; expected ≥ k/2", e.Name, big, kBig)
			}
		} else {
			// O(1) or k-independent: ratio must stay near 1.
			if ratio > 2 {
				t.Errorf("%s: steps %d→%d (ratio %.1f); expected k-independent cost", e.Name, small, big, ratio)
			}
		}
	}
}

// TestTightnessQuadratic is experiment E10: a full k-object scan costs
// Θ(k²) on dstm and Θ(k) on the O(1)-per-op engines.
func TestTightnessQuadratic(t *testing.T) {
	const kSmall, kBig = 32, 128 // 4× object count
	for _, e := range Engines() {
		small, err := FullScanSteps(e, kSmall)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		big, err := FullScanSteps(e, kBig)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		ratio := float64(big) / float64(small)
		if e.Name == "dstm" {
			// Quadratic: 4× objects ⇒ ≈16× steps. (tl2x stays linear on
			// a conflict-free scan — its Θ(r) cost is conditional.)
			if ratio < 8 {
				t.Errorf("dstm: scan %d→%d (ratio %.1f); expected Θ(k²)", small, big, ratio)
			}
		} else {
			// Linear total: 4× objects ⇒ ≈4× steps.
			if ratio > 6 {
				t.Errorf("%s: scan %d→%d (ratio %.1f); expected Θ(k)", e.Name, small, big, ratio)
			}
		}
	}
}

// TestNonProgressiveAbortInScenario documents E11: in the Theorem 3
// scenario TL2's measured operation is an abort (conflict with a
// completed transaction), while dstm's read succeeds.
func TestNonProgressiveAbortInScenario(t *testing.T) {
	// Run the scenario manually for the two engines.
	run := func(name string) (aborted bool) {
		e, err := EngineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		const k = 16
		tm := e.New(k)
		t1 := tm.Begin()
		for i := 0; i < k/2; i++ {
			if _, err := t1.Read(i); err != nil {
				t.Fatalf("%s: priming read aborted", name)
			}
		}
		t2 := tm.Begin()
		if err := t2.Write(k-1, 1); err != nil {
			t.Fatal(err)
		}
		if err := t2.Commit(); err != nil {
			t.Fatal(err)
		}
		_, err = t1.Read(k - 1)
		t1.Abort()
		return err != nil
	}
	if run("tl2") != true {
		t.Error("tl2 must abort the reader (not progressive)")
	}
	if run("dstm") != false {
		t.Error("dstm must serve the read (progressive: no live conflict)")
	}
	if run("mvstm") != false {
		t.Error("mvstm must serve the old snapshot")
	}
	if run("gatm") != false {
		t.Error("gatm must serve the (zombie) read")
	}
	if run("sistm") != false {
		t.Error("sistm must serve the old snapshot")
	}
}

func TestEngineDescriptors(t *testing.T) {
	es := Engines()
	if len(es) != 7 {
		t.Fatalf("%d engines, want 7", len(es))
	}
	names := map[string]Engine{}
	for _, e := range es {
		names[e.Name] = e
		tm := e.New(4)
		if tm.Len() != 4 {
			t.Errorf("%s: Len=%d", e.Name, tm.Len())
		}
		if !strings.Contains(tm.Name(), e.Name) {
			t.Errorf("descriptor %q vs engine %q", e.Name, tm.Name())
		}
	}
	// The lower bound triple: only dstm has all three properties (and is
	// opaque); every other engine negates at least one.
	d := names["dstm"]
	if !(d.SingleVersion && d.InvisibleReads && d.Progressive && d.Opaque) {
		t.Error("dstm must have all three lower-bound properties and opacity")
	}
	for name, e := range names {
		if name == "dstm" {
			continue
		}
		if e.SingleVersion && e.InvisibleReads && e.Progressive && e.Opaque {
			t.Errorf("%s claims all lower-bound properties; Theorem 3 says its ops cannot be o(k)", name)
		}
	}
	if _, err := EngineByName("nope"); err == nil {
		t.Error("unknown engine must error")
	}
}

func TestStepsForNextReadValidation(t *testing.T) {
	e, _ := EngineByName("dstm")
	if _, err := StepsForNextRead(e, 1); err == nil {
		t.Error("k<2 must be rejected")
	}
}

func TestManagedEngine(t *testing.T) {
	if len(Managers()) != 4 {
		t.Fatalf("%d managers, want 4", len(Managers()))
	}
	for _, engine := range []string{"dstm", "vstm"} {
		for _, mgr := range Managers() {
			e, err := ManagedEngine(engine, mgr)
			if err != nil {
				t.Fatal(err)
			}
			if e.Name != engine+"/"+mgr.Name() {
				t.Errorf("descriptor name %q", e.Name)
			}
			// Smoke: the managed engine works end to end.
			r := Throughput(e, 8, 2, 10, 3, 0.5)
			if r.Commits != 20 {
				t.Errorf("%s: commits=%d", e.Name, r.Commits)
			}
		}
	}
	if _, err := ManagedEngine("tl2", Managers()[0]); err == nil {
		t.Error("tl2 takes no contention manager")
	}
	if _, err := ManagedEngine("nope", Managers()[0]); err == nil {
		t.Error("unknown engine must error")
	}
}

func TestFullScanStepsErrorPaths(t *testing.T) {
	// An engine whose reads abort must surface an error from the scan.
	e, _ := EngineByName("tl2")
	// Normal path first.
	if _, err := FullScanSteps(e, 4); err != nil {
		t.Fatalf("clean scan errored: %v", err)
	}
}

func TestEngineNames(t *testing.T) {
	for _, e := range Engines() {
		tm := e.New(2)
		if tm.Name() == "" {
			t.Errorf("%s: empty engine name", e.Name)
		}
	}
}

func TestThroughputSmoke(t *testing.T) {
	for _, e := range Engines() {
		r := Throughput(e, 32, 4, 20, 4, 0.9)
		if r.Commits != 4*20 {
			t.Errorf("%s: commits=%d", e.Name, r.Commits)
		}
		if r.OpsPerSec() <= 0 {
			t.Errorf("%s: nonpositive throughput", e.Name)
		}
		if r.AbortRate() < 0 || r.AbortRate() >= 1 {
			t.Errorf("%s: abort rate %f", e.Name, r.AbortRate())
		}
	}
	var zero ThroughputResult
	if zero.OpsPerSec() != 0 || zero.AbortRate() != 0 {
		t.Error("zero-value result accessors")
	}
}
