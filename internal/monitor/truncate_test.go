package monitor_test

import (
	"testing"

	"otm/internal/core"
	"otm/internal/gen"
	"otm/internal/history"
	"otm/internal/monitor"
)

// TestAutoTruncationBoundsState: with truncation armed, a long
// well-behaved sequential run stays opaque while the session holds only
// a bounded live suffix — the checkpoint counters account for every
// event.
func TestAutoTruncationBoundsState(t *testing.T) {
	b := history.NewBuilder()
	for i := 1; i <= 300; i++ {
		tx := history.TxID(i)
		b.Write(tx, "x", i).Read(tx, "x", i).Commits(tx)
	}
	h := b.MustHistory()
	s := monitor.New(monitor.Options{TruncateAfterEvents: 12})
	maxLive := 0
	for _, ev := range h {
		if v := s.Append(ev); v.LiveEvents > maxLive {
			maxLive = v.LiveEvents
		}
	}
	v := s.Close()
	if v.Status != monitor.StatusOpaque {
		t.Fatalf("verdict %+v", v)
	}
	if v.Checkpoints == 0 {
		t.Fatal("no checkpoints on a run far past the truncation threshold")
	}
	if v.TruncatedEvents+v.LiveEvents != v.Checked {
		t.Errorf("counters do not add up: truncated %d + live %d != checked %d",
			v.TruncatedEvents, v.LiveEvents, v.Checked)
	}
	// The threshold is checked per event and every transaction boundary
	// is quiescent here, so the live suffix never grows far past it.
	if maxLive > 18 {
		t.Errorf("live suffix reached %d events with TruncateAfterEvents=12", maxLive)
	}
	if got := len(s.History()); got != v.LiveEvents {
		t.Errorf("History() holds %d events, verdict says %d live", got, v.LiveEvents)
	}
}

// TestTruncateAfterTxs: the transaction-count threshold triggers
// truncation too.
func TestTruncateAfterTxs(t *testing.T) {
	b := history.NewBuilder()
	for i := 1; i <= 40; i++ {
		tx := history.TxID(i)
		b.Write(tx, "x", i).Commits(tx)
	}
	s := monitor.New(monitor.Options{TruncateAfterTxs: 4})
	for _, ev := range b.MustHistory() {
		s.Append(ev)
	}
	v := s.Close()
	if v.Status != monitor.StatusOpaque || v.Checkpoints == 0 {
		t.Fatalf("verdict %+v, want opaque with checkpoints", v)
	}
}

// TestTruncatedSessionCatchesViolation: a violation after several
// checkpoints is flagged at the correct global prefix length, with the
// live suffix as evidence and a diagnosis naming the culprit.
func TestTruncatedSessionCatchesViolation(t *testing.T) {
	b := history.NewBuilder()
	for i := 1; i <= 50; i++ {
		tx := history.TxID(i)
		b.Write(tx, "x", i).Commits(tx)
	}
	h := b.MustHistory()
	s := monitor.New(monitor.Options{TruncateAfterEvents: 8})
	for _, ev := range h {
		s.Append(ev)
	}
	if v := s.Verdict(); v.Checkpoints == 0 {
		t.Fatalf("prelude produced no checkpoints: %+v", v)
	}
	// T100 reads a value no serialization can produce.
	bad := history.History{
		history.Inv(100, "x", "read", nil), history.Ret(100, "x", "read", 999),
	}
	for _, ev := range bad {
		s.Append(ev)
	}
	v := s.Close()
	if v.Status != monitor.StatusViolated {
		t.Fatalf("verdict %+v, want violated", v)
	}
	if want := len(h) + len(bad); v.PrefixLen != want {
		t.Errorf("PrefixLen = %d, want the global position %d", v.PrefixLen, want)
	}
	viol := s.Violation()
	if viol == nil {
		t.Fatal("no violation recorded")
	}
	if viol.Event.Tx != 100 {
		t.Errorf("violating event %v, want T100's read", viol.Event)
	}
	if len(viol.Prefix) == 0 || len(viol.Prefix) >= len(h) {
		t.Errorf("violation snapshot holds %d events, want the live suffix only", len(viol.Prefix))
	}
	if !viol.Diagnosed {
		t.Fatal("violation not diagnosed")
	}
	if len(viol.Diagnosis.Implicated) != 1 || viol.Diagnosis.Implicated[0] != 100 {
		t.Errorf("Implicated = %v, want [T100]", viol.Diagnosis.Implicated)
	}
}

// TestTruncatingSessionDifferential: the truncating session agrees with
// fresh one-shot Check calls on every prefix of every corpus history —
// same differential as TestSessionPrefixDifferential, with aggressive
// truncation thresholds forcing checkpoints mid-history.
func TestTruncatingSessionDifferential(t *testing.T) {
	n := 100
	if !testing.Short() {
		n = 400
	}
	hs := gen.Corpus(gen.Config{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.3, PLeaveLive: 0.25}, n, 13)
	checkpoints := 0
	for seed, h := range hs {
		want := -1
		for i := 1; i <= len(h); i++ {
			r, err := core.Check(h[:i], core.Config{})
			if err != nil {
				t.Fatalf("seed %d prefix %d: %v", seed, i, err)
			}
			if !r.Opaque {
				want = i
				break
			}
		}
		s := monitor.New(monitor.Options{TruncateAfterEvents: 1, DisableDiagnosis: true})
		var v monitor.Verdict
		for i, ev := range h {
			v = s.Append(ev)
			wantStatus := monitor.StatusOpaque
			if want != -1 && i+1 >= want {
				wantStatus = monitor.StatusViolated
			}
			if v.Status != wantStatus {
				t.Fatalf("seed %d after event %d: session %v, one-shot scan says %v (violation at %d, %d checkpoints):\n%s",
					seed, i, v.Status, wantStatus, want, v.Checkpoints, h.Format())
			}
			if v.Status == monitor.StatusViolated && v.PrefixLen != want {
				t.Fatalf("seed %d: session flags prefix %d, one-shot scan says %d", seed, v.PrefixLen, want)
			}
		}
		checkpoints += v.Checkpoints
		s.Close()
	}
	if checkpoints == 0 {
		t.Fatal("no corpus history ever truncated — the differential exercised nothing")
	}
}
