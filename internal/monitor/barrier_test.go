package monitor_test

import (
	"sync"
	"testing"
	"time"

	"otm/internal/history"
	"otm/internal/monitor"
	"otm/internal/stm"
	"otm/internal/stm/tl2"
)

// TestBarrierStallsAndReleases drives the admission barrier by hand:
// with one transaction open and the admitted stretch over the barrier,
// the gate blocks a new transaction start; completing the open
// transaction quiesces the stream and releases the gate.
func TestBarrierStallsAndReleases(t *testing.T) {
	s := monitor.New(monitor.Options{TruncateBarrier: 4})
	defer s.Close()
	gate := s.AdmissionGate()
	if gate == nil {
		t.Fatal("AdmissionGate is nil with TruncateBarrier armed")
	}

	// T1 stays open while more than TruncateBarrier events are admitted.
	s.Append(history.Inv(1, "x", "read", nil))
	s.Append(history.Ret(1, "x", "read", 0))
	s.Append(history.Inv(1, "y", "read", nil))
	s.Append(history.Ret(1, "y", "read", 0))
	s.Append(history.Inv(1, "x", "read", nil))
	s.Append(history.Ret(1, "x", "read", 0))

	passed := make(chan struct{})
	go func() {
		gate()
		close(passed)
	}()
	select {
	case <-passed:
		t.Fatal("gate passed with the barrier tripped and a transaction open")
	case <-time.After(50 * time.Millisecond):
	}

	// Completing T1 quiesces the stream at this position; the gate must
	// release even though the checker has not truncated yet.
	s.Append(history.TryC(1))
	s.Append(history.Commit(1))
	select {
	case <-passed:
	case <-time.After(5 * time.Second):
		t.Fatal("gate still blocked after the open transaction completed")
	}
	if st := s.Stats(); st.BarrierStalls != 1 || st.BarrierWaitNanos <= 0 {
		t.Fatalf("stall accounting: %+v", st)
	}
}

// TestBarrierGateUnarmed: no barrier, no gate.
func TestBarrierGateUnarmed(t *testing.T) {
	s := monitor.New(monitor.Options{})
	defer s.Close()
	if s.AdmissionGate() != nil {
		t.Fatal("AdmissionGate armed without TruncateBarrier")
	}
}

// TestBarrierReleaseOnClose: Close must wake a gated starter so a
// shutdown never hangs behind the barrier.
func TestBarrierReleaseOnClose(t *testing.T) {
	s := monitor.New(monitor.Options{TruncateBarrier: 2})
	gate := s.AdmissionGate()
	s.Append(history.Inv(1, "x", "read", nil))
	s.Append(history.Ret(1, "x", "read", 0))
	s.Append(history.Inv(1, "y", "read", nil))

	passed := make(chan struct{})
	go func() {
		gate()
		close(passed)
	}()
	select {
	case <-passed:
		t.Fatal("gate passed with the barrier tripped")
	case <-time.After(50 * time.Millisecond):
	}
	s.Close()
	select {
	case <-passed:
	case <-time.After(5 * time.Second):
		t.Fatal("gate still blocked after Close")
	}
}

// TestBarrierBoundsLiveSuffix is the end-to-end property the barrier
// exists for: a continuously concurrent workload — goroutines issuing
// transactions back to back, which on its own almost never quiesces —
// monitored with the barrier armed keeps truncating, stays opaque, and
// ends with a bounded live suffix instead of the whole run.
func TestBarrierBoundsLiveSuffix(t *testing.T) {
	rec := stm.NewRecorder(tl2.New(4))
	s := monitor.Attach(rec, monitor.Options{
		Mode:                monitor.Async,
		TruncateAfterEvents: 64,
		TruncateBarrier:     256,
	})
	const goroutines, txPerG = 4, 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < txPerG; i++ {
				stm.Atomically(rec, func(tx stm.Tx) error {
					v, err := tx.Read(i % 4)
					if err != nil {
						return err
					}
					return tx.Write((i+1)%4, v+g)
				})
			}
		}(g)
	}
	wg.Wait()
	v := s.Close()
	if v.Status != monitor.StatusOpaque {
		t.Fatalf("verdict %s (err %v), want opaque", v.Status, v.Err)
	}
	if v.Checkpoints == 0 {
		t.Fatal("no truncation checkpoints under the barrier")
	}
	// The suffix may legitimately exceed the barrier by the queue
	// backlog and the transactions admitted between release and re-trip,
	// but it must not approach the full run.
	if v.LiveEvents > v.Events/2 {
		t.Fatalf("live suffix %d of %d events: barrier did not bound retained state", v.LiveEvents, v.Events)
	}
	st := s.Stats()
	if st.BarrierWaitNanos < 0 {
		t.Fatalf("negative barrier wait: %+v", st)
	}
}
