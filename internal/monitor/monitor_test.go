package monitor_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"otm/internal/core"
	"otm/internal/gen"
	"otm/internal/history"
	"otm/internal/monitor"
	"otm/internal/stm"
	"otm/internal/stm/gatm"
	"otm/internal/stm/tl2"
)

// zombieHistory is the §2 inconsistent-snapshot stream: T1 reads x=0,
// T2 commits x=1 and y=1, T1 reads y=1 — non-opaque at T1's second read
// (event 10): no serialization explains x=0 together with y=1.
func zombieHistory() history.History {
	return history.History{
		history.Inv(1, "x", "read", nil), history.Ret(1, "x", "read", 0),
		history.Inv(2, "x", "write", 1), history.Ret(2, "x", "write", history.OK),
		history.Inv(2, "y", "write", 1), history.Ret(2, "y", "write", history.OK),
		history.TryC(2), history.Commit(2),
		history.Inv(1, "y", "read", nil), history.Ret(1, "y", "read", 1),
	}.MustWellFormed()
}

// TestSyncCatchesViolation: a sync session flags the zombie read at the
// exact event, diagnoses the culpable transaction, and fires
// OnViolation exactly once; the verdict then latches.
func TestSyncCatchesViolation(t *testing.T) {
	var calls atomic.Int32
	s := monitor.New(monitor.Options{
		OnViolation: func(v monitor.Violation) { calls.Add(1) },
	})
	h := zombieHistory()
	var v monitor.Verdict
	for i, ev := range h {
		v = s.Append(ev)
		if i < 9 && v.Status != monitor.StatusOpaque {
			t.Fatalf("event %d: status %v before the violating read", i, v.Status)
		}
	}
	if v.Status != monitor.StatusViolated || v.PrefixLen != 10 {
		t.Fatalf("verdict %+v, want VIOLATED at prefix 10", v)
	}
	viol := s.Violation()
	if viol == nil {
		t.Fatal("no violation recorded")
	}
	if viol.Event.Kind != history.KindRet || viol.Event.Tx != 1 {
		t.Errorf("culpable event %v, want T1's ret", viol.Event)
	}
	if !viol.Diagnosed {
		t.Fatal("violation not diagnosed")
	}
	if got := viol.Diagnosis.Implicated; len(got) != 1 || got[0] != 1 {
		t.Errorf("implicated %v, want [T1] (removing the zombie restores opacity)", got)
	}
	if calls.Load() != 1 {
		t.Errorf("OnViolation fired %d times, want 1", calls.Load())
	}
	// Latched: further events are counted, not checked.
	v = s.Append(history.TryC(1))
	if v.Status != monitor.StatusViolated || v.Events != 11 || v.Checked != 10 {
		t.Errorf("post-violation verdict %+v, want 11 events / 10 checked", v)
	}
	if got := s.Close(); got.Status != monitor.StatusViolated {
		t.Errorf("Close status %v", got.Status)
	}
}

// TestAsyncCatchesViolation: the same stream through an async session;
// Close drains and reports the violation.
func TestAsyncCatchesViolation(t *testing.T) {
	var calls atomic.Int32
	s := monitor.New(monitor.Options{
		Mode:        monitor.Async,
		OnViolation: func(monitor.Violation) { calls.Add(1) },
	})
	for _, ev := range zombieHistory() {
		s.Append(ev)
	}
	v := s.Close()
	if v.Status != monitor.StatusViolated || v.PrefixLen != 10 {
		t.Fatalf("final verdict %+v, want VIOLATED at prefix 10", v)
	}
	if calls.Load() != 1 {
		t.Errorf("OnViolation fired %d times, want 1", calls.Load())
	}
	if s.Violation() == nil || !s.Violation().Diagnosed {
		t.Error("missing or undiagnosed violation after Close")
	}
	// Appends after Close are ignored entirely.
	after := s.Append(history.TryC(1))
	if after.Events != v.Events {
		t.Errorf("post-Close append counted: %d events", after.Events)
	}
	if again := s.Close(); again.Status != monitor.StatusViolated {
		t.Errorf("second Close: %+v", again)
	}
}

// TestSessionPrefixDifferential is the satellite differential: every
// prefix of a 1k generated corpus through monitor sessions, cross-
// checked against fresh one-shot core.Check calls. The session must be
// opaque exactly while every prefix is opaque and must flag the
// violation at exactly the shortest non-opaque prefix.
func TestSessionPrefixDifferential(t *testing.T) {
	n := 150
	if !testing.Short() {
		n = 1000
	}
	hs := gen.Corpus(gen.Config{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.3, PLeaveLive: 0.25}, n, 11)
	violations := 0
	for seed, h := range hs {
		// Brute-force oracle: fresh Check on every prefix length.
		want := -1
		for i := 1; i <= len(h); i++ {
			r, err := core.Check(h[:i], core.Config{})
			if err != nil {
				t.Fatalf("seed %d prefix %d: %v", seed, i, err)
			}
			if !r.Opaque {
				want = i
				break
			}
		}
		s := monitor.New(monitor.Options{DisableDiagnosis: true})
		for i, ev := range h {
			v := s.Append(ev)
			wantStatus := monitor.StatusOpaque
			if want != -1 && i+1 >= want {
				wantStatus = monitor.StatusViolated
			}
			if v.Status != wantStatus {
				t.Fatalf("seed %d after event %d: session %v, one-shot scan says %v (violation at %d):\n%s",
					seed, i, v.Status, wantStatus, want, h.Format())
			}
			if v.Status == monitor.StatusViolated && v.PrefixLen != want {
				t.Fatalf("seed %d: session flags prefix %d, one-shot scan says %d", seed, v.PrefixLen, want)
			}
		}
		if want != -1 {
			violations++
		}
	}
	if min := n / 40; violations < min {
		t.Errorf("corpus produced only %d violating histories, want ≥%d for a meaningful differential", violations, min)
	}
}

// TestAttachOpaqueEngineConcurrent attaches monitors to a real engine
// driven by concurrent goroutines — the recorder-tap race test. tl2 is
// opaque, so every mode must certify the run; with Block there are no
// drops, so every recorded event must also be checked.
func TestAttachOpaqueEngineConcurrent(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts monitor.Options
	}{
		{"sync", monitor.Options{}},
		{"async-block", monitor.Options{Mode: monitor.Async}},
		{"async-drop", monitor.Options{Mode: monitor.Async, DropPolicy: monitor.Drop, Buffer: 4096}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const goroutines, txPerG, k = 6, 30, 4
			rec := stm.NewRecorder(tl2.New(k))
			s := monitor.Attach(rec, tc.opts)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < txPerG; i++ {
						err := stm.Atomically(rec, func(tx stm.Tx) error {
							if _, err := tx.Read((g + i) % k); err != nil {
								return err
							}
							return tx.Write(g%k, g*1000+i)
						})
						if err != nil {
							t.Errorf("g%d tx %d: %v", g, i, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			rec.Tap(nil)
			v := s.Close()
			switch v.Status {
			case monitor.StatusOpaque:
				if v.Checked != v.Events || v.Dropped != 0 {
					t.Errorf("opaque verdict with gaps: %+v", v)
				}
				if got := len(rec.History()); v.Events != got {
					t.Errorf("monitor saw %d events, recorder has %d", v.Events, got)
				}
			case monitor.StatusLossy:
				if tc.opts.DropPolicy != monitor.Drop {
					t.Errorf("lossy without Drop policy: %+v", v)
				}
				if v.Dropped == 0 {
					t.Errorf("lossy verdict with zero drops: %+v", v)
				}
			default:
				t.Errorf("tl2 run flagged: %+v (violation: %+v)", v, s.Violation())
			}
		})
	}
}

// TestAttachCatchesNonOpaqueEngine replays the §2 zombie schedule on
// gatm — the global-atomicity-only engine — under a live sync monitor:
// the violation must be flagged the moment the zombie read returns,
// while the reader transaction is still running.
func TestAttachCatchesNonOpaqueEngine(t *testing.T) {
	rec := stm.NewRecorder(gatm.New(2))
	var caught atomic.Int32
	s := monitor.Attach(rec, monitor.Options{
		OnViolation: func(v monitor.Violation) { caught.Add(1) },
	})

	t1 := rec.Begin()
	if _, err := t1.Read(0); err != nil {
		t.Fatal(err)
	}
	t2 := rec.Begin()
	if err := t2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if caught.Load() != 0 {
		t.Fatal("violation before the zombie read")
	}
	v, err := t1.Read(1) // the zombie read: gatm serves the new value
	if err != nil {
		t.Fatalf("gatm unexpectedly aborted the reader: %v", err)
	}
	if v != 1 {
		t.Fatalf("zombie read returned %d, want 1", v)
	}
	if caught.Load() != 1 {
		t.Fatalf("monitor missed the zombie read (caught=%d)", caught.Load())
	}
	verdict := s.Close()
	if verdict.Status != monitor.StatusViolated {
		t.Fatalf("verdict %+v", verdict)
	}
	viol := s.Violation()
	if !viol.Diagnosed {
		t.Fatal("violation not diagnosed")
	}
	if got := viol.Diagnosis.Implicated; len(got) != 1 || got[0] != 1 {
		t.Errorf("implicated %v, want [T1]", got)
	}
	t1.Abort()
}

// TestAsyncDropLatchesLossy: a 1-slot buffer with the Drop policy under
// a fast producer must drop (the drain checks each event under a lock
// while the producer appends unboundedly) and the session must say so
// rather than certify a gapped history.
func TestAsyncDropLatchesLossy(t *testing.T) {
	s := monitor.New(monitor.Options{Mode: monitor.Async, Buffer: 1, DropPolicy: monitor.Drop})
	b := history.NewBuilder()
	for i := 1; i <= 400; i++ {
		tx := history.TxID(i)
		b.Write(tx, "x", i).Commits(tx)
	}
	h := b.MustHistory()
	for _, ev := range h {
		s.Append(ev)
	}
	v := s.Close()
	if v.Dropped == 0 {
		t.Skip("drain outpaced the producer; drop path not exercised on this machine")
	}
	if v.Status != monitor.StatusLossy {
		t.Fatalf("status %v with %d drops, want lossy", v.Status, v.Dropped)
	}
	if v.Events != len(h) {
		t.Errorf("events %d, want %d (drops still counted)", v.Events, len(h))
	}
	if v.Checked >= v.Events {
		t.Errorf("checked %d of %d events despite drops", v.Checked, v.Events)
	}
}

// TestErrorStatus: an ill-formed event stream turns the session into
// StatusError with the latched error, not a panic or a silent pass.
func TestErrorStatus(t *testing.T) {
	s := monitor.New(monitor.Options{})
	s.Append(history.Inv(1, "x", "read", nil))
	v := s.Append(history.Inv(1, "y", "read", nil)) // second inv while pending
	if v.Status != monitor.StatusError || v.Err == nil {
		t.Fatalf("verdict %+v, want StatusError", v)
	}
	// Latched.
	v = s.Append(history.Ret(1, "x", "read", 0))
	if v.Status != monitor.StatusError || v.Events != 3 {
		t.Errorf("post-error verdict %+v", v)
	}
}

// TestSyncCloseIsFinal: a Sync session's Close verdict cannot change —
// events offered afterwards (e.g. by a still-recording engine whose tap
// was not detached) are ignored, and OnViolation can no longer fire.
func TestSyncCloseIsFinal(t *testing.T) {
	var calls atomic.Int32
	s := monitor.New(monitor.Options{OnViolation: func(monitor.Violation) { calls.Add(1) }})
	s.Append(history.Inv(1, "x", "write", 1))
	s.Append(history.Ret(1, "x", "write", history.OK))
	v := s.Close()
	if v.Status != monitor.StatusOpaque || v.Events != 2 {
		t.Fatalf("close verdict %+v", v)
	}
	// This read would be a violation (nobody committed a write of 7) —
	// but the session is closed, so it must not flip the verdict.
	after := s.Append(history.Inv(2, "x", "read", nil))
	after = s.Append(history.Ret(2, "x", "read", 7))
	if after.Status != monitor.StatusOpaque || after.Events != 2 || after.Checked != 2 {
		t.Fatalf("post-Close verdict changed: %+v", after)
	}
	if calls.Load() != 0 {
		t.Errorf("OnViolation fired %d times after Close", calls.Load())
	}
}

// TestNamesAndHistorySnapshot covers the presentation helpers the CLI
// table leans on, and the history snapshot accessor.
func TestNamesAndHistorySnapshot(t *testing.T) {
	for want, got := range map[string]string{
		"sync":     monitor.Sync.String(),
		"async":    monitor.Async.String(),
		"opaque":   monitor.StatusOpaque.String(),
		"VIOLATED": monitor.StatusViolated.String(),
		"lossy":    monitor.StatusLossy.String(),
		"error":    monitor.StatusError.String(),
		"unknown":  monitor.Status(42).String(),
	} {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	s := monitor.New(monitor.Options{})
	s.Append(history.Inv(1, "x", "read", nil))
	s.Append(history.Ret(1, "x", "read", 0))
	h := s.History()
	if len(h) != 2 || h.WellFormed() != nil {
		t.Errorf("History() = %v", h)
	}
	// The snapshot is independent of the session's ongoing appends.
	s.Append(history.TryC(1))
	if len(h) != 2 {
		t.Errorf("snapshot grew with the session: %v", h)
	}
}

// TestVerdictCountersOpaqueRun: on a clean run the bookkeeping adds up —
// every event checked, fast path carrying repeat work, no drops.
func TestVerdictCountersOpaqueRun(t *testing.T) {
	b := history.NewBuilder()
	for i := 1; i <= 20; i++ {
		tx := history.TxID(i)
		b.Write(tx, "x", i).Read(tx, "x", i).Commits(tx)
	}
	h := b.MustHistory()
	s := monitor.New(monitor.Options{})
	for _, ev := range h {
		s.Append(ev)
	}
	v := s.Close()
	if v.Status != monitor.StatusOpaque {
		t.Fatalf("verdict %+v", v)
	}
	if v.Events != len(h) || v.Checked != len(h) || v.Dropped != 0 {
		t.Errorf("counters %+v, want %d/%d/0", v, len(h), len(h))
	}
	if v.FastPath <= v.Searches {
		t.Errorf("fast path %d vs searches %d: revalidation should dominate", v.FastPath, v.Searches)
	}
	if v.PrefixLen != -1 {
		t.Errorf("PrefixLen %d on an opaque run", v.PrefixLen)
	}
}
