// Package monitor checks opacity of live STM executions online: a
// Session taps the event stream of an stm.Recorder (or is fed events
// directly) and maintains an incremental verdict as operations, commits
// and aborts arrive, flagging a violation at the exact event that
// introduces it.
//
// Monitoring is well-founded because the checker's online view is
// prefix-driven: a correct TM emits its history progressively, and
// every prefix the application can observe must be opaque (the same
// view core.FirstNonOpaquePrefix takes post-hoc). The Session runs on
// core.Incremental, so successive prefixes of the growing history reuse
// one SearchContext — interned object states, cached transitions — and
// the common "still opaque" event costs a witness revalidation, not a
// search.
//
// Two modes trade latency against perturbation:
//
//   - Sync: the verdict is updated inside the recorder's event append,
//     so every transactional operation of every goroutine waits for the
//     check. The violating operation is still in flight when the
//     verdict lands — stop-the-world monitoring for tests and
//     debugging.
//   - Async: events enqueue into a bounded buffer and a drain goroutine
//     checks them off the critical path. The buffer-full policy is
//     configurable: Block applies backpressure to the engine, Drop
//     discards the event and latches the session lossy (a gapped
//     history cannot be judged, so lossiness is flagged, never
//     silently absorbed).
//
// On the first violation the Session stops checking (the verdict is
// latched — no later event can un-observe a violation), snapshots the
// offending prefix, and runs core.Diagnose on it to name the culpable
// transactions.
package monitor

import (
	"sync"

	"otm/internal/core"
	"otm/internal/history"
	"otm/internal/spec"
	"otm/internal/stm"
)

// Mode selects where checking happens relative to the event source.
type Mode int

const (
	// Sync checks inside Append (for a tapped Recorder: inside the
	// engine's own operation, under the recorder mutex).
	Sync Mode = iota
	// Async checks on a drain goroutine fed by a bounded queue.
	Async
)

// String returns "sync" or "async".
func (m Mode) String() string {
	if m == Async {
		return "async"
	}
	return "sync"
}

// DropPolicy says what an Async session does when its buffer is full.
type DropPolicy int

const (
	// Block applies backpressure: Append waits for the drain goroutine.
	// Monitoring stays complete; the engine slows down.
	Block DropPolicy = iota
	// Drop discards the event and latches the session lossy: the engine
	// never waits, but from the first dropped event on the monitor can
	// no longer certify the run and says so in its verdict.
	Drop
)

// Status is the overall state of a monitoring session.
type Status int

const (
	// StatusOpaque: every checked prefix so far is opaque.
	StatusOpaque Status = iota
	// StatusViolated: a non-opaque prefix was observed; see Violation.
	StatusViolated
	// StatusLossy: at least one event was dropped (Drop policy); the
	// verdict covers only the events checked before the gap.
	StatusLossy
	// StatusError: checking failed (ill-formed event stream or an
	// exhausted search budget); see Verdict.Err.
	StatusError
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusOpaque:
		return "opaque"
	case StatusViolated:
		return "VIOLATED"
	case StatusLossy:
		return "lossy"
	case StatusError:
		return "error"
	default:
		return "unknown"
	}
}

// Options configures a Session. The zero value is a synchronous,
// blocking, diagnosing monitor over default register objects.
type Options struct {
	// Mode selects Sync (default) or Async checking.
	Mode Mode
	// Buffer is the Async queue capacity (default 1024). Ignored for
	// Sync.
	Buffer int
	// DropPolicy says what a full Async buffer does (default Block).
	DropPolicy DropPolicy
	// Objects supplies the object specifications, as in core.Config.
	Objects spec.Objects
	// MaxNodes bounds each prefix check, as in core.Config.
	MaxNodes int
	// DisableDiagnosis skips the core.Diagnose run on the violating
	// prefix (the Violation then carries only the prefix and event).
	DisableDiagnosis bool
	// TruncateAfterEvents and TruncateAfterTxs arm automatic
	// checkpointed truncation: whenever the live suffix (events since
	// the last checkpoint) reaches TruncateAfterEvents events or
	// TruncateAfterTxs transactions, the session attempts
	// core.Incremental.TryTruncate at the next quiescent point,
	// collapsing the suffix into its reachable final states so per-event
	// cost stays O(live-suffix) no matter how long the session runs.
	// Both zero (the default) disables truncation — the session retains
	// the full history. A threshold that is never reached at a quiescent
	// point simply never truncates; declined attempts are free.
	TruncateAfterEvents int
	TruncateAfterTxs    int
	// TruncateMaxNodes bounds each truncation attempt's enumeration
	// (0 = the core default). Blown budgets abandon the attempt, they do
	// not fail the session.
	TruncateMaxNodes int
	// OnViolation, if non-nil, is called once, with the violation, when
	// the verdict flips. It must never call Close (it runs inside the
	// session's intake critical section). In Sync mode it runs on the
	// engine goroutine that issued the violating operation — and, when
	// tapped into a Recorder, under the recorder's mutex, so there it
	// must not call back into the recorder or the session at all.
	OnViolation func(Violation)
}

// Violation describes the first opacity violation a session observed.
type Violation struct {
	// PrefixLen is the length of the shortest non-opaque prefix (a
	// global event count, checkpoints included); Event is its last
	// event — the one that made the violation observable.
	PrefixLen int
	Event     history.Event
	// Prefix is an independent snapshot of the retained portion of that
	// prefix: the whole prefix for a session that never truncated, the
	// live suffix since the last checkpoint otherwise.
	Prefix history.History
	// Diagnosis names the implicated transactions (valid when Diagnosed
	// is true; diagnosis is skipped by DisableDiagnosis and abandoned on
	// internal error).
	Diagnosis core.Diagnosis
	Diagnosed bool
}

// Verdict is a snapshot of a session's state.
type Verdict struct {
	Status Status
	// Events counts every event offered to the session, including
	// dropped ones and events arriving after a latched verdict.
	Events int
	// Checked counts the events consumed by the incremental checker;
	// the verdict covers exactly this prefix.
	Checked int
	// Dropped counts events discarded by the Drop policy.
	Dropped int
	// PrefixLen is the shortest non-opaque prefix (StatusViolated), -1
	// otherwise.
	PrefixLen int
	// Nodes, FastPath, Searches and Skipped mirror
	// core.IncrementalResult: total search nodes, checks resolved by
	// witness revalidation, full searches, and response events skipped
	// by the abort rule.
	Nodes    int
	FastPath int
	Searches int
	Skipped  int
	// Checkpoints, TruncatedEvents, Roots and TruncNodes mirror the
	// checkpointed-truncation counters of core.IncrementalResult:
	// successful truncations, events collapsed behind checkpoints, the
	// current checkpoint's reachable-state count, and the enumeration
	// nodes spent on truncation attempts. LiveEvents is the live-suffix
	// length — the state the session actually holds.
	Checkpoints     int
	TruncatedEvents int
	LiveEvents      int
	Roots           int
	TruncNodes      int
	// Err is the checking error when Status is StatusError.
	Err error
}

// Session is one online monitoring session over one growing history.
// Appends must arrive in history order (the recorder tap guarantees
// this: it runs under the recorder's mutex); Verdict, Violation,
// History and Close may be called from any goroutine at any time.
type Session struct {
	opts Options

	// incMu guards the incremental checker; mu guards the published
	// session state. Split so an Async drain mid-check never blocks the
	// cheap bookkeeping of Append.
	incMu sync.Mutex
	inc   *core.Incremental

	mu        sync.Mutex
	status    Status
	events    int
	dropped   int
	last      core.IncrementalResult
	err       error
	violation *Violation

	// Async plumbing. closeMu serializes Append against Close so the
	// event channel is never written after it is closed.
	ch      chan history.Event
	done    chan struct{}
	closeMu sync.RWMutex
	closed  bool
}

// New starts a session. Async sessions own a drain goroutine until
// Close.
func New(opts Options) *Session {
	s := &Session{
		opts: opts,
		inc: core.NewIncremental(core.Config{
			Objects:  opts.Objects,
			MaxNodes: opts.MaxNodes,
		}),
		status: StatusOpaque,
	}
	s.last = s.inc.Result()
	if opts.Mode == Async {
		buf := opts.Buffer
		if buf <= 0 {
			buf = 1024
		}
		s.ch = make(chan history.Event, buf)
		s.done = make(chan struct{})
		go s.drain()
	}
	return s
}

// Attach starts a session fed by every event rec records, in recording
// order. Detach by rec.Tap(nil); Close the session when the run ends.
func Attach(rec *stm.Recorder, opts Options) *Session {
	s := New(opts)
	rec.Tap(func(ev history.Event) { s.Append(ev) })
	return s
}

// Append offers one event to the session and returns a verdict
// snapshot. Sync sessions check in place; Async sessions enqueue
// (blocking or dropping per DropPolicy) and return the verdict as of
// now — possibly lagging the enqueued event. Events offered after
// Close are ignored in both modes, so a Close verdict is final.
func (s *Session) Append(ev history.Event) Verdict {
	if s.opts.Mode == Async {
		return s.appendAsync(ev)
	}
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return s.Verdict()
	}
	s.incMu.Lock()
	s.mu.Lock()
	s.events++
	terminal := s.status != StatusOpaque
	s.mu.Unlock()
	var v *Violation
	if !terminal {
		v = s.check(ev)
	}
	s.incMu.Unlock()
	s.closeMu.RUnlock()
	if v != nil && s.opts.OnViolation != nil {
		s.opts.OnViolation(*v)
	}
	return s.Verdict()
}

func (s *Session) appendAsync(ev history.Event) Verdict {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return s.Verdict()
	}
	s.mu.Lock()
	s.events++
	terminal := s.status != StatusOpaque
	s.mu.Unlock()
	if terminal {
		// The verdict is latched (violated, lossy or failed): count the
		// event but spare the queue.
		return s.Verdict()
	}
	if s.opts.DropPolicy == Drop {
		select {
		case s.ch <- ev:
		default:
			s.mu.Lock()
			s.dropped++
			if s.status == StatusOpaque {
				s.status = StatusLossy
			}
			s.mu.Unlock()
		}
	} else {
		s.ch <- ev
	}
	return s.Verdict()
}

// drain is the Async checking goroutine.
func (s *Session) drain() {
	defer close(s.done)
	for ev := range s.ch {
		s.mu.Lock()
		terminal := s.status != StatusOpaque
		s.mu.Unlock()
		if terminal {
			continue // latched: discard the remaining queue
		}
		s.incMu.Lock()
		v := s.check(ev)
		s.incMu.Unlock()
		if v != nil && s.opts.OnViolation != nil {
			s.opts.OnViolation(*v)
		}
	}
}

// check feeds one event to the incremental checker and publishes the
// outcome. Callers hold incMu (but not mu).
func (s *Session) check(ev history.Event) *Violation {
	res, err := s.inc.Append(ev)
	if err == nil && res.Opaque && s.truncateDue() {
		// Auto-truncation: TryTruncate declines for free when the suffix
		// is not quiescent or too expensive to collapse; only internal
		// inconsistencies surface as errors (and latch, like any checking
		// error).
		if _, terr := s.inc.TryTruncate(s.opts.TruncateMaxNodes); terr != nil {
			err = terr
		}
		res = s.inc.Result()
	}
	var v *Violation
	if err == nil && !res.Opaque {
		suffix := s.inc.History().Clone()
		v = &Violation{
			PrefixLen: res.PrefixLen,
			Event:     suffix[len(suffix)-1],
			Prefix:    suffix,
		}
		if !s.opts.DisableDiagnosis {
			// The checkpoint-aware diagnosis judges the retained suffix
			// from the checkpoint roots (the whole history, from the
			// configured initial state, when the session never
			// truncated), sharing the monitoring SearchContext so the
			// per-removed-transaction re-checks reuse everything interned
			// so far.
			d, derr := s.inc.Diagnose()
			if derr == nil {
				v.Diagnosis = d
				v.Diagnosed = true
			}
		}
	}
	s.mu.Lock()
	s.last = res
	switch {
	case err != nil:
		s.status = StatusError
		s.err = err
	case v != nil:
		s.status = StatusViolated
		s.violation = v
	}
	s.mu.Unlock()
	return v
}

// truncateDue reports whether the live suffix has outgrown the
// configured truncation thresholds. Callers hold incMu.
func (s *Session) truncateDue() bool {
	ae, at := s.opts.TruncateAfterEvents, s.opts.TruncateAfterTxs
	return (ae > 0 && s.inc.LiveLen() >= ae) || (at > 0 && s.inc.LiveTxs() >= at)
}

// Verdict returns a snapshot of the session's state. For Async sessions
// it may lag events still in the queue; Close first for a final word.
func (s *Session) Verdict() Verdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Verdict{
		Status:          s.status,
		Events:          s.events,
		Checked:         s.last.Events,
		Dropped:         s.dropped,
		PrefixLen:       s.last.PrefixLen,
		Nodes:           s.last.Nodes,
		FastPath:        s.last.FastPath,
		Searches:        s.last.Searches,
		Skipped:         s.last.Skipped,
		Checkpoints:     s.last.Checkpoints,
		TruncatedEvents: s.last.TruncatedEvents,
		LiveEvents:      s.last.Events - s.last.TruncatedEvents,
		Roots:           s.last.Roots,
		TruncNodes:      s.last.TruncNodes,
		Err:             s.err,
	}
}

// Violation returns the recorded violation, or nil. The returned value
// is shared; treat it as read-only.
func (s *Session) Violation() *Violation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.violation
}

// History returns a snapshot of the retained history: everything checked
// so far for a session that never truncated, the live suffix since the
// last checkpoint otherwise.
func (s *Session) History() history.History {
	s.incMu.Lock()
	defer s.incMu.Unlock()
	return s.inc.History().Clone()
}

// Close stops the session's intake — waiting for any in-flight Sync
// check, and for an Async drain to finish its queue — and returns the
// final verdict: events offered afterwards are ignored, so the verdict
// cannot change once Close has returned. Close is idempotent. Do not
// call it from an OnViolation callback (the callback runs inside
// Append's critical section).
func (s *Session) Close() Verdict {
	s.closeMu.Lock()
	first := !s.closed
	s.closed = true
	if first && s.opts.Mode == Async {
		close(s.ch)
	}
	s.closeMu.Unlock()
	if s.opts.Mode == Async {
		<-s.done
	}
	return s.Verdict()
}
