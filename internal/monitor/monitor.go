// Package monitor checks opacity of live STM executions online: a
// Session taps the event stream of an stm.Recorder (or is fed events
// directly) and maintains an incremental verdict as operations, commits
// and aborts arrive, flagging a violation at the exact event that
// introduces it.
//
// Monitoring is well-founded because the checker's online view is
// prefix-driven: a correct TM emits its history progressively, and
// every prefix the application can observe must be opaque (the same
// view core.FirstNonOpaquePrefix takes post-hoc). The Session runs on
// core.Incremental, so successive prefixes of the growing history reuse
// one SearchContext — interned object states, cached transitions — and
// the common "still opaque" event costs a witness revalidation, not a
// search.
//
// Two modes trade latency against perturbation:
//
//   - Sync: the verdict is updated inside the recorder's event append,
//     so every transactional operation of every goroutine waits for the
//     check. The violating operation is still in flight when the
//     verdict lands — stop-the-world monitoring for tests and
//     debugging.
//   - Async: events enqueue into a bounded buffer and a drain goroutine
//     checks them off the critical path. The buffer-full policy is
//     configurable: Block applies backpressure to the engine, Drop
//     discards the event and latches the session lossy (a gapped
//     history cannot be judged, so lossiness is flagged, never
//     silently absorbed).
//
// On the first violation the Session stops checking (the verdict is
// latched — no later event can un-observe a violation), snapshots the
// offending prefix, and runs core.Diagnose on it to name the culpable
// transactions.
package monitor

import (
	"sync"
	"sync/atomic"
	"time"

	"otm/internal/core"
	"otm/internal/history"
	"otm/internal/spec"
	"otm/internal/stm"
)

// Mode selects where checking happens relative to the event source.
type Mode int

const (
	// Sync checks inside Append (for a tapped Recorder: inside the
	// engine's own operation, under the recorder mutex).
	Sync Mode = iota
	// Async checks on a drain goroutine fed by a bounded queue.
	Async
)

// String returns "sync" or "async".
func (m Mode) String() string {
	if m == Async {
		return "async"
	}
	return "sync"
}

// DropPolicy says what an Async session does when its buffer is full.
type DropPolicy int

const (
	// Block applies backpressure: Append waits for the drain goroutine.
	// Monitoring stays complete; the engine slows down.
	Block DropPolicy = iota
	// Drop discards the event and latches the session lossy: the engine
	// never waits, but from the first dropped event on the monitor can
	// no longer certify the run and says so in its verdict.
	Drop
)

// Status is the overall state of a monitoring session.
type Status int

const (
	// StatusOpaque: every checked prefix so far is opaque.
	StatusOpaque Status = iota
	// StatusViolated: a non-opaque prefix was observed; see Violation.
	StatusViolated
	// StatusLossy: at least one event was dropped (Drop policy); the
	// verdict covers only the events checked before the gap.
	StatusLossy
	// StatusError: checking failed (ill-formed event stream or an
	// exhausted search budget); see Verdict.Err.
	StatusError
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusOpaque:
		return "opaque"
	case StatusViolated:
		return "VIOLATED"
	case StatusLossy:
		return "lossy"
	case StatusError:
		return "error"
	default:
		return "unknown"
	}
}

// Options configures a Session. The zero value is a synchronous,
// blocking, diagnosing monitor over default register objects.
type Options struct {
	// Mode selects Sync (default) or Async checking.
	Mode Mode
	// Buffer is the Async queue capacity (default 1024). Ignored for
	// Sync.
	Buffer int
	// DropPolicy says what a full Async buffer does (default Block).
	DropPolicy DropPolicy
	// Objects supplies the object specifications, as in core.Config.
	Objects spec.Objects
	// MaxNodes bounds each prefix check, as in core.Config.
	MaxNodes int
	// DisableDiagnosis skips the core.Diagnose run on the violating
	// prefix (the Violation then carries only the prefix and event).
	DisableDiagnosis bool
	// TruncateAfterEvents and TruncateAfterTxs arm automatic
	// checkpointed truncation: whenever the live suffix (events since
	// the last checkpoint) reaches TruncateAfterEvents events or
	// TruncateAfterTxs transactions, the session attempts
	// core.Incremental.TryTruncate at the next quiescent point,
	// collapsing the suffix into its reachable final states so per-event
	// cost stays O(live-suffix) no matter how long the session runs.
	// Both zero (the default) disables truncation — the session retains
	// the full history. A threshold that is never reached at a quiescent
	// point simply never truncates; declined attempts are free.
	TruncateAfterEvents int
	TruncateAfterTxs    int
	// TruncateMaxNodes bounds each truncation attempt's enumeration
	// (0 = the core default). Blown budgets abandon the attempt, they do
	// not fail the session.
	TruncateMaxNodes int
	// TruncateBarrier arms an admission barrier that makes truncation
	// effective under workloads that never quiesce on their own.
	// Truncation can only collapse the suffix at a quiescent point —
	// every transaction completed — and with several goroutines issuing
	// transactions back to back such points become combinatorially rare,
	// so the live suffix (and with it the per-event witness-replay cost)
	// grows without bound. With the barrier armed, once the events
	// admitted since the last checkpoint reach TruncateBarrier, the
	// session's AdmissionGate — wired into the recorder by Attach, so
	// it runs at Begin with no lock held — stalls the start of NEW
	// transactions until the already-open transactions complete and the
	// checker truncates at the resulting quiescent point (or declines
	// there, which also releases the stall). Events of open
	// transactions are never stalled, so that point always arrives;
	// sessions fed directly through Append are only ever bookkept,
	// never blocked.
	// The stalls are counted in Stats (BarrierStalls, BarrierWaitNanos):
	// a bounded, observable pause in exchange for bounded monitor state.
	// 0 (default) disables the barrier. A positive barrier with no
	// TruncateAfterEvents/Txs threshold arms truncation at the barrier
	// length itself.
	TruncateBarrier int
	// OnViolation, if non-nil, is called once, with the violation, when
	// the verdict flips. It must never call Close (it runs inside the
	// session's intake critical section). In Sync mode it runs on the
	// engine goroutine that issued the violating operation — and, when
	// tapped into a Recorder, under the recorder's mutex, so there it
	// must not call back into the recorder or the session at all.
	OnViolation func(Violation)
}

// Violation describes the first opacity violation a session observed.
type Violation struct {
	// PrefixLen is the length of the shortest non-opaque prefix (a
	// global event count, checkpoints included); Event is its last
	// event — the one that made the violation observable.
	PrefixLen int
	Event     history.Event
	// Prefix is an independent snapshot of the retained portion of that
	// prefix: the whole prefix for a session that never truncated, the
	// live suffix since the last checkpoint otherwise.
	Prefix history.History
	// Diagnosis names the implicated transactions (valid when Diagnosed
	// is true; diagnosis is skipped by DisableDiagnosis and abandoned on
	// internal error).
	Diagnosis core.Diagnosis
	Diagnosed bool
}

// Verdict is a snapshot of a session's state.
type Verdict struct {
	Status Status
	// Events counts every event offered to the session, including
	// dropped ones and events arriving after a latched verdict.
	Events int
	// Checked counts the events consumed by the incremental checker;
	// the verdict covers exactly this prefix.
	Checked int
	// Dropped counts events discarded by the Drop policy, and Lossy
	// latches whether any event was ever dropped: the two agree —
	// Dropped > 0 exactly when Lossy (and exactly when the session
	// latched StatusLossy), so telemetry can report both the fact and
	// the magnitude of the information loss.
	Dropped int
	Lossy   bool
	// PrefixLen is the shortest non-opaque prefix (StatusViolated), -1
	// otherwise.
	PrefixLen int
	// Nodes, FastPath, Searches and Skipped mirror
	// core.IncrementalResult: total search nodes, checks resolved by
	// witness revalidation, full searches, and response events skipped
	// by the abort rule.
	Nodes    int
	FastPath int
	Searches int
	Skipped  int
	// Checkpoints, TruncatedEvents, Roots and TruncNodes mirror the
	// checkpointed-truncation counters of core.IncrementalResult:
	// successful truncations, events collapsed behind checkpoints, the
	// current checkpoint's reachable-state count, and the enumeration
	// nodes spent on truncation attempts. LiveEvents is the live-suffix
	// length — the state the session actually holds.
	Checkpoints     int
	TruncatedEvents int
	LiveEvents      int
	Roots           int
	TruncNodes      int
	// Err is the checking error when Status is StatusError.
	Err error
}

// Stats is a lock-free snapshot of a session's observability counters,
// read entirely from atomics the append and check paths maintain as
// they go: a telemetry scrape calling Stats mid-run takes no session
// lock and therefore never blocks — or is blocked by — an append, a
// check or a violation capture. Each counter is individually exact;
// across fields the snapshot is only loosely consistent while the
// session is running (exact after Close), which is the usual metrics
// contract.
type Stats struct {
	// Status, Events, Checked, Dropped, Lossy and PrefixLen mirror the
	// Verdict fields of the same names.
	Status    Status
	Events    int
	Checked   int
	Dropped   int
	Lossy     bool
	PrefixLen int
	// QueueDepth and QueueCap describe the Async queue: events enqueued
	// but not yet drained, and the buffer capacity (both 0 for Sync).
	QueueDepth int
	QueueCap   int
	// Nodes, FastPath, Searches and Skipped mirror the Verdict fields:
	// search nodes, witness-revalidation fast-path checks, full
	// searches, and response events skipped outright.
	Nodes    int
	FastPath int
	Searches int
	Skipped  int
	// Checkpoints, TruncatedEvents, LiveEvents, Roots and TruncNodes
	// mirror the checkpointed-truncation counters.
	Checkpoints     int
	TruncatedEvents int
	LiveEvents      int
	Roots           int
	TruncNodes      int
	// TableStates, TableAtoms and TableMemoEntries are the session
	// SearchContext's residency counters (core.Stats.States, .Atoms,
	// .MemoEntries): how much interned state the session is holding.
	TableStates      int
	TableAtoms       int
	TableMemoEntries int
	// BarrierStalls counts transaction starts the TruncateBarrier
	// stalled, and BarrierWaitNanos the total time they spent waiting —
	// the admission-control cost the barrier trades for bounded state.
	BarrierStalls    int
	BarrierWaitNanos int64
}

// counters are the session's atomic mirrors behind Stats. The append
// path adds to events/dropped, check publishes the incremental result
// after every consumed event, and status follows every latch. They
// duplicate the mutex-guarded verdict state on purpose: Verdict keeps
// its existing consistency (one lock, one snapshot), while Stats reads
// here without ever taking a lock.
type counters struct {
	status    atomic.Int32
	events    atomic.Int64
	checked   atomic.Int64
	dropped   atomic.Int64
	prefixLen atomic.Int64
	nodes     atomic.Int64
	fastPath  atomic.Int64
	searches  atomic.Int64
	skipped   atomic.Int64
	ckpts     atomic.Int64
	truncEvs  atomic.Int64
	roots     atomic.Int64
	truncNds  atomic.Int64
	tblStates atomic.Int64
	tblAtoms  atomic.Int64
	tblMemo   atomic.Int64
	barStalls atomic.Int64
	barWaitNs atomic.Int64
}

// Session is one online monitoring session over one growing history.
// Appends must arrive in history order (the recorder tap guarantees
// this: it runs under the recorder's mutex); Verdict, Violation,
// History, Stats and Close may be called from any goroutine at any
// time.
type Session struct {
	opts Options

	st counters

	// incMu guards the incremental checker; mu guards the published
	// session state. Split so an Async drain mid-check never blocks the
	// cheap bookkeeping of Append.
	incMu sync.Mutex
	inc   *core.Incremental

	mu        sync.Mutex
	status    Status
	events    int
	dropped   int
	last      core.IncrementalResult
	err       error
	violation *Violation

	// Async plumbing. closeMu serializes Append against Close so the
	// event channel is never written after it is closed.
	ch      chan history.Event
	done    chan struct{}
	closeMu sync.RWMutex
	closed  bool

	// Admission barrier (TruncateBarrier > 0). barMu guards the
	// appender-side view: which transactions have started but not
	// completed, and how many events were admitted since the last
	// barrier release. It is taken before closeMu — a stalled appender
	// must not hold the close lock, or Close would deadlock behind it.
	barMu      sync.Mutex
	barCond    *sync.Cond
	barOpen    map[history.TxID]struct{}
	barSince   int
	barClosing bool
}

// New starts a session. Async sessions own a drain goroutine until
// Close.
func New(opts Options) *Session {
	s := &Session{
		opts: opts,
		inc: core.NewIncremental(core.Config{
			Objects:  opts.Objects,
			MaxNodes: opts.MaxNodes,
		}),
		status: StatusOpaque,
	}
	s.last = s.inc.Result()
	s.st.prefixLen.Store(-1)
	if opts.TruncateBarrier > 0 {
		s.barCond = sync.NewCond(&s.barMu)
		s.barOpen = make(map[history.TxID]struct{})
	}
	if opts.Mode == Async {
		buf := opts.Buffer
		if buf <= 0 {
			buf = 1024
		}
		s.ch = make(chan history.Event, buf)
		s.done = make(chan struct{})
		go s.drain()
	}
	return s
}

// Attach starts a session fed by every event rec records, in recording
// order. Detach by rec.Tap(nil); Close the session when the run ends.
func Attach(rec *stm.Recorder, opts Options) *Session {
	s := New(opts)
	if g := s.AdmissionGate(); g != nil {
		rec.Gate(g)
	}
	rec.Tap(func(ev history.Event) { s.Append(ev) })
	return s
}

// Append offers one event to the session and returns a verdict
// snapshot. Sync sessions check in place; Async sessions enqueue
// (blocking or dropping per DropPolicy) and return the verdict as of
// now — possibly lagging the enqueued event. Events offered after
// Close are ignored in both modes, so a Close verdict is final.
func (s *Session) Append(ev history.Event) Verdict {
	s.admit(ev)
	if s.opts.Mode == Async {
		return s.appendAsync(ev)
	}
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return s.Verdict()
	}
	s.incMu.Lock()
	s.mu.Lock()
	s.events++
	s.st.events.Add(1)
	terminal := s.status != StatusOpaque
	s.mu.Unlock()
	var v *Violation
	if !terminal {
		v = s.check(ev)
	}
	s.incMu.Unlock()
	s.closeMu.RUnlock()
	if v != nil && s.opts.OnViolation != nil {
		s.opts.OnViolation(*v)
	}
	return s.Verdict()
}

func (s *Session) appendAsync(ev history.Event) Verdict {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return s.Verdict()
	}
	s.mu.Lock()
	s.events++
	s.st.events.Add(1)
	terminal := s.status != StatusOpaque
	s.mu.Unlock()
	if terminal {
		// The verdict is latched (violated, lossy or failed): count the
		// event but spare the queue.
		return s.Verdict()
	}
	if s.opts.DropPolicy == Drop {
		select {
		case s.ch <- ev:
		default:
			s.mu.Lock()
			s.dropped++
			s.st.dropped.Add(1)
			if s.status == StatusOpaque {
				s.status = StatusLossy
			}
			s.st.status.Store(int32(s.status))
			s.mu.Unlock()
			s.barrierWake()
		}
	} else {
		s.ch <- ev
	}
	return s.Verdict()
}

// admit maintains the barrier's appender-side bookkeeping for one
// event: which transactions are open, and how many events were admitted
// since the last release. It never blocks — stalling happens only in
// the AdmissionGate, at transaction start, where no recorder or session
// lock is held.
func (s *Session) admit(ev history.Event) {
	if s.opts.TruncateBarrier <= 0 {
		return
	}
	s.barMu.Lock()
	if _, open := s.barOpen[ev.Tx]; !open {
		s.barOpen[ev.Tx] = struct{}{}
	}
	if ev.Kind == history.KindCommit || ev.Kind == history.KindAbort {
		delete(s.barOpen, ev.Tx)
		if len(s.barOpen) == 0 {
			// The stream is quiescent at this position: wake gated
			// starters so they are not stranded once every producer is
			// waiting. Their wait condition re-checks the open set, so
			// they proceed; the checker truncates here once its
			// threshold is due.
			s.barCond.Broadcast()
		}
	}
	s.barSince++
	s.barMu.Unlock()
}

// AdmissionGate returns the barrier's admission hook, or nil when no
// TruncateBarrier is armed. Registered as an stm.Recorder Gate (Attach
// does this automatically), it runs at the start of every transaction —
// outside the recorder mutex, before any event of the transaction
// exists — and blocks while the admitted-but-untruncated stretch
// exceeds the barrier and other transactions are still open. Events of
// open transactions never pass the gate, so the quiescent point the
// gate is waiting for always arrives; a truncation attempt there (see
// check) or a latched verdict or Close releases all waiters.
func (s *Session) AdmissionGate() func() {
	if s.opts.TruncateBarrier <= 0 {
		return nil
	}
	return func() {
		s.barMu.Lock()
		if s.barSince >= s.opts.TruncateBarrier && len(s.barOpen) > 0 && s.barBlocking() {
			s.st.barStalls.Add(1)
			start := time.Now()
			for s.barSince >= s.opts.TruncateBarrier && len(s.barOpen) > 0 && s.barBlocking() {
				s.barCond.Wait()
			}
			s.st.barWaitNs.Add(time.Since(start).Nanoseconds())
		}
		s.barMu.Unlock()
	}
}

// barBlocking reports whether the barrier may stall: only while the
// session is live and still certifying. Callers hold barMu.
func (s *Session) barBlocking() bool {
	return !s.barClosing && Status(s.st.status.Load()) == StatusOpaque
}

// barrierRelease wakes stalled appenders after the checker had its
// truncation chance at a quiescent point. retained is the live-suffix
// length that survived; the queue backlog (admitted, not yet drained)
// is added back so the barrier re-arms at an honest suffix estimate.
func (s *Session) barrierRelease(retained int) {
	if s.opts.TruncateBarrier <= 0 {
		return
	}
	s.barMu.Lock()
	s.barSince = retained
	if s.ch != nil {
		s.barSince += len(s.ch)
	}
	s.barCond.Broadcast()
	s.barMu.Unlock()
}

// barrierWake releases all waiters unconditionally (latch or Close):
// their wait condition consults the latched status and barClosing.
func (s *Session) barrierWake() {
	if s.opts.TruncateBarrier <= 0 {
		return
	}
	s.barMu.Lock()
	s.barCond.Broadcast()
	s.barMu.Unlock()
}

// drain is the Async checking goroutine.
func (s *Session) drain() {
	defer close(s.done)
	for ev := range s.ch {
		s.mu.Lock()
		terminal := s.status != StatusOpaque
		s.mu.Unlock()
		if terminal {
			continue // latched: discard the remaining queue
		}
		s.incMu.Lock()
		v := s.check(ev)
		s.incMu.Unlock()
		if v != nil && s.opts.OnViolation != nil {
			s.opts.OnViolation(*v)
		}
	}
}

// check feeds one event to the incremental checker and publishes the
// outcome. Callers hold incMu (but not mu).
func (s *Session) check(ev history.Event) *Violation {
	res, err := s.inc.Append(ev)
	if err == nil && res.Opaque && s.truncateDue() {
		// Auto-truncation: TryTruncate declines for free when the suffix
		// is not quiescent or too expensive to collapse; only internal
		// inconsistencies surface as errors (and latch, like any checking
		// error). A successful truncation — or a decline at a quiescent
		// point, which was the barrier's best shot — releases any
		// appenders stalled on the admission barrier.
		ok, terr := s.inc.TryTruncate(s.opts.TruncateMaxNodes)
		if terr != nil {
			err = terr
		} else if ok || s.inc.Stable() {
			s.barrierRelease(s.inc.LiveLen())
		}
		res = s.inc.Result()
	}
	var v *Violation
	if err == nil && !res.Opaque {
		suffix := s.inc.History().Clone()
		v = &Violation{
			PrefixLen: res.PrefixLen,
			Event:     suffix[len(suffix)-1],
			Prefix:    suffix,
		}
		if !s.opts.DisableDiagnosis {
			// The checkpoint-aware diagnosis judges the retained suffix
			// from the checkpoint roots (the whole history, from the
			// configured initial state, when the session never
			// truncated), sharing the monitoring SearchContext so the
			// per-removed-transaction re-checks reuse everything interned
			// so far.
			d, derr := s.inc.Diagnose()
			if derr == nil {
				v.Diagnosis = d
				v.Diagnosed = true
			}
		}
	}
	// Mirror the incremental result and the search-table residency into
	// the lock-free Stats counters. ContextStats follows the context's
	// single-goroutine rules — callers of check hold incMu, the same
	// exclusion the checking itself runs under.
	cs := s.inc.ContextStats()
	s.st.checked.Store(int64(res.Events))
	s.st.prefixLen.Store(int64(res.PrefixLen))
	s.st.nodes.Store(int64(res.Nodes))
	s.st.fastPath.Store(int64(res.FastPath))
	s.st.searches.Store(int64(res.Searches))
	s.st.skipped.Store(int64(res.Skipped))
	s.st.ckpts.Store(int64(res.Checkpoints))
	s.st.truncEvs.Store(int64(res.TruncatedEvents))
	s.st.roots.Store(int64(res.Roots))
	s.st.truncNds.Store(int64(res.TruncNodes))
	s.st.tblStates.Store(int64(cs.States))
	s.st.tblAtoms.Store(int64(cs.Atoms))
	s.st.tblMemo.Store(int64(cs.MemoEntries))
	s.mu.Lock()
	s.last = res
	switch {
	case err != nil:
		s.status = StatusError
		s.err = err
	case v != nil:
		s.status = StatusViolated
		s.violation = v
	}
	latched := s.status != StatusOpaque
	s.st.status.Store(int32(s.status))
	s.mu.Unlock()
	if latched {
		s.barrierWake()
	}
	return v
}

// truncateDue reports whether the live suffix has outgrown the
// configured truncation thresholds. A barrier with no explicit
// threshold arms truncation at the barrier length, so stalled
// appenders always have a truncation attempt to wait for. Callers
// hold incMu.
func (s *Session) truncateDue() bool {
	ae, at, b := s.opts.TruncateAfterEvents, s.opts.TruncateAfterTxs, s.opts.TruncateBarrier
	return (ae > 0 && s.inc.LiveLen() >= ae) ||
		(at > 0 && s.inc.LiveTxs() >= at) ||
		(b > 0 && s.inc.LiveLen() >= b)
}

// Verdict returns a snapshot of the session's state. For Async sessions
// it may lag events still in the queue; Close first for a final word.
func (s *Session) Verdict() Verdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Verdict{
		Status:          s.status,
		Events:          s.events,
		Checked:         s.last.Events,
		Dropped:         s.dropped,
		Lossy:           s.dropped > 0,
		PrefixLen:       s.last.PrefixLen,
		Nodes:           s.last.Nodes,
		FastPath:        s.last.FastPath,
		Searches:        s.last.Searches,
		Skipped:         s.last.Skipped,
		Checkpoints:     s.last.Checkpoints,
		TruncatedEvents: s.last.TruncatedEvents,
		LiveEvents:      s.last.Events - s.last.TruncatedEvents,
		Roots:           s.last.Roots,
		TruncNodes:      s.last.TruncNodes,
		Err:             s.err,
	}
}

// Stats returns a lock-free snapshot of the session's counters, read
// entirely from atomics: unlike Verdict it acquires no session lock, so
// a telemetry scraper can call it at any rate without perturbing the
// append path or waiting out an in-flight check. See the Stats type for
// the consistency contract.
func (s *Session) Stats() Stats {
	dropped := int(s.st.dropped.Load())
	checked := int(s.st.checked.Load())
	truncEvs := int(s.st.truncEvs.Load())
	st := Stats{
		Status:           Status(s.st.status.Load()),
		Events:           int(s.st.events.Load()),
		Checked:          checked,
		Dropped:          dropped,
		Lossy:            dropped > 0,
		PrefixLen:        int(s.st.prefixLen.Load()),
		Nodes:            int(s.st.nodes.Load()),
		FastPath:         int(s.st.fastPath.Load()),
		Searches:         int(s.st.searches.Load()),
		Skipped:          int(s.st.skipped.Load()),
		Checkpoints:      int(s.st.ckpts.Load()),
		TruncatedEvents:  truncEvs,
		LiveEvents:       checked - truncEvs,
		Roots:            int(s.st.roots.Load()),
		TruncNodes:       int(s.st.truncNds.Load()),
		TableStates:      int(s.st.tblStates.Load()),
		TableAtoms:       int(s.st.tblAtoms.Load()),
		TableMemoEntries: int(s.st.tblMemo.Load()),
		BarrierStalls:    int(s.st.barStalls.Load()),
		BarrierWaitNanos: s.st.barWaitNs.Load(),
	}
	if s.opts.Mode == Async {
		st.QueueDepth = len(s.ch)
		st.QueueCap = cap(s.ch)
	}
	return st
}

// Violation returns the recorded violation, or nil. The returned value
// is shared; treat it as read-only.
func (s *Session) Violation() *Violation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.violation
}

// History returns a snapshot of the retained history: everything checked
// so far for a session that never truncated, the live suffix since the
// last checkpoint otherwise.
func (s *Session) History() history.History {
	s.incMu.Lock()
	defer s.incMu.Unlock()
	return s.inc.History().Clone()
}

// Close stops the session's intake — waiting for any in-flight Sync
// check, and for an Async drain to finish its queue — and returns the
// final verdict: events offered afterwards are ignored, so the verdict
// cannot change once Close has returned. Close is idempotent. Do not
// call it from an OnViolation callback (the callback runs inside
// Append's critical section).
func (s *Session) Close() Verdict {
	if s.opts.TruncateBarrier > 0 {
		s.barMu.Lock()
		s.barClosing = true
		s.barCond.Broadcast()
		s.barMu.Unlock()
	}
	s.closeMu.Lock()
	first := !s.closed
	s.closed = true
	if first && s.opts.Mode == Async {
		close(s.ch)
	}
	s.closeMu.Unlock()
	if s.opts.Mode == Async {
		<-s.done
	}
	return s.Verdict()
}
