package monitor_test

import (
	"sync"
	"testing"

	"otm/internal/history"
	"otm/internal/monitor"
	"otm/internal/spec"
)

// gateState wraps a register specification so its first Step blocks: the
// monitor's drain goroutine entering a check parks on the gate, which
// lets a test fill and overflow the Async queue deterministically
// instead of racing the drain.
type gateState struct {
	inner   spec.State
	entered chan<- struct{}
	release <-chan struct{}
	once    *sync.Once
}

func (g *gateState) Name() string { return g.inner.Name() }

// Key must differ from the wrapped register's: the search context
// interns states by Key (and pre-interns the default register), so a
// wrapper with the register's own key would canonicalize to the plain
// register and never have its Step consulted.
func (g *gateState) Key() string { return "gate:" + g.inner.Key() }
func (g *gateState) Step(op string, arg, ret spec.Value) (spec.State, bool) {
	g.once.Do(func() {
		g.entered <- struct{}{}
		<-g.release
	})
	next, ok := g.inner.Step(op, arg, ret)
	if !ok {
		return next, false
	}
	return &gateState{inner: next, entered: g.entered, release: g.release, once: g.once}, true
}

// TestDroppedCountsExactlyWhenLossy pins the drop-counter contract the
// control plane's telemetry relies on: Dropped > 0 exactly when the
// session is Lossy (and exactly when StatusLossy latched), and the
// count equals the number of events the Drop policy actually discarded.
func TestDroppedCountsExactlyWhenLossy(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	objs := spec.Objects{"x": &gateState{
		inner:   spec.NewRegister(0),
		entered: entered,
		release: release,
		once:    &sync.Once{},
	}}
	s := monitor.New(monitor.Options{
		Mode:       monitor.Async,
		Buffer:     2,
		DropPolicy: monitor.Drop,
		Objects:    objs,
	})

	// The read's response event sends the drain goroutine into a check
	// that replays T1's read against the register — parking on the gate.
	// (A live transaction serializes as an empty abort, so only its
	// *reads* go through Step; a write response would never enter the
	// gate.) Buffer=2 guarantees neither setup event can drop; once
	// `entered` fires, both have been consumed and the queue is empty
	// with the drain busy.
	s.Append(history.Inv(1, "x", "read", nil))
	s.Append(history.Ret(1, "x", "read", 0))
	<-entered

	// Two events fill the Buffer=2 queue; the next MUST drop — and that
	// first drop latches StatusLossy, after which later events are
	// counted but spared the queue (neither enqueued nor dropped), so
	// the drop count stays exactly 1.
	s.Append(history.TryC(1))
	s.Append(history.Commit(1))
	s.Append(history.Inv(2, "x", "read", nil))
	s.Append(history.Ret(2, "x", "read", 0))
	st := s.Stats()
	if st.Dropped != 1 || !st.Lossy || st.Status != monitor.StatusLossy {
		t.Fatalf("mid-run stats %+v, want Dropped=1 Lossy StatusLossy", st)
	}
	if st.QueueCap != 2 || st.QueueDepth != 2 {
		t.Errorf("queue %d/%d, want 2/2", st.QueueDepth, st.QueueCap)
	}
	close(release)
	v := s.Close()
	if v.Dropped != 1 || !v.Lossy || v.Status != monitor.StatusLossy {
		t.Fatalf("verdict %+v, want Dropped=1 Lossy StatusLossy", v)
	}
	if v.Events != 6 {
		t.Errorf("Events = %d, want 6 (post-latch events still counted)", v.Events)
	}
}

// TestLossoffWithoutDrops is the other half of the satellite contract:
// a session that never drops reports Dropped == 0 and Lossy == false in
// both Verdict and Stats, whatever else happened.
func TestLossoffWithoutDrops(t *testing.T) {
	for _, mode := range []monitor.Mode{monitor.Sync, monitor.Async} {
		s := monitor.New(monitor.Options{Mode: mode})
		for _, ev := range zombieHistory() {
			s.Append(ev)
		}
		v := s.Close()
		if v.Dropped != 0 || v.Lossy {
			t.Errorf("%v: verdict %+v, want Dropped=0 !Lossy", mode, v)
		}
		st := s.Stats()
		if st.Dropped != 0 || st.Lossy {
			t.Errorf("%v: stats %+v, want Dropped=0 !Lossy", mode, st)
		}
		if v.Status != monitor.StatusViolated || st.Status != monitor.StatusViolated {
			t.Errorf("%v: status %v/%v, want violated (drops are not the only latch)", mode, v.Status, st.Status)
		}
	}
}

// TestStatsMirrorsVerdict: after Close the lock-free Stats snapshot and
// the mutex-guarded Verdict agree field for field, including the
// search-table residency counters only Stats carries.
func TestStatsMirrorsVerdict(t *testing.T) {
	b := history.NewBuilder()
	for i := 1; i <= 30; i++ {
		tx := history.TxID(i)
		b.Write(tx, "x", i).Read(tx, "x", i).Commits(tx)
	}
	h := b.MustHistory()
	s := monitor.New(monitor.Options{TruncateAfterEvents: 32})
	for _, ev := range h {
		s.Append(ev)
	}
	v := s.Close()
	st := s.Stats()
	if st.Status != v.Status || st.Events != v.Events || st.Checked != v.Checked ||
		st.Dropped != v.Dropped || st.PrefixLen != v.PrefixLen ||
		st.Nodes != v.Nodes || st.FastPath != v.FastPath || st.Searches != v.Searches ||
		st.Skipped != v.Skipped || st.Checkpoints != v.Checkpoints ||
		st.TruncatedEvents != v.TruncatedEvents || st.LiveEvents != v.LiveEvents ||
		st.Roots != v.Roots || st.TruncNodes != v.TruncNodes {
		t.Fatalf("stats %+v\ndisagree with verdict %+v", st, v)
	}
	if v.Checkpoints == 0 {
		t.Fatalf("truncation never fired; verdict %+v", v)
	}
	if st.TableStates <= 0 || st.TableAtoms <= 0 {
		t.Errorf("table residency %d states / %d atoms, want > 0", st.TableStates, st.TableAtoms)
	}
	if st.QueueDepth != 0 || st.QueueCap != 0 {
		t.Errorf("sync session reports a queue: %+v", st)
	}
}

// TestStatsConcurrentScrape hammers Stats from scraper goroutines while
// the session checks a live stream — the -race matrix proves the
// lock-free read path against the append path.
func TestStatsConcurrentScrape(t *testing.T) {
	b := history.NewBuilder()
	for i := 1; i <= 200; i++ {
		tx := history.TxID(i)
		b.Write(tx, "x", i).Read(tx, "x", i).Commits(tx)
	}
	h := b.MustHistory()
	s := monitor.New(monitor.Options{Mode: monitor.Async, Buffer: 64})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Stats()
				if st.Events < 0 || st.Checked > st.Events || st.Dropped != 0 {
					t.Errorf("implausible stats %+v", st)
					return
				}
			}
		}()
	}
	for _, ev := range h {
		s.Append(ev)
	}
	v := s.Close()
	close(stop)
	wg.Wait()
	if v.Status != monitor.StatusOpaque {
		t.Fatalf("verdict %+v", v)
	}
	if st := s.Stats(); st.Checked != v.Checked {
		t.Errorf("final stats %+v disagree with verdict %+v", st, v)
	}
}
