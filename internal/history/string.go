package history

import (
	"fmt"
	"strings"
)

// String renders a single event in a compact, paper-like notation:
// read/write on registers use the shorthand r2(x)->1 / w1(x,1)->ok; other
// operations use op2(obj,args)->ret; control events use tryC1, C1, tryA1,
// A1.
func (e Event) String() string {
	switch e.Kind {
	case KindInv:
		if e.Arg != nil {
			return fmt.Sprintf("inv%d(%s.%s,%v)", int(e.Tx), e.Obj, e.Op, e.Arg)
		}
		return fmt.Sprintf("inv%d(%s.%s)", int(e.Tx), e.Obj, e.Op)
	case KindRet:
		return fmt.Sprintf("ret%d(%s.%s)->%v", int(e.Tx), e.Obj, e.Op, e.Ret)
	case KindTryCommit:
		return fmt.Sprintf("tryC%d", int(e.Tx))
	case KindTryAbort:
		return fmt.Sprintf("tryA%d", int(e.Tx))
	case KindCommit:
		return fmt.Sprintf("C%d", int(e.Tx))
	case KindAbort:
		return fmt.Sprintf("A%d", int(e.Tx))
	default:
		return fmt.Sprintf("?%d", int(e.Tx))
	}
}

// String renders the history as a single line of events separated by
// spaces, merging each matching inv/ret pair into one operation-execution
// token where possible (pairs separated by other events stay split).
func (h History) String() string {
	var parts []string
	i := 0
	for i < len(h) {
		e := h[i]
		if e.Kind == KindInv && i+1 < len(h) && h[i+1].Kind == KindRet && Matches(e, h[i+1]) {
			r := h[i+1]
			if e.Arg != nil {
				parts = append(parts, fmt.Sprintf("%s%d(%s,%v)->%v", e.Op, int(e.Tx), e.Obj, e.Arg, r.Ret))
			} else {
				parts = append(parts, fmt.Sprintf("%s%d(%s)->%v", e.Op, int(e.Tx), e.Obj, r.Ret))
			}
			i += 2
			continue
		}
		parts = append(parts, e.String())
		i++
	}
	return strings.Join(parts, " ")
}

// Format renders the history as a per-transaction timeline, one line per
// transaction, with events placed in global order — a textual analogue of
// the paper's Figures 1 and 2. Useful for debugging opacity violations.
func (h History) Format() string {
	txs := h.Transactions()
	col := make(map[TxID]int, len(txs))
	for i, tx := range txs {
		col[tx] = i
	}
	lines := make([][]string, len(txs))
	for _, e := range h {
		c := col[e.Tx]
		for i := range lines {
			if i == c {
				lines[i] = append(lines[i], e.String())
			} else {
				lines[i] = append(lines[i], strings.Repeat(" ", len(e.String())))
			}
		}
	}
	var b strings.Builder
	for i, tx := range txs {
		fmt.Fprintf(&b, "T%-3d | %s\n", int(tx), strings.TrimRight(strings.Join(lines[i], " "), " "))
	}
	return b.String()
}
