package history

import "testing"

// FuzzParse checks that the textual-history parser never panics and that
// anything it accepts re-renders and re-parses to the same events
// whenever the history is well-formed (String() merges inv/ret pairs, so
// the round trip is only guaranteed for parseable outputs; we assert the
// weaker "no panic, stable second parse" on everything).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2",
		"inv1(x.write,3) A1 inv2(y.read) ret2(y.read)->7",
		"inc1(c)->ok add1(c,5)->ok get1(c)->6 tryC1 C1",
		"tryA7 A7 tryC12 C12",
		"# comment\nw1(x,1)\n",
		"r2(x)->hello contains1(s,5)->true",
		"))((",
		"w(x)",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		h, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted input: rendering must be reparseable to the same
		// events.
		s := h.String()
		h2, err := Parse(s)
		if err != nil {
			t.Fatalf("String output %q failed to reparse: %v", s, err)
		}
		if len(h) != len(h2) {
			t.Fatalf("round trip changed length: %d vs %d", len(h), len(h2))
		}
		for i := range h {
			if h[i] != h2[i] {
				t.Fatalf("round trip changed event %d: %v vs %v", i, h[i], h2[i])
			}
		}
		// WellFormed must not panic on arbitrary accepted histories.
		_ = h.WellFormed()
	})
}
