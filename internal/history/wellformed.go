package history

import "fmt"

// txPhase is the per-transaction state machine used to decide
// well-formedness. For every transaction Ti, H|Ti must be a prefix of
// O · F where O is a sequence of operation executions and F is one of
// ⟨inv, A⟩, ⟨tryA, A⟩, ⟨tryC, C⟩ or ⟨tryC, A⟩ (paper, §4).
type txPhase int

const (
	phaseIdle          txPhase = iota // between operation executions
	phaseOpPending                    // operation invoked, response pending
	phaseCommitPending                // tryC issued, C/A pending
	phaseAbortPending                 // tryA issued, A pending
	phaseCommitted
	phaseAborted
)

// WellFormedError describes the first well-formedness violation found in
// a history.
type WellFormedError struct {
	Index int   // position of the offending event in the history
	Ev    Event // the offending event
	Msg   string
}

func (e *WellFormedError) Error() string {
	return fmt.Sprintf("history not well-formed at event %d (%s): %s", e.Index, e.Ev, e.Msg)
}

// WellFormed checks that h is a well-formed history and returns a
// *WellFormedError describing the first violation, or nil. The rules,
// from §4 of the paper, applied to each H|Ti independently:
//
//   - events strictly alternate invocation / matching response;
//   - no event follows a commit or abort event;
//   - only a commit or abort event can follow a commit-try event;
//   - only an abort event can follow an abort-try event;
//   - an abort event may arrive in place of an operation response.
func (h History) WellFormed() error {
	phase := make(map[TxID]txPhase)
	pending := make(map[TxID]Event)
	for i, e := range h {
		p, seen := phase[e.Tx]
		if !seen {
			p = phaseIdle
		}
		fail := func(msg string) error {
			ev := e
			return &WellFormedError{Index: i, Ev: ev, Msg: msg}
		}
		switch p {
		case phaseCommitted:
			return fail("event follows commit event")
		case phaseAborted:
			return fail("event follows abort event")
		case phaseIdle:
			switch e.Kind {
			case KindInv:
				phase[e.Tx] = phaseOpPending
				pending[e.Tx] = e
			case KindTryCommit:
				phase[e.Tx] = phaseCommitPending
			case KindTryAbort:
				phase[e.Tx] = phaseAbortPending
			default:
				return fail("response event with no pending invocation")
			}
		case phaseOpPending:
			switch e.Kind {
			case KindRet:
				if !Matches(pending[e.Tx], e) {
					return fail(fmt.Sprintf("response does not match pending invocation %s", pending[e.Tx]))
				}
				phase[e.Tx] = phaseIdle
			case KindAbort:
				phase[e.Tx] = phaseAborted
			default:
				return fail("invocation while an operation response is pending")
			}
		case phaseCommitPending:
			switch e.Kind {
			case KindCommit:
				phase[e.Tx] = phaseCommitted
			case KindAbort:
				phase[e.Tx] = phaseAborted
			default:
				return fail("only commit or abort may follow a commit-try")
			}
		case phaseAbortPending:
			if e.Kind != KindAbort {
				return fail("only abort may follow an abort-try")
			}
			phase[e.Tx] = phaseAborted
		}
	}
	return nil
}

// MustWellFormed panics if h is not well-formed. It is intended for test
// fixtures and example construction where malformed histories are
// programming errors.
func (h History) MustWellFormed() History {
	if err := h.WellFormed(); err != nil {
		panic(err)
	}
	return h
}
