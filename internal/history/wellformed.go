package history

import "fmt"

// txPhase is the per-transaction state machine used to decide
// well-formedness. For every transaction Ti, H|Ti must be a prefix of
// O · F where O is a sequence of operation executions and F is one of
// ⟨inv, A⟩, ⟨tryA, A⟩, ⟨tryC, C⟩ or ⟨tryC, A⟩ (paper, §4).
type txPhase int

const (
	phaseIdle          txPhase = iota // between operation executions
	phaseOpPending                    // operation invoked, response pending
	phaseCommitPending                // tryC issued, C/A pending
	phaseAbortPending                 // tryA issued, A pending
	phaseCommitted
	phaseAborted
)

// WellFormedError describes the first well-formedness violation found in
// a history.
type WellFormedError struct {
	Index int   // position of the offending event in the history
	Ev    Event // the offending event
	Msg   string
}

func (e *WellFormedError) Error() string {
	return fmt.Sprintf("history not well-formed at event %d (%s): %s", e.Index, e.Ev, e.Msg)
}

// wfErr builds the error for one offending event. A plain function, not
// a per-event closure: WellFormed runs on every checker call.
func wfErr(i int, e Event, msg string) error {
	return &WellFormedError{Index: i, Ev: e, Msg: msg}
}

// WellFormed checks that h is a well-formed history and returns a
// *WellFormedError describing the first violation, or nil. The rules,
// from §4 of the paper, applied to each H|Ti independently:
//
//   - events strictly alternate invocation / matching response;
//   - no event follows a commit or abort event;
//   - only a commit or abort event can follow a commit-try event;
//   - only an abort event can follow an abort-try event;
//   - an abort event may arrive in place of an operation response.
func (h History) WellFormed() error {
	// Per-transaction state lives in small parallel slices scanned
	// linearly — WellFormed guards every checker call, and for the
	// transaction counts of checkable histories a map (and the
	// per-event closure the previous implementation allocated for its
	// error path) costs more than the scan.
	txs := make([]TxID, 0, 8)
	phases := make([]txPhase, 0, 8)
	pendings := make([]Event, 0, 8)
	for i, e := range h {
		t := indexOfTx(txs, e.Tx)
		if t < 0 {
			if len(txs) == 32 {
				// Enough transactions to make the linear scan
				// quadratic; restart on the map-based path.
				return h.wellFormedMap()
			}
			t = len(txs)
			txs = append(txs, e.Tx)
			phases = append(phases, phaseIdle)
			pendings = append(pendings, Event{})
		}
		p := phases[t]
		switch p {
		case phaseCommitted:
			return wfErr(i, e, "event follows commit event")
		case phaseAborted:
			return wfErr(i, e, "event follows abort event")
		case phaseIdle:
			switch e.Kind {
			case KindInv:
				phases[t] = phaseOpPending
				pendings[t] = e
			case KindTryCommit:
				phases[t] = phaseCommitPending
			case KindTryAbort:
				phases[t] = phaseAbortPending
			default:
				return wfErr(i, e, "response event with no pending invocation")
			}
		case phaseOpPending:
			switch e.Kind {
			case KindRet:
				if !Matches(pendings[t], e) {
					return wfErr(i, e, fmt.Sprintf("response does not match pending invocation %s", pendings[t]))
				}
				phases[t] = phaseIdle
			case KindAbort:
				phases[t] = phaseAborted
			default:
				return wfErr(i, e, "invocation while an operation response is pending")
			}
		case phaseCommitPending:
			switch e.Kind {
			case KindCommit:
				phases[t] = phaseCommitted
			case KindAbort:
				phases[t] = phaseAborted
			default:
				return wfErr(i, e, "only commit or abort may follow a commit-try")
			}
		case phaseAbortPending:
			if e.Kind != KindAbort {
				return wfErr(i, e, "only abort may follow an abort-try")
			}
			phases[t] = phaseAborted
		}
	}
	return nil
}

// MustWellFormed panics if h is not well-formed. It is intended for test
// fixtures and example construction where malformed histories are
// programming errors.
func (h History) MustWellFormed() History {
	if err := h.WellFormed(); err != nil {
		panic(err)
	}
	return h
}

// wellFormedMap is WellFormed with map-backed per-transaction state, for
// histories with too many transactions for the linear fast path.
func (h History) wellFormedMap() error {
	phases := make(map[TxID]txPhase)
	pendings := make(map[TxID]Event)
	for i, e := range h {
		switch phases[e.Tx] {
		case phaseCommitted:
			return wfErr(i, e, "event follows commit event")
		case phaseAborted:
			return wfErr(i, e, "event follows abort event")
		case phaseIdle:
			switch e.Kind {
			case KindInv:
				phases[e.Tx] = phaseOpPending
				pendings[e.Tx] = e
			case KindTryCommit:
				phases[e.Tx] = phaseCommitPending
			case KindTryAbort:
				phases[e.Tx] = phaseAbortPending
			default:
				return wfErr(i, e, "response event with no pending invocation")
			}
		case phaseOpPending:
			switch e.Kind {
			case KindRet:
				if !Matches(pendings[e.Tx], e) {
					return wfErr(i, e, fmt.Sprintf("response does not match pending invocation %s", pendings[e.Tx]))
				}
				phases[e.Tx] = phaseIdle
			case KindAbort:
				phases[e.Tx] = phaseAborted
			default:
				return wfErr(i, e, "invocation while an operation response is pending")
			}
		case phaseCommitPending:
			switch e.Kind {
			case KindCommit:
				phases[e.Tx] = phaseCommitted
			case KindAbort:
				phases[e.Tx] = phaseAborted
			default:
				return wfErr(i, e, "only commit or abort may follow a commit-try")
			}
		case phaseAbortPending:
			if e.Kind != KindAbort {
				return wfErr(i, e, "only abort may follow an abort-try")
			}
			phases[e.Tx] = phaseAborted
		}
	}
	return nil
}
