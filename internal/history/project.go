package history

// Sub returns H|Ti: the longest subsequence of h containing only events
// of transaction tx.
func (h History) Sub(tx TxID) History {
	var out History
	for _, e := range h {
		if e.Tx == tx {
			out = append(out, e)
		}
	}
	return out
}

// Obj returns H|ob: the longest subsequence of h containing only
// operation invocation and operation response events on shared object ob.
func (h History) Obj(ob ObjID) History {
	var out History
	for _, e := range h {
		if (e.Kind == KindInv || e.Kind == KindRet) && e.Obj == ob {
			out = append(out, e)
		}
	}
	return out
}

// Transactions returns the transactions in h (Ti ∈ H iff H|Ti is
// non-empty), in order of their first event.
func (h History) Transactions() []TxID {
	seen := make(map[TxID]bool)
	var out []TxID
	for _, e := range h {
		if !seen[e.Tx] {
			seen[e.Tx] = true
			out = append(out, e.Tx)
		}
	}
	return out
}

// Contains reports whether Ti ∈ H, i.e. whether h has at least one event
// of tx.
func (h History) Contains(tx TxID) bool {
	for _, e := range h {
		if e.Tx == tx {
			return true
		}
	}
	return false
}

// Objects returns the shared objects on which at least one operation
// invocation or response appears in h, in order of first appearance.
func (h History) Objects() []ObjID {
	seen := make(map[ObjID]bool)
	var out []ObjID
	for _, e := range h {
		if e.Kind != KindInv && e.Kind != KindRet {
			continue
		}
		if !seen[e.Obj] {
			seen[e.Obj] = true
			out = append(out, e.Obj)
		}
	}
	return out
}

// PendingInv returns the pending invocation event of tx in h, if any: an
// invocation event of tx with no matching response following it in H|Ti.
// In a well-formed history at most one invocation can be pending per
// transaction (the last event of H|Ti).
func (h History) PendingInv(tx TxID) (Event, bool) {
	sub := h.Sub(tx)
	if len(sub) == 0 {
		return Event{}, false
	}
	last := sub[len(sub)-1]
	if last.Kind.Invocation() {
		return last, true
	}
	return Event{}, false
}

// OpExecs returns the operation executions of tx in h, in order,
// including a trailing pending operation invocation if any. Commit-try,
// abort-try, commit and abort events are not operation executions and are
// omitted.
func (h History) OpExecs(tx TxID) []OpExec {
	var out []OpExec
	var pend *OpExec
	for _, e := range h {
		if e.Tx != tx {
			continue
		}
		switch e.Kind {
		case KindInv:
			pend = &OpExec{Tx: tx, Obj: e.Obj, Op: e.Op, Arg: e.Arg, Pending: true}
		case KindRet:
			if pend != nil {
				pend.Ret = e.Ret
				pend.Pending = false
				out = append(out, *pend)
				pend = nil
			}
		case KindAbort:
			// An abort may arrive instead of an operation response; the
			// invocation stays pending.
		}
	}
	if pend != nil {
		out = append(out, *pend)
	}
	return out
}
