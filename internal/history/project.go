package history

// Sub returns H|Ti: the longest subsequence of h containing only events
// of transaction tx.
func (h History) Sub(tx TxID) History {
	var out History
	for _, e := range h {
		if e.Tx == tx {
			out = append(out, e)
		}
	}
	return out
}

// Obj returns H|ob: the longest subsequence of h containing only
// operation invocation and operation response events on shared object ob.
func (h History) Obj(ob ObjID) History {
	var out History
	for _, e := range h {
		if (e.Kind == KindInv || e.Kind == KindRet) && e.Obj == ob {
			out = append(out, e)
		}
	}
	return out
}

// Transactions returns the transactions in h (Ti ∈ H iff H|Ti is
// non-empty), in order of their first event.
func (h History) Transactions() []TxID {
	// Histories under checking rarely have more than a handful of
	// transactions, and Transactions sits on every checker call: dedup by
	// linear scan of the output and fall back to a map only when the
	// transaction count makes the scan quadratic enough to matter.
	out := make([]TxID, 0, 8)
scan:
	for _, e := range h {
		for _, tx := range out {
			if tx == e.Tx {
				continue scan
			}
		}
		out = append(out, e.Tx)
		if len(out) > 32 {
			return h.transactionsMap(out)
		}
	}
	return out
}

// transactionsMap finishes Transactions with a map once the linear-scan
// dedup stops being cheap; out holds the distinct transactions found so
// far, in first-event order.
func (h History) transactionsMap(out []TxID) []TxID {
	seen := make(map[TxID]bool, len(out))
	for _, tx := range out {
		seen[tx] = true
	}
	for _, e := range h {
		if !seen[e.Tx] {
			seen[e.Tx] = true
			out = append(out, e.Tx)
		}
	}
	return out
}

// Contains reports whether Ti ∈ H, i.e. whether h has at least one event
// of tx.
func (h History) Contains(tx TxID) bool {
	for _, e := range h {
		if e.Tx == tx {
			return true
		}
	}
	return false
}

// Objects returns the shared objects on which at least one operation
// invocation or response appears in h, in order of first appearance.
func (h History) Objects() []ObjID {
	// Same linear-scan dedup rationale as Transactions: object counts are
	// small on the checker hot path.
	out := make([]ObjID, 0, 8)
scan:
	for _, e := range h {
		if e.Kind != KindInv && e.Kind != KindRet {
			continue
		}
		for _, ob := range out {
			if ob == e.Obj {
				continue scan
			}
		}
		out = append(out, e.Obj)
		if len(out) > 32 {
			return h.objectsMap(out)
		}
	}
	return out
}

// objectsMap finishes Objects with a map once the linear-scan dedup
// stops being cheap.
func (h History) objectsMap(out []ObjID) []ObjID {
	seen := make(map[ObjID]bool, len(out))
	for _, ob := range out {
		seen[ob] = true
	}
	for _, e := range h {
		if e.Kind != KindInv && e.Kind != KindRet {
			continue
		}
		if !seen[e.Obj] {
			seen[e.Obj] = true
			out = append(out, e.Obj)
		}
	}
	return out
}

// PendingInv returns the pending invocation event of tx in h, if any: an
// invocation event of tx with no matching response following it in H|Ti.
// In a well-formed history at most one invocation can be pending per
// transaction (the last event of H|Ti).
func (h History) PendingInv(tx TxID) (Event, bool) {
	sub := h.Sub(tx)
	if len(sub) == 0 {
		return Event{}, false
	}
	last := sub[len(sub)-1]
	if last.Kind.Invocation() {
		return last, true
	}
	return Event{}, false
}

// OpExecs returns the operation executions of tx in h, in order,
// including a trailing pending operation invocation if any. Commit-try,
// abort-try, commit and abort events are not operation executions and are
// omitted.
func (h History) OpExecs(tx TxID) []OpExec {
	var out []OpExec
	var pend *OpExec
	for _, e := range h {
		if e.Tx != tx {
			continue
		}
		switch e.Kind {
		case KindInv:
			pend = &OpExec{Tx: tx, Obj: e.Obj, Op: e.Op, Arg: e.Arg, Pending: true}
		case KindRet:
			if pend != nil {
				pend.Ret = e.Ret
				pend.Pending = false
				out = append(out, *pend)
				pend = nil
			}
		case KindAbort:
			// An abort may arrive instead of an operation response; the
			// invocation stays pending.
		}
	}
	if pend != nil {
		out = append(out, *pend)
	}
	return out
}

// OpExecsFor returns OpExecs(tx) for every transaction of txs, indexed
// like txs, in one pass over h. The per-transaction slices share one
// backing array, so bulk consumers (the serialization search prepares
// every transaction of a history at once) pay O(len(h)) and a constant
// number of allocations instead of one scan and one growing slice per
// transaction.
func (h History) OpExecsFor(txs []TxID) [][]OpExec {
	n := len(txs)
	var pos map[TxID]int
	if n > 32 {
		pos = make(map[TxID]int, n)
		for i, tx := range txs {
			pos[tx] = i
		}
	}
	at := func(tx TxID) int {
		if pos != nil {
			if i, ok := pos[tx]; ok {
				return i
			}
			return -1
		}
		return indexOfTx(txs, tx)
	}
	// First pass: per-transaction execution counts, mirroring the pending
	// logic of OpExecs (a response completes the latest invocation; a
	// trailing invocation is emitted as pending). counts, offs, fill and
	// the pending flags share one allocation.
	ints := make([]int, 4*n)
	counts, offs, fill, pendSet := ints[:n], ints[n:2*n], ints[2*n:3*n], ints[3*n:]
	for _, e := range h {
		i := at(e.Tx)
		if i < 0 {
			continue
		}
		switch e.Kind {
		case KindInv:
			pendSet[i] = 1
		case KindRet:
			if pendSet[i] == 1 {
				counts[i]++
				pendSet[i] = 0
			}
		}
	}
	total := 0
	for i, c := range counts {
		offs[i] = total
		total += c
		if pendSet[i] == 1 {
			total++
		}
		pendSet[i] = 0
	}
	// Second pass: fill, constructing each execution directly in its
	// final slot from the recorded invocation event — pendAt holds the
	// event index of the latest unanswered invocation per transaction
	// (-1 when none), so no OpExec is ever built twice or copied.
	buf := make([]OpExec, total)
	pendAt := counts // counts is spent; reuse its allocation
	for i := range pendAt {
		pendAt[i] = -1
	}
	for hi, e := range h {
		i := at(e.Tx)
		if i < 0 {
			continue
		}
		switch e.Kind {
		case KindInv:
			pendAt[i] = hi
		case KindRet:
			if pendAt[i] >= 0 {
				inv := h[pendAt[i]]
				buf[offs[i]+fill[i]] = OpExec{Tx: e.Tx, Obj: inv.Obj, Op: inv.Op, Arg: inv.Arg, Ret: e.Ret}
				fill[i]++
				pendAt[i] = -1
			}
		}
	}
	out := make([][]OpExec, n)
	for i, tx := range txs {
		if pendAt[i] >= 0 {
			inv := h[pendAt[i]]
			buf[offs[i]+fill[i]] = OpExec{Tx: tx, Obj: inv.Obj, Op: inv.Op, Arg: inv.Arg, Pending: true}
			fill[i]++
		}
		out[i] = buf[offs[i] : offs[i]+fill[i]]
	}
	return out
}
