package history

import "fmt"

// Span is one transaction's extent in a history: the indexes of its
// first and last events so far, and whether it has completed (its last
// event is a commit or abort). The real-time order ≺H is a pure function
// of spans — a completed transaction precedes exactly the transactions
// whose first event follows its last — which is why the Appender
// maintains them: consumers that re-check every growing prefix derive
// the ≺H constraints from the maintained spans instead of re-scanning
// the whole event sequence per check.
type Span struct {
	First, Last int
	Completed   bool
}

// Appender grows a history one event at a time while maintaining
// well-formedness incrementally: Append rejects (and does not record) any
// event that would make the history ill-formed, using the same
// per-transaction state machine as WellFormed but paying O(1) per event
// instead of re-scanning the whole history. It is the append-driven
// counterpart of Builder, built for consumers that interleave appends
// with checks on the growing history — the online opacity monitor taps a
// live STM run into one Appender and hands every prefix to the
// incremental checker without ever re-validating from scratch.
//
// Alongside the phase machine the Appender maintains the transaction
// list (first-event order) and per-transaction spans, so Transactions
// and Spans are O(1) views rather than per-call scans, and it supports
// Truncate: dropping a fully-completed prefix and re-basing the
// remainder, the history-layer half of checkpointed monitor truncation.
//
// The zero Appender is not ready for use; call NewAppender.
type Appender struct {
	h        History
	phases   map[TxID]txPhase
	pendings map[TxID]Event

	txs     []TxID         // live transactions, in first-event order
	spanIdx map[TxID]int32 // index into txs/spans
	spans   []Span
	open    int // live transactions not yet completed
}

// NewAppender returns an empty Appender.
func NewAppender() *Appender {
	return &Appender{
		phases:   make(map[TxID]txPhase),
		pendings: make(map[TxID]Event),
		spanIdx:  make(map[TxID]int32),
	}
}

// Append validates ev against the history built so far and appends it.
// On a well-formedness violation it returns a *WellFormedError (with
// Index set to the position the event would have occupied) and leaves
// the history unchanged, so a monitor can flag the offending event and
// keep its previously validated prefix intact.
func (a *Appender) Append(ev Event) error {
	i := len(a.h)
	switch a.phases[ev.Tx] {
	case phaseCommitted:
		return wfErr(i, ev, "event follows commit event")
	case phaseAborted:
		return wfErr(i, ev, "event follows abort event")
	case phaseIdle:
		switch ev.Kind {
		case KindInv:
			a.phases[ev.Tx] = phaseOpPending
			a.pendings[ev.Tx] = ev
		case KindTryCommit:
			a.phases[ev.Tx] = phaseCommitPending
		case KindTryAbort:
			a.phases[ev.Tx] = phaseAbortPending
		default:
			return wfErr(i, ev, "response event with no pending invocation")
		}
	case phaseOpPending:
		switch ev.Kind {
		case KindRet:
			if !Matches(a.pendings[ev.Tx], ev) {
				return wfErr(i, ev, "response does not match pending invocation "+a.pendings[ev.Tx].String())
			}
			a.phases[ev.Tx] = phaseIdle
		case KindAbort:
			a.phases[ev.Tx] = phaseAborted
		default:
			return wfErr(i, ev, "invocation while an operation response is pending")
		}
	case phaseCommitPending:
		switch ev.Kind {
		case KindCommit:
			a.phases[ev.Tx] = phaseCommitted
		case KindAbort:
			a.phases[ev.Tx] = phaseAborted
		default:
			return wfErr(i, ev, "only commit or abort may follow a commit-try")
		}
	case phaseAbortPending:
		if ev.Kind != KindAbort {
			return wfErr(i, ev, "only abort may follow an abort-try")
		}
		a.phases[ev.Tx] = phaseAborted
	}
	a.record(ev, i)
	a.h = append(a.h, ev)
	return nil
}

// record folds one accepted event into the transaction list and spans.
func (a *Appender) record(ev Event, i int) {
	t, ok := a.spanIdx[ev.Tx]
	if !ok {
		t = int32(len(a.txs))
		a.spanIdx[ev.Tx] = t
		a.txs = append(a.txs, ev.Tx)
		a.spans = append(a.spans, Span{First: i})
		a.open++
	}
	sp := &a.spans[t]
	sp.Last = i
	if ev.Kind == KindCommit || ev.Kind == KindAbort {
		sp.Completed = true
		a.open--
	}
}

// Len returns the number of events appended so far.
func (a *Appender) Len() int { return len(a.h) }

// History returns the history built so far as a view: the slice shares
// the Appender's backing array and stays valid across further Appends
// (they never write below the returned length) but not across Reset or
// Truncate. Use Snapshot for an independent copy.
func (a *Appender) History() History { return a.h }

// Snapshot returns an independent copy of the history built so far.
func (a *Appender) Snapshot() History { return a.h.Clone() }

// Transactions returns the transactions of the history built so far, in
// order of their first event, exactly as History.Transactions would —
// but as an O(1) view of the maintained list instead of an O(events)
// scan. The slice is valid until the next Append, Truncate or Reset and
// must not be mutated.
func (a *Appender) Transactions() []TxID { return a.txs }

// Spans returns the per-transaction spans, indexed like Transactions.
// Same view semantics as Transactions.
func (a *Appender) Spans() []Span { return a.spans }

// Open returns the number of transactions that have started but not yet
// completed (no commit or abort event). A history with Open() == 0 is a
// quiescent point: every later event belongs to a transaction whose
// first event follows every current transaction's last, so the real-time
// order forces all current transactions before all future ones — the
// stability condition checkpointed truncation relies on.
func (a *Appender) Open() int { return a.open }

// Status returns the status of tx in the history built so far, exactly
// as History.Status would report it, but in O(1) from the maintained
// phase instead of a backward scan.
func (a *Appender) Status(tx TxID) Status {
	switch a.phases[tx] {
	case phaseCommitPending:
		return StatusCommitPending
	case phaseCommitted:
		return StatusCommitted
	case phaseAborted:
		return StatusAborted
	default:
		return StatusLive
	}
}

// Truncate drops the first n events and re-bases the remainder as a
// standalone history, as if only events n.. had ever been appended. The
// cut must be stable: no transaction may have events on both sides, and
// every transaction entirely inside the dropped prefix must have
// completed — Truncate returns an error (and changes nothing) otherwise.
//
// Dropped transactions are forgotten entirely, including their terminal
// phases: a later event reusing a dropped transaction's identifier is
// treated as a fresh transaction rather than rejected as following a
// commit/abort. Bounding monitor state requires forgetting; a correct TM
// never reuses transaction identifiers (the model gives retries fresh
// ones), so only already-buggy streams can exploit the blind spot.
//
// Histories previously returned by History become invalid, as with
// Reset; Snapshot copies are unaffected.
func (a *Appender) Truncate(n int) error {
	if n < 0 || n > len(a.h) {
		return fmt.Errorf("history: truncate %d of %d events", n, len(a.h))
	}
	if n == 0 {
		return nil
	}
	for t, sp := range a.spans {
		if sp.First < n && (sp.Last >= n || !sp.Completed) {
			return fmt.Errorf("history: truncation at %d is not a stable cut: T%d spans it or is incomplete",
				n, int(a.txs[t]))
		}
	}
	a.h = append(a.h[:0], a.h[n:]...)
	keep := 0
	for t, sp := range a.spans {
		tx := a.txs[t]
		if sp.First < n {
			delete(a.spanIdx, tx)
			delete(a.phases, tx)
			delete(a.pendings, tx)
			continue
		}
		a.txs[keep] = tx
		a.spans[keep] = Span{First: sp.First - n, Last: sp.Last - n, Completed: sp.Completed}
		a.spanIdx[tx] = int32(keep)
		keep++
	}
	a.txs = a.txs[:keep]
	a.spans = a.spans[:keep]
	return nil
}

// Reset discards the history and all transaction state, retaining the
// allocated capacity for reuse. Histories previously returned by History
// become invalid; Snapshot copies are unaffected.
func (a *Appender) Reset() {
	a.h = a.h[:0]
	clear(a.phases)
	clear(a.pendings)
	a.txs = a.txs[:0]
	a.spans = a.spans[:0]
	clear(a.spanIdx)
	a.open = 0
}
