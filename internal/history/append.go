package history

// Appender grows a history one event at a time while maintaining
// well-formedness incrementally: Append rejects (and does not record) any
// event that would make the history ill-formed, using the same
// per-transaction state machine as WellFormed but paying O(1) per event
// instead of re-scanning the whole history. It is the append-driven
// counterpart of Builder, built for consumers that interleave appends
// with checks on the growing history — the online opacity monitor taps a
// live STM run into one Appender and hands every prefix to the
// incremental checker without ever re-validating from scratch.
//
// The zero Appender is not ready for use; call NewAppender.
type Appender struct {
	h        History
	phases   map[TxID]txPhase
	pendings map[TxID]Event
}

// NewAppender returns an empty Appender.
func NewAppender() *Appender {
	return &Appender{
		phases:   make(map[TxID]txPhase),
		pendings: make(map[TxID]Event),
	}
}

// Append validates ev against the history built so far and appends it.
// On a well-formedness violation it returns a *WellFormedError (with
// Index set to the position the event would have occupied) and leaves
// the history unchanged, so a monitor can flag the offending event and
// keep its previously validated prefix intact.
func (a *Appender) Append(ev Event) error {
	i := len(a.h)
	switch a.phases[ev.Tx] {
	case phaseCommitted:
		return wfErr(i, ev, "event follows commit event")
	case phaseAborted:
		return wfErr(i, ev, "event follows abort event")
	case phaseIdle:
		switch ev.Kind {
		case KindInv:
			a.phases[ev.Tx] = phaseOpPending
			a.pendings[ev.Tx] = ev
		case KindTryCommit:
			a.phases[ev.Tx] = phaseCommitPending
		case KindTryAbort:
			a.phases[ev.Tx] = phaseAbortPending
		default:
			return wfErr(i, ev, "response event with no pending invocation")
		}
	case phaseOpPending:
		switch ev.Kind {
		case KindRet:
			if !Matches(a.pendings[ev.Tx], ev) {
				return wfErr(i, ev, "response does not match pending invocation "+a.pendings[ev.Tx].String())
			}
			a.phases[ev.Tx] = phaseIdle
		case KindAbort:
			a.phases[ev.Tx] = phaseAborted
		default:
			return wfErr(i, ev, "invocation while an operation response is pending")
		}
	case phaseCommitPending:
		switch ev.Kind {
		case KindCommit:
			a.phases[ev.Tx] = phaseCommitted
		case KindAbort:
			a.phases[ev.Tx] = phaseAborted
		default:
			return wfErr(i, ev, "only commit or abort may follow a commit-try")
		}
	case phaseAbortPending:
		if ev.Kind != KindAbort {
			return wfErr(i, ev, "only abort may follow an abort-try")
		}
		a.phases[ev.Tx] = phaseAborted
	}
	a.h = append(a.h, ev)
	return nil
}

// Len returns the number of events appended so far.
func (a *Appender) Len() int { return len(a.h) }

// History returns the history built so far as a view: the slice shares
// the Appender's backing array and stays valid across further Appends
// (they never write below the returned length) but not across Reset.
// Use Snapshot for an independent copy.
func (a *Appender) History() History { return a.h }

// Snapshot returns an independent copy of the history built so far.
func (a *Appender) Snapshot() History { return a.h.Clone() }

// Status returns the status of tx in the history built so far, exactly
// as History.Status would report it, but in O(1) from the maintained
// phase instead of a backward scan.
func (a *Appender) Status(tx TxID) Status {
	switch a.phases[tx] {
	case phaseCommitPending:
		return StatusCommitPending
	case phaseCommitted:
		return StatusCommitted
	case phaseAborted:
		return StatusAborted
	default:
		return StatusLive
	}
}

// Reset discards the history and all transaction state, retaining the
// allocated capacity for reuse. Histories previously returned by History
// become invalid; Snapshot copies are unaffected.
func (a *Appender) Reset() {
	a.h = a.h[:0]
	clear(a.phases)
	clear(a.pendings)
}
