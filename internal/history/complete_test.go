package history

import "testing"

func TestCompletionEventsCommitPending(t *testing.T) {
	h := h3() // T1 commit-pending, T2 live after a completed read
	if evs := h.CompletionEvents(1, true); len(evs) != 1 || evs[0].Kind != KindCommit {
		t.Errorf("committing commit-pending T1: got %v", evs)
	}
	if evs := h.CompletionEvents(1, false); len(evs) != 1 || evs[0].Kind != KindAbort {
		t.Errorf("aborting commit-pending T1: got %v", evs)
	}
	// T2 is idle-live: forcefully aborted via tryC, A (paper's H'3).
	evs := h.CompletionEvents(2, false)
	if len(evs) != 2 || evs[0].Kind != KindTryCommit || evs[1].Kind != KindAbort {
		t.Errorf("aborting idle live T2: got %v", evs)
	}
}

// TestFootprintAndCommute pins the independence relation the opacity
// search's partial-order reduction is built on: Footprint lists exactly
// the objects of completed operation executions (pending invocations
// excluded), and Commute is the irreflexive, symmetric disjointness of
// those footprints — the same relation internal/core renders as bitsets.
func TestFootprintAndCommute(t *testing.T) {
	h := NewBuilder().
		Write(1, "x", 1).Read(1, "y", 0).
		Write(2, "z", 2).
		Read(3, "y", 0).
		Inv(4, "x", "read", nil). // pending: not part of T4's footprint
		MustHistory()

	wantFoot := map[TxID][]ObjID{
		1: {"x", "y"},
		2: {"z"},
		3: {"y"},
		4: nil,
	}
	for tx, want := range wantFoot {
		got := h.Footprint(tx)
		if len(got) != len(want) {
			t.Fatalf("Footprint(T%d) = %v, want %v", int(tx), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Footprint(T%d) = %v, want %v", int(tx), got, want)
			}
		}
	}

	disjoint := func(a, b []ObjID) bool {
		for _, x := range a {
			for _, y := range b {
				if x == y {
					return false
				}
			}
		}
		return true
	}
	txs := h.Transactions()
	for _, t1 := range txs {
		if h.Commute(t1, t1) {
			t.Errorf("Commute(T%d, T%d) must be false (irreflexive)", int(t1), int(t1))
		}
		for _, t2 := range txs {
			if t1 == t2 {
				continue
			}
			want := disjoint(wantFoot[t1], wantFoot[t2])
			if got := h.Commute(t1, t2); got != want {
				t.Errorf("Commute(T%d, T%d) = %v, want %v", int(t1), int(t2), got, want)
			}
			if h.Commute(t1, t2) != h.Commute(t2, t1) {
				t.Errorf("Commute(T%d, T%d) not symmetric", int(t1), int(t2))
			}
		}
	}
}

func TestCompletionEventsPendingInv(t *testing.T) {
	h := NewBuilder().Inv(1, "x", "read", nil).MustHistory()
	evs := h.CompletionEvents(1, false)
	if len(evs) != 1 || evs[0].Kind != KindAbort {
		t.Errorf("live tx with pending op invocation gets a bare abort: %v", evs)
	}
}

func TestCompletionEventsPendingTryA(t *testing.T) {
	h := NewBuilder().Read(1, "x", 0).TryA(1).MustHistory()
	evs := h.CompletionEvents(1, false)
	if len(evs) != 1 || evs[0].Kind != KindAbort {
		t.Errorf("pending tryA completes with a single abort: %v", evs)
	}
}

func TestCompletionEventsCompleted(t *testing.T) {
	h := h1()
	for _, tx := range h.Transactions() {
		if evs := h.CompletionEvents(tx, false); evs != nil {
			t.Errorf("completed T%d needs no completion events, got %v", tx, evs)
		}
	}
}

func TestCompletionEventsCommitLivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("committing a non-commit-pending live transaction must panic")
		}
	}()
	h3().CompletionEvents(2, true)
}

func TestCompletionsH3(t *testing.T) {
	// Paper, §4: in each history of Complete(H3), T1 is either committed
	// or aborted, and T2 is forcefully aborted.
	h := h3()
	comps := h.Completions()
	if len(comps) != 2 {
		t.Fatalf("Complete(H3) has %d canonical members, want 2", len(comps))
	}
	sawCommit, sawAbort := false, false
	for _, c := range comps {
		if err := c.WellFormed(); err != nil {
			t.Errorf("completion not well-formed: %v", err)
		}
		if !c.Complete() {
			t.Errorf("completion not complete: %v", c)
		}
		switch {
		case c.Committed(1):
			sawCommit = true
		case c.Aborted(1):
			sawAbort = true
		}
		if !c.Aborted(2) || !c.ForcefullyAborted(2) {
			t.Errorf("T2 must be forcefully aborted in every completion of H3")
		}
		// Completions extend h: the first len(h) events are unchanged.
		if !equalEvents(c[:len(h)], h) {
			t.Errorf("completion does not extend the original history")
		}
	}
	if !sawCommit || !sawAbort {
		t.Error("Complete(H3) must contain both a committing and an aborting completion of T1")
	}
}

func TestCompletionsOfCompleteHistory(t *testing.T) {
	comps := h1().Completions()
	if len(comps) != 1 {
		t.Fatalf("a complete history has exactly one completion, got %d", len(comps))
	}
	if !Equivalent(comps[0], h1()) {
		t.Error("the only completion of a complete history is itself")
	}
}

func TestEachCompletionEarlyStop(t *testing.T) {
	// Two commit-pending transactions → 4 completions; stop after 2.
	h := NewBuilder().Write(1, "x", 1).TryC(1).Write(2, "y", 1).TryC(2).MustHistory()
	n := 0
	h.EachCompletion(func(History) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop after 2, got %d calls", n)
	}
	if got := len(h.Completions()); got != 4 {
		t.Errorf("two commit-pending txs give 4 completions, got %d", got)
	}
}

func TestCompleteWithExplicit(t *testing.T) {
	h := h3()
	c := h.CompleteWith(map[TxID]bool{1: true})
	if !c.Committed(1) || !c.Aborted(2) {
		t.Errorf("CompleteWith{1:true}: T1 committed=%v T2 aborted=%v", c.Committed(1), c.Aborted(2))
	}
	c2 := h.CompleteWith(nil)
	if !c2.Aborted(1) {
		t.Error("CompleteWith(nil) aborts commit-pending T1")
	}
}

func TestH4CommitPendingDuality(t *testing.T) {
	// Paper §5.2, history H4: T2 is commit-pending; T3 reads T2's write
	// while T1 still reads the old values.
	h := NewBuilder().
		Read(1, "x", 0).
		Write(2, "x", 5).Write(2, "y", 5).TryC(2).
		Read(3, "y", 5).
		Read(1, "y", 0).
		MustHistory()
	if h.Status(2) != StatusCommitPending {
		t.Fatalf("T2 must be commit-pending in H4")
	}
	comps := h.Completions()
	// T2 has 2 choices; T1 and T3 are live (always aborted): 2 members.
	if len(comps) != 2 {
		t.Fatalf("Complete(H4) canonical members = %d, want 2", len(comps))
	}
	for _, c := range comps {
		if !c.Aborted(1) || !c.Aborted(3) {
			t.Error("live T1 and T3 must be aborted in completions of H4")
		}
	}
}
