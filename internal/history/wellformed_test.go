package history

import (
	"strings"
	"testing"
)

func TestWellFormedAccepts(t *testing.T) {
	cases := []struct {
		name string
		h    History
	}{
		{"empty", nil},
		{"H1", h1()},
		{"H2", h2()},
		{"H3 (commit-pending + live)", h3()},
		{"pending op invocation", NewBuilder().Inv(1, "x", "read", nil).History()},
		{"abort instead of op response", NewBuilder().Inv(1, "x", "read", nil).A(1).History()},
		{"voluntary abort", NewBuilder().Read(1, "x", 0).TryA(1).A(1).History()},
		{"tryC then A", NewBuilder().Write(1, "x", 1).Aborts(1).History()},
		{"pending tryA", NewBuilder().Read(1, "x", 0).TryA(1).History()},
		{"interleaved transactions", h1()},
	}
	for _, c := range cases {
		if err := c.h.WellFormed(); err != nil {
			t.Errorf("%s: unexpected well-formedness error: %v", c.name, err)
		}
	}
}

func TestWellFormedRejects(t *testing.T) {
	cases := []struct {
		name string
		h    History
		want string
	}{
		{
			"event after commit",
			History{TryC(1), Commit(1), TryC(1)},
			"follows commit",
		},
		{
			"event after abort",
			History{TryA(1), Abort(1), TryC(1)},
			"follows abort",
		},
		{
			"ret without inv",
			History{Ret(1, "x", "read", 0)},
			"no pending invocation",
		},
		{
			"mismatched ret object",
			History{Inv(1, "x", "read", nil), Ret(1, "y", "read", 0)},
			"does not match",
		},
		{
			"mismatched ret op",
			History{Inv(1, "x", "read", nil), Ret(1, "x", "write", OK)},
			"does not match",
		},
		{
			"inv while op pending",
			History{Inv(1, "x", "read", nil), Inv(1, "y", "read", nil)},
			"while an operation response is pending",
		},
		{
			"op after tryC",
			History{TryC(1), Inv(1, "x", "read", nil)},
			"only commit or abort",
		},
		{
			"commit after tryA",
			History{TryA(1), Commit(1)},
			"only abort",
		},
		{
			"commit without tryC",
			History{Commit(1)},
			"no pending invocation",
		},
	}
	for _, c := range cases {
		err := c.h.WellFormed()
		if err == nil {
			t.Errorf("%s: expected well-formedness violation", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestWellFormedInterleavingOK(t *testing.T) {
	// Well-formedness is per transaction; arbitrary interleaving across
	// transactions is fine, including a response of T2 between T1's inv
	// and ret.
	h := History{
		Inv(1, "x", "read", nil),
		Inv(2, "y", "write", 3),
		Ret(2, "y", "write", OK),
		Ret(1, "x", "read", 0),
	}
	if err := h.WellFormed(); err != nil {
		t.Fatalf("interleaved history should be well-formed: %v", err)
	}
}

func TestMustWellFormedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustWellFormed must panic on a malformed history")
		}
	}()
	History{Commit(1)}.MustWellFormed()
}
