package history

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses the textual history notation used by cmd/opacheck and by
// (h History).String(). Tokens are separated by whitespace; supported
// forms, where <n> is a transaction number:
//
//	r<n>(x)->1          read execution on register x returning 1
//	w<n>(x,1)           write execution (return value ok implied)
//	w<n>(x,1)->ok       write execution, explicit return
//	inc<n>(c)->ok       generic operation execution, no argument
//	add<n>(c,5)->ok     generic operation execution with argument
//	inv<n>(x.read)      pending operation invocation
//	inv<n>(x.write,3)   pending operation invocation with argument
//	ret<n>(x.read)->1   lone operation response (pairs with earlier inv)
//	tryC<n> C<n> tryA<n> A<n>   control events
//
// Values that look like integers parse as int; "ok" parses as the OK
// constant; anything else parses as a string. Blank lines are ignored,
// and a token starting with '#' comments out the rest of its line — so
// both full-line comments and the trailing "# seed=N" annotations of
// cmd/histgen parse cleanly.
func Parse(s string) (History, error) {
	var h History
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for _, tok := range strings.Fields(line) {
			if strings.HasPrefix(tok, "#") {
				break
			}
			evs, err := parseToken(tok)
			if err != nil {
				return nil, fmt.Errorf("history: parsing %q: %w", tok, err)
			}
			h = append(h, evs...)
		}
	}
	return h, nil
}

// MustParse is Parse, panicking on error; for tests and fixtures.
func MustParse(s string) History {
	h, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return h
}

func parseValue(s string) Value {
	if s == OK {
		return OK
	}
	if n, err := strconv.Atoi(s); err == nil {
		return n
	}
	if s == "true" {
		return true
	}
	if s == "false" {
		return false
	}
	return s
}

// splitHead splits "name123(..." into (name, 123, rest-after-paren) or
// returns ok=false for tokens without parentheses.
func splitHead(tok string) (name string, tx TxID, inner string, ok bool) {
	open := strings.IndexByte(tok, '(')
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return "", 0, "", false
	}
	head := tok[:open]
	inner = tok[open+1 : len(tok)-1]
	// The transaction number is the trailing digit run of the head.
	i := len(head)
	for i > 0 && head[i-1] >= '0' && head[i-1] <= '9' {
		i--
	}
	if i == len(head) || i == 0 {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(head[i:])
	if err != nil {
		return "", 0, "", false
	}
	return head[:i], TxID(n), inner, true
}

func parseToken(tok string) ([]Event, error) {
	// Control events first: tryC7, tryA7, C7, A7.
	for _, p := range []struct {
		prefix string
		make   func(TxID) Event
	}{
		{"tryC", TryC}, {"tryA", TryA}, {"C", Commit}, {"A", Abort},
	} {
		if strings.HasPrefix(tok, p.prefix) {
			if n, err := strconv.Atoi(tok[len(p.prefix):]); err == nil {
				return []Event{p.make(TxID(n))}, nil
			}
		}
	}

	// Operation-like tokens: head(inner) or head(inner)->ret.
	body, retStr, hasRet := tok, "", false
	if i := strings.Index(tok, ")->"); i >= 0 {
		body, retStr, hasRet = tok[:i+1], tok[i+3:], true
	}
	name, tx, inner, ok := splitHead(body)
	if !ok {
		return nil, fmt.Errorf("unrecognized token")
	}

	switch name {
	case "inv":
		obj, op, arg, err := parseObjOp(inner)
		if err != nil {
			return nil, err
		}
		return []Event{Inv(tx, obj, op, arg)}, nil
	case "ret":
		obj, op, _, err := parseObjOp(inner)
		if err != nil {
			return nil, err
		}
		if !hasRet {
			return nil, fmt.Errorf("ret token requires ->value")
		}
		return []Event{Ret(tx, obj, op, parseValue(retStr))}, nil
	}

	// Operation execution: r2(x)->1, w1(x,1), inc3(c)->ok, ...
	op := name
	if op == "r" {
		op = "read"
	}
	if op == "w" {
		op = "write"
	}
	parts := strings.SplitN(inner, ",", 2)
	obj := ObjID(strings.TrimSpace(parts[0]))
	var arg Value
	if len(parts) == 2 {
		arg = parseValue(strings.TrimSpace(parts[1]))
	}
	var ret Value
	switch {
	case hasRet:
		ret = parseValue(retStr)
	case op == "write":
		ret = OK
	default:
		return nil, fmt.Errorf("operation %q requires ->value", op)
	}
	if op == "read" && arg != nil {
		return nil, fmt.Errorf("read takes no argument")
	}
	return []Event{Inv(tx, obj, op, arg), Ret(tx, obj, op, ret)}, nil
}

// parseObjOp parses "obj.op" or "obj.op,arg".
func parseObjOp(inner string) (ObjID, string, Value, error) {
	var argStr string
	if i := strings.Index(inner, ","); i >= 0 {
		inner, argStr = inner[:i], strings.TrimSpace(inner[i+1:])
	}
	dot := strings.Index(inner, ".")
	if dot < 0 {
		return "", "", nil, fmt.Errorf("expected obj.op")
	}
	var arg Value
	if argStr != "" {
		arg = parseValue(argStr)
	}
	return ObjID(strings.TrimSpace(inner[:dot])), strings.TrimSpace(inner[dot+1:]), arg, nil
}
