package history

// txSpan records the index of the first and last event of a transaction
// within a history.
type txSpan struct {
	first, last int
}

func (h History) spans() map[TxID]txSpan {
	out := make(map[TxID]txSpan)
	for i, e := range h {
		s, ok := out[e.Tx]
		if !ok {
			out[e.Tx] = txSpan{first: i, last: i}
			continue
		}
		s.last = i
		out[e.Tx] = s
	}
	return out
}

// Precedes reports whether Ti ≺H Tj: Ti is completed in h and the first
// event of Tj follows the last event of Ti. ≺H is the real-time order of
// transactions in h (paper, §4).
func (h History) Precedes(ti, tj TxID) bool {
	if !h.Completed(ti) {
		return false
	}
	sp := h.spans()
	si, oki := sp[ti]
	sj, okj := sp[tj]
	return oki && okj && si.last < sj.first
}

// Concurrent reports whether ti and tj are concurrent in h: neither
// precedes the other in real-time order.
func (h History) Concurrent(ti, tj TxID) bool {
	if ti == tj {
		return false
	}
	return !h.Precedes(ti, tj) && !h.Precedes(tj, ti)
}

// RealTimeOrder returns ≺H as an explicit list of ordered pairs, useful
// for display and for constructing the Lrt edges of the opacity graph.
func (h History) RealTimeOrder() [][2]TxID {
	return h.RealTimeOrderOf(h.Transactions())
}

// RealTimeOrderOf is RealTimeOrder restricted to the given transactions,
// for callers that already hold h.Transactions() — the checkers compute
// the transaction list once per call and this variant avoids deriving it
// (and the per-transaction span map) a second time. txs must not contain
// duplicates; transactions without events in h are ignored.
func (h History) RealTimeOrderOf(txs []TxID) [][2]TxID {
	n := len(txs)
	// Spans and completion per transaction, indexed like txs, in one
	// event scan: a transaction is completed exactly when its last event
	// is a commit or an abort, so the span already answers it.
	spans := make([]txSpan, n)
	completed := make([]bool, n)
	for i := range spans {
		spans[i] = txSpan{first: -1}
	}
	for i, e := range h {
		j := indexOfTx(txs, e.Tx)
		if j < 0 {
			continue
		}
		if spans[j].first < 0 {
			spans[j].first = i
		}
		spans[j].last = i
		completed[j] = e.Kind == KindCommit || e.Kind == KindAbort
	}
	// Count, then fill exactly — ≺H pairs are quadratic in the worst
	// case and append-growing the slice showed up in checker profiles.
	pairs := 0
	for i := range txs {
		if !completed[i] {
			continue
		}
		for j := range txs {
			if i != j && spans[j].first > spans[i].last {
				pairs++
			}
		}
	}
	if pairs == 0 {
		return nil
	}
	out := make([][2]TxID, 0, pairs)
	for i, ti := range txs {
		if !completed[i] {
			continue
		}
		for j, tj := range txs {
			if i != j && spans[j].first > spans[i].last {
				out = append(out, [2]TxID{ti, tj})
			}
		}
	}
	return out
}

// indexOfTx returns the position of tx in txs, or -1. Linear scan: the
// checker hot path has small transaction counts and no allocation to
// spare for a map.
func indexOfTx(txs []TxID, tx TxID) int {
	for i, t := range txs {
		if t == tx {
			return i
		}
	}
	return -1
}

// PreservesRealTimeOrder reports whether h2 preserves the real-time order
// of h: ≺H ⊆ ≺H2, i.e. whenever Ti ≺H Tj then Ti ≺H2 Tj. Transactions of
// h missing from h2 make the check fail only if they participate in ≺H.
func PreservesRealTimeOrder(h, h2 History) bool {
	for _, p := range h.RealTimeOrder() {
		if !h2.Precedes(p[0], p[1]) {
			return false
		}
	}
	return true
}

// Sequential reports whether h is a sequential history: no two
// transactions in h are concurrent. Equivalently, the events of each
// transaction form a contiguous block and every block except possibly the
// last belongs to a completed transaction.
func (h History) Sequential() bool {
	txs := h.Transactions()
	for i, ti := range txs {
		for _, tj := range txs[i+1:] {
			if h.Concurrent(ti, tj) {
				return false
			}
		}
	}
	return true
}

// Complete reports whether h is a complete history: it contains no live
// transaction.
func (h History) Complete() bool {
	for _, tx := range h.Transactions() {
		if h.Live(tx) {
			return false
		}
	}
	return true
}
