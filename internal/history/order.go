package history

// txSpan records the index of the first and last event of a transaction
// within a history.
type txSpan struct {
	first, last int
}

func (h History) spans() map[TxID]txSpan {
	out := make(map[TxID]txSpan)
	for i, e := range h {
		s, ok := out[e.Tx]
		if !ok {
			out[e.Tx] = txSpan{first: i, last: i}
			continue
		}
		s.last = i
		out[e.Tx] = s
	}
	return out
}

// Precedes reports whether Ti ≺H Tj: Ti is completed in h and the first
// event of Tj follows the last event of Ti. ≺H is the real-time order of
// transactions in h (paper, §4).
func (h History) Precedes(ti, tj TxID) bool {
	if !h.Completed(ti) {
		return false
	}
	sp := h.spans()
	si, oki := sp[ti]
	sj, okj := sp[tj]
	return oki && okj && si.last < sj.first
}

// Concurrent reports whether ti and tj are concurrent in h: neither
// precedes the other in real-time order.
func (h History) Concurrent(ti, tj TxID) bool {
	if ti == tj {
		return false
	}
	return !h.Precedes(ti, tj) && !h.Precedes(tj, ti)
}

// RealTimeOrder returns ≺H as an explicit list of ordered pairs, useful
// for display and for constructing the Lrt edges of the opacity graph.
func (h History) RealTimeOrder() [][2]TxID {
	txs := h.Transactions()
	sp := h.spans()
	var out [][2]TxID
	for _, ti := range txs {
		if !h.Completed(ti) {
			continue
		}
		for _, tj := range txs {
			if ti == tj {
				continue
			}
			if sp[ti].last < sp[tj].first {
				out = append(out, [2]TxID{ti, tj})
			}
		}
	}
	return out
}

// PreservesRealTimeOrder reports whether h2 preserves the real-time order
// of h: ≺H ⊆ ≺H2, i.e. whenever Ti ≺H Tj then Ti ≺H2 Tj. Transactions of
// h missing from h2 make the check fail only if they participate in ≺H.
func PreservesRealTimeOrder(h, h2 History) bool {
	for _, p := range h.RealTimeOrder() {
		if !h2.Precedes(p[0], p[1]) {
			return false
		}
	}
	return true
}

// Sequential reports whether h is a sequential history: no two
// transactions in h are concurrent. Equivalently, the events of each
// transaction form a contiguous block and every block except possibly the
// last belongs to a completed transaction.
func (h History) Sequential() bool {
	txs := h.Transactions()
	for i, ti := range txs {
		for _, tj := range txs[i+1:] {
			if h.Concurrent(ti, tj) {
				return false
			}
		}
	}
	return true
}

// Complete reports whether h is a complete history: it contains no live
// transaction.
func (h History) Complete() bool {
	for _, tx := range h.Transactions() {
		if h.Live(tx) {
			return false
		}
	}
	return true
}
