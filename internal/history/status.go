package history

// Status is the status of a transaction in a history (paper, §4,
// "Status of transactions").
type Status int

const (
	// StatusLive: the transaction is not completed.
	StatusLive Status = iota
	// StatusCommitPending: live, and has issued a commit-try event.
	StatusCommitPending
	// StatusCommitted: the last event of the transaction is C_i.
	StatusCommitted
	// StatusAborted: the last event of the transaction is A_i.
	StatusAborted
)

// String returns the human-readable status name.
func (s Status) String() string {
	switch s {
	case StatusLive:
		return "live"
	case StatusCommitPending:
		return "commit-pending"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// Completed reports whether the status is committed or aborted.
func (s Status) Completed() bool { return s == StatusCommitted || s == StatusAborted }

// Live reports whether the transaction is live (not completed);
// commit-pending transactions are live.
func (s Status) Live() bool { return !s.Completed() }

// Status returns the status of tx in h. A transaction with no events in h
// is reported live (it has not completed); use Contains to distinguish.
// Only the last event of tx matters, so the scan runs backwards and
// allocates nothing — Status sits on the hot path of every checker call.
func (h History) Status(tx TxID) Status {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Tx != tx {
			continue
		}
		switch h[i].Kind {
		case KindCommit:
			return StatusCommitted
		case KindAbort:
			return StatusAborted
		case KindTryCommit:
			return StatusCommitPending
		default:
			return StatusLive
		}
	}
	return StatusLive
}

// Committed reports whether tx is committed in h.
func (h History) Committed(tx TxID) bool { return h.Status(tx) == StatusCommitted }

// Aborted reports whether tx is aborted in h.
func (h History) Aborted(tx TxID) bool { return h.Status(tx) == StatusAborted }

// Completed reports whether tx is completed (committed or aborted) in h.
func (h History) Completed(tx TxID) bool { return h.Status(tx).Completed() }

// Live reports whether tx is live (not completed) in h.
func (h History) Live(tx TxID) bool { return h.Status(tx).Live() }

// CommitPending reports whether tx is live and has issued a commit-try
// event in h.
func (h History) CommitPending(tx TxID) bool { return h.Status(tx) == StatusCommitPending }

// ForcefullyAborted reports whether tx is aborted in h without having
// issued an abort-try event (it was aborted by the TM, not voluntarily).
func (h History) ForcefullyAborted(tx TxID) bool {
	if !h.Aborted(tx) {
		return false
	}
	for _, e := range h.Sub(tx) {
		if e.Kind == KindTryAbort {
			return false
		}
	}
	return true
}

// CommittedTxs returns the committed transactions of h in order of first
// event.
func (h History) CommittedTxs() []TxID {
	var out []TxID
	for _, tx := range h.Transactions() {
		if h.Committed(tx) {
			out = append(out, tx)
		}
	}
	return out
}

// LiveTxs returns the live transactions of h (including commit-pending
// ones) in order of first event.
func (h History) LiveTxs() []TxID {
	var out []TxID
	for _, tx := range h.Transactions() {
		if h.Live(tx) {
			out = append(out, tx)
		}
	}
	return out
}

// CommitPendingTxs returns the commit-pending transactions of h in order
// of first event.
func (h History) CommitPendingTxs() []TxID {
	var out []TxID
	for _, tx := range h.Transactions() {
		if h.CommitPending(tx) {
			out = append(out, tx)
		}
	}
	return out
}
