package history

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomHistory builds a random well-formed history directly from a
// rand.Rand — the generator used by testing/quick via the Generate
// implementation below.
func randomHistory(r *rand.Rand) History {
	type st struct {
		id    TxID
		phase txPhase
		pend  Event
	}
	n := 1 + r.Intn(5)
	txs := make([]*st, n)
	for i := range txs {
		txs[i] = &st{id: TxID(i + 1), phase: phaseIdle}
	}
	objs := []ObjID{"x", "y", "z"}
	var h History
	for steps := r.Intn(30); steps > 0; steps-- {
		t := txs[r.Intn(n)]
		switch t.phase {
		case phaseIdle:
			switch r.Intn(4) {
			case 0:
				e := Inv(t.id, objs[r.Intn(len(objs))], "read", nil)
				h = append(h, e)
				t.pend, t.phase = e, phaseOpPending
			case 1:
				e := Inv(t.id, objs[r.Intn(len(objs))], "write", r.Intn(100))
				h = append(h, e)
				t.pend, t.phase = e, phaseOpPending
			case 2:
				h = append(h, TryC(t.id))
				t.phase = phaseCommitPending
			case 3:
				h = append(h, TryA(t.id))
				t.phase = phaseAbortPending
			}
		case phaseOpPending:
			if r.Intn(8) == 0 {
				h = append(h, Abort(t.id))
				t.phase = phaseAborted
			} else {
				var ret Value
				if t.pend.Op == "read" {
					ret = r.Intn(100)
				} else {
					ret = OK
				}
				h = append(h, Ret(t.id, t.pend.Obj, t.pend.Op, ret))
				t.phase = phaseIdle
			}
		case phaseCommitPending:
			if r.Intn(2) == 0 {
				h = append(h, Commit(t.id))
				t.phase = phaseCommitted
			} else {
				h = append(h, Abort(t.id))
				t.phase = phaseAborted
			}
		case phaseAbortPending:
			h = append(h, Abort(t.id))
			t.phase = phaseAborted
		}
	}
	return h
}

// qh wraps History so testing/quick can generate it.
type qh struct{ H History }

// Generate implements quick.Generator.
func (qh) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(qh{H: randomHistory(r)})
}

func TestQuickGeneratedWellFormed(t *testing.T) {
	f := func(x qh) bool { return x.H.WellFormed() == nil }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEquivalenceReflexive(t *testing.T) {
	f := func(x qh) bool { return Equivalent(x.H, x.H) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickReinterleavingEquivalent(t *testing.T) {
	// Concatenating per-transaction projections yields an equivalent,
	// sequential-by-blocks history; equivalence must hold both ways.
	f := func(x qh) bool {
		var s History
		for _, tx := range x.H.Transactions() {
			s = append(s, x.H.Sub(tx)...)
		}
		return Equivalent(x.H, s) && Equivalent(s, x.H)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickProjectionPartition(t *testing.T) {
	// The per-transaction projections partition the events: their total
	// length equals the history's, and each retains order.
	f := func(x qh) bool {
		total := 0
		for _, tx := range x.H.Transactions() {
			sub := x.H.Sub(tx)
			total += len(sub)
			for _, e := range sub {
				if e.Tx != tx {
					return false
				}
			}
		}
		return total == len(x.H)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRealTimeOrderIsStrictPartialOrder(t *testing.T) {
	f := func(x qh) bool {
		txs := x.H.Transactions()
		for _, a := range txs {
			if x.H.Precedes(a, a) {
				return false // irreflexive
			}
			for _, b := range txs {
				if x.H.Precedes(a, b) && x.H.Precedes(b, a) {
					return false // asymmetric
				}
				for _, c := range txs {
					if x.H.Precedes(a, b) && x.H.Precedes(b, c) && !x.H.Precedes(a, c) {
						return false // transitive
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompletionsInvariants(t *testing.T) {
	f := func(x qh) bool {
		want := 1
		for range x.H.CommitPendingTxs() {
			want *= 2
		}
		got := 0
		ok := true
		x.H.EachCompletion(func(c History) bool {
			got++
			if c.WellFormed() != nil || !c.Complete() {
				ok = false
				return false
			}
			// Completion extends the original.
			for i := range x.H {
				if c[i] != x.H[i] {
					ok = false
					return false
				}
			}
			return true
		})
		return ok && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	// String() output must reparse to the identical event sequence for
	// histories with int/OK values (which randomHistory produces).
	f := func(x qh) bool {
		back, err := Parse(x.H.String())
		if err != nil {
			return false
		}
		return equalEvents(back, x.H)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStatusPartition(t *testing.T) {
	// Every transaction is exactly one of: committed, aborted, live; and
	// commit-pending implies live.
	f := func(x qh) bool {
		for _, tx := range x.H.Transactions() {
			s := x.H.Status(tx)
			if s.Completed() == s.Live() {
				return false
			}
			if s == StatusCommitPending && !x.H.Live(tx) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
