package history

import (
	"strings"
	"testing"
)

// TestOpSignatureValueTypes: the value rendering must keep values
// distinct across dynamic types — colliding renders would merge the
// signatures of transactions that step object specifications
// differently.
func TestOpSignatureValueTypes(t *testing.T) {
	type point struct{ X int }
	vals := []Value{nil, 0, "0", int64(0), true, false, "true", point{1}, "{1}"}
	seen := map[string]Value{}
	for _, v := range vals {
		k := string(appendSigValue(nil, v))
		if prev, dup := seen[k]; dup {
			t.Errorf("values %#v and %#v both render as %q", prev, v, k)
		}
		seen[k] = v
	}
}

// TestOpSignatureIdentity: equal completed operation sequences — and
// nothing else — produce equal signatures. The cases cover the
// properties the symmetry reduction in internal/core relies on:
// transaction identity is irrelevant, pending invocations are excluded,
// and any difference in object, operation, argument or result separates
// the signatures.
func TestOpSignatureIdentity(t *testing.T) {
	execsOf := func(src string, tx TxID) []OpExec {
		h := MustParse(src)
		for _, e := range h.OpExecsFor([]TxID{tx}) {
			return e
		}
		return nil
	}

	t.Run("tx-identity-irrelevant", func(t *testing.T) {
		a := execsOf("r1(x)->0 w1(y,2) tryC1 C1", 1)
		b := execsOf("r7(x)->0 w7(y,2) tryC7 C7", 7)
		if OpSignature(a) != OpSignature(b) {
			t.Error("identical op sequences under different TxIDs must share a signature")
		}
	})

	t.Run("pending-excluded", func(t *testing.T) {
		done := execsOf("r1(x)->0 tryC1", 1)
		h := MustParse("r1(x)->0")
		pending := append(h.OpExecsFor([]TxID{1})[0], OpExec{Tx: 1, Obj: "y", Op: "read", Pending: true})
		if OpSignature(done) != OpSignature(pending) {
			t.Error("a pending invocation must not perturb the signature")
		}
	})

	t.Run("differences-separate", func(t *testing.T) {
		base := "r1(x)->0 w1(y,2) tryC1 C1"
		for _, variant := range []string{
			"r1(z)->0 w1(y,2) tryC1 C1", // object
			"w1(x,0) w1(y,2) tryC1 C1",  // operation
			"r1(x)->0 w1(y,3) tryC1 C1", // argument
			"r1(x)->5 w1(y,2) tryC1 C1", // result
			"w1(y,2) r1(x)->0 tryC1 C1", // order
			"r1(x)->0 tryC1 C1",         // length
		} {
			if OpSignature(execsOf(base, 1)) == OpSignature(execsOf(variant, 1)) {
				t.Errorf("%q and %q must not share a signature", base, variant)
			}
		}
	})

	t.Run("no-forged-boundaries", func(t *testing.T) {
		// One operation on object "xy" vs one on "x" with a crafted
		// operation name: unframed concatenation would collide.
		a := []OpExec{{Obj: "xy", Op: "read", Ret: 0}}
		b := []OpExec{{Obj: "x", Op: "yread", Ret: 0}}
		if OpSignature(a) == OpSignature(b) {
			t.Error("field content leaked across a frame boundary")
		}
	})
}

// TestAppendOpSignatureReusesBuffer: the append form extends the given
// buffer in place — the interning hot path in internal/core depends on
// it not allocating a fresh rendering per call.
func TestAppendOpSignatureReusesBuffer(t *testing.T) {
	execs := MustParse("w1(x,1) tryC1 C1").OpExecsFor([]TxID{1})[0]
	buf := make([]byte, 0, 256)
	out := AppendOpSignature(buf, execs)
	if len(out) == 0 || &out[0] != &buf[:1][0] {
		t.Error("AppendOpSignature did not extend the provided buffer")
	}
	if !strings.Contains(string(out), "x") {
		t.Error("signature does not mention the object")
	}
}
