package history

import "fmt"

// CompletionEvents returns the events that must be appended to h to
// complete transaction tx under the given decision for commit-pending
// transactions (commit == true commits it, false aborts it). The rules
// follow the definition of Complete(H) (paper, §4):
//
//   - a live transaction with a pending operation invocation receives an
//     abort event in place of the operation response (F = ⟨inv, A⟩);
//   - a live transaction with a pending abort-try receives its abort;
//   - a commit-pending transaction receives C or A according to commit;
//   - a live transaction with no pending invocation is aborted by
//     appending ⟨tryC, A⟩ — a forceful abort. (The definition of
//     Complete(H) inserts only commit-try, commit and abort events, never
//     abort-try events; compare the paper's completion H'3 which appends
//     tryC2, A2 to the live read-only T2.)
//
// Completing an already-completed transaction yields no events. Asking to
// commit a transaction that is not commit-pending panics: only
// commit-pending transactions may be committed by a completion.
func (h History) CompletionEvents(tx TxID, commit bool) []Event {
	switch h.Status(tx) {
	case StatusCommitted, StatusAborted:
		return nil
	case StatusCommitPending:
		if commit {
			return []Event{Commit(tx)}
		}
		return []Event{Abort(tx)}
	default: // live, not commit-pending
		if commit {
			panic(fmt.Sprintf("history: transaction T%d is live but not commit-pending; it can only be aborted by a completion", int(tx)))
		}
		if _, pending := h.PendingInv(tx); pending {
			return []Event{Abort(tx)}
		}
		return []Event{TryC(tx), Abort(tx)}
	}
}

// CompleteWith returns the member of Complete(h) in which every
// commit-pending transaction listed in commits is committed, every other
// commit-pending transaction is aborted, and every other live transaction
// is aborted. Transactions in commits that are not commit-pending in h
// cause a panic. When h is already complete the result is h itself, not
// a copy — treat it as immutable, per the module's convention.
func (h History) CompleteWith(commits map[TxID]bool) History {
	txs := h.Transactions()
	extra := 0
	for _, tx := range txs {
		if h.Live(tx) {
			extra += 2 // at most ⟨tryC, A⟩ per live transaction
		}
	}
	if extra == 0 {
		// h is already complete and is itself the (unique) member of
		// Complete(h); histories are treated as immutable, so no
		// defensive copy is taken.
		return h
	}
	out := make(History, len(h), len(h)+extra)
	copy(out, h)
	for _, tx := range txs {
		if !h.Live(tx) {
			continue
		}
		out = append(out, h.CompletionEvents(tx, commits[tx])...)
	}
	return out
}

// EachCompletion invokes fn on every history in Complete(h), i.e. on
// every choice of commit/abort for the commit-pending transactions of h
// (2^p histories for p commit-pending transactions; non-commit-pending
// live transactions are always aborted). Iteration stops early if fn
// returns false. The history passed to fn may be retained, but — like
// CompleteWith's result — it aliases h itself when h is already
// complete, so treat it as immutable (the standing convention for
// histories in this module).
//
// The paper's Complete(H) also contains histories that differ in the
// relative order of the inserted events; those are all equivalent (≡) to
// one of the histories produced here and are indistinguishable to every
// correctness criterion in this module, so only one canonical insertion
// order is enumerated.
func (h History) EachCompletion(fn func(History) bool) {
	cp := h.CommitPendingTxs()
	if len(cp) > 62 {
		panic("history: too many commit-pending transactions to enumerate completions")
	}
	n := uint64(1) << uint(len(cp))
	for mask := uint64(0); mask < n; mask++ {
		commits := make(map[TxID]bool, len(cp))
		for i, tx := range cp {
			commits[tx] = mask&(1<<uint(i)) != 0
		}
		if !fn(h.CompleteWith(commits)) {
			return
		}
	}
}

// Footprint returns the objects accessed by the completed operation
// executions of tx in h, in order of first access. Pending invocations
// are excluded: a sequence ending with a pending invocation is always in
// Seq(ob) when its completed prefix is, so a pending access can neither
// constrain nor be constrained by the placement of other transactions.
func (h History) Footprint(tx TxID) []ObjID {
	seen := make(map[ObjID]bool)
	var out []ObjID
	for _, e := range h.OpExecs(tx) {
		if e.Pending || seen[e.Obj] {
			continue
		}
		seen[e.Obj] = true
		out = append(out, e.Obj)
	}
	return out
}

// Commute reports whether t1 and t2 have disjoint footprints in h: no
// shared object is accessed by completed operation executions of both.
// Commuting transactions can be serialized in either relative order with
// the same legality verdicts and the same resulting object states — the
// independence relation exploited by partial-order reduction in the
// opacity search.
func (h History) Commute(t1, t2 TxID) bool {
	if t1 == t2 {
		return false
	}
	objs := make(map[ObjID]bool)
	for _, ob := range h.Footprint(t1) {
		objs[ob] = true
	}
	for _, ob := range h.Footprint(t2) {
		if objs[ob] {
			return false
		}
	}
	return true
}

// Completions materializes Complete(h) as a slice. It panics if h has
// more than 16 commit-pending transactions (65536 completions); use
// EachCompletion for lazy iteration in that case.
func (h History) Completions() []History {
	if len(h.CommitPendingTxs()) > 16 {
		panic("history: too many commit-pending transactions to materialize Complete(H); use EachCompletion")
	}
	var out []History
	h.EachCompletion(func(c History) bool {
		out = append(out, c)
		return true
	})
	return out
}
