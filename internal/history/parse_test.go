package history

import (
	"strings"
	"testing"
)

func TestParseH1(t *testing.T) {
	h, err := Parse("w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2")
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(h, h1()) {
		t.Errorf("parsed history not equivalent to H1:\n got %v\nwant %v", h, h1())
	}
	if !equalEvents(h, h1()) {
		t.Errorf("parsed history differs from H1 event-for-event")
	}
}

func TestParseMultilineComments(t *testing.T) {
	src := `
# the paper's H3
w1(x,1) tryC1
r2(x)->1
`
	h, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !equalEvents(h, h3()) {
		t.Errorf("parsed %v, want H3", h)
	}
}

func TestParseGenericOps(t *testing.T) {
	h, err := Parse("inc1(c)->ok add1(c,5)->ok get1(c)->6 tryC1 C1")
	if err != nil {
		t.Fatal(err)
	}
	execs := h.OpExecs(1)
	if len(execs) != 3 {
		t.Fatalf("got %d execs", len(execs))
	}
	if execs[0].Op != "inc" || execs[0].Ret != OK {
		t.Errorf("exec0 = %+v", execs[0])
	}
	if execs[1].Op != "add" || execs[1].Arg != 5 {
		t.Errorf("exec1 = %+v", execs[1])
	}
	if execs[2].Op != "get" || execs[2].Ret != 6 {
		t.Errorf("exec2 = %+v", execs[2])
	}
}

func TestParsePendingInvAndRet(t *testing.T) {
	h, err := Parse("inv1(x.write,3) A1 inv2(y.read) ret2(y.read)->7")
	if err != nil {
		t.Fatal(err)
	}
	if h.Status(1) != StatusAborted {
		t.Error("T1 must be aborted")
	}
	execs := h.OpExecs(2)
	if len(execs) != 1 || execs[0].Pending || execs[0].Ret != 7 {
		t.Errorf("T2 execs = %+v", execs)
	}
	if err := h.WellFormed(); err != nil {
		t.Errorf("parsed history should be well-formed: %v", err)
	}
}

func TestParseControlEvents(t *testing.T) {
	h, err := Parse("tryA7 A7 tryC12 C12")
	if err != nil {
		t.Fatal(err)
	}
	if h[0].Kind != KindTryAbort || h[0].Tx != 7 {
		t.Errorf("h[0] = %v", h[0])
	}
	if h[3].Kind != KindCommit || h[3].Tx != 12 {
		t.Errorf("h[3] = %v", h[3])
	}
}

func TestParseValues(t *testing.T) {
	h, err := Parse("contains1(s,5)->true r2(x)->hello w3(x,ok)")
	if err != nil {
		t.Fatal(err)
	}
	if h.OpExecs(1)[0].Ret != true {
		t.Error("true must parse as bool")
	}
	if h.OpExecs(2)[0].Ret != "hello" {
		t.Error("bare word must parse as string")
	}
	if h.OpExecs(3)[0].Arg != OK {
		t.Error("ok must parse as the OK constant")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"r2(x)",      // read without return value
		"r2(x,3)->1", // read with argument
		"garbage",
		"inv1(xread)",     // missing dot
		"ret1(x.read)",    // ret without value
		"inc1(c)",         // generic op without return
		"w(x,1)",          // missing tx number
		"(x,1)->2",        // missing head
		"zzz",             // unrecognizable
		"r2(x)->1 broken", // second token bad
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for name, h := range map[string]History{"H1": h1(), "H2": h2(), "H3": h3()} {
		s := h.String()
		back, err := Parse(s)
		if err != nil {
			t.Errorf("%s: reparsing %q: %v", name, s, err)
			continue
		}
		if !equalEvents(back, h) {
			t.Errorf("%s: round trip changed history:\n  %v\n  %v", name, h, back)
		}
	}
}

func TestFormatTimeline(t *testing.T) {
	out := h1().Format()
	if !strings.Contains(out, "T1") || !strings.Contains(out, "T3") {
		t.Errorf("Format missing transaction rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("Format should emit one line per transaction, got %d", len(lines))
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic on bad input")
		}
	}()
	MustParse("not a history !!!")
}

func TestParseTrailingComment(t *testing.T) {
	// cmd/histgen annotates each line with "# seed=N"; the annotation and
	// full-line comments must both parse away.
	h, err := Parse("w1(x,1) tryC1 C1   # seed=7\n# a full-line comment\nr2(x)->1")
	if err != nil {
		t.Fatal(err)
	}
	want := History{
		Inv(1, "x", "write", 1), Ret(1, "x", "write", OK),
		TryC(1), Commit(1),
		Inv(2, "x", "read", nil), Ret(2, "x", "read", 1),
	}
	if len(h) != len(want) {
		t.Fatalf("parsed %d events, want %d: %v", len(h), len(want), h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, h[i], want[i])
		}
	}
}
