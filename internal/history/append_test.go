package history

import (
	"errors"
	"testing"
)

// TestAppenderMatchesWellFormed: the Appender accepts exactly the event
// sequences WellFormed accepts, event by event — the incremental state
// machine and the batch scanner are the same decision procedure.
func TestAppenderMatchesWellFormed(t *testing.T) {
	// A pool of events covering every kind, over two transactions and two
	// objects; exhaustive depth-limited enumeration of sequences.
	pool := []Event{
		Inv(1, "x", "read", nil), Ret(1, "x", "read", 0),
		Inv(1, "y", "write", 1), Ret(1, "y", "write", OK),
		TryC(1), TryA(1), Commit(1), Abort(1),
		Inv(2, "x", "write", 2), Ret(2, "x", "write", OK),
		TryC(2), Commit(2), Abort(2),
	}
	var seq History
	var walk func(depth int)
	checked := 0
	walk = func(depth int) {
		if depth == 0 {
			return
		}
		for _, ev := range pool {
			seq = append(seq, ev)
			batchErr := seq.WellFormed()
			// Replay the whole sequence through a fresh Appender; the
			// first rejected event must coincide with the batch verdict.
			a := NewAppender()
			var incErr error
			for _, e := range seq {
				if incErr = a.Append(e); incErr != nil {
					break
				}
			}
			if (batchErr == nil) != (incErr == nil) {
				t.Fatalf("divergence on %v: WellFormed=%v Appender=%v", seq, batchErr, incErr)
			}
			if batchErr != nil {
				var be, ie *WellFormedError
				if !errors.As(batchErr, &be) || !errors.As(incErr, &ie) {
					t.Fatalf("non-WellFormedError on %v: %v / %v", seq, batchErr, incErr)
				}
				if be.Index != ie.Index || be.Msg != ie.Msg {
					t.Fatalf("divergent error on %v: batch (%d, %q) vs incremental (%d, %q)",
						seq, be.Index, be.Msg, ie.Index, ie.Msg)
				}
			}
			checked++
			if batchErr == nil {
				// Only extend well-formed prefixes: an ill-formed sequence
				// stays ill-formed, nothing more to learn.
				walk(depth - 1)
			}
			seq = seq[:len(seq)-1]
		}
	}
	walk(4)
	if checked < 1000 {
		t.Fatalf("enumeration too small: %d sequences", checked)
	}
}

// TestAppenderRejectsAndKeepsPrefix: a rejected event leaves the
// appender's history and transaction state untouched.
func TestAppenderRejectsAndKeepsPrefix(t *testing.T) {
	a := NewAppender()
	for _, ev := range []Event{Inv(1, "x", "read", nil), Ret(1, "x", "read", 0), TryC(1)} {
		if err := a.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	bad := Inv(1, "y", "read", nil) // only C/A may follow tryC
	err := a.Append(bad)
	var wfe *WellFormedError
	if !errors.As(err, &wfe) {
		t.Fatalf("Append(%v) = %v, want WellFormedError", bad, err)
	}
	if wfe.Index != 3 {
		t.Errorf("error index %d, want 3", wfe.Index)
	}
	if a.Len() != 3 {
		t.Errorf("rejected event recorded: Len=%d", a.Len())
	}
	if got := a.Status(1); got != StatusCommitPending {
		t.Errorf("Status(1) after rejection = %v, want commit-pending", got)
	}
	// The transaction can still complete normally.
	if err := a.Append(Commit(1)); err != nil {
		t.Fatal(err)
	}
	if got := a.Status(1); got != StatusCommitted {
		t.Errorf("Status(1) = %v, want committed", got)
	}
}

// TestAppenderStatusMatchesHistory: the O(1) Status agrees with the
// History.Status scan at every step of a representative run.
func TestAppenderStatusMatchesHistory(t *testing.T) {
	evs := History{
		Inv(1, "x", "read", nil), Ret(1, "x", "read", 0),
		Inv(2, "x", "write", 1), TryA(3), Abort(3),
		Ret(2, "x", "write", OK), TryC(2), Commit(2),
		Inv(4, "y", "read", nil), Abort(4),
		TryC(1), Abort(1),
	}
	a := NewAppender()
	for i, ev := range evs {
		if err := a.Append(ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		for tx := TxID(1); tx <= 5; tx++ {
			if got, want := a.Status(tx), a.History().Status(tx); got != want {
				t.Fatalf("after event %d: Status(T%d) = %v, History says %v", i, tx, got, want)
			}
		}
	}
}

// TestAppenderViewAndReset: History returns a stable view across appends;
// Reset clears state but keeps Snapshot copies intact.
func TestAppenderViewAndReset(t *testing.T) {
	a := NewAppender()
	if err := a.Append(Inv(1, "x", "read", nil)); err != nil {
		t.Fatal(err)
	}
	view := a.History()
	if err := a.Append(Ret(1, "x", "read", 0)); err != nil {
		t.Fatal(err)
	}
	if len(view) != 1 || view[0].Kind != KindInv {
		t.Errorf("earlier view mutated by later append: %v", view)
	}
	snap := a.Snapshot()
	a.Reset()
	if a.Len() != 0 {
		t.Errorf("Len after Reset = %d", a.Len())
	}
	if got := a.Status(1); got != StatusLive {
		t.Errorf("Status(1) after Reset = %v, want live (unknown)", got)
	}
	if len(snap) != 2 {
		t.Errorf("snapshot affected by Reset: %v", snap)
	}
	// The appender is reusable after Reset.
	if err := a.Append(TryC(7)); err != nil {
		t.Fatal(err)
	}
	if got := a.Status(7); got != StatusCommitPending {
		t.Errorf("Status(7) = %v, want commit-pending", got)
	}
}

// TestAppenderSpansMatchScan: the maintained Transactions/Spans/Open
// views agree, after every event, with a brute-force scan of the history
// built so far.
func TestAppenderSpansMatchScan(t *testing.T) {
	evs := History{
		Inv(1, "x", "read", nil), Ret(1, "x", "read", 0),
		Inv(2, "x", "write", 1), TryA(3), Abort(3),
		Ret(2, "x", "write", OK), TryC(2), Commit(2),
		Inv(4, "y", "read", nil), Abort(4),
		TryC(1), Commit(1),
	}
	a := NewAppender()
	for i, ev := range evs {
		if err := a.Append(ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		h := a.History()
		wantTxs := h.Transactions()
		gotTxs := a.Transactions()
		if len(gotTxs) != len(wantTxs) {
			t.Fatalf("after event %d: Transactions() = %v, scan says %v", i, gotTxs, wantTxs)
		}
		open := 0
		for ti, tx := range wantTxs {
			if gotTxs[ti] != tx {
				t.Fatalf("after event %d: Transactions() = %v, scan says %v", i, gotTxs, wantTxs)
			}
			want := Span{First: -1}
			for j, e := range h {
				if e.Tx != tx {
					continue
				}
				if want.First == -1 {
					want.First = j
				}
				want.Last = j
				want.Completed = e.Kind == KindCommit || e.Kind == KindAbort
			}
			if !want.Completed {
				open++
			}
			if got := a.Spans()[ti]; got != want {
				t.Fatalf("after event %d: Spans()[T%d] = %+v, scan says %+v", i, int(tx), got, want)
			}
		}
		if got := a.Open(); got != open {
			t.Fatalf("after event %d: Open() = %d, scan says %d", i, got, open)
		}
	}
}

// TestAppenderTruncate: a stable cut re-bases the remainder exactly as
// if only the suffix had ever been appended.
func TestAppenderTruncate(t *testing.T) {
	prefix := History{
		Inv(1, "x", "write", 1), Ret(1, "x", "write", OK), TryC(1), Commit(1),
		TryA(2), Abort(2),
	}
	suffix := History{
		Inv(3, "x", "read", nil), Ret(3, "x", "read", 1),
		Inv(4, "y", "write", 2), Ret(4, "y", "write", OK), TryC(4), Commit(4),
	}
	a := NewAppender()
	for _, ev := range append(prefix[:len(prefix):len(prefix)], suffix...) {
		if err := a.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Truncate(len(prefix)); err != nil {
		t.Fatal(err)
	}
	// Reference: a fresh appender fed only the suffix.
	ref := NewAppender()
	for _, ev := range suffix {
		if err := ref.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if a.History().String() != ref.History().String() {
		t.Errorf("truncated history:\n%s\nwant:\n%s", a.History().Format(), ref.History().Format())
	}
	if got, want := a.Transactions(), ref.Transactions(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Transactions() = %v, want %v", got, want)
	}
	for i, want := range ref.Spans() {
		if got := a.Spans()[i]; got != want {
			t.Errorf("Spans()[%d] = %+v, want %+v", i, got, want)
		}
	}
	if got, want := a.Open(), ref.Open(); got != want {
		t.Errorf("Open() = %d, want %d", got, want)
	}
	// Dropped transactions are forgotten: their identifiers read as fresh.
	if got := a.Status(1); got != StatusLive {
		t.Errorf("Status(dropped T1) = %v, want live (forgotten)", got)
	}
	// The appender keeps working after a truncation.
	if err := a.Append(TryC(3)); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(Commit(3)); err != nil {
		t.Fatal(err)
	}
	if got := a.Open(); got != 0 {
		t.Errorf("Open() after completing T3 = %d, want 0", got)
	}
}

// TestAppenderTruncateRejectsUnstableCut: cuts that split a transaction
// or drop an incomplete one are rejected and change nothing.
func TestAppenderTruncateRejectsUnstableCut(t *testing.T) {
	a := NewAppender()
	evs := History{
		Inv(1, "x", "write", 1), Ret(1, "x", "write", OK), // T1 live
		Inv(2, "y", "write", 2), Ret(2, "y", "write", OK), TryC(2), Commit(2),
		TryC(1), Commit(1),
	}
	for _, ev := range evs {
		if err := a.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int{2, 6} { // drops live T1 prefix / splits T1
		if err := a.Truncate(n); err == nil {
			t.Errorf("Truncate(%d) across live T1 succeeded, want error", n)
		}
	}
	if err := a.Truncate(9); err == nil {
		t.Error("Truncate beyond Len succeeded, want error")
	}
	if a.Len() != len(evs) {
		t.Fatalf("failed truncation changed the history: Len = %d", a.Len())
	}
	if err := a.Truncate(0); err != nil {
		t.Errorf("Truncate(0) = %v, want no-op", err)
	}
	// The whole history is now stable; the full cut empties the appender.
	if err := a.Truncate(a.Len()); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 0 || len(a.Transactions()) != 0 || a.Open() != 0 {
		t.Errorf("full truncation left state: Len=%d txs=%v open=%d",
			a.Len(), a.Transactions(), a.Open())
	}
}
