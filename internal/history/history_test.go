package history

import "testing"

// h1 builds the paper's history H1 (Figure 1, §4): T1 writes x and
// commits; T2 reads x=1 and later y=2 and is forcefully aborted; T3
// writes x and y and commits in between.
func h1() History {
	return NewBuilder().
		Write(1, "x", 1).Commits(1).
		Read(2, "x", 1).
		Write(3, "x", 2).Write(3, "y", 2).Commits(3).
		Read(2, "y", 2).Aborts(2).
		MustHistory()
}

// h2 is the paper's H2: equivalent to H1 but sequential.
func h2() History {
	return NewBuilder().
		Write(1, "x", 1).Commits(1).
		Write(3, "x", 2).Write(3, "y", 2).Commits(3).
		Read(2, "x", 1).Read(2, "y", 2).Aborts(2).
		MustHistory()
}

// h3 is the paper's H3: T1 commit-pending, T2 live with a completed read.
func h3() History {
	return NewBuilder().
		Write(1, "x", 1).TryC(1).
		Read(2, "x", 1).
		MustHistory()
}

func TestEventConstructors(t *testing.T) {
	e := Inv(2, "x", "read", nil)
	if e.Kind != KindInv || e.Tx != 2 || e.Obj != "x" || e.Op != "read" {
		t.Fatalf("bad inv event: %+v", e)
	}
	if !Matches(e, Ret(2, "x", "read", 1)) {
		t.Error("matching ret not recognized")
	}
	if Matches(e, Ret(3, "x", "read", 1)) {
		t.Error("ret of other transaction must not match")
	}
	if Matches(e, Ret(2, "y", "read", 1)) {
		t.Error("ret on other object must not match")
	}
	if !Matches(e, Abort(2)) {
		t.Error("abort must match a pending operation invocation")
	}
	if !Matches(TryC(4), Commit(4)) || !Matches(TryC(4), Abort(4)) {
		t.Error("commit-try must accept commit and abort")
	}
	if Matches(TryA(4), Commit(4)) {
		t.Error("abort-try must not accept commit")
	}
	if !Matches(TryA(4), Abort(4)) {
		t.Error("abort-try must accept abort")
	}
}

func TestKindPredicates(t *testing.T) {
	invKinds := []Kind{KindInv, KindTryCommit, KindTryAbort}
	retKinds := []Kind{KindRet, KindCommit, KindAbort}
	for _, k := range invKinds {
		if !k.Invocation() || k.Response() {
			t.Errorf("%v should be an invocation kind", k)
		}
	}
	for _, k := range retKinds {
		if k.Invocation() || !k.Response() {
			t.Errorf("%v should be a response kind", k)
		}
	}
}

func TestProjections(t *testing.T) {
	h := h1()
	sub := h.Sub(2)
	want := History{
		Inv(2, "x", "read", nil), Ret(2, "x", "read", 1),
		Inv(2, "y", "read", nil), Ret(2, "y", "read", 2),
		TryC(2), Abort(2),
	}
	if !equalEvents(sub, want) {
		t.Errorf("H1|T2 = %v, want %v", sub, want)
	}
	hy := h.Obj("y")
	if len(hy) != 4 {
		t.Errorf("H1|y has %d events, want 4 (write exec of T3 + read exec of T2)", len(hy))
	}
	for _, e := range hy {
		if e.Obj != "y" {
			t.Errorf("H1|y contains event on %s", e.Obj)
		}
	}
}

func TestTransactionsAndObjects(t *testing.T) {
	h := h1()
	txs := h.Transactions()
	if len(txs) != 3 || txs[0] != 1 || txs[1] != 2 || txs[2] != 3 {
		t.Errorf("Transactions() = %v, want [1 2 3] in first-event order", txs)
	}
	objs := h.Objects()
	if len(objs) != 2 || objs[0] != "x" || objs[1] != "y" {
		t.Errorf("Objects() = %v, want [x y]", objs)
	}
	if !h.Contains(2) || h.Contains(9) {
		t.Error("Contains misreports membership")
	}
}

func TestOpExecs(t *testing.T) {
	h := h1()
	execs := h.OpExecs(2)
	if len(execs) != 2 {
		t.Fatalf("T2 has %d op execs, want 2", len(execs))
	}
	if execs[0].Op != "read" || execs[0].Obj != "x" || execs[0].Ret != 1 || execs[0].Pending {
		t.Errorf("first exec of T2 = %+v", execs[0])
	}
	if execs[1].Obj != "y" || execs[1].Ret != 2 {
		t.Errorf("second exec of T2 = %+v", execs[1])
	}
}

func TestOpExecsPending(t *testing.T) {
	h := NewBuilder().Write(1, "x", 1).Inv(1, "y", "read", nil).MustHistory()
	execs := h.OpExecs(1)
	if len(execs) != 2 {
		t.Fatalf("got %d execs, want 2", len(execs))
	}
	if !execs[1].Pending || execs[1].Obj != "y" {
		t.Errorf("trailing pending invocation not reported: %+v", execs[1])
	}
	if _, ok := h.PendingInv(1); !ok {
		t.Error("PendingInv should find the pending read")
	}
}

func TestPendingInvAbsent(t *testing.T) {
	h := h1()
	for _, tx := range h.Transactions() {
		if _, ok := h.PendingInv(tx); ok {
			t.Errorf("T%d has no pending invocation in complete H1", tx)
		}
	}
}

func TestStatus(t *testing.T) {
	h := h1()
	if !h.Committed(1) || !h.Committed(3) {
		t.Error("T1 and T3 must be committed in H1")
	}
	if !h.Aborted(2) {
		t.Error("T2 must be aborted in H1")
	}
	if !h.ForcefullyAborted(2) {
		t.Error("T2 is forcefully aborted (no tryA) in H1")
	}
	if h.ForcefullyAborted(1) {
		t.Error("a committed transaction is not forcefully aborted")
	}

	voluntary := NewBuilder().Read(1, "x", 0).TryA(1).A(1).MustHistory()
	if voluntary.ForcefullyAborted(1) {
		t.Error("T1 aborted via tryA is not forcefully aborted")
	}
	if !voluntary.Aborted(1) {
		t.Error("T1 must be aborted")
	}
}

func TestStatusCommitPending(t *testing.T) {
	h := h3()
	if h.Status(1) != StatusCommitPending {
		t.Errorf("T1 status = %v, want commit-pending", h.Status(1))
	}
	if h.Status(2) != StatusLive {
		t.Errorf("T2 status = %v, want live", h.Status(2))
	}
	if !h.Live(1) || !h.Live(2) {
		t.Error("commit-pending and in-flight transactions are both live")
	}
	cps := h.CommitPendingTxs()
	if len(cps) != 1 || cps[0] != 1 {
		t.Errorf("CommitPendingTxs = %v", cps)
	}
	if got := h.CommittedTxs(); len(got) != 0 {
		t.Errorf("CommittedTxs = %v, want none", got)
	}
	if got := h.LiveTxs(); len(got) != 2 {
		t.Errorf("LiveTxs = %v, want two", got)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusLive:          "live",
		StatusCommitPending: "commit-pending",
		StatusCommitted:     "committed",
		StatusAborted:       "aborted",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestRealTimeOrderH1(t *testing.T) {
	h := h1()
	// In H1: T1 ≺ T2, T1 ≺ T3; T2 and T3 are concurrent (paper, §4).
	if !h.Precedes(1, 2) || !h.Precedes(1, 3) {
		t.Error("T1 must precede T2 and T3 in H1")
	}
	if !h.Concurrent(2, 3) {
		t.Error("T2 and T3 must be concurrent in H1")
	}
	if h.Precedes(2, 3) || h.Precedes(3, 2) {
		t.Error("no order between concurrent T2 and T3")
	}
	if h.Concurrent(1, 1) {
		t.Error("a transaction is not concurrent with itself")
	}
}

func TestPreservesRealTimeOrder(t *testing.T) {
	// H2 preserves the real-time order of H1 (paper's example).
	if !PreservesRealTimeOrder(h1(), h2()) {
		t.Error("H2 must preserve the real-time order of H1")
	}
	// The reverse also holds here: ≺H2 has T3 ≺ T2 extra, absent in H1's
	// order, so PreservesRealTimeOrder(h2, h1) must fail.
	if PreservesRealTimeOrder(h2(), h1()) {
		t.Error("H1 does not preserve the order T3 ≺H2 T2")
	}
}

func TestSequential(t *testing.T) {
	if h1().Sequential() {
		t.Error("H1 is not sequential (T2 and T3 are concurrent)")
	}
	if !h2().Sequential() {
		t.Error("H2 is sequential")
	}
	// A live final transaction keeps a history sequential.
	h := NewBuilder().Write(1, "x", 1).Commits(1).Read(2, "x", 1).MustHistory()
	if !h.Sequential() {
		t.Error("history with a single trailing live transaction is sequential")
	}
}

func TestCompletePredicate(t *testing.T) {
	if !h1().Complete() || !h2().Complete() {
		t.Error("H1 and H2 are complete")
	}
	if h3().Complete() {
		t.Error("H3 has live transactions")
	}
}

func TestEquivalence(t *testing.T) {
	if !Equivalent(h1(), h2()) {
		t.Error("H1 ≡ H2 (paper, §4)")
	}
	if !Equivalent(h1(), h1()) {
		t.Error("equivalence must be reflexive")
	}
	// Changing a return value breaks equivalence.
	h := h1().Clone()
	for i, e := range h {
		if e.Kind == KindRet && e.Tx == 2 && e.Obj == "x" {
			h[i].Ret = 99
		}
	}
	if Equivalent(h1(), h) {
		t.Error("different response values must break equivalence")
	}
	// A history with an extra transaction is not equivalent.
	if Equivalent(h1(), h1().Append(TryC(9))) {
		t.Error("extra transaction must break equivalence")
	}
	if Equivalent(h1().Append(TryC(9)), h1()) {
		t.Error("missing transaction must break equivalence")
	}
}

func TestRealTimeOrderPairs(t *testing.T) {
	pairs := h1().RealTimeOrder()
	want := map[[2]TxID]bool{{1, 2}: true, {1, 3}: true}
	if len(pairs) != 2 {
		t.Fatalf("RealTimeOrder = %v, want exactly T1≺T2 and T1≺T3", pairs)
	}
	for _, p := range pairs {
		if !want[p] {
			t.Errorf("unexpected pair %v", p)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	h := h1()
	c := h.Clone()
	c[0].Tx = 42
	if h[0].Tx == 42 {
		t.Error("Clone must not share storage")
	}
	cat := h.Concat(h2())
	if len(cat) != len(h)+len(h2()) {
		t.Errorf("Concat length %d", len(cat))
	}
}
