package history

// Builder constructs histories fluently. It is the programmatic analogue
// of the paper's history notation: each method appends one event or one
// operation execution (an inv/ret pair) to the history under
// construction. Builder methods return the receiver for chaining.
//
//	h := history.NewBuilder().
//		Write(1, "x", 1).TryC(1).C(1).
//		Read(2, "x", 1).
//		History()
type Builder struct {
	h History
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Read appends the operation execution read_tx(obj) -> v.
func (b *Builder) Read(tx TxID, obj ObjID, v Value) *Builder {
	b.h = append(b.h, Inv(tx, obj, "read", nil), Ret(tx, obj, "read", v))
	return b
}

// Write appends the operation execution write_tx(obj, v) -> ok.
func (b *Builder) Write(tx TxID, obj ObjID, v Value) *Builder {
	b.h = append(b.h, Inv(tx, obj, "write", v), Ret(tx, obj, "write", OK))
	return b
}

// Op appends a generic operation execution op_tx(obj, arg) -> ret.
func (b *Builder) Op(tx TxID, obj ObjID, op string, arg, ret Value) *Builder {
	b.h = append(b.h, Inv(tx, obj, op, arg), Ret(tx, obj, op, ret))
	return b
}

// Inv appends a (possibly pending) operation invocation event.
func (b *Builder) Inv(tx TxID, obj ObjID, op string, arg Value) *Builder {
	b.h = append(b.h, Inv(tx, obj, op, arg))
	return b
}

// Ret appends an operation response event.
func (b *Builder) Ret(tx TxID, obj ObjID, op string, ret Value) *Builder {
	b.h = append(b.h, Ret(tx, obj, op, ret))
	return b
}

// TryC appends a commit-try event tryC_tx.
func (b *Builder) TryC(tx TxID) *Builder {
	b.h = append(b.h, TryC(tx))
	return b
}

// TryA appends an abort-try event tryA_tx.
func (b *Builder) TryA(tx TxID) *Builder {
	b.h = append(b.h, TryA(tx))
	return b
}

// C appends a commit event C_tx.
func (b *Builder) C(tx TxID) *Builder {
	b.h = append(b.h, Commit(tx))
	return b
}

// A appends an abort event A_tx.
func (b *Builder) A(tx TxID) *Builder {
	b.h = append(b.h, Abort(tx))
	return b
}

// Commits appends ⟨tryC, C⟩ for tx: the transaction requests to commit
// and is committed.
func (b *Builder) Commits(tx TxID) *Builder { return b.TryC(tx).C(tx) }

// Aborts appends ⟨tryC, A⟩ for tx: the transaction requests to commit and
// is forcefully aborted.
func (b *Builder) Aborts(tx TxID) *Builder { return b.TryC(tx).A(tx) }

// History returns the constructed history. The builder may be reused; the
// returned slice is a snapshot.
func (b *Builder) History() History { return b.h.Clone() }

// MustHistory returns the constructed history, panicking if it is not
// well-formed.
func (b *Builder) MustHistory() History { return b.History().MustWellFormed() }
