package history

import (
	"fmt"
	"strconv"
)

// OpSignature returns the canonical operation signature of one
// transaction's operation executions: a byte string over the completed
// executions, in order, covering the object, the operation name, the
// argument and the return value of each. Pending invocations are
// excluded — a pending operation took no effect the transaction could be
// replayed by.
//
// Two transactions have equal signatures exactly when they executed the
// identical completed operation sequence — same objects, same operations,
// same arguments, same results. The signature is therefore the
// transaction's behavioral identity: it determines the transaction's
// legality and its effect on the object states from any starting state,
// which is what lets internal/core key its replay caches by it and treat
// equal-signature transactions as interchangeable in the symmetry-reduced
// serialization search.
func OpSignature(execs []OpExec) string {
	return string(AppendOpSignature(nil, execs))
}

// AppendOpSignature appends the canonical operation signature of execs to
// buf and returns the extended slice, for callers interning signatures
// through a reused buffer. Record layout per completed execution:
// [len(obj):4][obj] [len(op):4][op] [len(arg):4][arg] [len(ret):4][ret],
// every variable-length field length-prefixed so that no object name,
// operation name or value content — however crafted — can forge a field
// or record boundary and make two different executions render alike.
func AppendOpSignature(buf []byte, execs []OpExec) []byte {
	for _, e := range execs {
		if e.Pending {
			continue
		}
		buf = appendSigFramed(buf, func(b []byte) []byte { return append(b, e.Obj...) })
		buf = appendSigFramed(buf, func(b []byte) []byte { return append(b, e.Op...) })
		buf = appendSigFramed(buf, func(b []byte) []byte { return appendSigValue(b, e.Arg) })
		buf = appendSigFramed(buf, func(b []byte) []byte { return appendSigValue(b, e.Ret) })
	}
	return buf
}

// appendSigFramed appends a 4-byte little-endian length followed by the
// bytes render produces, making the field self-delimiting regardless of
// its content.
func appendSigFramed(buf []byte, render func([]byte) []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = render(buf)
	n := uint32(len(buf) - start - 4)
	buf[start] = byte(n)
	buf[start+1] = byte(n >> 8)
	buf[start+2] = byte(n >> 16)
	buf[start+3] = byte(n >> 24)
	return buf
}

// appendSigValue renders one operation argument or return value, tagged
// by dynamic type so that values whose renderings would otherwise collide
// (int 1 vs string "1" vs the printed form of some struct) stay distinct —
// they step object specifications differently. Callers frame the result
// by length, so the rendering itself need not escape anything. The common
// history value types render without fmt; everything else falls back to
// %T:%v.
func appendSigValue(buf []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, 'n')
	case int:
		buf = append(buf, 'i')
		return strconv.AppendInt(buf, int64(x), 10)
	case string:
		buf = append(buf, 's')
		return append(buf, x...)
	case bool:
		if x {
			return append(buf, 'b', '1')
		}
		return append(buf, 'b', '0')
	case int64:
		buf = append(buf, 'l')
		return strconv.AppendInt(buf, x, 10)
	default:
		return fmt.Appendf(buf, "T%T:%v", v, v)
	}
}
