// Package history implements the formal model of transactional-memory
// histories from Guerraoui & Kapałka, "On the Correctness of
// Transactional Memory" (PPoPP 2008), Section 4.
//
// A history is the sequence of all invocation and response events issued
// and received by transactions in a given execution. The package provides
// the model's basic vocabulary: events, projections (H|Ti, H|ob),
// well-formedness, equivalence, transaction status, the real-time order
// ≺H, sequential and complete histories, and the set Complete(H) of
// completions of a history.
//
// The package is purely descriptive: it says nothing about whether a
// history is correct. Correctness criteria (opacity and the weaker
// criteria of the paper's Section 3) are built on top of this package by
// internal/core, internal/opg and internal/criteria.
package history

import "fmt"

// TxID identifies a transaction. Transaction identifiers are unique per
// history; retrying an aborted transaction is modelled as a new
// transaction with a fresh identifier (paper, §4). By convention T0 is
// reserved for an initializing transaction when the graph
// characterization of §5.4 is used.
type TxID int

// ObjID identifies a shared object, e.g. "x" or "y".
type ObjID string

// Value is the type of operation arguments and return values. Values
// stored in events must be comparable with == (ints, strings, booleans,
// comparable structs); histories containing non-comparable values have
// undefined equality semantics.
type Value = any

// OK is the conventional return value of operations that always succeed,
// such as a register write (the paper's "ok").
const OK = "ok"

// Kind distinguishes the six kinds of transactional events of the model.
type Kind int

const (
	// KindInv is an operation invocation event inv_i(ob, op, args).
	KindInv Kind = iota
	// KindRet is an operation response event ret_i(ob, op, val).
	KindRet
	// KindTryCommit is a commit-try event tryC_i.
	KindTryCommit
	// KindTryAbort is an abort-try event tryA_i.
	KindTryAbort
	// KindCommit is a commit event C_i.
	KindCommit
	// KindAbort is an abort event A_i.
	KindAbort
)

// String returns the conventional short name of the event kind.
func (k Kind) String() string {
	switch k {
	case KindInv:
		return "inv"
	case KindRet:
		return "ret"
	case KindTryCommit:
		return "tryC"
	case KindTryAbort:
		return "tryA"
	case KindCommit:
		return "C"
	case KindAbort:
		return "A"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Invocation reports whether k is an invocation event (operation
// invocation, commit-try or abort-try). Invocation events are initiated
// by transactions; response events by the TM.
func (k Kind) Invocation() bool {
	return k == KindInv || k == KindTryCommit || k == KindTryAbort
}

// Response reports whether k is a response event (operation response,
// commit or abort).
func (k Kind) Response() bool { return !k.Invocation() }

// Event is a single transactional event. Obj, Op, Arg and Ret are
// meaningful only for the kinds that carry them: Obj/Op/Arg for KindInv,
// Obj/Op/Ret for KindRet; the remaining kinds use none of them.
type Event struct {
	Kind Kind
	Tx   TxID
	Obj  ObjID
	Op   string
	Arg  Value
	Ret  Value
}

// Inv constructs an operation invocation event inv_tx(obj, op, arg).
func Inv(tx TxID, obj ObjID, op string, arg Value) Event {
	return Event{Kind: KindInv, Tx: tx, Obj: obj, Op: op, Arg: arg}
}

// Ret constructs an operation response event ret_tx(obj, op, ret).
func Ret(tx TxID, obj ObjID, op string, ret Value) Event {
	return Event{Kind: KindRet, Tx: tx, Obj: obj, Op: op, Ret: ret}
}

// TryC constructs a commit-try event tryC_tx.
func TryC(tx TxID) Event { return Event{Kind: KindTryCommit, Tx: tx} }

// TryA constructs an abort-try event tryA_tx.
func TryA(tx TxID) Event { return Event{Kind: KindTryAbort, Tx: tx} }

// Commit constructs a commit event C_tx.
func Commit(tx TxID) Event { return Event{Kind: KindCommit, Tx: tx} }

// Abort constructs an abort event A_tx.
func Abort(tx TxID) Event { return Event{Kind: KindAbort, Tx: tx} }

// Matches reports whether response event r matches invocation event e:
// same transaction and, for operations, the same object and operation. A
// commit event matches a commit-try; an abort event matches any pending
// invocation (an operation invocation, an abort-try, or a commit-try),
// per the paper's well-formedness rules.
func Matches(e, r Event) bool {
	if e.Tx != r.Tx || !e.Kind.Invocation() || !r.Kind.Response() {
		return false
	}
	switch e.Kind {
	case KindInv:
		return (r.Kind == KindRet && r.Obj == e.Obj && r.Op == e.Op) || r.Kind == KindAbort
	case KindTryCommit:
		return r.Kind == KindCommit || r.Kind == KindAbort
	case KindTryAbort:
		return r.Kind == KindAbort
	}
	return false
}

// History is a finite sequence of transactional events, totally ordered
// by the time at which they were issued (simultaneous events may be
// ordered arbitrarily). The zero value is the empty history.
type History []Event

// Clone returns a copy of h that shares no storage with h.
func (h History) Clone() History {
	out := make(History, len(h))
	copy(out, h)
	return out
}

// Append returns h with the given events appended (h itself is not
// modified if its backing array lacks capacity; callers should use the
// return value).
func (h History) Append(evs ...Event) History {
	return append(h.Clone(), evs...)
}

// Concat returns the concatenation h · h2.
func (h History) Concat(h2 History) History {
	out := make(History, 0, len(h)+len(h2))
	out = append(out, h...)
	out = append(out, h2...)
	return out
}

// OpExec is an operation execution: a pair of an operation invocation
// event and its matching operation response event
// exec_i(ob, op, args, val). If Pending is true the response event is
// missing (the invocation is pending at the end of the history) and Ret
// is meaningless.
type OpExec struct {
	Tx      TxID
	Obj     ObjID
	Op      string
	Arg     Value
	Ret     Value
	Pending bool
}

// String renders the operation execution in the paper's notation, e.g.
// "read_2(x) -> 1" or "write_1(x, 5) -> ok".
func (e OpExec) String() string {
	s := fmt.Sprintf("%s_%d(%s", e.Op, int(e.Tx), e.Obj)
	if e.Arg != nil {
		s += fmt.Sprintf(", %v", e.Arg)
	}
	s += ")"
	if e.Pending {
		return s + " -> ?"
	}
	return s + fmt.Sprintf(" -> %v", e.Ret)
}
