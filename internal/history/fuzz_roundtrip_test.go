package history_test

import (
	"testing"

	"otm/internal/gen"
	"otm/internal/history"
)

// FuzzParseRoundTrip is the corpus-seeded strict round-trip target: it
// complements FuzzParse (which asserts "no panic, stable reparse" on
// arbitrary bytes) by seeding from the same generated corpora the
// differential suite checks, so the fuzzer explores the neighbourhood of
// realistic well-formed histories. For every accepted input it asserts
// that String() re-renders to the identical event sequence, and that
// every completion of a well-formed history survives its own round trip
// — the invariant the opacheck pipeline (histgen | opacheck) and the
// corpus files rely on.
func FuzzParseRoundTrip(f *testing.F) {
	for _, h := range gen.Corpus(gen.Config{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.3}, 600, 0) {
		f.Add(h.String())
	}
	for _, h := range gen.Corpus(gen.Config{Txs: 4, Objs: 2, MaxOps: 2, PStaleRead: 0.4, PLeaveLive: 0.8}, 600, 500_000) {
		f.Add(h.String())
	}

	f.Fuzz(func(t *testing.T, src string) {
		h, err := history.Parse(src)
		if err != nil {
			return
		}
		reparse := func(label string, hh history.History) {
			s := hh.String()
			h2, err := history.Parse(s)
			if err != nil {
				t.Fatalf("%s: String output %q failed to reparse: %v", label, s, err)
			}
			if len(hh) != len(h2) {
				t.Fatalf("%s: round trip changed length: %d vs %d", label, len(hh), len(h2))
			}
			for i := range hh {
				if hh[i] != h2[i] {
					t.Fatalf("%s: round trip changed event %d: %v vs %v", label, i, hh[i], h2[i])
				}
			}
		}
		reparse("input", h)
		if h.WellFormed() != nil {
			return
		}
		// Completions only append events, stay well-formed, and must stay
		// renderable: verdict lines and corpus files round-trip through
		// the same grammar.
		if len(h.CommitPendingTxs()) > 6 {
			return
		}
		n := 0
		h.EachCompletion(func(c history.History) bool {
			if err := c.WellFormed(); err != nil {
				t.Fatalf("completion %d malformed: %v\n%s", n, err, c.Format())
			}
			reparse("completion", c)
			n++
			return true
		})
	})
}
